package deltacoloring

// One testing.B benchmark per experiment of EXPERIMENTS.md. Each benchmark
// runs its experiment at Quick scale (use cmd/deltabench for the full
// report) and reports the headline figure as a custom metric alongside the
// usual time/allocs, so `go test -bench=. -benchmem` regenerates the
// evaluation's data points.

import (
	"fmt"
	"strconv"
	"testing"

	"deltacoloring/internal/bench"
)

func runExperiment(b *testing.B, fn func(bench.Scale) (*bench.Table, error)) *bench.Table {
	b.Helper()
	var tab *bench.Table
	for i := 0; i < b.N; i++ {
		var err error
		tab, err = fn(bench.Quick)
		if err != nil {
			b.Fatal(err)
		}
	}
	return tab
}

// lastRowFloat extracts a numeric cell from the last row for metric
// reporting (0 when unparsable).
func lastRowFloat(tab *bench.Table, col int) float64 {
	if len(tab.Rows) == 0 {
		return 0
	}
	row := tab.Rows[len(tab.Rows)-1]
	if col >= len(row) {
		return 0
	}
	f, err := strconv.ParseFloat(row[col], 64)
	if err != nil {
		return 0
	}
	return f
}

func BenchmarkE1DeterministicRounds(b *testing.B) {
	tab := runExperiment(b, bench.E1)
	b.ReportMetric(lastRowFloat(tab, 2), "rounds")
	b.ReportMetric(lastRowFloat(tab, 7), "rounds/log2n")
}

func BenchmarkE2RoundsVsDelta(b *testing.B) {
	tab := runExperiment(b, bench.E2)
	b.ReportMetric(lastRowFloat(tab, 2), "rounds")
}

func BenchmarkE3RandomizedRounds(b *testing.B) {
	tab := runExperiment(b, bench.E3)
	b.ReportMetric(lastRowFloat(tab, 2), "rounds")
	b.ReportMetric(lastRowFloat(tab, 5), "maxcomponent")
}

func BenchmarkE4Validity(b *testing.B) {
	tab := runExperiment(b, bench.E4)
	b.ReportMetric(float64(len(tab.Rows)), "cases")
}

func BenchmarkE5HEG(b *testing.B) {
	tab := runExperiment(b, bench.E5)
	b.ReportMetric(lastRowFloat(tab, 5), "proposalrounds")
}

func BenchmarkE6Splitting(b *testing.B) {
	tab := runExperiment(b, bench.E6)
	b.ReportMetric(lastRowFloat(tab, 4), "worstdev")
}

func BenchmarkE7Triads(b *testing.B) {
	tab := runExperiment(b, bench.E7)
	b.ReportMetric(lastRowFloat(tab, 4), "gvmaxdeg")
}

func BenchmarkE8Balance(b *testing.B) {
	tab := runExperiment(b, bench.E8)
	b.ReportMetric(lastRowFloat(tab, 6), "f3perclique")
}

func BenchmarkE9AblationNoHEG(b *testing.B) {
	tab := runExperiment(b, bench.E9)
	b.ReportMetric(lastRowFloat(tab, 2), "starvedraw")
	b.ReportMetric(lastRowFloat(tab, 3), "starvedheg")
}

func BenchmarkE10SlackGeneration(b *testing.B) {
	tab := runExperiment(b, bench.E10)
	b.ReportMetric(lastRowFloat(tab, 3), "slackfraction")
}

func BenchmarkE11Landscape(b *testing.B) {
	tab := runExperiment(b, bench.E11)
	b.ReportMetric(lastRowFloat(tab, 1), "deltaplus1rounds")
	b.ReportMetric(lastRowFloat(tab, 2), "deltarounds")
}

func BenchmarkE12Loopholes(b *testing.B) {
	tab := runExperiment(b, bench.E12)
	b.ReportMetric(lastRowFloat(tab, 2), "layers")
}

func BenchmarkE14LogStar(b *testing.B) {
	tab := runExperiment(b, bench.LogStarDemo)
	b.ReportMetric(lastRowFloat(tab, 1), "rounds")
}

// Direct micro-benchmarks of the two colorers on the flagship instance,
// for time/alloc tracking independent of the experiment harness.
func BenchmarkDeterministicM16(b *testing.B) {
	g := GenHardCliqueBipartite(16, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Deterministic(g, ScaledParams())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Rounds), "rounds")
		}
	}
}

func BenchmarkRandomizedM16(b *testing.B) {
	g := GenHardCliqueBipartite(16, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Randomized(g, ScaledRandomizedParams(), int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Rounds), "rounds")
		}
	}
}

// Scaling benchmark: one size per sub-benchmark so `-bench Deterministic`
// prints a rounds-vs-n series directly.
func BenchmarkDeterministicScaling(b *testing.B) {
	for _, m := range []int{16, 32, 64} {
		g := GenHardCliqueBipartite(m, 16)
		b.Run(fmt.Sprintf("n=%d", g.N()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := Deterministic(g, ScaledParams())
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(res.Rounds), "rounds")
				}
			}
		})
	}
}
