// Package deltacoloring is the public API of this repository: distributed
// Δ-coloring of dense graphs in the LOCAL model, implementing
//
//	Manuel Jakob, Yannic Maus. "Towards Optimal Distributed Delta
//	Coloring." PODC 2025 (brief announcement).
//
// The package wraps the internal algorithm stack (almost-clique
// decomposition, slack triads, hyperedge grabbing, degree splitting,
// loophole machinery) behind three entry points:
//
//   - Deterministic: Theorem 1's min{Õ(log^{5/3} n), O(Δ + log n)}-round
//     deterministic algorithm (O(log n) at constant Δ).
//   - Randomized: Theorem 2's shattering-based algorithm
//     (O(Δ + log log n) rounds).
//   - Verify: checks a proper complete Δ-coloring.
//
// Both colorers require a *dense* graph (Definition 4: the almost-clique
// decomposition has no sparse vertices) without a (Δ+1)-clique; they return
// ErrNotDense / ErrBrooks otherwise. Every lemma-level invariant of the
// paper is verified during a run, so a returned coloring is machine-checked
// end to end.
//
// Use the Gen* constructors for the dense graph families studied in the
// evaluation, or NewGraph for custom inputs.
package deltacoloring

import (
	"fmt"
	"io"
	"math/rand"

	"deltacoloring/internal/coloring"
	"deltacoloring/internal/core"
	"deltacoloring/internal/graph"
	"deltacoloring/internal/local"
)

// Graph is an immutable undirected simple graph.
type Graph = graph.Graph

// Params configures the pipeline; see DefaultParams and ScaledParams.
type Params = core.Params

// RandomizedParams configures the randomized algorithm.
type RandomizedParams = core.RandomizedParams

// Stats reports structural measurements of a run.
type Stats = core.Stats

// RandStats reports shattering measurements of a randomized run.
type RandStats = core.RandStats

// Span is a named round-accounting segment.
type Span = local.Span

// Sentinel errors.
var (
	// ErrNotDense marks inputs outside the paper's dense-graph class.
	ErrNotDense = core.ErrNotDense
	// ErrBrooks marks the Brooks exception: a (Δ+1)-clique exists.
	ErrBrooks = core.ErrBrooks
)

// DefaultParams returns the paper's exact parameterization (ε = 1/63,
// 28 sub-cliques, 4-way splitting). Its constant arithmetic requires
// Δ ⪆ 85; see ScaledParams for smaller degrees.
func DefaultParams() Params { return core.DefaultParams() }

// ScaledParams returns a scaled-down parameterization usable from Δ ≈ 16,
// with all invariants still verified at runtime (see DESIGN.md, "parameter
// presets").
func ScaledParams() Params { return core.TestParams() }

// DefaultRandomizedParams returns the paper parameterization of Theorem 2.
func DefaultRandomizedParams() RandomizedParams { return core.DefaultRandomizedParams() }

// ScaledRandomizedParams returns the scaled-down randomized preset.
func ScaledRandomizedParams() RandomizedParams { return core.TestRandomizedParams() }

// Result is the outcome of a coloring run.
type Result struct {
	// Colors assigns each vertex a color in [0, Δ).
	Colors []int
	// Rounds is the total number of LOCAL rounds charged.
	Rounds int
	// Spans breaks the rounds down by phase.
	Spans []Span
	// Stats carries structural measurements.
	Stats Stats
}

// RandomizedResult extends Result with shattering statistics.
type RandomizedResult struct {
	Result
	Rand RandStats
}

// NewGraph builds a graph on n vertices from an edge list.
func NewGraph(n int, edges [][2]int) (*Graph, error) {
	b := graph.NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// Deterministic runs Theorem 1's algorithm with the given parameters.
func Deterministic(g *Graph, p Params) (*Result, error) {
	net := local.New(g)
	res, err := core.ColorDeterministic(net, p)
	if err != nil {
		return nil, err
	}
	return &Result{
		Colors: res.Coloring.Colors,
		Rounds: res.Rounds,
		Spans:  res.Spans,
		Stats:  res.Stats,
	}, nil
}

// Randomized runs Theorem 2's algorithm with the given parameters and seed.
func Randomized(g *Graph, p RandomizedParams, seed int64) (*RandomizedResult, error) {
	net := local.New(g)
	res, err := core.ColorRandomized(net, p, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	return &RandomizedResult{
		Result: Result{
			Colors: res.Coloring.Colors,
			Rounds: res.Rounds,
			Spans:  res.Spans,
			Stats:  res.Stats,
		},
		Rand: res.Rand,
	}, nil
}

// Verify checks that colors is a complete proper coloring of g with colors
// in [0, Δ).
func Verify(g *Graph, colors []int) error {
	if len(colors) != g.N() {
		return fmt.Errorf("deltacoloring: %d colors for %d vertices", len(colors), g.N())
	}
	c := coloring.NewPartial(g.N())
	copy(c.Colors, colors)
	return coloring.VerifyComplete(g, c, g.MaxDegree())
}

// GenHardCliqueBipartite builds the adversarial dense family where every
// almost clique is hard: 2m cliques of size delta joined by a bipartite,
// triangle-free perfect-matching super-graph (n = 2·m·delta, requires
// m >= delta >= 2).
func GenHardCliqueBipartite(m, delta int) *Graph {
	g, _ := graph.HardCliqueBipartite(m, delta)
	return g
}

// GenEasyCliqueRing builds a ring of k cliques of size delta joined by
// parallel matchings; every clique contains 4-cycle loopholes (requires
// k >= 4, even delta >= 4).
func GenEasyCliqueRing(k, delta int) *Graph {
	g, _ := graph.EasyCliqueRing(k, delta)
	return g
}

// GenHardWithEasyPatch builds the hard family with a rewired corner that
// turns four cliques easy, mixing both pipeline paths (requires m >= 4,
// delta >= 3).
func GenHardWithEasyPatch(m, delta int) *Graph {
	g, _ := graph.HardWithEasyPatch(m, delta)
	return g
}

// WriteDOT renders g in Graphviz DOT format, filling vertices by the given
// colors (pass nil for an uncolored rendering). Pipe through `dot -Tsvg`
// to visualize small instances.
func WriteDOT(w io.Writer, g *Graph, colors []int) error {
	return graph.WriteDOT(w, g, colors, nil)
}
