// Package deltacoloring is the public API of this repository: distributed
// Δ-coloring of dense graphs in the LOCAL model, implementing
//
//	Manuel Jakob, Yannic Maus. "Towards Optimal Distributed Delta
//	Coloring." PODC 2025 (brief announcement).
//
// The package wraps the internal algorithm stack (almost-clique
// decomposition, slack triads, hyperedge grabbing, degree splitting,
// loophole machinery) behind three entry points:
//
//   - Deterministic: Theorem 1's min{Õ(log^{5/3} n), O(Δ + log n)}-round
//     deterministic algorithm (O(log n) at constant Δ).
//   - Randomized: Theorem 2's shattering-based algorithm
//     (O(Δ + log log n) rounds).
//   - Verify: checks a proper complete Δ-coloring.
//
// Both colorers require a *dense* graph (Definition 4: the almost-clique
// decomposition has no sparse vertices) without a (Δ+1)-clique; they return
// ErrNotDense / ErrBrooks otherwise. Every lemma-level invariant of the
// paper is verified during a run, so a returned coloring is machine-checked
// end to end.
//
// Use the Gen* constructors for the dense graph families studied in the
// evaluation, or NewGraph for custom inputs.
package deltacoloring

import (
	"context"
	"fmt"
	"io"

	"deltacoloring/internal/backend"
	"deltacoloring/internal/coloring"
	"deltacoloring/internal/core"
	"deltacoloring/internal/dynamic"
	"deltacoloring/internal/graph"
	"deltacoloring/internal/invariant"
	"deltacoloring/internal/local"
	"deltacoloring/internal/repair"
)

// Graph is an immutable undirected simple graph.
type Graph = graph.Graph

// Params configures the pipeline; see DefaultParams and ScaledParams.
type Params = core.Params

// RandomizedParams configures the randomized algorithm.
type RandomizedParams = core.RandomizedParams

// Stats reports structural measurements of a run.
type Stats = core.Stats

// RandStats reports shattering measurements of a randomized run.
type RandStats = core.RandStats

// Span is a named round-accounting segment.
type Span = local.Span

// FrontierStats aggregates the engine's activation accounting: how many
// rounds ran on the sparse (frontier-scheduled) path and how many vertex
// evaluations the frontier skipped. See DESIGN.md, "Frontier scheduling
// contract".
type FrontierStats = local.FrontierStats

// Sentinel errors.
var (
	// ErrNotDense marks inputs outside the paper's dense-graph class.
	ErrNotDense = core.ErrNotDense
	// ErrBrooks marks the Brooks exception: a (Δ+1)-clique exists.
	ErrBrooks = core.ErrBrooks
)

// DefaultParams returns the paper's exact parameterization (ε = 1/63,
// 28 sub-cliques, 4-way splitting). Its constant arithmetic requires
// Δ ⪆ 85; see ScaledParams for smaller degrees.
func DefaultParams() Params { return core.DefaultParams() }

// ScaledParams returns a scaled-down parameterization usable from Δ ≈ 16,
// with all invariants still verified at runtime (see DESIGN.md, "parameter
// presets").
func ScaledParams() Params { return core.TestParams() }

// DefaultRandomizedParams returns the paper parameterization of Theorem 2.
func DefaultRandomizedParams() RandomizedParams { return core.DefaultRandomizedParams() }

// ScaledRandomizedParams returns the scaled-down randomized preset.
func ScaledRandomizedParams() RandomizedParams { return core.TestRandomizedParams() }

// Result is the outcome of a coloring run.
type Result struct {
	// Colors assigns each vertex a color in [0, Δ).
	Colors []int
	// Rounds is the total number of LOCAL rounds charged.
	Rounds int
	// Spans breaks the rounds down by phase.
	Spans []Span
	// Frontier reports sparse/dense engine rounds and skipped evaluations.
	Frontier FrontierStats
	// Stats carries structural measurements.
	Stats Stats
}

// RandomizedResult extends Result with shattering statistics.
type RandomizedResult struct {
	Result
	Rand RandStats
}

// NewGraph builds a graph on n vertices from an edge list.
func NewGraph(n int, edges [][2]int) (*Graph, error) {
	b := graph.NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// RunOptions tunes a context-aware run. The zero value (or a nil pointer)
// means: no span export, default sequential execution.
type RunOptions struct {
	// SpanHook, when non-nil, receives each phase span as it closes, even
	// if the run later fails or is cancelled. See local.Network.SetSpanHook.
	SpanHook func(Span)
	// Workers sets the Exchange worker count (0 keeps the default of 1;
	// negative picks GOMAXPROCS-style automatic parallelism).
	Workers int
	// DisableFrontier forces every state-engine round onto the dense path,
	// disabling frontier scheduling. Results are bit-identical either way;
	// this exists for benchmarking and cross-checking.
	DisableFrontier bool
}

// Deterministic runs Theorem 1's algorithm with the given parameters.
func Deterministic(g *Graph, p Params) (*Result, error) {
	return DeterministicContext(context.Background(), g, p, nil)
}

// DeterministicContext is Deterministic with cancellation and run options:
// the context's deadline/cancellation is checked at every LOCAL round
// boundary (and so between all pipeline phases), aborting the run with
// ctx.Err(). opts may be nil.
func DeterministicContext(ctx context.Context, g *Graph, p Params, opts *RunOptions) (*Result, error) {
	res, err := backend.Default().Color(ctx, g, backend.Params{Det: p}, backendOpts(opts))
	if err != nil {
		return nil, err
	}
	return fromBackend(res), nil
}

// Randomized runs Theorem 2's algorithm with the given parameters and seed.
func Randomized(g *Graph, p RandomizedParams, seed int64) (*RandomizedResult, error) {
	return RandomizedContext(context.Background(), g, p, seed, nil)
}

// RandomizedContext is Randomized with cancellation and run options; see
// DeterministicContext for the contract.
func RandomizedContext(ctx context.Context, g *Graph, p RandomizedParams, seed int64, opts *RunOptions) (*RandomizedResult, error) {
	res, err := mustBackend("rand").Color(ctx, g, backend.Params{Rand: p, Seed: seed}, backendOpts(opts))
	if err != nil {
		return nil, err
	}
	return &RandomizedResult{Result: *fromBackend(res), Rand: *res.Rand}, nil
}

// backendOpts converts the public run options to the backend seam's; all
// network setup, interrupt recovery, and close boilerplate lives behind
// backend.Exec (see internal/backend).
func backendOpts(opts *RunOptions) *backend.RunOptions {
	if opts == nil {
		return nil
	}
	return &backend.RunOptions{
		SpanHook:        opts.SpanHook,
		Workers:         opts.Workers,
		DisableFrontier: opts.DisableFrontier,
	}
}

// fromBackend converts a backend result to the public shape.
func fromBackend(res *backend.Result) *Result {
	return &Result{
		Colors:   res.Colors,
		Rounds:   res.Rounds,
		Spans:    res.Spans,
		Frontier: res.Frontier,
		Stats:    res.Stats,
	}
}

// mustBackend resolves a backend registered by internal/backend's init.
func mustBackend(name string) backend.Backend {
	b, err := backend.Get(name)
	if err != nil {
		panic(err)
	}
	return b
}

// CheckReport summarizes the invariant validation of a checked run: which
// pipeline phases published intermediate state and how many conformance
// checkers fired on it. See DESIGN.md §10 for the checker catalogue.
type CheckReport struct {
	// Checks is the total number of checker firings across the run.
	Checks int
	// Phases lists the distinct phase tags validated, sorted.
	Phases []string
}

// RunChecked is Deterministic with the conformance harness attached: every
// pipeline phase checkpoints its intermediate state (ACD, classification,
// matching, hypergraph grab, split, triads, partial colorings) and the
// registered invariant checkers validate it mid-run. The final coloring is
// additionally cross-checked against the independent sequential oracle. A
// violation aborts the run with an *invariant.Violation naming the phase and
// the invariant. Checked runs are bit-identical to unchecked ones — the
// harness only observes.
func RunChecked(g *Graph, p Params) (*Result, *CheckReport, error) {
	return RunCheckedContext(context.Background(), g, p, nil)
}

// RunCheckedContext is RunChecked with cancellation and run options; see
// DeterministicContext for the contract.
func RunCheckedContext(ctx context.Context, g *Graph, p Params, opts *RunOptions) (*Result, *CheckReport, error) {
	h := invariant.NewHarness(g)
	res, err := backend.Default().Color(ctx, g, backend.Params{Det: p}, withHarness(opts, h))
	if err != nil {
		return nil, nil, err
	}
	return checkReport(g, h, fromBackend(res))
}

// RunCheckedRandomized is Randomized with the conformance harness attached;
// see RunChecked for the contract.
func RunCheckedRandomized(g *Graph, p RandomizedParams, seed int64) (*RandomizedResult, *CheckReport, error) {
	return RunCheckedRandomizedContext(context.Background(), g, p, seed, nil)
}

// RunCheckedRandomizedContext is RunCheckedRandomized with cancellation and
// run options; see DeterministicContext for the contract.
func RunCheckedRandomizedContext(ctx context.Context, g *Graph, p RandomizedParams, seed int64, opts *RunOptions) (*RandomizedResult, *CheckReport, error) {
	h := invariant.NewHarness(g)
	bres, err := mustBackend("rand").Color(ctx, g, backend.Params{Rand: p, Seed: seed}, withHarness(opts, h))
	if err != nil {
		return nil, nil, err
	}
	res, rep, err := checkReport(g, h, fromBackend(bres))
	if err != nil {
		return nil, nil, err
	}
	return &RandomizedResult{Result: *res, Rand: *bres.Rand}, rep, nil
}

// withHarness wires the conformance harness into a run's network hook.
func withHarness(opts *RunOptions, h *invariant.Harness) *backend.RunOptions {
	bo := backendOpts(opts)
	if bo == nil {
		bo = &backend.RunOptions{}
	}
	bo.NetHook = h.Attach
	return bo
}

// checkReport cross-checks the final coloring against the sequential oracle
// (independent of every distributed verifier) and folds the oracle pass into
// the report as one extra check. An oracle rejection means a verifier bug
// slipped through and fails the run.
func checkReport(g *Graph, h *invariant.Harness, res *Result) (*Result, *CheckReport, error) {
	if err := invariant.ReferenceComplete(g, res.Colors, g.MaxDegree()); err != nil {
		return nil, nil, fmt.Errorf("deltacoloring: differential oracle rejected the final coloring: %w", err)
	}
	rep := &CheckReport{Checks: h.Checks() + 1, Phases: append(h.Phases(), "oracle")}
	return res, rep, nil
}

// Verify checks that colors is a complete proper coloring of g with colors
// in [0, Δ).
func Verify(g *Graph, colors []int) error {
	if len(colors) != g.N() {
		return fmt.Errorf("deltacoloring: %d colors for %d vertices", len(colors), g.N())
	}
	c := coloring.NewPartial(g.N())
	copy(c.Colors, colors)
	return coloring.VerifyComplete(g, c, g.MaxDegree())
}

// VerifyWithin checks that colors is a complete proper coloring of g with
// colors in [0, k). Repaired colorings use k = Δ+1: repair keeps Δ colors
// outside the damaged region and spends at most one extra color inside it.
func VerifyWithin(g *Graph, colors []int, k int) error {
	if len(colors) != g.N() {
		return fmt.Errorf("deltacoloring: %d colors for %d vertices", len(colors), g.N())
	}
	c := coloring.NewPartial(g.N())
	copy(c.Colors, colors)
	return coloring.VerifyComplete(g, c, k)
}

// RepairResult reports what a Repair call did; see internal/repair for the
// full fault model and repair contract (also documented in DESIGN.md).
type RepairResult struct {
	// Colors is the repaired coloring (the input slice, repaired in place).
	Colors []int
	// Damaged lists the vertices the 1-round distributed detector flagged
	// (uncolored, out-of-range, or endpoint of a monochromatic edge).
	Damaged []int
	// RepairSet lists the vertices actually recolored: the damaged set, or
	// its closed 1-hop neighborhood when growth was needed.
	RepairSet []int
	// Grown reports whether the repair had to grow the damaged region and
	// enable the extra color Δ.
	Grown bool
	// ExtraColorUsed counts repaired vertices left on color Δ (0 unless
	// Grown).
	ExtraColorUsed int
	// Rounds is the LOCAL round cost of detection plus recoloring.
	Rounds int
}

// Repair restores a fault-damaged Δ-coloring: it detects the damaged region
// distributedly (monochromatic edges, uncolored or out-of-range vertices)
// and recolors it with deg+1 list coloring, keeping the original Δ colors
// outside the damaged region and using at most one extra color (Δ, so Δ+1
// colors total) inside it. Undamaged colorings are returned unchanged.
// The input slice is repaired in place.
func Repair(g *Graph, colors []int) (*RepairResult, error) {
	return RepairContext(context.Background(), g, colors, nil)
}

// RepairContext is Repair with cancellation and run options; see
// DeterministicContext for the contract.
func RepairContext(ctx context.Context, g *Graph, colors []int, opts *RunOptions) (*RepairResult, error) {
	var res *RepairResult
	err := backend.Exec(ctx, g, backendOpts(opts), func(net *local.Network) error {
		rres, rerr := repair.Repair(net, colors, g.MaxDegree())
		if rerr != nil {
			return rerr
		}
		res = &RepairResult{
			Colors:         colors,
			Damaged:        rres.Damaged,
			RepairSet:      rres.RepairSet,
			Grown:          rres.Grown,
			ExtraColorUsed: rres.ExtraColorUsed,
			Rounds:         rres.Rounds,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Dynamic is a long-lived graph store with a maintained deg+1 coloring: it
// accepts batched mutations, recolors incrementally from the batch's
// frontier seeds when the dirty region is small, and falls back to a full
// recompute otherwise. Every returned snapshot is a verified proper
// coloring; see internal/dynamic and DESIGN.md §11 for the full contract
// (valid-or-unhealthy semantics, last-known-good serving, palette bounds).
type Dynamic = dynamic.Live

// DynamicOptions tunes a Dynamic store; the zero value is usable.
type DynamicOptions = dynamic.Options

// Mutation is one entry of a dynamic mutation batch.
type Mutation = dynamic.Mutation

// MutationOp names one kind of graph mutation.
type MutationOp = dynamic.Op

// The dynamic mutation vocabulary.
const (
	OpAddEdge      = dynamic.OpAddEdge
	OpRemoveEdge   = dynamic.OpRemoveEdge
	OpAddVertex    = dynamic.OpAddVertex
	OpRemoveVertex = dynamic.OpRemoveVertex
)

// DynamicResult reports what maintaining one mutation batch did.
type DynamicResult = dynamic.ApplyResult

// DynamicSnapshot is one immutable version of a Dynamic store.
type DynamicSnapshot = dynamic.Snapshot

// DynamicStats aggregates a Dynamic store's lifetime maintenance accounting.
type DynamicStats = dynamic.Stats

// DynamicInfo summarizes a Dynamic store's current structure and health.
type DynamicInfo = dynamic.Info

// NewDynamic creates a Dynamic store over g and colors it from scratch with
// at most Δ+1 colors. The store is safe for concurrent use: mutation batches
// (Apply) serialize, reads (Snapshot, Info, Stats) never wait behind an
// in-flight recoloring.
func NewDynamic(g *Graph, opts DynamicOptions) (*Dynamic, error) {
	return dynamic.New(g, opts)
}

// GenHardCliqueBipartite builds the adversarial dense family where every
// almost clique is hard: 2m cliques of size delta joined by a bipartite,
// triangle-free perfect-matching super-graph (n = 2·m·delta, requires
// m >= delta >= 2).
func GenHardCliqueBipartite(m, delta int) *Graph {
	g, _ := graph.HardCliqueBipartite(m, delta)
	return g
}

// GenEasyCliqueRing builds a ring of k cliques of size delta joined by
// parallel matchings; every clique contains 4-cycle loopholes (requires
// k >= 4, even delta >= 4).
func GenEasyCliqueRing(k, delta int) *Graph {
	g, _ := graph.EasyCliqueRing(k, delta)
	return g
}

// GenHardWithEasyPatch builds the hard family with a rewired corner that
// turns four cliques easy, mixing both pipeline paths (requires m >= 4,
// delta >= 3).
func GenHardWithEasyPatch(m, delta int) *Graph {
	g, _ := graph.HardWithEasyPatch(m, delta)
	return g
}

// WriteDOT renders g in Graphviz DOT format, filling vertices by the given
// colors (pass nil for an uncolored rendering). Pipe through `dot -Tsvg`
// to visualize small instances.
func WriteDOT(w io.Writer, g *Graph, colors []int) error {
	return graph.WriteDOT(w, g, colors, nil)
}
