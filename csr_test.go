package deltacoloring

// End-to-end invariance tests for the CSR graph core and the double-buffered
// parallel engine: the pipeline's output must not depend on vertex ID
// labeling beyond validity, and must be bit-identical at any worker count.

import (
	"math/rand"
	"runtime"
	"testing"

	"deltacoloring/internal/graph"
)

// TestPermutedIDsInvariantRounds reruns the deterministic pipeline on
// ID-permuted copies of the flagship instance: the schedule is a function of
// (n, Δ, max ID) only, so the round count must match the unpermuted run
// exactly, and every run must produce a valid Δ-coloring.
func TestPermutedIDsInvariantRounds(t *testing.T) {
	base := GenHardCliqueBipartite(16, 16)
	ref, err := Deterministic(base, ScaledParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(base, ref.Colors); err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 3; seed++ {
		g := graph.PermuteIDs(base, rand.New(rand.NewSource(seed)))
		res, err := Deterministic(g, ScaledParams())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Rounds != ref.Rounds {
			t.Fatalf("seed %d: rounds = %d, unpermuted run took %d", seed, res.Rounds, ref.Rounds)
		}
		if err := Verify(g, res.Colors); err != nil {
			t.Fatalf("seed %d: invalid coloring: %v", seed, err)
		}
	}
}

// TestWorkersBitIdentical pins the engine's determinism contract through the
// public API: one worker and NumCPU workers (and the automatic setting) must
// produce byte-for-byte identical colorings and round counts.
func TestWorkersBitIdentical(t *testing.T) {
	g := GenHardWithEasyPatch(16, 16)
	runWith := func(workers int) *Result {
		res, err := DeterministicContext(nil, g, ScaledParams(), &RunOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}
	ref := runWith(1)
	for _, workers := range []int{runtime.NumCPU(), -1} {
		res := runWith(workers)
		if res.Rounds != ref.Rounds {
			t.Fatalf("workers=%d: rounds = %d, sequential run took %d", workers, res.Rounds, ref.Rounds)
		}
		for v := range ref.Colors {
			if res.Colors[v] != ref.Colors[v] {
				t.Fatalf("workers=%d: color diverged at vertex %d: %d vs %d",
					workers, v, res.Colors[v], ref.Colors[v])
			}
		}
	}
}
