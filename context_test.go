package deltacoloring

import (
	"context"
	"errors"
	"testing"
	"time"
)

// Cancelling mid-run must abort between pipeline phases and surface
// ctx.Err(), not a panic or a coloring. The cancellation is triggered from
// the span hook, so the run is provably past its first phase.
func TestDeterministicContextCancelMidRun(t *testing.T) {
	g := GenHardCliqueBipartite(16, 16)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fired := 0
	res, err := DeterministicContext(ctx, g, ScaledParams(), &RunOptions{
		SpanHook: func(Span) {
			fired++
			cancel()
		},
	})
	if res != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got res=%v err=%v", res != nil, err)
	}
	if fired == 0 {
		t.Fatal("cancellation did not come from a closed span")
	}
}

func TestDeterministicContextExpiredDeadline(t *testing.T) {
	g := GenEasyCliqueRing(4, 16)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := DeterministicContext(ctx, g, ScaledParams(), nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
}

func TestRandomizedContextCancel(t *testing.T) {
	g := GenEasyCliqueRing(4, 16)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RandomizedContext(ctx, g, ScaledRandomizedParams(), 1, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// A background context must not change behavior: the context-aware entry
// point with no options is exactly the plain one.
func TestContextVariantsAgree(t *testing.T) {
	g := GenEasyCliqueRing(4, 16)
	plain, err := Deterministic(g, ScaledParams())
	if err != nil {
		t.Fatal(err)
	}
	var spans int
	ctxRes, err := DeterministicContext(context.Background(), g, ScaledParams(), &RunOptions{
		SpanHook: func(sp Span) { spans++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Rounds != ctxRes.Rounds {
		t.Fatalf("rounds differ: %d vs %d", plain.Rounds, ctxRes.Rounds)
	}
	for i := range plain.Colors {
		if plain.Colors[i] != ctxRes.Colors[i] {
			t.Fatalf("color %d differs", i)
		}
	}
	if spans == 0 {
		t.Fatal("span hook never fired")
	}
	if err := Verify(g, ctxRes.Colors); err != nil {
		t.Fatal(err)
	}
}
