# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test test-short race bench report report-full fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./internal/local/ ./internal/baseline/ .

bench:
	$(GO) test -bench=. -benchmem ./...

# The evaluation tables of EXPERIMENTS.md (standard scale, a few minutes).
report:
	$(GO) run ./cmd/deltabench -scale standard

# Adds the paper-exact Δ=126 instances and large-n points (much longer).
report-full:
	$(GO) run ./cmd/deltabench -scale full

fuzz:
	$(GO) test -fuzz FuzzNewGraph -fuzztime 30s .
	$(GO) test -fuzz FuzzVerify -fuzztime 30s .

clean:
	$(GO) clean ./...
