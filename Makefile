# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test test-short check race chaos chaos-restart chaos-shard conformance coverage-invariant serve bench bench-smoke bench-arena bench-dynamic bench-wal bench-scale bench-shard report report-full report-faults report-frontier fuzz clean

# `check` is the default CI path: vet + the full test suite under -race.
all: build check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

check:
	$(GO) vet ./...
	$(GO) test -race ./...

race:
	$(GO) test -race ./internal/local/ ./internal/baseline/ ./internal/service/ .

# The fault-injection / repair / service-hardening suite under the race
# detector. DELTA_CHAOS_ITERS scales the soak (default 3 fault seeds per
# case; CI uses the default, nightly soaks can raise it).
chaos:
	$(GO) test -race -count=1 -run 'TestChaos|TestPanic|TestQuarantine|TestWatchdog|TestBreaker|TestServerSideRetry|TestIdempotency|TestClientColorRetry|TestHardening|TestServiceChaos' . ./internal/service/
	$(GO) test -race -count=1 ./internal/faults/ ./internal/repair/

# Sharded-cluster chaos (DESIGN.md §15): seeded worker kill/hang/corrupt
# plans through the coordinator and its transports, plus the service-level
# guarantee that a damaged cluster never answers 200 with an invalid or
# partial coloring. DELTA_CHAOS_ITERS scales the root soak.
chaos-shard:
	$(GO) test -race -count=1 -run 'TestChaos' ./internal/shard/
	$(GO) test -race -count=1 -run 'TestChaosShard' .
	$(GO) test -race -count=1 -run 'TestShardChaosNeverServesBadColoring|TestShardWorkerEndpointRoundTrip|TestColorShardedConcurrent' ./internal/service/

# The restart chaos harness (DESIGN.md §13): a child deltaserved process on
# a durable data dir is SIGKILLed at seeded points mid-mutation-stream and
# relaunched; the run fails if any acknowledged batch is lost or any
# recovered coloring fails the oracle. CHAOS_ROUNDS scales the kill/recover
# cycles (default 3; nightly soaks can raise it).
CHAOS_ROUNDS ?= 3
chaos-restart:
	$(GO) test -race -count=1 -run 'TestRestartChaos' ./internal/service/ -args -chaos-rounds=$(CHAOS_ROUNDS)

# The deltacheck conformance matrix (EXPERIMENTS.md E20, DESIGN.md §10):
# every generator family through every pipeline with all phase checkers,
# differential oracles, metamorphic relations, and per-phase corruption
# controls, plus the dynamic-graph matrix (DESIGN.md §11.6): instrumented
# mutation streams, batch split/reorder metamorphics, and the
# dynamic/maintain corruption control. -quick drops the Δ=63 rejection
# row; `go run ./cmd/deltacheck` runs the full matrix.
conformance:
	$(GO) run -race ./cmd/deltacheck -quick

# The harness must hold itself to the same standard: fail if the
# conformance package's own statement coverage drops below 85%.
coverage-invariant:
	$(GO) test -count=1 -coverprofile=cover-invariant.out ./internal/invariant/
	@$(GO) tool cover -func=cover-invariant.out | awk '/^total:/ { \
		cov = $$3 + 0; printf "internal/invariant coverage: %.1f%% (gate 85%%)\n", cov; \
		if (cov < 85) { print "coverage gate FAILED"; exit 1 } }'
	@rm -f cover-invariant.out

serve:
	$(GO) run ./cmd/deltaserved

bench:
	$(GO) test -bench=. -benchmem ./...

# One iteration of every benchmark: catches bit-rot in benchmark code and
# gross perf/alloc regressions without the full calibration cost. The
# deltabench invocations run every pipeline on both engines (frontier and
# dense) and fail on any round-count divergence — the cheap standing
# result-preservation check for frontier scheduling.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem ./...
	$(GO) run ./cmd/deltabench -bench -bench-iters 1 -bench-out /dev/null
	$(GO) run ./cmd/deltabench -frontier -scale quick

# One-iteration backend arena (EXPERIMENTS.md table E22): every registered
# backend over the dense workload zoo with verified colorings per cell.
# Raise -bench-iters and point -bench-out at BENCH_arena.json to
# regenerate the checked-in artifact.
bench-arena:
	$(GO) run ./cmd/deltabench -arena -bench-iters 1 -bench-out BENCH_arena.ci.json

# The dynamic-maintenance benchmark (EXPERIMENTS.md E21): short mutation
# streams with the per-batch oracle on. Drop -quick and add
# `-out BENCH_dynamic.json` to regenerate the checked-in artifact.
bench-dynamic:
	$(GO) run ./cmd/deltastorm -quick

# The durable-layer benchmark (EXPERIMENTS.md E23): per-batch WAL append
# overhead under each fsync policy against a bare store on the localized
# ~1% stream (acceptance bar: fsync=off <= 10%), plus crash-recovery wall
# time vs replayed log length. Drop -quick and point -out at BENCH_wal.json
# to regenerate the checked-in artifact.
bench-wal:
	$(GO) run ./cmd/deltastorm -wal -quick -out BENCH_wal.ci.json

# The big-graph substrate benchmark (EXPERIMENTS.md table E24): streamed
# parallel CSR builds, binary-format write, mmap reopen, and deg+1 coloring
# on the circulant family, plus the clique ring through the full pipeline,
# all oracle-verified at subsampled n before timing. Quick scale is the CI
# smoke; run with -scale standard and -bench-out BENCH_scale.json to
# regenerate the checked-in artifact.
bench-scale:
	$(GO) run ./cmd/deltabench -scalebench -scale quick -bench-out BENCH_scale.ci.json

# The sharded-cluster benchmark (EXPERIMENTS.md E25): coordinator ns/op and
# per-run p50/p99 across shard counts, in-process and over the
# /v1/shard/rounds HTTP protocol against loopback worker hosts, every run
# compared bit-for-bit against the single-process oracle. Drop -quick and
# point -out at BENCH_shard.json to regenerate the checked-in artifact.
bench-shard:
	$(GO) run ./cmd/deltastorm -shard -quick -out BENCH_shard.ci.json

# The evaluation tables of EXPERIMENTS.md (standard scale, a few minutes),
# followed by the frontier-occupancy table E19.
report:
	$(GO) run ./cmd/deltabench -scale standard
	$(GO) run ./cmd/deltabench -frontier -scale standard

# Adds the paper-exact Δ=126 instances and large-n points (much longer).
report-full:
	$(GO) run ./cmd/deltabench -scale full

# The fault-tolerance experiment (EXPERIMENTS.md table E18).
report-faults:
	$(GO) run ./cmd/deltabench -faults -scale standard

# The frontier-occupancy experiment (EXPERIMENTS.md table E19).
report-frontier:
	$(GO) run ./cmd/deltabench -frontier -scale standard

fuzz:
	$(GO) test -fuzz FuzzNewGraph -fuzztime 30s .
	$(GO) test -fuzz FuzzVerify -fuzztime 30s .
	$(GO) test -fuzz FuzzVerifiers -fuzztime 30s .
	$(GO) test -fuzz FuzzGraphioRead -fuzztime 30s .
	$(GO) test -fuzz FuzzBuilder -fuzztime 30s ./internal/graph/
	$(GO) test -fuzz FuzzRepair -fuzztime 30s ./internal/repair/
	$(GO) test -fuzz FuzzFrontier -fuzztime 30s ./internal/local/
	$(GO) test -fuzz FuzzPartition -fuzztime 30s ./internal/shard/

clean:
	$(GO) clean ./...
