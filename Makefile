# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test test-short check race serve bench report report-full fuzz clean

# `check` is the default CI path: vet + the full test suite under -race.
all: build check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

check:
	$(GO) vet ./...
	$(GO) test -race ./...

race:
	$(GO) test -race ./internal/local/ ./internal/baseline/ ./internal/service/ .

serve:
	$(GO) run ./cmd/deltaserved

bench:
	$(GO) test -bench=. -benchmem ./...

# The evaluation tables of EXPERIMENTS.md (standard scale, a few minutes).
report:
	$(GO) run ./cmd/deltabench -scale standard

# Adds the paper-exact Δ=126 instances and large-n points (much longer).
report-full:
	$(GO) run ./cmd/deltabench -scale full

fuzz:
	$(GO) test -fuzz FuzzNewGraph -fuzztime 30s .
	$(GO) test -fuzz FuzzVerify -fuzztime 30s .
	$(GO) test -fuzz FuzzGraphioRead -fuzztime 30s .

clean:
	$(GO) clean ./...
