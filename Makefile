# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test test-short check race chaos serve bench bench-smoke report report-full report-faults fuzz clean

# `check` is the default CI path: vet + the full test suite under -race.
all: build check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

check:
	$(GO) vet ./...
	$(GO) test -race ./...

race:
	$(GO) test -race ./internal/local/ ./internal/baseline/ ./internal/service/ .

# The fault-injection / repair / service-hardening suite under the race
# detector. DELTA_CHAOS_ITERS scales the soak (default 3 fault seeds per
# case; CI uses the default, nightly soaks can raise it).
chaos:
	$(GO) test -race -count=1 -run 'TestChaos|TestPanic|TestQuarantine|TestWatchdog|TestBreaker|TestServerSideRetry|TestIdempotency|TestClientColorRetry|TestHardening|TestServiceChaos' . ./internal/service/
	$(GO) test -race -count=1 ./internal/faults/ ./internal/repair/

serve:
	$(GO) run ./cmd/deltaserved

bench:
	$(GO) test -bench=. -benchmem ./...

# One iteration of every benchmark: catches bit-rot in benchmark code and
# gross perf/alloc regressions without the full calibration cost.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem ./...
	$(GO) run ./cmd/deltabench -bench -bench-iters 1 -bench-out /dev/null

# The evaluation tables of EXPERIMENTS.md (standard scale, a few minutes).
report:
	$(GO) run ./cmd/deltabench -scale standard

# Adds the paper-exact Δ=126 instances and large-n points (much longer).
report-full:
	$(GO) run ./cmd/deltabench -scale full

# The fault-tolerance experiment (EXPERIMENTS.md table E18).
report-faults:
	$(GO) run ./cmd/deltabench -faults -scale standard

fuzz:
	$(GO) test -fuzz FuzzNewGraph -fuzztime 30s .
	$(GO) test -fuzz FuzzVerify -fuzztime 30s .
	$(GO) test -fuzz FuzzGraphioRead -fuzztime 30s .
	$(GO) test -fuzz FuzzBuilder -fuzztime 30s ./internal/graph/
	$(GO) test -fuzz FuzzRepair -fuzztime 30s ./internal/repair/

clean:
	$(GO) clean ./...
