package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"deltacoloring/internal/graph"
	"deltacoloring/internal/graphio"
)

func TestRunGeneratedHard(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-gen", "hard", "-m", "16", "-delta", "16"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"n=512", "Δ-coloring verified", "32 hard", "round breakdown"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunRandomizedMixed(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-gen", "mixed", "-m", "16", "-delta", "16", "-algo", "rand", "-seed", "3"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(sb.String(), "shattering:") {
		t.Fatalf("randomized output missing shattering stats:\n%s", sb.String())
	}
}

func TestRunColorsFlag(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-gen", "easy", "-m", "4", "-delta", "16", "-colors"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	// 64 vertices -> 64 color lines of the form "v c".
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	colorLines := 0
	for _, l := range lines {
		fields := strings.Fields(l)
		if len(fields) == 2 && isNum(fields[0]) && isNum(fields[1]) {
			colorLines++
		}
	}
	if colorLines != 64 {
		t.Fatalf("got %d color lines, want 64", colorLines)
	}
}

func isNum(s string) bool {
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
	}
	return len(s) > 0
}

func TestRunRejectsBadArgs(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err == nil {
		t.Fatal("accepted missing generator")
	}
	if err := run([]string{"-gen", "nope"}, &sb); err == nil {
		t.Fatal("accepted unknown generator")
	}
	if err := run([]string{"-gen", "hard", "-algo", "nope"}, &sb); err == nil {
		t.Fatal("accepted unknown algorithm")
	}
}

// TestRunBackendFlag pins the -backend surface: named backends run and
// print their name, auto prints the selector's pick, and unknown names
// fail fast listing the registered backends.
func TestRunBackendFlag(t *testing.T) {
	for _, name := range []string{"ruling", "simple"} {
		var sb strings.Builder
		if err := run([]string{"-gen", "hard", "-m", "16", "-delta", "16", "-backend", name}, &sb); err != nil {
			t.Fatalf("-backend %s: %v", name, err)
		}
		for _, want := range []string{"backend: " + name, "Δ-coloring verified"} {
			if !strings.Contains(sb.String(), want) {
				t.Fatalf("-backend %s output missing %q:\n%s", name, want, sb.String())
			}
		}
	}

	var sb strings.Builder
	if err := run([]string{"-gen", "easy", "-m", "4", "-delta", "16", "-backend", "auto"}, &sb); err != nil {
		t.Fatalf("-backend auto: %v", err)
	}
	if !strings.Contains(sb.String(), "(selected by auto)") {
		t.Fatalf("auto output missing the resolved pick:\n%s", sb.String())
	}

	err := run([]string{"-gen", "hard", "-backend", "nope"}, &sb)
	if err == nil {
		t.Fatal("accepted unknown backend")
	}
	for _, want := range []string{`unknown -backend "nope"`, "det", "ruling", "simple"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q missing %q", err, want)
		}
	}
}

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.edges")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReadGraph(t *testing.T) {
	path := writeTemp(t, "# comment\n4\n0 1\n1 2\n\n2 3\n3 0\n")
	g, closer, err := readGraph(path)
	if err != nil {
		t.Fatalf("readGraph: %v", err)
	}
	defer closer.Close()
	if g.N() != 4 || g.M() != 4 {
		t.Fatalf("graph shape n=%d m=%d", g.N(), g.M())
	}
}

func TestReadGraphFromStdin(t *testing.T) {
	g, _, err := readGraphFrom("-", strings.NewReader("4\n0 1\n1 2\n2 3\n3 0\n"))
	if err != nil {
		t.Fatalf("readGraphFrom: %v", err)
	}
	if g.N() != 4 || g.M() != 4 {
		t.Fatalf("graph shape n=%d m=%d", g.N(), g.M())
	}
	if _, _, err := readGraphFrom("-", strings.NewReader("not a graph")); err == nil {
		t.Fatal("accepted malformed stdin")
	} else if !strings.Contains(err.Error(), "stdin") {
		t.Fatalf("stdin error not attributed: %v", err)
	}
}

func TestReadGraphErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"badCount":       "x\n0 1\n",
		"badEdgeArity":   "3\n0 1 2\n",
		"badEdgeNumber":  "3\n0 x\n",
		"outOfRangeEdge": "2\n0 5\n",
		"countNotFirst":  "1 2\n3\n",
	}
	for name, content := range cases {
		t.Run(name, func(t *testing.T) {
			if _, _, err := readGraph(writeTemp(t, content)); err == nil {
				t.Fatalf("accepted %q", content)
			}
		})
	}
	if _, _, err := readGraph(filepath.Join(t.TempDir(), "missing.edges")); err == nil {
		t.Fatal("accepted missing file")
	}
}

func TestRunFromFileRoundTrip(t *testing.T) {
	// K17 minus an edge in file format.
	var sb strings.Builder
	sb.WriteString("17\n")
	for u := 0; u < 17; u++ {
		for v := u + 1; v < 17; v++ {
			if u == 0 && v == 1 {
				continue
			}
			sb.WriteString(strings.TrimSpace(strings.Join([]string{itoa(u), itoa(v)}, " ")) + "\n")
		}
	}
	path := writeTemp(t, sb.String())
	var out strings.Builder
	if err := run([]string{"-in", path}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "Δ-coloring verified: 16 colors") {
		t.Fatalf("unexpected output:\n%s", out.String())
	}
}

func itoa(x int) string {
	if x == 0 {
		return "0"
	}
	var b []byte
	for x > 0 {
		b = append([]byte{byte('0' + x%10)}, b...)
		x /= 10
	}
	return string(b)
}

func TestRunDotOutput(t *testing.T) {
	dot := filepath.Join(t.TempDir(), "out.dot")
	var sb strings.Builder
	if err := run([]string{"-gen", "easy", "-m", "4", "-delta", "16", "-dot", dot}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "graph G {") {
		t.Fatal("DOT file malformed")
	}
}

// TestRunFromBinaryFile feeds a binary-format graph through -in: the loader
// sniffs the magic and serves the instance from the mmap (or fallback) path.
func TestRunFromBinaryFile(t *testing.T) {
	g, err := graph.EasyCliqueRingStream(8, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ring.dcsr")
	if err := graphio.WriteBinaryFile(path, g); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-in", path}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "Δ-coloring verified: 16 colors") {
		t.Fatalf("unexpected output:\n%s", out.String())
	}
}
