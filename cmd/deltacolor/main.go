// Command deltacolor generates or reads a graph, runs the deterministic or
// randomized Δ-coloring algorithm on it, verifies the result, and prints a
// summary (and optionally the colors themselves).
//
// Usage:
//
//	deltacolor -gen hard -m 16 -delta 16 [-algo det|rand] [-seed 1] [-colors]
//	deltacolor -in graph.edges [-algo det] [-paper]
//	graphgen ... | deltacolor -in -
//
// Graph files use a plain edge-list format: the first line is the vertex
// count, each further line "u v" is an edge; '#' starts a comment. The
// special path "-" reads the graph from standard input. Files in the binary
// graph format (graphgen -format binary) are detected by their magic and
// opened through the memory-mapped loader, so -in works unchanged on
// multi-gigabyte instances.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"deltacoloring"
	"deltacoloring/internal/backend"
	"deltacoloring/internal/graphio"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "deltacolor:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("deltacolor", flag.ContinueOnError)
	genFlag := fs.String("gen", "", "generator: hard, easy, or mixed")
	mFlag := fs.Int("m", 16, "cliques per side (hard/mixed) or ring length (easy)")
	deltaFlag := fs.Int("delta", 16, "clique size = maximum degree")
	inFlag := fs.String("in", "", "read an edge-list graph file instead of generating (\"-\" for stdin)")
	algoFlag := fs.String("algo", "det", "algorithm: det (Theorem 1) or rand (Theorem 2)")
	backendFlag := fs.String("backend", "", "pipeline backend to run (overrides -algo): a registered name or auto for the portfolio selector")
	seedFlag := fs.Int64("seed", 1, "seed for -algo rand")
	paperFlag := fs.Bool("paper", false, "use the paper-exact parameters (ε=1/63, needs Δ ⪆ 85)")
	colorsFlag := fs.Bool("colors", false, "print the per-vertex colors")
	dotFlag := fs.String("dot", "", "write the colored graph as Graphviz DOT to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var g *deltacoloring.Graph
	switch {
	case *inFlag != "":
		var (
			closer io.Closer
			err    error
		)
		g, closer, err = readGraph(*inFlag)
		if err != nil {
			return err
		}
		if closer != nil {
			defer closer.Close()
		}
	case *genFlag == "hard":
		g = deltacoloring.GenHardCliqueBipartite(*mFlag, *deltaFlag)
	case *genFlag == "easy":
		g = deltacoloring.GenEasyCliqueRing(*mFlag, *deltaFlag)
	case *genFlag == "mixed":
		g = deltacoloring.GenHardWithEasyPatch(*mFlag, *deltaFlag)
	default:
		return fmt.Errorf("choose -gen hard|easy|mixed or -in FILE")
	}
	fmt.Fprintf(w, "graph: n=%d m=%d Δ=%d\n", g.N(), g.M(), g.MaxDegree())

	var (
		res  *deltacoloring.Result
		rand *deltacoloring.RandomizedResult
		err  error
	)
	if *backendFlag != "" {
		res, rand, err = runBackend(w, g, *backendFlag, *paperFlag, *seedFlag)
	} else {
		switch *algoFlag {
		case "det":
			fmt.Fprintln(w, "backend: det")
			p := deltacoloring.ScaledParams()
			if *paperFlag {
				p = deltacoloring.DefaultParams()
			}
			res, err = deltacoloring.Deterministic(g, p)
		case "rand":
			fmt.Fprintln(w, "backend: rand")
			p := deltacoloring.ScaledRandomizedParams()
			if *paperFlag {
				p = deltacoloring.DefaultRandomizedParams()
			}
			rand, err = deltacoloring.Randomized(g, p, *seedFlag)
			if rand != nil {
				res = &rand.Result
			}
		default:
			return fmt.Errorf("unknown -algo %q", *algoFlag)
		}
	}
	if err != nil {
		return err
	}
	if err := deltacoloring.Verify(g, res.Colors); err != nil {
		return fmt.Errorf("verification failed: %w", err)
	}
	fmt.Fprintf(w, "Δ-coloring verified: %d colors, %d LOCAL rounds\n", g.MaxDegree(), res.Rounds)
	fmt.Fprintf(w, "cliques: %d total, %d hard, %d easy; triads: %d; G_V degree %d (bound %d)\n",
		res.Stats.NumCliques, res.Stats.HardCliques, res.Stats.EasyCliques,
		res.Stats.Triads, res.Stats.PairGraphMaxDeg, g.MaxDegree()-2)
	if rand != nil {
		fmt.Fprintf(w, "shattering: %d T-nodes kept of %d proposed, %d components (max size %d)\n",
			rand.Rand.TNodesKept, rand.Rand.TNodesProposed, rand.Rand.Components, rand.Rand.MaxComponent)
	}
	fmt.Fprintln(w, "round breakdown:")
	for _, sp := range res.Spans {
		if sp.Rounds > 0 {
			fmt.Fprintf(w, "  %-18s %6d\n", sp.Name, sp.Rounds)
		}
	}
	if *colorsFlag {
		for v, c := range res.Colors {
			fmt.Fprintf(w, "%d %d\n", v, c)
		}
	}
	if *dotFlag != "" {
		f, err := os.Create(*dotFlag)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := deltacoloring.WriteDOT(f, g, res.Colors); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", *dotFlag)
	}
	return nil
}

// runBackend dispatches the run through the backend registry; "auto"
// resolves through the portfolio selector and the effective pick is
// printed either way. Unknown names fail fast listing the registry.
func runBackend(w io.Writer, g *deltacoloring.Graph, name string, paper bool, seed int64) (*deltacoloring.Result, *deltacoloring.RandomizedResult, error) {
	p := backend.Params{
		Det:  deltacoloring.ScaledParams(),
		Rand: deltacoloring.ScaledRandomizedParams(),
		Seed: seed,
	}
	if paper {
		p.Det = deltacoloring.DefaultParams()
		p.Rand = deltacoloring.DefaultRandomizedParams()
	}
	p.Rand.Params = p.Det
	var b backend.Backend
	if name == "auto" {
		b = backend.Select(g, p)
		fmt.Fprintf(w, "backend: %s (selected by auto)\n", b.Name())
	} else {
		var err error
		if b, err = backend.Get(name); err != nil {
			return nil, nil, fmt.Errorf("unknown -backend %q (want auto or one of: %s)",
				name, strings.Join(backend.Names(), ", "))
		}
		fmt.Fprintf(w, "backend: %s\n", b.Name())
	}
	bres, err := b.Color(nil, g, p, nil)
	if err != nil {
		return nil, nil, err
	}
	res := &deltacoloring.Result{
		Colors:   bres.Colors,
		Rounds:   bres.Rounds,
		Spans:    bres.Spans,
		Frontier: bres.Frontier,
		Stats:    bres.Stats,
	}
	if bres.Rand != nil {
		return res, &deltacoloring.RandomizedResult{Result: *res, Rand: *bres.Rand}, nil
	}
	return res, nil, nil
}

func readGraph(path string) (*deltacoloring.Graph, io.Closer, error) {
	return readGraphFrom(path, os.Stdin)
}

// readGraphFrom resolves the graph source: the conventional "-" means stdin
// (text edge list only — binary graphs need a seekable file); a path goes
// through the format-sniffing loader, which memory-maps binary graphs. The
// returned closer (nil for stdin) owns any mapping and must outlive every
// use of the graph.
func readGraphFrom(path string, stdin io.Reader) (*deltacoloring.Graph, io.Closer, error) {
	if path == "-" {
		g, err := graphio.Read(stdin)
		if err != nil {
			return nil, nil, fmt.Errorf("stdin: %w", err)
		}
		return g, nil, nil
	}
	g, closer, err := graphio.Load(path)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, closer, nil
}
