// Command deltawal inspects the durable state deltaserved leaves on disk:
// per-graph checkpoint + write-ahead-log directories (internal/durable).
//
// Usage:
//
//	deltawal list   -data-dir DIR            one summary line per graph
//	deltawal verify -data-dir DIR [ID...]    dry-run recovery (read-only) and
//	                                         print each graph's report as JSON;
//	                                         exits 1 if any graph is
//	                                         unrecoverable or fails the oracle
//	deltawal dump   -data-dir DIR ID         checkpoint header + every WAL
//	                                         record as JSON lines
//
// verify replays each log in memory through the same code path the server
// uses at startup — including the sequential-oracle re-verification — but
// writes nothing: torn tails are reported, not truncated.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"deltacoloring/internal/durable"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "deltawal:", err)
		if code == 0 {
			code = 2
		}
	}
	os.Exit(code)
}

func run(args []string, out io.Writer) (int, error) {
	if len(args) == 0 {
		return 2, fmt.Errorf("usage: deltawal {list|verify|dump} -data-dir DIR [args]")
	}
	cmd, rest := args[0], args[1:]
	fs := flag.NewFlagSet("deltawal "+cmd, flag.ContinueOnError)
	dataDir := fs.String("data-dir", "", "durable state directory")
	if err := fs.Parse(rest); err != nil {
		return 2, err
	}
	if *dataDir == "" {
		return 2, fmt.Errorf("-data-dir is required")
	}
	switch cmd {
	case "list":
		return cmdList(*dataDir, out)
	case "verify":
		return cmdVerify(*dataDir, fs.Args(), out)
	case "dump":
		if fs.NArg() != 1 {
			return 2, fmt.Errorf("dump needs exactly one graph ID")
		}
		return cmdDump(*dataDir, fs.Arg(0), out)
	default:
		return 2, fmt.Errorf("unknown subcommand %q (want list, verify, or dump)", cmd)
	}
}

// cmdList prints one line per graph directory: checkpoint version and
// health, WAL record count and byte size, and whether the tail is torn.
func cmdList(dataDir string, out io.Writer) (int, error) {
	ids, err := durable.List(dataDir)
	if err != nil {
		return 2, err
	}
	fmt.Fprintf(out, "%-12s %10s %-9s %8s %10s %s\n",
		"ID", "VERSION", "HEALTH", "RECORDS", "WAL_BYTES", "TAIL")
	for _, id := range ids {
		dir := filepath.Join(dataDir, id)
		st, cerr := durable.ReadCheckpoint(dir)
		if cerr != nil {
			fmt.Fprintf(out, "%-12s %10s %-9s %8s %10s %v\n", id, "-", "corrupt", "-", "-", cerr)
			continue
		}
		health := "healthy"
		if !st.Healthy {
			health = "unhealthy"
		}
		info, werr := durable.ReadWAL(filepath.Join(dir, durable.WALFile))
		if werr != nil {
			return 2, werr
		}
		tail := "clean"
		if info.Torn() {
			tail = fmt.Sprintf("torn (%d bytes: %s)", info.FileLen-info.ValidLen, info.TornReason)
		}
		fmt.Fprintf(out, "%-12s %10d %-9s %8d %10d %s\n",
			id, st.Version, health, len(info.Records), info.FileLen, tail)
	}
	return 0, nil
}

// cmdVerify dry-runs recovery for the named graphs (all when none are
// named) and prints one JSON report per graph. Exit 1 when any graph cannot
// be loaded or any recovered coloring fails the oracle; a torn tail alone is
// recoverable and does not fail the verify.
func cmdVerify(dataDir string, ids []string, out io.Writer) (int, error) {
	if len(ids) == 0 {
		var err error
		if ids, err = durable.List(dataDir); err != nil {
			return 2, err
		}
	}
	enc := json.NewEncoder(out)
	code := 0
	for _, id := range ids {
		rep, err := durable.Verify(filepath.Join(dataDir, id), durable.Config{})
		line := map[string]any{"id": id, "report": rep}
		if err != nil {
			line["error"] = err.Error()
			code = 1
		} else if rep.CheckpointRejected || rep.LastGoodRejected || rep.OracleRejected {
			code = 1
		}
		if err := enc.Encode(line); err != nil {
			return 2, err
		}
	}
	return code, nil
}

// cmdDump prints the checkpoint header and then every WAL record — version,
// offset, size, and the full mutation batch — as JSON lines.
func cmdDump(dataDir, id string, out io.Writer) (int, error) {
	dir := filepath.Join(dataDir, id)
	enc := json.NewEncoder(out)
	st, err := durable.ReadCheckpoint(dir)
	if err != nil {
		return 2, err
	}
	if err := enc.Encode(map[string]any{
		"type": "checkpoint", "version": st.Version, "healthy": st.Healthy,
		"n": st.G.N(), "num_colors": st.NumColors, "backend": st.Backend,
	}); err != nil {
		return 2, err
	}
	info, err := durable.ReadWAL(filepath.Join(dir, durable.WALFile))
	if err != nil {
		return 2, err
	}
	for _, rec := range info.Records {
		if err := enc.Encode(map[string]any{
			"type": "record", "version": rec.Version, "offset": rec.Offset,
			"size": rec.Size, "mutations": rec.Batch,
		}); err != nil {
			return 2, err
		}
	}
	if info.Torn() {
		if err := enc.Encode(map[string]any{
			"type": "torn", "valid_len": info.ValidLen, "file_len": info.FileLen,
			"reason": info.TornReason,
		}); err != nil {
			return 2, err
		}
	}
	return 0, nil
}
