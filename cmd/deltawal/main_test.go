package main

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"deltacoloring/internal/durable"
	"deltacoloring/internal/dynamic"
	"deltacoloring/internal/graph"
)

// seedStore creates one durable graph under dataDir/id with a few logged
// batches and abandons it un-checkpointed (tail present).
func seedStore(t *testing.T, dataDir, id string, batches int) {
	t.Helper()
	g := graph.ErdosRenyi(60, 0.05, rand.New(rand.NewSource(1)))
	live, err := dynamic.New(g, dynamic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := durable.Create(filepath.Join(dataDir, id), live, durable.Config{
		Fsync: durable.FsyncOff, CheckpointEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < batches; i++ {
		var u, v int
		for u == v {
			u, v = rng.Intn(g.N()), rng.Intn(g.N())
		}
		op := dynamic.OpAddEdge
		snap, _ := live.Snapshot()
		if snap.G.HasEdge(u, v) {
			op = dynamic.OpRemoveEdge
		}
		if _, err := s.Apply([]dynamic.Mutation{{Op: op, U: u, V: v}}); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	// Abandon without Close so the WAL tail survives for inspection.
}

func TestListVerifyDump(t *testing.T) {
	dataDir := t.TempDir()
	seedStore(t, dataDir, "g000001", 5)
	seedStore(t, dataDir, "g000002", 3)

	var out bytes.Buffer
	code, err := run([]string{"list", "-data-dir", dataDir}, &out)
	if err != nil || code != 0 {
		t.Fatalf("list: code %d err %v", code, err)
	}
	listing := out.String()
	for _, want := range []string{"g000001", "g000002", "healthy", "clean"} {
		if !strings.Contains(listing, want) {
			t.Fatalf("list output missing %q:\n%s", want, listing)
		}
	}

	out.Reset()
	code, err = run([]string{"verify", "-data-dir", dataDir}, &out)
	if err != nil || code != 0 {
		t.Fatalf("verify: code %d err %v\n%s", code, err, out.String())
	}
	if strings.Count(out.String(), "\"report\"") != 2 {
		t.Fatalf("verify should report both graphs:\n%s", out.String())
	}

	out.Reset()
	code, err = run([]string{"dump", "-data-dir", dataDir, "g000001"}, &out)
	if err != nil || code != 0 {
		t.Fatalf("dump: code %d err %v", code, err)
	}
	dump := out.String()
	if !strings.Contains(dump, `"type":"checkpoint"`) {
		t.Fatalf("dump missing checkpoint line:\n%s", dump)
	}
	if got := strings.Count(dump, `"type":"record"`); got != 5 {
		t.Fatalf("dump shows %d records, want 5:\n%s", got, dump)
	}
}

func TestVerifyReportsTornTail(t *testing.T) {
	dataDir := t.TempDir()
	seedStore(t, dataDir, "g000001", 4)
	walPath := filepath.Join(dataDir, "g000001", durable.WALFile)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, data[:len(data)-2], 0o644); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	// A torn tail is recoverable: verify reports it but still exits 0.
	code, err := run([]string{"verify", "-data-dir", dataDir}, &out)
	if err != nil || code != 0 {
		t.Fatalf("verify: code %d err %v\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "torn") {
		t.Fatalf("verify did not surface the torn tail:\n%s", out.String())
	}
	// And it really was read-only.
	after, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(data)-2 {
		t.Fatal("verify modified the WAL")
	}

	out.Reset()
	code, err = run([]string{"list", "-data-dir", dataDir}, &out)
	if err != nil || code != 0 {
		t.Fatalf("list: code %d err %v", code, err)
	}
	if !strings.Contains(out.String(), "torn") {
		t.Fatalf("list did not flag the torn tail:\n%s", out.String())
	}
}

func TestBadUsage(t *testing.T) {
	var out bytes.Buffer
	if code, err := run(nil, &out); err == nil || code != 2 {
		t.Fatal("missing subcommand accepted")
	}
	if code, err := run([]string{"list"}, &out); err == nil || code != 2 {
		t.Fatal("missing -data-dir accepted")
	}
	if code, err := run([]string{"frobnicate", "-data-dir", t.TempDir()}, &out); err == nil || code != 2 {
		t.Fatal("unknown subcommand accepted")
	}
	if code, err := run([]string{"dump", "-data-dir", t.TempDir()}, &out); err == nil || code != 2 {
		t.Fatal("dump without ID accepted")
	}
}
