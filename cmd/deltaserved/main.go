// Command deltaserved runs the Δ-coloring HTTP service: a bounded worker
// pool over the machine-checked pipeline with a result cache, async jobs,
// and Prometheus metrics.
//
// Usage:
//
//	deltaserved [-addr :8090] [-workers 4] [-queue 64] [-cache 256]
//	            [-timeout 30s] [-max-timeout 5m] [-drain 30s]
//	            [-max-graphs 16] [-mutation-queue 32]
//	            [-data-dir DIR] [-fsync always|interval|off] [-checkpoint-every 64]
//	            [-graph-dir DIR]
//	            [-shards 16] [-workers-addrs URL1,URL2,...]
//
// With -graph-dir, color and graph-create requests may name operator-staged
// graph files (text or binary format) through their "file" source; paths
// are confined to the directory.
//
// With -workers-addrs, sharded ?shards= color requests fan their cross-cut
// LOCAL rounds out to the listed worker instances over POST /v1/shard/rounds
// (each instance serves the endpoint itself, so plain deltaserved processes
// form the cluster); without it, shards run in-process. -shards caps the
// per-request shard count.
//
// With -data-dir, every dynamic graph is durable: mutation batches are
// written to a per-graph WAL before they are acknowledged, checkpoints bound
// replay, startup recovers whatever the last process left behind (readiness
// gated until done), and a clean shutdown checkpoints every store so the
// next start replays nothing.
//
// Endpoints: POST /v1/color, GET /v1/jobs/{id}, the dynamic-graph surface
// under /v1/graphs (create/list/get/delete, POST {id}/mutations,
// GET {id}/coloring), GET /healthz, GET /livez, GET /readyz, GET /metrics.
// See README.md ("Running the service") for request examples.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"deltacoloring/internal/durable"
	"deltacoloring/internal/service"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "deltaserved:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("deltaserved", flag.ContinueOnError)
	addr := fs.String("addr", ":8090", "listen address")
	workers := fs.Int("workers", 4, "worker pool size")
	queue := fs.Int("queue", 64, "job queue depth (full queue answers 429)")
	cache := fs.Int("cache", 256, "result cache entries")
	timeout := fs.Duration("timeout", 30*time.Second, "default per-job timeout")
	maxTimeout := fs.Duration("max-timeout", 5*time.Minute, "cap on request-supplied timeouts")
	drain := fs.Duration("drain", 30*time.Second, "shutdown drain budget for in-flight jobs")
	maxGraphs := fs.Int("max-graphs", 16, "cap on live dynamic graphs (creation past it answers 409)")
	mutQueue := fs.Int("mutation-queue", 32, "per-graph mutation queue depth (full queue answers 429)")
	dataDir := fs.String("data-dir", "", "durable state directory (empty: in-memory graphs only)")
	graphDir := fs.String("graph-dir", "", "directory of staged graph files served by the \"file\" request source (empty: disabled)")
	fsyncFlag := fs.String("fsync", "always", "WAL flush policy: always, interval, or off")
	ckptEvery := fs.Int("checkpoint-every", 64, "checkpoint a durable graph after this many batches (negative disables)")
	maxShards := fs.Int("shards", 16, "cap on per-request ?shards= shard counts")
	workersAddrs := fs.String("workers-addrs", "", "comma-separated worker base URLs for sharded runs (empty: shards run in-process)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fsync, err := durable.ParseFsyncPolicy(*fsyncFlag)
	if err != nil {
		return err
	}
	var shardAddrs []string
	for _, a := range strings.Split(*workersAddrs, ",") {
		if a = strings.TrimSpace(a); a == "" {
			continue
		}
		u, err := url.Parse(a)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return fmt.Errorf("bad -workers-addrs entry %q (want e.g. http://10.0.0.2:8090)", a)
		}
		shardAddrs = append(shardAddrs, strings.TrimRight(a, "/"))
	}

	svc := service.New(service.Config{
		Workers:            *workers,
		QueueDepth:         *queue,
		CacheSize:          *cache,
		DefaultTimeout:     *timeout,
		MaxTimeout:         *maxTimeout,
		MaxGraphs:          *maxGraphs,
		MutationQueueDepth: *mutQueue,
		DataDir:            *dataDir,
		GraphDir:           *graphDir,
		Fsync:              fsync,
		CheckpointEvery:    *ckptEvery,
		MaxShards:          *maxShards,
		ShardAddrs:         shardAddrs,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		durability := "in-memory graphs"
		if *dataDir != "" {
			durability = fmt.Sprintf("durable graphs in %s (fsync=%s)", *dataDir, fsync)
		}
		if len(shardAddrs) > 0 {
			log.Printf("deltaserved: sharded runs fan out to %d workers: %s", len(shardAddrs), strings.Join(shardAddrs, ", "))
		}
		log.Printf("deltaserved: listening on %s (%d workers, queue %d, cache %d, %s)",
			*addr, *workers, *queue, *cache, durability)
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errc <- err
		}
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		log.Printf("deltaserved: %v, draining (budget %v)", sig, *drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop accepting connections first, then drain the job queue.
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("deltaserved: HTTP shutdown: %v", err)
	}
	if err := svc.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain incomplete: %w", err)
	}
	log.Printf("deltaserved: drained cleanly")
	return nil
}
