package main

// Cluster load mode (-shard): benchmarks the deltashard sharded coordinator
// across shard counts and transports. Each (family, transport, k) cell runs
// concurrent coordinator streams — the in-process transport measures the
// pure partition/fan-out/merge machinery, the http transport adds the full
// /v1/shard/rounds wire protocol against loopback worker hosts. Every run's
// coloring is compared bit-for-bit against the single-process greedy oracle,
// so the numbers are for runs that provably kept the bit-identity contract.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"deltacoloring/internal/graph"
	"deltacoloring/internal/local"
	"deltacoloring/internal/shard"
)

// shardCellResult is one (family, transport, shard-count) measurement.
type shardCellResult struct {
	Name      string `json:"name"`
	N         int    `json:"n"`
	M         int    `json:"m"`
	Delta     int    `json:"delta"`
	Shards    int    `json:"shards"`
	Transport string `json:"transport"` // "inproc" or "http"
	// Workers is the worker-host count behind the http transport (0 for
	// inproc); shards land on hosts round-robin.
	Workers int `json:"workers,omitempty"`
	Runs    int `json:"runs"`
	// NsPerOp is total wall time across all concurrent streams divided by
	// the number of runs; P50/P99 are per-run latency percentiles.
	NsPerOp float64 `json:"ns_per_op"`
	P50MS   float64 `json:"p50_ms"`
	P99MS   float64 `json:"p99_ms"`
	Rounds  int     `json:"rounds"`
	// Cut-traffic counters from one run (deterministic per cell).
	CutEdges        int `json:"cut_edges"`
	Ghosts          int `json:"ghosts"`
	BoundaryUpdates int `json:"boundary_updates"`
	StepCalls       int `json:"step_calls"`
	// BitIdentical records the per-run comparison against the
	// single-process greedy oracle; the bench aborts if any run drifts, so a
	// written file always says true.
	BitIdentical bool `json:"bit_identical"`
}

type shardOutput struct {
	Description string            `json:"description"`
	Generated   string            `json:"generated"`
	GoVersion   string            `json:"go_version"`
	NumCPU      int               `json:"num_cpu"`
	Concurrency int               `json:"concurrency"`
	Cells       []shardCellResult `json:"cells"`
}

func shardFamilies(quick bool) []family {
	fams := []family{
		{"torus_64x64", graph.Torus(64, 64)},
		{"erdos_n1000", graph.ErdosRenyi(1000, 0.01, rand.New(rand.NewSource(7)))},
	}
	if !quick {
		fams = append(fams,
			family{"torus_128x128", graph.Torus(128, 128)},
			family{"regular_n20000_d8", graph.RandomRegular(20000, 8, rand.New(rand.NewSource(9)))},
		)
	}
	return fams
}

// solveOracle runs the greedy wire algorithm densely in a single process —
// the bit-identity reference for every sharded cell.
func solveOracle(g *graph.Graph) ([]int, int, error) {
	net := local.New(g)
	defer net.Close()
	return shard.SolveSingle(net)
}

// workerFleet spins nWorkers loopback HTTP hosts serving /v1/shard/rounds.
func workerFleet(nWorkers int) (addrs []string, stop func()) {
	servers := make([]*httptest.Server, nWorkers)
	for i := range servers {
		host := shard.NewHost(0)
		mux := http.NewServeMux()
		mux.HandleFunc("POST "+shard.RoundsPath, func(w http.ResponseWriter, r *http.Request) {
			req := &shard.RoundsRequest{}
			if err := json.NewDecoder(r.Body).Decode(req); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(host.Handle(req))
		})
		servers[i] = httptest.NewServer(mux)
		addrs = append(addrs, servers[i].URL)
	}
	return addrs, func() {
		for _, s := range servers {
			s.Close()
		}
	}
}

// runShardCell drives conc concurrent coordinator streams of runsPerStream
// runs each and aggregates latency. transport is "inproc" or "http" (with
// addrs naming the worker fleet).
func runShardCell(fam family, k int, transport string, addrs []string, conc, runsPerStream int, oracle []int, oracleRounds int) (shardCellResult, error) {
	r := shardCellResult{
		Name:      fam.name,
		N:         fam.g.N(),
		M:         fam.g.M(),
		Delta:     fam.g.MaxDegree(),
		Shards:    k,
		Transport: transport,
		Workers:   len(addrs),
		Runs:      conc * runsPerStream,
	}
	lats := make([][]float64, conc)
	errs := make([]error, conc)
	var firstRes *shard.Result
	var mu sync.Mutex
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < conc; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < runsPerStream; i++ {
				cfg := shard.Config{K: k, Session: fmt.Sprintf("bench-%s-k%d-c%d-r%d", fam.name, k, c, i)}
				if transport == "http" {
					tr, err := shard.NewHTTPTransport(addrs, cfg.Session, nil)
					if err != nil {
						errs[c] = err
						return
					}
					cfg.Transport = tr
				}
				t0 := time.Now()
				res, err := shard.Run(context.Background(), fam.g, cfg)
				lat := time.Since(t0)
				if err != nil {
					errs[c] = fmt.Errorf("k=%d run %d: %w", k, i, err)
					return
				}
				for v := range oracle {
					if res.Colors[v] != oracle[v] {
						errs[c] = fmt.Errorf("k=%d run %d: vertex %d drifted from the oracle", k, i, v)
						return
					}
				}
				if res.Rounds != oracleRounds {
					errs[c] = fmt.Errorf("k=%d run %d: %d rounds, oracle used %d", k, i, res.Rounds, oracleRounds)
					return
				}
				lats[c] = append(lats[c], float64(lat.Nanoseconds())/1e6)
				mu.Lock()
				if firstRes == nil {
					firstRes = res
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return r, err
		}
	}
	var all []float64
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Float64s(all)
	r.NsPerOp = float64(elapsed.Nanoseconds()) / float64(r.Runs)
	r.P50MS = percentile(all, 0.50)
	r.P99MS = percentile(all, 0.99)
	r.Rounds = firstRes.Rounds
	r.CutEdges = firstRes.Traffic.CutEdges
	r.Ghosts = firstRes.Traffic.Ghosts
	r.BoundaryUpdates = firstRes.Traffic.BoundaryUpdates
	r.StepCalls = firstRes.Traffic.StepCalls
	r.BitIdentical = true
	return r, nil
}

// runShardBench is the -shard entry point.
func runShardBench(quick bool, conc int, out string) error {
	if conc < 1 {
		conc = 1
	}
	shardCounts := []int{1, 2, 4, 8}
	runsPerStream := 8
	httpRuns := 3
	if quick {
		shardCounts = []int{1, 2, 4}
		runsPerStream = 3
		httpRuns = 2
	}
	var cells []shardCellResult
	for _, fam := range shardFamilies(quick) {
		oracle, oracleRounds, err := solveOracle(fam.g)
		if err != nil {
			return fmt.Errorf("%s: oracle: %w", fam.name, err)
		}
		for _, k := range shardCounts {
			cell, err := runShardCell(fam, k, "inproc", nil, conc, runsPerStream, oracle, oracleRounds)
			if err != nil {
				return fmt.Errorf("%s: %w", fam.name, err)
			}
			cells = append(cells, cell)
			fmt.Printf("%-20s inproc k=%d  n=%-6d %10.0f ns/op  p50=%7.2fms p99=%7.2fms  rounds=%-3d cut=%-6d boundary=%-7d steps=%d\n",
				fam.name, k, cell.N, cell.NsPerOp, cell.P50MS, cell.P99MS, cell.Rounds, cell.CutEdges, cell.BoundaryUpdates, cell.StepCalls)
		}
		// HTTP transport: k=4 over a 2-host loopback fleet — the full wire
		// protocol including graph shipping. Fixed at 4 in both modes so the
		// quick cells are a strict subset of the full run's (the CI shape
		// diff depends on that).
		addrs, stop := workerFleet(2)
		k := 4
		cell, err := runShardCell(fam, k, "http", addrs, conc, httpRuns, oracle, oracleRounds)
		stop()
		if err != nil {
			return fmt.Errorf("%s: http: %w", fam.name, err)
		}
		cells = append(cells, cell)
		fmt.Printf("%-20s http   k=%d  n=%-6d %10.0f ns/op  p50=%7.2fms p99=%7.2fms  rounds=%-3d cut=%-6d boundary=%-7d steps=%d\n",
			fam.name, k, cell.N, cell.NsPerOp, cell.P50MS, cell.P99MS, cell.Rounds, cell.CutEdges, cell.BoundaryUpdates, cell.StepCalls)
	}

	if out != "" {
		o := shardOutput{
			Description: "deltashard cluster benchmarks: the sharded coordinator across shard counts, in-process and over the /v1/shard/rounds HTTP protocol against loopback worker hosts. Each cell runs concurrent coordinator streams; ns/op is total wall time over all runs, p50/p99 are per-run latencies, and the cut-traffic counters (cut_edges, ghosts, boundary_updates, step_calls) come from one deterministic run. Every run's coloring was compared bit-for-bit against the single-process greedy oracle. Regenerate with: go run ./cmd/deltastorm -shard -out BENCH_shard.json",
			Generated:   time.Now().UTC().Format(time.RFC3339),
			GoVersion:   runtime.Version(),
			NumCPU:      runtime.NumCPU(),
			Concurrency: conc,
			Cells:       cells,
		}
		data, err := json.MarshalIndent(&o, "", " ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d cells)\n", out, len(cells))
	}
	return nil
}
