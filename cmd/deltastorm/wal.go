package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"deltacoloring/internal/durable"
	"deltacoloring/internal/dynamic"
	"deltacoloring/internal/graph"
	"deltacoloring/internal/invariant"
)

// The -wal mode benchmarks the deltadurable layer on the BENCH_dynamic
// localized ~1% workload: WAL append overhead per fsync policy against a
// bare in-memory store driven through the identical batch sequence, and
// recovery wall time as a function of replayed log length. The acceptance
// bar is fsync=off overhead <= 10% on this workload.

// fsyncResult is one policy's stream measurement.
type fsyncResult struct {
	Policy      string  `json:"policy"` // "baseline" is the bare dynamic.Live store
	Batches     int     `json:"batches"`
	MeanApplyMS float64 `json:"mean_apply_ms"`
	P99ApplyMS  float64 `json:"p99_apply_ms"`
	// OverheadPct is (mean - baseline mean) / baseline mean * 100; 0 for the
	// baseline row.
	OverheadPct float64 `json:"overhead_pct"`
	// WALBytes is the total logged volume (0 for the baseline).
	WALBytes      uint64  `json:"wal_bytes,omitempty"`
	BytesPerBatch float64 `json:"bytes_per_batch,omitempty"`
	Fsyncs        uint64  `json:"fsyncs,omitempty"`
}

// recoveryResult is one replay-length measurement.
type recoveryResult struct {
	LogRecords int     `json:"log_records"`
	RecoverMS  float64 `json:"recover_ms"`
	Replayed   int     `json:"replayed"`
	Version    int64   `json:"version"`
	Healthy    bool    `json:"healthy"`
}

type walOutput struct {
	Description string `json:"description"`
	Generated   string `json:"generated"`
	GoVersion   string `json:"go_version"`
	NumCPU      int    `json:"num_cpu"`
	Workload    struct {
		Family    string `json:"family"`
		N         int    `json:"n"`
		M         int    `json:"m"`
		BatchSize int    `json:"batch_size"`
		Localized bool   `json:"localized"`
	} `json:"workload"`
	Fsync    []fsyncResult    `json:"fsync"`
	Recovery []recoveryResult `json:"recovery"`
}

// walStream drives the shared workload through apply, returning per-batch
// latencies. The batch sequence is a pure function of (graph, seed, batch
// count), so every policy measures the identical stream.
func walStream(g *graph.Graph, seed int64, batches, batchSize int,
	apply func(*dynamic.Live, []dynamic.Mutation) error) (*dynamic.Live, []float64, error) {
	l, err := dynamic.New(g, dynamic.Options{})
	if err != nil {
		return nil, nil, err
	}
	rng := newSeededRNG(seed)
	lat := make([]float64, 0, batches)
	for b := 0; b < batches; b++ {
		snap, ok := l.Snapshot()
		if !ok {
			return nil, nil, fmt.Errorf("store unhealthy at batch %d", b)
		}
		batch := localizedBatch(rng, snap, batchSize)
		if len(batch) == 0 {
			return nil, nil, fmt.Errorf("batch %d: generator produced no mutations", b)
		}
		t0 := time.Now()
		if err := apply(l, batch); err != nil {
			return nil, nil, fmt.Errorf("batch %d: %w", b, err)
		}
		lat = append(lat, float64(time.Since(t0).Nanoseconds())/1e6)
	}
	return l, lat, nil
}

func newSeededRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func sortFloats(xs []float64) { sort.Float64s(xs) }

func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func runWALBench(quick bool, seed int64, outPath string) error {
	g := graph.ErdosRenyi(1000, 0.01, newSeededRNG(7))
	batchSize := g.M() / 100
	if batchSize < 1 {
		batchSize = 1
	}
	batches := 160
	recoveryLens := []int{64, 256, 1024}
	if quick {
		batches = 48
		recoveryLens = []int{16, 64, 128}
	}

	var out walOutput
	out.Description = "deltadurable WAL benchmarks on the BENCH_dynamic localized ~1% workload: per-batch apply latency through a durable store under each fsync policy vs the identical stream on a bare in-memory store (acceptance bar: fsync=off overhead <= 10%), and crash recovery wall time vs replayed WAL length. Regenerate with: go run ./cmd/deltastorm -wal -out BENCH_wal.json"
	out.Generated = time.Now().UTC().Format(time.RFC3339)
	out.GoVersion = runtime.Version()
	out.NumCPU = runtime.NumCPU()
	out.Workload.Family = "erdos_n1000"
	out.Workload.N = g.N()
	out.Workload.M = g.M()
	out.Workload.BatchSize = batchSize
	out.Workload.Localized = true

	workDir, err := os.MkdirTemp("", "deltastorm-wal-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(workDir)

	// Baseline: bare store, no durability.
	_, baseLat, err := walStream(g, seed, batches, batchSize,
		func(l *dynamic.Live, b []dynamic.Mutation) error { _, err := l.Apply(b); return err })
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	baseMean := meanOf(baseLat)
	sortFloats(baseLat)
	out.Fsync = append(out.Fsync, fsyncResult{
		Policy: "baseline", Batches: batches,
		MeanApplyMS: baseMean, P99ApplyMS: percentile(baseLat, 0.99),
	})
	fmt.Printf("%-9s mean=%7.3fms p99=%7.3fms\n", "baseline", baseMean, percentile(baseLat, 0.99))

	for i, pol := range []durable.FsyncPolicy{durable.FsyncOff, durable.FsyncInterval, durable.FsyncAlways} {
		dir := filepath.Join(workDir, fmt.Sprintf("fsync-%d", i))
		var store *durable.Store
		_, lat, err := walStream(g, seed, batches, batchSize,
			func(l *dynamic.Live, b []dynamic.Mutation) error {
				if store == nil {
					// First batch: wrap the freshly initialized live store
					// (outside the timed section would be nicer, but Create
					// needs the store walStream builds; its one-time cost is
					// excluded by measuring per-batch latency from batch 2 on
					// anyway, and the checkpoint is tiny at n=1000).
					var cerr error
					store, cerr = durable.Create(dir, l, durable.Config{Fsync: pol, CheckpointEvery: -1})
					if cerr != nil {
						return cerr
					}
				}
				_, err := store.Apply(b)
				return err
			})
		if err != nil {
			return fmt.Errorf("fsync=%s: %w", pol, err)
		}
		stats := store.WALStats()
		if err := store.Close(); err != nil {
			return err
		}
		// Drop the first batch's latency: it carries Create's checkpoint.
		lat = lat[1:]
		mean := meanOf(lat)
		sortFloats(lat)
		fr := fsyncResult{
			Policy: string(pol), Batches: len(lat),
			MeanApplyMS: mean, P99ApplyMS: percentile(lat, 0.99),
			OverheadPct:   100 * (mean - baseMean) / baseMean,
			WALBytes:      stats.AppendBytes,
			BytesPerBatch: float64(stats.AppendBytes) / float64(stats.Appends),
			Fsyncs:        stats.Fsyncs,
		}
		out.Fsync = append(out.Fsync, fr)
		fmt.Printf("%-9s mean=%7.3fms p99=%7.3fms overhead=%+6.1f%% (%d fsyncs, %.0f B/batch)\n",
			fr.Policy, fr.MeanApplyMS, fr.P99ApplyMS, fr.OverheadPct, fr.Fsyncs, fr.BytesPerBatch)
	}

	// Recovery time vs log length: leave L records un-checkpointed, crash,
	// and time the full recovery (checkpoint load, replay, oracle, fresh
	// checkpoint install).
	for _, L := range recoveryLens {
		dir := filepath.Join(workDir, fmt.Sprintf("recover-%d", L))
		var store *durable.Store
		live, _, err := walStream(g, seed, L, batchSize,
			func(l *dynamic.Live, b []dynamic.Mutation) error {
				if store == nil {
					var cerr error
					store, cerr = durable.Create(dir, l, durable.Config{Fsync: durable.FsyncOff, CheckpointEvery: -1})
					if cerr != nil {
						return cerr
					}
				}
				_, err := store.Apply(b)
				return err
			})
		if err != nil {
			return fmt.Errorf("recovery seed stream (L=%d): %w", L, err)
		}
		store.Abandon()
		t0 := time.Now()
		rec, rep, err := durable.Recover(dir, durable.Config{})
		recoverMS := float64(time.Since(t0).Nanoseconds()) / 1e6
		if err != nil {
			return fmt.Errorf("recover (L=%d): %w", L, err)
		}
		// Cross-check: the recovered store must match the surviving one.
		snap, ok := rec.Live().Snapshot()
		if !ok {
			return fmt.Errorf("recover (L=%d): unhealthy", L)
		}
		if err := invariant.ReferenceComplete(snap.G, snap.Colors, snap.NumColors); err != nil {
			return fmt.Errorf("recover (L=%d): oracle: %w", L, err)
		}
		if snap.Version != live.Version() {
			return fmt.Errorf("recover (L=%d): version %d, want %d", L, snap.Version, live.Version())
		}
		rec.Close()
		out.Recovery = append(out.Recovery, recoveryResult{
			LogRecords: L, RecoverMS: recoverMS,
			Replayed: rep.Replayed, Version: rep.Version, Healthy: rep.Healthy,
		})
		fmt.Printf("recover L=%-5d %8.2fms (replayed %d to version %d)\n", L, recoverMS, rep.Replayed, rep.Version)
	}

	if outPath != "" {
		data, err := json.MarshalIndent(&out, "", " ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d fsync rows, %d recovery rows)\n", outPath, len(out.Fsync), len(out.Recovery))
	}
	return nil
}
