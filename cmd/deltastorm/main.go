// Command deltastorm benchmarks the deltalive dynamic-graph subsystem: it
// drives sustained in-process mutation streams against dynamic.Live stores
// across graph families, mutation rates, and batch sizes, and reports
// updates/sec, recolor-latency percentiles (p50/p99), the incremental
// fraction, and the incremental-vs-recompute cost ratio that justifies the
// subsystem (a batch touching ≤5% of the edges should cost a small fraction
// of a full recompute).
//
// Every maintained coloring is verified against the sequential oracle after
// each batch — outside the timed sections — so the numbers are for streams
// that provably never served an invalid coloring.
//
// Usage:
//
//	deltastorm [-quick] [-out BENCH_dynamic.json] [-seed 7]
//	deltastorm -wal [-quick] [-out BENCH_wal.json]     # durable-layer benchmarks
//	deltastorm -shard [-quick] [-conc 4] [-out BENCH_shard.json]  # sharded-cluster benchmarks
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"deltacoloring/internal/dynamic"
	"deltacoloring/internal/graph"
	"deltacoloring/internal/invariant"
)

// workloadResult is one (family, batch-size) stream record.
type workloadResult struct {
	Name      string  `json:"name"`
	N         int     `json:"n"`
	M         int     `json:"m"`
	Delta     int     `json:"delta"`
	Batches   int     `json:"batches"`
	BatchSize int     `json:"batch_size"`
	BatchPct  float64 `json:"batch_pct_of_edges"`
	// Localized marks streams whose mutations cluster in a BFS ball (the
	// regime incremental maintenance is designed for) instead of being
	// spread uniformly over the vertex set.
	Localized  bool    `json:"localized,omitempty"`
	Mutations  int     `json:"mutations"`
	UpdatesSec float64 `json:"updates_per_sec"`
	// Recolor percentiles are maintenance-only wall time (detection,
	// planning, recoloring, verification); apply percentiles are the full
	// end-to-end batch latency including the structural CSR rebuild.
	P50RecolorMS float64 `json:"p50_recolor_ms"`
	P99RecolorMS float64 `json:"p99_recolor_ms"`
	P50ApplyMS   float64 `json:"p50_apply_ms"`
	P99ApplyMS   float64 `json:"p99_apply_ms"`
	// IncrementalFraction is the share of batches maintained incrementally.
	IncrementalFraction float64 `json:"incremental_fraction"`
	// IncrementalVsRecompute is mean incremental recolor time divided by
	// the measured full-recompute recolor time on the same store (lower is
	// better; the acceptance bar for ≤5%-of-edges batches is ≤0.25).
	IncrementalVsRecompute float64 `json:"incremental_vs_recompute"`
	RecomputeMS            float64 `json:"recompute_ms"`
	MeanRecoloredPerBatch  float64 `json:"mean_recolored_per_batch"`
	MeanRoundsPerBatch     float64 `json:"mean_rounds_per_batch"`
}

type output struct {
	Description string           `json:"description"`
	Generated   string           `json:"generated"`
	GoVersion   string           `json:"go_version"`
	NumCPU      int              `json:"num_cpu"`
	Workloads   []workloadResult `json:"workloads"`
}

type family struct {
	name string
	g    *graph.Graph
}

func families(quick bool) []family {
	fams := []family{
		{"erdos_n1000", graph.ErdosRenyi(1000, 0.01, rand.New(rand.NewSource(7)))},
		{"torus_64x64", graph.Torus(64, 64)},
	}
	if !quick {
		fams = append(fams,
			family{"erdos_n8000", graph.ErdosRenyi(8000, 0.0008, rand.New(rand.NewSource(8)))},
			family{"torus_128x128", graph.Torus(128, 128)},
		)
	}
	return fams
}

// randomBatch builds one valid batch of edge flips against the snapshot,
// never proposing the same pair twice. Flips are biased 50/50 add/remove so
// the edge count stays roughly stationary over the stream.
func randomBatch(rng *rand.Rand, snap *dynamic.Snapshot, size int) []dynamic.Mutation {
	batch := make([]dynamic.Mutation, 0, size)
	used := map[[2]int]bool{}
	for len(batch) < size {
		u, v := rng.Intn(snap.G.N()), rng.Intn(snap.G.N())
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if used[[2]int{u, v}] {
			continue
		}
		used[[2]int{u, v}] = true
		op := dynamic.OpAddEdge
		if snap.G.HasEdge(u, v) {
			op = dynamic.OpRemoveEdge
		}
		batch = append(batch, dynamic.Mutation{Op: op, U: u, V: v})
	}
	return batch
}

// localizedBatch clusters one batch inside a BFS ball around a random
// center: it grows the ball to about twice the batch size and then flips
// edges whose endpoints both lie in the ball (random balanced add/remove,
// removals drawn from existing ball-internal edges). This models the
// spatially-correlated update streams incremental maintenance targets.
func localizedBatch(rng *rand.Rand, snap *dynamic.Snapshot, size int) []dynamic.Mutation {
	g := snap.G
	n := g.N()
	target := 2 * size
	if target > n {
		target = n
	}
	var ball []int
	inBall := make([]bool, n)
	for len(ball) < target {
		c := rng.Intn(n)
		if inBall[c] {
			continue
		}
		queue := []int{c}
		inBall[c] = true
		for len(queue) > 0 && len(ball) < target {
			v := queue[0]
			queue = queue[1:]
			ball = append(ball, v)
			for _, w := range g.Neighbors(v) {
				if !inBall[w] {
					inBall[int(w)] = true
					queue = append(queue, int(w))
				}
			}
		}
	}

	batch := make([]dynamic.Mutation, 0, size)
	used := map[[2]int]bool{}
	for tries := 0; len(batch) < size && tries < 200*size; tries++ {
		u := ball[rng.Intn(len(ball))]
		var v int
		op := dynamic.OpAddEdge
		if rng.Intn(2) == 0 { // removal: an existing ball-internal edge
			nbrs := g.Neighbors(u)
			if len(nbrs) == 0 {
				continue
			}
			v = int(nbrs[rng.Intn(len(nbrs))])
			if !inBall[v] {
				continue
			}
			op = dynamic.OpRemoveEdge
		} else { // insertion: an absent ball-internal pair
			v = ball[rng.Intn(len(ball))]
			if u == v || g.HasEdge(u, v) {
				continue
			}
		}
		if u > v {
			u, v = v, u
		}
		if used[[2]int{u, v}] {
			continue
		}
		used[[2]int{u, v}] = true
		batch = append(batch, dynamic.Mutation{Op: op, U: u, V: v})
	}
	return batch
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// runStream drives one (family, batchSize) stream and measures it.
func runStream(fam family, batches, batchSize int, seed int64, frac float64, localized, check bool) (workloadResult, error) {
	name := fmt.Sprintf("%s_b%d", fam.name, batchSize)
	if localized {
		name += "_local"
	}
	r := workloadResult{
		Name:      name,
		N:         fam.g.N(),
		M:         fam.g.M(),
		Delta:     fam.g.MaxDegree(),
		Batches:   batches,
		BatchSize: batchSize,
		BatchPct:  100 * float64(batchSize) / float64(fam.g.M()),
		Localized: localized,
	}
	l, err := dynamic.New(fam.g, dynamic.Options{FallbackDirtyFraction: frac})
	if err != nil {
		return r, err
	}
	rng := rand.New(rand.NewSource(seed))

	// Baseline: the measured recolor cost of a full recompute on this store.
	recRes, err := l.Recompute()
	if err != nil {
		return r, err
	}
	r.RecomputeMS = float64(recRes.RecolorNanos) / 1e6

	applyLat := make([]float64, 0, batches)
	recolorLat := make([]float64, 0, batches)
	var incRecolorSum float64
	var incRecolorN int
	incremental, recolored, rounds := 0, 0, 0
	streamStart := time.Now()
	var oracleTime time.Duration
	for b := 0; b < batches; b++ {
		snap, ok := l.Snapshot()
		if !ok {
			return r, fmt.Errorf("store unhealthy at batch %d", b)
		}
		var batch []dynamic.Mutation
		if localized {
			batch = localizedBatch(rng, snap, batchSize)
		} else {
			batch = randomBatch(rng, snap, batchSize)
		}
		if len(batch) == 0 {
			return r, fmt.Errorf("batch %d: generator produced no mutations", b)
		}
		t0 := time.Now()
		res, err := l.Apply(batch)
		lat := time.Since(t0)
		if err != nil {
			return r, fmt.Errorf("batch %d: %w", b, err)
		}
		applyLat = append(applyLat, float64(lat.Nanoseconds())/1e6)
		recolorMS := float64(res.RecolorNanos) / 1e6
		recolorLat = append(recolorLat, recolorMS)
		if res.Mode == dynamic.ModeIncremental {
			incremental++
			incRecolorSum += recolorMS
			incRecolorN++
		}
		recolored += res.Recolored
		rounds += res.Rounds

		if check {
			// Oracle outside the timed section: every maintained coloring
			// must pass the sequential proper-coloring check.
			c0 := time.Now()
			post, _ := l.Snapshot()
			if err := invariant.ReferenceComplete(post.G, post.Colors, post.NumColors); err != nil {
				return r, fmt.Errorf("batch %d: oracle: %w", b, err)
			}
			oracleTime += time.Since(c0)
		}
	}
	elapsed := time.Since(streamStart) - oracleTime

	sort.Float64s(applyLat)
	sort.Float64s(recolorLat)
	r.Mutations = batches * batchSize
	r.UpdatesSec = float64(r.Mutations) / elapsed.Seconds()
	r.P50RecolorMS = percentile(recolorLat, 0.50)
	r.P99RecolorMS = percentile(recolorLat, 0.99)
	r.P50ApplyMS = percentile(applyLat, 0.50)
	r.P99ApplyMS = percentile(applyLat, 0.99)
	r.IncrementalFraction = float64(incremental) / float64(batches)
	if incRecolorN > 0 && r.RecomputeMS > 0 {
		r.IncrementalVsRecompute = (incRecolorSum / float64(incRecolorN)) / r.RecomputeMS
	}
	r.MeanRecoloredPerBatch = float64(recolored) / float64(batches)
	r.MeanRoundsPerBatch = float64(rounds) / float64(batches)
	return r, nil
}

func main() {
	quick := flag.Bool("quick", false, "smaller families and shorter streams")
	out := flag.String("out", "", "write JSON results to this file")
	seed := flag.Int64("seed", 7, "stream seed")
	frac := flag.Float64("frac", 0.5, "FallbackDirtyFraction for the stores (0 = package default)")
	noCheck := flag.Bool("no-check", false, "skip the per-batch oracle (timing is unaffected either way)")
	wal := flag.Bool("wal", false, "benchmark the durable WAL layer instead (fsync overhead + recovery time)")
	shardMode := flag.Bool("shard", false, "benchmark the deltashard cluster instead (shard counts x transports)")
	conc := flag.Int("conc", 4, "concurrent coordinator streams in -shard mode")
	flag.Parse()

	if *shardMode {
		if err := runShardBench(*quick, *conc, *out); err != nil {
			fmt.Fprintf(os.Stderr, "deltastorm: shard: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *wal {
		if err := runWALBench(*quick, *seed, *out); err != nil {
			fmt.Fprintf(os.Stderr, "deltastorm: wal: %v\n", err)
			os.Exit(1)
		}
		return
	}

	batches := 200
	if *quick {
		batches = 40
	}

	type streamSpec struct {
		size      int
		localized bool
	}
	var results []workloadResult
	for _, fam := range families(*quick) {
		m := fam.g.M()
		// Batch sizes as fractions of m: a point mutation, ~1%, and ~5% of
		// the edges (the acceptance bar's regime). The 1% and 5% sizes run
		// both uniform-random and localized streams.
		specs := []streamSpec{
			{1, false},
			{m / 100, false}, {m / 100, true},
			{m / 20, false}, {m / 20, true},
		}
		for _, sp := range specs {
			size := sp.size
			if size < 1 {
				size = 1
			}
			nb := batches
			if size > 1 {
				nb = batches / 4 // large batches: fewer repetitions
			}
			r, err := runStream(fam, nb, size, *seed, *frac, sp.localized, !*noCheck)
			if err != nil {
				fmt.Fprintf(os.Stderr, "deltastorm: %s: %v\n", r.Name, err)
				os.Exit(1)
			}
			results = append(results, r)
			fmt.Printf("%-30s n=%-5d m=%-6d batch=%-5d (%.2f%% of m)  %8.0f upd/s  recolor p50=%6.2fms p99=%6.2fms  apply p50=%6.2fms  inc=%.0f%%  inc/rec=%.3f\n",
				r.Name, r.N, r.M, r.BatchSize, r.BatchPct, r.UpdatesSec,
				r.P50RecolorMS, r.P99RecolorMS, r.P50ApplyMS,
				100*r.IncrementalFraction, r.IncrementalVsRecompute)
		}
	}

	if *out != "" {
		o := output{
			Description: "deltalive dynamic-maintenance benchmarks: sustained mutation streams against dynamic.Live stores. Batch sizes are fractions of the edge count (point, ~1%, ~5%), each at the larger sizes as both uniform-random and localized (BFS-ball) streams; recolor percentiles are maintenance-only wall time, apply percentiles include the structural CSR rebuild; incremental_vs_recompute compares mean incremental recolor time to a measured full-recompute recolor on the same store (acceptance bar: <= 0.25 for <=5%-of-edges batches). Every batch's coloring passed the sequential oracle outside the timed sections. Regenerate with: go run ./cmd/deltastorm -out BENCH_dynamic.json",
			Generated:   time.Now().UTC().Format(time.RFC3339),
			GoVersion:   runtime.Version(),
			NumCPU:      runtime.NumCPU(),
			Workloads:   results,
		}
		data, err := json.MarshalIndent(&o, "", " ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "deltastorm: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "deltastorm: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d workloads)\n", *out, len(results))
	}
}
