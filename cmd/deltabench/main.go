// Command deltabench runs the evaluation suite (experiments E1-E16 of
// EXPERIMENTS.md) and prints one table per experiment.
//
// Usage:
//
//	deltabench [-scale quick|standard|full] [-only E1,E5,...]
//	deltabench -bench [-bench-iters n] [-bench-out file.json]
//	deltabench -arena [-bench-iters n] [-bench-out BENCH_arena.json]
//	deltabench -faults [-scale quick|standard|full]
//	deltabench -frontier [-scale quick|standard|full]
//	deltabench -scalebench [-scale quick|standard|full] [-bench-out BENCH_scale.json]
//	deltabench ... [-cpuprofile cpu.out] [-memprofile mem.out]
//
// Standard scale finishes in a few minutes; full scale adds the paper-exact
// Δ=126 instances and large n points and can take considerably longer.
// -bench skips the experiment tables and instead measures the end-to-end
// pipelines with -benchmem-style allocation accounting, emitting a JSON
// report (BENCH_csr.json tracks the before/after snapshot of the CSR
// refactor; BENCH_faults.json the repair-path overhead; BENCH_frontier.json
// the frontier-scheduling snapshot). Each workload runs on both engines and
// the command fails if the frontier and dense round counts diverge.
// -arena runs the backend arena (EXPERIMENTS.md table E22): every
// registered backend from internal/backend on the dense workload zoo,
// recording per-cell timing, round charge, and color count; off-domain
// refusals are marked skipped. BENCH_arena.json tracks the snapshot.
// -faults runs E18, the fault-tolerance experiment: a pipeline coloring is
// damaged by seeded crash-stop + corruption plans at increasing rates and
// repaired distributedly, measuring blast radius, extra colors, and repair
// rounds (see EXPERIMENTS.md table E18).
// -frontier runs E19, the frontier-occupancy experiment: each flagship
// workload reports its sparse-round share and skipped vertex evaluations,
// cross-checked round-for-round against the dense engine (EXPERIMENTS.md
// table E19, DESIGN.md "Frontier scheduling contract").
// -scalebench runs the big-graph substrate benchmarks (EXPERIMENTS.md table
// E24) sized by -scale (quick n=2·10⁵ CI smoke, standard 10⁶, full 10⁷):
// streamed parallel CSR builds, binary format write, mmap reopen, deg+1
// greedy coloring on the mapped view, and the clique-ring family through
// the full deterministic pipeline, reporting ns/edge and peak RSS per
// phase. Both workload shapes are oracle-verified at subsampled n before
// any timing. BENCH_scale.json tracks the standard-scale snapshot.
// -cpuprofile and -memprofile write pprof profiles of whichever mode ran;
// see CONTRIBUTING.md for the profiling workflow.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"deltacoloring/internal/bench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "deltabench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("deltabench", flag.ContinueOnError)
	scaleFlag := fs.String("scale", "standard", "experiment scale: quick, standard, or full")
	onlyFlag := fs.String("only", "", "comma-separated experiment ids to run (e.g. E1,E5); empty = all")
	benchFlag := fs.Bool("bench", false, "run the allocation benchmarks instead of the experiment tables")
	arenaFlag := fs.Bool("arena", false, "run every registered backend over the workload zoo and emit BENCH_arena.json")
	faultsFlag := fs.Bool("faults", false, "run the fault-tolerance experiment (E18) instead of the experiment tables")
	frontierFlag := fs.Bool("frontier", false, "run the frontier-occupancy experiment (E19) instead of the experiment tables")
	scaleBenchFlag := fs.Bool("scalebench", false, "run the big-graph substrate benchmarks (E24) sized by -scale and emit BENCH_scale.json")
	benchIters := fs.Int("bench-iters", 5, "iterations per benchmark in -bench mode (1 for a smoke run)")
	benchOut := fs.String("bench-out", "", "write the -bench JSON report to this file (default stdout)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the selected mode to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile (after the run) to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return err
		}
		defer func() {
			runtime.GC()
			if werr := pprof.WriteHeapProfile(f); werr != nil {
				fmt.Fprintln(os.Stderr, "deltabench: memprofile:", werr)
			}
			f.Close()
		}()
	}
	var scale bench.Scale
	switch *scaleFlag {
	case "quick":
		scale = bench.Quick
	case "standard":
		scale = bench.Standard
	case "full":
		scale = bench.Full
	default:
		return fmt.Errorf("unknown scale %q", *scaleFlag)
	}
	if *benchFlag || *arenaFlag || *scaleBenchFlag {
		if *benchIters < 1 {
			return fmt.Errorf("bench-iters must be at least 1")
		}
		out := os.Stdout
		if *benchOut != "" {
			f, err := os.Create(*benchOut)
			if err != nil {
				return err
			}
			defer f.Close()
			out = f
		}
		if *scaleBenchFlag {
			return runScale(out, scale)
		}
		if *arenaFlag {
			return runArena(out, *benchIters)
		}
		return runBench(out, *benchIters)
	}
	if *faultsFlag {
		start := time.Now()
		tab, err := bench.E18(scale)
		if err != nil {
			return fmt.Errorf("E18: %w", err)
		}
		if _, err := tab.WriteTo(os.Stdout); err != nil {
			return err
		}
		fmt.Printf("(E18 finished in %v)\n", time.Since(start).Round(time.Millisecond))
		return nil
	}
	if *frontierFlag {
		start := time.Now()
		tab, err := bench.E19(scale)
		if err != nil {
			return fmt.Errorf("E19: %w", err)
		}
		if _, err := tab.WriteTo(os.Stdout); err != nil {
			return err
		}
		fmt.Printf("(E19 finished in %v)\n", time.Since(start).Round(time.Millisecond))
		return nil
	}
	only := map[string]bool{}
	if *onlyFlag != "" {
		for _, id := range strings.Split(*onlyFlag, ",") {
			only[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	runners := []struct {
		id string
		fn func(bench.Scale) (*bench.Table, error)
	}{
		{"E1", bench.E1}, {"E2", bench.E2}, {"E3", bench.E3}, {"E4", bench.E4},
		{"E5", bench.E5}, {"E6", bench.E6}, {"E7", bench.E7}, {"E8", bench.E8},
		{"E9", bench.E9}, {"E10", bench.E10}, {"E11", bench.E11}, {"E12", bench.E12},
		{"E13", bench.EDelta63}, {"E14", bench.LogStarDemo}, {"E15", bench.E15},
		{"E16", bench.E16},
	}
	for _, r := range runners {
		if len(only) > 0 && !only[r.id] {
			continue
		}
		start := time.Now()
		tab, err := r.fn(scale)
		if err != nil {
			return fmt.Errorf("%s: %w", r.id, err)
		}
		if _, err := tab.WriteTo(os.Stdout); err != nil {
			return err
		}
		fmt.Printf("(%s finished in %v)\n\n", r.id, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
