package main

import (
	"bytes"
	"encoding/json"
	"testing"

	"deltacoloring"
	"deltacoloring/internal/bench"
	"deltacoloring/internal/graph"
)

// TestVerifyScaleWorkloads runs the subsampled oracle gate that every
// -scalebench invocation passes through: circulant bit-identity across
// builds, greedy deg+1 verification, and the checked ring pipeline.
func TestVerifyScaleWorkloads(t *testing.T) {
	if err := verifyScaleWorkloads(); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyDegPlusOne(t *testing.T) {
	g, err := graph.Circulant(2048, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	out, colors, err := greedyDegPlusOne(g, 9)
	if err != nil {
		t.Fatal(err)
	}
	if colors < 3 || colors > 9 {
		t.Fatalf("suspicious color count %d", colors)
	}
	if err := deltacoloring.VerifyWithin(g, out.Colors, 9); err != nil {
		t.Fatal(err)
	}
	// A palette too small for the sweep must fail loudly, not wrap.
	if _, _, err := greedyDegPlusOne(g, 2); err == nil {
		t.Fatal("greedy accepted an infeasible palette")
	}
}

// TestRunScaleQuickShape smoke-runs the quick scale and checks the report
// shape CI diffs against BENCH_scale.json.
func TestRunScaleQuickShape(t *testing.T) {
	if testing.Short() {
		t.Skip("quick scale run is a second of work")
	}
	var buf bytes.Buffer
	if err := runScale(&buf, bench.Quick); err != nil {
		t.Fatal(err)
	}
	var rep scaleReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	want := []string{"regular_build", "regular_write", "regular_mmap_open",
		"regular_color", "ring_build", "ring_pipeline", "dense_attack_m16"}
	if len(rep.Workloads) != len(want) {
		t.Fatalf("%d workloads, want %d", len(rep.Workloads), len(want))
	}
	for i, rec := range rep.Workloads {
		if rec.Name != want[i] {
			t.Fatalf("workload %d is %q, want %q", i, rec.Name, want[i])
		}
		if rec.Edges <= 0 || rec.NsPerEdge <= 0 {
			t.Fatalf("%s: empty measurement %+v", rec.Name, rec)
		}
	}
}
