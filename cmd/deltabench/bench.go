package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"deltacoloring"
	"deltacoloring/internal/faults"
)

// benchRecord is one entry of the -bench mode's JSON report: the standard
// -benchmem triple (time, bytes, allocation count per op) plus the
// pipeline's round count, so allocation regressions and behavioral drift
// show up in the same artifact (see BENCH_csr.json for the tracked
// snapshot). Pipeline entries also carry the frontier occupancy of their
// last iteration: engine rounds, sparse rounds, and the fraction of vertex
// evaluations the activation set skipped (BENCH_frontier.json).
type benchRecord struct {
	Name         string  `json:"name"`
	Iterations   int     `json:"iterations"`
	NsPerOp      float64 `json:"ns_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	Rounds       int     `json:"rounds"`
	EngineRounds int     `json:"engine_rounds,omitempty"`
	SparseRounds int     `json:"sparse_rounds,omitempty"`
	SkippedFrac  float64 `json:"skipped_frac,omitempty"`
}

type benchReport struct {
	Description string        `json:"description"`
	Generated   string        `json:"generated"`
	GoVersion   string        `json:"go_version"`
	NumCPU      int           `json:"num_cpu"`
	Benchmarks  []benchRecord `json:"benchmarks"`
}

// measure runs fn iters times and reports per-op wall time and allocation
// figures from the runtime's global allocation counters — the same numbers
// `go test -benchmem` derives, but deterministic in iteration count and
// available to a plain binary.
func measure(name string, iters int, fn func() int) benchRecord {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	rounds := 0
	for i := 0; i < iters; i++ {
		rounds = fn()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return benchRecord{
		Name:        name,
		Iterations:  iters,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters),
		BytesPerOp:  int64(after.TotalAlloc-before.TotalAlloc) / int64(iters),
		AllocsPerOp: int64(after.Mallocs-before.Mallocs) / int64(iters),
		Rounds:      rounds,
	}
}

// withFrontier attaches a run's frontier occupancy to its record.
func withFrontier(rec benchRecord, fs deltacoloring.FrontierStats) benchRecord {
	rec.EngineRounds = fs.EngineRounds
	rec.SparseRounds = fs.SparseRounds
	if total := fs.ActiveVertices + fs.SkippedVertices; total > 0 {
		rec.SkippedFrac = float64(fs.SkippedVertices) / float64(total)
	}
	return rec
}

// runBench executes the flagship end-to-end pipelines with allocation
// accounting and writes a JSON report: the machine-readable analogue of
// `go test -bench M16 -benchmem`. The deterministic and randomized
// pipelines run on both engines (frontier-scheduled and dense); the run
// fails on any round-count divergence, making every -bench invocation —
// including `make bench-smoke` — a result-preservation cross-check.
func runBench(w io.Writer, iters int) error {
	g := deltacoloring.GenHardCliqueBipartite(16, 16)
	dense := &deltacoloring.RunOptions{DisableFrontier: true}
	var fs deltacoloring.FrontierStats
	detRec := measure("deterministic_m16", iters, func() int {
		res, err := deltacoloring.Deterministic(g, deltacoloring.ScaledParams())
		if err != nil {
			panic(err)
		}
		fs = res.Frontier
		return res.Rounds
	})
	detRec = withFrontier(detRec, fs)
	randRec := measure("randomized_m16", iters, func() int {
		res, err := deltacoloring.Randomized(g, deltacoloring.ScaledRandomizedParams(), 1)
		if err != nil {
			panic(err)
		}
		fs = res.Frontier
		return res.Rounds
	})
	randRec = withFrontier(randRec, fs)
	records := []benchRecord{
		detRec,
		measure("deterministic_m16_dense", iters, func() int {
			res, err := deltacoloring.DeterministicContext(nil, g, deltacoloring.ScaledParams(), dense)
			if err != nil {
				panic(err)
			}
			return res.Rounds
		}),
		measure("deterministic_m16_parallel", iters, func() int {
			opts := &deltacoloring.RunOptions{Workers: -1}
			res, err := deltacoloring.DeterministicContext(nil, g, deltacoloring.ScaledParams(), opts)
			if err != nil {
				panic(err)
			}
			return res.Rounds
		}),
		randRec,
		measure("randomized_m16_dense", iters, func() int {
			res, err := deltacoloring.RandomizedContext(nil, g, deltacoloring.ScaledRandomizedParams(), 1, dense)
			if err != nil {
				panic(err)
			}
			return res.Rounds
		}),
	}
	for _, pair := range [][2]int{{0, 1}, {3, 4}} {
		a, b := records[pair[0]], records[pair[1]]
		if a.Rounds != b.Rounds {
			return fmt.Errorf("engine divergence: %s charged %d rounds, %s %d", a.Name, a.Rounds, b.Name, b.Rounds)
		}
	}
	// Repair-path overhead: damage a finished coloring at a 5% fault rate
	// and repair it. Damage regenerates per iteration (Repair works in
	// place), so the record isolates detect + recolor on a fixed blast
	// radius; compare against the full-pipeline records above to see that
	// recovery costs a small fraction of recomputation (BENCH_faults.json).
	base, err := deltacoloring.Deterministic(g, deltacoloring.ScaledParams())
	if err != nil {
		panic(err)
	}
	plan, err := faults.NewPlan(g, faults.Config{Seed: 1, CrashRate: 0.025, CorruptRate: 0.025})
	if err != nil {
		panic(err)
	}
	records = append(records, measure("repair_m16_5pct", iters, func() int {
		dmg, _ := plan.Damage(base.Colors)
		res, err := deltacoloring.Repair(g, dmg)
		if err != nil {
			panic(err)
		}
		return res.Rounds
	}))
	report := benchReport{
		Description: "End-to-end pipeline benchmarks on GenHardCliqueBipartite(16, 16) (n=512, delta=16, scaled parameters). The *_dense entries rerun the same pipeline with frontier scheduling disabled; round counts are cross-checked and the run fails on divergence. repair_m16_5pct is the repair-path overhead entry: detect + recolor after seeded crash/corrupt damage at a 5% total fault rate, to be read against the full-pipeline records (recovery should cost a small fraction of recomputation; BENCH_faults.json tracks it). Regenerate with: go run ./cmd/deltabench -bench -bench-out BENCH_frontier.json",
		Generated:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		Benchmarks:  records,
	}
	for _, r := range records {
		fmt.Fprintf(os.Stderr, "%-28s %4d iter  %12.0f ns/op  %10d B/op  %8d allocs/op  %4d rounds\n",
			r.Name, r.Iterations, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp, r.Rounds)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&report)
}
