package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"deltacoloring"
)

// benchRecord is one entry of the -bench mode's JSON report: the standard
// -benchmem triple (time, bytes, allocation count per op) plus the
// pipeline's round count, so allocation regressions and behavioral drift
// show up in the same artifact (see BENCH_csr.json for the tracked
// snapshot).
type benchRecord struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Rounds      int     `json:"rounds"`
}

type benchReport struct {
	Generated  string        `json:"generated"`
	GoVersion  string        `json:"go_version"`
	NumCPU     int           `json:"num_cpu"`
	Benchmarks []benchRecord `json:"benchmarks"`
}

// measure runs fn iters times and reports per-op wall time and allocation
// figures from the runtime's global allocation counters — the same numbers
// `go test -benchmem` derives, but deterministic in iteration count and
// available to a plain binary.
func measure(name string, iters int, fn func() int) benchRecord {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	rounds := 0
	for i := 0; i < iters; i++ {
		rounds = fn()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return benchRecord{
		Name:        name,
		Iterations:  iters,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters),
		BytesPerOp:  int64(after.TotalAlloc-before.TotalAlloc) / int64(iters),
		AllocsPerOp: int64(after.Mallocs-before.Mallocs) / int64(iters),
		Rounds:      rounds,
	}
}

// runBench executes the flagship end-to-end pipelines with allocation
// accounting and writes a JSON report: the machine-readable analogue of
// `go test -bench M16 -benchmem`.
func runBench(w io.Writer, iters int) error {
	g := deltacoloring.GenHardCliqueBipartite(16, 16)
	records := []benchRecord{
		measure("deterministic_m16", iters, func() int {
			res, err := deltacoloring.Deterministic(g, deltacoloring.ScaledParams())
			if err != nil {
				panic(err)
			}
			return res.Rounds
		}),
		measure("deterministic_m16_parallel", iters, func() int {
			opts := &deltacoloring.RunOptions{Workers: -1}
			res, err := deltacoloring.DeterministicContext(nil, g, deltacoloring.ScaledParams(), opts)
			if err != nil {
				panic(err)
			}
			return res.Rounds
		}),
		measure("randomized_m16", iters, func() int {
			res, err := deltacoloring.Randomized(g, deltacoloring.ScaledRandomizedParams(), 1)
			if err != nil {
				panic(err)
			}
			return res.Rounds
		}),
	}
	report := benchReport{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		Benchmarks: records,
	}
	for _, r := range records {
		fmt.Fprintf(os.Stderr, "%-28s %4d iter  %12.0f ns/op  %10d B/op  %8d allocs/op  %4d rounds\n",
			r.Name, r.Iterations, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp, r.Rounds)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&report)
}
