package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"deltacoloring"
	"deltacoloring/internal/bench"
	"deltacoloring/internal/coloring"
	"deltacoloring/internal/graph"
	"deltacoloring/internal/graphio"
)

// The -scalebench mode (EXPERIMENTS.md table E24): the big-graph substrate
// exercised end to end. Two workload families, sized by -scale:
//
//   - regular: the circulant C_n(1..8) — sparse, 16-regular, streamed
//     through the parallel CSR builder, written to the binary format,
//     reopened through the mmap loader, and (deg+1)-greedy-colored with the
//     word-wide palette kernels.
//   - ring: the dense clique-ring family at scale, streamed and pushed
//     through the full deterministic pipeline.
//
// Every phase reports ns per half-edge and the process peak RSS after it
// ran (VmHWM is a high-water mark, so the column is monotone down the
// table; the interesting numbers are the steps). Before any timing, both
// workload shapes replay at subsampled n through the conformance oracle —
// the ring through RunChecked (every phase checker plus the sequential
// oracle), the circulant through the independent verifier — so a scale run
// whose workloads would produce invalid colorings fails before publishing
// numbers. BENCH_scale.json tracks the standard-scale snapshot.

// scaleRecord is one workload phase of the -scalebench report.
type scaleRecord struct {
	Name string `json:"name"`
	// N and Edges give the instance shape; Edges counts half-edges (2m),
	// the unit every ns_per_edge figure normalizes by.
	N     int `json:"n"`
	Edges int `json:"edges"`
	// Ns is the phase wall time in nanoseconds (one shot — these phases
	// are big enough that iteration averaging would only burn time).
	Ns        float64 `json:"ns"`
	NsPerEdge float64 `json:"ns_per_edge"`
	// PeakRSSBytes is VmHWM after the phase completed.
	PeakRSSBytes int64 `json:"peak_rss_bytes"`
	Rounds       int   `json:"rounds,omitempty"`
	Colors       int   `json:"colors,omitempty"`
	FileBytes    int64 `json:"file_bytes,omitempty"`
}

type scaleReport struct {
	Description string        `json:"description"`
	Generated   string        `json:"generated"`
	GoVersion   string        `json:"go_version"`
	NumCPU      int           `json:"num_cpu"`
	Scale       string        `json:"scale"`
	Workloads   []scaleRecord `json:"workloads"`
}

// peakRSS reads the process high-water resident set (VmHWM) from
// /proc/self/status, in bytes. Returns 0 where procfs is unavailable.
func peakRSS() int64 {
	b, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(b), "\n") {
		if rest, ok := strings.CutPrefix(line, "VmHWM:"); ok {
			f := strings.Fields(rest)
			if len(f) >= 1 {
				kb, err := strconv.ParseInt(f[0], 10, 64)
				if err == nil {
					return kb * 1024
				}
			}
		}
	}
	return 0
}

// greedyDegPlusOne sweep-colors g with colors from [0, k) using the
// word-wide palette kernels — the scale stand-in for the deg+1 machinery
// (the distributed list-coloring solver computes the same kind of
// coloring; the sweep isolates the kernel cost). Returns the coloring and
// the number of distinct colors spent.
func greedyDegPlusOne(g *graph.Graph, k int) (*coloring.Partial, int, error) {
	out := coloring.NewPartial(g.N())
	var p coloring.Palette
	maxColor := -1
	for v := 0; v < g.N(); v++ {
		coloring.AvailableInto(&p, g, out, v, k)
		c := p.Min()
		if c < 0 {
			return nil, 0, fmt.Errorf("greedy: no color in [0, %d) left for vertex %d", k, v)
		}
		out.Colors[v] = c
		if c > maxColor {
			maxColor = c
		}
	}
	return out, maxColor + 1, nil
}

// verifyScaleWorkloads replays both workload shapes at subsampled n through
// the conformance oracle before any timing runs.
func verifyScaleWorkloads() error {
	const d = 16
	reg, err := graph.Circulant(8192, d, 4)
	if err != nil {
		return err
	}
	// Bit-identity: the parallel streamed build must match the sequential
	// one exactly (the fuzz harness covers this too; here it guards the
	// exact workload shape).
	seq, err := graph.Circulant(8192, d, 1)
	if err != nil {
		return err
	}
	var pb, sb bytes.Buffer
	if err := graph.EncodeBinary(&pb, reg); err != nil {
		return err
	}
	if err := graph.EncodeBinary(&sb, seq); err != nil {
		return err
	}
	if !bytes.Equal(pb.Bytes(), sb.Bytes()) {
		return fmt.Errorf("parallel circulant build diverges from sequential")
	}
	out, colors, err := greedyDegPlusOne(reg, d+1)
	if err != nil {
		return err
	}
	if err := deltacoloring.VerifyWithin(reg, out.Colors, d+1); err != nil {
		return fmt.Errorf("regular workload rejected by verifier: %w", err)
	}
	ring, err := graph.EasyCliqueRingStream(64, 16, 4)
	if err != nil {
		return err
	}
	_, rep, err := deltacoloring.RunChecked(ring, deltacoloring.ScaledParams())
	if err != nil {
		return fmt.Errorf("ring workload rejected by checked run: %w", err)
	}
	fmt.Fprintf(os.Stderr, "oracle: regular n=8192 verified (%d colors), ring k=64 checked (%d checker firings)\n",
		colors, rep.Checks)
	return nil
}

// countColors returns the number of distinct colors a complete coloring
// spends.
func countColors(colors []int) int {
	maxColor := -1
	for _, c := range colors {
		if c > maxColor {
			maxColor = c
		}
	}
	return maxColor + 1
}

// runScale executes the big-graph workloads and writes the E24 JSON report.
func runScale(w io.Writer, scale bench.Scale) error {
	var nReg, ringK int
	var scaleName string
	switch scale {
	case bench.Quick:
		nReg, ringK, scaleName = 200_000, 12_500, "quick"
	case bench.Standard:
		nReg, ringK, scaleName = 1_000_000, 62_500, "standard"
	default:
		nReg, ringK, scaleName = 10_000_000, 625_000, "full"
	}
	const d, delta = 16, 16
	workers := runtime.NumCPU()

	if err := verifyScaleWorkloads(); err != nil {
		return fmt.Errorf("subsampled oracle verification: %w", err)
	}

	var records []scaleRecord
	note := func(rec scaleRecord) {
		rec.NsPerEdge = rec.Ns / float64(max(rec.Edges, 1))
		rec.PeakRSSBytes = peakRSS()
		records = append(records, rec)
		fmt.Fprintf(os.Stderr, "%-22s n=%-9d ne=%-10d %9.2f ns/edge  %7.0f MB peak\n",
			rec.Name, rec.N, rec.Edges, rec.NsPerEdge, float64(rec.PeakRSSBytes)/(1<<20))
	}
	dir, err := os.MkdirTemp("", "deltascale-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// Regular family: streamed parallel build, binary write, mmap reopen,
	// deg+1 greedy coloring on the mapped view.
	start := time.Now()
	reg, err := graph.Circulant(nReg, d, workers)
	if err != nil {
		return err
	}
	ne := 2 * reg.M()
	note(scaleRecord{Name: "regular_build", N: nReg, Edges: ne, Ns: float64(time.Since(start).Nanoseconds())})

	path := filepath.Join(dir, "regular.dcsr")
	start = time.Now()
	if err := graphio.WriteBinaryFile(path, reg); err != nil {
		return err
	}
	wrote := float64(time.Since(start).Nanoseconds())
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	note(scaleRecord{Name: "regular_write", N: nReg, Edges: ne, Ns: wrote, FileBytes: st.Size()})
	reg = nil // the mapped view takes over; let the heap copy go

	start = time.Now()
	mg, closer, err := graphio.OpenBinary(path)
	if err != nil {
		return err
	}
	defer closer.Close()
	if mg.N() != nReg || 2*mg.M() != ne {
		return fmt.Errorf("mmap reopen shape mismatch: n=%d ne=%d", mg.N(), 2*mg.M())
	}
	note(scaleRecord{Name: "regular_mmap_open", N: nReg, Edges: ne, Ns: float64(time.Since(start).Nanoseconds())})

	start = time.Now()
	out, colors, err := greedyDegPlusOne(mg, d+1)
	if err != nil {
		return err
	}
	colorNs := float64(time.Since(start).Nanoseconds())
	if err := deltacoloring.VerifyWithin(mg, out.Colors, d+1); err != nil {
		return fmt.Errorf("regular_color produced an invalid coloring: %w", err)
	}
	note(scaleRecord{Name: "regular_color", N: nReg, Edges: ne, Ns: colorNs, Colors: colors})

	// Ring family: streamed build, then the full deterministic pipeline.
	start = time.Now()
	ring, err := graph.EasyCliqueRingStream(ringK, delta, workers)
	if err != nil {
		return err
	}
	ringNe := 2 * ring.M()
	note(scaleRecord{Name: "ring_build", N: ring.N(), Edges: ringNe, Ns: float64(time.Since(start).Nanoseconds())})

	start = time.Now()
	res, err := deltacoloring.Deterministic(ring, deltacoloring.ScaledParams())
	if err != nil {
		return err
	}
	pipeNs := float64(time.Since(start).Nanoseconds())
	if err := deltacoloring.Verify(ring, res.Colors); err != nil {
		return fmt.Errorf("ring_pipeline produced an invalid coloring: %w", err)
	}
	note(scaleRecord{Name: "ring_pipeline", N: ring.N(), Edges: ringNe, Ns: pipeNs,
		Rounds: res.Rounds, Colors: countColors(res.Colors)})

	// Dense-attack reference point: the flagship m=16 instance, averaged —
	// ties the scale snapshot to the BENCH_frontier.json series tracking
	// the hot dense phases (ACD, classification, palette kernels).
	attack := deltacoloring.GenHardCliqueBipartite(16, 16)
	attackNe := 2 * attack.M()
	const attackIters = 10
	start = time.Now()
	rounds := 0
	for i := 0; i < attackIters; i++ {
		ares, err := deltacoloring.Deterministic(attack, deltacoloring.ScaledParams())
		if err != nil {
			return err
		}
		rounds = ares.Rounds
	}
	note(scaleRecord{Name: "dense_attack_m16", N: attack.N(), Edges: attackNe,
		Ns: float64(time.Since(start).Nanoseconds()) / attackIters, Rounds: rounds})

	report := scaleReport{
		Description: "Big-graph substrate benchmarks (EXPERIMENTS.md table E24). regular_* streams the 16-regular circulant through the parallel CSR builder, the binary graph format, the mmap loader, and a deg+1 greedy coloring on the mapped view; ring_* streams the clique-ring family and runs the full deterministic pipeline; dense_attack_m16 is the flagship dense instance averaged over 10 runs, linking this series to BENCH_frontier.json. Edges counts half-edges; peak_rss_bytes is VmHWM after the phase (a monotone high-water mark). Regenerate with: go run ./cmd/deltabench -scalebench -scale standard -bench-out BENCH_scale.json",
		Generated:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		Scale:       scaleName,
		Workloads:   records,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&report)
}
