package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"deltacoloring"
	"deltacoloring/internal/backend"
	"deltacoloring/internal/graph"
)

// arenaRecord is one backend × workload cell of the -arena report. Cells
// where the backend refuses the instance (off-domain: the simple-dense
// route only accepts uniformly hard partitions, every route needs a dense
// graph) are recorded as skipped with the refusal message rather than
// failing the run — the arena's job is to map which backend covers what,
// not to force full coverage.
type arenaRecord struct {
	Workload    string  `json:"workload"`
	Backend     string  `json:"backend"`
	Iterations  int     `json:"iterations,omitempty"`
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	Rounds      int     `json:"rounds,omitempty"`
	Colors      int     `json:"colors,omitempty"`
	Skipped     bool    `json:"skipped,omitempty"`
	Reason      string  `json:"reason,omitempty"`
}

// arenaSummary names the per-workload winners so a reader (or CI diff)
// can see at a glance where a non-default backend beats det.
type arenaSummary struct {
	Workload     string `json:"workload"`
	RoundsWinner string `json:"rounds_winner"`
	BestRounds   int    `json:"best_rounds"`
	NsWinner     string `json:"ns_winner"`
}

type arenaReport struct {
	Description string         `json:"description"`
	Generated   string         `json:"generated"`
	GoVersion   string         `json:"go_version"`
	NumCPU      int            `json:"num_cpu"`
	Backends    []string       `json:"backends"`
	Entries     []arenaRecord  `json:"entries"`
	Summary     []arenaSummary `json:"summary"`
}

// runArena races every registered backend over the dense workload zoo and
// writes BENCH_arena.json: per cell the -benchmem triple, the LOCAL round
// charge, and the color count, plus a per-workload winner summary. Every
// successful cell's coloring is verified before it is recorded, so the
// arena doubles as a cross-backend result-preservation check.
func runArena(w io.Writer, iters int) error {
	blocks, _ := graph.EasyDenseBlocks(8, 63, 1)
	workloads := []struct {
		name string
		g    *deltacoloring.Graph
	}{
		{"hard_bipartite_m16", deltacoloring.GenHardCliqueBipartite(16, 16)},
		{"clique_ring_k8", deltacoloring.GenEasyCliqueRing(8, 16)},
		{"hard_easy_patch_m16", deltacoloring.GenHardWithEasyPatch(16, 16)},
		{"dense_blocks_k8", blocks},
	}
	p := backend.Params{
		Det:  deltacoloring.ScaledParams(),
		Rand: deltacoloring.ScaledRandomizedParams(),
		Seed: 1,
	}
	p.Rand.Params = p.Det

	var entries []arenaRecord
	var summary []arenaSummary
	for _, wl := range workloads {
		sum := arenaSummary{Workload: wl.name}
		bestNs := 0.0
		for _, name := range backend.Names() {
			b, err := backend.Get(name)
			if err != nil {
				return err
			}
			// Pre-flight once outside the timed loop: an off-domain
			// refusal becomes a skipped cell, not a panic mid-measure.
			bres, err := b.Color(nil, wl.g, p, nil)
			if err != nil {
				entries = append(entries, arenaRecord{
					Workload: wl.name, Backend: name, Skipped: true, Reason: err.Error(),
				})
				fmt.Fprintf(os.Stderr, "%-20s %-8s skipped: %v\n", wl.name, name, err)
				continue
			}
			// Bound the palette at Δ plus the backend's declared slack: the
			// greedy wire backend legitimately uses Δ+1 colors.
			if err := deltacoloring.VerifyWithin(wl.g, bres.Colors, wl.g.MaxDegree()+b.Caps().PaletteSlack); err != nil {
				return fmt.Errorf("arena %s/%s: %w", wl.name, name, err)
			}
			colors := 0
			for _, c := range bres.Colors {
				if c+1 > colors {
					colors = c + 1
				}
			}
			rec := measure(wl.name+"/"+name, iters, func() int {
				res, err := b.Color(nil, wl.g, p, nil)
				if err != nil {
					panic(err)
				}
				return res.Rounds
			})
			cell := arenaRecord{
				Workload:    wl.name,
				Backend:     name,
				Iterations:  rec.Iterations,
				NsPerOp:     rec.NsPerOp,
				BytesPerOp:  rec.BytesPerOp,
				AllocsPerOp: rec.AllocsPerOp,
				Rounds:      rec.Rounds,
				Colors:      colors,
			}
			entries = append(entries, cell)
			fmt.Fprintf(os.Stderr, "%-20s %-8s %12.0f ns/op  %4d rounds  %3d colors\n",
				wl.name, name, cell.NsPerOp, cell.Rounds, cell.Colors)
			if sum.RoundsWinner == "" || cell.Rounds < sum.BestRounds {
				sum.RoundsWinner, sum.BestRounds = name, cell.Rounds
			}
			if sum.NsWinner == "" || cell.NsPerOp < bestNs {
				sum.NsWinner, bestNs = name, cell.NsPerOp
			}
		}
		if sum.RoundsWinner == "" {
			return fmt.Errorf("arena workload %s: no backend completed it", wl.name)
		}
		summary = append(summary, sum)
	}

	report := arenaReport{
		Description: "Backend arena: every registered backend on the dense workload zoo (hard clique-bipartite m=16 Δ=16, easy clique-ring k=8 Δ=16, hard-with-easy-patch m=16 Δ=16, easy dense-blocks k=8 size=63). Cells a backend refuses (off-domain) are marked skipped with the refusal message; completed cells are verified Δ-colorings. The summary names per-workload winners on LOCAL rounds and wall time. Regenerate with: go run ./cmd/deltabench -arena -bench-out BENCH_arena.json",
		Generated:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		Backends:    backend.Names(),
		Entries:     entries,
		Summary:     summary,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&report)
}
