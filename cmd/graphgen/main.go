// Command graphgen writes graph instances for deltacolor, deltaserved, and
// deltabench: the dense paper families plus the streamable scale families
// (circulant regular graphs, clique rings sized by -n), in either the text
// edge-list format or the binary mmap format (see internal/graphio and
// DESIGN.md §14).
//
// Usage:
//
//	graphgen -family hard -m 16 -delta 16 > hard.edges
//	graphgen -family regular -n 1000000 -d 16 -format binary -o reg.dcsr
//	graphgen -family ring -n 1000000 -delta 16 -format binary -o ring.dcsr
//
// The scale families build through the streaming parallel CSR path, so
// generating an n=10⁷ graph allocates the CSR arrays and nothing else.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"deltacoloring"
	"deltacoloring/internal/graph"
	"deltacoloring/internal/graphio"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("graphgen", flag.ContinueOnError)
	family := fs.String("family", "hard", "hard, easy, mixed, regular, or ring")
	m := fs.Int("m", 16, "cliques per side (hard/mixed) or ring length (easy)")
	delta := fs.Int("delta", 16, "clique size = maximum degree (dense families)")
	n := fs.Int("n", 0, "vertex count for the scale families (regular/ring)")
	d := fs.Int("d", 16, "degree of the regular family (even)")
	workers := fs.Int("workers", runtime.NumCPU(), "parallel CSR build workers for the scale families")
	format := fs.String("format", "text", "output format: text (edge list) or binary (mmap CSR)")
	out := fs.String("o", "", "output path (default stdout; required for -format binary)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var g *deltacoloring.Graph
	var err error
	desc := ""
	switch *family {
	case "hard":
		g = deltacoloring.GenHardCliqueBipartite(*m, *delta)
		desc = fmt.Sprintf("hard family, m=%d, delta=%d", *m, *delta)
	case "easy":
		g = deltacoloring.GenEasyCliqueRing(*m, *delta)
		desc = fmt.Sprintf("easy family, m=%d, delta=%d", *m, *delta)
	case "mixed":
		g = deltacoloring.GenHardWithEasyPatch(*m, *delta)
		desc = fmt.Sprintf("mixed family, m=%d, delta=%d", *m, *delta)
	case "regular":
		g, err = graph.Circulant(*n, *d, *workers)
		desc = fmt.Sprintf("regular family (circulant), n=%d, d=%d", *n, *d)
	case "ring":
		if *delta <= 0 || *n%*delta != 0 {
			return fmt.Errorf("ring family needs -n divisible by -delta, got n=%d delta=%d", *n, *delta)
		}
		g, err = graph.EasyCliqueRingStream(*n / *delta, *delta, *workers)
		desc = fmt.Sprintf("ring family, n=%d, delta=%d", *n, *delta)
	default:
		return fmt.Errorf("unknown family %q", *family)
	}
	if err != nil {
		return err
	}
	switch *format {
	case "binary":
		if *out == "" {
			return fmt.Errorf("-format binary requires -o (binary graphs do not stream to stdout)")
		}
		return graphio.WriteBinaryFile(*out, g)
	case "text":
		var w io.Writer = os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				return err
			}
			defer f.Close()
			bw := bufio.NewWriterSize(f, 1<<20)
			defer bw.Flush()
			w = bw
		}
		return graphio.Write(w, g, desc)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
}
