// Command graphgen writes dense-graph instances in the edge-list format
// consumed by deltacolor -in.
//
// Usage:
//
//	graphgen -family hard -m 16 -delta 16 > hard.edges
package main

import (
	"flag"
	"fmt"
	"os"

	"deltacoloring"
	"deltacoloring/internal/graphio"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("graphgen", flag.ContinueOnError)
	family := fs.String("family", "hard", "hard, easy, or mixed")
	m := fs.Int("m", 16, "cliques per side (hard/mixed) or ring length (easy)")
	delta := fs.Int("delta", 16, "clique size = maximum degree")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var g *deltacoloring.Graph
	switch *family {
	case "hard":
		g = deltacoloring.GenHardCliqueBipartite(*m, *delta)
	case "easy":
		g = deltacoloring.GenEasyCliqueRing(*m, *delta)
	case "mixed":
		g = deltacoloring.GenHardWithEasyPatch(*m, *delta)
	default:
		return fmt.Errorf("unknown family %q", *family)
	}
	return graphio.Write(os.Stdout, g,
		fmt.Sprintf("%s family, m=%d, delta=%d", *family, *m, *delta))
}
