package main

import (
	"path/filepath"
	"testing"

	"deltacoloring/internal/graph"
	"deltacoloring/internal/graphio"
)

// TestGenerateBinaryScaleFamilies drives the scale families end to end:
// generate to a binary file, reopen through the sniffing loader, and check
// the shape survived.
func TestGenerateBinaryScaleFamilies(t *testing.T) {
	dir := t.TempDir()
	for _, tc := range []struct {
		name string
		args []string
		n, d int
	}{
		{"regular", []string{"-family", "regular", "-n", "5000", "-d", "8"}, 5000, 8},
		{"ring", []string{"-family", "ring", "-n", "4096", "-delta", "16"}, 4096, 16},
	} {
		path := filepath.Join(dir, tc.name+".dcsr")
		args := append(tc.args, "-format", "binary", "-o", path)
		if err := run(args); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		g, closer, err := graphio.Load(path)
		if err != nil {
			t.Fatalf("%s: Load: %v", tc.name, err)
		}
		if g.N() != tc.n || g.MaxDegree() != tc.d {
			t.Fatalf("%s: got n=%d maxdeg=%d, want n=%d maxdeg=%d",
				tc.name, g.N(), g.MaxDegree(), tc.n, tc.d)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		closer.Close()
	}
}

// TestGenerateTextRingMatchesDense pins the streamed ring family (sized by
// -n) to the dense generator the rest of the suite validates.
func TestGenerateTextRingMatchesDense(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ring.edges")
	if err := run([]string{"-family", "ring", "-n", "64", "-delta", "4", "-o", path}); err != nil {
		t.Fatal(err)
	}
	g, closer, err := graphio.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	want, _ := graph.EasyCliqueRing(16, 4)
	if graphio.CanonicalHash(g) != graphio.CanonicalHash(want) {
		t.Fatal("ring -n 64 -delta 4 does not match EasyCliqueRing(16, 4)")
	}
}

func TestRejectsBadScaleArgs(t *testing.T) {
	for _, args := range [][]string{
		{"-family", "regular", "-n", "10", "-d", "16", "-format", "binary", "-o", "/dev/null"},
		{"-family", "ring", "-n", "100", "-delta", "16"},
		{"-family", "regular", "-n", "100", "-format", "binary"}, // no -o
		{"-family", "regular", "-n", "100", "-format", "xml", "-o", "/dev/null"},
		{"-family", "nope"},
	} {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
