// Command deltacheck runs the pipeline-wide invariant conformance harness
// (internal/invariant) over the deterministic generator matrix: every
// pipeline phase is validated mid-run through its registered checker, the
// results are cross-checked against sequential reference oracles, the
// metamorphic determinism contracts (worker counts, dense vs frontier
// engine, ID permutation, fault-plan replay) are asserted, and a per-phase
// corruption control proves the harness fails loudly.
//
// Usage:
//
//	deltacheck [-quick] [-run substr] [-workers 1,4] [-no-negative] [-no-dynamic] [-v]
//
// The exit status is non-zero when any suite fails. -quick drops the
// Δ = 63 rounding-edge instance (n = 7938), which dominates the runtime
// under -race; -run filters workloads by name substring.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"deltacoloring/internal/invariant"
)

func main() {
	quick := flag.Bool("quick", false, "skip the Δ=63 rounding-edge workload")
	run := flag.String("run", "", "only run workloads whose name contains this substring")
	noDynamic := flag.Bool("no-dynamic", false, "skip the dynamic mutation-stream suites")
	workersFlag := flag.String("workers", "", "comma-separated worker counts for the metamorphic sweep (default 1,4,NumCPU)")
	noNegative := flag.Bool("no-negative", false, "skip the per-phase corruption controls")
	verbose := flag.Bool("v", false, "log per-workload progress")
	flag.Parse()

	opt := invariant.Options{SkipNegative: *noNegative}
	if *verbose {
		opt.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	if *workersFlag != "" {
		for _, s := range strings.Split(*workersFlag, ",") {
			w, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || w < 1 {
				fmt.Fprintf(os.Stderr, "deltacheck: bad -workers entry %q\n", s)
				os.Exit(2)
			}
			opt.Workers = append(opt.Workers, w)
		}
	}

	matrix := invariant.Matrix()
	if *quick {
		matrix = invariant.QuickMatrix()
	}
	if *run != "" {
		var filtered []invariant.Workload
		for _, w := range matrix {
			if strings.Contains(w.Name, *run) {
				filtered = append(filtered, w)
			}
		}
		matrix = filtered
	}
	dynMatrix := invariant.DynamicMatrix()
	if *run != "" {
		var filtered []invariant.DynamicWorkload
		for _, w := range dynMatrix {
			if strings.Contains(w.Name, *run) {
				filtered = append(filtered, w)
			}
		}
		dynMatrix = filtered
	}
	if *noDynamic {
		dynMatrix = nil
	}
	if len(matrix) == 0 && len(dynMatrix) == 0 {
		fmt.Fprintln(os.Stderr, "deltacheck: no workloads selected")
		os.Exit(2)
	}

	results := invariant.RunMatrix(matrix, opt)
	results = append(results, invariant.RunDynamicMatrix(dynMatrix, opt)...)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tsuite\tstatus\tdetail")
	failures := 0
	for _, r := range results {
		for _, s := range r.Suites {
			status, detail := "PASS", s.Detail
			if s.Err != nil {
				status, detail = "FAIL", s.Err.Error()
				failures++
			}
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", r.Name, s.Suite, status, detail)
		}
	}
	tw.Flush()
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "deltacheck: %d suite(s) failed\n", failures)
		os.Exit(1)
	}
	fmt.Println("deltacheck: all suites passed")
}
