package deltacoloring_test

import (
	"context"
	"os"
	"reflect"
	"strconv"
	"testing"
	"time"

	"deltacoloring"
	"deltacoloring/internal/faults"
	"deltacoloring/internal/local"
	"deltacoloring/internal/shard"
)

// chaosIters returns the per-case fault-seed count: 3 by default, raised via
// DELTA_CHAOS_ITERS for the `make chaos` soak.
func chaosIters(t *testing.T) int64 {
	t.Helper()
	if v := os.Getenv("DELTA_CHAOS_ITERS"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n <= 0 {
			t.Fatalf("bad DELTA_CHAOS_ITERS=%q", v)
		}
		return n
	}
	return 3
}

// chaosCase is one graph family under chaos.
type chaosCase struct {
	name string
	g    *deltacoloring.Graph
	algo string
}

func chaosCases() []chaosCase {
	return []chaosCase{
		{"easy-det", deltacoloring.GenEasyCliqueRing(6, 16), "det"},
		{"hard-det", deltacoloring.GenHardCliqueBipartite(16, 16), "det"},
		{"mixed-det", deltacoloring.GenHardWithEasyPatch(16, 16), "det"},
		{"easy-rand", deltacoloring.GenEasyCliqueRing(6, 16), "rand"},
	}
}

// chaosColoring produces a verified Δ-coloring of tc.g with the full
// pipeline, the same way the service does.
func chaosColoring(t *testing.T, tc chaosCase) []int {
	t.Helper()
	var colors []int
	if tc.algo == "rand" {
		res, err := deltacoloring.Randomized(tc.g, deltacoloring.ScaledRandomizedParams(), 11)
		if err != nil {
			t.Fatalf("%s: randomized pipeline: %v", tc.name, err)
		}
		colors = res.Colors
	} else {
		res, err := deltacoloring.Deterministic(tc.g, deltacoloring.ScaledParams())
		if err != nil {
			t.Fatalf("%s: deterministic pipeline: %v", tc.name, err)
		}
		colors = res.Colors
	}
	if err := deltacoloring.Verify(tc.g, colors); err != nil {
		t.Fatalf("%s: pipeline produced invalid coloring: %v", tc.name, err)
	}
	return colors
}

// TestChaosRepairPipeline is the end-to-end chaos property: run the real
// pipeline, damage its output with a seeded fault plan (crash-stop +
// corruption), repair distributedly, and require a proper coloring within
// Δ+1 colors with the outside of the repair set untouched — for every
// family, algorithm, and fault seed.
func TestChaosRepairPipeline(t *testing.T) {
	iters := chaosIters(t)
	for _, tc := range chaosCases() {
		colors := chaosColoring(t, tc)
		delta := tc.g.MaxDegree()
		for seed := int64(0); seed < iters; seed++ {
			plan, err := faults.NewPlan(tc.g, faults.Config{
				Seed: seed, CrashRate: 0.05, CorruptRate: 0.05,
			})
			if err != nil {
				t.Fatal(err)
			}
			dmg, rep := plan.Damage(colors)
			res, err := deltacoloring.Repair(tc.g, dmg)
			if err != nil {
				t.Fatalf("%s seed %d (%d crashed, %d corrupted): repair: %v",
					tc.name, seed, len(rep.Crashed), len(rep.Corrupted), err)
			}
			if err := deltacoloring.VerifyWithin(tc.g, res.Colors, delta+1); err != nil {
				t.Fatalf("%s seed %d: post-repair coloring invalid: %v", tc.name, seed, err)
			}
			inRepair := make(map[int]bool, len(res.RepairSet))
			for _, v := range res.RepairSet {
				inRepair[v] = true
			}
			fresh, _ := plan.Damage(colors)
			for v := range res.Colors {
				if !inRepair[v] && res.Colors[v] != fresh[v] {
					t.Fatalf("%s seed %d: vertex %d outside repair set changed", tc.name, seed, v)
				}
			}
			if res.Rounds < 1 {
				t.Fatalf("%s seed %d: repair charged no rounds", tc.name, seed)
			}
		}
	}
}

// TestChaosRepairWorkerIndependent pins the reproducibility contract end to
// end: damage + repair of a pipeline coloring is bit-identical at any worker
// count for a fixed seed.
func TestChaosRepairWorkerIndependent(t *testing.T) {
	tc := chaosCases()[0]
	colors := chaosColoring(t, tc)
	plan, err := faults.NewPlan(tc.g, faults.Config{Seed: 5, CrashRate: 0.08, CorruptRate: 0.08})
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) ([]int, *deltacoloring.RepairResult) {
		dmg, _ := plan.Damage(colors)
		res, err := deltacoloring.RepairContext(t.Context(), tc.g, dmg,
			&deltacoloring.RunOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return dmg, res
	}
	baseColors, baseRes := run(1)
	for _, w := range []int{2, 4, 8} {
		gotColors, gotRes := run(w)
		if !reflect.DeepEqual(baseColors, gotColors) {
			t.Fatalf("repaired colors differ between workers=1 and workers=%d", w)
		}
		if baseRes.Rounds != gotRes.Rounds ||
			!reflect.DeepEqual(baseRes.RepairSet, gotRes.RepairSet) ||
			!reflect.DeepEqual(baseRes.Damaged, gotRes.Damaged) {
			t.Fatalf("repair accounting differs between workers=1 and workers=%d", w)
		}
	}
}

// TestChaosEngineFaultsDeterministic pins the injection layer itself: the
// same plan driven through the LOCAL engine yields the same damage report
// when replayed, independent of everything but the seed.
func TestChaosEngineFaultsDeterministic(t *testing.T) {
	tc := chaosCases()[0]
	colors := chaosColoring(t, tc)
	for seed := int64(0); seed < chaosIters(t); seed++ {
		cfg := faults.Config{Seed: seed, CrashRate: 0.1, DropRate: 0.1, DupRate: 0.05, CorruptRate: 0.1}
		p1, err := faults.NewPlan(tc.g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := faults.NewPlan(tc.g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		d1, r1 := p1.Damage(colors)
		d2, r2 := p2.Damage(colors)
		if !reflect.DeepEqual(d1, d2) || !reflect.DeepEqual(r1, r2) {
			t.Fatalf("seed %d: identical plans produced different damage", seed)
		}
	}
}

// TestChaosShard is the sharded-cluster chaos property: a seeded fault plan
// kills, hangs, or corrupts one worker mid-run, and the coordinator must
// either fail cleanly with an error or deliver the coloring bit-identical
// to the single-process greedy run — a faulted cluster never serves a
// silently wrong result. DELTA_CHAOS_ITERS scales the seed soak like the
// other chaos cases.
func TestChaosShard(t *testing.T) {
	iters := chaosIters(t)
	g := deltacoloring.GenEasyCliqueRing(6, 16)
	net := local.New(g)
	oracle, oracleRounds, err := shard.SolveSingle(net)
	net.Close()
	if err != nil {
		t.Fatal(err)
	}
	modes := []string{shard.ChaosCrash, shard.ChaosHang, shard.ChaosCorruptExchange, shard.ChaosCorruptFinish}
	for _, mode := range modes {
		for _, k := range []int{2, 4} {
			for seed := int64(0); seed < iters; seed++ {
				tr := shard.NewChaosTransport(shard.NewInProcess(),
					shard.ChaosPlan{Mode: mode, Seed: uint64(seed) + 1, Prob: 0.3})
				res, err := shard.Run(context.Background(), g, shard.Config{
					K: k, Transport: tr, CallTimeout: 250 * time.Millisecond,
				})
				if err != nil {
					continue // clean failure: the acceptable outcome
				}
				if mode == shard.ChaosHang && tr.Fired() {
					t.Fatalf("%s k=%d seed %d: run succeeded through a hung worker", mode, k, seed)
				}
				if !reflect.DeepEqual(res.Colors, oracle) || res.Rounds != oracleRounds {
					t.Fatalf("%s k=%d seed %d: fault survived into a drifted coloring", mode, k, seed)
				}
			}
		}
	}
}
