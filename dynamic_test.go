package deltacoloring

import (
	"testing"
)

// The public Dynamic API end to end: create a store, mutate it through the
// whole vocabulary, and check every version serves a verifiable coloring.
func TestPublicDynamicAPI(t *testing.T) {
	g := GenEasyCliqueRing(6, 8)
	l, err := NewDynamic(g, DynamicOptions{})
	if err != nil {
		t.Fatal(err)
	}
	snap, ok := l.Snapshot()
	if !ok {
		t.Fatal("fresh store unhealthy")
	}
	if err := VerifyWithin(snap.G, snap.Colors, snap.NumColors); err != nil {
		t.Fatalf("initial coloring invalid: %v", err)
	}
	if snap.NumColors > g.MaxDegree()+1 {
		t.Fatalf("initial coloring uses %d colors, want <= Δ+1 = %d", snap.NumColors, g.MaxDegree()+1)
	}

	batches := [][]Mutation{
		{{Op: OpAddVertex}, {Op: OpAddEdge, U: 0, V: g.N()}},
		{{Op: OpRemoveEdge, U: 0, V: g.N()}, {Op: OpRemoveVertex, U: g.N()}},
		{{Op: OpAddEdge, U: 0, V: g.N() - 1}},
	}
	for i, batch := range batches {
		res, err := l.Apply(batch)
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		post, ok := l.Snapshot()
		if !ok {
			t.Fatalf("batch %d: store unhealthy", i)
		}
		if post.Version != res.Version {
			t.Fatalf("batch %d: snapshot version %d, result version %d", i, post.Version, res.Version)
		}
		if err := VerifyWithin(post.G, post.Colors, post.NumColors); err != nil {
			t.Fatalf("batch %d: maintained coloring invalid: %v", i, err)
		}
	}

	stats := l.Stats()
	if stats.Batches != int64(len(batches)) {
		t.Fatalf("stats report %d batches, want %d", stats.Batches, len(batches))
	}
	info := l.Info()
	if !info.Healthy {
		t.Fatal("info reports unhealthy store")
	}
	if info.Removed != 1 {
		t.Fatalf("info reports %d tombstones, want 1", info.Removed)
	}

	// Invalid batches are rejected atomically: the version must not move.
	before := l.Info().Version
	if _, err := l.Apply([]Mutation{{Op: OpAddEdge, U: 0, V: 0}}); err == nil {
		t.Fatal("self-loop batch accepted")
	}
	if after := l.Info().Version; after != before {
		t.Fatalf("rejected batch moved version %d -> %d", before, after)
	}
}
