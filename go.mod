module deltacoloring

go 1.22
