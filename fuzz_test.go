package deltacoloring

// Native fuzz targets for the public-facing input paths. The seed corpora
// double as regression tests under plain `go test`; run with
// `go test -fuzz FuzzNewGraph` etc. for continuous fuzzing.

import (
	"strings"
	"testing"

	"deltacoloring/internal/coloring"
	"deltacoloring/internal/graphio"
	"deltacoloring/internal/invariant"
)

// FuzzNewGraph feeds arbitrary edge bytes into the graph builder: it must
// either reject the input or produce a graph whose invariants validate.
func FuzzNewGraph(f *testing.F) {
	f.Add(uint8(4), []byte{0, 1, 1, 2, 2, 3})
	f.Add(uint8(2), []byte{0, 0})
	f.Add(uint8(0), []byte{})
	f.Add(uint8(9), []byte{7, 8, 8, 7, 1, 5})
	f.Fuzz(func(t *testing.T, n uint8, raw []byte) {
		edges := make([][2]int, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, [2]int{int(raw[i]), int(raw[i+1])})
		}
		g, err := NewGraph(int(n), edges)
		if err != nil {
			return // invalid inputs must be rejected, not panic
		}
		if g.N() != int(n) {
			t.Fatalf("n = %d, want %d", g.N(), n)
		}
		// Structural invariants.
		for v := 0; v < g.N(); v++ {
			for _, w := range g.Neighbors(v) {
				if int(w) == v {
					t.Fatal("self-loop survived")
				}
				if !g.HasEdge(int(w), v) {
					t.Fatal("asymmetric edge")
				}
			}
		}
	})
}

// FuzzGraphioRead feeds arbitrary text through the edge-list parser, which
// backs both the CLI file path and the service's edge_list request field:
// it must never panic, and must return exactly one of (graph, error). The
// parser runs with the serving layer's vertex cap so a tiny adversarial
// header ("9999999") cannot turn one fuzz exec into a giant allocation.
func FuzzGraphioRead(f *testing.F) {
	f.Add("4\n0 1\n1 2\n2 3\n")
	f.Add("")                              // empty input
	f.Add("x\n0 1\n")                      // malformed header
	f.Add("1 2\n3\n")                      // edge before header
	f.Add("-7\n")                          // negative vertex count
	f.Add("9999999\n")                     // vertex count beyond the cap
	f.Add("99999999999999999999\n")        // overflowing vertex count
	f.Add("3\n0 1\n0 1\n1 0\n")            // duplicate edges
	f.Add("3\n0 9\n")                      // out-of-range vertex
	f.Add("3\n1 1\n")                      // self-loop
	f.Add("3\n0 1 2\n")                    // wrong arity
	f.Add("3\n0 x\n")                      // non-numeric endpoint
	f.Add("# only comments\n\n# more\n")   // comments but no header
	f.Add("2\n\n#c\n 0   1 \n")            // blanks and stray spaces
	f.Add("5\n0 1\n# pad\n" + "4 3\n\n\n") // trailing noise
	f.Fuzz(func(t *testing.T, in string) {
		g, err := graphio.ReadMax(strings.NewReader(in), 1<<16)
		if (g == nil) == (err == nil) {
			t.Fatalf("graph/error exclusivity violated: g=%v err=%v", g, err)
		}
		if g == nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("parser produced invalid graph: %v", err)
		}
		// A parsed graph must survive the write/read round trip.
		var sb strings.Builder
		if err := graphio.Write(&sb, g, ""); err != nil {
			t.Fatal(err)
		}
		back, err := graphio.Read(strings.NewReader(sb.String()))
		if err != nil || back.N() != g.N() || back.M() != g.M() {
			t.Fatalf("round trip broke: n=%d m=%d err=%v", g.N(), g.M(), err)
		}
	})
}

// FuzzVerifiers differentially fuzzes the fast verifiers against the naive
// sequential oracles in internal/invariant: on every (graph, coloring, k)
// input, Verify / VerifyWithin / coloring.VerifyProper / VerifyComplete must
// accept exactly when the independent O(n+m) reference does. A disagreement
// in either direction is a verifier bug.
func FuzzVerifiers(f *testing.F) {
	f.Add(uint8(5), uint8(3), []byte{0, 1, 1, 2, 2, 3}, []byte{0, 1, 2, 0, 1})
	f.Add(uint8(4), uint8(2), []byte{0, 1, 2, 3}, []byte{0, 0, 1, 1})
	f.Add(uint8(3), uint8(0), []byte{0, 1}, []byte{})
	f.Add(uint8(6), uint8(9), []byte{0, 1, 1, 2, 0, 2}, []byte{3, 4, 5, 255, 0, 1})
	f.Fuzz(func(t *testing.T, n uint8, kRaw uint8, rawEdges, rawColors []byte) {
		nv := int(n % 33)
		edges := make([][2]int, 0, len(rawEdges)/2)
		for i := 0; i+1 < len(rawEdges); i += 2 {
			edges = append(edges, [2]int{int(rawEdges[i]) % 33, int(rawEdges[i+1]) % 33})
		}
		g, err := NewGraph(nv, edges)
		if err != nil {
			return
		}
		k := int(kRaw % 10)
		colors := make([]int, len(rawColors))
		for i, b := range rawColors {
			colors[i] = int(b%12) - 2 // includes -1 (uncolored) and -2/out-of-range
		}

		c := &coloring.Partial{Colors: colors}
		agree := func(name string, fastErr, refErr error) {
			t.Helper()
			if (fastErr == nil) != (refErr == nil) {
				t.Fatalf("%s disagrees with oracle on n=%d k=%d colors=%v: fast=%v oracle=%v",
					name, nv, k, colors, fastErr, refErr)
			}
		}
		agree("VerifyProper", coloring.VerifyProper(g, c, k), invariant.ReferenceProper(g, colors, k))
		agree("VerifyComplete", coloring.VerifyComplete(g, c, k), invariant.ReferenceComplete(g, colors, k))
		agree("Verify", Verify(g, colors), invariant.ReferenceComplete(g, colors, g.MaxDegree()))
		agree("VerifyWithin", VerifyWithin(g, colors, k), invariant.ReferenceComplete(g, colors, k))
	})
}

// FuzzVerify ensures the verifier never panics and never accepts a
// coloring with a monochromatic edge.
func FuzzVerify(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{1, 1, 1, 1})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		g, err := NewGraph(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
		if err != nil {
			t.Fatal(err)
		}
		colors := make([]int, len(raw))
		for i, b := range raw {
			colors[i] = int(b%5) - 1 // include out-of-range and -1
		}
		err = Verify(g, colors)
		if err != nil {
			return
		}
		// Accepted: must be a genuine proper complete 2-coloring... at
		// least proper and in range.
		if len(colors) != 4 {
			t.Fatal("accepted wrong length")
		}
		for _, e := range g.Edges() {
			if colors[e.U] == colors[e.V] {
				t.Fatal("accepted monochromatic edge")
			}
		}
		for _, c := range colors {
			if c < 0 || c >= g.MaxDegree() {
				t.Fatal("accepted out-of-range color")
			}
		}
	})
}
