package deltacoloring

// Native fuzz targets for the public-facing input paths. The seed corpora
// double as regression tests under plain `go test`; run with
// `go test -fuzz FuzzNewGraph` etc. for continuous fuzzing.

import (
	"testing"
)

// FuzzNewGraph feeds arbitrary edge bytes into the graph builder: it must
// either reject the input or produce a graph whose invariants validate.
func FuzzNewGraph(f *testing.F) {
	f.Add(uint8(4), []byte{0, 1, 1, 2, 2, 3})
	f.Add(uint8(2), []byte{0, 0})
	f.Add(uint8(0), []byte{})
	f.Add(uint8(9), []byte{7, 8, 8, 7, 1, 5})
	f.Fuzz(func(t *testing.T, n uint8, raw []byte) {
		edges := make([][2]int, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, [2]int{int(raw[i]), int(raw[i+1])})
		}
		g, err := NewGraph(int(n), edges)
		if err != nil {
			return // invalid inputs must be rejected, not panic
		}
		if g.N() != int(n) {
			t.Fatalf("n = %d, want %d", g.N(), n)
		}
		// Structural invariants.
		for v := 0; v < g.N(); v++ {
			for _, w := range g.Neighbors(v) {
				if w == v {
					t.Fatal("self-loop survived")
				}
				if !g.HasEdge(w, v) {
					t.Fatal("asymmetric edge")
				}
			}
		}
	})
}

// FuzzVerify ensures the verifier never panics and never accepts a
// coloring with a monochromatic edge.
func FuzzVerify(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{1, 1, 1, 1})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		g, err := NewGraph(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
		if err != nil {
			t.Fatal(err)
		}
		colors := make([]int, len(raw))
		for i, b := range raw {
			colors[i] = int(b%5) - 1 // include out-of-range and -1
		}
		err = Verify(g, colors)
		if err != nil {
			return
		}
		// Accepted: must be a genuine proper complete 2-coloring... at
		// least proper and in range.
		if len(colors) != 4 {
			t.Fatal("accepted wrong length")
		}
		for _, e := range g.Edges() {
			if colors[e.U] == colors[e.V] {
				t.Fatal("accepted monochromatic edge")
			}
		}
		for _, c := range colors {
			if c < 0 || c >= g.MaxDegree() {
				t.Fatal("accepted out-of-range color")
			}
		}
	})
}
