// Package local implements a simulator for the LOCAL model of distributed
// computing (Linial 1992): an n-node network, synchronous rounds, unbounded
// messages, and unbounded local computation. An r-round LOCAL algorithm is
// exactly a function of each node's radius-r neighborhood, and the simulator
// is built around that fact.
//
// # Execution model and round accounting
//
// The primary engine is Exchange: one call runs one synchronous round in
// which every node computes its next state from its own state and the full
// current states of its neighbors (legitimate in LOCAL because message size
// is unbounded). Rounds are counted automatically.
//
// Multi-round algorithms should hold a Runner, which owns a pair of state
// buffers and flips them each Step: a whole run then costs one buffer
// allocation regardless of round count. The state function must be pure —
// it may read any neighbor state of the current round but must not mutate
// shared structures — which is what makes the result independent of the
// worker count. SetWorkers enables parallel rounds executed on a persistent
// per-network worker pool (started once, reused by every subsequent round);
// Close releases the pool early, and a finalizer covers networks that are
// simply dropped.
//
// Constant-radius steps that are awkward to phrase as repeated Exchange
// calls (collecting a radius-r ball and brute-forcing over it, as the paper
// does for loopholes and ruling sets) instead call Charge(r) and then read
// the graph directly. The contract is: any direct read of global structure
// must be preceded by a Charge covering the radius actually inspected.
// Tests in this package and the algorithm packages enforce the contract for
// the shipped algorithms by checking round totals against known bounds.
//
// # Virtual graphs
//
// The paper's pipeline repeatedly builds virtual graphs whose nodes are
// constant-diameter sets of real nodes (sub-cliques, slack pairs,
// loopholes). One round on such a virtual graph is simulated by O(dilation)
// real rounds. Virtual returns a child network that multiplies every
// charged round by the dilation factor and adds it to the parent's counter.
package local

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"deltacoloring/internal/graph"
)

// Network wraps a graph with a shared round counter and phase tracing.
type Network struct {
	g        *graph.Graph
	counter  *counter
	dilation int
	workers  int
	faults   FaultHook
	// noFrontier forces Runner.Run/Sweep onto the dense engine; see
	// SetFrontier. Inherited by Virtual children created afterwards.
	noFrontier bool
	// bounds caches the edge-balanced chunk boundaries for the last
	// (total, parts) pair handed to run; recomputed lazily when SetWorkers
	// changes the chunk count. Only the algorithm goroutine touches it.
	bounds  []int32
	boundsW int
	boundsN int
}

type counter struct {
	mu        sync.Mutex
	rounds    int
	messages  int
	spans     []Span
	open      []int // indices into spans of currently open phases
	interrupt func() error
	spanHook  func(Span)
	checkHook func(phase string, artifact any) error
	pool      *workerPool
	frontier  FrontierStats
}

// workerPool is a persistent chunked executor shared by a network and all
// its Virtual children: a fixed set of goroutines parked on a job channel,
// started once and reused by every subsequent Exchange/Iterate/RunProcs
// round instead of spawning fresh goroutines per round.
type workerPool struct {
	jobs chan poolJob
	stop sync.Once
}

type poolJob struct {
	ci     int // chunk index, for per-chunk result regions
	lo, hi int
	run    func(ci, lo, hi int)
	wg     *sync.WaitGroup
}

func newWorkerPool(size int) *workerPool {
	p := &workerPool{jobs: make(chan poolJob, 2*size)}
	for i := 0; i < size; i++ {
		// Workers capture only the channel, never p, so the finalizer below
		// can fire once all networks sharing the pool become unreachable.
		go func(jobs <-chan poolJob) {
			for j := range jobs {
				j.run(j.ci, j.lo, j.hi)
				j.wg.Done()
			}
		}(p.jobs)
	}
	// Backstop for callers that never Close: release the parked goroutines
	// when the owning network tree is garbage collected.
	runtime.SetFinalizer(p, func(p *workerPool) { p.close() })
	return p
}

func (p *workerPool) close() {
	p.stop.Do(func() { close(p.jobs) })
}

// getPool returns the shared pool, starting it on first use.
func (c *counter) getPool() *workerPool {
	c.mu.Lock()
	if c.pool == nil {
		c.pool = newWorkerPool(runtime.NumCPU())
	}
	p := c.pool
	c.mu.Unlock()
	return p
}

// parallelThreshold is the vertex count below which chunked execution is not
// worth the synchronization overhead and rounds run sequentially.
const parallelThreshold = 256

// run executes fn over [0, total) — sequentially when parallelism is off or
// the graph is small, otherwise as one edge-balanced chunk per configured
// worker on the persistent pool. fn must only write to disjoint per-index
// data, which is what makes results independent of the worker count.
func (n *Network) run(total int, fn func(ci, lo, hi int)) {
	w := n.workers
	if w <= 1 || total < parallelThreshold {
		fn(0, 0, total)
		return
	}
	n.runBounds(n.chunkBounds(total, w), fn)
}

// chunkBounds returns (and caches) parts+1 chunk boundaries over [0, total).
// Work shaped like the graph — one unit per vertex plus one per incident
// edge, which is what every exchange round costs — is cut on the CSR offset
// prefix sum so hub-heavy neighborhoods spread across workers instead of
// piling into one chunk; any other total falls back to uniform ranges.
func (n *Network) chunkBounds(total, parts int) []int32 {
	if n.boundsW != parts || n.boundsN != total || n.bounds == nil {
		n.bounds = n.bounds[:0]
		if total == n.g.N() {
			n.bounds = n.g.AppendChunkBounds(n.bounds, parts)
		} else {
			for k := 0; k <= parts; k++ {
				n.bounds = append(n.bounds, int32(total*k/parts))
			}
		}
		n.boundsW, n.boundsN = parts, total
	}
	return n.bounds
}

// runBounds executes fn once per non-empty chunk [bounds[i], bounds[i+1])
// on the persistent pool and waits for all chunks to finish.
func (n *Network) runBounds(bounds []int32, fn func(ci, lo, hi int)) {
	pool := n.counter.getPool()
	var wg sync.WaitGroup
	for ci := 0; ci+1 < len(bounds); ci++ {
		lo, hi := int(bounds[ci]), int(bounds[ci+1])
		if lo == hi {
			continue
		}
		wg.Add(1)
		pool.jobs <- poolJob{ci: ci, lo: lo, hi: hi, run: fn, wg: &wg}
	}
	wg.Wait()
}

// Close releases the persistent worker pool, if one was started. The network
// stays usable — the next parallel round simply starts a fresh pool — so it
// is safe (and recommended) to defer Close right after New when running with
// SetWorkers > 1. Networks that never enable parallelism hold no resources.
func (n *Network) Close() {
	n.counter.mu.Lock()
	p := n.counter.pool
	n.counter.pool = nil
	n.counter.mu.Unlock()
	if p != nil {
		p.close()
	}
}

// Span records the rounds consumed by one named phase, for reporting.
//
// Beyond the round total, a span carries frontier-scheduling observability:
// EngineRounds counts the state-engine rounds (Exchange/Runner) inside the
// phase — Charge-only accounting contributes none — SparseRounds counts how
// many of those ran on the sparse frontier path, and ActiveVertices /
// SkippedVertices count the per-vertex state evaluations performed / avoided.
// The extra fields do not affect Rounds and are zero when no engine round
// runs during the phase.
type Span struct {
	Name            string
	Rounds          int
	EngineRounds    int
	SparseRounds    int
	ActiveVertices  int64
	SkippedVertices int64
}

// New creates a network over g with dilation 1 and sequential execution.
func New(g *graph.Graph) *Network {
	return &Network{g: g, counter: &counter{}, dilation: 1, workers: 1}
}

// Graph returns the underlying graph.
func (n *Network) Graph() *graph.Graph { return n.g }

// Rounds returns the total rounds charged so far (across the whole tree of
// virtual networks sharing this counter).
func (n *Network) Rounds() int {
	n.counter.mu.Lock()
	defer n.counter.mu.Unlock()
	return n.counter.rounds
}

// Charge adds r rounds (times this network's dilation) to the counter.
// It is how ball-collection steps account for their radius.
func (n *Network) Charge(r int) {
	if r <= 0 {
		return
	}
	n.counter.mu.Lock()
	n.counter.rounds += r * n.dilation
	for _, i := range n.counter.open {
		n.counter.spans[i].Rounds += r * n.dilation
	}
	check := n.counter.interrupt
	n.counter.mu.Unlock()
	if check != nil {
		if err := check(); err != nil {
			panic(Interrupt{Err: err})
		}
	}
}

// Interrupt is the panic value raised by Charge when the interrupt check
// installed via SetInterrupt reports an error. It unwinds a running
// algorithm at its next round boundary; entry points that install an
// interrupt recover it and surface Err as an ordinary error.
type Interrupt struct{ Err error }

// SetInterrupt installs a check invoked after every Charge (and therefore
// after every Exchange round and every phase of the pipeline). A non-nil
// return aborts the run by panicking with Interrupt{err}. The check is
// shared with all Virtual children and must be fast and safe to call from
// the algorithm's goroutine; pass nil to remove it.
func (n *Network) SetInterrupt(check func() error) {
	n.counter.mu.Lock()
	defer n.counter.mu.Unlock()
	n.counter.interrupt = check
}

// SetSpanHook installs an export hook invoked with each span's final value
// as its phase closes (outside the counter lock). Consumers such as the
// serving layer use it to harvest per-phase round totals live, including
// from runs that later fail; pass nil to remove it.
func (n *Network) SetSpanHook(hook func(Span)) {
	n.counter.mu.Lock()
	defer n.counter.mu.Unlock()
	n.counter.spanHook = hook
}

// SetCheckHook installs a conformance hook invoked by Checkpoint with each
// intermediate artifact a pipeline publishes at its span boundaries. The
// hook runs on the algorithm's goroutine, outside the counter lock, and is
// shared with all Virtual children; a non-nil return aborts the publishing
// phase with that error. Pass nil to remove it.
func (n *Network) SetCheckHook(hook func(phase string, artifact any) error) {
	n.counter.mu.Lock()
	defer n.counter.mu.Unlock()
	n.counter.checkHook = hook
}

// Checking reports whether a check hook is installed, so pipelines can skip
// building artifacts nobody will consume.
func (n *Network) Checking() bool {
	n.counter.mu.Lock()
	defer n.counter.mu.Unlock()
	return n.counter.checkHook != nil
}

// Checkpoint publishes an intermediate artifact under a phase tag to the
// installed check hook, returning the hook's verdict. With no hook installed
// it is a no-op, so pipelines call it unconditionally at span boundaries.
func (n *Network) Checkpoint(phase string, artifact any) error {
	n.counter.mu.Lock()
	hook := n.counter.checkHook
	n.counter.mu.Unlock()
	if hook == nil {
		return nil
	}
	return hook(phase, artifact)
}

// CountMessages adds n to the message counter (used by the message-passing
// engine; the state engine conceptually sends one message per edge per
// round but does not count them).
func (n *Network) CountMessages(msgs int) {
	n.counter.mu.Lock()
	defer n.counter.mu.Unlock()
	n.counter.messages += msgs
}

// Messages returns the number of messages recorded by the message-passing
// engine.
func (n *Network) Messages() int {
	n.counter.mu.Lock()
	defer n.counter.mu.Unlock()
	return n.counter.messages
}

// Virtual returns a network over vg whose rounds are charged to this
// network's counter multiplied by dilation. Use it when vg's nodes are
// simulated by constant-diameter sets of real nodes.
func (n *Network) Virtual(vg *graph.Graph, dilation int) *Network {
	if dilation < 1 {
		panic(fmt.Sprintf("local: dilation must be >= 1, got %d", dilation))
	}
	return &Network{g: vg, counter: n.counter, dilation: n.dilation * dilation,
		workers: n.workers, noFrontier: n.noFrontier}
}

// SetWorkers sets the number of goroutines used by Exchange (1 = fully
// sequential). State functions must be pure, so results are identical for
// any worker count; tests cross-check this.
func (n *Network) SetWorkers(w int) {
	if w < 1 {
		w = runtime.NumCPU()
	}
	n.workers = w
}

// Phase opens a named accounting span; the returned func closes it.
// Typical use: defer net.Phase("matching")().
func (n *Network) Phase(name string) func() {
	n.counter.mu.Lock()
	idx := len(n.counter.spans)
	n.counter.spans = append(n.counter.spans, Span{Name: name})
	n.counter.open = append(n.counter.open, idx)
	n.counter.mu.Unlock()
	return func() {
		n.counter.mu.Lock()
		var closed *Span
		for i, j := range n.counter.open {
			if j == idx {
				n.counter.open = append(n.counter.open[:i], n.counter.open[i+1:]...)
				closed = &n.counter.spans[idx]
				break
			}
		}
		hook := n.counter.spanHook
		var final Span
		if closed != nil {
			final = *closed
		}
		n.counter.mu.Unlock()
		if hook != nil && closed != nil {
			hook(final)
		}
	}
}

// Spans returns the recorded phase spans in open order.
func (n *Network) Spans() []Span {
	n.counter.mu.Lock()
	defer n.counter.mu.Unlock()
	out := make([]Span, len(n.counter.spans))
	copy(out, n.counter.spans)
	return out
}

// Nbrs exposes the neighbor states of one vertex during an Exchange round.
// The neighbor list is captured once per vertex per round, so every access
// is a single index into the graph's flat CSR edge array.
type Nbrs[S any] struct {
	list []int32
	st   []S
}

// Len returns the degree of the vertex.
func (nb Nbrs[S]) Len() int { return len(nb.list) }

// At returns the vertex index of the i-th neighbor.
func (nb Nbrs[S]) At(i int) int { return int(nb.list[i]) }

// State returns the (previous-round) state of the i-th neighbor.
func (nb Nbrs[S]) State(i int) S { return nb.st[nb.list[i]] }

// interruptStride is how many vertices a worker processes between mid-round
// interrupt checks. Round boundaries always check (via Charge); the stride
// bounds how much extra work a long parallel round performs after a
// cancellation arrives.
const interruptStride = 1 << 10

// exchangeInto runs one synchronous round from cur into next (which must be
// distinct slices of equal length). When done is non-nil it is evaluated on
// each next state as it is produced, and the number of not-yet-done vertices
// is returned — fused into the same pass so Iterate needs no O(n) rescan.
//
// If a fault hook is installed the round first obtains its RoundFaults view
// and applies crash/drop/duplicate/corrupt semantics (see faults.go); a nil
// view keeps the round on the fault-free fast path. An installed interrupt
// is additionally re-checked every interruptStride vertices inside the
// round, so cancellation is observed mid-round on large instances rather
// than only at the next round boundary.
func exchangeInto[S any](n *Network, cur, next []S,
	f func(v int, self S, nbrs Nbrs[S]) S, done func(v int, s S) bool) int {
	if len(cur) != n.g.N() {
		panic(fmt.Sprintf("local: state slice has %d entries, graph has %d vertices", len(cur), n.g.N()))
	}
	n.Charge(1)
	g := n.g
	var rf RoundFaults
	if n.faults != nil {
		rf = n.faults.NextRound()
	}
	n.counter.mu.Lock()
	check := n.counter.interrupt
	n.counter.mu.Unlock()
	n.counter.recordEngineRound(false, int64(len(cur)), 0)
	var tripped atomic.Pointer[Interrupt]
	var notDone atomic.Int64
	n.run(len(cur), func(_, lo, hi int) {
		pending := 0
		var scratch []int32
		if rf != nil {
			// Duplication can at most double a neighborhood.
			scratch = make([]int32, 0, 2*g.MaxDegree())
		}
		for v := lo; v < hi; v++ {
			if check != nil && (v-lo)%interruptStride == interruptStride-1 {
				if tripped.Load() != nil {
					return // another chunk already tripped; abandon the round
				}
				if err := check(); err != nil {
					tripped.CompareAndSwap(nil, &Interrupt{Err: err})
					return
				}
			}
			if rf != nil && rf.Crashed(v) {
				// Crash-stop: the state freezes and, being unable to make
				// progress, the vertex no longer counts toward quiescence.
				next[v] = cur[v]
				continue
			}
			list := g.Neighbors(v)
			if rf != nil {
				scratch = scratch[:0]
				faulty := false
				for _, w := range list {
					wi := int(w)
					if rf.Crashed(wi) || rf.Dropped(wi, v) {
						faulty = true
						continue
					}
					scratch = append(scratch, w)
					if rf.Duplicated(wi, v) {
						scratch = append(scratch, w)
						faulty = true
					}
				}
				if faulty {
					list = scratch
				}
			}
			s := f(v, cur[v], Nbrs[S]{list: list, st: cur})
			if rf != nil {
				if src, ok := rf.Corrupted(v); ok {
					s = cur[src]
				}
			}
			next[v] = s
			if done != nil && !done(v, s) {
				pending++
			}
		}
		if pending != 0 {
			notDone.Add(int64(pending))
		}
	})
	if ip := tripped.Load(); ip != nil {
		// Re-raise on the calling goroutine, exactly like Charge does at
		// round boundaries; entry points recover it into an error.
		panic(*ip)
	}
	return int(notDone.Load())
}

// Exchange runs one synchronous round: every vertex v computes
// f(v, cur[v], neighbors' cur states) into a fresh state slice. One call
// charges exactly one round. f must be pure (no shared mutation), which
// also makes parallel execution deterministic.
//
// Exchange allocates a new state slice per round; loops that run many
// rounds should use a Runner, which double-buffers two slices for the whole
// run.
func Exchange[S any](n *Network, cur []S, f func(v int, self S, nbrs Nbrs[S]) S) []S {
	next := make([]S, len(cur))
	exchangeInto(n, cur, next, f, nil)
	return next
}

// Runner owns the double-buffered state of one simulation run: a current
// and a next slice that flip after every round, so an entire multi-round
// algorithm performs exactly one state-slice allocation. The state function
// must be pure — it may read any cur state but write nothing shared — which
// is also what makes results bit-identical for any worker count.
//
// States are constrained to comparable because Run and Sweep detect per-round
// change via next[v] != cur[v] to drive frontier scheduling (see frontier.go);
// the comparison is also what lets the sparse path skip quiescent vertices
// without altering results.
//
// The Runner takes ownership of the initial slice passed to NewRunner; the
// caller must not retain it. States returns the live buffer after any
// number of Step/Run calls.
type Runner[S comparable] struct {
	net  *Network
	cur  []S
	next []S
	fr   *frontier
}

// NewRunner creates a runner over init (one entry per vertex of n's graph).
func NewRunner[S comparable](n *Network, init []S) *Runner[S] {
	if len(init) != n.g.N() {
		panic(fmt.Sprintf("local: state slice has %d entries, graph has %d vertices", len(init), n.g.N()))
	}
	return &Runner[S]{net: n, cur: init, next: make([]S, len(init))}
}

// States returns the current state slice (owned by the runner; valid until
// the next Step or Run call).
func (r *Runner[S]) States() []S { return r.cur }

// Step runs one synchronous round and flips the buffers, returning the new
// current states. One call charges exactly one round.
func (r *Runner[S]) Step(f func(v int, self S, nbrs Nbrs[S]) S) []S {
	exchangeInto(r.net, r.cur, r.next, f, nil)
	r.cur, r.next = r.next, r.cur
	return r.cur
}

// Run steps until done reports true for every vertex or maxRounds is
// exhausted, returning the final states and the number of rounds executed.
// done must be pure, like f; it is evaluated inside the exchange pass so a
// round costs no separate all-vertices scan. A remaining not-done count is
// carried across rounds, so quiescence detection is O(1) per round.
//
// Unless SetFrontier(false) forced the dense engine, Run schedules rounds on
// an activation frontier (see frontier.go): after the first round only
// vertices whose closed neighborhood changed are re-evaluated. Because f and
// done are pure, rounds, states, and span totals are bit-identical to the
// dense engine.
func (r *Runner[S]) Run(maxRounds int,
	f func(v int, self S, nbrs Nbrs[S]) S, done func(v int, s S) bool) ([]S, int, error) {
	notDone := 0
	if !r.net.noFrontier {
		fr := r.ensureFrontier()
		fr.reset(true)
		for v, s := range r.cur {
			d := done(v, s)
			fr.doneBits[v] = d
			if !d {
				notDone++
			}
		}
		return r.runRounds(maxRounds, notDone, f, done)
	}
	for v, s := range r.cur {
		if !done(v, s) {
			notDone++
		}
	}
	for round := 0; round < maxRounds; round++ {
		if notDone == 0 {
			return r.cur, round, nil
		}
		notDone = exchangeInto(r.net, r.cur, r.next, f, done)
		r.cur, r.next = r.next, r.cur
	}
	return r.finish(maxRounds, notDone, done)
}

// runRounds is Run's frontier-scheduled loop; notDone is maintained
// incrementally by trackedRound through the frontier's done bitmap.
func (r *Runner[S]) runRounds(maxRounds, notDone int,
	f func(v int, self S, nbrs Nbrs[S]) S, done func(v int, s S) bool) ([]S, int, error) {
	for round := 0; round < maxRounds; round++ {
		if notDone == 0 {
			return r.cur, round, nil
		}
		notDone = r.trackedRound(f, done, notDone)
		r.cur, r.next = r.next, r.cur
	}
	return r.finish(maxRounds, notDone, done)
}

// finish is Run's shared budget-exhausted epilogue.
func (r *Runner[S]) finish(maxRounds, notDone int, done func(v int, s S) bool) ([]S, int, error) {
	if notDone == 0 {
		return r.cur, maxRounds, nil
	}
	for v, s := range r.cur {
		if !done(v, s) {
			return r.cur, maxRounds, fmt.Errorf("local: vertex %d not done after %d rounds", v, maxRounds)
		}
	}
	return r.cur, maxRounds, nil
}

// Iterate runs Exchange until done reports true for every vertex or
// maxRounds is exhausted, returning the final states and the number of
// rounds executed. It returns an error if the round budget runs out, which
// algorithm packages treat as a logic bug. Iterate double-buffers through a
// Runner, so it owns cur from the call on; the caller must not retain it.
func Iterate[S comparable](n *Network, cur []S, maxRounds int,
	f func(v int, self S, nbrs Nbrs[S]) S, done func(v int, s S) bool) ([]S, int, error) {
	return NewRunner(n, cur).Run(maxRounds, f, done)
}
