// Package local implements a simulator for the LOCAL model of distributed
// computing (Linial 1992): an n-node network, synchronous rounds, unbounded
// messages, and unbounded local computation. An r-round LOCAL algorithm is
// exactly a function of each node's radius-r neighborhood, and the simulator
// is built around that fact.
//
// # Execution model and round accounting
//
// The primary engine is Exchange: one call runs one synchronous round in
// which every node computes its next state from its own state and the full
// current states of its neighbors (legitimate in LOCAL because message size
// is unbounded). Rounds are counted automatically.
//
// Constant-radius steps that are awkward to phrase as repeated Exchange
// calls (collecting a radius-r ball and brute-forcing over it, as the paper
// does for loopholes and ruling sets) instead call Charge(r) and then read
// the graph directly. The contract is: any direct read of global structure
// must be preceded by a Charge covering the radius actually inspected.
// Tests in this package and the algorithm packages enforce the contract for
// the shipped algorithms by checking round totals against known bounds.
//
// # Virtual graphs
//
// The paper's pipeline repeatedly builds virtual graphs whose nodes are
// constant-diameter sets of real nodes (sub-cliques, slack pairs,
// loopholes). One round on such a virtual graph is simulated by O(dilation)
// real rounds. Virtual returns a child network that multiplies every
// charged round by the dilation factor and adds it to the parent's counter.
package local

import (
	"fmt"
	"runtime"
	"sync"

	"deltacoloring/internal/graph"
)

// Network wraps a graph with a shared round counter and phase tracing.
type Network struct {
	g        *graph.Graph
	counter  *counter
	dilation int
	workers  int
}

type counter struct {
	mu        sync.Mutex
	rounds    int
	messages  int
	spans     []Span
	open      []int // indices into spans of currently open phases
	interrupt func() error
	spanHook  func(Span)
}

// Span records the rounds consumed by one named phase, for reporting.
type Span struct {
	Name   string
	Rounds int
}

// New creates a network over g with dilation 1 and sequential execution.
func New(g *graph.Graph) *Network {
	return &Network{g: g, counter: &counter{}, dilation: 1, workers: 1}
}

// Graph returns the underlying graph.
func (n *Network) Graph() *graph.Graph { return n.g }

// Rounds returns the total rounds charged so far (across the whole tree of
// virtual networks sharing this counter).
func (n *Network) Rounds() int {
	n.counter.mu.Lock()
	defer n.counter.mu.Unlock()
	return n.counter.rounds
}

// Charge adds r rounds (times this network's dilation) to the counter.
// It is how ball-collection steps account for their radius.
func (n *Network) Charge(r int) {
	if r <= 0 {
		return
	}
	n.counter.mu.Lock()
	n.counter.rounds += r * n.dilation
	for _, i := range n.counter.open {
		n.counter.spans[i].Rounds += r * n.dilation
	}
	check := n.counter.interrupt
	n.counter.mu.Unlock()
	if check != nil {
		if err := check(); err != nil {
			panic(Interrupt{Err: err})
		}
	}
}

// Interrupt is the panic value raised by Charge when the interrupt check
// installed via SetInterrupt reports an error. It unwinds a running
// algorithm at its next round boundary; entry points that install an
// interrupt recover it and surface Err as an ordinary error.
type Interrupt struct{ Err error }

// SetInterrupt installs a check invoked after every Charge (and therefore
// after every Exchange round and every phase of the pipeline). A non-nil
// return aborts the run by panicking with Interrupt{err}. The check is
// shared with all Virtual children and must be fast and safe to call from
// the algorithm's goroutine; pass nil to remove it.
func (n *Network) SetInterrupt(check func() error) {
	n.counter.mu.Lock()
	defer n.counter.mu.Unlock()
	n.counter.interrupt = check
}

// SetSpanHook installs an export hook invoked with each span's final value
// as its phase closes (outside the counter lock). Consumers such as the
// serving layer use it to harvest per-phase round totals live, including
// from runs that later fail; pass nil to remove it.
func (n *Network) SetSpanHook(hook func(Span)) {
	n.counter.mu.Lock()
	defer n.counter.mu.Unlock()
	n.counter.spanHook = hook
}

// CountMessages adds n to the message counter (used by the message-passing
// engine; the state engine conceptually sends one message per edge per
// round but does not count them).
func (n *Network) CountMessages(msgs int) {
	n.counter.mu.Lock()
	defer n.counter.mu.Unlock()
	n.counter.messages += msgs
}

// Messages returns the number of messages recorded by the message-passing
// engine.
func (n *Network) Messages() int {
	n.counter.mu.Lock()
	defer n.counter.mu.Unlock()
	return n.counter.messages
}

// Virtual returns a network over vg whose rounds are charged to this
// network's counter multiplied by dilation. Use it when vg's nodes are
// simulated by constant-diameter sets of real nodes.
func (n *Network) Virtual(vg *graph.Graph, dilation int) *Network {
	if dilation < 1 {
		panic(fmt.Sprintf("local: dilation must be >= 1, got %d", dilation))
	}
	return &Network{g: vg, counter: n.counter, dilation: n.dilation * dilation, workers: n.workers}
}

// SetWorkers sets the number of goroutines used by Exchange (1 = fully
// sequential). State functions must be pure, so results are identical for
// any worker count; tests cross-check this.
func (n *Network) SetWorkers(w int) {
	if w < 1 {
		w = runtime.NumCPU()
	}
	n.workers = w
}

// Phase opens a named accounting span; the returned func closes it.
// Typical use: defer net.Phase("matching")().
func (n *Network) Phase(name string) func() {
	n.counter.mu.Lock()
	idx := len(n.counter.spans)
	n.counter.spans = append(n.counter.spans, Span{Name: name})
	n.counter.open = append(n.counter.open, idx)
	n.counter.mu.Unlock()
	return func() {
		n.counter.mu.Lock()
		var closed *Span
		for i, j := range n.counter.open {
			if j == idx {
				n.counter.open = append(n.counter.open[:i], n.counter.open[i+1:]...)
				closed = &n.counter.spans[idx]
				break
			}
		}
		hook := n.counter.spanHook
		var final Span
		if closed != nil {
			final = *closed
		}
		n.counter.mu.Unlock()
		if hook != nil && closed != nil {
			hook(final)
		}
	}
}

// Spans returns the recorded phase spans in open order.
func (n *Network) Spans() []Span {
	n.counter.mu.Lock()
	defer n.counter.mu.Unlock()
	out := make([]Span, len(n.counter.spans))
	copy(out, n.counter.spans)
	return out
}

// Nbrs exposes the neighbor states of one vertex during an Exchange round.
type Nbrs[S any] struct {
	g  *graph.Graph
	v  int
	st []S
}

// Len returns the degree of the vertex.
func (nb Nbrs[S]) Len() int { return len(nb.g.Neighbors(nb.v)) }

// At returns the vertex index of the i-th neighbor.
func (nb Nbrs[S]) At(i int) int { return nb.g.Neighbors(nb.v)[i] }

// State returns the (previous-round) state of the i-th neighbor.
func (nb Nbrs[S]) State(i int) S { return nb.st[nb.g.Neighbors(nb.v)[i]] }

// Exchange runs one synchronous round: every vertex v computes
// f(v, cur[v], neighbors' cur states) into a fresh state slice. One call
// charges exactly one round. f must be pure (no shared mutation), which
// also makes parallel execution deterministic.
func Exchange[S any](n *Network, cur []S, f func(v int, self S, nbrs Nbrs[S]) S) []S {
	if len(cur) != n.g.N() {
		panic(fmt.Sprintf("local: state slice has %d entries, graph has %d vertices", len(cur), n.g.N()))
	}
	n.Charge(1)
	next := make([]S, len(cur))
	apply := func(lo, hi int) {
		for v := lo; v < hi; v++ {
			next[v] = f(v, cur[v], Nbrs[S]{g: n.g, v: v, st: cur})
		}
	}
	if n.workers <= 1 || len(cur) < 256 {
		apply(0, len(cur))
		return next
	}
	var wg sync.WaitGroup
	chunk := (len(cur) + n.workers - 1) / n.workers
	for lo := 0; lo < len(cur); lo += chunk {
		hi := lo + chunk
		if hi > len(cur) {
			hi = len(cur)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			apply(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return next
}

// Iterate runs Exchange until done reports true for every vertex or
// maxRounds is exhausted, returning the final states and the number of
// rounds executed. It returns an error if the round budget runs out, which
// algorithm packages treat as a logic bug.
func Iterate[S any](n *Network, cur []S, maxRounds int,
	f func(v int, self S, nbrs Nbrs[S]) S, done func(v int, s S) bool) ([]S, int, error) {
	for r := 0; r < maxRounds; r++ {
		allDone := true
		for v, s := range cur {
			if !done(v, s) {
				allDone = false
				break
			}
		}
		if allDone {
			return cur, r, nil
		}
		cur = Exchange(n, cur, f)
	}
	for v, s := range cur {
		if !done(v, s) {
			return cur, maxRounds, fmt.Errorf("local: vertex %d not done after %d rounds", v, maxRounds)
		}
	}
	return cur, maxRounds, nil
}
