// Frontier-scheduled execution for the LOCAL state engine.
//
// # Why skipping is sound
//
// One engine round computes next[v] = f(v, cur[v], cur states of N(v)) with f
// pure. If neither v nor any neighbor of v changed state in the previous
// round, then f sees exactly the inputs it saw last time and must return
// cur[v] again — so the round may skip v entirely. Run therefore executes its
// first round densely (there is no "last time" yet) and afterwards activates
// only changed vertices plus their CSR neighbors; Sweep, whose round function
// additionally depends on the round index, takes a caller-supplied seed that
// marks every vertex whose output could change for non-neighborhood reasons
// (e.g. its color class coming up in a class sweep).
//
// # Direction switching and fallbacks
//
// Each round the engine extracts the activation bitmap into a sorted int32
// frontier with a degree prefix sum. If the frontier's vertex+edge weight
// exceeds 1/densitySwitchFraction of the whole graph's, the round runs on the
// dense path (Ligra-style direction switching) — still change-tracked, so the
// engine can switch back to sparse later. Rounds with an active fault view
// run dense, and so does the round immediately after one: faulty views alter
// a vertex's *inputs* (drops, duplicates, corrupted reads) without any
// neighbor state change, which breaks the skipping argument for one round.
//
// # What must not change
//
// Rounds are charged identically (one Charge(1) per engine round, before the
// round body, exactly like exchangeInto), the interrupt is re-checked every
// interruptStride vertices on both paths, fault semantics replicate
// exchangeInto's, and quiescence is maintained incrementally through a done
// bitmap whose updates are confined to evaluated vertices (purity of done
// makes that equal to the dense engine's full recount). The cross-check tests
// and FuzzFrontier in frontier_test.go enforce bit-identical states, round
// counts, and span totals against the dense engine.
package local

import (
	"math/bits"
	"sync/atomic"

	"deltacoloring/internal/graph"
)

// FrontierStats aggregates engine-round accounting across a network tree
// (shared with Virtual children, like Rounds).
type FrontierStats struct {
	// EngineRounds counts state-engine rounds (Exchange, Step, Run, Sweep).
	EngineRounds int
	// SparseRounds counts engine rounds executed on the sparse frontier path.
	SparseRounds int
	// ActiveVertices counts per-vertex state evaluations performed.
	ActiveVertices int64
	// SkippedVertices counts evaluations avoided by frontier scheduling.
	SkippedVertices int64
}

// densitySwitchFraction is the Ligra-style direction-switching threshold: a
// round runs sparse only while the frontier's vertex+edge weight is below
// 1/densitySwitchFraction of the whole graph's. The dense path pays the same
// change-tracking post-pass as the sparse one, so sparse stays profitable up
// to large frontiers; only near-full frontiers lose to the dense scan
// (extraction overhead, no saved evaluations).
const densitySwitchFraction = 2

// SetFrontier enables (the default) or disables frontier scheduling for
// Runner.Run and Runner.Sweep on this network. Results are bit-identical
// either way — the switch exists for cross-checking and benchmarking the two
// engines. Virtual children created afterwards inherit the setting.
func (n *Network) SetFrontier(on bool) { n.noFrontier = !on }

// FrontierStats returns the accumulated engine-round statistics for the whole
// network tree sharing this counter.
func (n *Network) FrontierStats() FrontierStats {
	n.counter.mu.Lock()
	defer n.counter.mu.Unlock()
	return n.counter.frontier
}

// recordEngineRound folds one engine round into the global stats and every
// open span. Called once per round, alongside Charge.
func (c *counter) recordEngineRound(sparse bool, active, skipped int64) {
	c.mu.Lock()
	c.frontier.EngineRounds++
	c.frontier.ActiveVertices += active
	c.frontier.SkippedVertices += skipped
	if sparse {
		c.frontier.SparseRounds++
	}
	for _, i := range c.open {
		sp := &c.spans[i]
		sp.EngineRounds++
		sp.ActiveVertices += active
		sp.SkippedVertices += skipped
		if sparse {
			sp.SparseRounds++
		}
	}
	c.mu.Unlock()
}

// frontier holds the activation state of one Runner: a bitmap collecting the
// next round's active set, the current round's extracted sorted list with a
// degree prefix sum (for edge-balanced sparse chunking), per-chunk changed
// buffers, and the incremental done bitmap for Run. All buffers are allocated
// once, on the Runner's first Run or Sweep.
type frontier struct {
	words          []uint64 // activation bitmap for the NEXT round
	wordLo, wordHi int      // inclusive touched word range; lo > hi when clean
	list           []int32  // current round's frontier, sorted ascending
	cum            []int64  // prefix weights of list; cum[i+1]-cum[i] = deg+1
	changed        []int32  // per-round changed vertices, chunk-regioned
	counts         []int32  // per-chunk changed counts
	deltas         []int64  // per-chunk notDone deltas
	bounds         []int32  // scratch chunk boundaries for sparse rounds
	doneBits       []bool   // per-vertex done status (Run only)
	forceDense     bool     // next round must run dense (first round of Run)
	lastFaulty     bool     // previous round had a non-nil fault view
	markFn         func(int)
}

func newFrontier(n int) *frontier {
	fr := &frontier{
		words:    make([]uint64, (n+63)/64),
		list:     make([]int32, 0, n),
		cum:      make([]int64, 1, n+1),
		changed:  make([]int32, n),
		doneBits: make([]bool, n),
		wordLo:   1,
	}
	fr.markFn = fr.mark
	return fr
}

func (r *Runner[S]) ensureFrontier() *frontier {
	if r.fr == nil {
		r.fr = newFrontier(r.net.g.N())
	}
	return r.fr
}

// mark sets v's activation bit, tracking the touched word range so clearing
// and extraction cost O(frontier), not O(n).
func (fr *frontier) mark(v int) {
	w := v >> 6
	fr.words[w] |= 1 << (uint(v) & 63)
	if fr.wordLo > fr.wordHi {
		fr.wordLo, fr.wordHi = w, w
		return
	}
	if w < fr.wordLo {
		fr.wordLo = w
	}
	if w > fr.wordHi {
		fr.wordHi = w
	}
}

// clearActivation zeroes the touched bitmap range.
func (fr *frontier) clearActivation() {
	for i := fr.wordLo; i <= fr.wordHi; i++ {
		fr.words[i] = 0
	}
	fr.wordLo, fr.wordHi = 1, 0
}

// reset prepares the frontier for a fresh Run or Sweep.
func (fr *frontier) reset(forceDense bool) {
	fr.clearActivation()
	fr.forceDense = forceDense
	fr.lastFaulty = false
}

// extract drains the activation bitmap into the sorted frontier list and its
// prefix-weight array (weight(v) = degree+1), leaving the bitmap clean for
// the next round's marks. Returns the total frontier weight.
func (fr *frontier) extract(g *graph.Graph) int64 {
	fr.list = fr.list[:0]
	fr.cum = fr.cum[:1]
	w := int64(0)
	for wi := fr.wordLo; wi <= fr.wordHi; wi++ {
		word := fr.words[wi]
		if word == 0 {
			continue
		}
		fr.words[wi] = 0
		base := wi << 6
		for word != 0 {
			v := base + bits.TrailingZeros64(word)
			word &= word - 1
			fr.list = append(fr.list, int32(v))
			w += int64(g.Degree(v)) + 1
			fr.cum = append(fr.cum, w)
		}
	}
	fr.wordLo, fr.wordHi = 1, 0
	return w
}

// sizeChunks readies the per-chunk changed/delta regions.
func (fr *frontier) sizeChunks(chunks int) {
	if cap(fr.counts) < chunks {
		fr.counts = make([]int32, chunks)
		fr.deltas = make([]int64, chunks)
	}
	fr.counts = fr.counts[:chunks]
	fr.deltas = fr.deltas[:chunks]
	for i := range fr.counts {
		fr.counts[i] = 0
		fr.deltas[i] = 0
	}
}

// trackedRound runs one engine round from r.cur into r.next with activation
// tracking, choosing the sparse or dense path per the package comment. done
// may be nil (Sweep); when non-nil the frontier's done bitmap is updated
// incrementally and the new notDone count returned. The caller flips the
// buffers afterwards.
func (r *Runner[S]) trackedRound(f func(v int, self S, nbrs Nbrs[S]) S,
	done func(v int, s S) bool, notDone int) int {
	n := r.net
	fr := r.fr
	g := n.g
	nv := g.N()
	n.Charge(1)
	var rf RoundFaults
	if n.faults != nil {
		rf = n.faults.NextRound()
	}
	// Faulty rounds (and the round right after one) must run dense: faults
	// change a vertex's inputs without any neighbor state change.
	dense := fr.forceDense || rf != nil || fr.lastFaulty
	fr.forceDense = false
	fr.lastFaulty = rf != nil
	var weight int64
	if !dense {
		weight = fr.extract(g)
		if weight*densitySwitchFraction >= int64(2*g.M())+int64(nv) {
			dense = true // frontier too heavy; list is ignored, bitmap is clean
		}
	} else {
		fr.clearActivation() // stale marks are irrelevant on the dense path
	}
	items := nv
	if !dense {
		items = len(fr.list)
		n.counter.recordEngineRound(true, int64(items), int64(nv-items))
	} else {
		n.counter.recordEngineRound(false, int64(nv), 0)
	}
	n.counter.mu.Lock()
	check := n.counter.interrupt
	n.counter.mu.Unlock()
	cur, next := r.cur, r.next
	var tripped atomic.Pointer[Interrupt]

	runChunk := func(ci, lo, hi int) {
		cnt := int32(0)
		delta := int64(0)
		region := fr.changed[lo:hi]
		var scratch []int32
		if rf != nil {
			// Duplication can at most double a neighborhood.
			scratch = make([]int32, 0, 2*g.MaxDegree())
		}
		for p := lo; p < hi; p++ {
			if check != nil && (p-lo)%interruptStride == interruptStride-1 {
				if tripped.Load() != nil {
					return // another chunk already tripped; abandon the round
				}
				if err := check(); err != nil {
					tripped.CompareAndSwap(nil, &Interrupt{Err: err})
					return
				}
			}
			v := p
			if !dense {
				v = int(fr.list[p])
			}
			if rf != nil && rf.Crashed(v) {
				// Crash-stop: the state freezes and, being unable to make
				// progress, the vertex no longer counts toward quiescence.
				next[v] = cur[v]
				if done != nil && !fr.doneBits[v] {
					fr.doneBits[v] = true
					delta--
				}
				continue
			}
			list := g.Neighbors(v)
			if rf != nil {
				scratch = scratch[:0]
				faulty := false
				for _, w := range list {
					wi := int(w)
					if rf.Crashed(wi) || rf.Dropped(wi, v) {
						faulty = true
						continue
					}
					scratch = append(scratch, w)
					if rf.Duplicated(wi, v) {
						scratch = append(scratch, w)
						faulty = true
					}
				}
				if faulty {
					list = scratch
				}
			}
			s := f(v, cur[v], Nbrs[S]{list: list, st: cur})
			if rf != nil {
				if src, ok := rf.Corrupted(v); ok {
					s = cur[src]
				}
			}
			next[v] = s
			if s != cur[v] {
				region[cnt] = int32(v)
				cnt++
			}
			if done != nil {
				if nd := done(v, s); nd != fr.doneBits[v] {
					fr.doneBits[v] = nd
					if nd {
						delta--
					} else {
						delta++
					}
				}
			}
		}
		fr.counts[ci] = cnt
		fr.deltas[ci] = delta
	}

	// Choose chunk boundaries: cached CSR-balanced bounds for dense rounds,
	// prefix-weight splits of the frontier for sparse ones, a single chunk
	// when the round is too small to parallelize.
	var bounds []int32
	w := n.workers
	switch {
	case dense && w > 1 && nv >= parallelThreshold:
		bounds = n.chunkBounds(nv, w)
	case !dense && w > 1 && weight >= parallelThreshold:
		fr.bounds = graph.SplitPrefix(fr.bounds[:0], fr.cum, w)
		bounds = fr.bounds
	}
	if bounds == nil {
		fr.sizeChunks(1)
		runChunk(0, 0, items)
	} else {
		fr.sizeChunks(len(bounds) - 1)
		n.runBounds(bounds, runChunk)
	}
	if ip := tripped.Load(); ip != nil {
		panic(*ip) // re-raise on the calling goroutine, like exchangeInto
	}

	// Sequential post-pass: activate every changed vertex and its neighbors
	// for the next round, and fold the per-chunk done deltas.
	chunkLo := 0
	for ci := range fr.counts {
		if bounds != nil {
			chunkLo = int(bounds[ci])
		}
		for k := int32(0); k < fr.counts[ci]; k++ {
			v := int(fr.changed[chunkLo+int(k)])
			fr.mark(v)
			for _, u := range g.Neighbors(v) {
				fr.mark(int(u))
			}
		}
		notDone += int(fr.deltas[ci])
	}
	return notDone
}

// Sweep runs exactly rounds synchronous rounds of the round-indexed state
// function f, frontier-scheduled, and returns the final states. It is the
// engine behind class sweeps: loops that would otherwise call Step once per
// color class, re-evaluating every vertex each time.
//
// Because f depends on the round index, skipping a vertex is only sound if
// its output cannot change for reasons other than neighborhood state changes.
// seed encodes those reasons: it is called at the start of each round and
// must mark every vertex whose f(round, ...) output might differ from its
// current state even with an unchanged neighborhood (for a class sweep, the
// members of round's class). Vertices that are neither seeded nor near a
// recent change are skipped; the contract makes that bit-identical to calling
// Step rounds times, which the dense path (SetFrontier(false)) does verbatim.
// One call charges exactly rounds rounds.
func (r *Runner[S]) Sweep(rounds int, seed func(round int, mark func(v int)),
	f func(round, v int, self S, nbrs Nbrs[S]) S) []S {
	if r.net.noFrontier {
		for round := 0; round < rounds; round++ {
			rr := round
			exchangeInto(r.net, r.cur, r.next, func(v int, self S, nbrs Nbrs[S]) S {
				return f(rr, v, self, nbrs)
			}, nil)
			r.cur, r.next = r.next, r.cur
		}
		return r.cur
	}
	fr := r.ensureFrontier()
	fr.reset(false)
	// Establish the skip invariant for round 0: a skipped vertex's next entry
	// must already equal its current state. Later rounds maintain it for free
	// (a vertex absent from the frontier did not change in the prior round,
	// so the stale buffer entry it left behind is still its current state).
	copy(r.next, r.cur)
	for round := 0; round < rounds; round++ {
		seed(round, fr.markFn)
		rr := round
		r.trackedRound(func(v int, self S, nbrs Nbrs[S]) S {
			return f(rr, v, self, nbrs)
		}, nil, 0)
		r.cur, r.next = r.next, r.cur
	}
	return r.cur
}
