package local

import (
	"math/rand"
	"reflect"
	"testing"

	"deltacoloring/internal/graph"
)

// incRule bumps a vertex's state when any closed-neighborhood value is even;
// it is pure and state-dependent, which is all SparseStep requires.
func incRule(v int, self int, nbrs Nbrs[int]) int {
	if self%2 == 0 {
		return self + 1
	}
	for i := 0; i < nbrs.Len(); i++ {
		if nbrs.State(i)%2 == 0 {
			return self + 1
		}
	}
	return self
}

// TestSparseStepMatchesStepOnFullActivation: with every vertex active, one
// SparseStep computes exactly what one dense Step computes.
func TestSparseStepMatchesStepOnFullActivation(t *testing.T) {
	g := graph.Grid(6, 5)
	init := make([]int, g.N())
	for v := range init {
		init[v] = v % 4
	}
	dense := New(g)
	defer dense.Close()
	dr := NewRunner(dense, append([]int(nil), init...))
	want := append([]int(nil), dr.Step(incRule)...)

	sparse := New(g)
	defer sparse.Close()
	sr := NewRunner(sparse, append([]int(nil), init...))
	all := make([]int32, g.N())
	for v := range all {
		all[v] = int32(v)
	}
	changed := sr.SparseStep(all, nil, incRule)
	if !reflect.DeepEqual(sr.States(), want) {
		t.Fatalf("full-activation SparseStep diverges from Step:\n got %v\nwant %v", sr.States(), want)
	}
	for _, v := range changed {
		if want[v] == init[v] {
			t.Fatalf("vertex %d reported changed but did not change", v)
		}
	}
	wantChanged := 0
	for v := range want {
		if want[v] != init[v] {
			wantChanged++
		}
	}
	if len(changed) != wantChanged {
		t.Fatalf("changed lists %d vertices, want %d", len(changed), wantChanged)
	}
	if sparse.Rounds() != 1 {
		t.Fatalf("SparseStep charged %d rounds, want 1", sparse.Rounds())
	}
}

// TestSparseStepIsOrderIndependent: the two-phase evaluation makes the
// result independent of the activation list's order.
func TestSparseStepIsOrderIndependent(t *testing.T) {
	g := graph.Cycle(17)
	init := make([]int, g.N())
	for v := range init {
		init[v] = (v * 3) % 5
	}
	run := func(order []int32) []int {
		net := New(g)
		defer net.Close()
		r := NewRunner(net, append([]int(nil), init...))
		r.SparseStep(order, nil, incRule)
		return append([]int(nil), r.States()...)
	}
	asc := make([]int32, g.N())
	for v := range asc {
		asc[v] = int32(v)
	}
	want := run(asc)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		shuffled := append([]int32(nil), asc...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		if got := run(shuffled); !reflect.DeepEqual(got, want) {
			t.Fatalf("activation order changed the result:\n got %v\nwant %v", got, want)
		}
	}
}

// TestSparseStepSkipsInactive: vertices outside the activation set keep
// their state even when the rule would have changed them, States() stays the
// same backing slice across calls, and sparse rounds are recorded.
func TestSparseStepSkipsInactive(t *testing.T) {
	g := graph.Path(10)
	init := make([]int, g.N())
	net := New(g)
	defer net.Close()
	var span Span
	net.SetSpanHook(func(sp Span) { span = sp })
	end := net.Phase("sparse-test")
	r := NewRunner(net, init)
	before := r.States()
	changed := r.SparseStep([]int32{0, 3}, nil, incRule)
	if &r.States()[0] != &before[0] {
		t.Fatal("SparseStep flipped the state buffers; external views are broken")
	}
	if !reflect.DeepEqual(changed, []int32{0, 3}) {
		t.Fatalf("changed = %v, want [0 3]", changed)
	}
	for v, s := range r.States() {
		want := 0
		if v == 0 || v == 3 {
			want = 1
		}
		if s != want {
			t.Fatalf("state[%d] = %d, want %d", v, s, want)
		}
	}
	end()
	if span.SparseRounds != 1 {
		t.Fatalf("span recorded %d sparse rounds, want 1", span.SparseRounds)
	}
	if span.ActiveVertices != 2 || span.SkippedVertices != int64(g.N()-2) {
		t.Fatalf("span active/skipped = %d/%d, want 2/%d", span.ActiveVertices, span.SkippedVertices, g.N()-2)
	}
}
