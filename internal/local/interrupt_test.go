package local

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"deltacoloring/internal/graph"
)

// A cancellation arriving while a large parallel round is in flight must be
// observed mid-round: the workers abandon their chunks at the next
// interrupt-stride check instead of grinding through the whole vertex range,
// and the Interrupt panic surfaces on the calling goroutine. The trip wire
// is pulled by the state function itself once a small fraction of the work
// is done, so the test is deterministic in *when* the cancellation becomes
// visible without depending on wall-clock timing.
func TestInterruptObservedMidRound(t *testing.T) {
	const n = 1 << 20
	g := graph.Path(n)
	net := New(g)
	defer net.Close()
	net.SetWorkers(4)

	errBoom := errors.New("boom")
	var tripped atomic.Bool
	var processed atomic.Int64
	net.SetInterrupt(func() error {
		if tripped.Load() {
			return errBoom
		}
		return nil
	})

	run := NewRunner(net, make([]int, n))
	var got error
	func() {
		defer func() {
			if r := recover(); r != nil {
				ip, ok := r.(Interrupt)
				if !ok {
					panic(r)
				}
				got = ip.Err
			}
		}()
		run.Step(func(v int, self int, nbrs Nbrs[int]) int {
			if processed.Add(1) == n/64 {
				tripped.Store(true)
			}
			return self + 1
		})
	}()
	if !errors.Is(got, errBoom) {
		t.Fatalf("want Interrupt{errBoom} panic, got %v", got)
	}
	// The round must have been abandoned early: every worker may run at
	// most one more stride past the trip point, so the processed count
	// stays far below n.
	if p := processed.Load(); p >= n/2 {
		t.Fatalf("interrupt ignored mid-round: %d of %d vertices processed", p, n)
	}
}

// After a mid-round interrupt, Close must leave no pool goroutines behind.
func TestInterruptLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	g := graph.Path(1 << 18)
	net := New(g)
	net.SetWorkers(8)
	errBoom := errors.New("boom")
	var tripped atomic.Bool
	net.SetInterrupt(func() error {
		if tripped.Load() {
			return errBoom
		}
		return nil
	})
	run := NewRunner(net, make([]int, g.N()))
	func() {
		defer func() { recover() }()
		run.Step(func(v int, self int, nbrs Nbrs[int]) int {
			tripped.Store(true)
			return self
		})
	}()
	net.Close()

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked after interrupt + Close: %d -> %d", before, runtime.NumGoroutine())
}

// An interrupt installed but never firing must not perturb results or
// determinism across worker counts (the stride checks are read-only).
func TestInterruptStrideNoEffect(t *testing.T) {
	g := graph.Cycle(parallelThreshold * 8)
	run := func(workers int, withCheck bool) []int {
		net := New(g)
		defer net.Close()
		net.SetWorkers(workers)
		if withCheck {
			net.SetInterrupt(func() error { return nil })
		}
		st := make([]int, g.N())
		for v := range st {
			st[v] = v
		}
		r := NewRunner(net, st)
		var out []int
		for i := 0; i < 3; i++ {
			out = r.Step(func(v int, self int, nbrs Nbrs[int]) int {
				m := self
				for j := 0; j < nbrs.Len(); j++ {
					if s := nbrs.State(j); s > m {
						m = s
					}
				}
				return m
			})
		}
		res := make([]int, len(out))
		copy(res, out)
		return res
	}
	want := run(1, false)
	for _, workers := range []int{1, 4} {
		for _, withCheck := range []bool{false, true} {
			got := run(workers, withCheck)
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("workers=%d check=%t: state differs at %d", workers, withCheck, v)
				}
			}
		}
	}
}
