package local

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// This file contains the explicit message-passing engine: per-node state
// machines with inboxes and outboxes, executed with a goroutine per worker
// and a barrier per round. It is semantically equivalent to the Exchange
// engine (messages are just pushed state); the flagship subroutines are
// implemented on both engines and cross-validated in tests.

// Message is a payload received from a neighbor.
type Message struct {
	// From is the sending vertex.
	From int
	// Payload is the algorithm-specific content.
	Payload any
}

// Outgoing is a payload addressed to a neighbor.
type Outgoing struct {
	// To is the receiving vertex; it must be a neighbor of the sender
	// (the LOCAL model has no other channels).
	To int
	// Payload is the algorithm-specific content.
	Payload any
}

// Proc is the per-node state machine run by RunProcs.
type Proc interface {
	// Init returns the messages the node sends in round 1.
	Init(v int, net *Network) []Outgoing
	// Step consumes the messages received in round r and returns the
	// messages for round r+1 plus whether the node has terminated. A
	// terminated node sends nothing and receives nothing further.
	Step(round int, inbox []Message) (out []Outgoing, done bool)
}

// RunProcs executes the node programs until every node terminates or
// maxRounds is exceeded (an error). Rounds are charged on net. Messages to
// non-neighbors are an error: they would violate the LOCAL model.
func RunProcs(net *Network, procs []Proc, maxRounds int) error {
	g := net.Graph()
	if len(procs) != g.N() {
		return fmt.Errorf("local: %d procs for %d vertices", len(procs), g.N())
	}
	done := make([]bool, g.N())
	inboxes := make([][]Message, g.N())
	pending := make([][]Outgoing, g.N())

	// Round 1 sends.
	for v, p := range procs {
		pending[v] = p.Init(v, net)
	}
	for round := 1; round <= maxRounds; round++ {
		// Deliver.
		for v := range inboxes {
			inboxes[v] = inboxes[v][:0]
		}
		delivered := 0
		for v, outs := range pending {
			for _, o := range outs {
				if !g.HasEdge(v, o.To) {
					return fmt.Errorf("local: round %d: vertex %d sent to non-neighbor %d", round, v, o.To)
				}
				inboxes[o.To] = append(inboxes[o.To], Message{From: v, Payload: o.Payload})
				delivered++
			}
			pending[v] = nil
		}
		net.CountMessages(delivered)
		// Deterministic inbox order.
		for v := range inboxes {
			sort.SliceStable(inboxes[v], func(i, j int) bool { return inboxes[v][i].From < inboxes[v][j].From })
		}
		net.Charge(1)

		// Step all live nodes on the persistent worker pool when configured;
		// each vertex writes only its own pending/done slots, so no lock is
		// needed and results are worker-count independent.
		var running atomic.Int64
		net.run(g.N(), func(_, lo, hi int) {
			live := 0
			for v := lo; v < hi; v++ {
				if done[v] {
					continue
				}
				out, fin := procs[v].Step(round, inboxes[v])
				pending[v] = out
				if fin {
					done[v] = true
				} else {
					live++
				}
			}
			if live != 0 {
				running.Add(int64(live))
			}
		})
		if running.Load() == 0 {
			return nil
		}
	}
	n := 0
	for _, d := range done {
		if !d {
			n++
		}
	}
	return fmt.Errorf("local: %d nodes still running after %d rounds", n, maxRounds)
}
