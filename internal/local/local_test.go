package local

import (
	"testing"

	"deltacoloring/internal/graph"
)

// bfsByExchange computes hop distances from vertex 0 using one Exchange per
// BFS level; it doubles as the canonical example of the state engine.
func bfsByExchange(net *Network, diamBound int) []int {
	g := net.Graph()
	dist := make([]int, g.N())
	for v := range dist {
		dist[v] = -1
	}
	dist[0] = 0
	for r := 0; r < diamBound; r++ {
		dist = Exchange(net, dist, func(v int, self int, nbrs Nbrs[int]) int {
			if self >= 0 {
				return self
			}
			for i := 0; i < nbrs.Len(); i++ {
				if d := nbrs.State(i); d >= 0 {
					return d + 1
				}
			}
			return -1
		})
	}
	return dist
}

func TestExchangeBFS(t *testing.T) {
	g := graph.Cycle(9)
	net := New(g)
	dist := bfsByExchange(net, 5)
	for v := 0; v < g.N(); v++ {
		if want := g.Dist(0, v); dist[v] != want {
			t.Fatalf("dist[%d] = %d, want %d", v, dist[v], want)
		}
	}
	if net.Rounds() != 5 {
		t.Fatalf("rounds = %d, want 5", net.Rounds())
	}
}

func TestExchangeParallelMatchesSequential(t *testing.T) {
	g := graph.Torus(20, 20)
	seq := New(g)
	par := New(g)
	par.SetWorkers(8)
	d1 := bfsByExchange(seq, 25)
	d2 := bfsByExchange(par, 25)
	for v := range d1 {
		if d1[v] != d2[v] {
			t.Fatalf("parallel execution diverged at vertex %d: %d vs %d", v, d1[v], d2[v])
		}
	}
	if seq.Rounds() != par.Rounds() {
		t.Fatalf("round counts diverged: %d vs %d", seq.Rounds(), par.Rounds())
	}
}

func TestChargeAndVirtualDilation(t *testing.T) {
	g := graph.Cycle(4)
	net := New(g)
	net.Charge(3)
	if net.Rounds() != 3 {
		t.Fatalf("rounds = %d, want 3", net.Rounds())
	}
	vg := graph.Complete(3)
	vnet := net.Virtual(vg, 4)
	vnet.Charge(2)
	if net.Rounds() != 3+8 {
		t.Fatalf("rounds = %d, want 11", net.Rounds())
	}
	// Nested virtual networks multiply dilations.
	vvnet := vnet.Virtual(vg, 2)
	vvnet.Charge(1)
	if net.Rounds() != 11+8 {
		t.Fatalf("rounds = %d, want 19", net.Rounds())
	}
	// Exchange on a virtual network charges dilation rounds.
	st := make([]int, vg.N())
	Exchange(vnet, st, func(v int, s int, nb Nbrs[int]) int { return s })
	if net.Rounds() != 19+4 {
		t.Fatalf("rounds = %d, want 23", net.Rounds())
	}
	if net.Charge(0); net.Rounds() != 23 {
		t.Fatal("Charge(0) changed the counter")
	}
}

func TestPhaseSpans(t *testing.T) {
	net := New(graph.Cycle(5))
	endA := net.Phase("a")
	net.Charge(2)
	endB := net.Phase("b")
	net.Charge(3) // counts to both open spans
	endB()
	net.Charge(1) // only to a
	endA()
	net.Charge(5) // to none
	spans := net.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %v", spans)
	}
	if spans[0].Name != "a" || spans[0].Rounds != 6 {
		t.Fatalf("span a = %+v, want 6 rounds", spans[0])
	}
	if spans[1].Name != "b" || spans[1].Rounds != 3 {
		t.Fatalf("span b = %+v, want 3 rounds", spans[1])
	}
}

func TestIterate(t *testing.T) {
	g := graph.Path(10)
	net := New(g)
	dist := make([]int, g.N())
	for v := range dist {
		dist[v] = -1
	}
	dist[0] = 0
	final, rounds, err := Iterate(net, dist, 100,
		func(v int, self int, nbrs Nbrs[int]) int {
			if self >= 0 {
				return self
			}
			for i := 0; i < nbrs.Len(); i++ {
				if d := nbrs.State(i); d >= 0 {
					return d + 1
				}
			}
			return -1
		},
		func(v int, s int) bool { return s >= 0 })
	if err != nil {
		t.Fatalf("Iterate: %v", err)
	}
	if rounds != 9 {
		t.Fatalf("rounds = %d, want 9", rounds)
	}
	for v, d := range final {
		if d != v {
			t.Fatalf("dist[%d] = %d", v, d)
		}
	}
}

func TestIterateBudgetExhausted(t *testing.T) {
	net := New(graph.Path(10))
	st := make([]int, 10)
	_, _, err := Iterate(net, st, 3,
		func(v int, s int, nb Nbrs[int]) int { return s },
		func(v int, s int) bool { return false })
	if err == nil {
		t.Fatal("expected budget-exhausted error")
	}
}

// flood is a Proc that floods a token from vertex 0 and terminates when it
// has seen the token; it mirrors bfsByExchange on the message engine.
type flood struct {
	v    int
	g    *graph.Graph
	seen bool
	dist int
}

func (f *flood) Init(v int, net *Network) []Outgoing {
	f.v = v
	f.g = net.Graph()
	if v == 0 {
		f.seen = true
		return f.broadcast(0)
	}
	return nil
}

func (f *flood) broadcast(d int) []Outgoing {
	outs := make([]Outgoing, 0, f.g.Degree(f.v))
	for _, w := range f.g.Neighbors(f.v) {
		outs = append(outs, Outgoing{To: int(w), Payload: d + 1})
	}
	return outs
}

func (f *flood) Step(round int, inbox []Message) ([]Outgoing, bool) {
	if f.seen {
		return nil, true
	}
	for _, m := range inbox {
		d, ok := m.Payload.(int)
		if !ok {
			continue
		}
		f.seen = true
		f.dist = d
		return f.broadcast(d), true
	}
	return nil, false
}

func TestRunProcsFlood(t *testing.T) {
	g := graph.Cycle(12)
	net := New(g)
	procs := make([]Proc, g.N())
	fs := make([]*flood, g.N())
	for v := range procs {
		fs[v] = &flood{}
		procs[v] = fs[v]
	}
	if err := RunProcs(net, procs, 100); err != nil {
		t.Fatalf("RunProcs: %v", err)
	}
	for v := 1; v < g.N(); v++ {
		if want := g.Dist(0, v); fs[v].dist != want {
			t.Fatalf("proc dist[%d] = %d, want %d", v, fs[v].dist, want)
		}
	}
}

// badSender sends to a non-neighbor to exercise the model check.
type badSender struct{}

func (badSender) Init(v int, net *Network) []Outgoing {
	if v == 0 {
		return []Outgoing{{To: 2, Payload: nil}} // 0 and 2 non-adjacent in P4
	}
	return nil
}

func (badSender) Step(round int, inbox []Message) ([]Outgoing, bool) { return nil, true }

func TestRunProcsRejectsNonNeighborSend(t *testing.T) {
	g := graph.Path(4)
	net := New(g)
	procs := make([]Proc, g.N())
	for v := range procs {
		procs[v] = badSender{}
	}
	if err := RunProcs(net, procs, 10); err == nil {
		t.Fatal("expected non-neighbor send to be rejected")
	}
}

type never struct{}

func (never) Init(v int, net *Network) []Outgoing         { return nil }
func (never) Step(r int, in []Message) ([]Outgoing, bool) { return nil, false }

func TestRunProcsRoundLimit(t *testing.T) {
	g := graph.Path(3)
	procs := []Proc{never{}, never{}, never{}}
	if err := RunProcs(New(g), procs, 5); err == nil {
		t.Fatal("expected round-limit error")
	}
}

func TestRunProcsParallelMatchesSequential(t *testing.T) {
	// A graph big enough (>= 256 nodes) to trigger the worker-pool path.
	g := graph.Torus(20, 20)
	runFlood := func(workers int) []int {
		net := New(g)
		net.SetWorkers(workers)
		procs := make([]Proc, g.N())
		fs := make([]*flood, g.N())
		for v := range procs {
			fs[v] = &flood{}
			procs[v] = fs[v]
		}
		if err := RunProcs(net, procs, 200); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		out := make([]int, g.N())
		for v := range fs {
			out[v] = fs[v].dist
		}
		return out
	}
	seq := runFlood(1)
	par := runFlood(8)
	for v := range seq {
		if seq[v] != par[v] {
			t.Fatalf("parallel proc engine diverged at %d: %d vs %d", v, seq[v], par[v])
		}
	}
}

func TestMessageCounting(t *testing.T) {
	net := New(graph.Cycle(4))
	if net.Messages() != 0 {
		t.Fatal("fresh network has messages")
	}
	net.CountMessages(7)
	if net.Messages() != 7 {
		t.Fatalf("messages = %d", net.Messages())
	}
	// Virtual networks share the counter.
	vnet := net.Virtual(graph.Cycle(3), 2)
	vnet.CountMessages(3)
	if net.Messages() != 10 {
		t.Fatalf("messages = %d, want 10", net.Messages())
	}
}
