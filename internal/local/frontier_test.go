package local

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"deltacoloring/internal/graph"
)

// The tests in this file enforce the frontier engine's core promise: states,
// round counts, and span totals bit-identical to the dense engine, at every
// worker count, with and without faults, for both Run and Sweep.

func randomGraphLocal(n int, p float64, rng *rand.Rand) *graph.Graph {
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	return b.MustBuild()
}

func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// testFaultCfg drives the hand-rolled fault hook below (the real seeded
// plans live in internal/faults, which imports this package and so cannot be
// used from in-package tests). Rates are thresholds out of 256.
type testFaultCfg struct {
	seed                       uint64
	crashN, dropN, dupN, corrN uint64
	// intermittent makes NextRound return nil views on some rounds, which
	// exercises the engine's return-to-sparse-after-faults transition.
	intermittent bool
}

type testFaults struct {
	cfg   testFaultCfg
	g     *graph.Graph
	round int
}

type testRoundView struct {
	h *testFaults
	r uint64
}

func (h *testFaults) NextRound() RoundFaults {
	r := h.round
	h.round++
	c := h.cfg
	if c.crashN == 0 && c.dropN == 0 && c.dupN == 0 && c.corrN == 0 {
		return nil
	}
	if c.intermittent && mix64(c.seed^0x11^uint64(r))&3 == 0 {
		return nil
	}
	return testRoundView{h: h, r: uint64(r)}
}

func (t testRoundView) Crashed(v int) bool {
	c := t.h.cfg
	if c.crashN == 0 || mix64(c.seed^0x22^uint64(v))&255 >= c.crashN {
		return false
	}
	return t.r >= mix64(c.seed^0x33^uint64(v))%16
}

func (t testRoundView) Dropped(from, to int) bool {
	c := t.h.cfg
	return c.dropN != 0 && mix64(c.seed^0x44^t.r<<32^uint64(from)<<16^uint64(to))&255 < c.dropN
}

func (t testRoundView) Duplicated(from, to int) bool {
	c := t.h.cfg
	return c.dupN != 0 && mix64(c.seed^0x55^t.r<<32^uint64(from)<<16^uint64(to))&255 < c.dupN
}

func (t testRoundView) Corrupted(v int) (int, bool) {
	c := t.h.cfg
	if c.corrN == 0 || mix64(c.seed^0x66^uint64(v))&255 >= c.corrN {
		return 0, false
	}
	if t.r != mix64(c.seed^0x77^uint64(v))%16 {
		return 0, false
	}
	nbrs := t.h.g.Neighbors(v)
	if len(nbrs) == 0 {
		return 0, false
	}
	return int(nbrs[mix64(c.seed^0x88^uint64(v))%uint64(len(nbrs))]), true
}

// Two stabilizing state machines with different frontier shapes.

// minProp floods the minimum label (a moving wavefront: very sparse).
func minProp(v int, self int, nbrs Nbrs[int]) int {
	m := self
	for i := 0; i < nbrs.Len(); i++ {
		if s := nbrs.State(i); s < m {
			m = s
		}
	}
	return m
}

func minPropDone(v int, s int) bool { return s == 0 }

// bootstrap is 2-neighbor bootstrap percolation (monotone cascades that may
// stall, exercising the budget-exhausted error path identically).
func bootstrap(v int, self int, nbrs Nbrs[int]) int {
	if self == 1 {
		return 1
	}
	hot := 0
	for i := 0; i < nbrs.Len(); i++ {
		if nbrs.State(i) == 1 {
			hot++
		}
	}
	if hot >= 2 {
		return 1
	}
	return 0
}

func bootstrapDone(v int, s int) bool { return s == 1 }

type engineResult struct {
	states []int
	rounds int
	errStr string
	total  int
	spans  []Span
	fstats FrontierStats
}

func runEngine(t *testing.T, g *graph.Graph, init []int, budget, workers int, frontierOn bool,
	fcfg *testFaultCfg, f func(int, int, Nbrs[int]) int, done func(int, int) bool) engineResult {
	t.Helper()
	net := New(g)
	defer net.Close()
	net.SetWorkers(workers)
	net.SetFrontier(frontierOn)
	if fcfg != nil {
		net.SetFaults(&testFaults{cfg: *fcfg, g: g})
	}
	closePhase := net.Phase("engine")
	cur := make([]int, len(init))
	copy(cur, init)
	states, rounds, err := Iterate(net, cur, budget, f, done)
	closePhase()
	res := engineResult{states: states, rounds: rounds, total: net.Rounds(),
		spans: net.Spans(), fstats: net.FrontierStats()}
	if err != nil {
		res.errStr = err.Error()
	}
	return res
}

func compareEngineResults(t *testing.T, label string, a, b engineResult, wantEqualStats bool) {
	t.Helper()
	if a.rounds != b.rounds || a.total != b.total {
		t.Fatalf("%s: rounds diverged: (%d, total %d) vs (%d, total %d)",
			label, a.rounds, a.total, b.rounds, b.total)
	}
	if a.errStr != b.errStr {
		t.Fatalf("%s: errors diverged: %q vs %q", label, a.errStr, b.errStr)
	}
	for v := range a.states {
		if a.states[v] != b.states[v] {
			t.Fatalf("%s: state diverged at vertex %d: %d vs %d", label, v, a.states[v], b.states[v])
		}
	}
	if len(a.spans) != len(b.spans) {
		t.Fatalf("%s: span counts diverged: %d vs %d", label, len(a.spans), len(b.spans))
	}
	for i := range a.spans {
		if a.spans[i].Name != b.spans[i].Name || a.spans[i].Rounds != b.spans[i].Rounds {
			t.Fatalf("%s: span %d diverged: %+v vs %+v", label, i, a.spans[i], b.spans[i])
		}
	}
	if wantEqualStats && a.fstats != b.fstats {
		t.Fatalf("%s: frontier stats diverged: %+v vs %+v", label, a.fstats, b.fstats)
	}
}

func TestRunFrontierMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	graphs := map[string]*graph.Graph{
		"path200":    graph.Path(200),
		"cycle9":     graph.Cycle(9),
		"torus20":    graph.Torus(20, 20),
		"gnp150":     randomGraphLocal(150, 0.03, rng),
		"gnp60dense": randomGraphLocal(60, 0.2, rng),
	}
	workerCounts := []int{1, 4, runtime.NumCPU()}
	for name, g := range graphs {
		for trial := 0; trial < 3; trial++ {
			init := make([]int, g.N())
			for v := range init {
				init[v] = 1 + rng.Intn(100)
			}
			init[rng.Intn(g.N())] = 0
			boot := make([]int, g.N())
			for v := range boot {
				if rng.Float64() < 0.25 {
					boot[v] = 1
				}
			}
			budget := g.N() + 2
			for _, w := range workerCounts {
				dense := runEngine(t, g, init, budget, w, false, nil, minProp, minPropDone)
				sparse := runEngine(t, g, init, budget, w, true, nil, minProp, minPropDone)
				compareEngineResults(t, fmt.Sprintf("%s/minprop/w=%d", name, w), dense, sparse, false)

				dense = runEngine(t, g, boot, 30, w, false, nil, bootstrap, bootstrapDone)
				sparse = runEngine(t, g, boot, 30, w, true, nil, bootstrap, bootstrapDone)
				compareEngineResults(t, fmt.Sprintf("%s/bootstrap/w=%d", name, w), dense, sparse, false)
			}
		}
	}
}

func TestRunFrontierMatchesDenseUnderFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	g := randomGraphLocal(120, 0.05, rng)
	configs := []testFaultCfg{
		{seed: 1, crashN: 20},
		{seed: 2, dropN: 30, dupN: 30},
		{seed: 3, corrN: 40},
		{seed: 4, crashN: 10, dropN: 15, dupN: 15, corrN: 20},
		{seed: 5, crashN: 10, dropN: 15, dupN: 15, corrN: 20, intermittent: true},
		{seed: 6, dropN: 25, intermittent: true},
	}
	for ci, cfg := range configs {
		for trial := 0; trial < 3; trial++ {
			init := make([]int, g.N())
			for v := range init {
				init[v] = 1 + rng.Intn(50)
			}
			init[rng.Intn(g.N())] = 0
			for _, w := range []int{1, 4} {
				cfgCopy := cfg
				dense := runEngine(t, g, init, 80, w, false, &cfgCopy, minProp, minPropDone)
				cfgCopy = cfg
				sparse := runEngine(t, g, init, 80, w, true, &cfgCopy, minProp, minPropDone)
				compareEngineResults(t, fmt.Sprintf("faultcfg%d/w=%d", ci, w), dense, sparse, false)
			}
		}
	}
}

// TestFrontierWorkerIndependence pins that the frontier engine — including
// its sparse/dense mode decisions, which are part of the recorded stats — is
// bit-identical at every worker count.
func TestFrontierWorkerIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraphLocal(400, 0.01, rng)
	init := make([]int, g.N())
	for v := range init {
		init[v] = 1 + rng.Intn(100)
	}
	init[13%g.N()] = 0
	base := runEngine(t, g, init, g.N()+2, 1, true, nil, minProp, minPropDone)
	for _, w := range []int{2, 4, runtime.NumCPU()} {
		other := runEngine(t, g, init, g.N()+2, w, true, nil, minProp, minPropDone)
		compareEngineResults(t, fmt.Sprintf("w=%d", w), base, other, true)
	}
}

// TestFrontierActuallySkips guards against the engine silently running dense
// everywhere: a min-label wavefront on a long path must go sparse and skip
// the bulk of all vertex evaluations.
func TestFrontierActuallySkips(t *testing.T) {
	g := graph.Path(4000)
	init := make([]int, g.N())
	for v := range init {
		init[v] = 1
	}
	init[0] = 0
	res := runEngine(t, g, init, g.N()+2, 1, true, nil, minProp, minPropDone)
	if res.errStr != "" {
		t.Fatalf("unexpected error: %s", res.errStr)
	}
	st := res.fstats
	if st.SparseRounds == 0 {
		t.Fatalf("no sparse rounds recorded: %+v", st)
	}
	if st.SkippedVertices <= st.ActiveVertices {
		t.Fatalf("wavefront should skip most evaluations: %+v", st)
	}
	if st.EngineRounds != res.rounds {
		t.Fatalf("engine rounds %d != run rounds %d", st.EngineRounds, res.rounds)
	}
	off := runEngine(t, g, init, g.N()+2, 1, false, nil, minProp, minPropDone)
	if off.fstats.SparseRounds != 0 || off.fstats.SkippedVertices != 0 {
		t.Fatalf("SetFrontier(false) must force the dense engine: %+v", off.fstats)
	}
}

// Sweep cross-checks: a class sweep (round-indexed f, immutable class
// assignment outside the state) must match the equivalent Step loop exactly,
// with and without faults.

func sweepOnce(t *testing.T, g *graph.Graph, cls []int, init []int, classes, workers int,
	frontierOn bool, fcfg *testFaultCfg) ([]int, int, FrontierStats) {
	t.Helper()
	net := New(g)
	defer net.Close()
	net.SetWorkers(workers)
	net.SetFrontier(frontierOn)
	if fcfg != nil {
		net.SetFaults(&testFaults{cfg: *fcfg, g: g})
	}
	f := func(round, v int, self int, nbrs Nbrs[int]) int {
		if cls[v] != round {
			return self
		}
		sum := self*3 + v
		for i := 0; i < nbrs.Len(); i++ {
			sum += nbrs.State(i)
		}
		return sum % 251
	}
	buckets := make([][]int, classes)
	for v, c := range cls {
		buckets[c] = append(buckets[c], v)
	}
	r := NewRunner(net, append([]int(nil), init...))
	out := r.Sweep(classes, func(round int, mark func(int)) {
		for _, v := range buckets[round] {
			mark(v)
		}
	}, f)
	final := append([]int(nil), out...)
	return final, net.Rounds(), net.FrontierStats()
}

func stepLoopOnce(t *testing.T, g *graph.Graph, cls []int, init []int, classes, workers int,
	fcfg *testFaultCfg) ([]int, int) {
	t.Helper()
	net := New(g)
	defer net.Close()
	net.SetWorkers(workers)
	if fcfg != nil {
		net.SetFaults(&testFaults{cfg: *fcfg, g: g})
	}
	r := NewRunner(net, append([]int(nil), init...))
	for round := 0; round < classes; round++ {
		rr := round
		r.Step(func(v int, self int, nbrs Nbrs[int]) int {
			if cls[v] != rr {
				return self
			}
			sum := self*3 + v
			for i := 0; i < nbrs.Len(); i++ {
				sum += nbrs.State(i)
			}
			return sum % 251
		})
	}
	return append([]int(nil), r.States()...), net.Rounds()
}

func TestSweepMatchesStepLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 5; trial++ {
		g := randomGraphLocal(100+rng.Intn(200), 0.04, rng)
		classes := 2 + rng.Intn(14)
		cls := make([]int, g.N())
		init := make([]int, g.N())
		for v := range cls {
			cls[v] = rng.Intn(classes)
			init[v] = rng.Intn(251)
		}
		var fcfg *testFaultCfg
		if trial%2 == 1 {
			fcfg = &testFaultCfg{seed: uint64(trial), crashN: 15, dropN: 20, dupN: 20, corrN: 20, intermittent: true}
		}
		want, wantRounds := stepLoopOnce(t, g, cls, init, classes, 1, fcfg)
		for _, w := range []int{1, 4} {
			for _, frontierOn := range []bool{false, true} {
				got, gotRounds, _ := sweepOnce(t, g, cls, init, classes, w, frontierOn, fcfg)
				if gotRounds != wantRounds {
					t.Fatalf("trial %d w=%d frontier=%v: rounds %d, want %d",
						trial, w, frontierOn, gotRounds, wantRounds)
				}
				for v := range want {
					if got[v] != want[v] {
						t.Fatalf("trial %d w=%d frontier=%v: vertex %d got %d, want %d",
							trial, w, frontierOn, v, got[v], want[v])
					}
				}
			}
		}
	}
}

func TestSweepChargesExactRoundsAndGoesSparse(t *testing.T) {
	g := graph.Path(3000)
	classes := 12
	cls := make([]int, g.N())
	init := make([]int, g.N())
	for v := range cls {
		cls[v] = v % classes
	}
	_, rounds, st := sweepOnce(t, g, cls, init, classes, 1, true, nil)
	if rounds != classes {
		t.Fatalf("sweep charged %d rounds, want %d", rounds, classes)
	}
	if st.SparseRounds == 0 || st.SkippedVertices == 0 {
		t.Fatalf("class sweep on a path should run sparse: %+v", st)
	}
}

// FuzzFrontier cross-checks random graphs × state machines × fault plans ×
// worker counts against the dense engine.
func FuzzFrontier(f *testing.F) {
	f.Add(int64(1), uint8(40), uint8(10), uint8(0), uint8(20), false)
	f.Add(int64(2), uint8(80), uint8(3), uint8(1), uint8(40), true)
	f.Add(int64(3), uint8(10), uint8(60), uint8(2), uint8(0), false)
	f.Add(int64(4), uint8(200), uint8(8), uint8(3), uint8(15), true)
	f.Fuzz(func(t *testing.T, seed int64, nRaw, pRaw, machine uint8, budgetRaw uint8, withFaults bool) {
		n := 2 + int(nRaw)%120
		p := float64(pRaw%100) / 250.0
		budget := 1 + int(budgetRaw)%60
		rng := rand.New(rand.NewSource(seed))
		g := randomGraphLocal(n, p, rng)
		init := make([]int, n)
		for v := range init {
			init[v] = rng.Intn(100)
		}
		var fn func(int, int, Nbrs[int]) int
		var done func(int, int) bool
		switch machine % 3 {
		case 0:
			fn, done = minProp, minPropDone
		case 1:
			fn, done = bootstrap, bootstrapDone
		default:
			// Chaotic but convergent-ish: decay toward 0 pulled by the
			// neighborhood sum; exercises dense-heavy frontiers.
			fn = func(v int, self int, nbrs Nbrs[int]) int {
				sum := 0
				for i := 0; i < nbrs.Len(); i++ {
					sum += nbrs.State(i)
				}
				next := (self + sum) / (nbrs.Len() + 2)
				return next
			}
			done = func(v int, s int) bool { return s == 0 }
		}
		var fcfg *testFaultCfg
		if withFaults {
			fcfg = &testFaultCfg{seed: uint64(seed), crashN: uint64(nRaw) % 30,
				dropN: uint64(pRaw) % 30, dupN: uint64(budgetRaw) % 30,
				corrN: uint64(machine) % 30, intermittent: seed%2 == 0}
		}
		cp := func() *testFaultCfg {
			if fcfg == nil {
				return nil
			}
			c := *fcfg
			return &c
		}
		dense := runEngine(t, g, init, budget, 1, false, cp(), fn, done)
		for _, w := range []int{1, 4} {
			sparse := runEngine(t, g, init, budget, w, true, cp(), fn, done)
			compareEngineResults(t, fmt.Sprintf("w=%d", w), dense, sparse, false)
		}
	})
}
