package local

// Fault injection. The LOCAL engine is fault-free by default; installing a
// FaultHook on a network makes every subsequent Exchange/Runner.Step round on
// that network consult a per-round fault view before, during, and after the
// state computation. The hook is deliberately an interface so the engine
// stays free of any policy: concrete schedules (seeded random plans, scripted
// scenarios) live in internal/faults.
//
// Semantics, per round:
//
//   - Crashed(v): v is crash-stop faulty as of this round. Its state is
//     frozen (next[v] = cur[v], the state function is not invoked) and it
//     sends nothing — every neighbor's view omits it. A crashed vertex is
//     treated as done by quiescence detection, since it can never progress.
//   - Dropped(u, v): the round's message from u to v is lost; v's neighbor
//     view omits u this round (u still sees v unless the reverse direction
//     is dropped too — directions are independent, like real links).
//   - Duplicated(u, v): the message from u to v is delivered twice; u
//     appears twice in v's neighbor view, which perturbs any algorithm that
//     counts or aggregates over neighbors.
//   - Corrupted(v) = (src, true): after v computes its next state, its
//     memory is overwritten with src's current-round state (src is chosen by
//     the plan, typically a neighbor). Reading cur rather than next keeps
//     the outcome independent of scheduling order.
//
// All decisions must be pure functions of (round, vertices) for a fixed
// plan: the engine evaluates them from worker goroutines in arbitrary order
// and promises bit-identical outcomes at any worker count.
//
// Fault views apply only to the network the hook is installed on. Virtual
// child networks are unaffected: their nodes are simulated constant-diameter
// sets of real nodes, and faults are a property of the real communication
// layer, not of the simulation bookkeeping.

// RoundFaults is the fault view of one synchronous round.
type RoundFaults interface {
	// Crashed reports whether v is crash-stop faulty in (or before) this
	// round.
	Crashed(v int) bool
	// Dropped reports whether the message from `from` to `to` is lost this
	// round.
	Dropped(from, to int) bool
	// Duplicated reports whether the message from `from` to `to` is
	// delivered twice this round.
	Duplicated(from, to int) bool
	// Corrupted reports whether v's freshly computed state is overwritten
	// this round, and with which vertex's current state.
	Corrupted(v int) (src int, ok bool)
}

// FaultHook supplies one RoundFaults view per engine round. NextRound is
// called exactly once at the start of every Exchange/Runner.Step round on
// the network the hook is installed on, in round order, from the round's
// calling goroutine; returning nil marks the round fault-free and keeps the
// engine on its zero-overhead path.
type FaultHook interface {
	NextRound() RoundFaults
}

// SetFaults installs (or, with nil, removes) a fault hook on this network.
// The hook does not propagate to Virtual children: fault injection models
// the real communication layer. Results under a fixed plan remain
// bit-identical at any worker count, because every fault decision is a pure
// function of (round, vertex) pairs.
func (n *Network) SetFaults(h FaultHook) { n.faults = h }
