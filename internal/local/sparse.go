package local

import "fmt"

// SparseStep runs one synchronous round restricted to an explicit
// activation set: f is evaluated — against the pre-round states, exactly
// like Step — only on the listed vertices, every other vertex keeps its
// state, and the indices whose state actually changed are appended to
// changed (which may be nil) and returned. One call charges exactly one
// round and records a sparse engine round, so span and frontier accounting
// line up with the frontier scheduler's.
//
// The evaluation is two-phase (gather all next states, then apply), so
// results are independent of the order of the active list; duplicate
// entries are the caller's responsibility to avoid. Unlike Step, the
// buffers do not flip: States keeps returning the same slice, which is what
// lets callers that interleave external state writes (the shard workers
// applying ghost updates between rounds) hold one stable view. Fault hooks
// are not consulted — sharded runs inject faults at the transport layer
// instead.
func (r *Runner[S]) SparseStep(active []int32, changed []int32,
	f func(v int, self S, nbrs Nbrs[S]) S) []int32 {
	n := r.net
	if len(r.cur) != n.g.N() {
		panic(fmt.Sprintf("local: state slice has %d entries, graph has %d vertices", len(r.cur), n.g.N()))
	}
	n.Charge(1)
	n.counter.recordEngineRound(true, int64(len(active)), int64(len(r.cur)-len(active)))
	g := n.g
	for _, v := range active {
		r.next[v] = f(int(v), r.cur[v], Nbrs[S]{list: g.Neighbors(int(v)), st: r.cur})
	}
	for _, v := range active {
		if r.next[v] != r.cur[v] {
			r.cur[v] = r.next[v]
			changed = append(changed, v)
		}
	}
	return changed
}
