package local

// Tests for the persistent worker pool and the double-buffered Runner. Run
// with -race: the pool's chunk scheduling and the Runner's buffer flips are
// exactly the places a data race would hide.

import (
	"sync"
	"testing"

	"deltacoloring/internal/graph"
)

// TestRunnerMatchesExchange pins the Runner's contract against the
// one-shot Exchange: stepping the same pure function must produce the same
// states, and States must always expose the latest buffer.
func TestRunnerMatchesExchange(t *testing.T) {
	g := graph.Torus(10, 10)
	inc := func(v int, self int, nbrs Nbrs[int]) int {
		best := self
		for i := 0; i < nbrs.Len(); i++ {
			if s := nbrs.State(i); s > best {
				best = s
			}
		}
		return best + 1
	}
	want := make([]int, g.N())
	netA := New(g)
	for r := 0; r < 5; r++ {
		want = Exchange(netA, want, inc)
	}
	netB := New(g)
	run := NewRunner(netB, make([]int, g.N()))
	var got []int
	for r := 0; r < 5; r++ {
		got = run.Step(inc)
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("runner diverged at vertex %d: %d vs %d", v, got[v], want[v])
		}
	}
	if states := run.States(); &states[0] != &got[0] {
		t.Fatal("States does not expose the latest buffer")
	}
	if netA.Rounds() != netB.Rounds() {
		t.Fatalf("round counts diverged: %d vs %d", netA.Rounds(), netB.Rounds())
	}
}

// TestNetworkCloseThenReuse verifies Close releases the pool without
// breaking the network: further parallel rounds lazily restart it, and a
// second Close is a no-op.
func TestNetworkCloseThenReuse(t *testing.T) {
	g := graph.Torus(20, 20) // >= parallelThreshold vertices
	net := New(g)
	net.SetWorkers(4)
	st := Exchange(net, make([]int, g.N()), func(v int, self int, nbrs Nbrs[int]) int {
		return self + 1
	})
	net.Close()
	st = Exchange(net, st, func(v int, self int, nbrs Nbrs[int]) int {
		return self + 1
	})
	for v, s := range st {
		if s != 2 {
			t.Fatalf("vertex %d has state %d after two rounds, want 2", v, s)
		}
	}
	net.Close()
	net.Close()
}

// TestPoolConcurrentNetworks drives several parallel networks at once, the
// shape a job-queue service produces; under -race this exercises the pool's
// job channel and the per-chunk counters.
func TestPoolConcurrentNetworks(t *testing.T) {
	g := graph.Torus(18, 18)
	var wg sync.WaitGroup
	results := make([][]int, 6)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			net := New(g)
			net.SetWorkers(4)
			defer net.Close()
			st, _, err := Iterate(net, make([]int, g.N()), 50,
				func(v int, self int, nbrs Nbrs[int]) int { return self + 1 },
				func(v int, s int) bool { return s >= 10 },
			)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = st
		}(i)
	}
	wg.Wait()
	for i, st := range results {
		if st == nil {
			continue // reported above
		}
		for v, s := range st {
			if s != 10 {
				t.Fatalf("run %d: vertex %d stopped at %d, want 10", i, v, s)
			}
		}
	}
}
