package graph

import (
	"bytes"
	"testing"
)

// FuzzBuilder round-trips arbitrary edge lists through the Builder's
// counting-sort CSR construction and cross-checks every accessor against a
// straightforward map-based oracle. This pins the flat-offset layout:
// duplicate edges collapse, neighbor lists come back sorted and deduped,
// and Degree/M/HasEdge agree with the oracle exactly.
func FuzzBuilder(f *testing.F) {
	f.Add(uint8(4), []byte{0, 1, 1, 2, 2, 3})
	f.Add(uint8(5), []byte{0, 1, 0, 1, 1, 0, 3, 4}) // duplicates both ways
	f.Add(uint8(1), []byte{})
	f.Add(uint8(7), []byte{6, 0, 0, 6, 5, 5, 2, 4})
	f.Fuzz(func(t *testing.T, n uint8, raw []byte) {
		b := NewBuilder(int(n))
		type pair struct{ u, v int }
		oracle := map[pair]bool{}
		sawInvalid := false
		for i := 0; i+1 < len(raw); i += 2 {
			u, v := int(raw[i]), int(raw[i+1])
			b.AddEdge(u, v)
			if u < int(n) && v < int(n) && u != v {
				if u > v {
					u, v = v, u
				}
				oracle[pair{u, v}] = true
			} else {
				sawInvalid = true
			}
		}
		g, err := b.Build()
		if err != nil {
			// The builder rejects out-of-range endpoints and self-loops; an
			// error is only acceptable when some input edge was invalid.
			if !sawInvalid {
				t.Fatalf("Build failed on valid input: %v", err)
			}
			return
		}
		if sawInvalid {
			t.Fatal("Build accepted an invalid edge")
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("built graph fails validation: %v", err)
		}
		if g.N() != int(n) {
			t.Fatalf("N = %d, want %d", g.N(), n)
		}
		if g.M() != len(oracle) {
			t.Fatalf("M = %d, oracle has %d edges", g.M(), len(oracle))
		}
		deg := make([]int, int(n))
		for e := range oracle {
			deg[e.u]++
			deg[e.v]++
		}
		maxDeg := 0
		for v := 0; v < int(n); v++ {
			if deg[v] != g.Degree(v) {
				t.Fatalf("Degree(%d) = %d, oracle says %d", v, g.Degree(v), deg[v])
			}
			if deg[v] > maxDeg {
				maxDeg = deg[v]
			}
			nbrs := g.Neighbors(v)
			if len(nbrs) != deg[v] {
				t.Fatalf("len(Neighbors(%d)) = %d, want %d", v, len(nbrs), deg[v])
			}
			for i, w := range nbrs {
				if i > 0 && nbrs[i-1] >= w {
					t.Fatalf("Neighbors(%d) not strictly sorted: %v", v, nbrs)
				}
				u, x := v, int(w)
				if u > x {
					u, x = x, u
				}
				if !oracle[pair{u, x}] {
					t.Fatalf("Neighbors(%d) lists %d but the oracle has no such edge", v, w)
				}
				if !g.HasEdge(v, int(w)) || !g.HasEdge(int(w), v) {
					t.Fatalf("HasEdge(%d, %d) inconsistent with Neighbors", v, w)
				}
			}
		}
		if g.MaxDegree() != maxDeg {
			t.Fatalf("MaxDegree = %d, oracle says %d", g.MaxDegree(), maxDeg)
		}
		for e := range oracle {
			if !g.HasEdge(e.u, e.v) {
				t.Fatalf("HasEdge(%d, %d) = false for an oracle edge", e.u, e.v)
			}
		}

		// Bit-identity of the alternative construction paths: BuildParallel
		// (parallel sort/dedup forced on via the gate) and the streaming
		// two-pass FromStream must produce byte-for-byte the same CSR.
		var wantBuf bytes.Buffer
		if err := EncodeBinary(&wantBuf, g); err != nil {
			t.Fatalf("EncodeBinary: %v", err)
		}
		want := wantBuf.Bytes()
		saved := parallelBuildMinVertices
		parallelBuildMinVertices = 0
		defer func() { parallelBuildMinVertices = saved }()
		for _, workers := range []int{2, 3, 8} {
			pb := NewBuilder(int(n))
			for i := 0; i+1 < len(raw); i += 2 {
				pb.AddEdge(int(raw[i]), int(raw[i+1]))
			}
			pg, err := pb.BuildParallel(workers)
			if err != nil {
				t.Fatalf("BuildParallel(%d): %v", workers, err)
			}
			var got bytes.Buffer
			if err := EncodeBinary(&got, pg); err != nil {
				t.Fatalf("EncodeBinary: %v", err)
			}
			if !bytes.Equal(got.Bytes(), want) {
				t.Fatalf("BuildParallel(%d) CSR differs from sequential Build", workers)
			}
		}
		sg, err := FromStream(int(n), 4, func(emit func(u, v int)) error {
			for i := 0; i+1 < len(raw); i += 2 {
				u, v := int(raw[i]), int(raw[i+1])
				if u < int(n) && v < int(n) && u != v {
					emit(u, v)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("FromStream: %v", err)
		}
		var got bytes.Buffer
		if err := EncodeBinary(&got, sg); err != nil {
			t.Fatalf("EncodeBinary: %v", err)
		}
		if !bytes.Equal(got.Bytes(), want) {
			t.Fatal("FromStream CSR differs from sequential Build")
		}
	})
}
