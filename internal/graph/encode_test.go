package graph

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestEncodeBinaryRoundTrip(t *testing.T) {
	gs := map[string]*Graph{
		"empty":    NewBuilder(0).MustBuild(),
		"isolated": NewBuilder(5).MustBuild(),
		"torus":    Torus(6, 7),
		"erdos":    ErdosRenyi(200, 0.05, rand.New(rand.NewSource(3))),
	}
	// An ID-permuted graph: recovery must preserve symmetry-breaking IDs.
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	for v := 0; v < 4; v++ {
		b.SetID(v, uint64(100-v))
	}
	gs["permuted"] = b.MustBuild()

	for name, g := range gs {
		var buf bytes.Buffer
		if err := EncodeBinary(&buf, g); err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		if buf.Len() != encodeBinarySize(g) {
			t.Fatalf("%s: encoded %d bytes, size hint %d", name, buf.Len(), encodeBinarySize(g))
		}
		got, err := DecodeBinary(&buf)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if got.N() != g.N() || got.M() != g.M() || got.MaxDegree() != g.MaxDegree() {
			t.Fatalf("%s: round trip changed shape: %v vs %v", name, got, g)
		}
		for v := 0; v < g.N(); v++ {
			if got.ID(v) != g.ID(v) {
				t.Fatalf("%s: ID(%d) = %d, want %d", name, v, got.ID(v), g.ID(v))
			}
			a, b := got.Neighbors(v), g.Neighbors(v)
			if len(a) != len(b) {
				t.Fatalf("%s: degree of %d changed", name, v)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s: adjacency of %d changed", name, v)
				}
			}
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("%s: decoded graph invalid: %v", name, err)
		}
	}
}

func TestDecodeBinaryRejectsCorruption(t *testing.T) {
	g := Torus(5, 5)
	var buf bytes.Buffer
	if err := EncodeBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()

	// Truncations at every prefix length must error, never panic.
	for cut := 0; cut < len(clean); cut += 7 {
		if _, err := DecodeBinary(bytes.NewReader(clean[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Single-byte corruptions must either fail validation or decode to a
	// graph that still passes Validate (flips confined to the ID section can
	// be structurally harmless).
	for i := 0; i < len(clean); i += 11 {
		mut := append([]byte(nil), clean...)
		mut[i] ^= 0x40
		got, err := DecodeBinary(bytes.NewReader(mut))
		if err != nil {
			continue
		}
		if verr := got.Validate(); verr != nil {
			t.Fatalf("byte %d: decode accepted a graph failing Validate: %v", i, verr)
		}
	}
}
