// Package graph provides the static graph substrate used by every other
// package in this repository: adjacency structures, generators for the
// dense-graph families studied in the paper, induced subgraphs, and basic
// structural predicates (cliques, degrees, common neighborhoods).
//
// Vertices are dense integer indices in [0, N). Every vertex additionally
// carries a unique identifier (ID) used by the distributed algorithms for
// symmetry breaking; by default ID(v) == v, but tests may permute IDs to
// ensure no algorithm silently depends on index order.
package graph

import (
	"fmt"
	"sort"
)

// Graph is an immutable undirected simple graph with sorted adjacency lists.
// Build one with a Builder or a generator; after construction it must not be
// mutated. All query methods are safe for concurrent use.
type Graph struct {
	adj [][]int
	ids []uint64
	m   int
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors returns the sorted neighbor list of v. The returned slice is
// owned by the graph and must not be modified.
func (g *Graph) Neighbors(v int) []int { return g.adj[v] }

// ID returns the unique identifier of v used for symmetry breaking.
func (g *Graph) ID(v int) uint64 { return g.ids[v] }

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	if u == v {
		return false
	}
	// Search the shorter list.
	a := g.adj[u]
	if len(g.adj[v]) < len(a) {
		a, v = g.adj[v], u
	}
	i := sort.SearchInts(a, v)
	return i < len(a) && a[i] == v
}

// MaxDegree returns the maximum degree Δ of the graph (0 for the empty graph).
func (g *Graph) MaxDegree() int {
	d := 0
	for v := range g.adj {
		if len(g.adj[v]) > d {
			d = len(g.adj[v])
		}
	}
	return d
}

// MinDegree returns the minimum degree of the graph (0 for the empty graph).
func (g *Graph) MinDegree() int {
	if len(g.adj) == 0 {
		return 0
	}
	d := len(g.adj[0])
	for v := range g.adj {
		if len(g.adj[v]) < d {
			d = len(g.adj[v])
		}
	}
	return d
}

// Edge is an undirected edge with U < V.
type Edge struct {
	U, V int
}

// Edges returns all edges with U < V, sorted lexicographically.
func (g *Graph) Edges() []Edge {
	es := make([]Edge, 0, g.m)
	for u := range g.adj {
		for _, v := range g.adj[u] {
			if u < v {
				es = append(es, Edge{U: u, V: v})
			}
		}
	}
	return es
}

// CommonNeighbors returns the number of common neighbors of u and v.
func (g *Graph) CommonNeighbors(u, v int) int {
	a, b := g.adj[u], g.adj[v]
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// IsClique reports whether the given vertex set induces a clique.
func (g *Graph) IsClique(vs []int) bool {
	for i := 0; i < len(vs); i++ {
		for j := i + 1; j < len(vs); j++ {
			if !g.HasEdge(vs[i], vs[j]) {
				return false
			}
		}
	}
	return true
}

// NeighborsWithin returns all vertices at distance in [1, r] from v, sorted.
// It corresponds to collecting the radius-r ball in the LOCAL model.
func (g *Graph) NeighborsWithin(v, r int) []int {
	if r <= 0 {
		return nil
	}
	seen := map[int]bool{v: true}
	frontier := []int{v}
	var out []int
	for d := 0; d < r; d++ {
		var next []int
		for _, u := range frontier {
			for _, w := range g.adj[u] {
				if !seen[w] {
					seen[w] = true
					next = append(next, w)
					out = append(out, w)
				}
			}
		}
		frontier = next
		if len(frontier) == 0 {
			break
		}
	}
	sort.Ints(out)
	return out
}

// Dist returns the hop distance between u and v, or -1 if disconnected.
func (g *Graph) Dist(u, v int) int {
	if u == v {
		return 0
	}
	seen := make([]bool, g.N())
	seen[u] = true
	frontier := []int{u}
	for d := 1; len(frontier) > 0; d++ {
		var next []int
		for _, x := range frontier {
			for _, w := range g.adj[x] {
				if w == v {
					return d
				}
				if !seen[w] {
					seen[w] = true
					next = append(next, w)
				}
			}
		}
		frontier = next
	}
	return -1
}

// ConnectedComponents returns the vertex sets of the connected components,
// each sorted, ordered by smallest contained vertex.
func (g *Graph) ConnectedComponents() [][]int {
	seen := make([]bool, g.N())
	var comps [][]int
	for s := 0; s < g.N(); s++ {
		if seen[s] {
			continue
		}
		comp := []int{s}
		seen[s] = true
		for q := 0; q < len(comp); q++ {
			for _, w := range g.adj[comp[q]] {
				if !seen[w] {
					seen[w] = true
					comp = append(comp, w)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// Validate checks internal consistency (sorted adjacency, symmetry, no
// self-loops, unique IDs). Generators call it in tests; it is not on any
// hot path.
func (g *Graph) Validate() error {
	idSeen := make(map[uint64]int, g.N())
	for v, id := range g.ids {
		if w, dup := idSeen[id]; dup {
			return fmt.Errorf("graph: duplicate ID %d on vertices %d and %d", id, w, v)
		}
		idSeen[id] = v
	}
	edges := 0
	for v := range g.adj {
		prev := -1
		for _, w := range g.adj[v] {
			if w == v {
				return fmt.Errorf("graph: self-loop at %d", v)
			}
			if w <= prev {
				return fmt.Errorf("graph: adjacency of %d not strictly sorted", v)
			}
			if w < 0 || w >= g.N() {
				return fmt.Errorf("graph: neighbor %d of %d out of range", w, v)
			}
			if !g.HasEdge(w, v) {
				return fmt.Errorf("graph: edge {%d,%d} not symmetric", v, w)
			}
			prev = w
		}
		edges += len(g.adj[v])
	}
	if edges != 2*g.m {
		return fmt.Errorf("graph: edge count mismatch: %d half-edges, m=%d", edges, g.m)
	}
	return nil
}

// String returns a short summary, e.g. "graph(n=100, m=250, Δ=5)".
func (g *Graph) String() string {
	return fmt.Sprintf("graph(n=%d, m=%d, Δ=%d)", g.N(), g.M(), g.MaxDegree())
}
