// Package graph provides the static graph substrate used by every other
// package in this repository: adjacency structures, generators for the
// dense-graph families studied in the paper, induced subgraphs, and basic
// structural predicates (cliques, degrees, common neighborhoods).
//
// Vertices are dense integer indices in [0, N). Every vertex additionally
// carries a unique identifier (ID) used by the distributed algorithms for
// symmetry breaking; by default ID(v) == v, but tests may permute IDs to
// ensure no algorithm silently depends on index order.
//
// # Storage layout
//
// Adjacency is stored in compressed sparse row (CSR) form: a single flat
// edge array shared by all vertices plus an offsets array, so the whole
// structure is two allocations regardless of n, Neighbors is a constant-time
// subslice, and a scan over a neighborhood is a linear walk over contiguous
// memory. Vertex indices inside the edge array are int32 (graphs are capped
// at 2^31-1 vertices), halving the cache footprint of the hot loops.
package graph

import (
	"fmt"
	"sort"
	"sync"
)

// MaxN is the largest supported vertex count (vertex indices are stored as
// int32 in the CSR edge array).
const MaxN = 1<<31 - 1

// Graph is an immutable undirected simple graph with sorted adjacency lists
// in CSR layout. Build one with a Builder or a generator; after construction
// it must not be mutated. All query methods are safe for concurrent use.
type Graph struct {
	// offsets has N()+1 entries; the neighbors of v occupy
	// edges[offsets[v]:offsets[v+1]], sorted ascending.
	offsets []int32
	edges   []int32
	ids     []uint64
	maxDeg  int
}

// fromCSR adopts the given CSR arrays (ownership transfers to the graph).
// offsets must have len(ids)+1 monotone entries and edges must hold sorted,
// deduplicated, symmetric adjacency; constructors in this package guarantee
// that, and Validate can re-check it.
func fromCSR(offsets, edges []int32, ids []uint64) *Graph {
	g := &Graph{offsets: offsets, edges: edges, ids: ids}
	for v := 0; v+1 < len(offsets); v++ {
		if d := int(offsets[v+1] - offsets[v]); d > g.maxDeg {
			g.maxDeg = d
		}
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.ids) }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) / 2 }

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return int(g.offsets[v+1] - g.offsets[v]) }

// Neighbors returns the sorted neighbor list of v as a subslice of the
// graph's flat CSR edge array. The returned slice is owned by the graph and
// must not be modified.
func (g *Graph) Neighbors(v int) []int32 {
	return g.edges[g.offsets[v]:g.offsets[v+1]:g.offsets[v+1]]
}

// ID returns the unique identifier of v used for symmetry breaking.
func (g *Graph) ID(v int) uint64 { return g.ids[v] }

// searchInt32 returns the first index of x in the sorted slice a, or the
// insertion point if absent (sort.SearchInts over int32 without the
// interface indirection).
func searchInt32(a []int32, x int32) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	if u == v {
		return false
	}
	// Search the shorter list.
	a, x := g.Neighbors(u), v
	if g.Degree(v) < len(a) {
		a, x = g.Neighbors(v), u
	}
	i := searchInt32(a, int32(x))
	return i < len(a) && a[i] == int32(x)
}

// MaxDegree returns the maximum degree Δ of the graph (0 for the empty
// graph). It is precomputed at construction time.
func (g *Graph) MaxDegree() int { return g.maxDeg }

// MinDegree returns the minimum degree of the graph (0 for the empty graph).
func (g *Graph) MinDegree() int {
	if g.N() == 0 {
		return 0
	}
	d := g.Degree(0)
	for v := 1; v < g.N(); v++ {
		if dv := g.Degree(v); dv < d {
			d = dv
		}
	}
	return d
}

// Edge is an undirected edge with U < V.
type Edge struct {
	U, V int
}

// Edges returns all edges with U < V, sorted lexicographically.
func (g *Graph) Edges() []Edge {
	es := make([]Edge, 0, g.M())
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if int32(u) < v {
				es = append(es, Edge{U: u, V: int(v)})
			}
		}
	}
	return es
}

// CommonNeighbors returns the number of common neighbors of u and v.
func (g *Graph) CommonNeighbors(u, v int) int {
	a, b := g.Neighbors(u), g.Neighbors(v)
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// IsClique reports whether the given vertex set induces a clique.
func (g *Graph) IsClique(vs []int) bool {
	for i := 0; i < len(vs); i++ {
		for j := i + 1; j < len(vs); j++ {
			if !g.HasEdge(vs[i], vs[j]) {
				return false
			}
		}
	}
	return true
}

// ballScratch is the reusable visited array and BFS queue behind
// NeighborsWithin. Between uses every seen entry is false; each call marks
// only the vertices it discovers and sparsely resets them from the queue, so
// a pooled scratch costs O(ball size) per call once it has grown to the
// graph size (the map-based version this replaces dominated whole-pipeline
// profiles through hashing alone).
type ballScratch struct {
	seen  []bool
	queue []int32
}

var ballPool = sync.Pool{New: func() any { return new(ballScratch) }}

// NeighborsWithin returns all vertices at distance in [1, r] from v, sorted.
// It corresponds to collecting the radius-r ball in the LOCAL model.
func (g *Graph) NeighborsWithin(v, r int) []int {
	if r <= 0 {
		return nil
	}
	sc := ballPool.Get().(*ballScratch)
	if len(sc.seen) < g.N() {
		sc.seen = make([]bool, g.N())
	}
	seen := sc.seen
	seen[v] = true
	queue := append(sc.queue[:0], int32(v))
	head := 0
	for d := 0; d < r && head < len(queue); d++ {
		tail := len(queue)
		for ; head < tail; head++ {
			for _, w := range g.Neighbors(int(queue[head])) {
				if !seen[w] {
					seen[w] = true
					queue = append(queue, w)
				}
			}
		}
	}
	out := make([]int, 0, len(queue)-1)
	for _, w := range queue[1:] {
		out = append(out, int(w))
		seen[w] = false
	}
	seen[v] = false
	sc.queue = queue
	ballPool.Put(sc)
	sort.Ints(out)
	return out
}

// AppendBall appends all vertices at distance in [1, r] from v to dst in BFS
// discovery order and returns the extended slice. It is NeighborsWithin
// without the sort and without a fresh result allocation, for callers that
// only membership-test or re-aggregate the ball (conflict-graph construction
// visits every ball member regardless of order).
func (g *Graph) AppendBall(dst []int, v, r int) []int {
	if r <= 0 {
		return dst
	}
	sc := ballPool.Get().(*ballScratch)
	if len(sc.seen) < g.N() {
		sc.seen = make([]bool, g.N())
	}
	seen := sc.seen
	seen[v] = true
	queue := append(sc.queue[:0], int32(v))
	head := 0
	for d := 0; d < r && head < len(queue); d++ {
		tail := len(queue)
		for ; head < tail; head++ {
			for _, w := range g.Neighbors(int(queue[head])) {
				if !seen[w] {
					seen[w] = true
					queue = append(queue, w)
				}
			}
		}
	}
	for _, w := range queue[1:] {
		dst = append(dst, int(w))
		seen[w] = false
	}
	seen[v] = false
	sc.queue = queue
	ballPool.Put(sc)
	return dst
}

// Dist returns the hop distance between u and v, or -1 if disconnected.
func (g *Graph) Dist(u, v int) int {
	if u == v {
		return 0
	}
	seen := make([]bool, g.N())
	seen[u] = true
	frontier := []int{u}
	for d := 1; len(frontier) > 0; d++ {
		var next []int
		for _, x := range frontier {
			for _, w := range g.Neighbors(x) {
				if int(w) == v {
					return d
				}
				if !seen[w] {
					seen[w] = true
					next = append(next, int(w))
				}
			}
		}
		frontier = next
	}
	return -1
}

// ConnectedComponents returns the vertex sets of the connected components,
// each sorted, ordered by smallest contained vertex.
func (g *Graph) ConnectedComponents() [][]int {
	seen := make([]bool, g.N())
	var comps [][]int
	for s := 0; s < g.N(); s++ {
		if seen[s] {
			continue
		}
		comp := []int{s}
		seen[s] = true
		for q := 0; q < len(comp); q++ {
			for _, w := range g.Neighbors(comp[q]) {
				if !seen[w] {
					seen[w] = true
					comp = append(comp, int(w))
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// Validate checks internal consistency (CSR shape, sorted adjacency,
// symmetry, no self-loops, unique IDs). Generators call it in tests; it is
// not on any hot path.
func (g *Graph) Validate() error {
	if len(g.offsets) != g.N()+1 {
		return fmt.Errorf("graph: %d offsets for %d vertices", len(g.offsets), g.N())
	}
	if g.offsets[0] != 0 || int(g.offsets[g.N()]) != len(g.edges) {
		return fmt.Errorf("graph: offsets do not span the edge array")
	}
	idSeen := make(map[uint64]int, g.N())
	for v, id := range g.ids {
		if w, dup := idSeen[id]; dup {
			return fmt.Errorf("graph: duplicate ID %d on vertices %d and %d", id, w, v)
		}
		idSeen[id] = v
	}
	maxDeg := 0
	for v := 0; v < g.N(); v++ {
		if g.offsets[v] > g.offsets[v+1] {
			return fmt.Errorf("graph: offsets not monotone at %d", v)
		}
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
		prev := int32(-1)
		for _, w := range g.Neighbors(v) {
			if int(w) == v {
				return fmt.Errorf("graph: self-loop at %d", v)
			}
			if w <= prev {
				return fmt.Errorf("graph: adjacency of %d not strictly sorted", v)
			}
			if w < 0 || int(w) >= g.N() {
				return fmt.Errorf("graph: neighbor %d of %d out of range", w, v)
			}
			if !g.HasEdge(int(w), v) {
				return fmt.Errorf("graph: edge {%d,%d} not symmetric", v, w)
			}
			prev = w
		}
	}
	if maxDeg != g.maxDeg {
		return fmt.Errorf("graph: cached Δ=%d, actual %d", g.maxDeg, maxDeg)
	}
	if len(g.edges)%2 != 0 {
		return fmt.Errorf("graph: odd half-edge count %d", len(g.edges))
	}
	return nil
}

// String returns a short summary, e.g. "graph(n=100, m=250, Δ=5)".
func (g *Graph) String() string {
	return fmt.Sprintf("graph(n=%d, m=%d, Δ=%d)", g.N(), g.M(), g.MaxDegree())
}
