package graph

import (
	"math/rand"
	"sort"
	"testing"
)

// boundsInvariants checks shape: parts+1 entries, monotone, spanning [0, n].
func boundsInvariants(t *testing.T, bounds []int32, parts, n int) {
	t.Helper()
	if len(bounds) != parts+1 {
		t.Fatalf("got %d bounds for %d parts", len(bounds), parts)
	}
	if bounds[0] != 0 || int(bounds[parts]) != n {
		t.Fatalf("bounds %v do not span [0, %d]", bounds, n)
	}
	for i := 0; i < parts; i++ {
		if bounds[i] > bounds[i+1] {
			t.Fatalf("bounds not monotone: %v", bounds)
		}
	}
}

func TestAppendChunkBoundsBalances(t *testing.T) {
	// A star plus a path: one hub of degree n-1 among degree-<=2 vertices.
	n := 1000
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(0, v)
		if v+1 < n {
			b.AddEdge(v, v+1)
		}
	}
	g := b.MustBuild()
	for _, parts := range []int{1, 2, 3, 7, 16} {
		bounds := g.AppendChunkBounds(nil, parts)
		boundsInvariants(t, bounds, parts, n)
		total := int64(0)
		for v := 0; v < n; v++ {
			total += int64(g.Degree(v)) + 1
		}
		// No chunk may exceed its fair share by more than the largest single
		// vertex weight (a vertex is indivisible).
		maxWeight := int64(g.MaxDegree() + 1)
		fair := total/int64(parts) + maxWeight
		for i := 0; i < parts; i++ {
			w := int64(0)
			for v := bounds[i]; v < bounds[i+1]; v++ {
				w += int64(g.Degree(int(v))) + 1
			}
			if w > fair {
				t.Errorf("parts=%d chunk %d weight %d exceeds fair share %d", parts, i, w, fair)
			}
		}
	}
}

func TestAppendChunkBoundsVertexChunkingSkews(t *testing.T) {
	// Demonstrate the fix: with vertex-count chunking into 2, the hub-heavy
	// half carries almost all edges; edge-balanced bounds cut far earlier.
	n := 512
	b := NewBuilder(n)
	for v := 1; v < n/4; v++ { // hubs live in the first quarter
		for w := v + 1; w < n; w += 7 {
			b.AddEdge(v, w)
		}
	}
	g := b.MustBuild()
	bounds := g.AppendChunkBounds(nil, 2)
	boundsInvariants(t, bounds, 2, n)
	mid := int(bounds[1])
	var firstHalf int64
	for v := 0; v < mid; v++ {
		firstHalf += int64(g.Degree(v)) + 1
	}
	var total int64
	for v := 0; v < n; v++ {
		total += int64(g.Degree(v)) + 1
	}
	if ratio := float64(firstHalf) / float64(total); ratio < 0.35 || ratio > 0.65 {
		t.Errorf("edge-balanced split left %.2f of the weight in chunk 0", ratio)
	}
	if mid >= n/2 {
		t.Errorf("hub-skewed graph should cut before the vertex midpoint, got %d of %d", mid, n)
	}
}

func TestAppendChunkBoundsEmptyAndTiny(t *testing.T) {
	g := NewBuilder(0).MustBuild()
	bounds := g.AppendChunkBounds(nil, 4)
	boundsInvariants(t, bounds, 4, 0)

	g1 := NewBuilder(1).MustBuild()
	bounds = g1.AppendChunkBounds(nil, 8)
	boundsInvariants(t, bounds, 8, 1)
}

func TestSplitPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		items := rng.Intn(200)
		cum := make([]int64, items+1)
		for i := 1; i <= items; i++ {
			cum[i] = cum[i-1] + int64(rng.Intn(50))
		}
		parts := 1 + rng.Intn(10)
		bounds := SplitPrefix(nil, cum, parts)
		if len(bounds) != parts+1 {
			t.Fatalf("got %d bounds for %d parts", len(bounds), parts)
		}
		if bounds[0] != 0 || int(bounds[parts]) != items {
			t.Fatalf("bounds %v do not span [0, %d]", bounds, items)
		}
		var maxItem int64
		for i := 1; i <= items; i++ {
			if w := cum[i] - cum[i-1]; w > maxItem {
				maxItem = w
			}
		}
		fair := cum[items]/int64(parts) + maxItem
		for i := 0; i < parts; i++ {
			if bounds[i] > bounds[i+1] {
				t.Fatalf("bounds not monotone: %v", bounds)
			}
			if w := cum[bounds[i+1]] - cum[bounds[i]]; w > fair {
				t.Errorf("chunk %d weight %d exceeds fair share %d (bounds %v)", i, w, fair, bounds)
			}
		}
	}
}

// TestNeighborsWithinMatchesReference pins the pooled BFS rewrite against a
// straightforward map-based reference on random graphs.
func TestNeighborsWithinMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(60)
		b := NewBuilder(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.08 {
					b.AddEdge(u, v)
				}
			}
		}
		g := b.MustBuild()
		for v := 0; v < n; v++ {
			for r := 0; r <= 4; r++ {
				got := g.NeighborsWithin(v, r)
				want := neighborsWithinRef(g, v, r)
				if len(got) != len(want) {
					t.Fatalf("n=%d v=%d r=%d: got %v want %v", n, v, r, got, want)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("n=%d v=%d r=%d: got %v want %v", n, v, r, got, want)
					}
				}
			}
		}
	}
}

func neighborsWithinRef(g *Graph, v, r int) []int {
	if r <= 0 {
		return nil
	}
	seen := map[int]bool{v: true}
	frontier := []int{v}
	var out []int
	for d := 0; d < r; d++ {
		var next []int
		for _, u := range frontier {
			for _, w := range g.Neighbors(u) {
				if !seen[int(w)] {
					seen[int(w)] = true
					next = append(next, int(w))
					out = append(out, int(w))
				}
			}
		}
		frontier = next
		if len(frontier) == 0 {
			break
		}
	}
	sort.Ints(out)
	return out
}
