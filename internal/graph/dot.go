package graph

import (
	"fmt"
	"io"
)

// dotPalette holds distinguishable fill colors for small palettes; larger
// color indices wrap around with a lighter shade.
var dotPalette = []string{
	"#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f", "#edc948",
	"#b07aa1", "#ff9da7", "#9c755f", "#bab0ac", "#86bcb6", "#d37295",
	"#fabfd2", "#b6992d", "#499894", "#79706e",
}

// WriteDOT renders the graph in Graphviz DOT format. colors may be nil (no
// fill) or a per-vertex color index; groups may be nil or a per-vertex
// cluster id (e.g. an almost-clique index) rendered as subgraph clusters.
func WriteDOT(w io.Writer, g *Graph, colors []int, groups []int) error {
	if colors != nil && len(colors) != g.N() {
		return fmt.Errorf("graph: %d colors for %d vertices", len(colors), g.N())
	}
	if groups != nil && len(groups) != g.N() {
		return fmt.Errorf("graph: %d groups for %d vertices", len(groups), g.N())
	}
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("graph G {\n  node [shape=circle, style=filled, fillcolor=white];\n")
	node := func(v int) {
		if colors != nil && colors[v] >= 0 {
			fill := dotPalette[colors[v]%len(dotPalette)]
			p("    %d [fillcolor=%q, label=\"%d\\nc%d\"];\n", v, fill, v, colors[v])
		} else {
			p("    %d;\n", v)
		}
	}
	if groups != nil {
		byGroup := map[int][]int{}
		order := []int{}
		for v := 0; v < g.N(); v++ {
			if _, ok := byGroup[groups[v]]; !ok {
				order = append(order, groups[v])
			}
			byGroup[groups[v]] = append(byGroup[groups[v]], v)
		}
		for _, gid := range order {
			p("  subgraph cluster_%d {\n    label=\"C%d\";\n", gid, gid)
			for _, v := range byGroup[gid] {
				node(v)
			}
			p("  }\n")
		}
	} else {
		for v := 0; v < g.N(); v++ {
			node(v)
		}
	}
	for _, e := range g.Edges() {
		p("  %d -- %d;\n", e.U, e.V)
	}
	p("}\n")
	return err
}
