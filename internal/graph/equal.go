package graph

import "fmt"

// EqualCSR reports whether a and b are structurally identical graphs: the
// same CSR offsets, the same edge array, and the same vertex IDs. Because
// every constructor in this package emits canonical CSR (sorted,
// deduplicated adjacency), structural equality of the arrays is exactly
// graph equality — two equal graphs also encode to identical bytes. The
// error names the first divergence; nil means identical.
func EqualCSR(a, b *Graph) error {
	if a.N() != b.N() {
		return fmt.Errorf("graph: n=%d vs %d", a.N(), b.N())
	}
	for v := 0; v < a.N(); v++ {
		if a.ids[v] != b.ids[v] {
			return fmt.Errorf("graph: vertex %d: ID %d vs %d", v, a.ids[v], b.ids[v])
		}
		if a.offsets[v+1] != b.offsets[v+1] {
			return fmt.Errorf("graph: vertex %d: degree %d vs %d", v, a.Degree(v), b.Degree(v))
		}
	}
	for i := range a.edges {
		if a.edges[i] != b.edges[i] {
			return fmt.Errorf("graph: edge slot %d: neighbor %d vs %d", i, a.edges[i], b.edges[i])
		}
	}
	return nil
}
