package graph

import (
	"strings"
	"testing"
)

func TestWriteDOTPlain(t *testing.T) {
	g := Cycle(4)
	var sb strings.Builder
	if err := WriteDOT(&sb, g, nil, nil); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"graph G {", "0 -- 1;", "2 -- 3;", "}"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestWriteDOTWithColorsAndGroups(t *testing.T) {
	g := Complete(4)
	colors := []int{0, 1, 2, 3}
	groups := []int{0, 0, 1, 1}
	var sb strings.Builder
	if err := WriteDOT(&sb, g, colors, groups); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"subgraph cluster_0", "subgraph cluster_1", "fillcolor", "c3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestWriteDOTValidation(t *testing.T) {
	g := Path(3)
	var sb strings.Builder
	if err := WriteDOT(&sb, g, []int{1}, nil); err == nil {
		t.Fatal("accepted short colors")
	}
	if err := WriteDOT(&sb, g, nil, []int{1}); err == nil {
		t.Fatal("accepted short groups")
	}
}
