package graph

import (
	"sort"
	"sync"
)

// Sub is an induced subgraph together with the vertex mapping back to the
// parent graph.
type Sub struct {
	// G is the induced subgraph with vertices renumbered to [0, len(ToParent)).
	G *Graph
	// ToParent maps subgraph vertex -> parent vertex.
	ToParent []int
	// FromParent maps parent vertex -> subgraph vertex, or -1.
	FromParent []int
}

// inducerScratch is the reusable relabel array behind Induced. Between uses
// every entry is -1; Induced marks only the member vertices and sparsely
// resets them afterwards, so a pooled scratch costs O(len(vs)) per call
// instead of O(parent n) once it has grown to the parent size.
type inducerScratch struct {
	relabel []int32
}

var inducerPool = sync.Pool{New: func() any { return new(inducerScratch) }}

func (sc *inducerScratch) grow(n int) {
	if len(sc.relabel) >= n {
		return
	}
	old := len(sc.relabel)
	sc.relabel = append(sc.relabel, make([]int32, n-old)...)
	for i := old; i < n; i++ {
		sc.relabel[i] = -1
	}
}

// Induced returns the subgraph of g induced by vs (duplicates are ignored).
// IDs are inherited from the parent so symmetry breaking stays consistent.
//
// The subgraph is assembled in CSR form in a single pass over the members'
// adjacency: because members are processed in ascending order and the
// relabeling is monotone, the emitted neighbor runs are already sorted and
// deduplicated, so no post-processing pass is needed.
func Induced(g *Graph, vs []int) *Sub {
	sc := inducerPool.Get().(*inducerScratch)
	sc.grow(g.N())
	relabel := sc.relabel

	uniq := make([]int, 0, len(vs))
	for _, v := range vs {
		if relabel[v] < 0 {
			relabel[v] = 0 // membership mark; real labels assigned below
			uniq = append(uniq, v)
		}
	}
	sort.Ints(uniq)
	for i, v := range uniq {
		relabel[v] = int32(i)
	}

	k := len(uniq)
	offsets := make([]int32, k+1)
	ids := make([]uint64, k)
	edges := make([]int32, 0, 16)
	for i, v := range uniq {
		ids[i] = g.ID(v)
		for _, w := range g.Neighbors(v) {
			if j := relabel[w]; j >= 0 {
				edges = append(edges, j)
			}
		}
		offsets[i+1] = int32(len(edges))
	}
	edges = edges[:len(edges):len(edges)]

	from := make([]int, g.N())
	for i := range from {
		from[i] = -1
	}
	for i, v := range uniq {
		from[v] = i
		relabel[v] = -1 // sparse reset for the next pooled use
	}
	inducerPool.Put(sc)

	return &Sub{G: fromCSR(offsets, edges, ids), ToParent: uniq, FromParent: from}
}

// Power returns the r-th power graph of g: vertices are the same and u~v iff
// 1 <= dist(u,v) <= r. Used for distance-r ruling sets; one round on the
// power graph costs r rounds on g (see internal/local.Virtual).
func Power(g *Graph, r int) *Graph {
	b := NewBuilder(g.N())
	for v := 0; v < g.N(); v++ {
		b.SetID(v, g.ID(v))
		for _, w := range g.NeighborsWithin(v, r) {
			if v < w {
				b.AddEdge(v, w)
			}
		}
	}
	return b.MustBuild()
}

// LineGraph returns the line graph of g: one vertex per edge of g, with two
// line-vertices adjacent iff the underlying edges share an endpoint. The
// second return value lists the underlying edge of each line-vertex.
// Line-vertex IDs are the rank of the edge in lexicographic order, which is
// a valid unique ID computable locally from endpoint IDs in the LOCAL model
// (we use the pair encoding directly).
func LineGraph(g *Graph) (*Graph, []Edge) {
	edges := g.Edges()
	idx := make(map[Edge]int, len(edges))
	for i, e := range edges {
		idx[e] = i
	}
	b := NewBuilder(len(edges))
	for i, e := range edges {
		// Encode endpoint IDs into a unique 64-bit ID (supports n < 2^32).
		b.SetID(i, g.ID(e.U)<<32|g.ID(e.V)&0xffffffff)
		for _, ends := range [2]int{e.U, e.V} {
			for _, w := range g.Neighbors(ends) {
				var f Edge
				if ends < int(w) {
					f = Edge{U: ends, V: int(w)}
				} else {
					f = Edge{U: int(w), V: ends}
				}
				if f == e {
					continue
				}
				j := idx[f]
				if i < j {
					b.AddEdge(i, j)
				}
			}
		}
	}
	return b.MustBuild(), edges
}

// Union returns the disjoint union of the given graphs, with vertices of
// graph i offset by the total size of graphs 0..i-1. IDs are re-based to
// stay unique.
func Union(gs ...*Graph) *Graph {
	n := 0
	for _, g := range gs {
		n += g.N()
	}
	b := NewBuilder(n)
	off := 0
	var idOff uint64
	for _, g := range gs {
		var maxID uint64
		for v := 0; v < g.N(); v++ {
			if g.ID(v) > maxID {
				maxID = g.ID(v)
			}
			b.SetID(off+v, idOff+g.ID(v))
			for _, w := range g.Neighbors(v) {
				if v < int(w) {
					b.AddEdge(off+v, off+int(w))
				}
			}
		}
		off += g.N()
		idOff += maxID + 1
	}
	return b.MustBuild()
}
