package graph

import (
	"math/rand"
	"strings"
	"testing"
)

// rebuildWith is the differential oracle for ApplyEdits: reconstruct the
// expected graph from scratch through the Builder.
func rebuildWith(t *testing.T, g *Graph, newN int, add, remove []Edge) *Graph {
	t.Helper()
	drop := map[Edge]bool{}
	for _, e := range remove {
		if e.U > e.V {
			e.U, e.V = e.V, e.U
		}
		drop[e] = true
	}
	b := NewBuilder(newN)
	for _, e := range g.Edges() {
		if !drop[e] {
			b.AddEdge(e.U, e.V)
		}
	}
	for _, e := range add {
		b.AddEdge(e.U, e.V)
	}
	out, err := b.Build()
	if err != nil {
		t.Fatalf("oracle rebuild: %v", err)
	}
	return out
}

func sameStructure(t *testing.T, got, want *Graph) {
	t.Helper()
	if got.N() != want.N() || got.M() != want.M() {
		t.Fatalf("got %v, want %v", got, want)
	}
	for v := 0; v < want.N(); v++ {
		gn, wn := got.Neighbors(v), want.Neighbors(v)
		if len(gn) != len(wn) {
			t.Fatalf("vertex %d: degree %d, want %d", v, len(gn), len(wn))
		}
		for i := range gn {
			if gn[i] != wn[i] {
				t.Fatalf("vertex %d: neighbors %v, want %v", v, gn, wn)
			}
		}
	}
}

func TestApplyEditsBasic(t *testing.T) {
	g := Cycle(6)
	g2, err := ApplyEdits(g, 8, []Edge{{U: 0, V: 3}, {U: 6, V: 7}, {U: 2, V: 6}}, []Edge{{U: 1, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if err := g2.Validate(); err != nil {
		t.Fatal(err)
	}
	sameStructure(t, g2, rebuildWith(t, g, 8,
		[]Edge{{U: 0, V: 3}, {U: 6, V: 7}, {U: 2, V: 6}}, []Edge{{U: 1, V: 2}}))
	// The original is untouched.
	if g.N() != 6 || g.M() != 6 || g.HasEdge(0, 3) {
		t.Fatalf("ApplyEdits mutated its input: %v", g)
	}
	// Appended vertices carry fresh unique IDs.
	if g2.ID(6) == g2.ID(7) || g2.ID(6) <= g.ID(5) {
		t.Fatalf("appended IDs not fresh: %d, %d", g2.ID(6), g2.ID(7))
	}
}

func TestApplyEditsRejections(t *testing.T) {
	g := Cycle(6)
	cases := []struct {
		name    string
		newN    int
		add     []Edge
		remove  []Edge
		wantErr string
	}{
		{"shrink", 5, nil, nil, "append-only"},
		{"add-existing", 6, []Edge{{U: 0, V: 1}}, nil, "already present"},
		{"add-dup", 7, []Edge{{U: 0, V: 6}, {U: 6, V: 0}}, nil, "duplicate added"},
		{"add-self-loop", 6, []Edge{{U: 3, V: 3}}, nil, "self-loop"},
		{"add-out-of-range", 6, []Edge{{U: 0, V: 6}}, nil, "out of range"},
		{"remove-missing", 6, nil, []Edge{{U: 0, V: 3}}, "not present"},
		{"remove-dup", 6, nil, []Edge{{U: 0, V: 1}, {U: 1, V: 0}}, "duplicate removed"},
		{"add-and-remove", 6, []Edge{{U: 0, V: 2}}, []Edge{{U: 0, V: 2}}, "both added and removed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ApplyEdits(g, tc.newN, tc.add, tc.remove)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("want error containing %q, got %v", tc.wantErr, err)
			}
		})
	}
}

// Random edit batches against the Builder oracle, including growth and
// removal down to the empty graph.
func TestApplyEditsRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := RandomRegular(40, 6, rng)
	for step := 0; step < 30; step++ {
		n := g.N()
		newN := n + rng.Intn(3)
		var add, remove []Edge
		seen := map[Edge]bool{}
		for _, e := range g.Edges() {
			if rng.Intn(8) == 0 {
				remove = append(remove, e)
			}
		}
		for tries := 0; tries < 10; tries++ {
			u, v := rng.Intn(newN), rng.Intn(newN)
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			e := Edge{U: u, V: v}
			if seen[e] || (v < n && g.HasEdge(u, v)) {
				continue
			}
			seen[e] = true
			add = append(add, e)
		}
		got, err := ApplyEdits(g, newN, add, remove)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		sameStructure(t, got, rebuildWith(t, g, newN, add, remove))
		g = got
	}
}
