package graph

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Binary CSR codec. The durable subsystem (internal/durable) checkpoints
// dynamic stores by serializing their graph snapshots; round-tripping the CSR
// arrays directly — offsets, edges, IDs — is both the fastest path (no edge
// re-sort, no counting pass) and the only one that preserves symmetry-breaking
// IDs exactly, so a recovered store replays maintenance over the identical
// structure the crashed process saw.
//
// Layout (all little-endian, no framing — callers wrap it in their own
// checksummed envelope):
//
//	uint32  n
//	uint32  len(edges)          (half-edge count, 2m)
//	int32   offsets[n+1]
//	int32   edges[2m]
//	uint64  ids[n]
//
// DecodeBinary re-validates the structural invariants it relies on (monotone
// offsets spanning the edge array, sorted strict adjacency runs, in-range
// endpoints) so a corrupted or adversarial payload yields an error, never a
// graph that breaks the package's immutability contract.

// NewCSRView adopts externally produced CSR arrays — typically views into a
// memory-mapped file — after an O(n+m) structural validation: offsets span
// the edge array monotonically and every adjacency run is strictly sorted,
// in range, and self-loop free. Two invariants are deliberately NOT checked,
// because they would dominate huge-graph load times: edge symmetry (O(m log Δ)
// binary searches) and ID uniqueness (an n-sized hash set). Writers in this
// repository emit symmetric CSR with identity IDs by construction; callers
// adopting untrusted input can run Validate for the full check. The arrays
// are aliased, not copied: the caller must keep their backing store (e.g. the
// mapping) alive and unmodified for the lifetime of the graph.
func NewCSRView(offsets, edges []int32, ids []uint64) (*Graph, error) {
	n := len(ids)
	if len(offsets) != n+1 {
		return nil, fmt.Errorf("graph: %d offsets for %d vertices", len(offsets), n)
	}
	if n > MaxN {
		return nil, fmt.Errorf("graph: vertex count %d out of range [0, %d]", n, MaxN)
	}
	if n == 0 {
		if len(edges) != 0 {
			return nil, fmt.Errorf("graph: %d edges with no vertices", len(edges))
		}
		return fromCSR(offsets, edges, ids), nil
	}
	if offsets[0] != 0 || int(offsets[n]) != len(edges) {
		return nil, fmt.Errorf("graph: offsets do not span the edge array")
	}
	if len(edges)%2 != 0 {
		return nil, fmt.Errorf("graph: odd half-edge count %d", len(edges))
	}
	for v := 0; v < n; v++ {
		if offsets[v] > offsets[v+1] {
			return nil, fmt.Errorf("graph: offsets not monotone at %d", v)
		}
		prev := int32(-1)
		for _, w := range edges[offsets[v]:offsets[v+1]] {
			if w < 0 || int(w) >= n {
				return nil, fmt.Errorf("graph: neighbor %d of %d out of range", w, v)
			}
			if int(w) == v {
				return nil, fmt.Errorf("graph: self-loop at %d", v)
			}
			if w <= prev {
				return nil, fmt.Errorf("graph: adjacency of %d not strictly sorted", v)
			}
			prev = w
		}
	}
	return fromCSR(offsets, edges, ids), nil
}

// encodeBinarySize returns the exact encoded byte size of g.
func encodeBinarySize(g *Graph) int {
	return 4 + 4 + 4*(g.N()+1) + 4*len(g.edges) + 8*g.N()
}

// EncodeBinary writes g's CSR image to w.
func EncodeBinary(w io.Writer, g *Graph) error {
	buf := make([]byte, 0, encodeBinarySize(g))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(g.N()))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(g.edges)))
	for _, o := range g.offsets {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(o))
	}
	for _, e := range g.edges {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e))
	}
	for _, id := range g.ids {
		buf = binary.LittleEndian.AppendUint64(buf, id)
	}
	_, err := w.Write(buf)
	return err
}

// DecodeBinary reads one EncodeBinary image from r and reconstructs the
// graph, validating the CSR shape before adopting it.
func DecodeBinary(r io.Reader) (*Graph, error) {
	var head [8]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return nil, fmt.Errorf("graph: decode header: %w", err)
	}
	n := int(binary.LittleEndian.Uint32(head[0:4]))
	ne := int(binary.LittleEndian.Uint32(head[4:8]))
	if n < 0 || n > MaxN || ne < 0 || ne%2 != 0 {
		return nil, fmt.Errorf("graph: decode: implausible shape n=%d half-edges=%d", n, ne)
	}
	body := make([]byte, 4*(n+1)+4*ne+8*n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("graph: decode body: %w", err)
	}
	offsets := make([]int32, n+1)
	for i := range offsets {
		offsets[i] = int32(binary.LittleEndian.Uint32(body[4*i:]))
	}
	body = body[4*(n+1):]
	edges := make([]int32, ne)
	for i := range edges {
		edges[i] = int32(binary.LittleEndian.Uint32(body[4*i:]))
	}
	body = body[4*ne:]
	ids := make([]uint64, n)
	idSeen := make(map[uint64]bool, n)
	for i := range ids {
		ids[i] = binary.LittleEndian.Uint64(body[8*i:])
		if idSeen[ids[i]] {
			return nil, fmt.Errorf("graph: decode: duplicate ID %d", ids[i])
		}
		idSeen[ids[i]] = true
	}
	if offsets[0] != 0 || int(offsets[n]) != ne {
		return nil, fmt.Errorf("graph: decode: offsets do not span the edge array")
	}
	for v := 0; v < n; v++ {
		if offsets[v] > offsets[v+1] || offsets[v] < 0 || int(offsets[v+1]) > ne {
			return nil, fmt.Errorf("graph: decode: offsets not monotone at %d", v)
		}
		prev := int32(-1)
		for _, w := range edges[offsets[v]:offsets[v+1]] {
			if w < 0 || int(w) >= n {
				return nil, fmt.Errorf("graph: decode: neighbor %d of %d out of range", w, v)
			}
			if int(w) == v {
				return nil, fmt.Errorf("graph: decode: self-loop at %d", v)
			}
			if w <= prev {
				return nil, fmt.Errorf("graph: decode: adjacency of %d not strictly sorted", v)
			}
			prev = w
		}
	}
	g := fromCSR(offsets, edges, ids)
	// Symmetry is the one invariant the per-vertex scan above cannot see;
	// check it edge-by-edge (binary searches, cheap at checkpoint cadence).
	for v := 0; v < n; v++ {
		for _, w := range g.Neighbors(v) {
			if !g.HasEdge(int(w), v) {
				return nil, fmt.Errorf("graph: decode: edge {%d,%d} not symmetric", v, w)
			}
		}
	}
	return g, nil
}
