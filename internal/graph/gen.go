package graph

import (
	"fmt"
	"math/rand"
)

// Cycle returns the cycle graph C_n (n >= 3).
func Cycle(n int) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("graph: Cycle needs n >= 3, got %d", n))
	}
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		b.AddEdge(v, (v+1)%n)
	}
	return b.MustBuild()
}

// Path returns the path graph P_n on n vertices.
func Path(n int) *Graph {
	b := NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		b.AddEdge(v, v+1)
	}
	return b.MustBuild()
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(u, v)
		}
	}
	return b.MustBuild()
}

// CompleteBipartite returns K_{a,b}.
func CompleteBipartite(a, b int) *Graph {
	bl := NewBuilder(a + b)
	for u := 0; u < a; u++ {
		for v := 0; v < b; v++ {
			bl.AddEdge(u, a+v)
		}
	}
	return bl.MustBuild()
}

// Star returns the star K_{1,n-1} with center 0.
func Star(n int) *Graph {
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(0, v)
	}
	return b.MustBuild()
}

// RandomTree returns a uniformly random labeled tree on n vertices
// (random Prüfer-like attachment: each vertex v >= 1 attaches to a uniform
// earlier vertex, which yields a random recursive tree — adequate for the
// baseline experiments that only need "a tree").
func RandomTree(n int, rng *rand.Rand) *Graph {
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(v, rng.Intn(v))
	}
	return b.MustBuild()
}

// CompleteKAry returns the complete k-ary tree with the given number of
// levels (level 1 is just the root).
func CompleteKAry(k, levels int) *Graph {
	if levels < 1 {
		panic("graph: CompleteKAry needs levels >= 1")
	}
	n := 1
	width := 1
	for l := 1; l < levels; l++ {
		width *= k
		n += width
	}
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(v, (v-1)/k)
	}
	return b.MustBuild()
}

// Grid returns the w x h grid graph.
func Grid(w, h int) *Graph {
	b := NewBuilder(w * h)
	at := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				b.AddEdge(at(x, y), at(x+1, y))
			}
			if y+1 < h {
				b.AddEdge(at(x, y), at(x, y+1))
			}
		}
	}
	return b.MustBuild()
}

// Torus returns the w x h torus (4-regular for w, h >= 3).
func Torus(w, h int) *Graph {
	if w < 3 || h < 3 {
		panic("graph: Torus needs w, h >= 3")
	}
	b := NewBuilder(w * h)
	at := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			b.AddEdge(at(x, y), at((x+1)%w, y))
			b.AddEdge(at(x, y), at(x, (y+1)%h))
		}
	}
	return b.MustBuild()
}

// ErdosRenyi returns G(n, p).
func ErdosRenyi(n int, p float64, rng *rand.Rand) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	return b.MustBuild()
}

// RandomRegular returns a random d-regular simple graph on n vertices via
// the configuration model with restarts (n*d must be even, d < n).
func RandomRegular(n, d int, rng *rand.Rand) *Graph {
	if n*d%2 != 0 {
		panic(fmt.Sprintf("graph: RandomRegular needs n*d even, got n=%d d=%d", n, d))
	}
	if d >= n {
		panic(fmt.Sprintf("graph: RandomRegular needs d < n, got n=%d d=%d", n, d))
	}
	for attempt := 0; attempt < 200; attempt++ {
		if g, ok := tryConfigurationModel(n, d, rng); ok {
			return g
		}
	}
	panic("graph: RandomRegular failed to converge (d too close to n?)")
}

// tryConfigurationModel pairs stubs uniformly and then repairs self-loops
// and duplicate edges by swapping with random other pairs; it gives up (and
// the caller restarts) if repair stalls.
func tryConfigurationModel(n, d int, rng *rand.Rand) (*Graph, bool) {
	stubs := make([]int, 0, n*d)
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, v)
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	pairs := len(stubs) / 2
	key := func(i int) [2]int {
		u, v := stubs[2*i], stubs[2*i+1]
		if u > v {
			u, v = v, u
		}
		return [2]int{u, v}
	}
	count := make(map[[2]int]int, pairs)
	for i := 0; i < pairs; i++ {
		count[key(i)]++
	}
	bad := func(i int) bool {
		k := key(i)
		return k[0] == k[1] || count[k] > 1
	}
	for iter := 0; iter < 50*pairs; iter++ {
		i := -1
		for j := 0; j < pairs; j++ {
			if bad(j) {
				i = j
				break
			}
		}
		if i < 0 {
			b := NewBuilder(n)
			for j := 0; j < pairs; j++ {
				b.AddEdge(stubs[2*j], stubs[2*j+1])
			}
			return b.MustBuild(), true
		}
		j := rng.Intn(pairs)
		if j == i {
			continue
		}
		count[key(i)]--
		count[key(j)]--
		stubs[2*i+1], stubs[2*j+1] = stubs[2*j+1], stubs[2*i+1]
		count[key(i)]++
		count[key(j)]++
	}
	return nil, false
}

// RegularBipartiteCirculant returns a d-regular bipartite graph on 2m
// vertices: left vertex i is adjacent to right vertices (i+j) mod m for
// j in [0, d). It is triangle-free (bipartite) and deterministic, and is
// the default "super-graph" H for the hard-clique constructions in dense.go.
func RegularBipartiteCirculant(m, d int, shifts ...int) *Graph {
	if d > m {
		panic(fmt.Sprintf("graph: RegularBipartiteCirculant needs d <= m, got m=%d d=%d", m, d))
	}
	if len(shifts) == 0 {
		shifts = make([]int, d)
		for j := range shifts {
			shifts[j] = j
		}
	}
	if len(shifts) != d {
		panic("graph: RegularBipartiteCirculant: len(shifts) must equal d")
	}
	b := NewBuilder(2 * m)
	for i := 0; i < m; i++ {
		for _, s := range shifts {
			b.AddEdge(i, m+(i+s)%m)
		}
	}
	return b.MustBuild()
}

// DisjointCliques returns k disjoint copies of K_size. For Δ < 63 the
// paper's Definition 4 makes isolated cliques the only dense graphs; this
// generator exercises that degenerate case.
func DisjointCliques(k, size int) *Graph {
	b := NewBuilder(k * size)
	for c := 0; c < k; c++ {
		base := c * size
		for u := 0; u < size; u++ {
			for v := u + 1; v < size; v++ {
				b.AddEdge(base+u, base+v)
			}
		}
	}
	return b.MustBuild()
}

// PermuteIDs returns a copy of g whose symmetry-breaking IDs are permuted by
// the given RNG. The adjacency structure is unchanged. Tests use this to
// ensure algorithms depend on IDs only through comparisons.
func PermuteIDs(g *Graph, rng *rand.Rand) *Graph {
	perm := rng.Perm(g.N())
	b := NewBuilder(g.N())
	for v := 0; v < g.N(); v++ {
		b.SetID(v, uint64(perm[v]))
		for _, w := range g.Neighbors(v) {
			if v < int(w) {
				b.AddEdge(v, int(w))
			}
		}
	}
	return b.MustBuild()
}
