package graph

import (
	"fmt"
	"slices"
)

// ApplyEdits derives a new immutable graph from g by applying one batch of
// structural edits: newN-g.N() appended vertices, the `add` edges inserted,
// and the `remove` edges deleted. It is the mutation-aware CSR path behind
// internal/dynamic: instead of re-running the counting-sort Builder over all
// m edges, the old CSR is merged with per-vertex sorted edit runs in a
// single linear pass, so one batch costs O(n + m + |edits| log |edits|) with
// two edge-array-sized allocations and no per-vertex slices.
//
// The edit semantics are strict, because the dynamic layer's conformance
// contract (batch split/reorder invariance) needs batches to be unambiguous:
//
//   - every added edge must be absent from g (and not duplicated in add),
//   - every removed edge must be present in g (and not duplicated in remove),
//   - no edge may appear in both add and remove,
//   - endpoints must lie in [0, newN), with no self-loops.
//
// Vertices are append-only: newN must be >= g.N(), and the appended vertices
// get fresh IDs above the current maximum so uniqueness is preserved even on
// ID-permuted graphs. Vertex removal is expressed by removing the vertex's
// incident edges (the dynamic layer tombstones the isolated slot).
func ApplyEdits(g *Graph, newN int, add, remove []Edge) (*Graph, error) {
	n := g.N()
	if newN < n {
		return nil, fmt.Errorf("graph: ApplyEdits shrinks n from %d to %d (vertices are append-only)", n, newN)
	}
	if newN > MaxN {
		return nil, fmt.Errorf("graph: vertex count %d out of range [0, %d]", newN, MaxN)
	}
	normalize := func(kind string, es []Edge) ([]Edge, error) {
		out := make([]Edge, len(es))
		for i, e := range es {
			u, v := e.U, e.V
			if u > v {
				u, v = v, u
			}
			if u < 0 || v >= newN {
				return nil, fmt.Errorf("graph: %s edge {%d,%d} out of range [0,%d)", kind, e.U, e.V, newN)
			}
			if u == v {
				return nil, fmt.Errorf("graph: %s self-loop at %d", kind, u)
			}
			out[i] = Edge{U: u, V: v}
		}
		slices.SortFunc(out, func(a, b Edge) int {
			if a.U != b.U {
				return a.U - b.U
			}
			return a.V - b.V
		})
		for i := 1; i < len(out); i++ {
			if out[i] == out[i-1] {
				return nil, fmt.Errorf("graph: duplicate %s edge {%d,%d}", kind, out[i].U, out[i].V)
			}
		}
		return out, nil
	}
	add, err := normalize("added", add)
	if err != nil {
		return nil, err
	}
	remove, err = normalize("removed", remove)
	if err != nil {
		return nil, err
	}
	for i, j := 0, 0; i < len(add) && j < len(remove); {
		switch {
		case add[i] == remove[j]:
			return nil, fmt.Errorf("graph: edge {%d,%d} both added and removed", add[i].U, add[i].V)
		case add[i].U < remove[j].U || (add[i].U == remove[j].U && add[i].V < remove[j].V):
			i++
		default:
			j++
		}
	}
	for _, e := range add {
		if e.V < n && g.HasEdge(e.U, e.V) {
			return nil, fmt.Errorf("graph: added edge {%d,%d} already present", e.U, e.V)
		}
	}
	for _, e := range remove {
		if e.V >= n || !g.HasEdge(e.U, e.V) {
			return nil, fmt.Errorf("graph: removed edge {%d,%d} not present", e.U, e.V)
		}
	}

	// Bucket the half-edges of both edit lists per vertex (counting sort,
	// exactly like the Builder), then sort each tiny run once.
	addRuns, err := halfEdgeRuns(newN, add)
	if err != nil {
		return nil, err
	}
	remRuns, err := halfEdgeRuns(newN, remove)
	if err != nil {
		return nil, err
	}

	offsets := make([]int32, newN+1)
	edges := make([]int32, len(g.edges)+2*len(add)-2*len(remove))
	var w int32
	for v := 0; v < newN; v++ {
		offsets[v] = w
		var old []int32
		if v < n {
			old = g.Neighbors(v)
		}
		adds, rems := addRuns.run(v), remRuns.run(v)
		// Three-way merge: old minus rems, interleaved with adds, both sorted.
		i, j, k := 0, 0, 0
		for i < len(old) || j < len(adds) {
			var next int32
			fromOld := false
			switch {
			case j >= len(adds) || (i < len(old) && old[i] < adds[j]):
				next, fromOld = old[i], true
			default:
				next = adds[j]
			}
			if fromOld {
				i++
				if k < len(rems) && rems[k] == next {
					k++
					continue
				}
			} else {
				j++
			}
			edges[w] = next
			w++
		}
		if k != len(rems) {
			// Unreachable after the presence pre-checks; guard against drift.
			return nil, fmt.Errorf("graph: removed edge at vertex %d not present", v)
		}
	}
	offsets[newN] = w
	if int(w) != len(edges) {
		return nil, fmt.Errorf("graph: edit merge wrote %d half-edges, expected %d", w, len(edges))
	}

	ids := make([]uint64, newN)
	copy(ids, g.ids)
	if newN > n {
		maxID := uint64(0)
		for _, id := range g.ids {
			if id > maxID {
				maxID = id
			}
		}
		for v := n; v < newN; v++ {
			maxID++
			ids[v] = maxID
		}
	}
	return fromCSR(offsets, edges, ids), nil
}

// edgeRuns is a CSR-shaped bucketing of edit half-edges: the neighbors that
// a batch adds to (or removes from) each vertex, sorted per vertex.
type edgeRuns struct {
	off  []int32
	half []int32
}

func (r edgeRuns) run(v int) []int32 {
	if r.half == nil {
		return nil
	}
	return r.half[r.off[v]:r.off[v+1]]
}

func halfEdgeRuns(n int, es []Edge) (edgeRuns, error) {
	if len(es) == 0 {
		return edgeRuns{}, nil
	}
	off := make([]int32, n+1)
	for _, e := range es {
		off[e.U+1]++
		off[e.V+1]++
	}
	for v := 0; v < n; v++ {
		off[v+1] += off[v]
	}
	half := make([]int32, 2*len(es))
	cursor := make([]int32, n)
	copy(cursor, off[:n])
	for _, e := range es {
		half[cursor[e.U]] = int32(e.V)
		cursor[e.U]++
		half[cursor[e.V]] = int32(e.U)
		cursor[e.V]++
	}
	lo := int32(0)
	for v := 0; v < n; v++ {
		hi := off[v+1]
		run := half[lo:hi]
		slices.Sort(run)
		for i := 1; i < len(run); i++ {
			if run[i] == run[i-1] {
				return edgeRuns{}, fmt.Errorf("graph: duplicate edit edge {%d,%d}", v, run[i])
			}
		}
		lo = hi
	}
	return edgeRuns{off: off, half: half}, nil
}
