package graph

import (
	"math/rand"
	"testing"
)

func TestBuilderDedupAndSort(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2 (duplicates collapsed)", g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestBuilderRejectsSelfLoop(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(1, 1)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted a self-loop")
	}
}

func TestBuilderRejectsOutOfRange(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 2)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted an out-of-range edge")
	}
}

func TestBuilderRejectsDuplicateIDs(t *testing.T) {
	b := NewBuilder(2)
	b.SetID(0, 7)
	b.SetID(1, 7)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted duplicate IDs")
	}
}

func TestBuilderRejectsReuse(t *testing.T) {
	b := NewBuilder(1)
	if _, err := b.Build(); err != nil {
		t.Fatalf("first Build: %v", err)
	}
	if _, err := b.Build(); err == nil {
		t.Fatal("second Build on the same builder succeeded")
	}
}

func TestHasEdge(t *testing.T) {
	g := Cycle(5)
	if !g.HasEdge(0, 1) || !g.HasEdge(4, 0) {
		t.Fatal("cycle edges missing")
	}
	if g.HasEdge(0, 2) {
		t.Fatal("chord reported in C5")
	}
	if g.HasEdge(3, 3) {
		t.Fatal("self-loop reported")
	}
}

func TestDegreesAndEdges(t *testing.T) {
	g := Complete(6)
	if g.MaxDegree() != 5 || g.MinDegree() != 5 {
		t.Fatalf("K6 degrees: max=%d min=%d", g.MaxDegree(), g.MinDegree())
	}
	if g.M() != 15 {
		t.Fatalf("K6 edges = %d, want 15", g.M())
	}
	if len(g.Edges()) != 15 {
		t.Fatalf("Edges() length = %d", len(g.Edges()))
	}
}

func TestCommonNeighbors(t *testing.T) {
	g := Complete(5)
	if got := g.CommonNeighbors(0, 1); got != 3 {
		t.Fatalf("K5 common neighbors = %d, want 3", got)
	}
	c := Cycle(6)
	if got := c.CommonNeighbors(0, 2); got != 1 {
		t.Fatalf("C6 common(0,2) = %d, want 1", got)
	}
	if got := c.CommonNeighbors(0, 3); got != 0 {
		t.Fatalf("C6 common(0,3) = %d, want 0", got)
	}
}

func TestIsClique(t *testing.T) {
	g := Complete(4)
	if !g.IsClique([]int{0, 1, 2, 3}) {
		t.Fatal("K4 not recognized as clique")
	}
	c := Cycle(4)
	if c.IsClique([]int{0, 1, 2}) {
		t.Fatal("path in C4 misreported as clique")
	}
	if !c.IsClique([]int{0, 1}) || !c.IsClique([]int{2}) || !c.IsClique(nil) {
		t.Fatal("small sets should be cliques")
	}
}

func TestNeighborsWithin(t *testing.T) {
	g := Path(7)
	ball := g.NeighborsWithin(3, 2)
	want := []int{1, 2, 4, 5}
	if len(ball) != len(want) {
		t.Fatalf("ball = %v, want %v", ball, want)
	}
	for i := range want {
		if ball[i] != want[i] {
			t.Fatalf("ball = %v, want %v", ball, want)
		}
	}
	if got := g.NeighborsWithin(0, 0); got != nil {
		t.Fatalf("radius-0 ball = %v, want nil", got)
	}
}

func TestDist(t *testing.T) {
	g := Cycle(8)
	cases := []struct{ u, v, want int }{
		{0, 0, 0}, {0, 1, 1}, {0, 4, 4}, {0, 5, 3},
	}
	for _, c := range cases {
		if got := g.Dist(c.u, c.v); got != c.want {
			t.Errorf("Dist(%d,%d) = %d, want %d", c.u, c.v, got, c.want)
		}
	}
	u := Union(Cycle(3), Cycle(3))
	if got := u.Dist(0, 4); got != -1 {
		t.Fatalf("cross-component Dist = %d, want -1", got)
	}
}

func TestConnectedComponents(t *testing.T) {
	u := Union(Cycle(3), Path(4), Complete(2))
	comps := u.ConnectedComponents()
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3", len(comps))
	}
	sizes := []int{len(comps[0]), len(comps[1]), len(comps[2])}
	if sizes[0] != 3 || sizes[1] != 4 || sizes[2] != 2 {
		t.Fatalf("component sizes = %v", sizes)
	}
}

func TestGeneratorShapes(t *testing.T) {
	cases := []struct {
		name       string
		g          *Graph
		n, m, maxD int
	}{
		{"Cycle(5)", Cycle(5), 5, 5, 2},
		{"Path(5)", Path(5), 5, 4, 2},
		{"Complete(7)", Complete(7), 7, 21, 6},
		{"CompleteBipartite(3,4)", CompleteBipartite(3, 4), 7, 12, 4},
		{"Star(6)", Star(6), 6, 5, 5},
		{"Grid(4,3)", Grid(4, 3), 12, 17, 4},
		{"Torus(4,5)", Torus(4, 5), 20, 40, 4},
		{"DisjointCliques(3,4)", DisjointCliques(3, 4), 12, 18, 3},
		{"CompleteKAry(2,3)", CompleteKAry(2, 3), 7, 6, 3},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.g.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if c.g.N() != c.n || c.g.M() != c.m || c.g.MaxDegree() != c.maxD {
				t.Fatalf("got (n=%d, m=%d, Δ=%d), want (%d, %d, %d)",
					c.g.N(), c.g.M(), c.g.MaxDegree(), c.n, c.m, c.maxD)
			}
		})
	}
}

func TestRandomRegular(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := RandomRegular(50, 4, rng)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("vertex %d has degree %d, want 4", v, g.Degree(v))
		}
	}
}

func TestRandomTree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := RandomTree(64, rng)
	if g.M() != 63 {
		t.Fatalf("tree edges = %d, want 63", g.M())
	}
	if comps := g.ConnectedComponents(); len(comps) != 1 {
		t.Fatalf("tree has %d components", len(comps))
	}
}

func TestRegularBipartiteCirculant(t *testing.T) {
	g := RegularBipartiteCirculant(10, 3)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 3 {
			t.Fatalf("vertex %d degree %d, want 3", v, g.Degree(v))
		}
	}
	// Bipartite: no edges within each side.
	for u := 0; u < 10; u++ {
		for v := u + 1; v < 10; v++ {
			if g.HasEdge(u, v) || g.HasEdge(10+u, 10+v) {
				t.Fatal("edge within one side of the bipartition")
			}
		}
	}
}

func TestErdosRenyiExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if g := ErdosRenyi(10, 0, rng); g.M() != 0 {
		t.Fatal("G(n,0) has edges")
	}
	if g := ErdosRenyi(10, 1, rng); g.M() != 45 {
		t.Fatal("G(n,1) incomplete")
	}
}

func TestPermuteIDsPreservesStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := Torus(5, 5)
	p := PermuteIDs(g, rng)
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if p.M() != g.M() {
		t.Fatal("edge count changed")
	}
	for v := 0; v < g.N(); v++ {
		if p.Degree(v) != g.Degree(v) {
			t.Fatal("degree changed")
		}
	}
	// IDs must still be a permutation of 0..n-1.
	seen := make([]bool, g.N())
	for v := 0; v < g.N(); v++ {
		seen[p.ID(v)] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("ID %d missing after permutation", v)
		}
	}
}

func TestRemoveEdges(t *testing.T) {
	g := Complete(4)
	h := RemoveEdges(g, []Edge{{U: 1, V: 0}, {U: 2, V: 3}})
	if h.M() != 4 {
		t.Fatalf("M = %d after removing 2 edges from K4, want 4", h.M())
	}
	if h.HasEdge(0, 1) || h.HasEdge(2, 3) {
		t.Fatal("removed edge still present")
	}
	if !h.HasEdge(0, 2) {
		t.Fatal("unrelated edge vanished")
	}
}
