package graph

import (
	"bytes"
	"testing"
)

func csrImage(t *testing.T, g *Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestCirculantShape(t *testing.T) {
	for _, tc := range []struct{ n, d int }{{5, 0}, {17, 2}, {64, 6}, {101, 16}} {
		g, err := Circulant(tc.n, tc.d, 2)
		if err != nil {
			t.Fatalf("Circulant(%d,%d): %v", tc.n, tc.d, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("Circulant(%d,%d) invalid: %v", tc.n, tc.d, err)
		}
		if g.N() != tc.n || g.M() != tc.n*tc.d/2 {
			t.Fatalf("Circulant(%d,%d): n=%d m=%d", tc.n, tc.d, g.N(), g.M())
		}
		for v := 0; v < g.N(); v++ {
			if g.Degree(v) != tc.d {
				t.Fatalf("Circulant(%d,%d): degree(%d)=%d", tc.n, tc.d, v, g.Degree(v))
			}
		}
	}
	if _, err := Circulant(16, 16, 1); err == nil {
		t.Fatal("Circulant accepted n <= d")
	}
	if _, err := Circulant(16, 3, 1); err == nil {
		t.Fatal("Circulant accepted odd d")
	}
}

// TestEasyCliqueRingStreamMatchesBuilder pins the streamed ring family to
// the Builder construction byte for byte — same edge set, same vertex
// numbering, same IDs — so scale runs exercise exactly the dense family the
// rest of the suite validates.
func TestEasyCliqueRingStreamMatchesBuilder(t *testing.T) {
	for _, tc := range []struct{ k, delta int }{{4, 4}, {7, 6}, {16, 16}} {
		want, _ := EasyCliqueRing(tc.k, tc.delta)
		got, err := EasyCliqueRingStream(tc.k, tc.delta, 3)
		if err != nil {
			t.Fatalf("EasyCliqueRingStream(%d,%d): %v", tc.k, tc.delta, err)
		}
		if !bytes.Equal(csrImage(t, got), csrImage(t, want)) {
			t.Fatalf("EasyCliqueRingStream(%d,%d) diverges from EasyCliqueRing", tc.k, tc.delta)
		}
	}
	if _, err := EasyCliqueRingStream(3, 4, 1); err == nil {
		t.Fatal("EasyCliqueRingStream accepted k < 4")
	}
}

// TestCirculantWorkerIndependence checks bit-identity of the streamed build
// across worker counts with the parallel gate forced open.
func TestCirculantWorkerIndependence(t *testing.T) {
	saved := parallelBuildMinVertices
	parallelBuildMinVertices = 0
	defer func() { parallelBuildMinVertices = saved }()
	base, err := Circulant(300, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := csrImage(t, base)
	for _, workers := range []int{2, 3, 7} {
		g, err := Circulant(300, 8, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(csrImage(t, g), want) {
			t.Fatalf("Circulant build with %d workers diverges from sequential", workers)
		}
	}
}
