package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInduced(t *testing.T) {
	g := Complete(6)
	sub := Induced(g, []int{1, 3, 5, 3}) // duplicate ignored
	if sub.G.N() != 3 {
		t.Fatalf("n = %d, want 3", sub.G.N())
	}
	if sub.G.M() != 3 {
		t.Fatalf("m = %d, want 3 (triangle)", sub.G.M())
	}
	for i, p := range sub.ToParent {
		if sub.FromParent[p] != i {
			t.Fatal("mapping not inverse")
		}
		if sub.G.ID(i) != g.ID(p) {
			t.Fatal("IDs not inherited")
		}
	}
	if sub.FromParent[0] != -1 {
		t.Fatal("absent vertex mapped")
	}
}

func TestInducedPreservesAdjacency(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := ErdosRenyi(40, 0.2, rng)
	vs := rng.Perm(40)[:17]
	sub := Induced(g, vs)
	for a := 0; a < sub.G.N(); a++ {
		for b := a + 1; b < sub.G.N(); b++ {
			if sub.G.HasEdge(a, b) != g.HasEdge(sub.ToParent[a], sub.ToParent[b]) {
				t.Fatalf("adjacency mismatch at (%d,%d)", a, b)
			}
		}
	}
}

func TestPower(t *testing.T) {
	g := Path(6)
	p2 := Power(g, 2)
	if !p2.HasEdge(0, 2) || !p2.HasEdge(0, 1) {
		t.Fatal("missing distance-<=2 edge")
	}
	if p2.HasEdge(0, 3) {
		t.Fatal("distance-3 edge present in square")
	}
	if got := Power(g, 1).M(); got != g.M() {
		t.Fatalf("G^1 has %d edges, want %d", got, g.M())
	}
}

func TestLineGraph(t *testing.T) {
	g := Star(5) // line graph of a star is complete
	lg, edges := LineGraph(g)
	if lg.N() != 4 || len(edges) != 4 {
		t.Fatalf("line graph n = %d, want 4", lg.N())
	}
	if lg.M() != 6 {
		t.Fatalf("line graph of K_{1,4} should be K4; m = %d", lg.M())
	}
	c := Cycle(7) // line graph of a cycle is the cycle
	lc, _ := LineGraph(c)
	if lc.N() != 7 || lc.M() != 7 || lc.MaxDegree() != 2 {
		t.Fatalf("line graph of C7 wrong: %v", lc)
	}
	if err := lc.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestUnion(t *testing.T) {
	u := Union(Complete(3), Cycle(4))
	if u.N() != 7 || u.M() != 7 {
		t.Fatalf("union shape n=%d m=%d", u.N(), u.M())
	}
	if err := u.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if u.HasEdge(2, 3) {
		t.Fatal("edge across union components")
	}
}

// Property: for random graphs, Induced on a random subset preserves degrees
// counted within the subset.
func TestInducedDegreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(30)
		g := ErdosRenyi(n, 0.3, rng)
		size := 1 + rng.Intn(n)
		vs := rng.Perm(n)[:size]
		sub := Induced(g, vs)
		in := make([]bool, n)
		for _, v := range vs {
			in[v] = true
		}
		for i, p := range sub.ToParent {
			want := 0
			for _, w := range g.Neighbors(p) {
				if in[w] {
					want++
				}
			}
			if sub.G.Degree(i) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: Power(g, r) edge (u,v) exists iff 1 <= Dist(u,v) <= r.
func TestPowerDistanceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(20)
		g := ErdosRenyi(n, 0.15, rng)
		r := 1 + rng.Intn(3)
		p := Power(g, r)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				d := g.Dist(u, v)
				want := d >= 1 && d <= r
				if p.HasEdge(u, v) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: line graph has sum over vertices of C(deg,2) edges.
func TestLineGraphEdgeCountProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(20)
		g := ErdosRenyi(n, 0.3, rng)
		lg, _ := LineGraph(g)
		want := 0
		for v := 0; v < n; v++ {
			d := g.Degree(v)
			want += d * (d - 1) / 2
		}
		return lg.M() == want && lg.N() == g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
