package graph

import (
	"fmt"
	"math/rand"
)

// This file contains the dense-graph families from the paper (Section 2,
// Definition 4): graphs whose almost-clique decomposition has no sparse
// vertices. Three flavors are provided:
//
//   - HardCliqueBipartite: every almost clique is a *hard* clique
//     (Definition 8) — the adversarial case driving Algorithm 2.
//   - EasyCliqueRing / EasyDenseBlocks: cliques riddled with non-clique
//     4-cycle loopholes — the case handled by Algorithm 3.
//   - HardWithEasyPatch: hard construction with one clique weakened into an
//     easy clique, exercising the Type II path of Lemma 12.
//
// Hardness rationale for HardCliqueBipartite: with clique size exactly Δ,
// every vertex has exactly one external ("matching") edge. Any non-clique
// cycle on at most 6 vertices projects (contracting intra-clique edges) to a
// closed walk of length <= 6 in the super-graph H of cliques. Walks of
// length 2 need a multi-edge, length 3 a triangle, length 4 a four-cycle or
// a reused edge, odd lengths are impossible in bipartite H, and a length-6
// walk that is a 6-cycle of external edges would need a vertex with two
// external edges (impossible for clique size Δ). Choosing H simple,
// bipartite, and triangle-free therefore eliminates every loophole, and all
// vertices have degree exactly Δ, so no degree-deficient loopholes exist
// either. TestHardCliqueBipartiteIsHard verifies this with the loophole
// detector.

// CliquePartition describes a graph built from vertex-disjoint cliques.
// Generators in this file return it alongside the graph so tests can compare
// the ground-truth partition with the ACD computed distributively.
type CliquePartition struct {
	// Member maps each vertex to its clique index.
	Member []int
	// Cliques lists the vertex sets, sorted.
	Cliques [][]int
}

// HardCliqueBipartite builds a dense graph in which every almost clique is a
// hard clique. It places 2m cliques of size delta (m per side of a bipartite
// super-graph) and connects vertex j of left clique i to vertex j of right
// clique (i+j) mod m, realizing a delta-regular, triangle-free, simple
// super-graph. Every vertex has degree exactly delta = Δ. Requires m >= delta
// >= 2. Total size n = 2*m*delta.
func HardCliqueBipartite(m, delta int) (*Graph, *CliquePartition) {
	if delta < 2 || m < delta {
		panic(fmt.Sprintf("graph: HardCliqueBipartite needs 2 <= delta <= m, got m=%d delta=%d", m, delta))
	}
	n := 2 * m * delta
	b := NewBuilder(n)
	part := &CliquePartition{Member: make([]int, n)}
	// Clique c occupies [c*delta, (c+1)*delta). Left cliques are 0..m-1,
	// right cliques m..2m-1.
	for c := 0; c < 2*m; c++ {
		base := c * delta
		members := make([]int, delta)
		for u := 0; u < delta; u++ {
			members[u] = base + u
			part.Member[base+u] = c
			for v := u + 1; v < delta; v++ {
				b.AddEdge(base+u, base+v)
			}
		}
		part.Cliques = append(part.Cliques, members)
	}
	for i := 0; i < m; i++ {
		for j := 0; j < delta; j++ {
			left := i*delta + j
			right := (m+(i+j)%m)*delta + j
			b.AddEdge(left, right)
		}
	}
	return b.MustBuild(), part
}

// EasyCliqueRing builds a ring of k cliques of size delta where each clique
// is matched to its two ring neighbors with delta/2 parallel matching edges
// each. Adjacent matched pairs create non-clique 4-cycles, so every clique
// is easy (Definition 8). Requires k >= 4 and even delta >= 4.
func EasyCliqueRing(k, delta int) (*Graph, *CliquePartition) {
	if k < 4 || delta < 4 || delta%2 != 0 {
		panic(fmt.Sprintf("graph: EasyCliqueRing needs k >= 4 and even delta >= 4, got k=%d delta=%d", k, delta))
	}
	n := k * delta
	b := NewBuilder(n)
	part := &CliquePartition{Member: make([]int, n)}
	for c := 0; c < k; c++ {
		base := c * delta
		members := make([]int, delta)
		for u := 0; u < delta; u++ {
			members[u] = base + u
			part.Member[base+u] = c
			for v := u + 1; v < delta; v++ {
				b.AddEdge(base+u, base+v)
			}
		}
		part.Cliques = append(part.Cliques, members)
	}
	// Vertices 0..delta/2-1 of clique c match to vertices delta/2..delta-1
	// of clique (c+1) mod k.
	half := delta / 2
	for c := 0; c < k; c++ {
		next := (c + 1) % k
		for j := 0; j < half; j++ {
			b.AddEdge(c*delta+j, next*delta+half+j)
		}
	}
	return b.MustBuild(), part
}

// EasyDenseBlocks builds a dense graph of k cliques of size `size` where
// each vertex has e = 2*spread external edges: clique i is joined to cliques
// i±s (s = 1..spread) by full rotated perfect matchings. The resulting
// almost cliques have size < Δ and abundant 4-cycle loopholes. Max degree is
// Δ = size-1+2*spread. Requires k > 2*spread >= 2 and size > 2*spread (so
// intra-clique edges dominate and the ACD classifies every vertex as dense
// for reasonable parameters).
func EasyDenseBlocks(k, size, spread int) (*Graph, *CliquePartition) {
	if spread < 1 || k <= 2*spread || size <= 2*spread {
		panic(fmt.Sprintf("graph: EasyDenseBlocks needs k > 2*spread >= 2 and size > 2*spread, got k=%d size=%d spread=%d", k, size, spread))
	}
	n := k * size
	b := NewBuilder(n)
	part := &CliquePartition{Member: make([]int, n)}
	for c := 0; c < k; c++ {
		base := c * size
		members := make([]int, size)
		for u := 0; u < size; u++ {
			members[u] = base + u
			part.Member[base+u] = c
			for v := u + 1; v < size; v++ {
				b.AddEdge(base+u, base+v)
			}
		}
		part.Cliques = append(part.Cliques, members)
	}
	for c := 0; c < k; c++ {
		for s := 1; s <= spread; s++ {
			next := (c + s) % k
			for v := 0; v < size; v++ {
				// Rotate by s so different bundles of the same clique pair
				// never coincide and the graph stays simple.
				b.AddEdge(c*size+v, next*size+(v+s)%size)
			}
		}
	}
	return b.MustBuild(), part
}

// HardWithEasyPatch builds HardCliqueBipartite(m, delta) and rewires two
// matching edges so that left clique 0 and right clique 0 are joined by two
// parallel matching edges — creating a non-clique 4-cycle loophole between
// them — while every degree stays exactly Δ and the clique partition is
// unchanged. The displaced edges are rejoined as a second matching edge
// between two other cliques, making those easy as well. The result is a
// dense graph mixing hard cliques with a few easy ones, where hard cliques
// adjacent to easy cliques exercise the Type II branch of Lemma 12.
// Requires m >= 4 and delta >= 3.
func HardWithEasyPatch(m, delta int) (*Graph, *CliquePartition) {
	if m < 4 || delta < 3 {
		panic(fmt.Sprintf("graph: HardWithEasyPatch needs m >= 4, delta >= 3, got m=%d delta=%d", m, delta))
	}
	g, part := HardCliqueBipartite(m, delta)
	right := func(i, slot int) int { return (m+i%m)*delta + slot }
	left := func(i, slot int) int { return (i%m)*delta + slot }
	// Original matching edges: L0 slot1 -> R1 slot1, and R0 slot1's partner
	// L_{m-1} slot1 (since L_{m-1}+1 = R0 at slot 1).
	v1, x := left(0, 1), right(1, 1)
	y, w1 := left(m-1, 1), right(0, 1)
	g = RemoveEdges(g, []Edge{{U: v1, V: x}, {U: y, V: w1}})
	b := NewBuilder(g.N())
	for v := 0; v < g.N(); v++ {
		b.SetID(v, g.ID(v))
		for _, w := range g.Neighbors(v) {
			if v < int(w) {
				b.AddEdge(v, int(w))
			}
		}
	}
	// New edges: v1-w1 doubles the L0-R0 connection (4-cycle with the slot-0
	// edge), x-y doubles the L_{m-1}-R1 connection (slot 2 already joins
	// them).
	b.AddEdge(v1, w1)
	b.AddEdge(x, y)
	return b.MustBuild(), part
}

// MixedDenseRandom builds a dense graph of k cliques of size `size` where
// every vertex has exactly two external edges (e_C = 2, so Δ = size+1),
// wired by a random pairing of external slots subject to: no edge inside a
// clique and at most one edge between any clique pair (which needs
// k > 2*size). Some cliques come out hard and some easy (random slot
// coincidences create small-cycle loopholes); callers classify with the
// loophole package. This family exercises the pipeline paths that only
// arise when the maximal matching F1 is not a perfect matching — e.g. the
// f(v) != v proposals of Section 3.3.
//
// The ACD conditions need ε·Δ >= 4 for e_C = 2, so pair it with ε = 1/8
// and size >= 31 (Δ = size+1). Requires k > 2*size and even k*size.
func MixedDenseRandom(k, size int, rng *rand.Rand) (*Graph, *CliquePartition) {
	if size < 4 || k <= 2*size || (k*size)%2 != 0 {
		panic(fmt.Sprintf("graph: MixedDenseRandom needs k > 2*size >= 8 and k*size even; got k=%d size=%d", k, size))
	}
	n := k * size
	for attempt := 0; attempt < 400; attempt++ {
		g, part, ok := tryMixedDense(k, size, n, rng)
		if ok {
			return g, part
		}
	}
	panic("graph: MixedDenseRandom failed to converge; increase k")
}

func tryMixedDense(k, size, n int, rng *rand.Rand) (*Graph, *CliquePartition, bool) {
	b := NewBuilder(n)
	part := &CliquePartition{Member: make([]int, n)}
	for c := 0; c < k; c++ {
		base := c * size
		members := make([]int, size)
		for u := 0; u < size; u++ {
			members[u] = base + u
			part.Member[base+u] = c
			for v := u + 1; v < size; v++ {
				b.AddEdge(base+u, base+v)
			}
		}
		part.Cliques = append(part.Cliques, members)
	}
	// Two external slots per vertex, paired randomly under the constraints.
	slots := make([]int, 0, 2*n)
	for v := 0; v < n; v++ {
		slots = append(slots, v, v)
	}
	rng.Shuffle(len(slots), func(i, j int) { slots[i], slots[j] = slots[j], slots[i] })
	superAdj := make([]map[int]bool, k) // clique super-graph adjacency
	for c := range superAdj {
		superAdj[c] = map[int]bool{}
	}
	// Greedy pairing with local repair: walk the shuffled slots, pair each
	// with the first later slot that satisfies all constraints.
	taken := make([]bool, len(slots))
	for i := range slots {
		if taken[i] {
			continue
		}
		paired := false
		for j := i + 1; j < len(slots); j++ {
			if taken[j] {
				continue
			}
			u, v := slots[i], slots[j]
			cu, cv := part.Member[u], part.Member[v]
			if u == v || cu == cv || superAdj[cu][cv] {
				continue
			}
			superAdj[cu][cv] = true
			superAdj[cv][cu] = true
			b.AddEdge(u, v)
			taken[i], taken[j] = true, true
			paired = true
			break
		}
		if !paired {
			return nil, nil, false
		}
	}
	return b.MustBuild(), part, true
}

// RemoveEdges returns a copy of g with the given edges deleted. Unknown
// edges are ignored. IDs are preserved.
func RemoveEdges(g *Graph, del []Edge) *Graph {
	drop := make(map[Edge]bool, len(del))
	for _, e := range del {
		if e.U > e.V {
			e.U, e.V = e.V, e.U
		}
		drop[e] = true
	}
	b := NewBuilder(g.N())
	for v := 0; v < g.N(); v++ {
		b.SetID(v, g.ID(v))
		for _, w := range g.Neighbors(v) {
			if v < int(w) && !drop[Edge{U: v, V: int(w)}] {
				b.AddEdge(v, int(w))
			}
		}
	}
	return b.MustBuild()
}
