package graph

import (
	"math/rand"
	"testing"
)

func checkPartition(t *testing.T, g *Graph, part *CliquePartition) {
	t.Helper()
	if len(part.Member) != g.N() {
		t.Fatalf("partition covers %d vertices, graph has %d", len(part.Member), g.N())
	}
	count := 0
	for ci, members := range part.Cliques {
		count += len(members)
		if !g.IsClique(members) {
			t.Fatalf("clique %d is not a clique", ci)
		}
		for _, v := range members {
			if part.Member[v] != ci {
				t.Fatalf("membership mismatch for vertex %d", v)
			}
		}
	}
	if count != g.N() {
		t.Fatalf("cliques cover %d vertices, want %d", count, g.N())
	}
}

func TestHardCliqueBipartiteShape(t *testing.T) {
	const m, delta = 8, 6
	g, part := HardCliqueBipartite(m, delta)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.N() != 2*m*delta {
		t.Fatalf("n = %d, want %d", g.N(), 2*m*delta)
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != delta {
			t.Fatalf("vertex %d has degree %d, want %d", v, g.Degree(v), delta)
		}
	}
	checkPartition(t, g, part)
	// Each vertex has exactly one external neighbor, in a different clique.
	for v := 0; v < g.N(); v++ {
		ext := 0
		for _, w := range g.Neighbors(v) {
			if part.Member[w] != part.Member[v] {
				ext++
			}
		}
		if ext != 1 {
			t.Fatalf("vertex %d has %d external neighbors, want 1", v, ext)
		}
	}
}

// TestHardCliqueBipartiteSuperGraph checks the structural facts the hardness
// argument rests on: the super-graph of cliques is simple (no two cliques
// share more than one matching edge), triangle-free, and no external vertex
// has two neighbors in the same clique (Lemma 9, part 3).
func TestHardCliqueBipartiteSuperGraph(t *testing.T) {
	const m, delta = 9, 5
	g, part := HardCliqueBipartite(m, delta)
	k := len(part.Cliques)
	super := make(map[[2]int]int)
	for _, e := range g.Edges() {
		cu, cv := part.Member[e.U], part.Member[e.V]
		if cu == cv {
			continue
		}
		if cu > cv {
			cu, cv = cv, cu
		}
		super[[2]int{cu, cv}]++
	}
	adj := make([][]bool, k)
	for i := range adj {
		adj[i] = make([]bool, k)
	}
	for key, cnt := range super {
		if cnt != 1 {
			t.Fatalf("clique pair %v joined by %d edges, want 1", key, cnt)
		}
		adj[key[0]][key[1]] = true
		adj[key[1]][key[0]] = true
	}
	for a := 0; a < k; a++ {
		for b := a + 1; b < k; b++ {
			if !adj[a][b] {
				continue
			}
			for c := b + 1; c < k; c++ {
				if adj[a][c] && adj[b][c] {
					t.Fatalf("super-graph triangle %d-%d-%d", a, b, c)
				}
			}
		}
	}
	// Lemma 9 part 3.
	for v := 0; v < g.N(); v++ {
		perClique := map[int]int{}
		for _, w := range g.Neighbors(v) {
			if part.Member[w] != part.Member[v] {
				perClique[part.Member[w]]++
			}
		}
		for c, cnt := range perClique {
			if cnt > 1 {
				t.Fatalf("vertex %d has %d neighbors in foreign clique %d", v, cnt, c)
			}
		}
	}
}

func TestEasyCliqueRingShape(t *testing.T) {
	const k, delta = 6, 8
	g, part := EasyCliqueRing(k, delta)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	checkPartition(t, g, part)
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != delta {
			t.Fatalf("vertex %d degree %d, want %d", v, g.Degree(v), delta)
		}
	}
	// The construction must contain a non-clique 4-cycle: two matched pairs
	// between adjacent cliques.
	found := false
	for v := 0; v < delta/2 && !found; v++ {
		for u := v + 1; u < delta/2; u++ {
			// v, u in clique 0; their partners in clique 1.
			pv, pu := delta+delta/2+v, delta+delta/2+u
			if g.HasEdge(v, u) && g.HasEdge(pv, pu) && g.HasEdge(v, pv) && g.HasEdge(u, pu) && !g.HasEdge(v, pu) {
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("expected non-clique 4-cycle between adjacent cliques")
	}
}

func TestEasyDenseBlocksShape(t *testing.T) {
	const k, size, spread = 10, 12, 2
	g, part := EasyDenseBlocks(k, size, spread)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	checkPartition(t, g, part)
	wantDeg := size - 1 + 2*spread
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != wantDeg {
			t.Fatalf("vertex %d degree %d, want %d", v, g.Degree(v), wantDeg)
		}
	}
}

func TestHardWithEasyPatch(t *testing.T) {
	const m, delta = 8, 6
	g, part := HardWithEasyPatch(m, delta)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	checkPartition(t, g, part)
	// Rewiring preserves all degrees.
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != delta {
			t.Fatalf("vertex %d has degree %d, want %d", v, g.Degree(v), delta)
		}
	}
	// L0 and R0 are now joined by two matching edges (slots 0 and 1).
	if !g.HasEdge(0*delta+0, m*delta+0) || !g.HasEdge(0*delta+1, m*delta+1) {
		t.Fatal("expected doubled L0-R0 matching edges")
	}
	// Their union contains a non-clique 4-cycle.
	c := []int{0, 1, m*delta + 1, m * delta}
	for i := range c {
		if !g.HasEdge(c[i], c[(i+1)%4]) {
			t.Fatalf("4-cycle edge {%d,%d} missing", c[i], c[(i+1)%4])
		}
	}
	if g.IsClique(c) {
		t.Fatal("patch 4-cycle induces a clique")
	}
}

func TestDenseGeneratorPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"HardCliqueBipartite small m", func() { HardCliqueBipartite(3, 5) }},
		{"EasyCliqueRing odd delta", func() { EasyCliqueRing(5, 5) }},
		{"EasyDenseBlocks tight k", func() { EasyDenseBlocks(4, 10, 2) }},
		{"Cycle too small", func() { Cycle(2) }},
		{"Torus too small", func() { Torus(2, 5) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			c.fn()
		})
	}
}

func TestMixedDenseRandomShape(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	const k, size = 72, 31
	g, part := MixedDenseRandom(k, size, rng)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	checkPartition(t, g, part)
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != size+1 {
			t.Fatalf("vertex %d degree %d, want %d", v, g.Degree(v), size+1)
		}
	}
	// One edge per clique pair.
	seen := map[[2]int]int{}
	for _, e := range g.Edges() {
		cu, cv := part.Member[e.U], part.Member[e.V]
		if cu == cv {
			continue
		}
		if cu > cv {
			cu, cv = cv, cu
		}
		seen[[2]int{cu, cv}]++
	}
	for pair, cnt := range seen {
		if cnt != 1 {
			t.Fatalf("clique pair %v has %d edges", pair, cnt)
		}
	}
}

func TestMixedDenseRandomPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k <= 2*size")
		}
	}()
	rng := rand.New(rand.NewSource(1))
	MixedDenseRandom(10, 31, rng)
}
