package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates edges and produces an immutable Graph. Duplicate edge
// insertions are tolerated and collapsed; self-loops are rejected at Build
// time. The zero Builder is not usable; create one with NewBuilder.
type Builder struct {
	n    int
	adj  [][]int
	ids  []uint64
	bad  []string
	seal bool
}

// NewBuilder returns a builder for a graph on n vertices with default
// IDs (ID(v) = v).
func NewBuilder(n int) *Builder {
	b := &Builder{n: n, adj: make([][]int, n), ids: make([]uint64, n)}
	for v := 0; v < n; v++ {
		b.ids[v] = uint64(v)
	}
	return b
}

// AddEdge records the undirected edge {u, v}. Out-of-range endpoints and
// self-loops are recorded as errors surfaced by Build.
func (b *Builder) AddEdge(u, v int) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		b.bad = append(b.bad, fmt.Sprintf("edge {%d,%d} out of range [0,%d)", u, v, b.n))
		return
	}
	if u == v {
		b.bad = append(b.bad, fmt.Sprintf("self-loop at %d", u))
		return
	}
	b.adj[u] = append(b.adj[u], v)
	b.adj[v] = append(b.adj[v], u)
}

// SetID overrides the symmetry-breaking identifier of v. IDs must be unique
// across the graph; Build verifies this.
func (b *Builder) SetID(v int, id uint64) {
	if v < 0 || v >= b.n {
		b.bad = append(b.bad, fmt.Sprintf("SetID: vertex %d out of range", v))
		return
	}
	b.ids[v] = id
}

// Build finalizes the graph: deduplicates and sorts adjacency lists and
// validates IDs. The builder must not be reused afterwards.
func (b *Builder) Build() (*Graph, error) {
	if b.seal {
		return nil, fmt.Errorf("graph: builder reused after Build")
	}
	b.seal = true
	if len(b.bad) > 0 {
		return nil, fmt.Errorf("graph: %d invalid operations, first: %s", len(b.bad), b.bad[0])
	}
	g := &Graph{adj: make([][]int, b.n), ids: b.ids}
	for v := range b.adj {
		l := b.adj[v]
		sort.Ints(l)
		out := l[:0]
		prev := -1
		for _, w := range l {
			if w != prev {
				out = append(out, w)
				prev = w
			}
		}
		// Copy into a right-sized slice so the builder's over-allocated
		// backing arrays can be collected.
		nl := make([]int, len(out))
		copy(nl, out)
		g.adj[v] = nl
		g.m += len(nl)
	}
	g.m /= 2
	seen := make(map[uint64]bool, b.n)
	for v, id := range g.ids {
		if seen[id] {
			return nil, fmt.Errorf("graph: duplicate ID %d (vertex %d)", id, v)
		}
		seen[id] = true
	}
	return g, nil
}

// MustBuild is Build for generators whose inputs are validated upfront;
// it panics on error and is intended for package-internal use and tests.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// FromEdges constructs a graph on n vertices from an edge list.
func FromEdges(n int, edges []Edge) (*Graph, error) {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e.U, e.V)
	}
	return b.Build()
}
