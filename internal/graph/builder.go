package graph

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"slices"
	"sort"
	"sync"
)

// ErrTooManyEdges reports an edge set whose directed arc count (2m plus
// duplicates) would overflow the int32 CSR offset space. Builders and the
// streaming constructor surface it instead of silently mis-building; the
// binary loader in internal/graphio wraps it for oversized headers.
var ErrTooManyEdges = errors.New("graph: edge count overflows int32 CSR offsets")

// Builder accumulates edges and produces an immutable Graph. Duplicate edge
// insertions are tolerated and collapsed; self-loops are rejected at Build
// time. The zero Builder is not usable; create one with NewBuilder.
//
// The builder stores the raw endpoint pairs in one flat array and Build
// counting-sorts them straight into the graph's CSR layout, so construction
// performs O(1) allocations regardless of the vertex count (no intermediate
// per-vertex adjacency slices).
type Builder struct {
	n     int
	pairs []int32 // flattened (u, v) endpoint pairs in insertion order
	ids   []uint64
	bad   []string
	seal  bool
}

// NewBuilder returns a builder for a graph on n vertices with default
// IDs (ID(v) = v).
func NewBuilder(n int) *Builder {
	if n < 0 || n > MaxN {
		panic(fmt.Sprintf("graph: vertex count %d out of range [0, %d]", n, MaxN))
	}
	b := &Builder{n: n, ids: make([]uint64, n)}
	for v := 0; v < n; v++ {
		b.ids[v] = uint64(v)
	}
	return b
}

// Grow hints that about m further AddEdge calls are coming, reserving
// capacity for them in one allocation.
func (b *Builder) Grow(m int) {
	if m > 0 {
		b.pairs = slices.Grow(b.pairs, 2*m)
	}
}

// AddEdge records the undirected edge {u, v}. Out-of-range endpoints and
// self-loops are recorded as errors surfaced by Build.
func (b *Builder) AddEdge(u, v int) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		b.bad = append(b.bad, fmt.Sprintf("edge {%d,%d} out of range [0,%d)", u, v, b.n))
		return
	}
	if u == v {
		b.bad = append(b.bad, fmt.Sprintf("self-loop at %d", u))
		return
	}
	b.pairs = append(b.pairs, int32(u), int32(v))
}

// SetID overrides the symmetry-breaking identifier of v. IDs must be unique
// across the graph; Build verifies this.
func (b *Builder) SetID(v int, id uint64) {
	if v < 0 || v >= b.n {
		b.bad = append(b.bad, fmt.Sprintf("SetID: vertex %d out of range", v))
		return
	}
	b.ids[v] = id
}

// Build finalizes the graph: counting-sorts the accumulated endpoint pairs
// into CSR form, deduplicates each adjacency run in place, and validates
// IDs. The builder must not be reused afterwards.
func (b *Builder) Build() (*Graph, error) { return b.build(1) }

// BuildParallel is Build with the per-vertex sort/dedup phase fanned out
// across workers (GOMAXPROCS when workers <= 0). The histogram and scatter
// passes stay sequential — they are memory-bound and a per-worker histogram
// would cost workers×n extra space — while the sort phase, which dominates
// construction CPU at large m, splits into edge-balanced vertex ranges whose
// runs are disjoint. The output is bit-identical to Build's for any worker
// count: each run's sorted, deduplicated content is independent of which
// worker processed it, and the compaction pass is sequential.
func (b *Builder) BuildParallel(workers int) (*Graph, error) { return b.build(workers) }

func (b *Builder) build(workers int) (*Graph, error) {
	if b.seal {
		return nil, fmt.Errorf("graph: builder reused after Build")
	}
	b.seal = true
	if len(b.bad) > 0 {
		return nil, fmt.Errorf("graph: %d invalid operations, first: %s", len(b.bad), b.bad[0])
	}
	if len(b.pairs) > math.MaxInt32 {
		return nil, ErrTooManyEdges
	}
	n := b.n
	offsets := make([]int32, n+1)
	for i := 0; i < len(b.pairs); i += 2 {
		offsets[b.pairs[i]+1]++
		offsets[b.pairs[i+1]+1]++
	}
	for v := 0; v < n; v++ {
		offsets[v+1] += offsets[v]
	}
	edges := make([]int32, len(b.pairs))
	cursor := make([]int32, n)
	copy(cursor, offsets[:n])
	for i := 0; i < len(b.pairs); i += 2 {
		u, v := b.pairs[i], b.pairs[i+1]
		edges[cursor[u]] = v
		cursor[u]++
		edges[cursor[v]] = u
		cursor[v]++
	}
	b.pairs = nil
	edges = sortDedupCompact(offsets, edges, workers)
	seen := make(map[uint64]bool, n)
	for v, id := range b.ids {
		if seen[id] {
			return nil, fmt.Errorf("graph: duplicate ID %d (vertex %d)", id, v)
		}
		seen[id] = true
	}
	return fromCSR(offsets, edges, b.ids), nil
}

// parallelBuildMinVertices gates the parallel sort/dedup phase: below it the
// goroutine fan-out costs more than the sort. Tests lower it to force the
// parallel path onto small fuzz inputs.
var parallelBuildMinVertices = 4096

// sortDedupCompact sorts each adjacency run of the scattered CSR, removes
// duplicates, and compacts the runs left, rewriting offsets to the final
// layout. With workers > 1 the sort/dedup phase runs on edge-balanced vertex
// ranges in parallel; each worker writes only inside its own runs, and the
// sequential compaction makes the result independent of the split.
func sortDedupCompact(offsets, edges []int32, workers int) []int32 {
	n := len(offsets) - 1
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	counts := make([]int32, n)
	process := func(lo, hi int) {
		for v := lo; v < hi; v++ {
			run := edges[offsets[v]:offsets[v+1]]
			slices.Sort(run)
			k := 0
			prev := int32(-1)
			for _, x := range run {
				if x != prev {
					run[k] = x
					k++
					prev = x
				}
			}
			counts[v] = int32(k)
		}
	}
	if workers <= 1 || n < parallelBuildMinVertices {
		process(0, n)
	} else {
		total := int64(offsets[n])
		share := (total + int64(workers) - 1) / int64(workers)
		var wg sync.WaitGroup
		lo := 0
		for w := 1; w <= workers && lo < n; w++ {
			hi := n
			if w < workers {
				target := int32(min64(int64(w)*share, total))
				hi = sort.Search(n, func(v int) bool { return offsets[v+1] >= target })
				hi++
				if hi > n {
					hi = n
				}
			}
			if hi <= lo {
				continue
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				process(lo, hi)
			}(lo, hi)
			lo = hi
		}
		wg.Wait()
	}
	var w int32
	for v := 0; v < n; v++ {
		lo, c := offsets[v], counts[v]
		if w != lo {
			copy(edges[w:w+c], edges[lo:lo+c])
		}
		offsets[v] = w
		w += c
	}
	offsets[n] = w
	if int(w) < cap(edges)/2 {
		// Heavy duplication: release the slack.
		edges = append([]int32(nil), edges[:w]...)
	} else {
		edges = edges[:w:w]
	}
	return edges
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// FromStream constructs a graph on n vertices by two passes over an edge
// producer, going straight to CSR without materializing an intermediate
// endpoint-pair slice — the peak memory is the final CSR plus one n-sized
// cursor, which is what makes n=10⁷-scale construction fit. stream is called
// twice and must emit the same edges both times (generator families and
// re-seekable files do this naturally); emit tolerates duplicates and
// reports out-of-range endpoints and self-loops through Build-style errors.
// workers parallelizes the sort/dedup phase exactly like BuildParallel.
func FromStream(n int, workers int, stream func(emit func(u, v int)) error) (*Graph, error) {
	if n < 0 || n > MaxN {
		return nil, fmt.Errorf("graph: vertex count %d out of range [0, %d]", n, MaxN)
	}
	offsets := make([]int32, n+1)
	var arcs int64
	var bad string
	var nbad int
	reject := func(u, v int) bool {
		if u < 0 || u >= n || v < 0 || v >= n {
			if nbad++; bad == "" {
				bad = fmt.Sprintf("edge {%d,%d} out of range [0,%d)", u, v, n)
			}
			return true
		}
		if u == v {
			if nbad++; bad == "" {
				bad = fmt.Sprintf("self-loop at %d", u)
			}
			return true
		}
		return false
	}
	if err := stream(func(u, v int) {
		if reject(u, v) {
			return
		}
		if arcs += 2; arcs <= math.MaxInt32 {
			offsets[u+1]++
			offsets[v+1]++
		}
	}); err != nil {
		return nil, err
	}
	if nbad > 0 {
		return nil, fmt.Errorf("graph: %d invalid operations, first: %s", nbad, bad)
	}
	if arcs > math.MaxInt32 {
		return nil, ErrTooManyEdges
	}
	for v := 0; v < n; v++ {
		offsets[v+1] += offsets[v]
	}
	edges := make([]int32, arcs)
	cursor := make([]int32, n)
	copy(cursor, offsets[:n])
	var scattered int64
	if err := stream(func(u, v int) {
		if reject(u, v) {
			return
		}
		if scattered += 2; scattered > arcs {
			return
		}
		edges[cursor[u]] = int32(v)
		cursor[u]++
		edges[cursor[v]] = int32(u)
		cursor[v]++
	}); err != nil {
		return nil, err
	}
	if scattered != arcs {
		return nil, fmt.Errorf("graph: stream emitted %d arcs on the second pass, %d on the first", scattered, arcs)
	}
	edges = sortDedupCompact(offsets, edges, workers)
	ids := make([]uint64, n)
	for v := range ids {
		ids[v] = uint64(v)
	}
	return fromCSR(offsets, edges, ids), nil
}

// MustBuild is Build for generators whose inputs are validated upfront;
// it panics on error and is intended for package-internal use and tests.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// FromEdges constructs a graph on n vertices from an edge list.
func FromEdges(n int, edges []Edge) (*Graph, error) {
	b := NewBuilder(n)
	b.Grow(len(edges))
	for _, e := range edges {
		b.AddEdge(e.U, e.V)
	}
	return b.Build()
}
