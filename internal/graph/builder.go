package graph

import (
	"fmt"
	"slices"
)

// Builder accumulates edges and produces an immutable Graph. Duplicate edge
// insertions are tolerated and collapsed; self-loops are rejected at Build
// time. The zero Builder is not usable; create one with NewBuilder.
//
// The builder stores the raw endpoint pairs in one flat array and Build
// counting-sorts them straight into the graph's CSR layout, so construction
// performs O(1) allocations regardless of the vertex count (no intermediate
// per-vertex adjacency slices).
type Builder struct {
	n     int
	pairs []int32 // flattened (u, v) endpoint pairs in insertion order
	ids   []uint64
	bad   []string
	seal  bool
}

// NewBuilder returns a builder for a graph on n vertices with default
// IDs (ID(v) = v).
func NewBuilder(n int) *Builder {
	if n < 0 || n > MaxN {
		panic(fmt.Sprintf("graph: vertex count %d out of range [0, %d]", n, MaxN))
	}
	b := &Builder{n: n, ids: make([]uint64, n)}
	for v := 0; v < n; v++ {
		b.ids[v] = uint64(v)
	}
	return b
}

// Grow hints that about m further AddEdge calls are coming, reserving
// capacity for them in one allocation.
func (b *Builder) Grow(m int) {
	if m > 0 {
		b.pairs = slices.Grow(b.pairs, 2*m)
	}
}

// AddEdge records the undirected edge {u, v}. Out-of-range endpoints and
// self-loops are recorded as errors surfaced by Build.
func (b *Builder) AddEdge(u, v int) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		b.bad = append(b.bad, fmt.Sprintf("edge {%d,%d} out of range [0,%d)", u, v, b.n))
		return
	}
	if u == v {
		b.bad = append(b.bad, fmt.Sprintf("self-loop at %d", u))
		return
	}
	b.pairs = append(b.pairs, int32(u), int32(v))
}

// SetID overrides the symmetry-breaking identifier of v. IDs must be unique
// across the graph; Build verifies this.
func (b *Builder) SetID(v int, id uint64) {
	if v < 0 || v >= b.n {
		b.bad = append(b.bad, fmt.Sprintf("SetID: vertex %d out of range", v))
		return
	}
	b.ids[v] = id
}

// Build finalizes the graph: counting-sorts the accumulated endpoint pairs
// into CSR form, deduplicates each adjacency run in place, and validates
// IDs. The builder must not be reused afterwards.
func (b *Builder) Build() (*Graph, error) {
	if b.seal {
		return nil, fmt.Errorf("graph: builder reused after Build")
	}
	b.seal = true
	if len(b.bad) > 0 {
		return nil, fmt.Errorf("graph: %d invalid operations, first: %s", len(b.bad), b.bad[0])
	}
	n := b.n
	offsets := make([]int32, n+1)
	for i := 0; i < len(b.pairs); i += 2 {
		offsets[b.pairs[i]+1]++
		offsets[b.pairs[i+1]+1]++
	}
	for v := 0; v < n; v++ {
		offsets[v+1] += offsets[v]
	}
	edges := make([]int32, len(b.pairs))
	cursor := make([]int32, n)
	copy(cursor, offsets[:n])
	for i := 0; i < len(b.pairs); i += 2 {
		u, v := b.pairs[i], b.pairs[i+1]
		edges[cursor[u]] = v
		cursor[u]++
		edges[cursor[v]] = u
		cursor[v]++
	}
	b.pairs = nil
	// Sort each adjacency run and compact duplicates in place. The write
	// cursor w never overtakes the read range, so this is safe.
	var w int32
	lo := int32(0)
	for v := 0; v < n; v++ {
		hi := offsets[v+1]
		run := edges[lo:hi]
		slices.Sort(run)
		start := w
		prev := int32(-1)
		for _, x := range run {
			if x != prev {
				edges[w] = x
				w++
				prev = x
			}
		}
		offsets[v] = start
		lo = hi
	}
	offsets[n] = w
	if int(w) < cap(edges)/2 {
		// Heavy duplication: release the slack.
		edges = append([]int32(nil), edges[:w]...)
	} else {
		edges = edges[:w:w]
	}
	seen := make(map[uint64]bool, n)
	for v, id := range b.ids {
		if seen[id] {
			return nil, fmt.Errorf("graph: duplicate ID %d (vertex %d)", id, v)
		}
		seen[id] = true
	}
	return fromCSR(offsets, edges, b.ids), nil
}

// MustBuild is Build for generators whose inputs are validated upfront;
// it panics on error and is intended for package-internal use and tests.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// FromEdges constructs a graph on n vertices from an edge list.
func FromEdges(n int, edges []Edge) (*Graph, error) {
	b := NewBuilder(n)
	b.Grow(len(edges))
	for _, e := range edges {
		b.AddEdge(e.U, e.V)
	}
	return b.Build()
}
