package graph

import "fmt"

// Streamed scale families. The dense generators in dense.go accumulate an
// edge-pair slice in a Builder, which doubles the peak memory of a build; at
// n = 10⁷ that is gigabytes of transient garbage. The constructors here emit
// the same families through FromStream, so building touches only the final
// CSR arrays: the two-pass counting build is the whole allocation story.

// Circulant builds the circulant graph C_n(1, …, d/2): vertex v is adjacent
// to v±s mod n for s = 1..d/2 — connected and d-regular for n > d and even
// d. This is the scale benchmark's stand-in for sparse bounded-degree
// inputs, colored by the deg+1 list-coloring machinery rather than the
// dense pipeline (its almost-clique decomposition is empty).
func Circulant(n, d, workers int) (*Graph, error) {
	if d < 0 || d%2 != 0 || (d > 0 && n <= d) {
		return nil, fmt.Errorf("graph: Circulant needs even d >= 0 and n > d, got n=%d d=%d", n, d)
	}
	return FromStream(n, workers, func(emit func(u, v int)) error {
		for v := 0; v < n; v++ {
			for s := 1; s <= d/2; s++ {
				emit(v, (v+s)%n)
			}
		}
		return nil
	})
}

// EasyCliqueRingStream builds the same graph as EasyCliqueRing — identical
// edge set and vertex numbering — through the streaming CSR path, so the
// dense ring family scales to k·delta = 10⁷ vertices without the Builder's
// pair slice. TestEasyCliqueRingStreamMatchesBuilder pins the byte-identity
// with the Builder construction. Requires k >= 4 and even delta >= 4.
func EasyCliqueRingStream(k, delta, workers int) (*Graph, error) {
	if k < 4 || delta < 4 || delta%2 != 0 {
		return nil, fmt.Errorf("graph: EasyCliqueRingStream needs k >= 4 and even delta >= 4, got k=%d delta=%d", k, delta)
	}
	n := k * delta
	half := delta / 2
	return FromStream(n, workers, func(emit func(u, v int)) error {
		for c := 0; c < k; c++ {
			base := c * delta
			for u := 0; u < delta; u++ {
				for v := u + 1; v < delta; v++ {
					emit(base+u, base+v)
				}
			}
			// Matching to the next ring clique, as in EasyCliqueRing.
			next := (c + 1) % k
			for j := 0; j < half; j++ {
				emit(base+j, next*delta+half+j)
			}
		}
		return nil
	})
}
