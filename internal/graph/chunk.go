package graph

// Edge-balanced work splitting. Chunking a vertex range [0, n) by vertex
// count hands whole hub neighborhoods to single workers on skewed-degree
// graphs; these helpers instead cut chunks of approximately equal
// vertex-plus-edge weight, using the CSR offsets array as an implicit prefix
// sum (weight(v) = degree(v) + 1, so cum(v) = offsets[v] + v is monotone and
// needs no extra storage).

// AppendChunkBounds appends parts+1 monotone vertex boundaries to dst and
// returns the extended slice: chunk i is [bounds[i], bounds[i+1]), and every
// chunk carries roughly total/parts of the graph's vertex+edge weight. The
// first boundary is always 0 and the last always N(), so degree skew moves
// interior boundaries only. parts must be >= 1.
func (g *Graph) AppendChunkBounds(dst []int32, parts int) []int32 {
	n := g.N()
	total := int64(g.offsets[n]) + int64(n)
	dst = append(dst, 0)
	for k := 1; k < parts; k++ {
		target := total * int64(k) / int64(parts)
		// Smallest v with offsets[v]+v >= target.
		lo, hi := 0, n
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if int64(g.offsets[mid])+int64(mid) < target {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		// Boundaries must stay monotone even when many parts land in one
		// huge-degree vertex's weight range.
		if prev := int(dst[len(dst)-1]); lo < prev {
			lo = prev
		}
		dst = append(dst, int32(lo))
	}
	return append(dst, int32(n))
}

// SplitPrefix appends parts+1 monotone item boundaries to dst for a
// prefix-weight array cum (cum[i] = total weight of items [0, i), so
// len(cum) = items+1 and cum is non-decreasing with cum[0] = 0). Chunk i is
// the item range [bounds[i], bounds[i+1]) and carries roughly
// cum[items]/parts weight. The LOCAL engine uses it to cut a sparse frontier
// into degree-balanced chunks. parts must be >= 1.
func SplitPrefix(dst []int32, cum []int64, parts int) []int32 {
	items := len(cum) - 1
	total := cum[items]
	dst = append(dst, 0)
	for k := 1; k < parts; k++ {
		target := total * int64(k) / int64(parts)
		lo, hi := 0, items
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if cum[mid] < target {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if prev := int(dst[len(dst)-1]); lo < prev {
			lo = prev
		}
		dst = append(dst, int32(lo))
	}
	return append(dst, int32(items))
}
