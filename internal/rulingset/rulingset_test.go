package rulingset

import (
	"math/rand"
	"testing"
	"testing/quick"

	"deltacoloring/internal/graph"
	"deltacoloring/internal/local"
)

func TestMISBasics(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"Cycle", graph.Cycle(11)},
		{"Complete", graph.Complete(9)},
		{"Path", graph.Path(16)},
		{"Torus", graph.Torus(6, 7)},
		{"Star", graph.Star(12)},
		{"Singleton", graph.Path(1)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			net := local.New(c.g)
			in, err := MIS(net)
			if err != nil {
				t.Fatalf("MIS: %v", err)
			}
			if err := VerifyMIS(c.g, in); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestMISCompleteGraphSizeOne(t *testing.T) {
	g := graph.Complete(20)
	in, err := MIS(local.New(g))
	if err != nil {
		t.Fatalf("MIS: %v", err)
	}
	n := 0
	for _, ok := range in {
		if ok {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("MIS of K20 has %d members, want 1", n)
	}
}

func TestMISEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(0).MustBuild()
	in, err := MIS(local.New(g))
	if err != nil || in != nil {
		t.Fatalf("MIS on empty graph: %v %v", in, err)
	}
}

func TestRulingSetOnCycle(t *testing.T) {
	g := graph.Cycle(60)
	for _, r := range []int{1, 2, 3, 6} {
		net := local.New(g)
		in, err := RulingSet(net, r)
		if err != nil {
			t.Fatalf("RulingSet(r=%d): %v", r, err)
		}
		if err := VerifyRulingSet(g, in, r); err != nil {
			t.Fatalf("r=%d: %v", r, err)
		}
	}
}

func TestRulingSetRejectsBadR(t *testing.T) {
	if _, err := RulingSet(local.New(graph.Cycle(5)), 0); err == nil {
		t.Fatal("accepted r=0")
	}
}

func TestRulingSetChargesDilatedRounds(t *testing.T) {
	g := graph.Cycle(64)
	n1 := local.New(g)
	if _, err := RulingSet(n1, 1); err != nil {
		t.Fatal(err)
	}
	n3 := local.New(g)
	if _, err := RulingSet(n3, 3); err != nil {
		t.Fatal(err)
	}
	if n3.Rounds() <= n1.Rounds() {
		t.Fatalf("distance-3 ruling set (%d rounds) should cost more than MIS (%d rounds)",
			n3.Rounds(), n1.Rounds())
	}
}

func TestVerifyMISCatchesViolations(t *testing.T) {
	g := graph.Path(4)
	if err := VerifyMIS(g, []bool{true, true, false, true}); err == nil {
		t.Fatal("adjacent members accepted")
	}
	if err := VerifyMIS(g, []bool{true, false, false, false}); err == nil {
		t.Fatal("undominated vertex accepted")
	}
	if err := VerifyMIS(g, []bool{true, false, true, false}); err != nil {
		t.Fatalf("valid MIS rejected: %v", err)
	}
	if err := VerifyMIS(g, []bool{true}); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestVerifyRulingSetCatchesViolations(t *testing.T) {
	g := graph.Path(8)
	if err := VerifyRulingSet(g, []bool{true, false, true, false, false, false, false, true}, 2); err == nil {
		t.Fatal("close members accepted")
	}
	if err := VerifyRulingSet(g, []bool{true, false, false, false, false, false, false, false}, 2); err == nil {
		t.Fatal("undominated accepted")
	}
	if err := VerifyRulingSet(g, []bool{true, false, false, true, false, false, true, false}, 2); err != nil {
		t.Fatalf("valid ruling set rejected: %v", err)
	}
}

func TestMISProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(50)
		g := graph.PermuteIDs(graph.ErdosRenyi(n, 0.2, rng), rng)
		in, err := MIS(local.New(g))
		if err != nil {
			return false
		}
		return VerifyMIS(g, in) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRulingSetProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		r := 1 + rng.Intn(3)
		g := graph.PermuteIDs(graph.ErdosRenyi(n, 0.15, rng), rng)
		in, err := RulingSet(local.New(g), r)
		if err != nil {
			return false
		}
		return VerifyRulingSet(g, in, r) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
