package rulingset

import (
	"math/rand"
	"testing"
	"testing/quick"

	"deltacoloring/internal/graph"
	"deltacoloring/internal/local"
)

func TestMISBasics(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"Cycle", graph.Cycle(11)},
		{"Complete", graph.Complete(9)},
		{"Path", graph.Path(16)},
		{"Torus", graph.Torus(6, 7)},
		{"Star", graph.Star(12)},
		{"Singleton", graph.Path(1)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			net := local.New(c.g)
			in, err := MIS(net)
			if err != nil {
				t.Fatalf("MIS: %v", err)
			}
			if err := VerifyMIS(c.g, in); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestMISCompleteGraphSizeOne(t *testing.T) {
	g := graph.Complete(20)
	in, err := MIS(local.New(g))
	if err != nil {
		t.Fatalf("MIS: %v", err)
	}
	n := 0
	for _, ok := range in {
		if ok {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("MIS of K20 has %d members, want 1", n)
	}
}

func TestMISEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(0).MustBuild()
	in, err := MIS(local.New(g))
	if err != nil || in != nil {
		t.Fatalf("MIS on empty graph: %v %v", in, err)
	}
}

func TestRulingSetOnCycle(t *testing.T) {
	g := graph.Cycle(60)
	for _, r := range []int{1, 2, 3, 6} {
		net := local.New(g)
		in, err := RulingSet(net, r)
		if err != nil {
			t.Fatalf("RulingSet(r=%d): %v", r, err)
		}
		if err := VerifyRulingSet(g, in, r); err != nil {
			t.Fatalf("r=%d: %v", r, err)
		}
	}
}

func TestRulingSetRejectsBadR(t *testing.T) {
	if _, err := RulingSet(local.New(graph.Cycle(5)), 0); err == nil {
		t.Fatal("accepted r=0")
	}
}

func TestRulingSetChargesDilatedRounds(t *testing.T) {
	g := graph.Cycle(64)
	n1 := local.New(g)
	if _, err := RulingSet(n1, 1); err != nil {
		t.Fatal(err)
	}
	n3 := local.New(g)
	if _, err := RulingSet(n3, 3); err != nil {
		t.Fatal(err)
	}
	if n3.Rounds() <= n1.Rounds() {
		t.Fatalf("distance-3 ruling set (%d rounds) should cost more than MIS (%d rounds)",
			n3.Rounds(), n1.Rounds())
	}
}

func TestVerifyMISCatchesViolations(t *testing.T) {
	g := graph.Path(4)
	if err := VerifyMIS(g, []bool{true, true, false, true}); err == nil {
		t.Fatal("adjacent members accepted")
	}
	if err := VerifyMIS(g, []bool{true, false, false, false}); err == nil {
		t.Fatal("undominated vertex accepted")
	}
	if err := VerifyMIS(g, []bool{true, false, true, false}); err != nil {
		t.Fatalf("valid MIS rejected: %v", err)
	}
	if err := VerifyMIS(g, []bool{true}); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestVerifyRulingSetCatchesViolations(t *testing.T) {
	g := graph.Path(8)
	if err := VerifyRulingSet(g, []bool{true, false, true, false, false, false, false, true}, 2); err == nil {
		t.Fatal("close members accepted")
	}
	if err := VerifyRulingSet(g, []bool{true, false, false, false, false, false, false, false}, 2); err == nil {
		t.Fatal("undominated accepted")
	}
	if err := VerifyRulingSet(g, []bool{true, false, false, true, false, false, true, false}, 2); err != nil {
		t.Fatalf("valid ruling set rejected: %v", err)
	}
}

// TestVerifyRulingSetDeepRadius pins the r > 1 branches on exact distance
// boundaries: members at distance exactly r are too close (the check is
// strict), distance r+1 is legal, domination holds at distance exactly r,
// and a vertex at distance r+1 from every member is undominated. A path
// graph makes every distance explicit.
func TestVerifyRulingSetDeepRadius(t *testing.T) {
	g := graph.Path(12)
	set := func(members ...int) []bool {
		in := make([]bool, g.N())
		for _, v := range members {
			in[v] = true
		}
		return in
	}
	cases := []struct {
		name    string
		in      []bool
		r       int
		wantErr bool
	}{
		{"r3 members at distance 3 too close", set(0, 3, 7, 11), 3, true},
		{"r3 members at distance 4 legal", set(0, 4, 8), 3, false},
		{"r3 domination at exact distance", set(3, 8), 3, false},
		{"r3 vertex at distance 4 undominated", set(0, 8), 3, true},
		{"r4 spacing 5 legal", set(1, 6, 11), 4, false},
		{"r4 spacing 4 too close", set(1, 5, 11), 4, true},
		{"flag length mismatch", []bool{true}, 3, true},
		{"empty set nothing dominated", set(), 3, true},
	}
	for _, tc := range cases {
		err := VerifyRulingSet(g, tc.in, tc.r)
		if (err != nil) != tc.wantErr {
			t.Errorf("%s: err=%v, wantErr=%v", tc.name, err, tc.wantErr)
		}
	}
	// The constructive side: RulingSet at r=3 must satisfy its own verifier.
	in, err := RulingSet(local.New(g), 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyRulingSet(g, in, 3); err != nil {
		t.Fatalf("constructed 3-ruling set rejected: %v", err)
	}
}

func TestMISProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(50)
		g := graph.PermuteIDs(graph.ErdosRenyi(n, 0.2, rng), rng)
		in, err := MIS(local.New(g))
		if err != nil {
			return false
		}
		return VerifyMIS(g, in) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRulingSetProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		r := 1 + rng.Intn(3)
		g := graph.PermuteIDs(graph.ErdosRenyi(n, 0.15, rng), rng)
		in, err := RulingSet(local.New(g), r)
		if err != nil {
			return false
		}
		return VerifyRulingSet(g, in, r) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
