// Package rulingset implements maximal independent sets and distance-r
// ruling sets in the LOCAL model.
//
// MIS uses the standard deterministic recipe: Linial-color the graph with
// Δ+1 colors in O(log* n + Δ log Δ) rounds, then sweep the color classes —
// each class is an independent set, so all its vertices can join the MIS
// simultaneously unless a neighbor already joined. Ruling sets are MIS on
// the r-th power graph, executed as a virtual network with dilation r
// (simulating one power-graph round costs r real rounds).
//
// The paper consumes ruling sets through Lemma 19 ([Mau21, SEW13],
// O(Δ^{2/(r+2)} + log* n) rounds). Our MIS-on-power-graph substitution has a
// larger Δ-dependence but the identical output contract: selected vertices
// are pairwise at distance > r and every vertex is within distance r of a
// selected one. DESIGN.md records the substitution.
package rulingset

import (
	"fmt"

	"deltacoloring/internal/graph"
	"deltacoloring/internal/linial"
	"deltacoloring/internal/local"
)

// misState is the per-vertex state of the class sweep.
type misState struct {
	color   int
	in      bool // joined the MIS
	blocked bool // a neighbor joined
}

// MIS computes a maximal independent set of net's graph deterministically.
func MIS(net *local.Network) ([]bool, error) {
	g := net.Graph()
	if g.N() == 0 {
		return nil, nil
	}
	k := g.MaxDegree() + 1
	colors, err := linial.Color(net, k)
	if err != nil {
		return nil, fmt.Errorf("mis: %w", err)
	}
	st := make([]misState, g.N())
	for v := range st {
		st[v] = misState{color: colors[v]}
	}
	// Frontier-scheduled class sweep: only round c's class can change state
	// for non-neighborhood reasons (the seed); everything else changes only
	// in reaction to a neighbor joining, which the frontier tracks.
	buckets := make([][]int32, k)
	for v, c := range colors {
		buckets[c] = append(buckets[c], int32(v))
	}
	run := local.NewRunner(net, st)
	st = run.Sweep(k, func(c int, mark func(int)) {
		for _, v := range buckets[c] {
			mark(int(v))
		}
	}, func(c, v int, self misState, nbrs local.Nbrs[misState]) misState {
		if self.in || self.blocked {
			return self
		}
		for i := 0; i < nbrs.Len(); i++ {
			if nbrs.State(i).in {
				self.blocked = true
				return self
			}
		}
		if self.color == c {
			self.in = true
		}
		return self
	})
	out := make([]bool, g.N())
	for v := range st {
		out[v] = st[v].in
	}
	return out, nil
}

// RulingSet computes a set S such that any two members are at distance
// greater than r and every vertex is within distance r of S (a
// (r+1, r)-ruling set, which is in particular a (2, r)-ruling set as used
// by the paper's Algorithm 3).
func RulingSet(net *local.Network, r int) ([]bool, error) {
	if r < 1 {
		return nil, fmt.Errorf("rulingset: r must be >= 1, got %d", r)
	}
	if r == 1 {
		return MIS(net)
	}
	power := graph.Power(net.Graph(), r)
	vnet := net.Virtual(power, r)
	return MIS(vnet)
}

// VerifyMIS checks independence and maximality.
func VerifyMIS(g *graph.Graph, in []bool) error {
	if len(in) != g.N() {
		return fmt.Errorf("rulingset: %d flags for %d vertices", len(in), g.N())
	}
	for v := 0; v < g.N(); v++ {
		anyIn := in[v]
		for _, w := range g.Neighbors(v) {
			if in[v] && in[w] {
				return fmt.Errorf("rulingset: edge (%d,%d): both endpoints in the MIS", v, w)
			}
			if in[w] {
				anyIn = true
			}
		}
		if !anyIn {
			return fmt.Errorf("rulingset: vertex %d: undominated", v)
		}
	}
	return nil
}

// VerifyRulingSet checks the (r+1, r) ruling property.
func VerifyRulingSet(g *graph.Graph, in []bool, r int) error {
	if len(in) != g.N() {
		return fmt.Errorf("rulingset: %d flags for %d vertices", len(in), g.N())
	}
	var members []int
	for v, ok := range in {
		if ok {
			members = append(members, v)
		}
	}
	for i := 0; i < len(members); i++ {
		for j := i + 1; j < len(members); j++ {
			if d := g.Dist(members[i], members[j]); d >= 0 && d <= r {
				return fmt.Errorf("rulingset: vertex %d: member at distance %d <= r=%d from member %d",
					members[i], d, r, members[j])
			}
		}
	}
	for v := 0; v < g.N(); v++ {
		if in[v] {
			continue
		}
		ok := false
		for _, w := range g.NeighborsWithin(v, r) {
			if in[w] {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("rulingset: vertex %d: not within distance %d of the set", v, r)
		}
	}
	return nil
}
