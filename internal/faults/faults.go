// Package faults provides deterministic, seed-driven fault plans for the
// LOCAL simulator and the Δ-coloring pipeline.
//
// A Plan is compiled once from a Config and a graph: it schedules
// crash-stop faults (a vertex halts at a drawn round and stays silent),
// per-directed-edge message drops and duplications (drawn independently
// every round), and state corruptions (a vertex's memory is overwritten
// with a neighbor's state at a drawn round). Every decision is a pure
// function of (seed, kind, round, vertex/edge) via a splitmix64-style hash,
// so a plan is bit-reproducible across runs, machines, and — because the
// engine evaluates the decisions from worker goroutines in arbitrary
// order — across worker counts.
//
// A Plan plugs into the engine as a local.FaultHook (SetFaults), and can
// additionally damage a *finished* coloring via Damage: crashed vertices
// lose their color (they halted before reporting one), corrupted vertices
// adopt their corruption source's color (a memory overwrite that
// manufactures monochromatic edges). The damaged coloring is exactly the
// input contract of internal/repair.
package faults

import (
	"fmt"
	"math"

	"deltacoloring/internal/coloring"
	"deltacoloring/internal/graph"
	"deltacoloring/internal/local"
)

// Config parameterizes a Plan. The zero value is the fault-free plan; every
// rate is a probability in [0, 1].
type Config struct {
	// Seed drives every random decision; the same (Seed, Config, graph)
	// always compiles to the same Plan.
	Seed int64
	// CrashRate is the probability that a vertex crash-stops at all; a
	// crashing vertex draws its crash round uniformly from [0, CrashWindow).
	CrashRate float64
	// CrashWindow bounds the rounds in which crashes fire (default 64).
	CrashWindow int
	// DropRate is the per-round, per-directed-edge message loss probability.
	DropRate float64
	// DupRate is the per-round, per-directed-edge duplication probability.
	DupRate float64
	// CorruptRate is the probability that a vertex suffers one state
	// corruption; the round is drawn uniformly from [0, CorruptWindow) and
	// the overwriting source uniformly from its neighbors.
	CorruptRate float64
	// CorruptWindow bounds the rounds in which corruptions fire (default 64).
	CorruptWindow int
}

func (c Config) withDefaults() (Config, error) {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"CrashRate", c.CrashRate}, {"DropRate", c.DropRate},
		{"DupRate", c.DupRate}, {"CorruptRate", c.CorruptRate},
	} {
		if r.v < 0 || r.v > 1 || math.IsNaN(r.v) {
			return c, fmt.Errorf("faults: %s %v outside [0, 1]", r.name, r.v)
		}
	}
	if c.CrashWindow <= 0 {
		c.CrashWindow = 64
	}
	if c.CorruptWindow <= 0 {
		c.CorruptWindow = 64
	}
	return c, nil
}

// Hash kinds keep the per-decision random streams independent.
const (
	kindCrash = iota
	kindCrashRound
	kindDrop
	kindDup
	kindCorrupt
	kindCorruptRound
	kindCorruptSrc
)

// mix is a splitmix64 finalizer over the decision coordinates: uniform,
// stateless, and cheap enough to evaluate per edge per round.
func mix(seed int64, kind, round, a, b int) uint64 {
	x := uint64(seed) ^ 0x9e3779b97f4a7c15
	for _, w := range [4]uint64{uint64(kind), uint64(round), uint64(a), uint64(b)} {
		x ^= w + 0x9e3779b97f4a7c15 + (x << 6) + (x >> 2)
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
	}
	return x
}

// unit maps a hash to [0, 1).
func unit(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// Plan is a compiled fault schedule over one graph. It implements
// local.FaultHook; install it with Network.SetFaults. A Plan is immutable
// except for its round cursor, which NextRound advances and Reset rewinds.
type Plan struct {
	g   *graph.Graph
	cfg Config

	// crashRound[v] is the round at which v crash-stops, or -1.
	crashRound []int32
	// corruptRound[v] / corruptSrc[v] schedule v's single corruption event
	// (-1 = none). corruptSrc is always a neighbor of v.
	corruptRound []int32
	corruptSrc   []int32

	anyCrash, anyCorrupt bool
	round                int
}

// NewPlan compiles cfg against g. Compilation is O(n); the per-round
// drop/duplication decisions are evaluated lazily.
func NewPlan(g *graph.Graph, cfg Config) (*Plan, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	p := &Plan{
		g:            g,
		cfg:          cfg,
		crashRound:   make([]int32, g.N()),
		corruptRound: make([]int32, g.N()),
		corruptSrc:   make([]int32, g.N()),
	}
	for v := 0; v < g.N(); v++ {
		p.crashRound[v] = -1
		p.corruptRound[v] = -1
		p.corruptSrc[v] = -1
		if cfg.CrashRate > 0 && unit(mix(cfg.Seed, kindCrash, 0, v, 0)) < cfg.CrashRate {
			p.crashRound[v] = int32(mix(cfg.Seed, kindCrashRound, 0, v, 0) % uint64(cfg.CrashWindow))
			p.anyCrash = true
		}
		nbrs := g.Neighbors(v)
		if cfg.CorruptRate > 0 && len(nbrs) > 0 &&
			unit(mix(cfg.Seed, kindCorrupt, 0, v, 0)) < cfg.CorruptRate {
			p.corruptRound[v] = int32(mix(cfg.Seed, kindCorruptRound, 0, v, 0) % uint64(cfg.CorruptWindow))
			p.corruptSrc[v] = nbrs[mix(cfg.Seed, kindCorruptSrc, 0, v, 0)%uint64(len(nbrs))]
			p.anyCorrupt = true
		}
	}
	return p, nil
}

// Graph returns the graph the plan was compiled against.
func (p *Plan) Graph() *graph.Graph { return p.g }

// Config returns the plan's (defaulted) configuration.
func (p *Plan) Config() Config { return p.cfg }

// Reset rewinds the round cursor so the same plan can drive another run
// with identical fault timing.
func (p *Plan) Reset() { p.round = 0 }

// NextRound implements local.FaultHook: it advances the round cursor and
// returns this round's fault view, or nil when the round is provably
// fault-free (keeping the engine on its fast path).
func (p *Plan) NextRound() local.RoundFaults {
	r := p.round
	p.round++
	if !p.anyCrash && !p.anyCorrupt && p.cfg.DropRate == 0 && p.cfg.DupRate == 0 {
		return nil
	}
	return roundView{p: p, r: r}
}

// roundView is one round's immutable fault view; all methods are pure and
// safe to call concurrently from engine workers.
type roundView struct {
	p *Plan
	r int
}

func (rv roundView) Crashed(v int) bool {
	cr := rv.p.crashRound[v]
	return cr >= 0 && rv.r >= int(cr)
}

func (rv roundView) Dropped(from, to int) bool {
	return rv.p.cfg.DropRate > 0 &&
		unit(mix(rv.p.cfg.Seed, kindDrop, rv.r, from, to)) < rv.p.cfg.DropRate
}

func (rv roundView) Duplicated(from, to int) bool {
	return rv.p.cfg.DupRate > 0 &&
		unit(mix(rv.p.cfg.Seed, kindDup, rv.r, from, to)) < rv.p.cfg.DupRate
}

func (rv roundView) Corrupted(v int) (int, bool) {
	if int(rv.p.corruptRound[v]) == rv.r && rv.p.corruptSrc[v] >= 0 {
		return int(rv.p.corruptSrc[v]), true
	}
	return 0, false
}

// Report lists the vertices a Damage call actually touched.
type Report struct {
	// Crashed vertices lost their color entirely.
	Crashed []int
	// Corrupted vertices adopted a neighbor's color.
	Corrupted []int
}

// Total returns the number of damaged vertices.
func (r Report) Total() int { return len(r.Crashed) + len(r.Corrupted) }

// Damage applies the plan's crash and corruption schedules to a finished
// coloring and returns the damaged copy: crashed vertices become uncolored
// (they halted before reporting), corrupted vertices take their scheduled
// source neighbor's original color (manufacturing monochromatic edges).
// The input slice is not modified. Damage is independent of the round
// cursor, so it composes with an engine run driven by the same plan.
func (p *Plan) Damage(colors []int) ([]int, Report) {
	out := make([]int, len(colors))
	copy(out, colors)
	var rep Report
	for v := range out {
		switch {
		case p.crashRound[v] >= 0:
			out[v] = coloring.None
			rep.Crashed = append(rep.Crashed, v)
		case p.corruptRound[v] >= 0:
			out[v] = colors[p.corruptSrc[v]]
			rep.Corrupted = append(rep.Corrupted, v)
		}
	}
	return out, rep
}
