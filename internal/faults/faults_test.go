package faults

import (
	"math/rand"
	"reflect"
	"testing"

	"deltacoloring/internal/coloring"
	"deltacoloring/internal/graph"
	"deltacoloring/internal/local"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.ErdosRenyi(400, 0.02, rand.New(rand.NewSource(7)))
	return g
}

func TestConfigValidation(t *testing.T) {
	g := graph.Cycle(8)
	if _, err := NewPlan(g, Config{DropRate: 1.5}); err == nil {
		t.Fatal("rate above 1 accepted")
	}
	if _, err := NewPlan(g, Config{CrashRate: -0.1}); err == nil {
		t.Fatal("negative rate accepted")
	}
	p, err := NewPlan(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rf := p.NextRound(); rf != nil {
		t.Fatal("zero config produced a non-nil fault view")
	}
}

// The same (seed, config, graph) must compile to the same schedule and the
// same per-round decisions.
func TestPlanDeterminism(t *testing.T) {
	g := testGraph(t)
	cfg := Config{Seed: 42, CrashRate: 0.05, DropRate: 0.1, DupRate: 0.05, CorruptRate: 0.05}
	a, err := NewPlan(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewPlan(g, cfg)
	if !reflect.DeepEqual(a.crashRound, b.crashRound) ||
		!reflect.DeepEqual(a.corruptRound, b.corruptRound) ||
		!reflect.DeepEqual(a.corruptSrc, b.corruptSrc) {
		t.Fatal("identical configs compiled to different schedules")
	}
	for r := 0; r < 16; r++ {
		ra, rb := a.NextRound(), b.NextRound()
		if (ra == nil) != (rb == nil) {
			t.Fatalf("round %d: nil view mismatch", r)
		}
		if ra == nil {
			continue
		}
		for v := 0; v < g.N(); v++ {
			if ra.Crashed(v) != rb.Crashed(v) {
				t.Fatalf("round %d: crash decision differs at %d", r, v)
			}
			for _, w := range g.Neighbors(v) {
				if ra.Dropped(int(w), v) != rb.Dropped(int(w), v) ||
					ra.Duplicated(int(w), v) != rb.Duplicated(int(w), v) {
					t.Fatalf("round %d: edge decision differs at {%d,%d}", r, w, v)
				}
			}
		}
	}
}

// Crash-stop faults are monotone: once crashed, crashed in every later round.
func TestCrashMonotone(t *testing.T) {
	g := testGraph(t)
	p, err := NewPlan(g, Config{Seed: 3, CrashRate: 0.2, CrashWindow: 8})
	if err != nil {
		t.Fatal(err)
	}
	crashed := make([]bool, g.N())
	sawCrash := false
	for r := 0; r < 16; r++ {
		rf := p.NextRound()
		if rf == nil {
			t.Fatal("crashing plan produced nil view")
		}
		for v := 0; v < g.N(); v++ {
			if crashed[v] && !rf.Crashed(v) {
				t.Fatalf("vertex %d un-crashed at round %d", v, r)
			}
			if rf.Crashed(v) {
				crashed[v] = true
				sawCrash = true
			}
		}
	}
	if !sawCrash {
		t.Fatal("CrashRate 0.2 over 400 vertices produced no crash")
	}
}

// Damage must be reproducible, leave the input untouched, and only ever
// uncolor crashed vertices or copy a neighbor's color onto corrupted ones.
func TestDamage(t *testing.T) {
	g := testGraph(t)
	p, err := NewPlan(g, Config{Seed: 9, CrashRate: 0.08, CorruptRate: 0.08})
	if err != nil {
		t.Fatal(err)
	}
	c := coloring.NewPartial(g.N())
	if err := coloring.GreedyComplete(g, c, g.MaxDegree()+1); err != nil {
		t.Fatal(err)
	}
	orig := append([]int(nil), c.Colors...)
	dmg, rep := p.Damage(c.Colors)
	if !reflect.DeepEqual(orig, c.Colors) {
		t.Fatal("Damage mutated its input")
	}
	dmg2, rep2 := p.Damage(c.Colors)
	if !reflect.DeepEqual(dmg, dmg2) || !reflect.DeepEqual(rep, rep2) {
		t.Fatal("Damage is not reproducible")
	}
	if rep.Total() == 0 {
		t.Fatal("damage plan touched nothing")
	}
	touched := make(map[int]bool)
	for _, v := range rep.Crashed {
		touched[v] = true
		if dmg[v] != coloring.None {
			t.Fatalf("crashed vertex %d kept color %d", v, dmg[v])
		}
	}
	for _, v := range rep.Corrupted {
		touched[v] = true
		src := int(p.corruptSrc[v])
		if dmg[v] != orig[src] {
			t.Fatalf("corrupted vertex %d has color %d, want source %d's color %d", v, dmg[v], src, orig[src])
		}
	}
	for v, col := range dmg {
		if !touched[v] && col != orig[v] {
			t.Fatalf("untouched vertex %d changed color", v)
		}
	}
}

// A LOCAL algorithm run under an installed fault plan must be bit-identical
// at any worker count: every fault decision is a pure function of
// (round, vertex), independent of chunking.
func TestEngineFaultsWorkerIndependent(t *testing.T) {
	g := graph.ErdosRenyi(2000, 0.004, rand.New(rand.NewSource(11)))
	cfg := Config{Seed: 5, CrashRate: 0.05, CrashWindow: 6, DropRate: 0.15, DupRate: 0.1, CorruptRate: 0.05, CorruptWindow: 6}

	// A deliberately fault-sensitive update: each vertex sums neighbor
	// states (duplication changes the sum, drops remove terms) and tracks
	// how many neighbors it heard from.
	run := func(workers int) []int64 {
		p, err := NewPlan(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		net := local.New(g)
		defer net.Close()
		net.SetWorkers(workers)
		net.SetFaults(p)
		init := make([]int64, g.N())
		for v := range init {
			init[v] = int64(v + 1)
		}
		r := local.NewRunner(net, init)
		var st []int64
		for round := 0; round < 12; round++ {
			st = r.Step(func(v int, self int64, nbrs local.Nbrs[int64]) int64 {
				sum := self
				for i := 0; i < nbrs.Len(); i++ {
					sum += nbrs.State(i) + int64(nbrs.At(i))
				}
				return sum % 1_000_003
			})
		}
		out := make([]int64, len(st))
		copy(out, st)
		return out
	}

	seq := run(1)
	for _, w := range []int{2, 4, 8} {
		if got := run(w); !reflect.DeepEqual(seq, got) {
			t.Fatalf("fault-injected run differs between workers=1 and workers=%d", w)
		}
	}
}

// Crashed vertices freeze: their state after the run equals their state at
// the crash round, and they are excluded from quiescence detection.
func TestCrashFreezesState(t *testing.T) {
	g := graph.Cycle(300)
	p, err := NewPlan(g, Config{Seed: 21, CrashRate: 0.3, CrashWindow: 1})
	if err != nil {
		t.Fatal(err)
	}
	net := local.New(g)
	defer net.Close()
	net.SetFaults(p)
	init := make([]int, g.N())
	r := local.NewRunner(net, init)
	st := init
	for round := 0; round < 5; round++ {
		st = r.Step(func(v int, self int, nbrs local.Nbrs[int]) int { return self + 1 })
	}
	sawFrozen := false
	for v, s := range st {
		if p.crashRound[v] == 0 {
			sawFrozen = true
			if s != 0 {
				t.Fatalf("vertex %d crashed at round 0 but reached state %d", v, s)
			}
		} else if s != 5 {
			t.Fatalf("live vertex %d reached state %d, want 5", v, s)
		}
	}
	if !sawFrozen {
		t.Fatal("no vertex crashed at round 0")
	}
}
