package invariant

import (
	"strings"
	"testing"

	"deltacoloring/internal/dynamic"
	"deltacoloring/internal/graph"
)

// The full dynamic matrix must pass every suite: instrumented mutation
// streams with the after-each-batch oracle, the split/reorder metamorphic
// relation, and the checkpoint corruption control.
func TestDynamicMatrixPasses(t *testing.T) {
	for _, r := range RunDynamicMatrix(DynamicMatrix(), Options{}) {
		metamorphicRan := false
		for _, s := range r.Suites {
			if s.Err != nil {
				t.Errorf("%s/%s: %v", r.Name, s.Suite, s.Err)
			}
			if s.Suite == "metamorphic" && !strings.Contains(s.Detail, "no independent") {
				metamorphicRan = true
			}
			t.Logf("%s/%s: %s", r.Name, s.Suite, s.Detail)
		}
		if r.Name != "dyn-erdos" && !metamorphicRan {
			t.Errorf("%s: metamorphic suite found no independent mutation set", r.Name)
		}
	}
}

// SkipNegative must drop the corruption-control rows.
func TestDynamicMatrixSkipNegative(t *testing.T) {
	ws := DynamicMatrix()[:1]
	for _, r := range RunDynamicMatrix(ws, Options{SkipNegative: true}) {
		for _, s := range r.Suites {
			if s.Suite == "negative" {
				t.Fatalf("%s: negative suite ran despite SkipNegative", r.Name)
			}
		}
	}
}

// The dynamic/maintained-complete checker itself: a valid snapshot passes,
// a corrupted one is flagged against the snapshot's own carried graph (the
// store's graph evolves away from the harness's root graph).
func TestDynamicSnapshotChecker(t *testing.T) {
	g := graph.Torus(6, 6)
	l, err := dynamic.New(g, dynamic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	snap, ok := l.Snapshot()
	if !ok {
		t.Fatal("fresh store unhealthy")
	}
	h := NewHarness(graph.Cycle(4)) // deliberately not the snapshot's graph
	if err := h.Observe("dynamic/maintain", snap); err != nil {
		t.Fatalf("valid snapshot flagged: %v", err)
	}
	if h.Checks() != 1 {
		t.Fatalf("checker did not fire: %d checks", h.Checks())
	}
	if !Corrupt(snap) {
		t.Fatal("Corrupt did not recognize *dynamic.Snapshot")
	}
	if err := h.Observe("dynamic/maintain", snap); err == nil {
		t.Fatal("corrupted snapshot passed the checker")
	}
}
