package invariant

import (
	"math/rand"
	"strings"
	"testing"

	"deltacoloring/internal/graph"
)

// TestShardedSuitePasses: the sharded metamorphic suite (oracle run, the
// ShardCounts sweep, and all three corruption controls) is green on graphs
// with and without cut edges.
func TestShardedSuitePasses(t *testing.T) {
	workloads := []Workload{
		{Name: "grid", Graph: graph.PermuteIDs(graph.Grid(8, 6), rand.New(rand.NewSource(1)))},
		{Name: "regular", Graph: graph.RandomRegular(60, 5, rand.New(rand.NewSource(2)))},
		{Name: "singleton", Graph: graph.Path(1)},
	}
	for _, w := range workloads {
		s := shardedSuite(w, Options{})
		if s.Err != nil {
			t.Errorf("%s: %v", w.Name, s.Err)
		}
		if s.Suite != "sharded" {
			t.Errorf("%s: suite labeled %q", w.Name, s.Suite)
		}
	}
}

// TestShardedSuiteInMatrix: RunMatrix attaches the sharded suite to every
// non-rejection row, and the Δ=63 rejection row keeps its exactly-one-suite
// shape.
func TestShardedSuiteInMatrix(t *testing.T) {
	ws := []Workload{
		{Name: "cycle", Graph: graph.Cycle(24), Primitive: true, Seed: 3},
	}
	results := RunMatrix(ws, Options{})
	found := false
	for _, s := range results[0].Suites {
		if s.Suite == "sharded" {
			found = true
			if s.Err != nil {
				t.Fatalf("sharded suite failed: %v", s.Err)
			}
			if !strings.Contains(s.Detail, "bit-identical") {
				t.Fatalf("sharded detail %q", s.Detail)
			}
		}
	}
	if !found {
		t.Fatal("sharded suite missing from a primitive row")
	}
}
