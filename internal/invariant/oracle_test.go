package invariant

import (
	"strings"
	"testing"

	"deltacoloring/internal/graph"
)

func TestGreedyColoringAlwaysProper(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.Cycle(9), graph.Complete(6), graph.Grid(4, 5), graph.Path(7), graph.Star(8),
	} {
		colors := GreedyColoring(g)
		if err := ReferenceComplete(g, colors, g.MaxDegree()+1); err != nil {
			t.Fatalf("greedy broke deg+1 on n=%d: %v", g.N(), err)
		}
	}
}

func TestBruteDeltaColoring(t *testing.T) {
	cases := []struct {
		name      string
		g         *graph.Graph
		colorable bool
	}{
		{"even cycle", graph.Cycle(8), true},
		{"odd cycle (Brooks class)", graph.Cycle(9), false},
		{"clique (Brooks class)", graph.Complete(5), false},
		{"grid", graph.Grid(3, 4), true},
		{"path", graph.Path(6), true},
	}
	for _, tc := range cases {
		colors, ok := BruteDeltaColoring(tc.g)
		if ok != tc.colorable {
			t.Fatalf("%s: colorable=%v, want %v", tc.name, ok, tc.colorable)
		}
		if !ok {
			continue
		}
		k := tc.g.MaxDegree()
		if k < 1 {
			k = 1
		}
		if err := ReferenceComplete(tc.g, colors, k); err != nil {
			t.Fatalf("%s: brute witness invalid: %v", tc.name, err)
		}
	}
}

func TestBruteDeltaColoringSizeCap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("n > BruteMaxN did not panic")
		}
	}()
	BruteDeltaColoring(graph.Cycle(BruteMaxN + 1))
}

func TestReferenceProperBranches(t *testing.T) {
	g := graph.Path(4)
	check := func(name string, colors []int, k int, wantErr string) {
		t.Helper()
		err := ReferenceProper(g, colors, k)
		if wantErr == "" {
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			return
		}
		if err == nil || !strings.Contains(err.Error(), wantErr) {
			t.Fatalf("%s: error %v does not mention %q", name, err, wantErr)
		}
	}
	check("valid partial", []int{0, 1, -1, 0}, 2, "")
	check("length mismatch", []int{0, 1}, 2, "colors for")
	check("out of range", []int{0, 5, 0, 1}, 2, "outside")
	check("monochromatic", []int{0, 0, 1, 0}, 2, "monochromatic")

	if err := ReferenceComplete(g, []int{0, 1, -1, 0}, 2); err == nil ||
		!strings.Contains(err.Error(), "uncolored") {
		t.Fatalf("uncolored vertex not flagged: %v", err)
	}
	if err := ReferenceComplete(g, []int{0, 1, 0, 1}, 2); err != nil {
		t.Fatalf("valid complete coloring rejected: %v", err)
	}
}

func TestGreedyMISAndReference(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Cycle(10), graph.Grid(4, 4), graph.Complete(5)} {
		in := GreedyMIS(g)
		if err := ReferenceMIS(g, in); err != nil {
			t.Fatalf("greedy MIS invalid on n=%d: %v", g.N(), err)
		}
	}
	g := graph.Path(4)
	if err := ReferenceMIS(g, []bool{true, true, false, false}); err == nil ||
		!strings.Contains(err.Error(), "both in the MIS") {
		t.Fatal("adjacent members accepted")
	}
	if err := ReferenceMIS(g, []bool{true, false, false, false}); err == nil ||
		!strings.Contains(err.Error(), "undominated") {
		t.Fatal("undominated vertex accepted")
	}
	if err := ReferenceMIS(g, []bool{true}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestGreedyMatchingAndReference(t *testing.T) {
	g := graph.Cycle(10)
	edges := g.Edges()
	matched := GreedyMatching(g, edges)
	if err := ReferenceMatching(g, matched, edges); err != nil {
		t.Fatalf("greedy matching invalid: %v", err)
	}
	// Violations: non-edge, endpoint reuse, non-maximality.
	if err := ReferenceMatching(g, []graph.Edge{{U: 0, V: 5}}, edges); err == nil ||
		!strings.Contains(err.Error(), "not a graph edge") {
		t.Fatal("non-edge accepted")
	}
	if err := ReferenceMatching(g, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}, edges); err == nil ||
		!strings.Contains(err.Error(), "endpoint reused") {
		t.Fatal("endpoint reuse accepted")
	}
	if err := ReferenceMatching(g, nil, edges); err == nil ||
		!strings.Contains(err.Error(), "not maximal") {
		t.Fatal("empty matching accepted as maximal")
	}
}
