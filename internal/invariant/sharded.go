package invariant

import (
	"context"
	"errors"
	"fmt"

	"deltacoloring/internal/graph"
	"deltacoloring/internal/local"
	"deltacoloring/internal/shard"
)

// ShardCounts is the shard-count sweep of the sharded metamorphic suite.
var ShardCounts = []int{1, 2, 4}

// shardedSuite is the cluster half of the bit-identity contract: on every
// workload graph the wire algorithm is run once densely in a single process
// (the oracle) and then across every shard count in ShardCounts, each run
// harness-instrumented. Colors and rounds must match exactly; the partition
// and final-coloring checkpoints must fire; and corruption controls prove a
// damaged partition or a corrupted cross-cut exchange surfaces as a named
// violation, never as a silently wrong coloring.
func shardedSuite(w Workload, opt Options) SuiteResult {
	s := SuiteResult{Suite: "sharded"}
	g := w.Graph

	// Single-process oracle with the harness attached: the dense run itself
	// must publish a checked final coloring.
	oracleH := NewHarness(g)
	var oracleColors []int
	var oracleRounds int
	err := func() (err error) {
		net := local.New(g)
		defer net.Close()
		defer func() {
			if r := recover(); r != nil {
				ip, ok := r.(local.Interrupt)
				if !ok {
					panic(r)
				}
				err = ip.Err
			}
		}()
		oracleH.Attach(net)
		oracleColors, oracleRounds, err = shard.SolveSingle(net)
		return err
	}()
	if err != nil {
		s.Err = fmt.Errorf("single-process oracle: %w", err)
		return s
	}
	if oracleH.Checks() == 0 {
		s.Err = fmt.Errorf("single-process oracle published no checked artifacts")
		return s
	}

	cut := 0
	for _, k := range ShardCounts {
		h := NewHarness(g)
		res, err := shard.Run(context.Background(), g, shard.Config{K: k, NetHook: h.Attach})
		if err != nil {
			s.Err = fmt.Errorf("k=%d: %w", k, err)
			return s
		}
		for v := range oracleColors {
			if res.Colors[v] != oracleColors[v] {
				s.Err = fmt.Errorf("k=%d: vertex %d colored %d, single-process run says %d",
					k, v, res.Colors[v], oracleColors[v])
				return s
			}
		}
		if res.Rounds != oracleRounds {
			s.Err = fmt.Errorf("k=%d: %d cross-cut rounds, single-process run used %d",
				k, res.Rounds, oracleRounds)
			return s
		}
		if !contains(h.Phases(), "shard/partition") || !contains(h.Phases(), "final") {
			s.Err = fmt.Errorf("k=%d: harness phases %v missing shard/partition or final", k, h.Phases())
			return s
		}
		if res.K > 1 {
			cut = res.Traffic.CutEdges
		}
		opt.logf("  sharded k=%d: rounds=%d cut=%d boundary-updates=%d step-calls=%d",
			k, res.Rounds, res.Traffic.CutEdges, res.Traffic.BoundaryUpdates, res.Traffic.StepCalls)
	}

	if !opt.SkipNegative {
		if err := shardedNegative(g, cut); err != nil {
			s.Err = err
			return s
		}
	}
	s.Detail = fmt.Sprintf("k=%v bit-identical, %d cut edges", ShardCounts, cut)
	return s
}

// shardedNegative runs the per-shard corruption controls: each must end in
// its named violation type. A corrupted partition checkpoint must trip the
// harness; a corrupted exchange or finish must trip the worker/merge
// contracts. cut is the 2-shard run's cut-edge count — on zero-cut
// workloads no boundary message ever exists to corrupt, so that control is
// vacuous by construction (not silently skipped: the partition and finish
// controls still must fire).
func shardedNegative(g *graph.Graph, cut int) error {
	// Control 1: damage the partition artifact at its checkpoint; the
	// harness's shard/partition checker must refuse the run with a
	// *Violation naming the phase.
	h := NewHarness(g)
	h.CorruptPhase("shard/partition")
	_, err := shard.Run(context.Background(), g, shard.Config{K: 2, NetHook: h.Attach})
	if h.CorruptMissed() {
		// Single-vertex graphs partition into one shard; Owner cannot be
		// damaged meaningfully.
		if g.N() > 1 {
			return fmt.Errorf("negative control: partition artifact could not be damaged")
		}
	} else {
		var v *Violation
		if !errors.As(err, &v) {
			return fmt.Errorf("negative control: corrupted partition yielded %v, want *Violation", err)
		}
		if v.Phase != "shard/partition" {
			return fmt.Errorf("negative control: violation blames phase %q, want shard/partition", v.Phase)
		}
	}

	// Control 2: corrupt one cross-cut exchange message. The receiving
	// worker must refuse it as *ExchangeViolation. Vacuous when the 2-shard
	// partition has no cut edges (nothing ever crosses).
	tr := shard.NewChaosTransport(shard.NewInProcess(),
		shard.ChaosPlan{Mode: shard.ChaosCorruptExchange, Seed: 99, Prob: 1})
	_, err = shard.Run(context.Background(), g, shard.Config{K: 2, Transport: tr})
	if tr.Fired() {
		var ev *shard.ExchangeViolation
		if !errors.As(err, &ev) {
			return fmt.Errorf("negative control: corrupted exchange yielded %v, want *ExchangeViolation", err)
		}
	} else if cut > 0 {
		return fmt.Errorf("negative control: %d cut edges but the exchange corruption never fired", cut)
	}

	// Control 3: corrupt one shard's final colors. The merge must refuse
	// them as *MergeViolation.
	tr = shard.NewChaosTransport(shard.NewInProcess(),
		shard.ChaosPlan{Mode: shard.ChaosCorruptFinish, Seed: 99, Prob: 1})
	_, err = shard.Run(context.Background(), g, shard.Config{K: 2, Transport: tr})
	if !tr.Fired() {
		return fmt.Errorf("negative control: the finish corruption never fired")
	}
	var mv *shard.MergeViolation
	if !errors.As(err, &mv) {
		return fmt.Errorf("negative control: corrupted finish yielded %v, want *MergeViolation", err)
	}
	return nil
}
