package invariant

import (
	"math/rand"

	"deltacoloring/internal/core"
	"deltacoloring/internal/graph"
)

// Workload is one row of the deterministic generator matrix.
type Workload struct {
	Name  string
	Graph *graph.Graph
	// Params configures the pipelines (ignored for primitive workloads).
	Params core.Params
	// Det / Simple / Rand / Ruling select the registered backends to run
	// and check (see internal/backend and algosOf).
	Det, Simple, Rand, Ruling bool
	// Primitive workloads skip the dense pipelines and instead exercise the
	// MIS and matching building blocks against their sequential oracles.
	Primitive bool
	// Brute additionally runs the exact Δ-colorability oracle (n <= BruteMaxN).
	Brute bool
	// ExpectErr, when non-empty, is a substring the deterministic run must
	// fail with; such workloads skip oracles, metamorphic relations, and
	// negative controls.
	ExpectErr string
	// PermRounds additionally asserts exact round-count invariance under ID
	// permutation (the flagship contract pinned by csr_test.go); on other
	// families the matching schedule may legitimately shift with IDs.
	PermRounds bool
	// Seed drives the randomized pipeline and the fault plans.
	Seed int64
}

// Matrix returns the standing conformance matrix: dense families from the
// paper's constructions, sparse primitives, exact-oracle miniatures, and the
// Δ = 63 Lemma-11 rounding edge documented by experiment E13. Every graph is
// generated from fixed seeds, so the matrix is fully deterministic.
func Matrix() []Workload {
	scaled := core.TestParams()
	ring, _ := graph.EasyCliqueRing(8, 16)
	blocks, _ := graph.EasyDenseBlocks(8, 63, 1)
	hardBip, _ := graph.HardCliqueBipartite(16, 16)
	patch, _ := graph.HardWithEasyPatch(16, 16)
	delta63, _ := graph.HardCliqueBipartite(63, 63)
	return []Workload{
		{Name: "clique-ring", Graph: ring, Params: scaled, Det: true, Rand: true, Ruling: true, Seed: 32},
		{Name: "dense-blocks", Graph: blocks, Params: scaled, Det: true, Ruling: true, Seed: 7},
		{Name: "hard-bipartite", Graph: hardBip, Params: scaled, Det: true, Simple: true, Rand: true, Ruling: true, Seed: 31, PermRounds: true},
		{Name: "hard-easy-patch", Graph: patch, Params: scaled, Det: true, Rand: true, Ruling: true, Seed: 33},
		{Name: "tree", Graph: graph.RandomTree(96, rand.New(rand.NewSource(11))), Primitive: true, Seed: 11},
		{Name: "cycle", Graph: graph.Cycle(48), Primitive: true, Seed: 12},
		{Name: "random-regular", Graph: graph.RandomRegular(96, 6, rand.New(rand.NewSource(13))), Primitive: true, Seed: 13},
		{Name: "tiny-even-cycle", Graph: graph.Cycle(8), Primitive: true, Brute: true, Seed: 14},
		{Name: "tiny-odd-cycle", Graph: graph.Cycle(9), Primitive: true, Brute: true, Seed: 15},
		{Name: "tiny-clique", Graph: graph.Complete(5), Primitive: true, Brute: true, Seed: 16},
		{Name: "tiny-grid", Graph: graph.Grid(3, 4), Primitive: true, Brute: true, Seed: 17},
		// E13: Δ = 63 satisfies the continuous Lemma 11 arithmetic but the
		// integer sub-clique sizes round down to the rejection threshold;
		// the pipeline must refuse rather than silently weaken the slack.
		{Name: "delta63-rounding", Graph: delta63, Params: core.DefaultParams(), Det: true, ExpectErr: "Lemma 11"},
	}
}

// QuickMatrix is Matrix without the Δ = 63 instance (n = 7938), for callers
// on a time budget such as the race-enabled CI conformance step.
func QuickMatrix() []Workload {
	var out []Workload
	for _, w := range Matrix() {
		if w.Name != "delta63-rounding" {
			out = append(out, w)
		}
	}
	return out
}
