package invariant

import (
	"strings"
	"testing"
)

func TestMatrixShape(t *testing.T) {
	m := Matrix()
	if len(m) < 10 {
		t.Fatalf("matrix has only %d workloads", len(m))
	}
	names := map[string]bool{}
	hasReject, hasBrute, hasPrimitive, hasPipeline := false, false, false, false
	for _, w := range m {
		if names[w.Name] {
			t.Fatalf("duplicate workload name %s", w.Name)
		}
		names[w.Name] = true
		if w.Graph == nil {
			t.Fatalf("%s: nil graph", w.Name)
		}
		if w.ExpectErr != "" {
			hasReject = true
		}
		if w.Brute {
			hasBrute = true
			if w.Graph.N() > BruteMaxN {
				t.Fatalf("%s: brute workload has n=%d > %d", w.Name, w.Graph.N(), BruteMaxN)
			}
		}
		if w.Primitive {
			hasPrimitive = true
		}
		if w.Det || w.Simple || w.Rand {
			hasPipeline = true
		}
	}
	if !hasReject || !hasBrute || !hasPrimitive || !hasPipeline {
		t.Fatalf("matrix lacks a workload class: reject=%v brute=%v primitive=%v pipeline=%v",
			hasReject, hasBrute, hasPrimitive, hasPipeline)
	}
	quick := QuickMatrix()
	if len(quick) != len(m)-1 {
		t.Fatalf("QuickMatrix has %d workloads, want %d", len(quick), len(m)-1)
	}
	for _, w := range quick {
		if w.Name == "delta63-rounding" {
			t.Fatal("QuickMatrix kept the Δ=63 instance")
		}
	}
}

// TestRunMatrixSubset drives the full conformance machinery — pipeline,
// differential oracle, metamorphic sweep, fault replay, negative controls,
// primitives, brute force, and the rejection row — over a fast subset.
func TestRunMatrixSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("conformance subset is heavy; skipped under -short")
	}
	var subset []Workload
	for _, w := range Matrix() {
		switch w.Name {
		case "clique-ring", "hard-bipartite", "tiny-clique", "tiny-even-cycle", "delta63-rounding":
			subset = append(subset, w)
		}
	}
	if len(subset) != 5 {
		t.Fatalf("subset selection found %d workloads", len(subset))
	}
	var logged bool
	results := RunMatrix(subset, Options{
		Workers: []int{1, 2},
		Log:     func(format string, args ...any) { logged = true },
	})
	if len(results) != len(subset) {
		t.Fatalf("got %d results for %d workloads", len(results), len(subset))
	}
	if Failed(results) {
		for _, r := range results {
			for _, s := range r.Suites {
				if s.Err != nil {
					t.Errorf("%s/%s: %v", r.Name, s.Suite, s.Err)
				}
			}
		}
		t.Fatal("conformance subset failed")
	}
	if !logged {
		t.Fatal("Options.Log never invoked")
	}
	for _, r := range results {
		if r.Err() != nil {
			t.Fatalf("%s: Err() nonzero on passing workload: %v", r.Name, r.Err())
		}
		if len(r.Suites) == 0 {
			t.Fatalf("%s: no suites ran", r.Name)
		}
	}
	// The rejection row must have run exactly the rejection suite.
	for _, r := range results {
		if r.Name != "delta63-rounding" {
			continue
		}
		if len(r.Suites) != 1 || r.Suites[0].Suite != "pipeline" {
			t.Fatalf("rejection workload ran suites %+v", r.Suites)
		}
		if !strings.Contains(r.Suites[0].Detail, "rejected") {
			t.Fatalf("rejection detail %q", r.Suites[0].Detail)
		}
	}
}

// SkipNegative must drop the corruption controls and nothing else.
func TestRunMatrixSkipNegative(t *testing.T) {
	if testing.Short() {
		t.Skip("conformance run is heavy; skipped under -short")
	}
	var subset []Workload
	for _, w := range QuickMatrix() {
		if w.Name == "dense-blocks" {
			subset = append(subset, w)
		}
	}
	results := RunMatrix(subset, Options{Workers: []int{1}, SkipNegative: true})
	if Failed(results) {
		t.Fatalf("dense-blocks failed: %+v", results)
	}
	for _, s := range results[0].Suites {
		if s.Suite == "negative" {
			t.Fatal("negative suite ran despite SkipNegative")
		}
	}
}
