package invariant

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"deltacoloring/internal/coloring"
	"deltacoloring/internal/core"
	"deltacoloring/internal/graph"
	"deltacoloring/internal/local"
)

func TestViolationErrorAndUnwrap(t *testing.T) {
	inner := errors.New("coloring: vertex 3: uncolored")
	v := &Violation{Phase: "final", Invariant: "coloring/complete", Err: inner}
	msg := v.Error()
	for _, want := range []string{"final", "coloring/complete", "vertex 3"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("violation %q missing %q", msg, want)
		}
	}
	if !errors.Is(v, inner) {
		t.Fatal("Unwrap does not reach the verifier error")
	}
}

func TestHarnessDispatch(t *testing.T) {
	g := graph.Cycle(6)
	h := NewHarness(g)

	// Unrecognized artifacts pass through without records.
	if err := h.Observe("whatever", "not an artifact"); err != nil {
		t.Fatalf("unrecognized artifact errored: %v", err)
	}
	if h.Checks() != 0 {
		t.Fatalf("unrecognized artifact recorded %d checks", h.Checks())
	}

	// A valid coloring snapshot fires the nil-Phases coloring checkers.
	c := coloring.NewPartial(g.N())
	for v := range c.Colors {
		c.Colors[v] = v % 2
	}
	ck := &core.CkptColoring{C: c, NumColors: 2, Complete: true}
	if err := h.Observe("alg3/layers", ck); err != nil {
		t.Fatalf("valid coloring rejected: %v", err)
	}
	if h.Checks() != 2 { // coloring/proper + coloring/complete
		t.Fatalf("got %d checks, want 2", h.Checks())
	}
	recs := h.Records()
	if recs[0].Phase != "alg3/layers" || recs[0].Invariant != "coloring/proper" {
		t.Fatalf("unexpected first record %+v", recs[0])
	}
	if ph := h.Phases(); len(ph) != 1 || ph[0] != "alg3/layers" {
		t.Fatalf("Phases() = %v", ph)
	}

	// A custom registered checker participates in dispatch and its failures
	// come back as *Violation with the right invariant name.
	h.Register(Checker{
		Invariant: "custom/always-bad",
		Phases:    []string{"custom"},
		Check: func(_ *graph.Graph, a any) (bool, error) {
			if _, ok := a.(*core.CkptColoring); !ok {
				return false, nil
			}
			return true, fmt.Errorf("custom: vertex 0: rejected")
		},
	})
	err := h.Observe("custom", ck)
	var viol *Violation
	if !errors.As(err, &viol) || viol.Invariant != "custom/always-bad" || viol.Phase != "custom" {
		t.Fatalf("custom checker violation not surfaced: %v", err)
	}

	// A monochromatic snapshot is rejected by the default registry.
	c.Colors[1] = c.Colors[0]
	err = h.Observe("final", ck)
	if !errors.As(err, &viol) || viol.Phase != "final" {
		t.Fatalf("monochromatic snapshot not rejected: %v", err)
	}
	if !strings.Contains(err.Error(), "edge (") {
		t.Fatalf("violation does not name the edge: %v", err)
	}
}

func TestCorruptArtifacts(t *testing.T) {
	g := graph.Cycle(6)

	// Coloring artifact: Corrupt must flip it from accepted to rejected.
	c := coloring.NewPartial(g.N())
	for v := range c.Colors {
		c.Colors[v] = v % 2
	}
	ck := &core.CkptColoring{C: c, NumColors: 2}
	if err := coloring.VerifyProper(g, ck.C, ck.NumColors); err != nil {
		t.Fatalf("baseline snapshot invalid: %v", err)
	}
	if !Corrupt(ck) {
		t.Fatal("coloring artifact not corruptible")
	}
	if err := coloring.VerifyProper(g, ck.C, ck.NumColors); err == nil {
		t.Fatal("corrupted snapshot still accepted")
	}

	// Empty artifacts are honestly un-corruptible.
	if Corrupt(&core.CkptTriads{}) {
		t.Fatal("empty triads artifact claimed corrupted")
	}
	if Corrupt("unknown") {
		t.Fatal("unknown artifact claimed corrupted")
	}

	// Triad corruption must break verifyTriads on any graph: the damaged
	// triad self-pairs its slack vertex and self-loops do not exist.
	tr := &core.CkptTriads{Triads: []core.Triad{{Slack: 0, PairIn: 1, PairOut: 5}}}
	if err := verifyTriads(g, tr.Triads); err != nil {
		t.Fatalf("baseline triad invalid: %v", err)
	}
	if !Corrupt(tr) {
		t.Fatal("triad artifact not corruptible")
	}
	if err := verifyTriads(g, tr.Triads); err == nil {
		t.Fatal("corrupted triad still accepted")
	}
}

func TestVerifyTriadsBranches(t *testing.T) {
	g := graph.Cycle(8) // vertices i ~ i±1 mod 8
	cases := []struct {
		name    string
		triads  []core.Triad
		wantErr string
	}{
		{"valid disjoint", []core.Triad{{Slack: 0, PairIn: 1, PairOut: 7}, {Slack: 4, PairIn: 3, PairOut: 5}}, ""},
		{"missing slack edge", []core.Triad{{Slack: 0, PairIn: 4, PairOut: 7}}, "missing slack-pair edge"},
		{"missing second edge", []core.Triad{{Slack: 0, PairIn: 1, PairOut: 5}}, "missing slack-pair edge"},
		{"adjacent pair", []core.Triad{{Slack: 1, PairIn: 0, PairOut: 2}, {Slack: 5, PairIn: 4, PairOut: 6}}, ""},
		{"shared vertex", []core.Triad{{Slack: 0, PairIn: 1, PairOut: 7}, {Slack: 2, PairIn: 1, PairOut: 3}}, "shared by triads"},
	}
	// On a cycle, pair vertices two apart are never adjacent, so the
	// "adjacent pair" case needs a chord; build it explicitly.
	b := graph.NewBuilder(8)
	for i := 0; i < 8; i++ {
		b.AddEdge(i, (i+1)%8)
	}
	b.AddEdge(0, 2)
	chorded, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		gg := g
		if tc.name == "adjacent pair" {
			gg = chorded
			tc.wantErr = "pair vertices adjacent"
		}
		err := verifyTriads(gg, tc.triads)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %v does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestCorruptPhaseEndToEnd is the acceptance criterion in miniature:
// deliberately corrupting one intermediate state makes a healthy pipeline
// run fail loudly, naming the phase, the invariant, and the vertex.
func TestCorruptPhaseEndToEnd(t *testing.T) {
	g, _ := graph.EasyCliqueRing(8, 16)
	for _, phase := range []string{"alg1/acd", "alg3/rulingset", "final"} {
		net := local.New(g)
		h := NewHarness(g)
		h.Attach(net)
		h.CorruptPhase(phase)
		_, err := core.ColorDeterministic(net, core.TestParams())
		net.Close()
		var viol *Violation
		if !errors.As(err, &viol) {
			t.Fatalf("corrupting %s: no violation, err=%v", phase, err)
		}
		if viol.Phase != phase {
			t.Fatalf("corrupting %s: violation names phase %s", phase, viol.Phase)
		}
		if viol.Invariant == "" {
			t.Fatalf("corrupting %s: violation names no invariant", phase)
		}
		if !strings.Contains(err.Error(), "vertex") && !strings.Contains(err.Error(), "edge") {
			t.Fatalf("corrupting %s: violation names no vertex or edge: %v", phase, err)
		}
	}
}

// A clean checked run fires checkers across all phases and reports them.
func TestCheckedRunRecordsPhases(t *testing.T) {
	g, _ := graph.EasyCliqueRing(8, 16)
	net := local.New(g)
	defer net.Close()
	h := NewHarness(g)
	h.Attach(net)
	if h.CorruptMissed() {
		t.Fatal("fresh harness reports a corrupt miss")
	}
	res, err := core.ColorDeterministic(net, core.TestParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := ReferenceComplete(g, res.Coloring.Colors, g.MaxDegree()); err != nil {
		t.Fatalf("oracle rejected the pipeline coloring: %v", err)
	}
	if h.Checks() == 0 {
		t.Fatal("no checkers fired")
	}
	phases := h.Phases()
	want := map[string]bool{"alg1/acd": false, "alg1/classify": false, "final": false}
	for _, p := range phases {
		if _, ok := want[p]; ok {
			want[p] = true
		}
	}
	for p, seen := range want {
		if !seen {
			t.Fatalf("phases %v missing %s", phases, p)
		}
	}
}
