package invariant

import (
	"fmt"

	"deltacoloring/internal/graph"
)

// Sequential reference oracles. These deliberately share no code with the
// distributed algorithms or their verifiers: each is a direct O(n+m)-style
// implementation of the guarantee, so a bug in the fast path and a bug in
// its verifier cannot cancel out.

// BruteMaxN is the largest graph the exact Δ-colorability oracle accepts.
const BruteMaxN = 12

// ReferenceProper is the naive properness check: every used color lies in
// [0, numColors) and no edge is monochromatic. colors uses -1 for uncolored.
func ReferenceProper(g *graph.Graph, colors []int, numColors int) error {
	if len(colors) != g.N() {
		return fmt.Errorf("oracle: %d colors for %d vertices", len(colors), g.N())
	}
	for v := 0; v < g.N(); v++ {
		c := colors[v]
		if c == -1 {
			continue
		}
		if c < 0 || c >= numColors {
			return fmt.Errorf("oracle: vertex %d: color %d outside [0,%d)", v, c, numColors)
		}
		for _, w := range g.Neighbors(v) {
			if colors[w] == c {
				return fmt.Errorf("oracle: edge (%d,%d): monochromatic color %d", v, w, c)
			}
		}
	}
	return nil
}

// ReferenceComplete is ReferenceProper plus no uncolored vertices.
func ReferenceComplete(g *graph.Graph, colors []int, numColors int) error {
	for v, c := range colors {
		if c == -1 {
			return fmt.Errorf("oracle: vertex %d: uncolored", v)
		}
	}
	return ReferenceProper(g, colors, numColors)
}

// GreedyColoring is the sequential deg+1 baseline: scan vertices in index
// order, give each the smallest color not used by an already-colored
// neighbor. It always succeeds within Δ+1 colors.
func GreedyColoring(g *graph.Graph) []int {
	colors := make([]int, g.N())
	for v := range colors {
		colors[v] = -1
	}
	used := make([]bool, g.MaxDegree()+2)
	for v := 0; v < g.N(); v++ {
		for i := range used {
			used[i] = false
		}
		for _, w := range g.Neighbors(v) {
			if c := colors[w]; c >= 0 && c < len(used) {
				used[c] = true
			}
		}
		for c := range used {
			if !used[c] {
				colors[v] = c
				break
			}
		}
	}
	return colors
}

// BruteDeltaColoring searches exhaustively for a proper coloring of g with
// max(Δ,1) colors. It returns (coloring, true) when one exists, (nil,
// false) when none does, and panics if g.N() > BruteMaxN — callers gate on
// size.
func BruteDeltaColoring(g *graph.Graph) ([]int, bool) {
	if g.N() > BruteMaxN {
		panic(fmt.Sprintf("oracle: brute force capped at n=%d, got %d", BruteMaxN, g.N()))
	}
	k := g.MaxDegree()
	if k < 1 {
		k = 1
	}
	colors := make([]int, g.N())
	for v := range colors {
		colors[v] = -1
	}
	var rec func(v int) bool
	rec = func(v int) bool {
		if v == g.N() {
			return true
		}
		for c := 0; c < k; c++ {
			ok := true
			for _, w := range g.Neighbors(v) {
				if colors[w] == c {
					ok = false
					break
				}
			}
			if ok {
				colors[v] = c
				if rec(v + 1) {
					return true
				}
				colors[v] = -1
			}
		}
		return false
	}
	if rec(0) {
		return colors, true
	}
	return nil, false
}

// GreedyMIS is the sequential maximal-independent-set reference: scan in
// index order, add each vertex with no earlier neighbor in the set.
func GreedyMIS(g *graph.Graph) []bool {
	in := make([]bool, g.N())
	for v := 0; v < g.N(); v++ {
		ok := true
		for _, w := range g.Neighbors(v) {
			if in[w] {
				ok = false
				break
			}
		}
		in[v] = ok
	}
	return in
}

// ReferenceMIS checks independence and maximality of in by direct scans.
func ReferenceMIS(g *graph.Graph, in []bool) error {
	if len(in) != g.N() {
		return fmt.Errorf("oracle: %d flags for %d vertices", len(in), g.N())
	}
	for v := 0; v < g.N(); v++ {
		dominated := in[v]
		for _, w := range g.Neighbors(v) {
			if in[w] {
				if in[v] {
					return fmt.Errorf("oracle: edge (%d,%d): both in the MIS", v, int(w))
				}
				dominated = true
			}
		}
		if !dominated {
			return fmt.Errorf("oracle: vertex %d: undominated", v)
		}
	}
	return nil
}

// GreedyMatching is the sequential maximal-matching reference over an edge
// subset: scan edges in order, keep those whose endpoints are both free.
func GreedyMatching(g *graph.Graph, edges []graph.Edge) []graph.Edge {
	used := make([]bool, g.N())
	var out []graph.Edge
	for _, e := range edges {
		if !used[e.U] && !used[e.V] {
			used[e.U], used[e.V] = true, true
			out = append(out, e)
		}
	}
	return out
}

// ReferenceMatching checks that matched is a maximal matching within edges
// by direct scans.
func ReferenceMatching(g *graph.Graph, matched, edges []graph.Edge) error {
	used := make([]bool, g.N())
	for _, e := range matched {
		if !g.HasEdge(e.U, e.V) {
			return fmt.Errorf("oracle: edge (%d,%d): not a graph edge", e.U, e.V)
		}
		if used[e.U] || used[e.V] {
			return fmt.Errorf("oracle: edge (%d,%d): endpoint reused", e.U, e.V)
		}
		used[e.U], used[e.V] = true, true
	}
	for _, e := range edges {
		if !used[e.U] && !used[e.V] {
			return fmt.Errorf("oracle: edge (%d,%d): free edge, matching not maximal", e.U, e.V)
		}
	}
	return nil
}
