// Package invariant ("deltacheck") is the unified conformance harness for
// the Δ-coloring pipelines. It registers every Verify* function in the
// repository behind one Checker interface with phase tags, consumes the
// intermediate artifacts the pipelines publish via local.Network.Checkpoint
// at their span boundaries, replays workloads against sequential reference
// oracles, and asserts metamorphic relations (worker count, engine choice,
// fault-plan replay). See DESIGN.md §10 for the contract.
package invariant

import (
	"fmt"
	"sort"
	"sync"

	"deltacoloring/internal/core"
	"deltacoloring/internal/dynamic"
	"deltacoloring/internal/graph"
	"deltacoloring/internal/heg"
	"deltacoloring/internal/local"
	"deltacoloring/internal/loophole"
	"deltacoloring/internal/matching"
	"deltacoloring/internal/repair"
	"deltacoloring/internal/rulingset"
	"deltacoloring/internal/shard"
	"deltacoloring/internal/sinkless"
	"deltacoloring/internal/split"

	"deltacoloring/internal/coloring"
)

// Checker adapts one Verify* function to the harness. A checker fires when
// a checkpoint's phase tag is in Phases (nil matches every phase) and its
// Check recognizes the artifact type.
type Checker struct {
	// Invariant names the guarantee, e.g. "matching/maximal".
	Invariant string
	// Phases lists the span names whose checkpoints this checker consumes;
	// nil means every phase publishing a recognized artifact.
	Phases []string
	// Check validates one artifact against the run's root graph g. The
	// boolean reports whether the artifact type was recognized at all; a
	// non-nil error is an invariant violation.
	Check func(g *graph.Graph, artifact any) (bool, error)
}

// Violation is the harness's error type: it names the pipeline phase and
// the invariant that failed, wrapping the verifier's own (vertex- or
// edge-naming) error.
type Violation struct {
	Phase     string
	Invariant string
	Err       error
}

func (v *Violation) Error() string {
	return fmt.Sprintf("invariant: phase %s: %s: %v", v.Phase, v.Invariant, v.Err)
}

func (v *Violation) Unwrap() error { return v.Err }

// Record is one checker firing.
type Record struct {
	Phase     string
	Invariant string
}

// Harness validates one run: attach it to the run's Network and every
// checkpoint the pipeline publishes is dispatched to the registered
// checkers. The zero value is not usable; call NewHarness.
type Harness struct {
	g        *graph.Graph
	checkers []Checker

	mu      sync.Mutex
	records []Record
	// corrupt names a phase whose next artifact is deliberately damaged
	// before checking (the negative-control self-test); corruptMiss records
	// that the artifact was empty and could not be damaged.
	corrupt     string
	corruptMiss bool
}

// NewHarness returns a harness over the run's root graph with the default
// checker registry (every Verify* in the repository).
func NewHarness(g *graph.Graph) *Harness {
	return &Harness{g: g, checkers: DefaultCheckers()}
}

// Register appends extra checkers.
func (h *Harness) Register(cs ...Checker) { h.checkers = append(h.checkers, cs...) }

// Attach installs the harness as net's check hook.
func (h *Harness) Attach(net *local.Network) { net.SetCheckHook(h.Observe) }

// CorruptPhase arms the negative control: the next artifact published under
// the given phase tag is damaged in place before checking, so a healthy
// pipeline run must end in a *Violation naming that phase.
func (h *Harness) CorruptPhase(phase string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.corrupt = phase
}

// Observe is the local.Network check hook: it dispatches the artifact to
// every matching checker and converts the first failure into a *Violation.
func (h *Harness) Observe(phase string, artifact any) error {
	h.mu.Lock()
	if h.corrupt == phase {
		h.corrupt = ""
		h.mu.Unlock()
		if !Corrupt(artifact) {
			h.mu.Lock()
			h.corruptMiss = true
			h.mu.Unlock()
		}
	} else {
		h.mu.Unlock()
	}
	for i := range h.checkers {
		c := &h.checkers[i]
		if len(c.Phases) > 0 && !contains(c.Phases, phase) {
			continue
		}
		ok, err := c.Check(h.g, artifact)
		if !ok {
			continue
		}
		if err != nil {
			return &Violation{Phase: phase, Invariant: c.Invariant, Err: err}
		}
		h.mu.Lock()
		h.records = append(h.records, Record{Phase: phase, Invariant: c.Invariant})
		h.mu.Unlock()
	}
	return nil
}

// CorruptMissed reports whether an armed corruption found only an empty
// artifact it could not damage.
func (h *Harness) CorruptMissed() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.corruptMiss
}

// Checks returns the number of checker firings so far.
func (h *Harness) Checks() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.records)
}

// Records returns a copy of the checker firings in order.
func (h *Harness) Records() []Record {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]Record, len(h.records))
	copy(out, h.records)
	return out
}

// Phases returns the sorted distinct phase tags that produced at least one
// check.
func (h *Harness) Phases() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	set := map[string]bool{}
	for _, r := range h.records {
		set[r.Phase] = true
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

// DefaultCheckers returns the full registry: every Verify* function in the
// repository, tagged with the pipeline phases that publish its artifact.
func DefaultCheckers() []Checker {
	return []Checker{
		{
			Invariant: "acd/lemma2",
			Phases:    []string{"alg1/acd", "alg4/acd", "simple/acd", "ruling/acd"},
			Check: func(g *graph.Graph, a any) (bool, error) {
				ck, ok := a.(*core.CkptACD)
				if !ok {
					return false, nil
				}
				return true, ck.A.Verify(g)
			},
		},
		{
			Invariant: "loophole/lemma9",
			Phases:    []string{"alg1/classify", "alg4/classify", "simple/classify", "ruling/classify"},
			Check: func(g *graph.Graph, a any) (bool, error) {
				ck, ok := a.(*core.CkptClassification)
				if !ok {
					return false, nil
				}
				return true, loophole.VerifyHard(g, ck.A, ck.Cl)
			},
		},
		{
			Invariant: "matching/maximal",
			Phases:    []string{"alg2/matching"},
			Check: func(g *graph.Graph, a any) (bool, error) {
				ck, ok := a.(*core.CkptMatching)
				if !ok {
					return false, nil
				}
				return true, matching.Verify(g, ck.Matched, ck.Within)
			},
		},
		{
			Invariant: "heg/grab",
			Phases:    []string{"alg2/heg"},
			Check: func(g *graph.Graph, a any) (bool, error) {
				ck, ok := a.(*core.CkptHEG)
				if !ok {
					return false, nil
				}
				return true, heg.Verify(ck.H, ck.Grab)
			},
		},
		{
			Invariant: "split/corollary22",
			Phases:    []string{"alg2/sparsify"},
			Check: func(g *graph.Graph, a any) (bool, error) {
				ck, ok := a.(*core.CkptSplit)
				if !ok {
					return false, nil
				}
				return true, split.VerifyParts(ck.N, ck.Edges, ck.Part, ck.Levels, ck.Eps)
			},
		},
		{
			Invariant: "triads/definition14",
			Phases:    []string{"alg2/triads", "simple/triads"},
			Check: func(g *graph.Graph, a any) (bool, error) {
				ck, ok := a.(*core.CkptTriads)
				if !ok {
					return false, nil
				}
				return true, verifyTriads(g, ck.Triads)
			},
		},
		{
			Invariant: "coloring/proper",
			// Any phase publishing a coloring snapshot: alg2/pairs,
			// alg2/rest, alg3/layers, alg4/preshatter, alg4/happylayers,
			// final.
			Check: func(g *graph.Graph, a any) (bool, error) {
				ck, ok := a.(*core.CkptColoring)
				if !ok {
					return false, nil
				}
				return true, coloring.VerifyProper(g, ck.C, ck.NumColors)
			},
		},
		{
			Invariant: "coloring/complete",
			Check: func(g *graph.Graph, a any) (bool, error) {
				ck, ok := a.(*core.CkptColoring)
				if !ok || !ck.Complete {
					return false, nil
				}
				return true, coloring.VerifyComplete(g, ck.C, ck.NumColors)
			},
		},
		{
			Invariant: "rulingset/ruling",
			Phases:    []string{"alg3/rulingset", "ruling/rulingset"},
			Check: func(g *graph.Graph, a any) (bool, error) {
				ck, ok := a.(*core.CkptRulingSet)
				if !ok {
					return false, nil
				}
				// The ruling set lives on a virtual graph (the loophole
				// graph G_L, or the hard-clique graph H on the
				// ruling-subgraph route), so the artifact carries its own
				// graph.
				if ck.R == 1 {
					return true, rulingset.VerifyMIS(ck.G, ck.In)
				}
				return true, rulingset.VerifyRulingSet(ck.G, ck.In, ck.R)
			},
		},
		{
			Invariant: "sinkless/k-out",
			Phases:    []string{"simple/orientation"},
			Check: func(g *graph.Graph, a any) (bool, error) {
				ck, ok := a.(*core.CkptOrientation)
				if !ok {
					return false, nil
				}
				// The orientation lives on the virtual clique graph H.
				return true, sinkless.VerifyKOut(ck.G, ck.O, ck.K)
			},
		},
		{
			Invariant: "shard/edge-cut",
			Phases:    []string{"shard/partition"},
			Check: func(g *graph.Graph, a any) (bool, error) {
				p, ok := a.(*shard.Partition)
				if !ok {
					return false, nil
				}
				return true, shard.VerifyPartition(g, p)
			},
		},
		{
			Invariant: "repair/complete",
			Phases:    []string{"repair"},
			Check: func(g *graph.Graph, a any) (bool, error) {
				ck, ok := a.(*repair.Snapshot)
				if !ok {
					return false, nil
				}
				c := coloring.Partial{Colors: ck.Colors}
				return true, coloring.VerifyComplete(g, &c, ck.NumColors)
			},
		},
		{
			Invariant: "dynamic/maintained-complete",
			Phases:    []string{"dynamic/maintain"},
			Check: func(g *graph.Graph, a any) (bool, error) {
				ck, ok := a.(*dynamic.Snapshot)
				if !ok {
					return false, nil
				}
				// The store's graph evolves across batches, so the snapshot
				// carries its own graph; the run's root graph is only the
				// initial version.
				c := coloring.Partial{Colors: ck.Colors}
				return true, coloring.VerifyComplete(ck.G, &c, ck.NumColors)
			},
		},
	}
}

// verifyTriads checks Definition 14 and Lemma 15(ii) directly: both pair
// vertices neighbor the slack vertex, the pair is non-adjacent, and triads
// are vertex-disjoint.
func verifyTriads(g *graph.Graph, triads []core.Triad) error {
	used := map[int]int{}
	for i, tr := range triads {
		if !g.HasEdge(tr.Slack, tr.PairIn) {
			return fmt.Errorf("triads: edge (%d,%d): missing slack-pair edge", tr.Slack, tr.PairIn)
		}
		if !g.HasEdge(tr.Slack, tr.PairOut) {
			return fmt.Errorf("triads: edge (%d,%d): missing slack-pair edge", tr.Slack, tr.PairOut)
		}
		if g.HasEdge(tr.PairIn, tr.PairOut) {
			return fmt.Errorf("triads: edge (%d,%d): pair vertices adjacent", tr.PairIn, tr.PairOut)
		}
		for _, v := range [3]int{tr.Slack, tr.PairIn, tr.PairOut} {
			if j, dup := used[v]; dup {
				return fmt.Errorf("triads: vertex %d: shared by triads %d and %d", v, j, i)
			}
			used[v] = i
		}
	}
	return nil
}

// Corrupt damages an artifact in place so that its checker must report a
// violation; the negative-control self-test uses it to prove the harness
// actually fails loudly. Unknown artifact types are left untouched and the
// function reports false.
func Corrupt(artifact any) bool {
	switch ck := artifact.(type) {
	case *core.CkptACD:
		if len(ck.A.CliqueOf) > 0 {
			ck.A.CliqueOf[0] = len(ck.A.Cliques) + 1
			return true
		}
	case *core.CkptClassification:
		// Every easy clique must carry a witness loophole; dropping one is
		// detected regardless of the instance's hard/easy mix.
		for ci, easy := range ck.Cl.Easy {
			if easy {
				ck.Cl.Witness[ci] = nil
				return true
			}
		}
		if len(ck.Cl.Easy) > 0 {
			// All-hard instance: declare one easy with no witness.
			ck.Cl.Easy[0] = true
			ck.Cl.Witness[0] = nil
			return true
		}
	case *core.CkptMatching:
		if len(ck.Matched) > 0 {
			ck.Matched = append(ck.Matched, ck.Matched[0])
			return true
		}
	case *core.CkptHEG:
		if len(ck.Grab) > 0 {
			ck.Grab[0] = len(ck.H.Edges)
			return true
		}
	case *core.CkptSplit:
		if len(ck.Part) > 0 {
			ck.Part[0] = 1 << ck.Levels
			return true
		}
	case *core.CkptTriads:
		if len(ck.Triads) > 0 {
			ck.Triads[0].PairIn = ck.Triads[0].Slack
			return true
		}
	case *core.CkptColoring:
		if len(ck.C.Colors) > 0 {
			ck.C.Colors[0] = ck.NumColors
			return true
		}
	case *core.CkptRulingSet:
		if len(ck.In) > 0 {
			for i := range ck.In {
				ck.In[i] = false
			}
			return true
		}
	case *core.CkptOrientation:
		if len(ck.O.Tail) > 0 {
			// Flip every edge of one tail's vertex so it goes deficient.
			t := ck.O.Tail[0]
			for i, e := range ck.O.Edges {
				if ck.O.Tail[i] == t {
					ck.O.Tail[i] = e.U + e.V - t
				}
			}
			return true
		}
	case *shard.Partition:
		// Reassign one vertex's owner without updating the parts: the
		// exactly-one-ownership invariant breaks. A 1-shard partition has no
		// other owner to blame, so it cannot be damaged this way.
		if ck.K > 1 && len(ck.Owner) > 0 {
			ck.Owner[0] = (ck.Owner[0] + 1) % int32(ck.K)
			return true
		}
	case *repair.Snapshot:
		if len(ck.Colors) > 0 {
			ck.Colors[0] = ck.NumColors
			return true
		}
	case *dynamic.Snapshot:
		if len(ck.Colors) > 0 {
			ck.Colors[0] = ck.NumColors
			return true
		}
	}
	return false
}
