package invariant

import (
	"errors"
	"strings"
	"testing"

	"deltacoloring/internal/acd"
	"deltacoloring/internal/core"
	"deltacoloring/internal/graph"
	"deltacoloring/internal/heg"
	"deltacoloring/internal/local"
	"deltacoloring/internal/loophole"
	"deltacoloring/internal/repair"
	"deltacoloring/internal/sinkless"
)

func TestOptionsWorkers(t *testing.T) {
	// Defaults: non-empty and deduplicated.
	def := Options{}.workers()
	if len(def) == 0 || def[0] != 1 {
		t.Fatalf("default workers = %v", def)
	}
	// Explicit lists: clamp below 1, drop duplicates, keep order.
	got := Options{Workers: []int{0, 2, 2, 1}}.workers()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("workers([0,2,2,1]) = %v, want [1 2]", got)
	}
}

func TestWorkloadResultErrAndFailed(t *testing.T) {
	good := WorkloadResult{Name: "ok", Suites: []SuiteResult{{Suite: "pipeline"}}}
	bad := WorkloadResult{Name: "bad", Suites: []SuiteResult{
		{Suite: "pipeline"},
		{Suite: "oracle", Err: errors.New("boom")},
	}}
	if err := good.Err(); err != nil {
		t.Fatalf("clean workload errored: %v", err)
	}
	err := bad.Err()
	if err == nil || !strings.Contains(err.Error(), "bad/oracle") {
		t.Fatalf("failing workload error %v does not name workload/suite", err)
	}
	if Failed([]WorkloadResult{good}) {
		t.Fatal("Failed true on clean results")
	}
	if !Failed([]WorkloadResult{good, bad}) {
		t.Fatal("Failed false on failing results")
	}
}

func TestSameRunBranches(t *testing.T) {
	base := checkedRun{
		rounds: 3,
		colors: []int{1, 2, 0},
		spans:  []local.Span{{Name: "acd", Rounds: 2}, {Name: "final", Rounds: 1}},
		checks: 5,
	}
	same := base
	same.colors = append([]int(nil), base.colors...)
	same.spans = append([]local.Span(nil), base.spans...)
	if err := sameRun(base, same); err != nil {
		t.Fatalf("identical runs differ: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(r *checkedRun)
		want   string
	}{
		{"rounds", func(r *checkedRun) { r.rounds = 4 }, "rounds"},
		{"colors", func(r *checkedRun) { r.colors = []int{1, 2, 1} }, "vertex 2"},
		{"span count", func(r *checkedRun) { r.spans = r.spans[:1] }, "spans"},
		{"span schedule", func(r *checkedRun) {
			r.spans = []local.Span{{Name: "acd", Rounds: 9}, {Name: "final", Rounds: 1}}
		}, "span 0"},
		{"checks", func(r *checkedRun) { r.checks = 6 }, "checks"},
	}
	for _, tc := range cases {
		run := base
		run.colors = append([]int(nil), base.colors...)
		run.spans = append([]local.Span(nil), base.spans...)
		tc.mutate(&run)
		err := sameRun(base, run)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestSameSliceHelpers(t *testing.T) {
	if !sameStrings([]string{"a", "b"}, []string{"a", "b"}) ||
		sameStrings([]string{"a"}, []string{"b"}) ||
		sameStrings([]string{"a"}, nil) {
		t.Fatal("sameStrings misbehaves")
	}
	if !sameInts([]int{1, 2}, []int{1, 2}) ||
		sameInts([]int{1, 2}, []int{1, 3}) ||
		sameInts([]int{1}, nil) {
		t.Fatal("sameInts misbehaves")
	}
}

// TestSuiteFailurePaths drives each suite with a workload that must fail
// (the Δ = 63 Lemma-11 rejection row re-labeled as an ordinary pipeline
// workload) and with a rejection row whose expectation is wrong, covering
// the suites' error plumbing.
func TestSuiteFailurePaths(t *testing.T) {
	if testing.Short() {
		t.Skip("failure-path runs build the Δ=63 instance; skipped under -short")
	}
	var reject, ring Workload
	for _, w := range Matrix() {
		switch w.Name {
		case "delta63-rounding":
			reject = w
		case "clique-ring":
			ring = w
		}
	}
	if reject.Graph == nil || ring.Graph == nil {
		t.Fatal("matrix rows missing")
	}

	failing := reject
	failing.ExpectErr = "" // treat the must-fail row as a plain pipeline workload
	if s := pipelineSuite(failing); s.Err == nil {
		t.Error("pipelineSuite accepted a failing pipeline")
	}
	if s := metamorphicSuite(failing, Options{Workers: []int{1}}); s.Err == nil {
		t.Error("metamorphicSuite accepted a failing base run")
	}
	if s := faultReplaySuite(failing); s.Err == nil {
		t.Error("faultReplaySuite accepted a failing base run")
	}
	if s := negativeSuite(failing, Options{}); s.Err == nil {
		t.Error("negativeSuite accepted a failing base run")
	}

	wrong := reject
	wrong.ExpectErr = "no such failure text"
	s := rejectionSuite(wrong)
	if s.Err == nil || !strings.Contains(s.Err.Error(), "expected failure") {
		t.Errorf("rejectionSuite with wrong expectation: %v", s.Err)
	}
	healthy := ring
	healthy.ExpectErr = "anything"
	s = rejectionSuite(healthy)
	if s.Err == nil || !strings.Contains(s.Err.Error(), "run succeeded") {
		t.Errorf("rejectionSuite on a healthy workload: %v", s.Err)
	}
}

// TestCorruptRemainingArtifacts pins the Corrupt branches the end-to-end
// negative controls do not reach, including every empty-artifact refusal.
func TestCorruptRemainingArtifacts(t *testing.T) {
	g := graph.Path(4)

	// Matching: duplicating an edge reuses both endpoints.
	m := &core.CkptMatching{Matched: []graph.Edge{{U: 0, V: 1}}, Within: g.Edges()}
	if !Corrupt(m) || len(m.Matched) != 2 {
		t.Fatalf("matching corruption: %+v", m.Matched)
	}
	if Corrupt(&core.CkptMatching{}) {
		t.Fatal("empty matching claimed corrupted")
	}

	// HEG: the grabbed index is pushed out of range.
	h := &core.CkptHEG{H: &heg.Hypergraph{NumVertices: 2, Edges: [][]int{{0, 1}}}, Grab: []int{0}}
	if !Corrupt(h) || h.Grab[0] != 1 {
		t.Fatalf("heg corruption: %+v", h.Grab)
	}
	if Corrupt(&core.CkptHEG{H: &heg.Hypergraph{}}) {
		t.Fatal("empty heg claimed corrupted")
	}

	// Split: part index pushed outside [0, 2^levels).
	sp := &core.CkptSplit{N: 2, Edges: []graph.Edge{{U: 0, V: 1}}, Part: []int{0}, Levels: 0, Eps: 0.1}
	if !Corrupt(sp) || sp.Part[0] != 1 {
		t.Fatalf("split corruption: %+v", sp.Part)
	}
	if Corrupt(&core.CkptSplit{}) {
		t.Fatal("empty split claimed corrupted")
	}

	// Ruling set: zeroing the membership leaves everything undominated.
	rs := &core.CkptRulingSet{G: g, In: []bool{true, false, true, false}, R: 1}
	if !Corrupt(rs) {
		t.Fatal("ruling set not corruptible")
	}
	for _, in := range rs.In {
		if in {
			t.Fatal("ruling set corruption kept a member")
		}
	}
	if Corrupt(&core.CkptRulingSet{}) {
		t.Fatal("empty ruling set claimed corrupted")
	}

	// Orientation: all out-edges of one vertex are flipped, starving it. The
	// verifier only constrains vertices of degree >= 3k, so use a clique.
	k4 := graph.Complete(4)
	orient, err := sinkless.Orient(local.New(k4))
	if err != nil {
		t.Fatal(err)
	}
	o := &core.CkptOrientation{G: k4, O: orient, K: 1}
	if err := sinkless.VerifyKOut(k4, o.O, 1); err != nil {
		t.Fatalf("baseline orientation invalid: %v", err)
	}
	if !Corrupt(o) {
		t.Fatal("orientation not corruptible")
	}
	if err := sinkless.VerifyKOut(k4, o.O, 1); err == nil {
		t.Fatal("corrupted orientation still accepted")
	}
	if Corrupt(&core.CkptOrientation{O: &sinkless.Orientation{}}) {
		t.Fatal("empty orientation claimed corrupted")
	}

	// Classification: an easy clique loses its witness; an all-hard instance
	// gains a fake easy clique instead.
	withEasy := &core.CkptClassification{Cl: &loophole.Classification{
		Easy:    []bool{false, true},
		Witness: []*loophole.Loophole{nil, {}},
	}}
	if !Corrupt(withEasy) || withEasy.Cl.Witness[1] != nil {
		t.Fatal("easy-clique witness not dropped")
	}
	allHard := &core.CkptClassification{Cl: &loophole.Classification{
		Easy:    []bool{false},
		Witness: []*loophole.Loophole{nil},
	}}
	if !Corrupt(allHard) || !allHard.Cl.Easy[0] {
		t.Fatal("all-hard instance not given a fake easy clique")
	}
	if Corrupt(&core.CkptClassification{Cl: &loophole.Classification{}}) {
		t.Fatal("empty classification claimed corrupted")
	}

	// ACD and repair snapshots: empty refusals plus the snapshot palette bump.
	if Corrupt(&core.CkptACD{A: &acd.ACD{}}) {
		t.Fatal("empty acd claimed corrupted")
	}
	snap := &repair.Snapshot{Colors: []int{0, 1, 0, 1}, NumColors: 2}
	if !Corrupt(snap) || snap.Colors[0] != 2 {
		t.Fatalf("snapshot corruption: %+v", snap.Colors)
	}
	if Corrupt(&repair.Snapshot{}) {
		t.Fatal("empty snapshot claimed corrupted")
	}
}

// TestCheckerDispatchBranches exercises the per-checker artifact-type guards
// and the ruling-set radius split in the default registry.
func TestCheckerDispatchBranches(t *testing.T) {
	g := graph.Path(4)
	h := NewHarness(g)

	// A wrong-typed artifact at every tagged phase is ignored by the phase's
	// checker rather than misread.
	for _, phase := range []string{
		"alg1/acd", "alg1/classify", "alg2/matching", "alg2/heg",
		"alg2/sparsify", "alg2/triads", "alg3/rulingset",
		"simple/orientation", "repair",
	} {
		if err := h.Observe(phase, "bogus artifact"); err != nil {
			t.Fatalf("%s: wrong-typed artifact errored: %v", phase, err)
		}
	}
	if h.Checks() != 0 {
		t.Fatalf("wrong-typed artifacts fired %d checks", h.Checks())
	}

	// R == 1 dispatches to the MIS verifier, R > 1 to the ruling-set one.
	mis := &core.CkptRulingSet{G: g, In: []bool{true, false, true, false}, R: 1}
	if err := h.Observe("alg3/rulingset", mis); err != nil {
		t.Fatalf("valid MIS artifact rejected: %v", err)
	}
	deep := &core.CkptRulingSet{G: g, In: []bool{true, false, false, true}, R: 2}
	if err := h.Observe("alg3/rulingset", deep); err != nil {
		t.Fatalf("valid 2-ruling-set artifact rejected: %v", err)
	}
	bad := &core.CkptRulingSet{G: g, In: []bool{true, true, false, false}, R: 1}
	var viol *Violation
	if err := h.Observe("alg3/rulingset", bad); !errors.As(err, &viol) ||
		viol.Invariant != "rulingset/ruling" {
		t.Fatalf("adjacent MIS members not rejected: %v", err)
	}

	// A repair snapshot is checked as a complete coloring over the root graph.
	snap := &repair.Snapshot{Colors: []int{0, 1, 0, 1}, NumColors: 2}
	if err := h.Observe("repair", snap); err != nil {
		t.Fatalf("valid repair snapshot rejected: %v", err)
	}
	snap.Colors[0] = 1
	if err := h.Observe("repair", snap); !errors.As(err, &viol) ||
		viol.Invariant != "repair/complete" {
		t.Fatalf("monochromatic repair snapshot accepted: %v", err)
	}
}
