package invariant

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"

	"deltacoloring/internal/backend"
	"deltacoloring/internal/coloring"
	"deltacoloring/internal/core"
	"deltacoloring/internal/faults"
	"deltacoloring/internal/graph"
	"deltacoloring/internal/local"
	"deltacoloring/internal/matching"
	"deltacoloring/internal/repair"
	"deltacoloring/internal/rulingset"
)

// Options configures RunMatrix.
type Options struct {
	// Workers are the worker counts the metamorphic suite sweeps; the
	// default is {1, 4, NumCPU}.
	Workers []int
	// SkipNegative disables the per-phase corruption controls (they re-run
	// the pipeline once per observed phase).
	SkipNegative bool
	// Log, when non-nil, receives progress lines.
	Log func(format string, args ...any)
}

func (o Options) workers() []int {
	ws := o.Workers
	if len(ws) == 0 {
		ws = []int{1, 4, runtime.NumCPU()}
	}
	seen := map[int]bool{}
	var out []int
	for _, w := range ws {
		if w < 1 {
			w = 1
		}
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}

func (o Options) logf(format string, args ...any) {
	if o.Log != nil {
		o.Log(format, args...)
	}
}

// SuiteResult is the outcome of one suite on one workload.
type SuiteResult struct {
	Suite  string // "pipeline", "oracle", "metamorphic", "faults", "negative"
	Detail string
	Err    error
}

// WorkloadResult aggregates the suites of one matrix row.
type WorkloadResult struct {
	Name   string
	Suites []SuiteResult
}

// Err returns the first suite failure, or nil.
func (r *WorkloadResult) Err() error {
	for _, s := range r.Suites {
		if s.Err != nil {
			return fmt.Errorf("%s/%s: %w", r.Name, s.Suite, s.Err)
		}
	}
	return nil
}

// Failed reports whether any workload has a failing suite.
func Failed(results []WorkloadResult) bool {
	for i := range results {
		if results[i].Err() != nil {
			return true
		}
	}
	return false
}

// algo identifies one registered backend under test.
type algo struct {
	name string
	b    backend.Backend
}

// algosOf returns the matrix row's pipelines: every registered backend the
// workload opts into, in registry (sorted-name) order, so "det" always
// leads when enabled. A newly registered backend gains matrix coverage by
// setting the matching Workload flag — the suites themselves are
// backend-agnostic.
func algosOf(w Workload) []algo {
	enabled := map[string]bool{
		"det":    w.Det,
		"rand":   w.Rand,
		"ruling": w.Ruling,
		"simple": w.Simple,
	}
	var out []algo
	for _, name := range backend.Names() {
		if !enabled[name] {
			continue
		}
		b, err := backend.Get(name)
		if err != nil {
			continue
		}
		out = append(out, algo{name: name, b: b})
	}
	return out
}

// checkedRun is one harness-instrumented pipeline execution.
type checkedRun struct {
	colors      []int
	rounds      int
	spans       []local.Span
	checks      int
	phases      []string
	corruptMiss bool
	err         error
}

func runChecked(w Workload, a algo, workers int, frontier bool, corrupt string) checkedRun {
	h := NewHarness(w.Graph)
	if corrupt != "" {
		h.CorruptPhase(corrupt)
	}
	rp := core.TestRandomizedParams()
	rp.Params = w.Params
	res, err := a.b.Color(nil, w.Graph,
		backend.Params{Det: w.Params, Rand: rp, Seed: w.Seed},
		&backend.RunOptions{Workers: workers, DisableFrontier: !frontier, NetHook: h.Attach})
	out := checkedRun{checks: h.Checks(), phases: h.Phases(),
		corruptMiss: h.CorruptMissed(), err: err}
	if res != nil {
		out.rounds = res.Rounds
		out.spans = res.Spans
		out.colors = append([]int(nil), res.Colors...)
	}
	return out
}

// RunMatrix executes every suite on every workload: harness-instrumented
// pipeline runs with all phase checkers, sequential-oracle differentials,
// metamorphic relations (worker counts, dense vs frontier engine, ID
// permutation, fault-plan replay), and per-phase corruption controls.
func RunMatrix(ws []Workload, opt Options) []WorkloadResult {
	results := make([]WorkloadResult, 0, len(ws))
	for _, w := range ws {
		opt.logf("workload %s: n=%d Δ=%d", w.Name, w.Graph.N(), w.Graph.MaxDegree())
		r := WorkloadResult{Name: w.Name}
		if w.Primitive {
			r.Suites = append(r.Suites, primitiveSuite(w), oracleSuite(w), shardedSuite(w, opt))
			results = append(results, r)
			continue
		}
		if w.ExpectErr != "" {
			r.Suites = append(r.Suites, rejectionSuite(w))
			results = append(results, r)
			continue
		}
		r.Suites = append(r.Suites, pipelineSuite(w), oracleSuite(w), metamorphicSuite(w, opt), shardedSuite(w, opt))
		if w.Det {
			r.Suites = append(r.Suites, faultReplaySuite(w))
			if !opt.SkipNegative {
				r.Suites = append(r.Suites, negativeSuite(w, opt))
			}
		}
		results = append(results, r)
	}
	return results
}

// pipelineSuite runs every enabled pipeline once with the harness attached
// and cross-checks the final coloring against the independent reference.
func pipelineSuite(w Workload) SuiteResult {
	s := SuiteResult{Suite: "pipeline"}
	delta := w.Graph.MaxDegree()
	totalChecks := 0
	var names []string
	for _, a := range algosOf(w) {
		names = append(names, a.name)
		run := runChecked(w, a, 1, true, "")
		if run.err != nil {
			s.Err = fmt.Errorf("%s: %w", a.name, run.err)
			return s
		}
		if run.checks == 0 {
			s.Err = fmt.Errorf("%s: harness observed no checkpoints", a.name)
			return s
		}
		if !contains(run.phases, "final") {
			s.Err = fmt.Errorf("%s: no final checkpoint (phases %v)", a.name, run.phases)
			return s
		}
		if err := ReferenceComplete(w.Graph, run.colors, delta); err != nil {
			s.Err = fmt.Errorf("%s: reference check: %w", a.name, err)
			return s
		}
		totalChecks += run.checks
	}
	s.Detail = fmt.Sprintf("%d checks (%s)", totalChecks, strings.Join(names, ", "))
	return s
}

// rejectionSuite verifies that a must-fail workload is refused with the
// expected invariant error (the Δ = 63 Lemma-11 rounding edge).
func rejectionSuite(w Workload) SuiteResult {
	s := SuiteResult{Suite: "pipeline"}
	run := runChecked(w, algosOf(w)[0], 1, true, "")
	if run.err == nil {
		s.Err = fmt.Errorf("expected failure containing %q, run succeeded", w.ExpectErr)
		return s
	}
	if !strings.Contains(run.err.Error(), w.ExpectErr) {
		s.Err = fmt.Errorf("expected failure containing %q, got: %v", w.ExpectErr, run.err)
		return s
	}
	s.Detail = "rejected: " + w.ExpectErr
	return s
}

// primitiveSuite runs the distributed MIS and maximal-matching building
// blocks and checks them with both the repo verifiers and the naive
// references.
func primitiveSuite(w Workload) SuiteResult {
	s := SuiteResult{Suite: "primitives"}
	g := w.Graph
	net := local.New(g)
	defer net.Close()
	in, err := rulingset.MIS(net)
	if err != nil {
		s.Err = fmt.Errorf("MIS: %w", err)
		return s
	}
	if err := rulingset.VerifyMIS(g, in); err != nil {
		s.Err = err
		return s
	}
	if err := ReferenceMIS(g, in); err != nil {
		s.Err = fmt.Errorf("MIS disagrees with reference: %w", err)
		return s
	}
	m, err := matching.Maximal(net)
	if err != nil {
		s.Err = fmt.Errorf("matching: %w", err)
		return s
	}
	if err := matching.Verify(g, m, g.Edges()); err != nil {
		s.Err = err
		return s
	}
	if err := ReferenceMatching(g, m, g.Edges()); err != nil {
		s.Err = fmt.Errorf("matching disagrees with reference: %w", err)
		return s
	}
	s.Detail = fmt.Sprintf("MIS %d members, matching %d edges", countTrue(in), len(m))
	return s
}

// oracleSuite cross-checks the repository verifiers against the sequential
// oracles: the oracle outputs must pass both, and corrupted copies must fail
// both.
func oracleSuite(w Workload) SuiteResult {
	s := SuiteResult{Suite: "oracle"}
	g := w.Graph
	delta := g.MaxDegree()

	// Greedy deg+1 baseline: accepted by verifier and reference alike.
	greedy := GreedyColoring(g)
	gp := &coloring.Partial{Colors: greedy}
	if err := coloring.VerifyComplete(g, gp, delta+1); err != nil {
		s.Err = fmt.Errorf("verifier rejects greedy oracle: %w", err)
		return s
	}
	if err := ReferenceComplete(g, greedy, delta+1); err != nil {
		s.Err = fmt.Errorf("reference rejects greedy oracle: %w", err)
		return s
	}
	// Corrupted copy: both must reject, and for the same vertex.
	if g.N() > 0 && g.MaxDegree() > 0 {
		bad := append([]int(nil), greedy...)
		v := hottestVertex(g)
		bad[v] = bad[int(g.Neighbors(v)[0])]
		bp := &coloring.Partial{Colors: bad}
		verr := coloring.VerifyComplete(g, bp, delta+1)
		rerr := ReferenceComplete(g, bad, delta+1)
		if verr == nil || rerr == nil {
			s.Err = fmt.Errorf("corrupted greedy coloring accepted (verifier=%v, reference=%v)", verr, rerr)
			return s
		}
	}
	detail := "greedy ok"

	// Exact Δ-colorability on miniatures: the brute-force verdict must be
	// consistent with the verifiers and with Brooks' theorem classes.
	if w.Brute {
		brute, ok := BruteDeltaColoring(g)
		if ok {
			k := delta
			if k < 1 {
				k = 1
			}
			bp := &coloring.Partial{Colors: brute}
			if err := coloring.VerifyComplete(g, bp, k); err != nil {
				s.Err = fmt.Errorf("verifier rejects brute-force Δ-coloring: %w", err)
				return s
			}
			if err := ReferenceComplete(g, brute, k); err != nil {
				s.Err = fmt.Errorf("reference rejects brute-force Δ-coloring: %w", err)
				return s
			}
			detail = "greedy+brute ok (Δ-colorable)"
		} else {
			// No Δ-coloring exists: Brooks says g contains a (Δ+1)-clique
			// or is an odd cycle, and the greedy baseline must actually
			// spend the (Δ+1)-th color.
			spent := false
			for _, c := range greedy {
				if c == delta {
					spent = true
					break
				}
			}
			if !spent {
				s.Err = fmt.Errorf("brute force says not Δ-colorable but greedy used only %d colors", delta)
				return s
			}
			detail = "greedy+brute ok (Brooks class)"
		}
	}
	s.Detail = detail
	return s
}

// metamorphicSuite asserts the determinism contracts: bit-identical colors,
// rounds, and span schedules across worker counts and engines, and
// round-schedule invariance under ID permutation.
func metamorphicSuite(w Workload, opt Options) SuiteResult {
	s := SuiteResult{Suite: "metamorphic"}
	variants := 0
	for _, a := range algosOf(w) {
		base := runChecked(w, a, 1, true, "")
		if base.err != nil {
			s.Err = fmt.Errorf("%s: base run: %w", a.name, base.err)
			return s
		}
		for _, workers := range opt.workers() {
			for _, frontier := range []bool{true, false} {
				if workers == 1 && frontier {
					continue // the base run
				}
				run := runChecked(w, a, workers, frontier, "")
				label := fmt.Sprintf("%s workers=%d frontier=%v", a.name, workers, frontier)
				if run.err != nil {
					s.Err = fmt.Errorf("%s: %w", label, run.err)
					return s
				}
				if err := sameRun(base, run); err != nil {
					s.Err = fmt.Errorf("%s: %w", label, err)
					return s
				}
				variants++
			}
		}
		// ID permutation: the guarantee (a verified Δ-coloring reaching the
		// same phases with the same checks) must survive relabeling; on the
		// flagship family the exact round schedule is also pinned
		// (PermRounds, mirroring csr_test.go).
		if a.name == "det" {
			pw := w
			pw.Graph = graph.PermuteIDs(w.Graph, rand.New(rand.NewSource(w.Seed+100)))
			run := runChecked(pw, a, 1, true, "")
			if run.err != nil {
				s.Err = fmt.Errorf("det permuted IDs: %w", run.err)
				return s
			}
			if w.PermRounds && run.rounds != base.rounds {
				s.Err = fmt.Errorf("det permuted IDs: rounds %d != %d", run.rounds, base.rounds)
				return s
			}
			if !sameStrings(run.phases, base.phases) || run.checks != base.checks {
				s.Err = fmt.Errorf("det permuted IDs: phases/checks %v/%d != %v/%d",
					run.phases, run.checks, base.phases, base.checks)
				return s
			}
			if err := ReferenceComplete(pw.Graph, run.colors, pw.Graph.MaxDegree()); err != nil {
				s.Err = fmt.Errorf("det permuted IDs: %w", err)
				return s
			}
			variants++
		}
	}
	s.Detail = fmt.Sprintf("%d variants bit-identical", variants)
	return s
}

// sameRun requires bit-identical colors, rounds, span schedule, and check
// count between two runs of the same workload.
func sameRun(base, run checkedRun) error {
	if run.rounds != base.rounds {
		return fmt.Errorf("rounds %d != %d", run.rounds, base.rounds)
	}
	for v := range base.colors {
		if run.colors[v] != base.colors[v] {
			return fmt.Errorf("vertex %d: color %d != %d", v, run.colors[v], base.colors[v])
		}
	}
	if len(run.spans) != len(base.spans) {
		return fmt.Errorf("%d spans != %d", len(run.spans), len(base.spans))
	}
	for i := range base.spans {
		if run.spans[i].Name != base.spans[i].Name || run.spans[i].Rounds != base.spans[i].Rounds {
			return fmt.Errorf("span %d: %s/%d != %s/%d", i,
				run.spans[i].Name, run.spans[i].Rounds, base.spans[i].Name, base.spans[i].Rounds)
		}
	}
	if run.checks != base.checks {
		return fmt.Errorf("%d checks != %d", run.checks, base.checks)
	}
	return nil
}

// faultReplaySuite damages the deterministic coloring with a seeded fault
// plan and repairs it at two worker counts: the damage schedule, the repair,
// and the harness's repair checkpoint must all replay bit-identically.
func faultReplaySuite(w Workload) SuiteResult {
	s := SuiteResult{Suite: "faults"}
	g := w.Graph
	delta := g.MaxDegree()
	base := runChecked(w, algosOf(w)[0], 1, true, "")
	if base.err != nil {
		s.Err = base.err
		return s
	}
	cfg := faults.Config{Seed: w.Seed, CrashRate: 0.05, CorruptRate: 0.05}
	repairAt := func(workers int) ([]int, faults.Report, int, error) {
		plan, err := faults.NewPlan(g, cfg)
		if err != nil {
			return nil, faults.Report{}, 0, err
		}
		damaged, rep := plan.Damage(append([]int(nil), base.colors...))
		net := local.New(g)
		defer net.Close()
		net.SetWorkers(workers)
		h := NewHarness(g)
		h.Attach(net)
		if _, err := repair.Repair(net, damaged, delta); err != nil {
			return nil, faults.Report{}, 0, err
		}
		return damaged, rep, h.Checks(), nil
	}
	c1, r1, k1, err := repairAt(1)
	if err != nil {
		s.Err = err
		return s
	}
	c4, r4, k4, err := repairAt(4)
	if err != nil {
		s.Err = err
		return s
	}
	if !sameInts(r1.Crashed, r4.Crashed) || !sameInts(r1.Corrupted, r4.Corrupted) {
		s.Err = fmt.Errorf("fault plan replay diverged: %v/%v vs %v/%v", r1.Crashed, r1.Corrupted, r4.Crashed, r4.Corrupted)
		return s
	}
	if !sameInts(c1, c4) {
		s.Err = fmt.Errorf("repair diverged across worker counts")
		return s
	}
	if k1 == 0 || k1 != k4 {
		s.Err = fmt.Errorf("repair checkpoint checks diverged: %d vs %d", k1, k4)
		return s
	}
	if err := ReferenceComplete(g, c1, delta+1); err != nil {
		s.Err = fmt.Errorf("repaired coloring: %w", err)
		return s
	}
	s.Detail = fmt.Sprintf("%d damaged, replay identical", r1.Total())
	return s
}

// negativeSuite is the corruption control: for every phase the base run
// published, a re-run with that phase's artifact deliberately damaged must
// fail with a *Violation naming the phase and invariant.
func negativeSuite(w Workload, opt Options) SuiteResult {
	s := SuiteResult{Suite: "negative"}
	a := algosOf(w)[0]
	base := runChecked(w, a, 1, true, "")
	if base.err != nil {
		s.Err = base.err
		return s
	}
	caught, empty := 0, 0
	for _, phase := range base.phases {
		run := runChecked(w, a, 1, true, phase)
		if run.err == nil {
			if run.corruptMiss {
				// The phase published a legitimately empty artifact (e.g. a
				// zero-triad instance): nothing to damage, nothing to catch.
				empty++
				continue
			}
			s.Err = fmt.Errorf("corrupting %s went undetected", phase)
			return s
		}
		var v *Violation
		if !errors.As(run.err, &v) {
			s.Err = fmt.Errorf("corrupting %s failed without a Violation: %v", phase, run.err)
			return s
		}
		if v.Phase != phase || v.Invariant == "" {
			s.Err = fmt.Errorf("corrupting %s blamed phase %q invariant %q", phase, v.Phase, v.Invariant)
			return s
		}
		opt.logf("  negative control %s: %v", phase, run.err)
		caught++
	}
	if caught == 0 {
		s.Err = fmt.Errorf("no corruptible phase among %v", base.phases)
		return s
	}
	s.Detail = fmt.Sprintf("%d phases caught", caught)
	if empty > 0 {
		s.Detail += fmt.Sprintf(", %d empty", empty)
	}
	return s
}

func hottestVertex(g *graph.Graph) int {
	best, bestDeg := 0, -1
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d > bestDeg {
			best, bestDeg = v, d
		}
	}
	return best
}

func countTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
