package invariant

import (
	"errors"
	"fmt"
	"math/rand"

	"deltacoloring/internal/dynamic"
	"deltacoloring/internal/graph"
	"deltacoloring/internal/local"
)

// DynamicWorkload is one row of the dynamic-maintenance conformance matrix:
// a starting graph and a seeded mutation stream driven against a
// dynamic.Live store with the harness attached to every maintenance network.
type DynamicWorkload struct {
	Name  string
	Graph *graph.Graph
	Seed  int64
	// Batches is the stream length; BatchSize the edge flips per batch.
	Batches, BatchSize int
}

// DynamicMatrix returns the standing dynamic conformance rows: sparse and
// structured families under sustained seeded mutation streams.
func DynamicMatrix() []DynamicWorkload {
	ring, _ := graph.EasyCliqueRing(6, 8)
	return []DynamicWorkload{
		{Name: "dyn-erdos", Graph: graph.ErdosRenyi(300, 0.02, rand.New(rand.NewSource(41))), Seed: 41, Batches: 30, BatchSize: 3},
		{Name: "dyn-torus", Graph: graph.Torus(14, 14), Seed: 42, Batches: 30, BatchSize: 2},
		{Name: "dyn-ring", Graph: ring, Seed: 43, Batches: 20, BatchSize: 2},
	}
}

// RunDynamicMatrix executes the dynamic suites on every workload: the
// instrumented mutation stream (after every applied batch the maintained
// coloring passes the sequential proper-coloring oracle, incremental batches
// change colors only inside the touched 2-hop locality, and the harness
// observes every dynamic/maintain checkpoint), the batch split/reorder
// metamorphic relation, and the checkpoint corruption control.
func RunDynamicMatrix(ws []DynamicWorkload, opt Options) []WorkloadResult {
	results := make([]WorkloadResult, 0, len(ws))
	for _, w := range ws {
		opt.logf("dynamic workload %s: n=%d Δ=%d", w.Name, w.Graph.N(), w.Graph.MaxDegree())
		r := WorkloadResult{Name: w.Name}
		r.Suites = append(r.Suites, dynamicStreamSuite(w), dynamicMetamorphicSuite(w))
		if !opt.SkipNegative {
			r.Suites = append(r.Suites, dynamicNegativeSuite(w))
		}
		results = append(results, r)
	}
	return results
}

// dynLiveWithHarness builds a store whose every maintenance network gets a
// fresh attachment of the shared harness.
func dynLiveWithHarness(g *graph.Graph, h *Harness, opts dynamic.Options) (*dynamic.Live, error) {
	opts.NetHook = func(net *local.Network) { h.Attach(net) }
	return dynamic.New(g, opts)
}

// randomBatch builds one valid batch of size edge flips against snap,
// never proposing the same vertex pair twice.
func randomBatch(rng *rand.Rand, snap *dynamic.Snapshot, tombstoned map[int]bool, size int) []dynamic.Mutation {
	var batch []dynamic.Mutation
	used := map[[2]int]bool{}
	for len(batch) < size {
		u, v := rng.Intn(snap.G.N()), rng.Intn(snap.G.N())
		if u == v || tombstoned[u] || tombstoned[v] {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if used[[2]int{u, v}] {
			continue
		}
		used[[2]int{u, v}] = true
		op := dynamic.OpAddEdge
		if snap.G.HasEdge(u, v) {
			op = dynamic.OpRemoveEdge
		}
		batch = append(batch, dynamic.Mutation{Op: op, U: u, V: v})
	}
	return batch
}

// batchSeeds lists the vertices a batch touches, in pre-batch indexing plus
// appended slots; for vertex removals it includes the pre-batch neighbors.
func batchSeeds(pre *dynamic.Snapshot, batch []dynamic.Mutation) []int {
	seen := map[int]bool{}
	next := pre.G.N()
	for _, m := range batch {
		switch m.Op {
		case dynamic.OpAddVertex:
			seen[next] = true
			next++
		case dynamic.OpAddEdge, dynamic.OpRemoveEdge:
			seen[m.U], seen[m.V] = true, true
		case dynamic.OpRemoveVertex:
			seen[m.U] = true
			for _, w := range pre.G.Neighbors(m.U) {
				seen[int(w)] = true
			}
		}
	}
	out := make([]int, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	return out
}

// ball marks every vertex within the given hop radius of the seeds.
func ball(g *graph.Graph, seeds []int, radius int) []bool {
	in := make([]bool, g.N())
	frontier := make([]int, 0, len(seeds))
	for _, s := range seeds {
		if s < g.N() && !in[s] {
			in[s] = true
			frontier = append(frontier, s)
		}
	}
	for hop := 0; hop < radius; hop++ {
		var next []int
		for _, v := range frontier {
			for _, w := range g.Neighbors(v) {
				if !in[w] {
					in[w] = true
					next = append(next, int(w))
				}
			}
		}
		frontier = next
	}
	return in
}

// dynamicStreamSuite drives the seeded mutation stream. After every applied
// batch: the maintained coloring passes the sequential oracle under the
// snapshot's own palette bound; on the incremental path the untouched region
// is bit-identical to the pre-batch snapshot (changes confined to the
// touched 2-hop ball, counted against ApplyResult.Recolored); and the
// harness must have consumed a dynamic/maintain checkpoint per batch.
func dynamicStreamSuite(w DynamicWorkload) SuiteResult {
	s := SuiteResult{Suite: "stream"}
	rng := rand.New(rand.NewSource(w.Seed))
	h := NewHarness(w.Graph)
	l, err := dynLiveWithHarness(w.Graph, h, dynamic.Options{})
	if err != nil {
		s.Err = err
		return s
	}
	tombstoned := map[int]bool{}
	incremental := 0
	for b := 0; b < w.Batches; b++ {
		pre, ok := l.Snapshot()
		if !ok {
			s.Err = fmt.Errorf("batch %d: store unhealthy", b)
			return s
		}
		var batch []dynamic.Mutation
		switch {
		case b%7 == 6:
			// Append a vertex and wire it to two random live vertices.
			nv := pre.G.N()
			batch = append(batch, dynamic.Mutation{Op: dynamic.OpAddVertex})
			for len(batch) < 3 {
				u := rng.Intn(nv)
				if !tombstoned[u] && !containsMut(batch, u, nv) {
					batch = append(batch, dynamic.Mutation{Op: dynamic.OpAddEdge, U: u, V: nv})
				}
			}
		case b%10 == 9:
			// Tombstone one live vertex (a pure vertex-removal batch).
			for {
				u := rng.Intn(pre.G.N())
				if !tombstoned[u] {
					tombstoned[u] = true
					batch = []dynamic.Mutation{{Op: dynamic.OpRemoveVertex, U: u}}
					break
				}
			}
		default:
			batch = randomBatch(rng, pre, tombstoned, w.BatchSize)
		}
		res, err := l.Apply(batch)
		if err != nil {
			s.Err = fmt.Errorf("batch %d: %w", b, err)
			return s
		}
		post, ok := l.Snapshot()
		if !ok {
			s.Err = fmt.Errorf("batch %d: applied but unhealthy", b)
			return s
		}
		if err := ReferenceComplete(post.G, post.Colors, post.NumColors); err != nil {
			s.Err = fmt.Errorf("batch %d: oracle: %w", b, err)
			return s
		}
		if res.Mode == dynamic.ModeIncremental {
			incremental++
			in := ball(post.G, batchSeeds(pre, batch), 2)
			changed := 0
			for v := 0; v < pre.G.N(); v++ {
				if post.Colors[v] != pre.Colors[v] {
					changed++
					if !in[v] {
						s.Err = fmt.Errorf("batch %d: untouched vertex %d changed color", b, v)
						return s
					}
				}
			}
			if changed > res.Recolored {
				s.Err = fmt.Errorf("batch %d: %d colors changed, %d recolored", b, changed, res.Recolored)
				return s
			}
		}
	}
	// One checkpoint per maintenance (initial coloring included).
	if h.Checks() < w.Batches+1 {
		s.Err = fmt.Errorf("harness observed %d checks for %d batches", h.Checks(), w.Batches)
		return s
	}
	if !contains(h.Phases(), "dynamic/maintain") {
		s.Err = fmt.Errorf("no dynamic/maintain checkpoint (phases %v)", h.Phases())
		return s
	}
	s.Detail = fmt.Sprintf("%d batches (%d incremental), %d checks", w.Batches, incremental, h.Checks())
	return s
}

func containsMut(batch []dynamic.Mutation, u, v int) bool {
	for _, m := range batch {
		if m.Op == dynamic.OpAddEdge && m.U == u && m.V == v {
			return true
		}
	}
	return false
}

// dynamicMetamorphicSuite asserts batch split/reorder invariance: a set of
// independent mutations — pairwise far apart, none incident to a max-degree
// vertex so the palette bound cannot shift — yields the bit-identical
// coloring whether applied as one batch, reordered, or one per batch.
func dynamicMetamorphicSuite(w DynamicWorkload) SuiteResult {
	s := SuiteResult{Suite: "metamorphic"}
	g := w.Graph
	delta := g.MaxDegree()
	// Greedily pick existing edges whose endpoints are > 5 hops apart so the
	// recolor regions (≤ 2 hops) and their neighbor views (≤ 3 hops) cannot
	// interact.
	var muts []dynamic.Mutation
	blocked := make([]bool, g.N())
	picked := make([]bool, g.N())
	for _, e := range g.Edges() {
		if len(muts) == 3 {
			break
		}
		if blocked[e.U] || blocked[e.V] {
			continue
		}
		muts = append(muts, dynamic.Mutation{Op: dynamic.OpRemoveEdge, U: e.U, V: e.V})
		picked[e.U], picked[e.V] = true, true
		for v, in := range ball(g, []int{e.U, e.V}, 5) {
			if in {
				blocked[v] = true
			}
		}
	}
	// The removals must not shift the palette bound: some max-degree vertex
	// has to survive untouched, else the Δ-drop could flip maintenance modes
	// between application orders.
	deltaSurvives := false
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) == delta && !picked[v] {
			deltaSurvives = true
			break
		}
	}
	if len(muts) < 2 || !deltaSurvives {
		s.Detail = "no independent mutation set on this family"
		return s
	}
	apply := func(batches [][]dynamic.Mutation) ([]int, error) {
		l, err := dynamic.New(g, dynamic.Options{})
		if err != nil {
			return nil, err
		}
		for _, b := range batches {
			res, err := l.Apply(b)
			if err != nil {
				return nil, err
			}
			if res.Mode != dynamic.ModeIncremental {
				return nil, fmt.Errorf("independent batch fell back to %s", res.Mode)
			}
		}
		snap, ok := l.Snapshot()
		if !ok {
			return nil, errors.New("store unhealthy")
		}
		return snap.Colors, nil
	}
	one, err := apply([][]dynamic.Mutation{muts})
	if err != nil {
		s.Err = err
		return s
	}
	reordered := append([]dynamic.Mutation(nil), muts...)
	for i, j := 0, len(reordered)-1; i < j; i, j = i+1, j-1 {
		reordered[i], reordered[j] = reordered[j], reordered[i]
	}
	reo, err := apply([][]dynamic.Mutation{reordered})
	if err != nil {
		s.Err = err
		return s
	}
	var singles [][]dynamic.Mutation
	for _, m := range muts {
		singles = append(singles, []dynamic.Mutation{m})
	}
	split, err := apply(singles)
	if err != nil {
		s.Err = err
		return s
	}
	for v := range one {
		if one[v] != reo[v] || one[v] != split[v] {
			s.Err = fmt.Errorf("vertex %d: one=%d reordered=%d split=%d", v, one[v], reo[v], split[v])
			return s
		}
	}
	s.Detail = fmt.Sprintf("%d independent mutations, 3 application orders identical", len(muts))
	return s
}

// dynamicNegativeSuite is the corruption control: with incremental
// maintenance disabled (so the batch cannot be salvaged by the fallback),
// corrupting the dynamic/maintain checkpoint artifact must fail the Apply
// with a *Violation naming the phase — and must leave the store unhealthy
// with an intact last-known-good snapshot.
func dynamicNegativeSuite(w DynamicWorkload) SuiteResult {
	s := SuiteResult{Suite: "negative"}
	h := NewHarness(w.Graph)
	l, err := dynLiveWithHarness(w.Graph, h, dynamic.Options{FallbackDirtyFraction: -1})
	if err != nil {
		s.Err = err
		return s
	}
	good := l.LastGood()
	h.CorruptPhase("dynamic/maintain")
	var e graph.Edge
	for _, e = range w.Graph.Edges() {
		break
	}
	_, err = l.Apply([]dynamic.Mutation{{Op: dynamic.OpRemoveEdge, U: e.U, V: e.V}})
	if err == nil {
		s.Err = errors.New("corrupting dynamic/maintain went undetected")
		return s
	}
	var v *Violation
	if !errors.As(err, &v) || v.Phase != "dynamic/maintain" {
		s.Err = fmt.Errorf("corruption failed without a dynamic/maintain Violation: %v", err)
		return s
	}
	if l.Healthy() {
		s.Err = errors.New("store healthy after a rejected maintenance")
		return s
	}
	lg := l.LastGood()
	if lg == nil || lg.Version != good.Version {
		s.Err = errors.New("corruption advanced last-known-good")
		return s
	}
	if err := ReferenceComplete(lg.G, lg.Colors, lg.NumColors); err != nil {
		s.Err = fmt.Errorf("last-known-good invalid: %w", err)
		return s
	}
	s.Detail = "violation caught, last-known-good intact"
	return s
}
