// Package durable gives the dynamic-graph store (internal/dynamic) crash-stop
// durability: a per-graph write-ahead log of acknowledged mutation batches
// plus periodic checkpoint snapshots of the full store state, and a recovery
// path that replays checkpoint+tail, tolerates torn or corrupt log tails, and
// re-verifies every recovered coloring against the sequential oracle before
// it is ever served.
//
// The layering mirrors the repository's fault philosophy (DESIGN.md §8, §11):
// the LOCAL model the paper analyses is fault-free, so recoverability is a
// system-layer concern. A crashed process loses only work that was never
// acknowledged; under the `always` fsync policy an acknowledged batch is on
// stable storage before the client sees the ack, and a recovered graph either
// serves a coloring that passed the oracle or reports itself unhealthy with
// its last known good snapshot — never a silently invalid coloring.
//
// On-disk layout, one directory per graph:
//
//	<dir>/checkpoint.ckpt   atomic (tmp+rename) snapshot: CSR graph, colors,
//	                        tombstones, health, last-good, stats, options
//	<dir>/wal.log           header + length-prefixed CRC32C-checksummed
//	                        records, one per acknowledged batch, versioned
//
// See DESIGN.md §13 for the record format and the exact recovery contract.
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"deltacoloring/internal/dynamic"
)

// FsyncPolicy names when the WAL is flushed to stable storage.
type FsyncPolicy string

const (
	// FsyncAlways syncs after every append, before the batch is
	// acknowledged: a crash loses no acknowledged batch.
	FsyncAlways FsyncPolicy = "always"
	// FsyncInterval syncs on a background ticker (Config.FsyncInterval): a
	// crash loses at most the last interval's acknowledged batches.
	FsyncInterval FsyncPolicy = "interval"
	// FsyncOff never syncs explicitly: the OS flushes at its leisure, and a
	// crash may lose any batch since the last checkpoint. Appends still hit
	// the page cache, so a clean process exit loses nothing.
	FsyncOff FsyncPolicy = "off"
)

// ParseFsyncPolicy validates a policy name (the -fsync flag).
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch FsyncPolicy(s) {
	case FsyncAlways, FsyncInterval, FsyncOff:
		return FsyncPolicy(s), nil
	case "":
		return FsyncAlways, nil
	}
	return "", fmt.Errorf("durable: unknown fsync policy %q (want always, interval, or off)", s)
}

var (
	walMagic  = []byte("DWAL\x00\x01\x00\x00")
	ckptMagic = []byte("DCKP\x00\x01\x00\x00")
	castTable = crc32.MakeTable(crc32.Castagnoli)
)

// walRecordHeader is the fixed per-record framing: payload length then
// CRC32C of the payload.
const walRecordHeader = 8

// maxRecordPayload guards ReadWAL against a corrupt length field committing
// the reader to a giant allocation; a batch is bounded by the service's
// MaxMutationsPerBatch at a few bytes per mutation, so 64 MiB is generous.
const maxRecordPayload = 64 << 20

// Record is one decoded WAL entry: the mutation batch acknowledged at
// Version (i.e. the batch that advanced the store from Version-1).
type Record struct {
	Version int64
	Batch   []dynamic.Mutation
	// Offset and Size locate the framed record in the file (inspection).
	Offset int64
	Size   int64
}

// opCode maps the mutation vocabulary onto single bytes for the WAL payload.
func opCode(op dynamic.Op) (byte, error) {
	switch op {
	case dynamic.OpAddEdge:
		return 1, nil
	case dynamic.OpRemoveEdge:
		return 2, nil
	case dynamic.OpAddVertex:
		return 3, nil
	case dynamic.OpRemoveVertex:
		return 4, nil
	}
	return 0, fmt.Errorf("durable: unknown mutation op %q", op)
}

func opFromCode(c byte) (dynamic.Op, error) {
	switch c {
	case 1:
		return dynamic.OpAddEdge, nil
	case 2:
		return dynamic.OpRemoveEdge, nil
	case 3:
		return dynamic.OpAddVertex, nil
	case 4:
		return dynamic.OpRemoveVertex, nil
	}
	return "", fmt.Errorf("durable: unknown mutation opcode %d", c)
}

// encodeRecord frames one record: 4-byte payload length, 4-byte CRC32C,
// payload = version + batch.
func encodeRecord(version int64, batch []dynamic.Mutation) ([]byte, error) {
	payload := make([]byte, 0, 16+4*len(batch))
	payload = binary.LittleEndian.AppendUint64(payload, uint64(version))
	payload = binary.AppendUvarint(payload, uint64(len(batch)))
	for _, m := range batch {
		c, err := opCode(m.Op)
		if err != nil {
			return nil, err
		}
		payload = append(payload, c)
		payload = binary.AppendVarint(payload, int64(m.U))
		payload = binary.AppendVarint(payload, int64(m.V))
	}
	rec := make([]byte, 0, walRecordHeader+len(payload))
	rec = binary.LittleEndian.AppendUint32(rec, uint32(len(payload)))
	rec = binary.LittleEndian.AppendUint32(rec, crc32.Checksum(payload, castTable))
	return append(rec, payload...), nil
}

// decodePayload parses one checksummed payload back into a record.
func decodePayload(payload []byte) (int64, []dynamic.Mutation, error) {
	if len(payload) < 9 {
		return 0, nil, errors.New("durable: record payload too short")
	}
	version := int64(binary.LittleEndian.Uint64(payload))
	rest := payload[8:]
	count, n := binary.Uvarint(rest)
	if n <= 0 {
		return 0, nil, errors.New("durable: bad batch length")
	}
	rest = rest[n:]
	if count > uint64(len(rest)) { // each mutation is at least 1 byte
		return 0, nil, fmt.Errorf("durable: batch length %d exceeds payload", count)
	}
	batch := make([]dynamic.Mutation, 0, count)
	for i := uint64(0); i < count; i++ {
		if len(rest) == 0 {
			return 0, nil, errors.New("durable: truncated mutation")
		}
		op, err := opFromCode(rest[0])
		if err != nil {
			return 0, nil, err
		}
		rest = rest[1:]
		u, n := binary.Varint(rest)
		if n <= 0 {
			return 0, nil, errors.New("durable: bad mutation endpoint")
		}
		rest = rest[n:]
		v, n := binary.Varint(rest)
		if n <= 0 {
			return 0, nil, errors.New("durable: bad mutation endpoint")
		}
		rest = rest[n:]
		batch = append(batch, dynamic.Mutation{Op: op, U: int(u), V: int(v)})
	}
	if len(rest) != 0 {
		return 0, nil, fmt.Errorf("durable: %d trailing payload bytes", len(rest))
	}
	return version, batch, nil
}

// WALInfo summarizes one log scan.
type WALInfo struct {
	// Records are the valid entries, in file order.
	Records []Record
	// ValidLen is the byte offset after the last valid record; everything
	// past it is a torn or corrupt tail that recovery truncates.
	ValidLen int64
	// FileLen is the file's actual size.
	FileLen int64
	// TornReason is non-empty when FileLen > ValidLen, naming why the tail
	// was rejected (short header, short payload, CRC mismatch, ...).
	TornReason string
}

// Torn reports whether the scan found bytes past the last valid record.
func (w *WALInfo) Torn() bool { return w.FileLen > w.ValidLen }

// ReadWAL scans a log file, stopping at the first torn or corrupt record. A
// missing file is an empty log; only I/O errors (not corruption) are
// returned as errors — corruption is data, reported in the WALInfo, because
// recovery's job is to truncate it, not to fail on it.
func ReadWAL(path string) (*WALInfo, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return &WALInfo{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("durable: read wal: %w", err)
	}
	info := &WALInfo{FileLen: int64(len(data))}
	if len(data) < len(walMagic) {
		info.TornReason = "short or missing header"
		return info, nil
	}
	if string(data[:len(walMagic)]) != string(walMagic) {
		info.TornReason = "bad magic"
		return info, nil
	}
	off := int64(len(walMagic))
	info.ValidLen = off
	for off < int64(len(data)) {
		rest := data[off:]
		if len(rest) < walRecordHeader {
			info.TornReason = "torn record header"
			return info, nil
		}
		plen := int64(binary.LittleEndian.Uint32(rest))
		crc := binary.LittleEndian.Uint32(rest[4:])
		if plen > maxRecordPayload {
			info.TornReason = fmt.Sprintf("implausible payload length %d", plen)
			return info, nil
		}
		if int64(len(rest)) < walRecordHeader+plen {
			info.TornReason = "torn record payload"
			return info, nil
		}
		payload := rest[walRecordHeader : walRecordHeader+plen]
		if crc32.Checksum(payload, castTable) != crc {
			info.TornReason = "CRC mismatch"
			return info, nil
		}
		version, batch, derr := decodePayload(payload)
		if derr != nil {
			info.TornReason = derr.Error()
			return info, nil
		}
		info.Records = append(info.Records, Record{
			Version: version,
			Batch:   batch,
			Offset:  off,
			Size:    walRecordHeader + plen,
		})
		off += walRecordHeader + plen
		info.ValidLen = off
	}
	return info, nil
}

// walWriter appends framed records to an open log file.
type walWriter struct {
	f    *os.File
	size int64
}

// createWAL writes a fresh log (header only), syncing it and its directory.
func createWAL(path string) (*walWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durable: create wal: %w", err)
	}
	if _, err := f.Write(walMagic); err != nil {
		f.Close()
		return nil, fmt.Errorf("durable: write wal header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("durable: sync wal: %w", err)
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, err
	}
	return &walWriter{f: f, size: int64(len(walMagic))}, nil
}

// openWAL opens an existing log for appending at validLen, truncating any
// torn tail past it first.
func openWAL(path string, validLen int64) (*walWriter, error) {
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if errors.Is(err, os.ErrNotExist) {
		return createWAL(path)
	}
	if err != nil {
		return nil, fmt.Errorf("durable: open wal: %w", err)
	}
	if validLen < int64(len(walMagic)) {
		// Header itself was torn: rewrite from scratch.
		f.Close()
		return createWAL(path)
	}
	if err := f.Truncate(validLen); err != nil {
		f.Close()
		return nil, fmt.Errorf("durable: truncate wal: %w", err)
	}
	if _, err := f.Seek(validLen, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("durable: seek wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("durable: sync wal: %w", err)
	}
	return &walWriter{f: f, size: validLen}, nil
}

// append frames and writes one record; flushing is the caller's policy.
func (w *walWriter) append(version int64, batch []dynamic.Mutation) (int, error) {
	rec, err := encodeRecord(version, batch)
	if err != nil {
		return 0, err
	}
	n, err := w.f.Write(rec)
	w.size += int64(n)
	if err != nil {
		return n, fmt.Errorf("durable: append wal record: %w", err)
	}
	return n, nil
}

func (w *walWriter) sync() error { return w.f.Sync() }

// reset truncates the log back to its header (after a checkpoint subsumed
// the records) and syncs.
func (w *walWriter) reset() error {
	if err := w.f.Truncate(int64(len(walMagic))); err != nil {
		return fmt.Errorf("durable: reset wal: %w", err)
	}
	if _, err := w.f.Seek(int64(len(walMagic)), io.SeekStart); err != nil {
		return fmt.Errorf("durable: reset wal: %w", err)
	}
	w.size = int64(len(walMagic))
	return w.f.Sync()
}

func (w *walWriter) close() error { return w.f.Close() }

// syncDir fsyncs a directory so renames and creates in it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("durable: open dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("durable: sync dir %s: %w", dir, err)
	}
	return nil
}
