package durable

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"deltacoloring/internal/dynamic"
)

// Config tunes a durable store. The zero value is usable: fsync=always,
// checkpoint every 64 batches.
type Config struct {
	// Fsync is the WAL flush policy ("" means FsyncAlways).
	Fsync FsyncPolicy
	// FsyncInterval is the background flush cadence under FsyncInterval
	// (default 100ms).
	FsyncInterval time.Duration
	// CheckpointEvery snapshots the store and truncates the log after this
	// many appended batches (default 64; negative disables periodic
	// checkpoints — Close still writes a final one).
	CheckpointEvery int
	// Dynamic carries the process-level store options applied at recovery
	// (Workers, NetHook). Store-identity options (Backend,
	// FallbackDirtyFraction) are read from the checkpoint instead.
	Dynamic dynamic.Options
}

func (c Config) withDefaults() Config {
	if c.Fsync == "" {
		c.Fsync = FsyncAlways
	}
	if c.FsyncInterval <= 0 {
		c.FsyncInterval = 100 * time.Millisecond
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 64
	}
	return c
}

// WALStats counts a store's durability traffic.
type WALStats struct {
	Appends      uint64 `json:"appends"`
	AppendBytes  uint64 `json:"append_bytes"`
	Fsyncs       uint64 `json:"fsyncs"`
	AppendErrors uint64 `json:"append_errors"`
	Checkpoints  uint64 `json:"checkpoints"`
}

// ErrWAL wraps append/flush failures: the batch was applied in memory but
// its durability is not guaranteed, so callers must not acknowledge it as
// durable (the service answers 500 and counts it).
var ErrWAL = errors.New("wal append failed")

// Store wraps a dynamic.Live with a write-ahead log and checkpoints. Apply
// and Checkpoint serialize on an internal lock; reads go straight to Live.
type Store struct {
	dir  string
	cfg  Config
	live *dynamic.Live

	mu       sync.Mutex
	wal      *walWriter
	appended int // batches since the last checkpoint
	stats    WALStats
	closed   bool

	syncStop chan struct{}
	syncDone chan struct{}
}

// Live exposes the wrapped store for reads (Snapshot, Info, Stats, ...).
func (s *Store) Live() *dynamic.Live { return s.live }

// Dir returns the store's durable directory.
func (s *Store) Dir() string { return s.dir }

// WALStats returns a copy of the durability counters.
func (s *Store) WALStats() WALStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Create initializes dir (which must not already hold a store) for live:
// initial checkpoint at the store's current version, fresh log. The returned
// Store owns the directory until Close or Destroy.
func Create(dir string, live *dynamic.Live, cfg Config) (*Store, error) {
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: create dir: %w", err)
	}
	if _, err := os.Stat(filepath.Join(dir, checkpointFile)); err == nil {
		return nil, fmt.Errorf("durable: %s already holds a store (recover it instead)", dir)
	}
	if err := WriteCheckpoint(dir, live.State()); err != nil {
		return nil, err
	}
	w, err := createWAL(filepath.Join(dir, walFile))
	if err != nil {
		return nil, err
	}
	s := &Store{dir: dir, cfg: cfg, live: live, wal: w}
	s.stats.Checkpoints++
	s.startSyncer()
	return s, nil
}

// Apply applies one batch to the wrapped store and logs it before returning:
// under FsyncAlways the record is on stable storage when Apply returns nil
// (or a maintenance failure — the structural change is acknowledged either
// way). Batch-validation rejections log nothing, because the store did not
// advance. A logging failure returns an ErrWAL-wrapped error: the in-memory
// state advanced but the durability guarantee is void for this batch.
func (s *Store) Apply(batch []dynamic.Mutation) (*dynamic.ApplyResult, error) {
	res, aerr := s.live.Apply(batch)
	if aerr != nil && !errors.Is(aerr, dynamic.ErrMaintenance) {
		return res, aerr // rejected batch: no structural change, nothing to log
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return res, fmt.Errorf("durable: %w: store closed", ErrWAL)
	}
	n, werr := s.wal.append(s.live.Version(), batch)
	if werr == nil && s.cfg.Fsync == FsyncAlways {
		if werr = s.wal.sync(); werr == nil {
			s.stats.Fsyncs++
		}
	}
	if werr != nil {
		s.stats.AppendErrors++
		return res, fmt.Errorf("durable: %w: %v", ErrWAL, werr)
	}
	s.stats.Appends++
	s.stats.AppendBytes += uint64(n)
	s.appended++
	if s.cfg.CheckpointEvery > 0 && s.appended >= s.cfg.CheckpointEvery {
		if cerr := s.checkpointLocked(); cerr != nil {
			// The log still holds every batch; losing a checkpoint costs
			// replay time, not correctness. Surface it as a WAL error so the
			// operator sees it, but the batch itself is durable.
			return res, fmt.Errorf("durable: %w: checkpoint: %v", ErrWAL, cerr)
		}
	}
	return res, aerr
}

// Checkpoint snapshots the store now and truncates the log.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("durable: store closed")
	}
	return s.checkpointLocked()
}

// checkpointLocked writes the snapshot, then resets the log. The order is
// load-bearing: a crash between the two leaves a checkpoint plus a log of
// already-subsumed records, which replay skips by version — never the
// reverse, which would lose batches.
func (s *Store) checkpointLocked() error {
	if err := WriteCheckpoint(s.dir, s.live.State()); err != nil {
		return err
	}
	s.stats.Checkpoints++
	s.appended = 0
	return s.wal.reset()
}

// Close flushes, writes a final checkpoint (so restart needs no replay), and
// releases the log. The wrapped Live remains readable.
func (s *Store) Close() error {
	s.stopSyncer()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	cerr := func() error {
		if err := WriteCheckpoint(s.dir, s.live.State()); err != nil {
			return err
		}
		s.stats.Checkpoints++
		return s.wal.reset()
	}()
	if err := s.wal.close(); err != nil && cerr == nil {
		cerr = err
	}
	return cerr
}

// Abandon releases the store's file handles without flushing, checkpointing,
// or truncating anything: the directory is left exactly as a crash-stop
// would leave it, checkpoint lag and WAL tail included. It exists for
// restart harnesses and recovery benchmarks; production code wants Close.
func (s *Store) Abandon() {
	s.stopSyncer()
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		s.wal.close()
	}
	s.mu.Unlock()
}

// Destroy releases the log and removes the store's directory atomically:
// the directory is renamed to a tombstone name first (one atomic step — a
// crash mid-removal leaves a tombstone that List ignores and cleans up, not
// a half-deleted store), then deleted.
func (s *Store) Destroy() error {
	s.stopSyncer()
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		s.wal.close()
	}
	s.mu.Unlock()
	doomed := s.dir + deletingSuffix
	if err := os.Rename(s.dir, doomed); err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("durable: destroy: %w", err)
	}
	if err := syncDir(filepath.Dir(s.dir)); err != nil {
		return err
	}
	return os.RemoveAll(doomed)
}

// deletingSuffix marks directories whose removal was in flight.
const deletingSuffix = ".deleting"

// startSyncer launches the background flusher under FsyncInterval.
func (s *Store) startSyncer() {
	if s.cfg.Fsync != FsyncInterval {
		return
	}
	s.syncStop = make(chan struct{})
	s.syncDone = make(chan struct{})
	// Capture both channels now: stopSyncer nils the struct fields before
	// closing, so the goroutine must not read them again.
	stop, done := s.syncStop, s.syncDone
	go func() {
		defer close(done)
		t := time.NewTicker(s.cfg.FsyncInterval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.mu.Lock()
				if !s.closed {
					if s.wal.sync() == nil {
						s.stats.Fsyncs++
					}
				}
				s.mu.Unlock()
			case <-stop:
				return
			}
		}
	}()
}

func (s *Store) stopSyncer() {
	s.mu.Lock()
	stop, done := s.syncStop, s.syncDone
	s.syncStop, s.syncDone = nil, nil
	s.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// List returns the graph IDs with durable state under dataDir (directories
// holding a checkpoint), sorted by name, and sweeps leftover deletion
// tombstones from crashed Destroy calls.
func List(dataDir string) ([]string, error) {
	ents, err := os.ReadDir(dataDir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("durable: list %s: %w", dataDir, err)
	}
	var ids []string
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		if strings.HasSuffix(e.Name(), deletingSuffix) {
			os.RemoveAll(filepath.Join(dataDir, e.Name()))
			continue
		}
		if _, err := os.Stat(filepath.Join(dataDir, e.Name(), checkpointFile)); err == nil {
			ids = append(ids, e.Name())
		}
	}
	return ids, nil
}
