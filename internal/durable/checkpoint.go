package durable

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"deltacoloring/internal/dynamic"
	"deltacoloring/internal/graph"
)

// checkpointFile is the snapshot's name inside a graph directory.
const checkpointFile = "checkpoint.ckpt"

// walFile is the log's name inside a graph directory.
const walFile = "wal.log"

// CheckpointFile and WALFile name the two files inside a graph directory,
// exported for inspection tools (cmd/deltawal).
const (
	CheckpointFile = checkpointFile
	WALFile        = walFile
)

// maxCheckpointBody guards ReadCheckpoint against a corrupt length field.
const maxCheckpointBody = 1 << 32

// WriteCheckpoint atomically replaces dir's checkpoint with st: the body is
// serialized and CRC32C-checksummed into a temp file in the same directory,
// fsynced, renamed over checkpoint.ckpt, and the directory fsynced — so a
// crash at any point leaves either the old snapshot or the new one, never a
// torn mix.
//
// File layout: magic, uint64 body length, uint32 CRC32C(body), body.
func WriteCheckpoint(dir string, st dynamic.State) (err error) {
	var body bytes.Buffer
	if err := encodeState(&body, st); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".checkpoint-*.tmp")
	if err != nil {
		return fmt.Errorf("durable: checkpoint temp: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	head := make([]byte, 0, len(ckptMagic)+12)
	head = append(head, ckptMagic...)
	head = binary.LittleEndian.AppendUint64(head, uint64(body.Len()))
	head = binary.LittleEndian.AppendUint32(head, crc32.Checksum(body.Bytes(), castTable))
	if _, err = tmp.Write(head); err == nil {
		_, err = tmp.Write(body.Bytes())
	}
	if err != nil {
		return fmt.Errorf("durable: write checkpoint: %w", err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("durable: sync checkpoint: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("durable: close checkpoint: %w", err)
	}
	if err = os.Rename(tmp.Name(), filepath.Join(dir, checkpointFile)); err != nil {
		return fmt.Errorf("durable: install checkpoint: %w", err)
	}
	return syncDir(dir)
}

// ErrNoCheckpoint reports a graph directory without a (valid) snapshot.
var ErrNoCheckpoint = errors.New("durable: no valid checkpoint")

// ReadCheckpoint loads and validates dir's snapshot. A missing, truncated,
// or checksum-failing file returns ErrNoCheckpoint (wrapped with detail):
// checkpoints are written atomically, so any damage means the directory
// never finished initializing and holds no recoverable state.
func ReadCheckpoint(dir string) (dynamic.State, error) {
	var st dynamic.State
	data, err := os.ReadFile(filepath.Join(dir, checkpointFile))
	if errors.Is(err, os.ErrNotExist) {
		return st, fmt.Errorf("%w: %s", ErrNoCheckpoint, dir)
	}
	if err != nil {
		return st, fmt.Errorf("durable: read checkpoint: %w", err)
	}
	if len(data) < len(ckptMagic)+12 || string(data[:len(ckptMagic)]) != string(ckptMagic) {
		return st, fmt.Errorf("%w: bad header", ErrNoCheckpoint)
	}
	blen := binary.LittleEndian.Uint64(data[len(ckptMagic):])
	crc := binary.LittleEndian.Uint32(data[len(ckptMagic)+8:])
	body := data[len(ckptMagic)+12:]
	if blen > maxCheckpointBody || uint64(len(body)) != blen {
		return st, fmt.Errorf("%w: torn body (%d of %d bytes)", ErrNoCheckpoint, len(body), blen)
	}
	if crc32.Checksum(body, castTable) != crc {
		return st, fmt.Errorf("%w: CRC mismatch", ErrNoCheckpoint)
	}
	st, err = decodeState(bytes.NewReader(body))
	if err != nil {
		return st, fmt.Errorf("%w: %v", ErrNoCheckpoint, err)
	}
	return st, nil
}

// encodeState serializes a store image (see DESIGN.md §13 for the layout).
func encodeState(w *bytes.Buffer, st dynamic.State) error {
	var scratch [binary.MaxVarintLen64]byte
	writeU64 := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		w.Write(b[:])
	}
	writeVarint := func(v int64) {
		n := binary.PutVarint(scratch[:], v)
		w.Write(scratch[:n])
	}
	writeBool := func(b bool) {
		if b {
			w.WriteByte(1)
		} else {
			w.WriteByte(0)
		}
	}
	writeSnap := func(g *graph.Graph, colors []int, numColors int, version int64) error {
		writeU64(uint64(version))
		if err := graph.EncodeBinary(w, g); err != nil {
			return err
		}
		for _, c := range colors {
			writeVarint(int64(c))
		}
		writeU64(uint64(numColors))
		return nil
	}

	writeU64(uint64(st.Version))
	writeBool(st.Healthy)
	writeU64(math.Float64bits(st.FallbackDirtyFraction))
	writeU64(uint64(len(st.Backend)))
	w.WriteString(st.Backend)
	if err := writeSnap(st.G, st.Colors, st.NumColors, st.Version); err != nil {
		return err
	}
	for _, r := range st.Removed {
		writeBool(r)
	}
	for _, v := range []int64{
		st.Stats.Batches, st.Stats.Mutations, st.Stats.Incremental,
		st.Stats.Recomputes, st.Stats.Fallbacks, st.Stats.Failures,
		st.Stats.Recolored, st.Stats.Rounds,
	} {
		writeU64(uint64(v))
	}
	// Last-good is elided when it is the current state (the healthy common
	// case): recovery reconstitutes it from the snapshot itself.
	sameAsCurrent := st.LastGood != nil && st.Healthy && st.LastGood.Version == st.Version
	writeBool(st.LastGood != nil && !sameAsCurrent)
	if st.LastGood != nil && !sameAsCurrent {
		if err := writeSnap(st.LastGood.G, st.LastGood.Colors, st.LastGood.NumColors, st.LastGood.Version); err != nil {
			return err
		}
	}
	return nil
}

// decodeState parses one encodeState body, validating as it goes.
func decodeState(r *bytes.Reader) (dynamic.State, error) {
	var st dynamic.State
	readU64 := func() (uint64, error) {
		var b [8]byte
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(b[:]), nil
	}
	readBool := func() (bool, error) {
		b, err := r.ReadByte()
		if err != nil {
			return false, err
		}
		if b > 1 {
			return false, fmt.Errorf("durable: bad bool byte %d", b)
		}
		return b == 1, nil
	}
	readSnap := func() (*dynamic.Snapshot, error) {
		ver, err := readU64()
		if err != nil {
			return nil, err
		}
		g, err := graph.DecodeBinary(r)
		if err != nil {
			return nil, err
		}
		colors := make([]int, g.N())
		for i := range colors {
			c, err := binary.ReadVarint(r)
			if err != nil {
				return nil, err
			}
			colors[i] = int(c)
		}
		k, err := readU64()
		if err != nil {
			return nil, err
		}
		if k > uint64(g.N())+1 {
			return nil, fmt.Errorf("durable: checkpoint numColors %d implausible for n=%d", k, g.N())
		}
		return &dynamic.Snapshot{G: g, Colors: colors, NumColors: int(k), Version: int64(ver)}, nil
	}

	ver, err := readU64()
	if err != nil {
		return st, err
	}
	st.Version = int64(ver)
	if st.Healthy, err = readBool(); err != nil {
		return st, err
	}
	fracBits, err := readU64()
	if err != nil {
		return st, err
	}
	st.FallbackDirtyFraction = math.Float64frombits(fracBits)
	blen, err := readU64()
	if err != nil {
		return st, err
	}
	if blen > 256 {
		return st, fmt.Errorf("durable: backend name length %d implausible", blen)
	}
	name := make([]byte, blen)
	if _, err := io.ReadFull(r, name); err != nil {
		return st, err
	}
	st.Backend = string(name)
	cur, err := readSnap()
	if err != nil {
		return st, err
	}
	if cur.Version != st.Version {
		return st, fmt.Errorf("durable: checkpoint snapshot version %d != header %d", cur.Version, st.Version)
	}
	st.G, st.Colors, st.NumColors = cur.G, cur.Colors, cur.NumColors
	st.Removed = make([]bool, st.G.N())
	for i := range st.Removed {
		if st.Removed[i], err = readBool(); err != nil {
			return st, err
		}
	}
	stats := make([]int64, 8)
	for i := range stats {
		v, err := readU64()
		if err != nil {
			return st, err
		}
		stats[i] = int64(v)
	}
	st.Stats = dynamic.Stats{
		Batches: stats[0], Mutations: stats[1], Incremental: stats[2],
		Recomputes: stats[3], Fallbacks: stats[4], Failures: stats[5],
		Recolored: stats[6], Rounds: stats[7],
	}
	hasLG, err := readBool()
	if err != nil {
		return st, err
	}
	if hasLG {
		if st.LastGood, err = readSnap(); err != nil {
			return st, err
		}
	} else if st.Healthy {
		st.LastGood = cur
	}
	if r.Len() != 0 {
		return st, fmt.Errorf("durable: %d trailing checkpoint bytes", r.Len())
	}
	return st, nil
}
