package durable

import (
	"errors"
	"fmt"
	"path/filepath"
	"time"

	"deltacoloring/internal/dynamic"
	"deltacoloring/internal/invariant"
)

// RecoveryReport is the verified-recovery contract's receipt: what the
// recovery of one graph directory found, replayed, dropped, and re-proved.
type RecoveryReport struct {
	Dir string `json:"dir"`
	// CheckpointVersion is the snapshot the replay started from.
	CheckpointVersion int64 `json:"checkpoint_version"`
	// Version and Healthy describe the recovered store.
	Version int64 `json:"version"`
	Healthy bool  `json:"healthy"`
	// Replayed counts tail batches re-applied; Skipped counts duplicate
	// records already subsumed by the checkpoint (idempotent replay);
	// ReplayFailures counts replayed batches whose maintenance failed again
	// (the structure still advanced, exactly as it did pre-crash).
	Replayed       int `json:"replayed"`
	Skipped        int `json:"skipped"`
	ReplayFailures int `json:"replay_failures"`
	// TruncatedBytes is the torn/corrupt tail dropped from the log, with
	// TornReason naming the first rejected record.
	TruncatedBytes int64  `json:"truncated_bytes"`
	TornReason     string `json:"torn_reason,omitempty"`
	// CheckpointRejected / LastGoodRejected / OracleRejected report oracle
	// refusals: the checkpoint's current coloring, its last-good snapshot,
	// or the post-replay coloring failed the sequential oracle and was
	// downgraded rather than served.
	CheckpointRejected bool `json:"checkpoint_rejected,omitempty"`
	LastGoodRejected   bool `json:"last_good_rejected,omitempty"`
	OracleRejected     bool `json:"oracle_rejected,omitempty"`
	// Nanos is the recovery wall time.
	Nanos int64 `json:"nanos"`
}

// loadState reads and oracle-verifies dir's checkpoint, downgrading health
// instead of serving anything the oracle refuses, and reconstructs the store.
func loadState(dir string, cfg Config, rep *RecoveryReport) (*dynamic.Live, error) {
	st, err := ReadCheckpoint(dir)
	if err != nil {
		return nil, err
	}
	rep.CheckpointVersion = st.Version
	if st.Healthy {
		if oerr := invariant.ReferenceComplete(st.G, st.Colors, st.NumColors); oerr != nil {
			rep.CheckpointRejected = true
			st.Healthy = false
			if st.LastGood != nil && st.LastGood.Version == st.Version {
				st.LastGood = nil
			}
		}
	}
	if st.LastGood != nil && !(st.Healthy && st.LastGood.Version == st.Version) {
		if oerr := invariant.ReferenceComplete(st.LastGood.G, st.LastGood.Colors, st.LastGood.NumColors); oerr != nil {
			rep.LastGoodRejected = true
			st.LastGood = nil
		}
	}
	return dynamic.NewFromState(st, cfg.Dynamic)
}

// replay re-applies the log tail onto live. Records at or below the store
// version are skipped (duplicate-version idempotency: a crash between
// checkpoint install and log truncation leaves subsumed records behind).
// The first record that cannot extend the state — a version gap, or a batch
// the store rejects — marks the log torn at that offset: everything after it
// depended on it and is dropped, never partially applied.
func replay(live *dynamic.Live, info *WALInfo, rep *RecoveryReport) {
	for _, rec := range info.Records {
		cur := live.Version()
		if rec.Version <= cur {
			rep.Skipped++
			continue
		}
		if rec.Version != cur+1 {
			info.ValidLen = rec.Offset
			info.TornReason = fmt.Sprintf("version gap: record %d after state %d", rec.Version, cur)
			return
		}
		if _, err := live.Apply(rec.Batch); err != nil {
			if errors.Is(err, dynamic.ErrMaintenance) {
				// Pre-crash this batch was acknowledged with its structure
				// applied and its coloring unmaintained; replay reproduces
				// exactly that (the store is now unhealthy, last-good holds).
				rep.Replayed++
				rep.ReplayFailures++
				continue
			}
			info.ValidLen = rec.Offset
			info.TornReason = fmt.Sprintf("record %d rejected by replay: %v", rec.Version, err)
			return
		}
		rep.Replayed++
	}
}

// finishReport runs the post-replay oracle and fills the report's terminal
// fields. A healthy coloring the oracle refuses is invalidated — the store
// turns unhealthy and, since current and last-good coincide after a healthy
// replay, readers get 503 rather than a refuted snapshot.
func finishReport(live *dynamic.Live, info *WALInfo, rep *RecoveryReport) {
	if live.Healthy() {
		if snap, ok := live.Snapshot(); ok {
			if oerr := invariant.ReferenceComplete(snap.G, snap.Colors, snap.NumColors); oerr != nil {
				rep.OracleRejected = true
				live.Invalidate()
			}
		}
	}
	rep.Version = live.Version()
	rep.Healthy = live.Healthy()
	if info.Torn() {
		rep.TruncatedBytes = info.FileLen - info.ValidLen
		rep.TornReason = info.TornReason
	}
}

// Recover rebuilds dir's store from checkpoint + log tail and returns it
// ready to serve: torn tails truncated on disk, every recovered coloring
// re-verified through the sequential oracle, and — when anything was
// replayed or truncated — a fresh checkpoint written so the next restart
// starts clean.
func Recover(dir string, cfg Config) (*Store, *RecoveryReport, error) {
	cfg = cfg.withDefaults()
	start := time.Now()
	rep := &RecoveryReport{Dir: dir}
	live, err := loadState(dir, cfg, rep)
	if err != nil {
		return nil, rep, err
	}
	info, err := ReadWAL(filepath.Join(dir, walFile))
	if err != nil {
		return nil, rep, err
	}
	replay(live, info, rep)
	finishReport(live, info, rep)
	w, err := openWAL(filepath.Join(dir, walFile), info.ValidLen)
	if err != nil {
		return nil, rep, err
	}
	s := &Store{dir: dir, cfg: cfg, live: live, wal: w}
	if rep.Replayed > 0 || info.Torn() {
		if err := s.checkpointLocked(); err != nil {
			w.close()
			return nil, rep, err
		}
	}
	s.startSyncer()
	rep.Nanos = time.Since(start).Nanoseconds()
	return s, rep, nil
}

// Verify is Recover's read-only twin (cmd/deltawal): it loads the
// checkpoint, replays the log in memory, and runs every oracle check, but
// writes nothing — the directory is untouched, torn tails included.
func Verify(dir string, cfg Config) (*RecoveryReport, error) {
	cfg = cfg.withDefaults()
	start := time.Now()
	rep := &RecoveryReport{Dir: dir}
	live, err := loadState(dir, cfg, rep)
	if err != nil {
		return rep, err
	}
	info, err := ReadWAL(filepath.Join(dir, walFile))
	if err != nil {
		return rep, err
	}
	replay(live, info, rep)
	finishReport(live, info, rep)
	rep.Nanos = time.Since(start).Nanoseconds()
	return rep, nil
}
