package durable

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"deltacoloring/internal/dynamic"
	"deltacoloring/internal/faults"
	"deltacoloring/internal/graph"
	"deltacoloring/internal/invariant"
	"deltacoloring/internal/local"
)

// testGraph is a small sparse graph with room for edge flips.
func testGraph(seed int64) *graph.Graph {
	return graph.ErdosRenyi(120, 0.03, rand.New(rand.NewSource(seed)))
}

// flipBatch builds one valid single-edge flip against the store's snapshot.
func flipBatch(rng *rand.Rand, l *dynamic.Live) []dynamic.Mutation {
	snap, _ := l.Snapshot()
	for {
		u, v := rng.Intn(snap.G.N()), rng.Intn(snap.G.N())
		if u == v {
			continue
		}
		op := dynamic.OpAddEdge
		if snap.G.HasEdge(u, v) {
			op = dynamic.OpRemoveEdge
		}
		return []dynamic.Mutation{{Op: op, U: u, V: v}}
	}
}

// applyN drives n flips through the durable store, failing the test on any
// rejection, and returns the batches in order.
func applyN(t *testing.T, s *Store, rng *rand.Rand, n int) [][]dynamic.Mutation {
	t.Helper()
	batches := make([][]dynamic.Mutation, 0, n)
	for i := 0; i < n; i++ {
		b := flipBatch(rng, s.Live())
		if _, err := s.Apply(b); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		batches = append(batches, b)
	}
	return batches
}

// sameStructure asserts two stores expose identical graphs and versions.
func sameStructure(t *testing.T, got, want *dynamic.Live) {
	t.Helper()
	if got.Version() != want.Version() {
		t.Fatalf("version %d, want %d", got.Version(), want.Version())
	}
	gs, _ := got.Snapshot()
	ws, _ := want.Snapshot()
	if gs.G.N() != ws.G.N() || !reflect.DeepEqual(gs.G.Edges(), ws.G.Edges()) {
		t.Fatalf("recovered structure diverged: %v vs %v", gs.G, ws.G)
	}
}

// verifyLive asserts the store is healthy and its coloring passes the oracle.
func verifyLive(t *testing.T, l *dynamic.Live) {
	t.Helper()
	snap, ok := l.Snapshot()
	if !ok {
		t.Fatal("store unhealthy")
	}
	if err := invariant.ReferenceComplete(snap.G, snap.Colors, snap.NumColors); err != nil {
		t.Fatalf("oracle: %v", err)
	}
}

// crash abandons the store without Close: no checkpoint or flush happens —
// exactly the state a SIGKILL leaves behind (the page cache is shared, so
// unsynced writes are still visible to the same machine; the restart chaos
// harness covers the real-process case).
func crash(s *Store) { s.Abandon() }

func newStore(t *testing.T, dir string, seed int64, cfg Config) *Store {
	t.Helper()
	live, err := dynamic.New(testGraph(seed), dynamic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Create(dir, live, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCreateRecoverRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "g1")
	s := newStore(t, dir, 1, Config{Fsync: FsyncOff, CheckpointEvery: -1})
	rng := rand.New(rand.NewSource(2))
	applyN(t, s, rng, 12)
	pre := s.Live()
	crash(s)

	rec, rep, err := Recover(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rep.Replayed != 12 || rep.Skipped != 0 || rep.TruncatedBytes != 0 {
		t.Fatalf("report %+v, want 12 replayed clean", rep)
	}
	if rep.CheckpointVersion != 1 {
		t.Fatalf("checkpoint version %d, want 1", rep.CheckpointVersion)
	}
	sameStructure(t, rec.Live(), pre)
	verifyLive(t, rec.Live())
	if st := rec.Live().Stats(); st.Batches != 12 {
		t.Fatalf("recovered stats lost the stream: %+v", st)
	}
}

func TestRecoverEmptyWAL(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "g1")
	s := newStore(t, dir, 3, Config{})
	crash(s)
	rec, rep, err := Recover(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rep.Replayed != 0 || rep.Skipped != 0 || rep.Version != 1 || !rep.Healthy {
		t.Fatalf("empty-WAL report %+v", rep)
	}
	verifyLive(t, rec.Live())
}

func TestRecoverCheckpointNoTail(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "g1")
	s := newStore(t, dir, 4, Config{Fsync: FsyncOff, CheckpointEvery: -1})
	rng := rand.New(rand.NewSource(5))
	applyN(t, s, rng, 7)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	pre := s.Live()
	crash(s)
	rec, rep, err := Recover(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rep.Replayed != 0 || rep.CheckpointVersion != 8 || rep.Version != 8 {
		t.Fatalf("checkpoint-no-tail report %+v", rep)
	}
	sameStructure(t, rec.Live(), pre)
	verifyLive(t, rec.Live())
}

func TestRecoverTornFinalRecord(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "g1")
	s := newStore(t, dir, 6, Config{Fsync: FsyncOff, CheckpointEvery: -1})
	rng := rand.New(rand.NewSource(7))
	applyN(t, s, rng, 5)
	crash(s)

	// Injected short write: drop the final bytes of the last record, as a
	// crash mid-append would.
	walPath := filepath.Join(dir, walFile)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	rec, rep, err := Recover(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rep.Replayed != 4 || rep.TruncatedBytes == 0 || rep.TornReason == "" {
		t.Fatalf("torn-tail report %+v", rep)
	}
	if rep.Version != 5 { // version 1 + 4 surviving batches
		t.Fatalf("version %d, want 5", rep.Version)
	}
	verifyLive(t, rec.Live())

	// The truncation is durable: a second recovery sees a clean log.
	crash(rec)
	rec2, rep2, err := Recover(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec2.Close()
	if rep2.TruncatedBytes != 0 || rep2.Replayed != 0 || rep2.Version != 5 {
		t.Fatalf("second recovery not clean: %+v", rep2)
	}
}

func TestRecoverBitFlippedCRC(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "g1")
	s := newStore(t, dir, 8, Config{Fsync: FsyncOff, CheckpointEvery: -1})
	rng := rand.New(rand.NewSource(9))
	applyN(t, s, rng, 6)
	crash(s)

	// Flip one payload byte in the third record: it and everything after it
	// must be dropped — a checksum-failing record cannot be skipped over,
	// because later batches build on it.
	info, err := ReadWAL(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Records) != 6 {
		t.Fatalf("%d records, want 6", len(info.Records))
	}
	data, err := os.ReadFile(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	data[info.Records[2].Offset+walRecordHeader+9] ^= 0x10
	if err := os.WriteFile(filepath.Join(dir, walFile), data, 0o644); err != nil {
		t.Fatal(err)
	}

	rec, rep, err := Recover(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rep.Replayed != 2 || rep.TornReason != "CRC mismatch" {
		t.Fatalf("bit-flip report %+v", rep)
	}
	if rep.Version != 3 {
		t.Fatalf("version %d, want 3", rep.Version)
	}
	verifyLive(t, rec.Live())
}

func TestRecoverDuplicateVersionIdempotent(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "g1")
	s := newStore(t, dir, 10, Config{Fsync: FsyncOff, CheckpointEvery: -1})
	rng := rand.New(rand.NewSource(11))
	applyN(t, s, rng, 4)
	// Simulate a crash in the checkpoint's vulnerable window: snapshot
	// installed, log not yet truncated — every record is now a duplicate.
	if err := WriteCheckpoint(dir, s.Live().State()); err != nil {
		t.Fatal(err)
	}
	pre := s.Live()
	crash(s)

	rec, rep, err := Recover(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rep.Skipped != 4 || rep.Replayed != 0 {
		t.Fatalf("duplicate-replay report %+v", rep)
	}
	sameStructure(t, rec.Live(), pre)
	verifyLive(t, rec.Live())
}

// faultHook returns a NetHook that injects a heavy crash/drop/corrupt plan
// on every maintenance network, reliably failing both the incremental and
// the recompute path.
func faultHook(seed int64) func(*local.Network) {
	return func(net *local.Network) {
		p, err := faults.NewPlan(net.Graph(), faults.Config{
			Seed: seed, CrashRate: 0.5, DropRate: 0.5, CorruptRate: 0.5,
		})
		if err == nil {
			net.SetFaults(p)
		}
	}
}

func TestRecoverUnhealthyCrashKeepsLastGood(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "g1")
	g := testGraph(12)
	var failing bool
	hook := func(net *local.Network) {
		if failing {
			faultHook(99)(net)
		}
	}
	live, err := dynamic.New(g, dynamic.Options{NetHook: hook})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Create(dir, live, Config{Fsync: FsyncOff, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	applyN(t, s, rng, 3)
	goodVersion := live.Version()

	failing = true
	batch := flipBatch(rng, live)
	if _, err := s.Apply(batch); !errors.Is(err, dynamic.ErrMaintenance) {
		t.Fatalf("fault plan did not fail maintenance: %v", err)
	}
	if live.Healthy() {
		t.Fatal("store still healthy after failed maintenance")
	}
	// Checkpoint the unhealthy state (the periodic checkpointer does this in
	// production whenever the cadence lands on an unhealthy store).
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	crash(s)

	rec, rep, err := Recover(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rep.Healthy {
		t.Fatal("recovered store claims healthy after an unhealthy checkpoint")
	}
	lg := rec.Live().LastGood()
	if lg == nil {
		t.Fatal("last-known-good did not survive the unhealthy crash")
	}
	if lg.Version != goodVersion {
		t.Fatalf("last-good version %d, want %d", lg.Version, goodVersion)
	}
	if err := invariant.ReferenceComplete(lg.G, lg.Colors, lg.NumColors); err != nil {
		t.Fatalf("recovered last-good fails the oracle: %v", err)
	}
	// A fault-free recompute heals the recovered store.
	if _, err := rec.Live().Recompute(); err != nil {
		t.Fatal(err)
	}
	verifyLive(t, rec.Live())
}

func TestReplayFailureReproducesUnhealthy(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "g1")
	g := testGraph(14)
	var failing bool
	hook := func(net *local.Network) {
		if failing {
			faultHook(77)(net)
		}
	}
	live, err := dynamic.New(g, dynamic.Options{NetHook: hook})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Create(dir, live, Config{Fsync: FsyncOff, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(15))
	applyN(t, s, rng, 2)
	// Checkpoint here so the replayed tail holds only fault-era records:
	// replaying under the same deterministic fault seed then reproduces each
	// batch's original outcome exactly.
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	failing = true
	survived := 0
	for {
		_, err := s.Apply(flipBatch(rng, live))
		if errors.Is(err, dynamic.ErrMaintenance) {
			break
		}
		if err != nil {
			t.Fatalf("unexpected apply error: %v", err)
		}
		if survived++; survived > 40 {
			t.Fatal("fault plan never failed maintenance")
		}
	}
	goodVersion := live.Version() - 1 // last version whose maintenance held
	crash(s) // no checkpoint: the failing batch lives only in the log

	// Recover under the same fault pressure: the replayed batch fails its
	// maintenance again, reproducing the pre-crash unhealthy-with-last-good
	// state instead of silently dropping the acknowledged batch.
	rec, rep, err := Recover(dir, Config{Dynamic: dynamic.Options{NetHook: faultHook(77)}})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rep.ReplayFailures == 0 || rep.Healthy {
		t.Fatalf("replay-failure report %+v", rep)
	}
	if rec.Live().Version() != goodVersion+1 {
		t.Fatalf("version %d, want %d", rec.Live().Version(), goodVersion+1)
	}
	lg := rec.Live().LastGood()
	if lg == nil || lg.Version != goodVersion {
		t.Fatalf("last-good lost: %+v", lg)
	}
	if err := invariant.ReferenceComplete(lg.G, lg.Colors, lg.NumColors); err != nil {
		t.Fatalf("last-good fails the oracle: %v", err)
	}
}

func TestCheckpointCadenceTruncatesLog(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "g1")
	s := newStore(t, dir, 16, Config{Fsync: FsyncOff, CheckpointEvery: 5})
	defer s.Close()
	rng := rand.New(rand.NewSource(17))
	applyN(t, s, rng, 12)
	info, err := ReadWAL(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Records) != 2 { // 12 = 2 checkpoints at 5 + 2 tail records
		t.Fatalf("%d tail records after cadence checkpoints, want 2", len(info.Records))
	}
	if st := s.WALStats(); st.Checkpoints != 3 || st.Appends != 12 { // create + 2 cadence
		t.Fatalf("stats %+v", st)
	}
}

func TestCloseWritesFinalCheckpoint(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "g1")
	s := newStore(t, dir, 18, Config{Fsync: FsyncOff, CheckpointEvery: -1})
	rng := rand.New(rand.NewSource(19))
	applyN(t, s, rng, 6)
	pre := s.Live()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	rec, rep, err := Recover(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rep.Replayed != 0 || rep.CheckpointVersion != 7 {
		t.Fatalf("clean shutdown still needed replay: %+v", rep)
	}
	sameStructure(t, rec.Live(), pre)
	verifyLive(t, rec.Live())
}

func TestDestroyAtomicAndListSweep(t *testing.T) {
	base := t.TempDir()
	dir := filepath.Join(base, "g000001")
	s := newStore(t, dir, 20, Config{})
	if ids, _ := List(base); len(ids) != 1 || ids[0] != "g000001" {
		t.Fatalf("List = %v, want [g000001]", ids)
	}
	if err := s.Destroy(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("directory survived Destroy: %v", err)
	}
	// A tombstone left by a crashed Destroy is swept by List.
	leftover := filepath.Join(base, "g000002"+deletingSuffix)
	if err := os.MkdirAll(leftover, 0o755); err != nil {
		t.Fatal(err)
	}
	ids, err := List(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Fatalf("List = %v, want empty", ids)
	}
	if _, err := os.Stat(leftover); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("List did not sweep the deletion tombstone")
	}
}

func TestVerifyIsReadOnly(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "g1")
	s := newStore(t, dir, 21, Config{Fsync: FsyncOff, CheckpointEvery: -1})
	rng := rand.New(rand.NewSource(22))
	applyN(t, s, rng, 4)
	crash(s)
	walPath := filepath.Join(dir, walFile)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, data[:len(data)-2], 0o644); err != nil {
		t.Fatal(err)
	}
	before, _ := os.ReadFile(walPath)
	ckptBefore, _ := os.ReadFile(filepath.Join(dir, checkpointFile))

	rep, err := Verify(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replayed != 3 || rep.TruncatedBytes == 0 || !rep.Healthy {
		t.Fatalf("verify report %+v", rep)
	}
	after, _ := os.ReadFile(walPath)
	ckptAfter, _ := os.ReadFile(filepath.Join(dir, checkpointFile))
	if !bytes.Equal(before, after) || !bytes.Equal(ckptBefore, ckptAfter) {
		t.Fatal("Verify modified the directory")
	}
}

func TestFsyncPolicies(t *testing.T) {
	for _, pol := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncOff} {
		t.Run(string(pol), func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "g1")
			s := newStore(t, dir, 23, Config{Fsync: pol, FsyncInterval: time.Millisecond})
			rng := rand.New(rand.NewSource(24))
			applyN(t, s, rng, 5)
			st := s.WALStats()
			if st.Appends != 5 || st.AppendBytes == 0 {
				t.Fatalf("stats %+v", st)
			}
			if pol == FsyncAlways && st.Fsyncs != 5 {
				t.Fatalf("always policy synced %d times, want 5", st.Fsyncs)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			rec, _, err := Recover(dir, Config{})
			if err != nil {
				t.Fatal(err)
			}
			verifyLive(t, rec.Live())
			rec.Close()
		})
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for _, ok := range []string{"", "always", "interval", "off"} {
		if _, err := ParseFsyncPolicy(ok); err != nil {
			t.Fatalf("%q rejected: %v", ok, err)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestCheckpointStateRoundTrip(t *testing.T) {
	dir := t.TempDir()
	g := testGraph(25)
	live, err := dynamic.New(g, dynamic.Options{FallbackDirtyFraction: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(26))
	for i := 0; i < 5; i++ {
		if _, err := live.Apply(flipBatch(rng, live)); err != nil {
			t.Fatal(err)
		}
	}
	want := live.State()
	if err := WriteCheckpoint(dir, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != want.Version || got.Healthy != want.Healthy ||
		got.NumColors != want.NumColors || got.Backend != want.Backend ||
		got.FallbackDirtyFraction != want.FallbackDirtyFraction {
		t.Fatalf("scalar fields diverged:\n got %+v\nwant %+v", got, want)
	}
	if !reflect.DeepEqual(got.Colors, want.Colors) || !reflect.DeepEqual(got.Removed, want.Removed) {
		t.Fatal("colors/removed diverged")
	}
	if got.Stats != want.Stats {
		t.Fatalf("stats %+v, want %+v", got.Stats, want.Stats)
	}
	if !reflect.DeepEqual(got.G.Edges(), want.G.Edges()) {
		t.Fatal("graph diverged")
	}
	if got.LastGood == nil || got.LastGood.Version != want.LastGood.Version {
		t.Fatal("last-good diverged")
	}
	for v := 0; v < g.N(); v++ {
		if got.G.ID(v) != want.G.ID(v) {
			t.Fatalf("ID(%d) lost in round trip", v)
		}
	}
}

func TestReadCheckpointRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	live, err := dynamic.New(testGraph(27), dynamic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteCheckpoint(dir, live.State()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, checkpointFile)
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, mutate := range []func([]byte) []byte{
		func(b []byte) []byte { return b[:len(b)/2] },           // torn body
		func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b }, // payload flip
		func(b []byte) []byte { b[2] ^= 0xff; return b },        // magic flip
		func(b []byte) []byte { return b[:4] },                  // short header
	} {
		if err := os.WriteFile(path, mutate(append([]byte(nil), clean...)), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadCheckpoint(dir); !errors.Is(err, ErrNoCheckpoint) {
			t.Fatalf("corrupt checkpoint accepted: %v", err)
		}
	}
}
