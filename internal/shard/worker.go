package shard

import (
	"fmt"
	"sort"

	"deltacoloring/internal/local"
)

// Update carries one vertex's color across the cut, addressed by the
// parent-graph vertex index (the one namespace all shards share).
type Update struct {
	V int32 `json:"v"`
	C int32 `json:"c"`
}

// StepResult is one worker's contribution to one LOCAL round.
type StepResult struct {
	// Changed lists the boundary locals that took a color this round,
	// ascending by parent vertex; the coordinator routes each to every
	// shard holding its ghost.
	Changed []Update `json:"changed,omitempty"`
	// NotDone is the number of still-uncolored locals.
	NotDone int `json:"not_done"`
}

// Worker executes one shard's side of the protocol: it owns the shard
// subgraph, applies the coordinator's ghost updates between rounds, and
// evaluates the wire rule on exactly the local vertices whose closed
// neighborhood changed — the frontier engine's activation-set idea applied
// across the cut, so a quiet boundary costs no evaluations at all.
type Worker struct {
	part  *Part
	delta int
	net   *local.Network
	run   *local.Runner[int32]
	rule  func(v int, self int32, nbrs local.Nbrs[int32]) int32

	isBoundary []bool
	active     []int32 // sub-local indices to evaluate next round
	inActive   []bool
	changed    []int32 // scratch reused across rounds
	notDone    int
}

// NewWorker builds the worker for one shard. delta is the parent graph's
// maximum degree, bounding every legal color.
func NewWorker(part *Part, delta int) *Worker {
	g := part.Sub.G
	st := make([]int32, g.N())
	for v := range st {
		st[v] = none
	}
	net := local.New(g)
	w := &Worker{
		part:       part,
		delta:      delta,
		net:        net,
		run:        local.NewRunner(net, st),
		rule:       Rule(g),
		isBoundary: make([]bool, g.N()),
		inActive:   make([]bool, g.N()),
		notDone:    len(part.Locals),
	}
	for _, i := range part.Boundary {
		w.isBoundary[i] = true
	}
	// Round one evaluates every local, exactly like the dense first round.
	w.active = append(w.active, part.Locals...)
	for _, i := range part.Locals {
		w.inActive[i] = true
	}
	return w
}

// NotDone returns the number of still-uncolored locals.
func (w *Worker) NotDone() int { return w.notDone }

// Rounds returns the LOCAL rounds charged on this worker's network.
func (w *Worker) Rounds() int { return w.net.Rounds() }

// Close releases the worker's network resources.
func (w *Worker) Close() { w.net.Close() }

// Step applies the coordinator's ghost updates, runs one sparse LOCAL round
// over the activated locals, and reports the boundary vertices that took a
// color. Updates are validated against the exchange contract first — a
// corrupted message surfaces as *ExchangeViolation, never as a silently
// wrong coloring.
func (w *Worker) Step(shard int, updates []Update) (*StepResult, error) {
	g := w.part.Sub.G
	states := w.run.States()
	for _, u := range updates {
		if u.V < 0 || int(u.V) >= len(w.part.Sub.FromParent) {
			return nil, &ExchangeViolation{Shard: shard, Vertex: int(u.V), Reason: "unknown parent vertex"}
		}
		i := w.part.Sub.FromParent[u.V]
		if i < 0 {
			return nil, &ExchangeViolation{Shard: shard, Vertex: int(u.V), Reason: "vertex has no copy in this shard"}
		}
		if w.part.IsLocal[i] {
			return nil, &ExchangeViolation{Shard: shard, Vertex: int(u.V), Reason: "update addresses a local vertex, not a ghost"}
		}
		if u.C < 0 || int(u.C) > w.delta {
			return nil, &ExchangeViolation{Shard: shard, Vertex: int(u.V),
				Reason: fmt.Sprintf("color %d outside [0,%d]", u.C, w.delta)}
		}
		if prev := states[i]; prev != none && prev != u.C {
			return nil, &ExchangeViolation{Shard: shard, Vertex: int(u.V),
				Reason: fmt.Sprintf("ghost recolored from %d to %d", prev, u.C)}
		}
		states[i] = u.C
		// A ghost's new color can unblock its still-uncolored local
		// neighbors: activate them for this round.
		for _, j := range g.Neighbors(int(i)) {
			if w.part.IsLocal[j] && states[j] == none && !w.inActive[j] {
				w.inActive[j] = true
				w.active = append(w.active, j)
			}
		}
	}
	// Ascending evaluation order gives canonical Changed messages; results
	// are order-independent (SparseStep is two-phase), this is for the wire.
	sort.Slice(w.active, func(a, b int) bool { return w.active[a] < w.active[b] })
	w.changed = w.run.SparseStep(w.active, w.changed[:0], w.rule)
	for _, v := range w.active {
		w.inActive[v] = false
	}
	w.active = w.active[:0]
	res := &StepResult{}
	for _, v := range w.changed {
		w.notDone--
		if w.isBoundary[v] {
			res.Changed = append(res.Changed, Update{V: int32(w.part.Sub.ToParent[v]), C: states[v]})
		}
		// A newly colored local constrains its uncolored local neighbors:
		// activate them for the next round.
		for _, j := range g.Neighbors(int(v)) {
			if w.part.IsLocal[j] && states[j] == none && !w.inActive[j] {
				w.inActive[j] = true
				w.active = append(w.active, j)
			}
		}
	}
	res.NotDone = w.notDone
	return res, nil
}

// Finish returns every local vertex's final color, ascending by parent
// vertex. An uncolored local means the coordinator stopped too early.
func (w *Worker) Finish() ([]Update, error) {
	states := w.run.States()
	out := make([]Update, 0, len(w.part.Locals))
	for _, i := range w.part.Locals {
		if states[i] == none {
			return nil, fmt.Errorf("shard: vertex %d finished uncolored", w.part.Sub.ToParent[i])
		}
		out = append(out, Update{V: int32(w.part.Sub.ToParent[i]), C: states[i]})
	}
	return out, nil
}
