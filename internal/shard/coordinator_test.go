package shard

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"deltacoloring/internal/graph"
	"deltacoloring/internal/local"
)

// TestQuietShardsAreSkipped pins the frontier idea at the cluster level: on
// a long path the coloring wave drains shard by shard, so finished shards
// stop being stepped and StepCalls lands well under K × rounds.
func TestQuietShardsAreSkipped(t *testing.T) {
	g := graph.Path(96)
	res, err := Run(context.Background(), g, Config{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	dense := res.K * res.Rounds
	if res.Traffic.StepCalls >= dense {
		t.Fatalf("StepCalls = %d, dense stepping would be %d — quiet shards were not skipped",
			res.Traffic.StepCalls, dense)
	}
}

// TestRunHonorsContextCancel: a canceled context stops the run with the
// context's error rather than a wrong result.
func TestRunHonorsContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := graph.Grid(8, 8)
	if _, err := Run(ctx, g, Config{K: 3}); err == nil {
		t.Fatal("canceled run returned a result")
	} else if !errors.Is(err, context.Canceled) && !strings.Contains(err.Error(), "canceled") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// errTransport fails a chosen operation to exercise the coordinator's
// abort-and-fail path.
type errTransport struct {
	Transport
	failStep   bool
	failFinish bool
	aborted    int
}

func (e *errTransport) Step(ctx context.Context, shard int, updates []Update) (*StepResult, error) {
	if e.failStep {
		return nil, errors.New("worker lost")
	}
	return e.Transport.Step(ctx, shard, updates)
}

func (e *errTransport) Finish(ctx context.Context, shard int) ([]Update, error) {
	if e.failFinish {
		return nil, errors.New("worker lost")
	}
	return e.Transport.Finish(ctx, shard)
}

func (e *errTransport) Abort(shard int) {
	e.aborted++
	e.Transport.Abort(shard)
}

func TestRunAbortsAllShardsOnFailure(t *testing.T) {
	g := graph.Grid(6, 6)
	for _, mode := range []string{"step", "finish"} {
		tr := &errTransport{Transport: NewInProcess()}
		if mode == "step" {
			tr.failStep = true
		} else {
			tr.failFinish = true
		}
		res, err := Run(context.Background(), g, Config{K: 3, Transport: tr})
		if err == nil || res != nil {
			t.Fatalf("%s failure: Run returned a result", mode)
		}
		if tr.aborted == 0 {
			t.Fatalf("%s failure: no shard was aborted", mode)
		}
	}
}

// ownerStealTransport reports one vertex from the wrong shard, which the
// merge must refuse as a *MergeViolation.
type ownerStealTransport struct {
	Transport
}

func (o *ownerStealTransport) Finish(ctx context.Context, shard int) ([]Update, error) {
	finals, err := o.Transport.Finish(ctx, shard)
	if err != nil || shard != 0 || len(finals) == 0 {
		return finals, err
	}
	// Duplicate the first final under a different color: the merge sees the
	// vertex reported twice (or owner-mismatched on another shard's turn).
	return append(finals, finals[0]), nil
}

func TestMergeRefusesDoubleReports(t *testing.T) {
	g := graph.Grid(6, 6)
	_, err := Run(context.Background(), g, Config{K: 3, Transport: &ownerStealTransport{NewInProcess()}})
	var mv *MergeViolation
	if !errors.As(err, &mv) {
		t.Fatalf("got %v, want *MergeViolation", err)
	}
}

// TestRunRecordsPhases checks the span stream covers the three coordinator
// phases, so service traces of sharded runs stay structured.
func TestRunRecordsPhases(t *testing.T) {
	var names []string
	g := graph.PermuteIDs(graph.Grid(5, 5), rand.New(rand.NewSource(3)))
	_, err := Run(context.Background(), g, Config{
		K:        2,
		SpanHook: func(sp local.Span) { names = append(names, sp.Name) },
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"shard/partition": false, "shard/solve": false, "shard/merge": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Fatalf("phase %q missing from spans %v", n, names)
		}
	}
}

// TestCallTimeoutBoundsHungWorker: a worker that never answers fails the run
// within the per-call budget instead of wedging the coordinator forever.
func TestCallTimeoutBoundsHungWorker(t *testing.T) {
	g := graph.Grid(6, 6)
	tr := NewChaosTransport(NewInProcess(), ChaosPlan{Mode: ChaosHang, Seed: 1, Prob: 1})
	start := time.Now()
	_, err := Run(context.Background(), g, Config{K: 2, Transport: tr, CallTimeout: 50 * time.Millisecond})
	if err == nil {
		t.Fatal("hung worker produced a result")
	}
	if !tr.Fired() {
		t.Fatal("hang fault never fired")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("coordinator took %v to give up on a hung worker", elapsed)
	}
}
