package shard

import (
	"fmt"
	"math/rand"
	"testing"

	"deltacoloring/internal/graph"
)

// testGraphs is the shared workload set for the shard package: sparse,
// dense, disconnected, degenerate, and the paper's own families.
func testGraphs(t testing.TB) map[string]*graph.Graph {
	t.Helper()
	ring, _ := graph.EasyCliqueRing(6, 12)
	hard, _ := graph.HardCliqueBipartite(12, 12)
	return map[string]*graph.Graph{
		"path":           graph.Path(40),
		"cycle":          graph.Cycle(33),
		"complete":       graph.Complete(12),
		"star":           graph.Star(25),
		"grid":           graph.Grid(7, 6),
		"torus":          graph.Torus(5, 5),
		"tree":           graph.RandomTree(60, rand.New(rand.NewSource(5))),
		"regular":        graph.RandomRegular(48, 5, rand.New(rand.NewSource(6))),
		"gnp":            graph.ErdosRenyi(50, 0.12, rand.New(rand.NewSource(7))),
		"cliques":        graph.DisjointCliques(4, 6),
		"clique-ring":    ring,
		"hard-bipartite": hard,
		"singleton":      graph.Path(1),
		"two-isolated":   graph.Path(2),
	}
}

var testShardCounts = []int{1, 2, 3, 4, 7}

func TestBuildPartitionInvariants(t *testing.T) {
	for name, g := range testGraphs(t) {
		for _, k := range testShardCounts {
			t.Run(fmt.Sprintf("%s/k=%d", name, k), func(t *testing.T) {
				p, err := BuildPartition(g, k)
				if err != nil {
					t.Fatalf("BuildPartition: %v", err)
				}
				if p.K < 1 || p.K > k || p.K > g.N() {
					t.Fatalf("K = %d outside [1, min(%d, %d)]", p.K, k, g.N())
				}
				if err := VerifyPartition(g, p); err != nil {
					t.Fatalf("VerifyPartition: %v", err)
				}
				if err := Reassemble(g, p); err != nil {
					t.Fatalf("Reassemble: %v", err)
				}
				locals := 0
				for s := range p.Parts {
					locals += len(p.Parts[s].Locals)
				}
				if locals != g.N() {
					t.Fatalf("parts own %d vertices, graph has %d", locals, g.N())
				}
				if k == 1 && (p.CutEdges != 0 || p.Ghosts() != 0) {
					t.Fatalf("k=1 partition has %d cut edges, %d ghosts", p.CutEdges, p.Ghosts())
				}
			})
		}
	}
}

func TestBuildPartitionBalance(t *testing.T) {
	g := graph.RandomRegular(120, 6, rand.New(rand.NewSource(9)))
	p, err := BuildPartition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	// 1+deg weights with a ceil cap: no shard may exceed twice the even share.
	for s := range p.Parts {
		if got := len(p.Parts[s].Locals); got > g.N()/2 {
			t.Fatalf("shard %d owns %d of %d vertices — partition is degenerate", s, got, g.N())
		}
		if len(p.Parts[s].Locals) == 0 {
			t.Fatalf("shard %d owns no vertices", s)
		}
	}
}

func TestVerifyPartitionCatchesCorruption(t *testing.T) {
	g := graph.Grid(6, 6)
	corruptions := map[string]func(p *Partition){
		"owner-flip":     func(p *Partition) { p.Owner[0] = (p.Owner[0] + 1) % int32(p.K) },
		"cut-miscount":   func(p *Partition) { p.CutEdges++ },
		"local-dropped":  func(p *Partition) { p.Parts[0].Locals = p.Parts[0].Locals[:len(p.Parts[0].Locals)-1] },
		"ghost-promoted": func(p *Partition) { p.Parts[0].IsLocal[p.Parts[0].Ghosts[0]] = true },
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			p, err := BuildPartition(g, 3)
			if err != nil {
				t.Fatal(err)
			}
			corrupt(p)
			err = VerifyPartition(g, p)
			if err == nil {
				t.Fatal("VerifyPartition accepted a corrupted partition")
			}
			if _, ok := err.(*PartitionViolation); !ok {
				t.Fatalf("got %T (%v), want *PartitionViolation", err, err)
			}
		})
	}
}

func TestNewPartFromWireRejectsBadMappings(t *testing.T) {
	g := graph.Grid(5, 5)
	p, err := BuildPartition(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	src := &p.Parts[1]
	toParent := make([]int32, len(src.Sub.ToParent))
	for i, pv := range src.Sub.ToParent {
		toParent[i] = int32(pv)
	}
	if _, err := NewPartFromWire(src.Sub.G, toParent, src.Locals, g.N()); err != nil {
		t.Fatalf("valid wire part rejected: %v", err)
	}
	bad := make([]int32, len(toParent))
	copy(bad, toParent)
	bad[0] = int32(g.N()) // out of the parent's range
	if _, err := NewPartFromWire(src.Sub.G, bad, src.Locals, g.N()); err == nil {
		t.Fatal("out-of-range parent vertex accepted")
	}
	if _, err := NewPartFromWire(src.Sub.G, toParent[:len(toParent)-1], src.Locals, g.N()); err == nil {
		t.Fatal("short ToParent accepted")
	}
	if _, err := NewPartFromWire(src.Sub.G, toParent, []int32{int32(src.Sub.G.N())}, g.N()); err == nil {
		t.Fatal("out-of-range local index accepted")
	}
}

func TestEqualCSRDetectsDrift(t *testing.T) {
	a := graph.Grid(4, 4)
	if err := graph.EqualCSR(a, graph.Grid(4, 4)); err != nil {
		t.Fatalf("identical graphs differ: %v", err)
	}
	if err := graph.EqualCSR(a, graph.Grid(4, 5)); err == nil {
		t.Fatal("different sizes compare equal")
	}
	b := graph.NewBuilder(16)
	for v := 0; v < 16; v++ {
		for _, w := range a.Neighbors(v) {
			if v < int(w) {
				b.AddEdge(v, int(w))
			}
		}
	}
	b.SetID(3, 999)
	if err := graph.EqualCSR(a, b.MustBuild()); err == nil {
		t.Fatal("different IDs compare equal")
	}
}
