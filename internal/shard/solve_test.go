package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"deltacoloring/internal/graph"
	"deltacoloring/internal/local"
)

// singleRun is the one-process oracle every sharded run must match.
type singleRun struct {
	colors []int
	rounds int
}

func runSingle(t *testing.T, g *graph.Graph) singleRun {
	t.Helper()
	net := local.New(g)
	defer net.Close()
	colors, rounds, err := SolveSingle(net)
	if err != nil {
		t.Fatalf("SolveSingle: %v", err)
	}
	if err := verifyMerged(g, colors); err != nil {
		t.Fatalf("SolveSingle produced an invalid coloring: %v", err)
	}
	return singleRun{colors: colors, rounds: rounds}
}

// TestShardedBitIdentity is the tentpole contract: at every shard count the
// sharded run returns the same colors AND the same round count as the dense
// single-process engine.
func TestShardedBitIdentity(t *testing.T) {
	for name, g := range testGraphs(t) {
		want := runSingle(t, g)
		for _, k := range testShardCounts {
			t.Run(fmt.Sprintf("%s/k=%d", name, k), func(t *testing.T) {
				res, err := Run(context.Background(), g, Config{K: k})
				if err != nil {
					t.Fatalf("Run: %v", err)
				}
				if !reflect.DeepEqual(res.Colors, want.colors) {
					t.Fatalf("colors diverge from the single-process run\n got %v\nwant %v", res.Colors, want.colors)
				}
				if res.Rounds != want.rounds {
					t.Fatalf("rounds = %d, single-process engine used %d", res.Rounds, want.rounds)
				}
				if res.NumColors != g.MaxDegree()+1 {
					t.Fatalf("NumColors = %d, want Δ+1 = %d", res.NumColors, g.MaxDegree()+1)
				}
				if res.Traffic.CutEdges > 0 && res.Traffic.BoundaryUpdates == 0 {
					t.Fatal("cut edges exist but no boundary update ever crossed them")
				}
			})
		}
	}
}

// TestShardedBitIdentityUnderIDPermutation re-checks bit-identity when the
// symmetry-breaking IDs no longer coincide with vertex indices — the case
// that catches any index-based (rather than ID-based) tie-break.
func TestShardedBitIdentityUnderIDPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, base := range []*graph.Graph{
		graph.Grid(7, 6),
		graph.RandomRegular(48, 5, rand.New(rand.NewSource(8))),
		graph.Cycle(33),
	} {
		g := graph.PermuteIDs(base, rng)
		want := runSingle(t, g)
		for _, k := range []int{2, 4} {
			res, err := Run(context.Background(), g, Config{K: k})
			if err != nil {
				t.Fatalf("Run k=%d: %v", k, err)
			}
			if !reflect.DeepEqual(res.Colors, want.colors) || res.Rounds != want.rounds {
				t.Fatalf("permuted-ID run diverges at k=%d: rounds %d vs %d", k, res.Rounds, want.rounds)
			}
		}
	}
}

// newTestCluster serves count independent worker Hosts over HTTP and returns
// their base URLs.
func newTestCluster(t *testing.T, count int) []string {
	t.Helper()
	addrs := make([]string, count)
	for i := 0; i < count; i++ {
		host := NewHost(0)
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			var req RoundsRequest
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			_ = json.NewEncoder(w).Encode(host.Handle(&req))
		}))
		t.Cleanup(srv.Close)
		addrs[i] = srv.URL
	}
	return addrs
}

// TestShardedBitIdentityOverHTTP runs the full wire protocol — subgraphs
// shipped as binary CSR, rounds as JSON — against real HTTP worker processes
// and demands the same bit-identity the in-process transport has.
func TestShardedBitIdentityOverHTTP(t *testing.T) {
	for _, tc := range []struct{ k, workers int }{
		{1, 1}, {2, 2}, {4, 2}, {4, 4}, {3, 5},
	} {
		t.Run(fmt.Sprintf("k=%d/workers=%d", tc.k, tc.workers), func(t *testing.T) {
			g := graph.PermuteIDs(graph.Grid(8, 5), rand.New(rand.NewSource(21)))
			want := runSingle(t, g)
			tr, err := NewHTTPTransport(newTestCluster(t, tc.workers), "bit-identity", nil)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(context.Background(), g, Config{K: tc.k, Transport: tr})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if !reflect.DeepEqual(res.Colors, want.colors) {
				t.Fatal("HTTP cluster colors diverge from the single-process run")
			}
			if res.Rounds != want.rounds {
				t.Fatalf("HTTP cluster rounds = %d, want %d", res.Rounds, want.rounds)
			}
		})
	}
}

// TestHostSessionLifecycle pins the worker host's bookkeeping: sessions are
// dropped on finish and abort, and unknown sessions are refused.
func TestHostSessionLifecycle(t *testing.T) {
	g := graph.Grid(5, 4)
	p, err := BuildPartition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	host := NewHost(0)
	initReq := func(s int) *RoundsRequest {
		part := &p.Parts[s]
		var req RoundsRequest
		req.Op = "init"
		req.Session = "t"
		req.Shard = s
		req.Graph, req.ToParent, req.Locals, req.ParentN, req.Delta = encodePartWire(t, part, g)
		return &req
	}
	for s := 0; s < p.K; s++ {
		if resp := host.Handle(initReq(s)); !resp.OK {
			t.Fatalf("init shard %d: %s", s, resp.Error)
		}
	}
	if host.Sessions() != p.K {
		t.Fatalf("Sessions = %d, want %d", host.Sessions(), p.K)
	}
	if resp := host.Handle(&RoundsRequest{Op: "step", Session: "nope", Shard: 0}); resp.Error == "" {
		t.Fatal("unknown session accepted")
	}
	if resp := host.Handle(&RoundsRequest{Op: "bogus"}); resp.Error == "" {
		t.Fatal("unknown op accepted")
	}
	host.Handle(&RoundsRequest{Op: "abort", Session: "t", Shard: 0})
	host.Handle(&RoundsRequest{Op: "abort", Session: "t", Shard: 1})
	if host.Sessions() != 0 {
		t.Fatalf("Sessions = %d after aborts, want 0", host.Sessions())
	}
}

func encodePartWire(t *testing.T, part *Part, g *graph.Graph) (enc []byte, toParent, locals []int32, parentN, delta int) {
	t.Helper()
	var buf bytes.Buffer
	if err := graph.EncodeBinary(&buf, part.Sub.G); err != nil {
		t.Fatal(err)
	}
	toParent = make([]int32, len(part.Sub.ToParent))
	for i, pv := range part.Sub.ToParent {
		toParent[i] = int32(pv)
	}
	return buf.Bytes(), toParent, part.Locals, g.N(), g.MaxDegree()
}
