package shard

import (
	"fmt"
	"sync"

	"deltacoloring/internal/coloring"
	"deltacoloring/internal/core"
	"deltacoloring/internal/graph"
	"deltacoloring/internal/local"
)

// none is the uncolored engine state.
const none = int32(coloring.None)

// palPool recycles the per-evaluation working palette; the rule may run
// concurrently across the dense engine's workers.
var palPool = sync.Pool{New: func() any { return new(coloring.Palette) }}

// Rule returns the wire algorithm's LOCAL state function over g: greedy
// deg+1 coloring with ID-local-maximum symmetry breaking. An uncolored
// vertex defers while any uncolored neighbor has a larger ID; otherwise it
// takes the smallest color in [0, deg(v)+1) unused by its neighbors. The
// tie-break reads vertex IDs, never indices, so the rule computes the same
// trajectory on a shard subgraph (where vertices are renumbered but IDs are
// inherited) as on the parent graph — the heart of the bit-identity
// contract. The function is pure, which is also what makes it shardable:
// its value depends only on the closed neighborhood's previous-round states.
func Rule(g *graph.Graph) func(v int, self int32, nbrs local.Nbrs[int32]) int32 {
	return func(v int, self int32, nbrs local.Nbrs[int32]) int32 {
		if self != none {
			return self
		}
		id := g.ID(v)
		p := palPool.Get().(*coloring.Palette)
		p.Fill(nbrs.Len() + 1)
		for i := 0; i < nbrs.Len(); i++ {
			if c := nbrs.State(i); c != none {
				p.Remove(int(c))
			} else if g.ID(nbrs.At(i)) > id {
				palPool.Put(p)
				return self // defer to the higher-ID uncolored neighbor
			}
		}
		c := p.Min()
		palPool.Put(p)
		if c >= 0 {
			return int32(c)
		}
		return self // unreachable on a well-formed instance: |palette| > deg
	}
}

// Done is the wire algorithm's quiescence predicate.
func Done(v int, s int32) bool { return s != none }

// SolveSingle runs the wire algorithm on net's whole graph in one process —
// the oracle every sharded run must match bit-for-bit — and publishes the
// final coloring checkpoint. It returns the colors, the engine rounds
// executed, and the palette bound Δ+1.
func SolveSingle(net *local.Network) ([]int, int, error) {
	g := net.Graph()
	defer net.Phase("shard/solve")()
	st := make([]int32, g.N())
	for v := range st {
		st[v] = none
	}
	final, rounds, err := local.NewRunner(net, st).Run(g.N()+2, Rule(g), Done)
	if err != nil {
		return nil, rounds, err
	}
	colors := make([]int, len(final))
	for v, c := range final {
		colors[v] = int(c)
	}
	if err := net.Checkpoint("final", &core.CkptColoring{
		C: &coloring.Partial{Colors: colors}, NumColors: g.MaxDegree() + 1, Complete: true,
	}); err != nil {
		return nil, rounds, err
	}
	return colors, rounds, nil
}

// verifyMerged checks the merged coloring against the parent graph:
// complete, in palette range, and proper. Failures are *MergeViolation.
func verifyMerged(g *graph.Graph, colors []int) error {
	k := g.MaxDegree() + 1
	for v, c := range colors {
		if c < 0 || c >= k {
			return &MergeViolation{Vertex: v, Reason: fmt.Sprintf("color %d outside [0,%d)", c, k)}
		}
		for _, w := range g.Neighbors(v) {
			if colors[w] == c {
				return &MergeViolation{Vertex: v, Reason: fmt.Sprintf("conflicts with neighbor %d on color %d", w, c)}
			}
		}
	}
	return nil
}
