// Package shard is the horizontal scale-out engine: it edge-cut partitions
// a CSR graph into k shards with ghost (halo) vertices along the cut, fans
// the shards out to workers — in-process or across processes over the
// service's /v1/shard/rounds endpoint — and runs true message-passing LOCAL
// rounds across the cut: each round, workers exchange only the boundary
// vertices that changed, routed through the coordinator, and quiet
// boundaries cost nothing. The merged coloring is bit-identical — same
// colors, same round count — to the single-process engine at any shard
// count, which the deltacheck "sharded" conformance suite enforces. See
// DESIGN.md §15 for the contract.
package shard

import (
	"bytes"
	"fmt"

	"deltacoloring/internal/graph"
)

// Part is one shard of a partition: the induced subgraph over the shard's
// owned (local) vertices plus the ghost copies of off-shard neighbors.
// Every local vertex sees its full parent neighborhood inside Sub.G, so a
// LOCAL state function evaluated on a local vertex reads exactly the states
// it would read in the parent graph.
type Part struct {
	// Sub is the induced subgraph over locals ∪ ghosts, with vertex IDs
	// inherited from the parent (symmetry breaking is ID-based, so shard
	// renumbering cannot perturb results).
	Sub *graph.Sub
	// Locals lists the sub-local indices owned by this shard, ascending.
	Locals []int32
	// IsLocal marks, per Sub.G vertex, ownership by this shard.
	IsLocal []bool
	// Ghosts lists the sub-local indices mirroring other shards' vertices.
	Ghosts []int32
	// Boundary lists the sub-local indices of owned vertices with at least
	// one off-shard neighbor; only their state changes cross the cut.
	Boundary []int32
}

// Partition is an edge-cut partition of a parent graph into K shards.
type Partition struct {
	// N is the parent vertex count.
	N int
	// K is the shard count (clamped to [1, max(N,1)]).
	K int
	// Owner maps each parent vertex to its owning shard.
	Owner []int32
	// Parts holds one Part per shard.
	Parts []Part
	// CutEdges is the number of parent edges whose endpoints live on
	// different shards (each counted once).
	CutEdges int
}

// Ghosts returns the total ghost copies across all shards.
func (p *Partition) Ghosts() int {
	n := 0
	for i := range p.Parts {
		n += len(p.Parts[i].Ghosts)
	}
	return n
}

// BuildPartition greedily edge-cut partitions g into k balanced shards.
// Vertices are assigned in index order to the shard holding the most
// already-assigned neighbors, subject to a balance cap on shard weight
// (1 + degree per vertex, i.e. the per-round work of the LOCAL engine);
// ties prefer the lighter, then lower-indexed shard. The assignment is a
// pure function of (g, k), so every process computes the same partition.
func BuildPartition(g *graph.Graph, k int) (*Partition, error) {
	n := g.N()
	if k < 1 {
		return nil, fmt.Errorf("shard: shard count %d < 1", k)
	}
	if n > 0 && k > n {
		k = n
	}
	totalWeight := int64(n) + 2*int64(g.M())
	capWeight := (totalWeight + int64(k) - 1) / int64(k)
	load := make([]int64, k)
	counts := make([]int32, k)
	owner := make([]int32, n)
	for v := 0; v < n; v++ {
		for s := range counts {
			counts[s] = 0
		}
		for _, w := range g.Neighbors(v) {
			if int(w) < v {
				counts[owner[w]]++
			}
		}
		wv := int64(1 + g.Degree(v))
		best := -1
		for s := 0; s < k; s++ {
			if load[s]+wv > capWeight {
				continue
			}
			if best < 0 || counts[s] > counts[best] ||
				(counts[s] == counts[best] && load[s] < load[best]) {
				best = s
			}
		}
		if best < 0 {
			// Every shard is at the cap (rounding slack ran out): spill to
			// the lightest shard so the assignment stays total.
			best = 0
			for s := 1; s < k; s++ {
				if load[s] < load[best] {
					best = s
				}
			}
		}
		owner[v] = int32(best)
		load[best] += wv
	}

	p := &Partition{N: n, K: k, Owner: owner, Parts: make([]Part, k)}
	members := make([][]int, k)
	for v := 0; v < n; v++ {
		members[owner[v]] = append(members[owner[v]], v)
	}
	// stamp dedupes ghost discovery per shard without O(k·n) bitmaps.
	stamp := make([]int32, n)
	for v := range stamp {
		stamp[v] = -1
	}
	for s := 0; s < k; s++ {
		locals := len(members[s])
		for _, v := range members[s][:locals] {
			stamp[v] = int32(s)
		}
		for i := 0; i < locals; i++ {
			v := members[s][i]
			for _, w := range g.Neighbors(v) {
				if owner[w] != int32(s) {
					if int32(v) < w {
						p.CutEdges++
					}
					if stamp[w] != int32(s) {
						stamp[w] = int32(s)
						members[s] = append(members[s], int(w))
					}
				}
			}
		}
		p.Parts[s] = buildPart(graph.Induced(g, members[s]), members[s][:locals])
	}
	return p, nil
}

// buildPart derives the per-shard index structures from an induced subgraph
// and the parent indices of the owned vertices. It is shared by the
// partitioner and by remote worker hosts reconstructing a Part from the
// wire (see NewPartFromWire).
func buildPart(sub *graph.Sub, parentLocals []int) Part {
	part := Part{Sub: sub, IsLocal: make([]bool, sub.G.N())}
	for _, pv := range parentLocals {
		i := sub.FromParent[pv]
		part.IsLocal[i] = true
	}
	for i := 0; i < sub.G.N(); i++ {
		if !part.IsLocal[i] {
			part.Ghosts = append(part.Ghosts, int32(i))
			continue
		}
		part.Locals = append(part.Locals, int32(i))
		for _, j := range sub.G.Neighbors(i) {
			if !part.IsLocal[j] {
				part.Boundary = append(part.Boundary, int32(i))
				break
			}
		}
	}
	return part
}

// NewPartFromWire reconstructs a Part on a worker host from its wire form:
// the encoded shard subgraph, the sub→parent vertex mapping, the owned
// sub-local indices, and the parent vertex count.
func NewPartFromWire(sub *graph.Graph, toParent []int32, locals []int32, parentN int) (*Part, error) {
	if len(toParent) != sub.N() {
		return nil, fmt.Errorf("shard: to_parent has %d entries for %d sub vertices", len(toParent), sub.N())
	}
	from := make([]int, parentN)
	for i := range from {
		from[i] = -1
	}
	to := make([]int, len(toParent))
	for i, pv := range toParent {
		if pv < 0 || int(pv) >= parentN {
			return nil, fmt.Errorf("shard: to_parent[%d]=%d outside [0,%d)", i, pv, parentN)
		}
		if from[pv] != -1 {
			return nil, fmt.Errorf("shard: parent vertex %d mapped twice", pv)
		}
		from[pv] = i
		to[i] = int(pv)
	}
	parentLocals := make([]int, 0, len(locals))
	for _, i := range locals {
		if i < 0 || int(i) >= sub.N() {
			return nil, fmt.Errorf("shard: local index %d outside [0,%d)", i, sub.N())
		}
		parentLocals = append(parentLocals, to[i])
	}
	part := buildPart(&graph.Sub{G: sub, ToParent: to, FromParent: from}, parentLocals)
	return &part, nil
}

// VerifyPartition checks the partition invariants against the parent graph:
// every vertex is owned by exactly one shard and is a local of exactly that
// shard's part, every local vertex keeps its full parent degree inside its
// shard subgraph (all neighbors present as locals or ghosts), every cut
// edge has ghost mirrors on both sides, and the cut-edge count matches.
// Failures are reported as *PartitionViolation.
func VerifyPartition(g *graph.Graph, p *Partition) error {
	fail := func(format string, args ...any) error {
		return &PartitionViolation{Err: fmt.Errorf(format, args...)}
	}
	if p.N != g.N() || len(p.Owner) != g.N() {
		return fail("partition covers %d vertices, graph has %d", len(p.Owner), g.N())
	}
	if p.K != len(p.Parts) || p.K < 1 {
		return fail("K=%d with %d parts", p.K, len(p.Parts))
	}
	seen := make([]bool, g.N())
	for s := range p.Parts {
		part := &p.Parts[s]
		if part.Sub.G.N() != len(part.IsLocal) {
			return fail("shard %d: IsLocal has %d entries for %d sub vertices", s, len(part.IsLocal), part.Sub.G.N())
		}
		for _, i := range part.Locals {
			pv := part.Sub.ToParent[i]
			if p.Owner[pv] != int32(s) {
				return fail("shard %d: local vertex %d owned by shard %d", s, pv, p.Owner[pv])
			}
			if seen[pv] {
				return fail("vertex %d is local in two shards", pv)
			}
			seen[pv] = true
			if part.Sub.G.Degree(int(i)) != g.Degree(pv) {
				return fail("shard %d: vertex %d has sub degree %d, parent degree %d (missing ghost)",
					s, pv, part.Sub.G.Degree(int(i)), g.Degree(pv))
			}
			if part.Sub.G.ID(int(i)) != g.ID(pv) {
				return fail("shard %d: vertex %d ID %d != parent ID %d", s, pv, part.Sub.G.ID(int(i)), g.ID(pv))
			}
		}
		for _, i := range part.Ghosts {
			pv := part.Sub.ToParent[i]
			if p.Owner[pv] == int32(s) {
				return fail("shard %d: ghost %d is owned by this shard", s, pv)
			}
		}
	}
	for v := 0; v < g.N(); v++ {
		if !seen[v] {
			return fail("vertex %d is local in no shard", v)
		}
	}
	cut := 0
	for v := 0; v < g.N(); v++ {
		for _, w := range g.Neighbors(v) {
			if int32(v) >= w || p.Owner[v] == p.Owner[w] {
				continue
			}
			cut++
			// The cut edge {v,w} must have ghosts on both sides: w mirrored
			// in v's shard, v mirrored in w's shard.
			for _, pair := range [2][2]int32{{p.Owner[v], w}, {p.Owner[w], int32(v)}} {
				part := &p.Parts[pair[0]]
				i := part.Sub.FromParent[pair[1]]
				if i < 0 {
					return fail("cut edge {%d,%d}: vertex %d has no ghost in shard %d", v, w, pair[1], pair[0])
				}
				if part.IsLocal[i] {
					return fail("cut edge {%d,%d}: vertex %d is local in shard %d, expected ghost", v, w, pair[1], pair[0])
				}
			}
		}
	}
	if cut != p.CutEdges {
		return fail("partition reports %d cut edges, graph has %d", p.CutEdges, cut)
	}
	return nil
}

// Reassemble rebuilds the parent graph from the shard subgraphs alone —
// each shard contributes every edge incident to its locals — and checks the
// result is byte-identical to the input CSR. It is the partition oracle
// behind FuzzPartition: information lost or invented by sharding cannot
// survive this round trip.
func Reassemble(g *graph.Graph, p *Partition) error {
	b := graph.NewBuilder(p.N)
	for s := range p.Parts {
		part := &p.Parts[s]
		for _, i := range part.Locals {
			pv := part.Sub.ToParent[i]
			b.SetID(pv, part.Sub.G.ID(int(i)))
			for _, j := range part.Sub.G.Neighbors(int(i)) {
				pw := part.Sub.ToParent[j]
				if pv < pw {
					b.AddEdge(pv, pw)
				} else if pw < pv && !part.IsLocal[j] {
					// Local-ghost edges with the ghost on the low side are
					// emitted here too: the ghost's owner shard also emits
					// them, and the builder dedupes.
					b.AddEdge(pw, pv)
				}
			}
		}
	}
	rg, err := b.Build()
	if err != nil {
		return &PartitionViolation{Err: fmt.Errorf("reassembly failed: %w", err)}
	}
	var want, got bytes.Buffer
	if err := graph.EncodeBinary(&want, g); err != nil {
		return err
	}
	if err := graph.EncodeBinary(&got, rg); err != nil {
		return err
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		if err := graph.EqualCSR(g, rg); err != nil {
			return &PartitionViolation{Err: fmt.Errorf("reassembled CSR differs: %w", err)}
		}
		return &PartitionViolation{Err: fmt.Errorf("reassembled CSR bytes differ")}
	}
	return nil
}
