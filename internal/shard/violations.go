package shard

import "fmt"

// PartitionViolation reports a structurally invalid partition: a vertex
// owned by no shard (or two), a cut edge missing its ghost mirror, or a
// shard subgraph that does not reassemble into the input CSR. It is the
// named error surfaced by VerifyPartition and by the "shard/partition"
// conformance checker.
type PartitionViolation struct {
	Err error
}

func (v *PartitionViolation) Error() string {
	return fmt.Sprintf("shard: partition violation: %v", v.Err)
}

func (v *PartitionViolation) Unwrap() error { return v.Err }

// ExchangeViolation reports a corrupted boundary exchange: an update that
// addresses an unknown or non-ghost vertex, carries an out-of-range color,
// or recolors an already-colored ghost. Workers validate every incoming
// update against the LOCAL-round contract before applying it, so a damaged
// message surfaces as this named error rather than a silent wrong coloring.
type ExchangeViolation struct {
	// Shard is the shard that rejected the update.
	Shard int
	// Vertex is the parent-graph vertex the update addressed (-1 when the
	// violation was reconstructed from a wire response without one).
	Vertex int
	// Reason describes the broken contract.
	Reason string
}

func (v *ExchangeViolation) Error() string {
	if v.Vertex < 0 {
		return fmt.Sprintf("shard: exchange violation (shard %d): %s", v.Shard, v.Reason)
	}
	return fmt.Sprintf("shard: exchange violation (shard %d, vertex %d): %s", v.Shard, v.Vertex, v.Reason)
}

// MergeViolation reports an invalid merged coloring: a vertex reported by
// the wrong shard, reported twice, never reported, out of palette range, or
// in conflict with a neighbor. The coordinator re-verifies the merged
// coloring against the parent graph before returning it, so a worker that
// lies about its final colors fails the job loudly.
type MergeViolation struct {
	// Vertex is the offending parent-graph vertex (-1 when the violation
	// was reconstructed from a wire response without one).
	Vertex int
	// Reason describes the broken contract.
	Reason string
}

func (v *MergeViolation) Error() string {
	if v.Vertex < 0 {
		return fmt.Sprintf("shard: merge violation: %s", v.Reason)
	}
	return fmt.Sprintf("shard: merge violation (vertex %d): %s", v.Vertex, v.Reason)
}
