package shard

import (
	"context"
	"fmt"
	"sync"
	"time"

	"deltacoloring/internal/coloring"
	"deltacoloring/internal/core"
	"deltacoloring/internal/graph"
	"deltacoloring/internal/local"
)

// Transport moves the protocol between the coordinator and one shard's
// worker. Implementations: InProcess (direct calls), HTTPTransport (the
// service's /v1/shard/rounds endpoint), and ChaosTransport (seeded fault
// injection around either). Step and Finish honor ctx's deadline; a
// transport error fails the whole run — the coordinator never merges a
// partial coloring.
type Transport interface {
	Init(ctx context.Context, shard int, part *Part, delta, parentN int) error
	Step(ctx context.Context, shard int, updates []Update) (*StepResult, error)
	Finish(ctx context.Context, shard int) ([]Update, error)
	Abort(shard int)
}

// Config tunes one sharded run.
type Config struct {
	// K is the shard count (default 1; clamped to the vertex count).
	K int
	// Transport carries the protocol (default: a fresh InProcess).
	Transport Transport
	// NetHook observes the coordinator's fully configured network before
	// the run starts — the seam for the conformance harness.
	NetHook func(*local.Network)
	// SpanHook receives each phase span as it closes.
	SpanHook func(local.Span)
	// CallTimeout bounds every transport call (default 30s): a hung worker
	// fails the run cleanly instead of wedging the coordinator.
	CallTimeout time.Duration
	// Session names the run for remote worker hosts (default "local").
	Session string
}

// Traffic counts what actually crossed the cut.
type Traffic struct {
	// CutEdges is the number of parent edges cut by the partition.
	CutEdges int `json:"cut_edges"`
	// Ghosts is the total ghost copies across shards.
	Ghosts int `json:"ghosts"`
	// BoundaryUpdates is the total boundary-state messages routed through
	// the coordinator over the whole run.
	BoundaryUpdates int `json:"boundary_updates"`
	// StepCalls is the total worker Step calls; quiet shards (nothing
	// active, nothing incoming) are skipped, so this undercounts K×rounds
	// exactly when the frontier idea saves wire traffic.
	StepCalls int `json:"step_calls"`
}

// Result is the outcome of one sharded run.
type Result struct {
	Colors    []int
	NumColors int
	// Rounds is the number of cross-cut LOCAL rounds executed — equal, by
	// the bit-identity contract, to the single-process engine's rounds.
	Rounds  int
	K       int
	Traffic Traffic
	Spans   []local.Span
}

// Run executes the wire algorithm on g across cfg.K shards: partition,
// fan-out, synchronous cross-cut rounds exchanging only changed boundary
// states, then merge and re-verify. The result is bit-identical to
// SolveSingle on the same graph at any shard count.
func Run(ctx context.Context, g *graph.Graph, cfg Config) (res *Result, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	k := cfg.K
	if k < 1 {
		k = 1
	}
	timeout := cfg.CallTimeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	net := local.New(g)
	defer net.Close()
	if ctx.Done() != nil {
		net.SetInterrupt(func() error { return ctx.Err() })
	}
	if cfg.SpanHook != nil {
		net.SetSpanHook(cfg.SpanHook)
	}
	if cfg.NetHook != nil {
		cfg.NetHook(net)
	}
	defer func() {
		if r := recover(); r != nil {
			ip, ok := r.(local.Interrupt)
			if !ok {
				panic(r)
			}
			res, err = nil, ip.Err
		}
	}()

	endPart := net.Phase("shard/partition")
	p, err := BuildPartition(g, k)
	if err != nil {
		return nil, err
	}
	if err := net.Checkpoint("shard/partition", p); err != nil {
		return nil, err
	}
	endPart()
	k = p.K

	tr := cfg.Transport
	if tr == nil {
		tr = NewInProcess()
	}
	call := func(fn func(context.Context) error) error {
		cctx, cancel := context.WithTimeout(ctx, timeout)
		defer cancel()
		return fn(cctx)
	}
	abortAll := func() {
		for s := 0; s < k; s++ {
			tr.Abort(s)
		}
	}
	for s := 0; s < k; s++ {
		part := &p.Parts[s]
		if err := call(func(c context.Context) error {
			return tr.Init(c, s, part, g.MaxDegree(), g.N())
		}); err != nil {
			abortAll()
			return nil, fmt.Errorf("shard %d init: %w", s, err)
		}
	}

	// ghostAt routes a boundary vertex to every shard holding its ghost.
	ghostAt := make(map[int32][]int32)
	for s := 0; s < k; s++ {
		part := &p.Parts[s]
		for _, i := range part.Ghosts {
			pv := int32(part.Sub.ToParent[i])
			ghostAt[pv] = append(ghostAt[pv], int32(s))
		}
	}

	endSolve := net.Phase("shard/solve")
	var traffic Traffic
	traffic.CutEdges = p.CutEdges
	traffic.Ghosts = p.Ghosts()
	pending := make([][]Update, k)
	next := make([][]Update, k)
	notDone := make([]int, k)
	total := 0
	for s := 0; s < k; s++ {
		notDone[s] = len(p.Parts[s].Locals)
		total += notDone[s]
	}
	maxRounds := g.N() + 2
	rounds := 0
	steps := make([]*StepResult, k)
	errs := make([]error, k)
	for total > 0 {
		if rounds >= maxRounds {
			abortAll()
			return nil, fmt.Errorf("shard: %d vertices uncolored after %d rounds", total, rounds)
		}
		var wg sync.WaitGroup
		for s := 0; s < k; s++ {
			steps[s], errs[s] = nil, nil
			if notDone[s] == 0 && len(pending[s]) == 0 {
				continue // quiet shard: no active locals, no incoming states
			}
			traffic.StepCalls++
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				errs[s] = call(func(c context.Context) error {
					var serr error
					steps[s], serr = tr.Step(c, s, pending[s])
					return serr
				})
			}(s)
		}
		wg.Wait()
		net.Charge(1) // one synchronous LOCAL round across the whole cut
		rounds++
		for s := 0; s < k; s++ {
			if errs[s] != nil {
				abortAll()
				return nil, fmt.Errorf("shard %d round %d: %w", s, rounds, errs[s])
			}
		}
		for s := 0; s < k; s++ {
			next[s] = next[s][:0]
		}
		for s := 0; s < k; s++ {
			if steps[s] == nil {
				continue
			}
			notDone[s] = steps[s].NotDone
			for _, u := range steps[s].Changed {
				for _, t := range ghostAt[u.V] {
					next[t] = append(next[t], u)
					traffic.BoundaryUpdates++
				}
			}
		}
		pending, next = next, pending
		total = 0
		for s := 0; s < k; s++ {
			total += notDone[s]
		}
	}
	endSolve()

	endMerge := net.Phase("shard/merge")
	colors := make([]int, g.N())
	for v := range colors {
		colors[v] = coloring.None
	}
	for s := 0; s < k; s++ {
		var finals []Update
		if err := call(func(c context.Context) error {
			var ferr error
			finals, ferr = tr.Finish(c, s)
			return ferr
		}); err != nil {
			abortAll()
			return nil, fmt.Errorf("shard %d finish: %w", s, err)
		}
		for _, u := range finals {
			if u.V < 0 || int(u.V) >= g.N() {
				abortAll()
				return nil, &MergeViolation{Vertex: int(u.V), Reason: "vertex outside the parent graph"}
			}
			if p.Owner[u.V] != int32(s) {
				abortAll()
				return nil, &MergeViolation{Vertex: int(u.V),
					Reason: fmt.Sprintf("reported by shard %d, owned by shard %d", s, p.Owner[u.V])}
			}
			if colors[u.V] != coloring.None {
				abortAll()
				return nil, &MergeViolation{Vertex: int(u.V), Reason: "color reported twice"}
			}
			colors[u.V] = int(u.C)
		}
	}
	for v, c := range colors {
		if c == coloring.None && g.N() > 0 {
			return nil, &MergeViolation{Vertex: v, Reason: "no shard reported a color"}
		}
	}
	if err := verifyMerged(g, colors); err != nil {
		return nil, err
	}
	if err := net.Checkpoint("final", &core.CkptColoring{
		C: &coloring.Partial{Colors: colors}, NumColors: g.MaxDegree() + 1, Complete: true,
	}); err != nil {
		return nil, err
	}
	endMerge()
	return &Result{
		Colors:    colors,
		NumColors: g.MaxDegree() + 1,
		Rounds:    rounds,
		K:         k,
		Traffic:   traffic,
		Spans:     net.Spans(),
	}, nil
}

// InProcess runs every worker inside the coordinator's process: the
// zero-serialization transport behind in-memory ?shards= requests and the
// conformance suites. Methods are safe for the coordinator's concurrent
// per-shard fan-out (each shard's worker is only ever called sequentially).
type InProcess struct {
	mu      sync.Mutex
	workers map[int]*Worker
}

// NewInProcess returns an empty in-process transport.
func NewInProcess() *InProcess {
	return &InProcess{workers: make(map[int]*Worker)}
}

func (t *InProcess) get(shard int) (*Worker, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	w, ok := t.workers[shard]
	if !ok {
		return nil, fmt.Errorf("shard %d not initialized", shard)
	}
	return w, nil
}

// Init builds the shard's worker directly over the partition's Part.
func (t *InProcess) Init(_ context.Context, shard int, part *Part, delta, _ int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if w, dup := t.workers[shard]; dup {
		w.Close()
	}
	t.workers[shard] = NewWorker(part, delta)
	return nil
}

// Step runs one worker round.
func (t *InProcess) Step(_ context.Context, shard int, updates []Update) (*StepResult, error) {
	w, err := t.get(shard)
	if err != nil {
		return nil, err
	}
	return w.Step(shard, updates)
}

// Finish collects the worker's final local colors.
func (t *InProcess) Finish(_ context.Context, shard int) ([]Update, error) {
	w, err := t.get(shard)
	if err != nil {
		return nil, err
	}
	return w.Finish()
}

// Abort drops the worker.
func (t *InProcess) Abort(shard int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if w, ok := t.workers[shard]; ok {
		w.Close()
		delete(t.workers, shard)
	}
}
