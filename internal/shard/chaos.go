package shard

import (
	"context"
	"fmt"
	"sync"
)

// Chaos fault modes.
const (
	// ChaosCrash fails one Step call outright, as a crashed worker would.
	ChaosCrash = "crash"
	// ChaosHang blocks one Step until the coordinator's per-call deadline
	// fires, as a wedged worker would.
	ChaosHang = "hang"
	// ChaosCorruptExchange rewrites one boundary update to an impossible
	// color before the receiving worker sees it; the exchange contract must
	// surface it as *ExchangeViolation.
	ChaosCorruptExchange = "corrupt-exchange"
	// ChaosCorruptFinish rewrites one final color to an impossible value;
	// the merge contract must surface it as *MergeViolation.
	ChaosCorruptFinish = "corrupt-finish"
)

// corruptColor is far outside any legal palette [0, Δ], so every corruption
// is detectable by range checks alone.
const corruptColor = int32(1) << 20

// ChaosPlan is a seeded schedule of transport faults.
type ChaosPlan struct {
	// Mode is one of the Chaos* constants.
	Mode string
	// Seed drives the splitmix64 stream picking the victim call.
	Seed uint64
	// Prob is the per-opportunity firing probability in [0,1]
	// (default 0.2). The plan fires at most once.
	Prob float64
}

// ChaosTransport wraps an inner transport and injects exactly one seeded
// fault per run, deterministically for a given (plan, call sequence). It is
// the shard analogue of the engine's fault hooks: faults live at the
// transport layer, where a real cluster breaks.
type ChaosTransport struct {
	inner Transport
	plan  ChaosPlan

	mu    sync.Mutex
	rng   uint64
	fired bool
	calls int
}

// NewChaosTransport wraps inner with the plan's fault schedule.
func NewChaosTransport(inner Transport, plan ChaosPlan) *ChaosTransport {
	if plan.Prob <= 0 || plan.Prob > 1 {
		plan.Prob = 0.2
	}
	return &ChaosTransport{inner: inner, plan: plan, rng: plan.Seed}
}

// Fired reports whether the fault has been injected yet.
func (t *ChaosTransport) Fired() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.fired
}

// Calls reports the transport calls observed (for test diagnostics).
func (t *ChaosTransport) Calls() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.calls
}

// splitmix64 advances the deterministic stream; t.mu must be held.
func (t *ChaosTransport) splitmix64() uint64 {
	t.rng += 0x9e3779b97f4a7c15
	z := t.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d49bb133111eb
	return z ^ (z >> 31)
}

// roll decides whether the fault fires on this opportunity; at most one
// fault fires per transport lifetime.
func (t *ChaosTransport) roll(mode string) bool {
	if t.plan.Mode != mode {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.calls++
	if t.fired {
		return false
	}
	// Map the top 53 bits to [0,1).
	u := float64(t.splitmix64()>>11) / float64(1<<53)
	if u >= t.plan.Prob {
		return false
	}
	t.fired = true
	return true
}

// Init passes through untouched: faults target the round loop and merge.
func (t *ChaosTransport) Init(ctx context.Context, shard int, part *Part, delta, parentN int) error {
	return t.inner.Init(ctx, shard, part, delta, parentN)
}

// Step injects crash, hang, or exchange-corruption faults. Corruption only
// rolls when the call actually carries updates, so the single shot is never
// wasted on a quiet exchange.
func (t *ChaosTransport) Step(ctx context.Context, shard int, updates []Update) (*StepResult, error) {
	if t.roll(ChaosCrash) {
		return nil, fmt.Errorf("chaos: shard %d worker crashed", shard)
	}
	if t.roll(ChaosHang) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	if len(updates) > 0 && t.roll(ChaosCorruptExchange) {
		t.mu.Lock()
		victim := int(t.splitmix64() % uint64(len(updates)))
		t.mu.Unlock()
		mangled := make([]Update, len(updates))
		copy(mangled, updates)
		mangled[victim].C = corruptColor
		return t.inner.Step(ctx, shard, mangled)
	}
	return t.inner.Step(ctx, shard, updates)
}

// Finish injects finish-corruption faults.
func (t *ChaosTransport) Finish(ctx context.Context, shard int) ([]Update, error) {
	finals, err := t.inner.Finish(ctx, shard)
	if err != nil {
		return nil, err
	}
	if len(finals) > 0 && t.roll(ChaosCorruptFinish) {
		t.mu.Lock()
		victim := int(t.splitmix64() % uint64(len(finals)))
		t.mu.Unlock()
		mangled := make([]Update, len(finals))
		copy(mangled, finals)
		mangled[victim].C = corruptColor
		return mangled, nil
	}
	return finals, nil
}

// Abort passes through.
func (t *ChaosTransport) Abort(shard int) { t.inner.Abort(shard) }
