package shard

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"encoding/json"

	"deltacoloring/internal/graph"
)

// RoundsPath is the internal endpoint workers serve the protocol on.
const RoundsPath = "/v1/shard/rounds"

// RoundsRequest is the body of POST /v1/shard/rounds: one protocol
// operation addressed to one shard of one session.
type RoundsRequest struct {
	// Op is "init", "step", "finish", or "abort".
	Op string `json:"op"`
	// Session namespaces concurrent runs on a shared worker host.
	Session string `json:"session"`
	// Shard is the shard index within the session.
	Shard int `json:"shard"`

	// Init payload: the binary-encoded shard subgraph, the sub→parent
	// vertex mapping, the owned sub-local indices, the parent graph's
	// vertex count and maximum degree.
	Graph    []byte  `json:"graph,omitempty"`
	ToParent []int32 `json:"to_parent,omitempty"`
	Locals   []int32 `json:"locals,omitempty"`
	ParentN  int     `json:"parent_n,omitempty"`
	Delta    int     `json:"delta,omitempty"`

	// Step payload: ghost updates to apply before the round.
	Updates []Update `json:"updates,omitempty"`
}

// RoundsResponse is the endpoint's reply. Protocol failures travel in
// Error/Violation (HTTP 200): the transport reconstructs the named
// violation type on the coordinator's side.
type RoundsResponse struct {
	OK bool `json:"ok"`
	// Step reply.
	Changed []Update `json:"changed,omitempty"`
	NotDone int      `json:"not_done,omitempty"`
	// Finish reply: every local vertex's color.
	Colors []Update `json:"colors,omitempty"`
	// Error is the failure message; Violation tags its type ("exchange",
	// "merge", or "" for untyped errors).
	Error     string `json:"error,omitempty"`
	Violation string `json:"violation,omitempty"`
}

// hostSession is one worker living on a Host.
type hostSession struct {
	mu   sync.Mutex
	w    *Worker
	last time.Time
}

// Host owns the shard workers of one serving process, keyed by
// session/shard. It is the server half of the protocol: the service's
// /v1/shard/rounds handler decodes a RoundsRequest and hands it here.
// Sessions idle past the TTL are reaped on the next call.
type Host struct {
	mu       sync.Mutex
	sessions map[string]*hostSession
	ttl      time.Duration
	now      func() time.Time
}

// NewHost returns a Host reaping sessions idle longer than ttl
// (default 5m).
func NewHost(ttl time.Duration) *Host {
	if ttl <= 0 {
		ttl = 5 * time.Minute
	}
	return &Host{sessions: make(map[string]*hostSession), ttl: ttl, now: time.Now}
}

// Sessions reports the live worker count.
func (h *Host) Sessions() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.sessions)
}

func sessionKey(session string, shard int) string {
	return fmt.Sprintf("%s/%d", session, shard)
}

// Handle executes one protocol operation and never panics the caller: all
// failures are reported in the response.
func (h *Host) Handle(req *RoundsRequest) *RoundsResponse {
	switch req.Op {
	case "init":
		return h.handleInit(req)
	case "step", "finish":
		return h.handleRound(req)
	case "abort":
		h.drop(sessionKey(req.Session, req.Shard))
		return &RoundsResponse{OK: true}
	default:
		return &RoundsResponse{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

func (h *Host) handleInit(req *RoundsRequest) *RoundsResponse {
	sub, err := graph.DecodeBinary(bytes.NewReader(req.Graph))
	if err != nil {
		return &RoundsResponse{Error: fmt.Sprintf("bad shard graph: %v", err)}
	}
	part, err := NewPartFromWire(sub, req.ToParent, req.Locals, req.ParentN)
	if err != nil {
		return &RoundsResponse{Error: err.Error()}
	}
	sess := &hostSession{w: NewWorker(part, req.Delta), last: h.now()}
	key := sessionKey(req.Session, req.Shard)
	h.mu.Lock()
	if old, dup := h.sessions[key]; dup {
		old.w.Close()
	}
	h.sessions[key] = sess
	h.reapLocked()
	h.mu.Unlock()
	return &RoundsResponse{OK: true}
}

func (h *Host) handleRound(req *RoundsRequest) *RoundsResponse {
	key := sessionKey(req.Session, req.Shard)
	h.mu.Lock()
	sess, ok := h.sessions[key]
	h.mu.Unlock()
	if !ok {
		return &RoundsResponse{Error: fmt.Sprintf("unknown session %q", key)}
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	sess.last = h.now()
	if req.Op == "finish" {
		colors, err := sess.w.Finish()
		h.drop(key)
		if err != nil {
			return errResponse(err)
		}
		return &RoundsResponse{OK: true, Colors: colors}
	}
	res, err := sess.w.Step(req.Shard, req.Updates)
	if err != nil {
		return errResponse(err)
	}
	return &RoundsResponse{OK: true, Changed: res.Changed, NotDone: res.NotDone}
}

func (h *Host) drop(key string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if sess, ok := h.sessions[key]; ok {
		sess.w.Close()
		delete(h.sessions, key)
	}
}

// reapLocked drops sessions idle past the TTL; h.mu must be held.
func (h *Host) reapLocked() {
	cutoff := h.now().Add(-h.ttl)
	for key, sess := range h.sessions {
		if sess.last.Before(cutoff) {
			sess.w.Close()
			delete(h.sessions, key)
		}
	}
}

// errResponse tags a worker error with its violation type for the wire.
func errResponse(err error) *RoundsResponse {
	resp := &RoundsResponse{Error: err.Error()}
	switch err.(type) {
	case *ExchangeViolation:
		resp.Violation = "exchange"
	case *MergeViolation:
		resp.Violation = "merge"
	case *PartitionViolation:
		resp.Violation = "partition"
	}
	return resp
}

// HTTPTransport is the coordinator-side client of the /v1/shard/rounds
// endpoint: shard s is served by addrs[s mod len(addrs)], so any worker
// fleet size serves any shard count.
type HTTPTransport struct {
	addrs   []string
	session string
	client  *http.Client
}

// NewHTTPTransport builds a transport over the given worker base URLs
// (e.g. "http://127.0.0.1:8081"). session namespaces this run on the
// workers; client may be nil for http.DefaultClient (the coordinator's
// per-call context still bounds every request).
func NewHTTPTransport(addrs []string, session string, client *http.Client) (*HTTPTransport, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("shard: no worker addresses")
	}
	if session == "" {
		session = "local"
	}
	if client == nil {
		client = http.DefaultClient
	}
	return &HTTPTransport{addrs: addrs, session: session, client: client}, nil
}

func (t *HTTPTransport) do(ctx context.Context, shard int, req *RoundsRequest) (*RoundsResponse, error) {
	req.Session = t.session
	req.Shard = shard
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	url := t.addrs[shard%len(t.addrs)] + RoundsPath
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := t.client.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer hresp.Body.Close()
	resp := &RoundsResponse{}
	if err := json.NewDecoder(hresp.Body).Decode(resp); err != nil {
		return nil, fmt.Errorf("shard: bad response from %s: %w", url, err)
	}
	if hresp.StatusCode != http.StatusOK && resp.Error == "" {
		return nil, fmt.Errorf("shard: %s answered %d", url, hresp.StatusCode)
	}
	if resp.Error != "" {
		// Reconstruct the named violation so errors.As works across the wire.
		switch resp.Violation {
		case "exchange":
			return nil, &ExchangeViolation{Shard: shard, Vertex: -1, Reason: resp.Error}
		case "merge":
			return nil, &MergeViolation{Vertex: -1, Reason: resp.Error}
		case "partition":
			return nil, &PartitionViolation{Err: fmt.Errorf("%s", resp.Error)}
		}
		return nil, fmt.Errorf("shard: worker error: %s", resp.Error)
	}
	return resp, nil
}

// Init ships the shard subgraph to its worker host.
func (t *HTTPTransport) Init(ctx context.Context, shard int, part *Part, delta, parentN int) error {
	var buf bytes.Buffer
	if err := graph.EncodeBinary(&buf, part.Sub.G); err != nil {
		return err
	}
	toParent := make([]int32, len(part.Sub.ToParent))
	for i, pv := range part.Sub.ToParent {
		toParent[i] = int32(pv)
	}
	_, err := t.do(ctx, shard, &RoundsRequest{
		Op:       "init",
		Graph:    buf.Bytes(),
		ToParent: toParent,
		Locals:   part.Locals,
		ParentN:  parentN,
		Delta:    delta,
	})
	return err
}

// Step runs one remote worker round.
func (t *HTTPTransport) Step(ctx context.Context, shard int, updates []Update) (*StepResult, error) {
	resp, err := t.do(ctx, shard, &RoundsRequest{Op: "step", Updates: updates})
	if err != nil {
		return nil, err
	}
	return &StepResult{Changed: resp.Changed, NotDone: resp.NotDone}, nil
}

// Finish collects the remote worker's final colors.
func (t *HTTPTransport) Finish(ctx context.Context, shard int) ([]Update, error) {
	resp, err := t.do(ctx, shard, &RoundsRequest{Op: "finish"})
	if err != nil {
		return nil, err
	}
	return resp.Colors, nil
}

// Abort drops the remote worker, best effort.
func (t *HTTPTransport) Abort(shard int) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_, _ = t.do(ctx, shard, &RoundsRequest{Op: "abort"})
}
