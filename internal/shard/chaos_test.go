package shard

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"deltacoloring/internal/graph"
)

// chaosGraph has plenty of cut edges at every shard count, so corruption
// faults always get a real opportunity to fire.
func chaosGraph() *graph.Graph {
	return graph.PermuteIDs(graph.Grid(9, 7), rand.New(rand.NewSource(77)))
}

// TestChaosNeverYieldsWrongColoring is the chaos contract: under every fault
// mode and many seeds, a sharded run either fails with an error or returns a
// result bit-identical to the fault-free single-process run. There is no
// third outcome.
func TestChaosNeverYieldsWrongColoring(t *testing.T) {
	g := chaosGraph()
	want := runSingle(t, g)
	modes := []string{ChaosCrash, ChaosHang, ChaosCorruptExchange, ChaosCorruptFinish}
	for _, mode := range modes {
		for seed := uint64(0); seed < 8; seed++ {
			t.Run(fmt.Sprintf("%s/seed=%d", mode, seed), func(t *testing.T) {
				tr := NewChaosTransport(NewInProcess(), ChaosPlan{Mode: mode, Seed: seed, Prob: 0.3})
				res, err := Run(context.Background(), g, Config{
					K: 3, Transport: tr, CallTimeout: 100 * time.Millisecond,
				})
				if err != nil {
					return // clean failure is always acceptable
				}
				if tr.Fired() && (mode == ChaosCrash || mode == ChaosHang) {
					t.Fatal("a crashed/hung worker still produced a 'successful' run")
				}
				if !reflect.DeepEqual(res.Colors, want.colors) || res.Rounds != want.rounds {
					t.Fatal("chaos run succeeded with a result differing from the oracle")
				}
			})
		}
	}
}

// TestChaosCorruptExchangeSurfacesTyped: a corrupted cross-cut message must
// surface as a named *ExchangeViolation, never as a silent wrong coloring.
func TestChaosCorruptExchangeSurfacesTyped(t *testing.T) {
	g := chaosGraph()
	tr := NewChaosTransport(NewInProcess(), ChaosPlan{Mode: ChaosCorruptExchange, Seed: 5, Prob: 1})
	_, err := Run(context.Background(), g, Config{K: 3, Transport: tr})
	if !tr.Fired() {
		t.Fatal("corruption never fired on a graph with cut edges")
	}
	var ev *ExchangeViolation
	if !errors.As(err, &ev) {
		t.Fatalf("got %v, want *ExchangeViolation", err)
	}
}

// TestChaosCorruptFinishSurfacesTyped: a corrupted final color must surface
// as a named *MergeViolation.
func TestChaosCorruptFinishSurfacesTyped(t *testing.T) {
	g := chaosGraph()
	tr := NewChaosTransport(NewInProcess(), ChaosPlan{Mode: ChaosCorruptFinish, Seed: 5, Prob: 1})
	_, err := Run(context.Background(), g, Config{K: 3, Transport: tr})
	if !tr.Fired() {
		t.Fatal("corruption never fired")
	}
	var mv *MergeViolation
	if !errors.As(err, &mv) {
		t.Fatalf("got %v, want *MergeViolation", err)
	}
}

// TestChaosCrashFailsCleanly: a killed worker aborts the run with a shard-
// attributed error.
func TestChaosCrashFailsCleanly(t *testing.T) {
	g := chaosGraph()
	tr := NewChaosTransport(NewInProcess(), ChaosPlan{Mode: ChaosCrash, Seed: 3, Prob: 1})
	res, err := Run(context.Background(), g, Config{K: 4, Transport: tr})
	if err == nil || res != nil {
		t.Fatal("crashed worker produced a result")
	}
	if !tr.Fired() {
		t.Fatal("crash never fired at Prob=1")
	}
}

// TestChaosDeterministicPerSeed: at k=1 transport calls are sequential, so
// the same plan over the same run must yield exactly the same outcome —
// chaos failures reproduce from their seed alone. (At k > 1 the concurrent
// fan-out makes the victim call scheduling-dependent by design; only the
// outcome *set* is pinned there, by TestChaosNeverYieldsWrongColoring.)
func TestChaosDeterministicPerSeed(t *testing.T) {
	g := chaosGraph()
	outcome := func(seed uint64) string {
		tr := NewChaosTransport(NewInProcess(), ChaosPlan{Mode: ChaosCrash, Seed: seed, Prob: 0.4})
		_, err := Run(context.Background(), g, Config{K: 1, Transport: tr})
		if err == nil {
			return "ok"
		}
		return err.Error()
	}
	for seed := uint64(0); seed < 4; seed++ {
		first := outcome(seed)
		for i := 0; i < 3; i++ {
			if got := outcome(seed); got != first {
				t.Fatalf("seed %d outcome drifted:\n%s\nvs\n%s", seed, first, got)
			}
		}
	}
}
