package shard

import (
	"context"
	"reflect"
	"testing"

	"deltacoloring/internal/graph"
	"deltacoloring/internal/local"
)

// FuzzPartition throws arbitrary edge lists and shard counts at the
// partitioner and pins the structural contract on every one: each vertex in
// exactly one shard, every cut edge ghosted on both sides, and the shards'
// edges reassembling into a byte-identical CSR. On small instances it also
// replays the full sharded run against the single-process oracle, fuzzing
// the bit-identity contract itself.
func FuzzPartition(f *testing.F) {
	f.Add(uint8(6), uint8(2), []byte{0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 0})
	f.Add(uint8(9), uint8(3), []byte{0, 1, 0, 2, 1, 2, 3, 4, 6, 7, 7, 8})
	f.Add(uint8(1), uint8(4), []byte{})
	f.Add(uint8(12), uint8(5), []byte{0, 11, 1, 10, 2, 9, 3, 8, 4, 7, 5, 6, 0, 6, 3, 9})
	f.Fuzz(func(t *testing.T, n, k uint8, raw []byte) {
		if n == 0 {
			return
		}
		if k == 0 {
			k = 1 // BuildPartition rejects k < 1 by contract; Run clamps the same way
		}
		b := graph.NewBuilder(int(n))
		for i := 0; i+1 < len(raw); i += 2 {
			u, v := int(raw[i])%int(n), int(raw[i+1])%int(n)
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g, err := b.Build()
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		p, err := BuildPartition(g, int(k))
		if err != nil {
			t.Fatalf("BuildPartition(n=%d, k=%d): %v", n, k, err)
		}
		if err := VerifyPartition(g, p); err != nil {
			t.Fatalf("VerifyPartition: %v", err)
		}
		if err := Reassemble(g, p); err != nil {
			t.Fatalf("Reassemble: %v", err)
		}

		net := local.New(g)
		wantColors, wantRounds, err := SolveSingle(net)
		net.Close()
		if err != nil {
			t.Fatalf("SolveSingle: %v", err)
		}
		res, err := Run(context.Background(), g, Config{K: int(k)})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if !reflect.DeepEqual(res.Colors, wantColors) || res.Rounds != wantRounds {
			t.Fatalf("sharded run diverges: rounds %d vs %d, colors %v vs %v",
				res.Rounds, wantRounds, res.Colors, wantColors)
		}
	})
}
