package matching

import (
	"math/rand"
	"testing"
	"testing/quick"

	"deltacoloring/internal/graph"
	"deltacoloring/internal/local"
)

func TestMaximalOnVariousGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"Cycle", graph.Cycle(15)},
		{"Complete", graph.Complete(10)},
		{"Path", graph.Path(9)},
		{"Torus", graph.Torus(5, 6)},
		{"Star", graph.Star(8)},
		{"ER", graph.ErdosRenyi(50, 0.1, rng)},
		{"SingleEdge", graph.Path(2)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			net := local.New(c.g)
			m, err := Maximal(net)
			if err != nil {
				t.Fatalf("Maximal: %v", err)
			}
			if err := Verify(c.g, m, c.g.Edges()); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestMaximalOnEdgeSubset(t *testing.T) {
	g := graph.Complete(8)
	// Restrict to the edges of an 8-cycle inside K8.
	var subset []graph.Edge
	for v := 0; v < 8; v++ {
		u, w := v, (v+1)%8
		if u > w {
			u, w = w, u
		}
		subset = append(subset, graph.Edge{U: u, V: w})
	}
	net := local.New(g)
	m, err := MaximalOn(net, subset)
	if err != nil {
		t.Fatalf("MaximalOn: %v", err)
	}
	if err := Verify(g, m, subset); err != nil {
		t.Fatal(err)
	}
	in := make(map[graph.Edge]bool)
	for _, e := range subset {
		in[e] = true
	}
	for _, e := range m {
		if !in[e] {
			t.Fatalf("matched edge %v outside the allowed subset", e)
		}
	}
	// A maximal matching on C8 has at least 3 edges.
	if len(m) < 3 {
		t.Fatalf("matching has %d edges, want >= 3", len(m))
	}
}

func TestMaximalOnEmptySubset(t *testing.T) {
	net := local.New(graph.Complete(4))
	m, err := MaximalOn(net, nil)
	if err != nil || m != nil {
		t.Fatalf("empty subset: %v %v", m, err)
	}
}

func TestMaximalPerfectOnEvenCycle(t *testing.T) {
	g := graph.Cycle(12)
	m, err := Maximal(local.New(g))
	if err != nil {
		t.Fatal(err)
	}
	// Maximal matching on C12 has between 4 and 6 edges.
	if len(m) < 4 || len(m) > 6 {
		t.Fatalf("matching size %d out of [4,6]", len(m))
	}
}

func TestVerifyCatchesViolations(t *testing.T) {
	g := graph.Path(4)
	if err := Verify(g, []graph.Edge{{U: 0, V: 2}}, nil); err == nil {
		t.Fatal("non-edge accepted")
	}
	if err := Verify(g, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}, nil); err == nil {
		t.Fatal("overlapping edges accepted")
	}
	if err := Verify(g, []graph.Edge{{U: 0, V: 1}}, g.Edges()); err == nil {
		t.Fatal("non-maximal matching accepted")
	}
	if err := Verify(g, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}}, g.Edges()); err != nil {
		t.Fatalf("valid maximal matching rejected: %v", err)
	}
}

func TestMaximalRoundsScaleWithLogStar(t *testing.T) {
	for _, n := range []int{1 << 8, 1 << 14} {
		g := graph.Cycle(n)
		net := local.New(g)
		if _, err := Maximal(net); err != nil {
			t.Fatal(err)
		}
		if net.Rounds() > 200 {
			t.Fatalf("n=%d: %d rounds, expected log*-scale", n, net.Rounds())
		}
	}
}

func TestMaximalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(40)
		g := graph.PermuteIDs(graph.ErdosRenyi(n, 0.2, rng), rng)
		m, err := Maximal(local.New(g))
		if err != nil {
			return false
		}
		return Verify(g, m, g.Edges()) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
