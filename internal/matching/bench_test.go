package matching

import (
	"math/rand"
	"testing"

	"deltacoloring/internal/graph"
	"deltacoloring/internal/local"
)

func BenchmarkMaximal(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := graph.RandomRegular(1000, 8, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Maximal(local.New(g)); err != nil {
			b.Fatal(err)
		}
	}
}
