// Package matching implements deterministic maximal matching in the LOCAL
// model, the Step-1 substrate of the paper's Algorithm 2.
//
// The algorithm is the classic reduction to coloring: Linial-color the line
// graph of the (sub-)edge set with Δ_L+1 colors (Δ_L <= 2Δ-2), then sweep
// the color classes; all edges of one class are pairwise non-adjacent and
// may join the matching simultaneously unless an incident edge already
// joined. Total cost O(log* n + Δ log Δ) rounds — for constant Δ this
// matches the O(Δ + log* n) bound the paper cites from [PR01, MT20] up to
// the Δ-dependence (see DESIGN.md, substitutions).
//
// Rounds on the line graph are charged with dilation 2: one line-graph round
// is simulated by the two endpoints of each edge exchanging state.
package matching

import (
	"fmt"

	"deltacoloring/internal/graph"
	"deltacoloring/internal/linial"
	"deltacoloring/internal/local"
)

// Maximal computes a maximal matching of the whole graph.
func Maximal(net *local.Network) ([]graph.Edge, error) {
	return MaximalOn(net, net.Graph().Edges())
}

// MaximalOn computes a maximal matching of the subgraph spanned by the given
// edge subset (the paper matches only E_hard, the edges between distinct
// hard cliques). The result is maximal with respect to `edges`: every edge
// of the subset shares an endpoint with some matched edge.
func MaximalOn(net *local.Network, edges []graph.Edge) ([]graph.Edge, error) {
	if len(edges) == 0 {
		return nil, nil
	}
	g := net.Graph()
	sub, err := graph.FromEdges(g.N(), edges)
	if err != nil {
		return nil, fmt.Errorf("matching: %w", err)
	}
	lg, lineEdges := graph.LineGraph(sub)
	lnet := net.Virtual(lg, 2)
	colors, err := linial.Color(lnet, lg.MaxDegree()+1)
	if err != nil {
		return nil, fmt.Errorf("matching: line-graph coloring: %w", err)
	}

	type state struct {
		color   int
		in      bool
		blocked bool
	}
	st := make([]state, lg.N())
	for i := range st {
		st[i] = state{color: colors[i]}
	}
	// Sweep the color classes frontier-scheduled: a vertex's output changes
	// for non-neighborhood reasons only in its own class's round (the seed),
	// and otherwise only when an incident edge joined (a neighbor state
	// change the frontier tracks).
	classes := lg.MaxDegree() + 1
	buckets := make([][]int32, classes)
	for i, c := range colors {
		buckets[c] = append(buckets[c], int32(i))
	}
	run := local.NewRunner(lnet, st)
	st = run.Sweep(classes, func(c int, mark func(int)) {
		for _, v := range buckets[c] {
			mark(int(v))
		}
	}, func(c, v int, self state, nbrs local.Nbrs[state]) state {
		if self.in || self.blocked {
			return self
		}
		for i := 0; i < nbrs.Len(); i++ {
			if nbrs.State(i).in {
				self.blocked = true
				return self
			}
		}
		if self.color == c {
			self.in = true
		}
		return self
	})
	var out []graph.Edge
	for i := range st {
		if st[i].in {
			out = append(out, lineEdges[i])
		}
	}
	return out, nil
}

// Verify checks that `matched` is a matching in g and, when `edges` is
// non-nil, that it is maximal with respect to that edge set.
func Verify(g *graph.Graph, matched []graph.Edge, edges []graph.Edge) error {
	used := make([]bool, g.N())
	for _, e := range matched {
		if !g.HasEdge(e.U, e.V) {
			return fmt.Errorf("matching: edge (%d,%d): not a graph edge", e.U, e.V)
		}
		if used[e.U] || used[e.V] {
			return fmt.Errorf("matching: edge (%d,%d): endpoint reused", e.U, e.V)
		}
		used[e.U] = true
		used[e.V] = true
	}
	if edges == nil {
		return nil
	}
	for _, e := range edges {
		if !used[e.U] && !used[e.V] {
			return fmt.Errorf("matching: edge (%d,%d): free edge, matching not maximal", e.U, e.V)
		}
	}
	return nil
}
