package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"reflect"
	"sync"
	"testing"
	"time"

	"deltacoloring"
	"deltacoloring/internal/shard"
)

// mustVerifySharded verifies a sharded response against the greedy wire
// algorithm's Δ+1 palette (deltacoloring.Verify's Δ bound is the paper
// pipelines' contract, not greedy's).
func mustVerifySharded(t *testing.T, g *deltacoloring.Graph, resp *ColorResponse) {
	t.Helper()
	if resp.State != "done" {
		t.Fatalf("state %q, error %q", resp.State, resp.Error)
	}
	if err := deltacoloring.VerifyWithin(g, resp.Colors, g.MaxDegree()+1); err != nil {
		t.Fatalf("invalid coloring: %v", err)
	}
}

// shardReq builds a sharded request over the easy clique-ring generator with
// the cache bypassed (sharded tests want real runs, not cache hits).
func shardReq(k int) *ColorRequest {
	r := easyReq(4)
	r.Shards = k
	r.NoCache = true
	return r
}

// TestColorSharded: ?shards= runs end to end through the service, the
// response carries the shard summary, and the coloring is bit-identical to
// the single-shard run of the same graph.
func TestColorSharded(t *testing.T) {
	_, cl, _ := newTestServer(t, Config{Workers: 2})
	single, err := cl.Color(context.Background(), shardReq(1))
	if err != nil {
		t.Fatal(err)
	}
	mustVerifySharded(t, deltacoloring.GenEasyCliqueRing(4, 16), single)
	if single.Shards != 1 || single.CutEdges != 0 {
		t.Fatalf("single-shard summary wrong: shards=%d cut=%d", single.Shards, single.CutEdges)
	}
	for _, k := range []int{2, 4} {
		resp, err := cl.Color(context.Background(), shardReq(k))
		if err != nil {
			t.Fatalf("shards=%d: %v", k, err)
		}
		mustVerifySharded(t, deltacoloring.GenEasyCliqueRing(4, 16), resp)
		if !reflect.DeepEqual(resp.Colors, single.Colors) {
			t.Fatalf("shards=%d: colors differ from the single-shard run", k)
		}
		if resp.Rounds != single.Rounds {
			t.Fatalf("shards=%d: %d rounds, single-shard run used %d", k, resp.Rounds, single.Rounds)
		}
		if resp.Shards != k {
			t.Fatalf("shards=%d: response says %d", k, resp.Shards)
		}
		if resp.CutEdges <= 0 || resp.BoundaryUpdates <= 0 {
			t.Fatalf("shards=%d: no cut traffic in response: %+v", k, resp)
		}
	}
}

// TestColorShardedChecked: ?shards=&check=1 attaches the conformance harness
// to the coordinator and reports the shard phases.
func TestColorShardedChecked(t *testing.T) {
	_, cl, _ := newTestServer(t, Config{Workers: 2})
	body, _ := json.Marshal(shardReq(0))
	hr, err := http.Post(cl.BaseURL+"/v1/color?shards=3&check=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("status %d", hr.StatusCode)
	}
	resp := &ColorResponse{}
	if err := json.NewDecoder(hr.Body).Decode(resp); err != nil {
		t.Fatal(err)
	}
	mustVerifySharded(t, deltacoloring.GenEasyCliqueRing(4, 16), resp)
	if resp.Shards != 3 {
		t.Fatalf("shards=3 query param ignored: %+v", resp)
	}
	if resp.Checks == 0 {
		t.Fatalf("checked sharded run reported no checks")
	}
	phases := map[string]bool{}
	for _, p := range resp.CheckPhases {
		phases[p] = true
	}
	if !phases["shard/partition"] || !phases["final"] || !phases["oracle"] {
		t.Fatalf("check phases %v missing shard/partition, final, or oracle", resp.CheckPhases)
	}
}

// TestShardCacheKeysIsolateShardCounts: each shard count gets its own cache
// entry, and sharded entries never answer unsharded requests (or vice
// versa) — a hit must reproduce the shard summary it was stored with.
func TestShardCacheKeysIsolateShardCounts(t *testing.T) {
	_, cl, _ := newTestServer(t, Config{Workers: 2})
	post := func(k int) *ColorResponse {
		t.Helper()
		r := easyReq(4)
		r.Shards = k
		resp, err := cl.Color(context.Background(), r)
		if err != nil {
			t.Fatalf("shards=%d: %v", k, err)
		}
		return resp
	}
	if resp := post(2); resp.Cached || resp.Shards != 2 {
		t.Fatalf("first shards=2 run: cached=%t shards=%d", resp.Cached, resp.Shards)
	}
	if resp := post(2); !resp.Cached || resp.Shards != 2 {
		t.Fatalf("second shards=2 run: cached=%t shards=%d", resp.Cached, resp.Shards)
	}
	if resp := post(4); resp.Cached || resp.Shards != 4 {
		t.Fatalf("shards=4 after shards=2: cached=%t shards=%d (cache keys must isolate shard counts)", resp.Cached, resp.Shards)
	}
	// An unsharded run of the same graph is a different key entirely.
	if resp := post(0); resp.Cached || resp.Shards != 0 {
		t.Fatalf("unsharded run after sharded ones: cached=%t shards=%d", resp.Cached, resp.Shards)
	}
}

// TestColorShardedConcurrent: 32 concurrent ?shards=4 requests against an
// in-process 4-shard cluster, every response verified and bit-identical.
// This is the -race exercise for the coordinator's per-shard fan-out inside
// the service's worker pool.
func TestColorShardedConcurrent(t *testing.T) {
	_, cl, _ := newTestServer(t, Config{Workers: 8, QueueDepth: 64})
	const calls = 32
	var wg sync.WaitGroup
	resps := make([]*ColorResponse, calls)
	errs := make([]error, calls)
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = cl.Color(context.Background(), shardReq(4))
		}(i)
	}
	wg.Wait()
	g := deltacoloring.GenEasyCliqueRing(4, 16)
	for i := 0; i < calls; i++ {
		if errs[i] != nil {
			t.Fatalf("call %d: %v", i, errs[i])
		}
		mustVerifySharded(t, g, resps[i])
		if !reflect.DeepEqual(resps[i].Colors, resps[0].Colors) {
			t.Fatalf("call %d: colors differ across identical sharded requests", i)
		}
	}
}

// TestShardWorkerEndpointRoundTrip: one server acts as the worker fleet for
// another over POST /v1/shard/rounds — the full HTTP protocol path. The
// worker host must end the run with no leaked sessions.
func TestShardWorkerEndpointRoundTrip(t *testing.T) {
	workerSrv, workerCl, _ := newTestServer(t, Config{Workers: 1})
	_, cl, _ := newTestServer(t, Config{Workers: 2, ShardAddrs: []string{workerCl.BaseURL}})
	resp, err := cl.Color(context.Background(), shardReq(3))
	if err != nil {
		t.Fatal(err)
	}
	mustVerifySharded(t, deltacoloring.GenEasyCliqueRing(4, 16), resp)
	if resp.Shards != 3 || resp.CutEdges <= 0 {
		t.Fatalf("cluster run summary wrong: %+v", resp)
	}
	deadline := time.Now().Add(2 * time.Second)
	for workerSrv.shardHost.Sessions() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("worker host retains %d sessions after the run", workerSrv.shardHost.Sessions())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestShardRequestValidation: malformed or incompatible shard requests are
// refused with 400 before any work is queued.
func TestShardRequestValidation(t *testing.T) {
	_, cl, _ := newTestServer(t, Config{Workers: 1, MaxShards: 8})
	post := func(path string, req *ColorRequest) (int, string) {
		t.Helper()
		body, _ := json.Marshal(req)
		hr, err := http.Post(cl.BaseURL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer hr.Body.Close()
		resp := &ColorResponse{}
		_ = json.NewDecoder(hr.Body).Decode(resp)
		return hr.StatusCode, resp.Error
	}
	randReq := easyReq(4)
	randReq.Algo = "rand"
	randReq.Shards = 2
	simpleReq := easyReq(4)
	simpleReq.Shards = 2
	simpleReq.Backend = "simple"
	negReq := easyReq(4)
	negReq.Shards = -1
	cases := []struct {
		name string
		path string
		req  *ColorRequest
	}{
		{"non-numeric query", "/v1/color?shards=many", easyReq(4)},
		{"negative query", "/v1/color?shards=-2", easyReq(4)},
		{"negative body", "/v1/color", negReq},
		{"over the limit", "/v1/color?shards=9", easyReq(4)},
		{"rand algo", "/v1/color", randReq},
		{"non-greedy backend", "/v1/color", simpleReq},
		{"backend via query", "/v1/color?shards=2&backend=ruling", easyReq(4)},
	}
	for _, c := range cases {
		if status, msg := post(c.path, c.req); status != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", c.name, status, msg)
		}
	}
	// The greedy backend is the one explicit backend sharding composes with.
	ok := easyReq(4)
	ok.Shards = 2
	ok.Backend = "greedy"
	if status, msg := post("/v1/color", ok); status != http.StatusOK {
		t.Fatalf("shards with backend=greedy: status %d (%s)", status, msg)
	}
}

// TestShardChaosNeverServesBadColoring: with a fault-injecting transport
// corrupting cross-cut exchanges or finish reports, the service must answer
// an error — never 200 with an invalid or partial coloring. Retries are
// disabled so the injected failure surfaces instead of being healed.
func TestShardChaosNeverServesBadColoring(t *testing.T) {
	for _, mode := range []string{shard.ChaosCorruptExchange, shard.ChaosCorruptFinish, shard.ChaosCrash} {
		t.Run(mode, func(t *testing.T) {
			seed := uint64(0)
			cfg := Config{
				Workers:          1,
				MaxRetries:       -1,
				BreakerThreshold: -1,
				shardTransport: func(session string) shard.Transport {
					seed++
					return shard.NewChaosTransport(shard.NewInProcess(),
						shard.ChaosPlan{Mode: mode, Seed: seed, Prob: 1})
				},
			}
			_, cl, _ := newTestServer(t, cfg)
			resp, err := cl.Color(context.Background(), shardReq(3))
			if err == nil {
				t.Fatalf("%s: corrupted sharded run answered 200: %+v", mode, resp)
			}
			var apiErr *APIError
			if !errors.As(err, &apiErr) {
				t.Fatalf("%s: %v", mode, err)
			}
			if apiErr.StatusCode != http.StatusInternalServerError {
				t.Fatalf("%s: status %d, want 500", mode, apiErr.StatusCode)
			}
			if apiErr.Resp != nil && apiErr.Resp.State == "done" {
				t.Fatalf("%s: failed status carries a done response", mode)
			}
		})
	}
}

// TestShardRoundsEndpointRefusesGarbage: the worker endpoint answers
// protocol failures inside a 200 (so coordinators can reconstruct typed
// violations) and rejects undecodable bodies and oversized graphs.
func TestShardRoundsEndpointRefusesGarbage(t *testing.T) {
	_, cl, _ := newTestServer(t, Config{Workers: 1, MaxVertices: 100})
	post := func(body []byte) (int, *shard.RoundsResponse) {
		t.Helper()
		hr, err := http.Post(cl.BaseURL+shard.RoundsPath, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer hr.Body.Close()
		resp := &shard.RoundsResponse{}
		_ = json.NewDecoder(hr.Body).Decode(resp)
		return hr.StatusCode, resp
	}
	if status, _ := post([]byte("{nope")); status != http.StatusBadRequest {
		t.Fatalf("undecodable body: status %d", status)
	}
	if status, _ := post([]byte(`{"op":"init","unknown_field":1}`)); status != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d", status)
	}
	// Unknown session: a protocol error inside a 200.
	body, _ := json.Marshal(&shard.RoundsRequest{Op: "step", Session: "ghost", Shard: 0})
	status, resp := post(body)
	if status != http.StatusOK || resp.OK || resp.Error == "" {
		t.Fatalf("unknown session: status %d resp %+v", status, resp)
	}
	// Oversized parent graph: refused before decoding the subgraph.
	body, _ = json.Marshal(&shard.RoundsRequest{Op: "init", Session: "big", ParentN: 101})
	status, resp = post(body)
	if status != http.StatusOK || resp.OK || resp.Error == "" {
		t.Fatalf("oversized init: status %d resp %+v", status, resp)
	}
	if want := fmt.Sprintf("above the %d-vertex limit", 100); !bytes.Contains([]byte(resp.Error), []byte(want)) {
		t.Fatalf("oversized init error %q", resp.Error)
	}
}
