// Package service turns the Δ-coloring pipeline into a long-running HTTP
// serving subsystem: a JSON API over a bounded worker pool with a FIFO job
// queue and backpressure, an LRU result cache keyed by the canonical graph
// hash, per-request deadlines enforced at LOCAL round granularity, panic
// isolation per job, Prometheus-text metrics (including per-phase round
// totals harvested from the simulator's span tracing), and graceful
// shutdown that drains in-flight jobs.
//
// Endpoints:
//
//	POST /v1/color     run (or fetch from cache) a coloring; async with {"async": true}
//	GET  /v1/jobs/{id} poll an async job
//	GET  /healthz      liveness + queue snapshot
//	GET  /metrics      Prometheus text exposition
//
// Everything is standard library only, like the rest of the repository.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"deltacoloring"
	"deltacoloring/internal/backend"
	"deltacoloring/internal/durable"
	"deltacoloring/internal/graph"
	"deltacoloring/internal/invariant"
	"deltacoloring/internal/local"
	"deltacoloring/internal/shard"
)

// Config sizes the server. The zero value is usable: every field falls back
// to the documented default.
type Config struct {
	// Workers is the worker-pool size (default 4).
	Workers int
	// QueueDepth bounds the FIFO job queue; a full queue answers 429
	// (default 64).
	QueueDepth int
	// CacheSize is the LRU result-cache capacity in entries (default 256).
	CacheSize int
	// DefaultTimeout caps a run when the request names none (default 30s).
	DefaultTimeout time.Duration
	// MaxTimeout clamps request-supplied timeouts (default 5m).
	MaxTimeout time.Duration
	// MaxBodyBytes bounds the request body (default 32 MiB).
	MaxBodyBytes int64
	// MaxVertices bounds the vertex count of any requested graph, keeping
	// a few header bytes from committing the server to a giant allocation
	// (default 1<<20).
	MaxVertices int
	// MaxJobs bounds the retained job table; finished jobs are evicted
	// oldest-first beyond it (default 1024). Quarantined jobs (panicked
	// runs kept for inspection) are evicted only after every other
	// candidate.
	MaxJobs int
	// MaxRetries is how many times a job is re-run after a transient
	// server-side failure (panic or internal error), with exponential
	// backoff and jitter between attempts (default 1; negative disables).
	MaxRetries int
	// RetryBaseBackoff is the first retry delay; attempt k waits
	// RetryBaseBackoff * 2^(k-1) plus up to 50% jitter (default 50ms).
	RetryBaseBackoff time.Duration
	// BreakerThreshold opens the circuit breaker after this many
	// consecutive server-side job failures (default 5; negative disables).
	BreakerThreshold int
	// BreakerCooldown is how long the breaker sheds load before letting a
	// probe through (default 10s).
	BreakerCooldown time.Duration
	// WatchdogGrace is how long past its deadline a running job may keep
	// executing before the watchdog declares it hung, fails it with 504,
	// and returns the worker to the pool (default 2s).
	WatchdogGrace time.Duration
	// MaxGraphs bounds the live dynamic graph stores (default 16).
	MaxGraphs int
	// MutationQueueDepth bounds each graph's apply queue; a full queue
	// answers 429 (default 32).
	MutationQueueDepth int
	// MaxMutationsPerBatch bounds one POST /v1/graphs/{id}/mutations body
	// (default 4096).
	MaxMutationsPerBatch int
	// GraphDir, when set, serves the color request's "file" source:
	// operator-staged graph files (text or binary, sniffed by magic)
	// addressed by a relative path confined to this directory. Empty
	// disables the source.
	GraphDir string
	// DataDir, when set, makes every dynamic graph durable: WAL +
	// checkpoints under DataDir/<graph-id>, background recovery at startup
	// (readiness gated until it finishes), flush + final checkpoint on
	// graceful shutdown. Empty keeps the historical in-memory-only mode.
	DataDir string
	// Fsync is the WAL flush policy for durable graphs ("" = always).
	Fsync durable.FsyncPolicy
	// FsyncInterval is the background flush cadence under the "interval"
	// policy (default 100ms).
	FsyncInterval time.Duration
	// CheckpointEvery snapshots each durable graph and truncates its log
	// after this many batches (default 64; negative disables).
	CheckpointEvery int
	// ShardAddrs lists worker base URLs (e.g. "http://10.0.0.2:8081") for
	// sharded ?shards= runs: shard s is served by ShardAddrs[s mod len] over
	// POST /v1/shard/rounds. Empty runs every shard in-process. Every
	// deltaserved instance also serves /v1/shard/rounds itself, so any
	// instance can be another's worker.
	ShardAddrs []string
	// MaxShards caps the per-request shard count (default 16).
	MaxShards int
	// ShardSessionTTL reaps worker-host sessions idle past it — state left
	// behind by a coordinator that died mid-run (default 5m).
	ShardSessionTTL time.Duration

	// runHook, when set, runs on the worker goroutine just before a job's
	// pipeline starts (once per attempt). It is a test seam for making
	// saturation, slow jobs, and injected failures deterministic.
	runHook func(*job)
	// dynNetHook, when set, is installed as every dynamic store's NetHook.
	// It is the chaos test seam for the /v1/graphs maintenance path.
	dynNetHook func(*local.Network)
	// shardTransport, when set, builds the transport for every sharded run
	// instead of the ShardAddrs/in-process default. It is the chaos test
	// seam for the cluster path.
	shardTransport func(session string) shard.Transport
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 256
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.MaxVertices <= 0 {
		c.MaxVertices = 1 << 20
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 1
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.RetryBaseBackoff <= 0 {
		c.RetryBaseBackoff = 50 * time.Millisecond
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 10 * time.Second
	}
	if c.WatchdogGrace <= 0 {
		c.WatchdogGrace = 2 * time.Second
	}
	if c.MaxGraphs <= 0 {
		c.MaxGraphs = 16
	}
	if c.MutationQueueDepth <= 0 {
		c.MutationQueueDepth = 32
	}
	if c.MaxMutationsPerBatch <= 0 {
		c.MaxMutationsPerBatch = 4096
	}
	if c.MaxShards <= 0 {
		c.MaxShards = 16
	}
	return c
}

// job tracks one queued coloring run through its lifecycle.
type job struct {
	id      string
	req     *ColorRequest
	g       *graph.Graph
	key     string
	idemKey string
	ctx     context.Context
	cancel  context.CancelFunc

	mu          sync.Mutex
	state       string // "queued" -> "running" -> "done" | "failed"
	resp        *ColorResponse
	status      int // HTTP status a sync waiter should use
	quarantined bool
	finished    bool
	done        chan struct{}
}

func (j *job) snapshot() (*ColorResponse, int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.resp != nil {
		return j.resp, j.status
	}
	return &ColorResponse{JobID: j.id, State: j.state}, http.StatusOK
}

func (j *job) setState(s string) {
	j.mu.Lock()
	j.state = s
	j.mu.Unlock()
}

// quarantine marks a job whose run panicked; quarantined records are kept
// for inspection and evicted from the job table only as a last resort.
func (j *job) quarantine() {
	j.mu.Lock()
	j.quarantined = true
	j.mu.Unlock()
}

func (j *job) isQuarantined() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.quarantined
}

// finish publishes the job's terminal response; the first call wins and
// later calls are no-ops (the watchdog and a slow run may race). resp must
// already carry the job ID and be fully built: it may simultaneously be
// visible through the result cache, so no mutation after this point.
func (j *job) finish(resp *ColorResponse, status int) {
	j.mu.Lock()
	if j.finished {
		j.mu.Unlock()
		return
	}
	j.finished = true
	j.state = resp.State
	j.resp = resp
	j.status = status
	j.mu.Unlock()
	// Close before cancel: waiters woken by the cancellation must already
	// see the job as finished.
	close(j.done)
	j.cancel()
}

// Server is the serving subsystem; create with New, expose via Handler, and
// stop with Shutdown.
type Server struct {
	cfg       Config
	mux       *http.ServeMux
	met       *metrics
	cache     *lruCache
	breaker   *breaker
	shardHost *shard.Host

	queue   chan *job
	qmu     sync.RWMutex // guards queue sends against close
	closed  atomic.Bool
	workers sync.WaitGroup

	jmu      sync.Mutex
	jobs     map[string]*job
	idem     map[string]*job // idempotency key -> job, subset of jobs
	jobOrder []string
	jobSeq   uint64

	gmu        sync.Mutex
	graphs     map[string]*graphStore
	graphSeq   uint64
	graphsWG   sync.WaitGroup
	graphsResv int              // IDs allocated but not yet installed
	walBase    durable.WALStats // retired counters from destroyed stores

	recovering  atomic.Bool
	recMu       sync.Mutex
	recReports  []GraphRecovery
	recFleetErr string
}

// New builds a server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		mux:       http.NewServeMux(),
		met:       newMetrics(),
		cache:     newLRU(cfg.CacheSize),
		breaker:   newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		shardHost: shard.NewHost(cfg.ShardSessionTTL),
		queue:     make(chan *job, cfg.QueueDepth),
		jobs:      make(map[string]*job),
		idem:      make(map[string]*job),
		graphs:    make(map[string]*graphStore),
	}
	s.mux.HandleFunc("POST /v1/color", s.handleColor)
	s.mux.HandleFunc("POST "+shard.RoundsPath, s.handleShardRounds)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("POST /v1/graphs", s.handleGraphCreate)
	s.mux.HandleFunc("GET /v1/graphs", s.handleGraphList)
	s.mux.HandleFunc("GET /v1/graphs/{id}", s.handleGraphGet)
	s.mux.HandleFunc("DELETE /v1/graphs/{id}", s.handleGraphDelete)
	s.mux.HandleFunc("POST /v1/graphs/{id}/mutations", s.handleGraphMutate)
	s.mux.HandleFunc("GET /v1/graphs/{id}/coloring", s.handleGraphColoring)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /livez", s.handleLivez)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.workers.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	if cfg.DataDir != "" {
		// Recovery replays off the request path; the graph surface answers
		// 503 + Retry-After and /readyz stays false until it finishes.
		s.recovering.Store(true)
		go s.recoverAll()
	}
	return s
}

// Handler returns the HTTP handler serving the API.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown stops accepting work and drains the queue: every already
// accepted job still runs to completion (or cancellation by its own
// deadline), and every graph's apply loop drains its queued batches. It
// returns ctx.Err if draining outlives ctx.
func (s *Server) Shutdown(ctx context.Context) error {
	s.qmu.Lock()
	if !s.closed.Swap(true) {
		close(s.queue)
	}
	s.qmu.Unlock()
	s.closeAllGraphs()
	drained := make(chan struct{})
	go func() {
		s.workers.Wait()
		s.graphsWG.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		// Every apply loop has drained: flush and checkpoint each durable
		// store so the next start needs no replay.
		var errOut error
		s.gmu.Lock()
		stores := make([]*durable.Store, 0, len(s.graphs))
		for _, gs := range s.graphs {
			if gs.store != nil {
				stores = append(stores, gs.store)
			}
		}
		s.gmu.Unlock()
		for _, st := range stores {
			if err := st.Close(); err != nil && errOut == nil {
				errOut = err
			}
		}
		return errOut
	case <-ctx.Done():
		return ctx.Err()
	}
}

var (
	errQueueFull    = errors.New("job queue is full")
	errShuttingDown = errors.New("server is shutting down")
)

func (s *Server) enqueue(j *job) error {
	s.qmu.RLock()
	defer s.qmu.RUnlock()
	if s.closed.Load() {
		return errShuttingDown
	}
	select {
	case s.queue <- j:
		return nil
	default:
		return errQueueFull
	}
}

// registerJob assigns an ID, retains the job for polling, and evicts the
// oldest finished jobs beyond the retention bound (quarantined records
// last). When the job carries an idempotency key already owned by an
// in-flight or successfully finished job, nothing is registered and the
// existing job is returned instead; a failed job does not pin its key, so a
// client retry after a 5xx re-runs the work rather than replaying the error.
func (s *Server) registerJob(j *job) (existing *job) {
	s.jmu.Lock()
	defer s.jmu.Unlock()
	if j.idemKey != "" {
		if prev, ok := s.idem[j.idemKey]; ok {
			if !prev.failedTerminal() {
				return prev
			}
			// prev stays in the job table for polling; only the key moves.
			delete(s.idem, j.idemKey)
		}
		s.idem[j.idemKey] = j
	}
	s.jobSeq++
	j.id = fmt.Sprintf("j%08d", s.jobSeq)
	s.jobs[j.id] = j
	s.jobOrder = append(s.jobOrder, j.id)
	if len(s.jobs) <= s.cfg.MaxJobs {
		return nil
	}
	// Two eviction passes: everything terminal but quarantined first, then
	// quarantined records if the table is still over budget.
	for _, spareQuarantined := range []bool{true, false} {
		if len(s.jobs) <= s.cfg.MaxJobs {
			break
		}
		keep := s.jobOrder[:0]
		for _, id := range s.jobOrder {
			old, live := s.jobs[id]
			if !live {
				continue
			}
			if len(s.jobs) > s.cfg.MaxJobs && old.terminal() &&
				!(spareQuarantined && old.isQuarantined()) {
				s.dropJobLocked(old)
				continue
			}
			keep = append(keep, id)
		}
		s.jobOrder = keep
	}
	return nil
}

// dropJobLocked removes a job and its idempotency mapping; jmu must be held.
func (s *Server) dropJobLocked(j *job) {
	delete(s.jobs, j.id)
	if j.idemKey != "" && s.idem[j.idemKey] == j {
		delete(s.idem, j.idemKey)
	}
}

// unregisterJob drops a job that never made it into the queue.
func (s *Server) unregisterJob(j *job) {
	s.jmu.Lock()
	s.dropJobLocked(j)
	s.jmu.Unlock()
}

func (j *job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state == "done" || j.state == "failed"
}

func (j *job) failedTerminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.finished && j.state == "failed"
}

// worker pops jobs until the queue is closed and drained.
func (s *Server) worker() {
	defer s.workers.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runOutcome is one attempt's result, handed from the attempt goroutine
// back to the supervising worker.
type runOutcome struct {
	res      *deltacoloring.Result
	shatter  *deltacoloring.RandStats
	report   *deltacoloring.CheckReport
	sharded  *shard.Result // non-nil for ?shards= runs: K + cut traffic
	backend  string        // resolved backend name ("auto" resolved to the pick)
	err      error
	panicked bool
}

// runJob supervises one job: it runs attempts on a child goroutine so the
// worker can watchdog them, retries transient server-side failures with
// exponential backoff + jitter, feeds the circuit breaker, and quarantines
// jobs whose final attempt panicked. A hung attempt — one that outlives its
// deadline by more than WatchdogGrace without unwinding — is failed with a
// clean 504 and abandoned, returning the worker to the pool.
func (s *Server) runJob(j *job) {
	s.met.jobStarted()
	j.setState("running")
	start := time.Now()
	for attempt := 0; ; attempt++ {
		out := make(chan runOutcome, 1) // buffered: an abandoned attempt must not leak
		go s.runAttempt(j, out)
		var o runOutcome
		select {
		case o = <-out:
		case <-j.ctx.Done():
			// Deadline or cancellation while the attempt is in flight: the
			// run aborts itself at its next round boundary; give it the
			// grace window, then declare it hung.
			grace := time.NewTimer(s.cfg.WatchdogGrace)
			select {
			case o = <-out:
				grace.Stop()
			case <-grace.C:
				s.met.watchdogFired()
				s.met.jobFailed()
				s.breaker.failure()
				j.finish(&ColorResponse{JobID: j.id, State: "failed",
					Error: "watchdog: run exceeded its deadline and did not unwind"},
					http.StatusGatewayTimeout)
				return
			}
		}
		if o.err == nil {
			elapsed := time.Since(start)
			resp := resultResponse(j.g, o.res, o.shatter, o.report, float64(elapsed.Microseconds())/1000)
			resp.JobID = j.id
			resp.Backend = o.backend
			if o.sharded != nil {
				resp.Shards = o.sharded.K
				resp.CutEdges = o.sharded.Traffic.CutEdges
				resp.BoundaryUpdates = o.sharded.Traffic.BoundaryUpdates
				s.met.shardRun(o.sharded.Traffic.CutEdges, o.sharded.Traffic.BoundaryUpdates, o.sharded.Traffic.StepCalls)
			}
			if !j.req.NoCache {
				s.cache.add(j.key, resp)
			}
			s.met.jobCompleted(elapsed)
			s.met.backendJob(o.backend)
			s.breaker.success()
			j.finish(resp, http.StatusOK)
			return
		}
		if retryableFailure(o) && attempt < s.cfg.MaxRetries && j.ctx.Err() == nil {
			s.met.jobRetried()
			if sleepBackoff(j.ctx, s.cfg.RetryBaseBackoff, attempt) {
				continue
			}
			// Deadline consumed the backoff; fall through and fail with the
			// attempt's own error.
		}
		if o.panicked {
			j.quarantine()
			s.met.jobQuarantined()
		}
		s.failJob(j, o.err, o.panicked)
		return
	}
}

// runAttempt executes one pipeline attempt with panic isolation and sends
// exactly one outcome. It touches no job state beyond reads, so a timed-out
// attempt can be safely abandoned by its supervisor.
func (s *Server) runAttempt(j *job, out chan<- runOutcome) {
	defer func() {
		if r := recover(); r != nil {
			out <- runOutcome{err: fmt.Errorf("internal panic: %v", r), panicked: true}
		}
	}()
	if hook := s.cfg.runHook; hook != nil {
		hook(j)
	}
	if err := j.ctx.Err(); err != nil {
		out <- runOutcome{err: err}
		return
	}
	var (
		res     *deltacoloring.Result
		shatter *deltacoloring.RandStats
		report  *deltacoloring.CheckReport
		sharded *shard.Result
		name    string
		slack   int // extra palette room over Δ the producing pipeline declares
		err     error
	)
	if j.req.Shards > 0 {
		name = "greedy"
		slack = 1
		res, report, sharded, err = s.runSharded(j)
	} else if j.req.Backend != "" {
		res, shatter, report, name, slack, err = s.runBackend(j)
	} else if j.req.Algo == "rand" {
		// No explicit backend: the historical entry points, bit-compatible
		// with every pre-registry release.
		opts := &deltacoloring.RunOptions{SpanHook: s.met.addSpan}
		name = "rand"
		p := deltacoloring.ScaledRandomizedParams()
		if j.req.Paper {
			p = deltacoloring.DefaultRandomizedParams()
		}
		var rr *deltacoloring.RandomizedResult
		if j.req.Check {
			rr, report, err = deltacoloring.RunCheckedRandomizedContext(j.ctx, j.g, p, j.req.Seed, opts)
		} else {
			rr, err = deltacoloring.RandomizedContext(j.ctx, j.g, p, j.req.Seed, opts)
		}
		if rr != nil {
			res, shatter = &rr.Result, &rr.Rand
		}
	} else {
		opts := &deltacoloring.RunOptions{SpanHook: s.met.addSpan}
		name = "det"
		p := deltacoloring.ScaledParams()
		if j.req.Paper {
			p = deltacoloring.DefaultParams()
		}
		if j.req.Check {
			res, report, err = deltacoloring.RunCheckedContext(j.ctx, j.g, p, opts)
		} else {
			res, err = deltacoloring.DeterministicContext(j.ctx, j.g, p, opts)
		}
	}
	if err == nil {
		// Every pipeline is re-verified against its own declared palette: the
		// paper pipelines at Δ, the greedy wire algorithm (sharded runs, the
		// greedy backend) at Δ + its PaletteSlack of 1.
		err = deltacoloring.VerifyWithin(j.g, res.Colors, j.g.MaxDegree()+slack)
	}
	out <- runOutcome{res: res, shatter: shatter, report: report, sharded: sharded, backend: name, err: err}
}

// runSharded executes one ?shards= attempt: the greedy wire algorithm
// partitioned across j.req.Shards workers with cross-cut LOCAL rounds. The
// transport is in-process unless the server was configured with worker
// addresses (or the test seam). Checked runs attach the conformance harness
// to the coordinator's network and cross-check the merged coloring against
// the sequential oracle at the wire algorithm's Δ+1 palette.
func (s *Server) runSharded(j *job) (*deltacoloring.Result, *deltacoloring.CheckReport, *shard.Result, error) {
	session := "svc-" + j.id
	var tr shard.Transport
	switch {
	case s.cfg.shardTransport != nil:
		tr = s.cfg.shardTransport(session)
	case len(s.cfg.ShardAddrs) > 0:
		var err error
		if tr, err = shard.NewHTTPTransport(s.cfg.ShardAddrs, session, nil); err != nil {
			return nil, nil, nil, err
		}
	}
	cfg := shard.Config{
		K:         j.req.Shards,
		Transport: tr,
		SpanHook:  s.met.addSpan,
		Session:   session,
	}
	var h *invariant.Harness
	if j.req.Check {
		h = invariant.NewHarness(j.g)
		cfg.NetHook = h.Attach
	}
	sres, err := shard.Run(j.ctx, j.g, cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	res := &deltacoloring.Result{
		Colors: sres.Colors,
		Rounds: sres.Rounds,
		Spans:  sres.Spans,
	}
	var report *deltacoloring.CheckReport
	if h != nil {
		if oerr := invariant.ReferenceComplete(j.g, res.Colors, j.g.MaxDegree()+1); oerr != nil {
			return nil, nil, nil, fmt.Errorf("differential oracle rejected the merged coloring: %w", oerr)
		}
		report = &deltacoloring.CheckReport{Checks: h.Checks() + 1, Phases: append(h.Phases(), "oracle")}
	}
	return res, report, sres, nil
}

// runBackend executes one attempt through the backend registry: the request
// names a registered backend, or "auto" to let the portfolio selector pick
// by graph structure. Checked runs attach the conformance harness through
// the backend's NetHook seam and cross-check the final coloring against the
// sequential oracle, exactly like the historical checked entry points.
func (s *Server) runBackend(j *job) (*deltacoloring.Result, *deltacoloring.RandStats, *deltacoloring.CheckReport, string, int, error) {
	p := backend.Params{
		Det:  deltacoloring.ScaledParams(),
		Rand: deltacoloring.ScaledRandomizedParams(),
		Seed: j.req.Seed,
	}
	if j.req.Paper {
		p.Det = deltacoloring.DefaultParams()
		p.Rand = deltacoloring.DefaultRandomizedParams()
	}
	p.Rand.Params = p.Det
	var b backend.Backend
	if j.req.Backend == "auto" {
		b = backend.Select(j.g, p)
	} else {
		var err error
		if b, err = backend.Get(j.req.Backend); err != nil {
			return nil, nil, nil, j.req.Backend, 0, err
		}
	}
	slack := b.Caps().PaletteSlack
	opts := &backend.RunOptions{SpanHook: s.met.addSpan}
	var h *invariant.Harness
	if j.req.Check {
		h = invariant.NewHarness(j.g)
		opts.NetHook = h.Attach
	}
	bres, err := b.Color(j.ctx, j.g, p, opts)
	if err != nil {
		return nil, nil, nil, b.Name(), slack, err
	}
	res := &deltacoloring.Result{
		Colors:   bres.Colors,
		Rounds:   bres.Rounds,
		Spans:    bres.Spans,
		Frontier: bres.Frontier,
		Stats:    bres.Stats,
	}
	var report *deltacoloring.CheckReport
	if h != nil {
		// The oracle bound honors the backend's declared palette slack, like
		// the final re-verification in runAttempt.
		if oerr := invariant.ReferenceComplete(j.g, res.Colors, j.g.MaxDegree()+slack); oerr != nil {
			return nil, nil, nil, b.Name(), slack, fmt.Errorf("differential oracle rejected the final coloring: %w", oerr)
		}
		report = &deltacoloring.CheckReport{Checks: h.Checks() + 1, Phases: append(h.Phases(), "oracle")}
	}
	return res, bres.Rand, report, b.Name(), slack, nil
}

// retryableFailure reports whether an attempt's failure is worth re-running:
// panics and internal errors are (injected faults and transient breakage
// look exactly like them), while client-attributable outcomes — bad input
// classes and the job's own deadline/cancellation — are deterministic and
// are not.
func retryableFailure(o runOutcome) bool {
	if o.panicked {
		return true
	}
	switch {
	case errors.Is(o.err, context.DeadlineExceeded),
		errors.Is(o.err, context.Canceled),
		errors.Is(o.err, deltacoloring.ErrNotDense),
		errors.Is(o.err, deltacoloring.ErrBrooks):
		return false
	}
	return true
}

// sleepBackoff waits RetryBaseBackoff * 2^attempt plus up to 50% jitter,
// abandoning the wait (and returning false) if ctx finishes first.
func sleepBackoff(ctx context.Context, base time.Duration, attempt int) bool {
	d := base << attempt
	d += time.Duration(rand.Int63n(int64(d)/2 + 1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// failJob maps a pipeline error onto an HTTP status and finishes the job.
// Server-side failures (500s, timeouts of our own making) feed the circuit
// breaker; client-attributable ones do not.
func (s *Server) failJob(j *job, err error, panicked bool) {
	s.met.jobFailed()
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		status = 499 // client closed request (nginx convention)
	case errors.Is(err, deltacoloring.ErrNotDense), errors.Is(err, deltacoloring.ErrBrooks):
		status = http.StatusUnprocessableEntity
	}
	if status == http.StatusInternalServerError {
		s.breaker.failure()
	}
	j.finish(&ColorResponse{JobID: j.id, State: "failed", Error: err.Error(),
		Quarantined: panicked}, status)
}

// jsonBufPool recycles response-encoding buffers across requests so steady
// serving does not allocate a fresh encoder buffer per response.
var jsonBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func writeJSON(w http.ResponseWriter, status int, v any) {
	buf := jsonBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	enc := json.NewEncoder(buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		// Encoding our own response types cannot fail on valid data; fall
		// back to a bare status so the connection is not left hanging.
		w.WriteHeader(http.StatusInternalServerError)
		jsonBufPool.Put(buf)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
	if buf.Cap() <= 1<<20 { // don't pin giant colorings in the pool
		jsonBufPool.Put(buf)
	}
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, &ColorResponse{State: "failed", Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleColor(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	req, err := parseRequest(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// ?check=1 is the query-param spelling of the request's check field.
	switch r.URL.Query().Get("check") {
	case "", "0", "false":
	default:
		req.Check = true
	}
	// ?backend= is the query-param spelling of the request's backend field
	// (it wins over the body when both are present).
	if qb := r.URL.Query().Get("backend"); qb != "" {
		if err := validateBackendName(qb); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		req.Backend = qb
	}
	// ?shards= is the query-param spelling of the request's shards field
	// (it wins over the body when both are present).
	if qs := r.URL.Query().Get("shards"); qs != "" {
		n, err := strconv.Atoi(qs)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "shards=%q must be a non-negative integer", qs)
			return
		}
		req.Shards = n
	}
	if req.Shards > s.cfg.MaxShards {
		writeError(w, http.StatusBadRequest, "shards=%d above the server's %d-shard limit", req.Shards, s.cfg.MaxShards)
		return
	}
	// Re-check the shard combination: the query params above can introduce a
	// backend or shard count the body alone did not have.
	if err := validateShardCombo(req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	g, err := buildGraph(req, s.cfg.MaxVertices, s.cfg.GraphDir)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad graph: %v", err)
		return
	}
	key := cacheKey(g, req)
	if !req.NoCache {
		if resp, ok := s.cache.get(key); ok {
			s.met.cacheHit()
			hit := *resp
			hit.JobID = ""
			hit.Cached = true
			writeJSON(w, http.StatusOK, &hit)
			return
		}
		s.met.cacheMiss()
	}

	// The breaker guards fresh work only: cache hits above never reach it,
	// and joining an existing idempotent job adds no load either.
	if ok, retryAfter := s.breaker.allow(); !ok {
		s.met.jobShed()
		secs := int(retryAfter/time.Second) + 1
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeError(w, http.StatusServiceUnavailable, "circuit breaker open, retry in %ds", secs)
		return
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	idemKey := req.IdempotencyKey
	if idemKey == "" {
		idemKey = r.Header.Get("Idempotency-Key")
	}
	parent := context.Background()
	if !req.Async {
		// Sync callers abandon the run when they go away or time out — unless
		// the job is shared through an idempotency key, in which case a
		// retrying client must not cancel the attempt it will re-join.
		if idemKey == "" {
			parent = r.Context()
		}
	}
	ctx, cancel := context.WithTimeout(parent, timeout)
	j := &job{req: req, g: g, key: key, idemKey: idemKey, ctx: ctx, cancel: cancel,
		state: "queued", done: make(chan struct{})}
	if existing := s.registerJob(j); existing != nil {
		// A retried POST: join the job already doing (or done with) this
		// work instead of recomputing it.
		cancel()
		s.met.idemJoin()
		if req.Async {
			resp, _ := existing.snapshot()
			writeJSON(w, http.StatusAccepted, resp)
			return
		}
		select {
		case <-existing.done:
			resp, status := existing.snapshot()
			writeJSON(w, status, resp)
		case <-r.Context().Done():
			writeError(w, 499, "%v", r.Context().Err())
		}
		return
	}

	if err := s.enqueue(j); err != nil {
		cancel()
		s.unregisterJob(j)
		if errors.Is(err, errQueueFull) {
			s.met.jobRejected()
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "%v", err)
			return
		}
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}

	if req.Async {
		writeJSON(w, http.StatusAccepted, &ColorResponse{JobID: j.id, State: "queued"})
		return
	}
	select {
	case <-j.done:
	case <-ctx.Done():
	}
	select {
	case <-j.done:
		// Finished (the job's own completion also cancels ctx, so a woken
		// waiter must prefer the result).
		resp, status := j.snapshot()
		writeJSON(w, status, resp)
	default:
		// The deadline fired while the job was still queued or running;
		// the cancelled context makes the worker abandon it promptly.
		status := http.StatusGatewayTimeout
		if errors.Is(ctx.Err(), context.Canceled) {
			status = 499
		}
		writeError(w, status, "%v", ctx.Err())
	}
}

// handleShardRounds serves the worker half of the sharded protocol: a
// coordinator (possibly this same process in a cluster of peers) posts one
// init/step/finish/abort operation per shard per round. Protocol failures
// travel inside a 200 response so the coordinator can reconstruct the named
// violation type; only an undecodable body is an HTTP error.
func (s *Server) handleShardRounds(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	req, err := decodeStrict[shard.RoundsRequest](r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Op == "init" && req.ParentN > s.cfg.MaxVertices {
		writeJSON(w, http.StatusOK, &shard.RoundsResponse{
			Error: fmt.Sprintf("shard parent graph has n=%d, above the %d-vertex limit", req.ParentN, s.cfg.MaxVertices),
		})
		return
	}
	writeJSON(w, http.StatusOK, s.shardHost.Handle(req))
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	s.jmu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.jmu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	resp, _ := j.snapshot()
	writeJSON(w, http.StatusOK, resp)
}

// quarantinedCount reports how many retained job records are quarantined.
func (s *Server) quarantinedCount() int {
	s.jmu.Lock()
	defer s.jmu.Unlock()
	n := 0
	for _, j := range s.jobs {
		if j.isQuarantined() {
			n++
		}
	}
	return n
}

// breakerStateName renders a breaker state for humans.
func breakerStateName(state int) string {
	switch state {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := http.StatusOK
	state := "ok"
	if s.closed.Load() {
		status = http.StatusServiceUnavailable
		state = "shutting down"
	}
	bState, bOpens := s.breaker.snapshot()
	writeJSON(w, status, map[string]any{
		"status":         state,
		"queue_depth":    len(s.queue),
		"workers":        s.cfg.Workers,
		"breaker":        breakerStateName(bState),
		"breaker_opens":  bOpens,
		"quarantined":    s.quarantinedCount(),
		"graphs":         s.graphCount(),
		"recovering":     s.recovering.Load(),
		"shard_sessions": s.shardHost.Sessions(),
	})
}

// handleLivez is pure liveness: the process is up and serving HTTP. It stays
// 200 through recovery and shutdown drain — restarting a replaying server
// because its data plane is gated would only lose the replay work.
func (s *Server) handleLivez(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "alive"})
}

// handleReadyz is readiness: 503 while WAL recovery is replaying or the
// server is shutting down, with the per-graph recovery outcomes in the
// payload either way.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	status := http.StatusOK
	state := "ready"
	switch {
	case s.recovering.Load():
		status = http.StatusServiceUnavailable
		state = "recovering"
		w.Header().Set("Retry-After", "1")
	case s.closed.Load():
		status = http.StatusServiceUnavailable
		state = "shutting down"
	}
	reports, fleetErr := s.recoveryStatus()
	body := map[string]any{
		"status": state,
		"graphs": s.graphCount(),
	}
	if s.cfg.DataDir != "" {
		body["data_dir"] = s.cfg.DataDir
		body["recovery"] = reports
		if fleetErr != "" {
			body["recovery_error"] = fleetErr
		}
	}
	writeJSON(w, status, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	bState, _ := s.breaker.snapshot()
	s.met.writeTo(w, len(s.queue), s.cfg.Workers, bState, s.graphCount(), s.walTotals(), s.recoveryTotals())
}
