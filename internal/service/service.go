// Package service turns the Δ-coloring pipeline into a long-running HTTP
// serving subsystem: a JSON API over a bounded worker pool with a FIFO job
// queue and backpressure, an LRU result cache keyed by the canonical graph
// hash, per-request deadlines enforced at LOCAL round granularity, panic
// isolation per job, Prometheus-text metrics (including per-phase round
// totals harvested from the simulator's span tracing), and graceful
// shutdown that drains in-flight jobs.
//
// Endpoints:
//
//	POST /v1/color     run (or fetch from cache) a coloring; async with {"async": true}
//	GET  /v1/jobs/{id} poll an async job
//	GET  /healthz      liveness + queue snapshot
//	GET  /metrics      Prometheus text exposition
//
// Everything is standard library only, like the rest of the repository.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"deltacoloring"
	"deltacoloring/internal/graph"
)

// Config sizes the server. The zero value is usable: every field falls back
// to the documented default.
type Config struct {
	// Workers is the worker-pool size (default 4).
	Workers int
	// QueueDepth bounds the FIFO job queue; a full queue answers 429
	// (default 64).
	QueueDepth int
	// CacheSize is the LRU result-cache capacity in entries (default 256).
	CacheSize int
	// DefaultTimeout caps a run when the request names none (default 30s).
	DefaultTimeout time.Duration
	// MaxTimeout clamps request-supplied timeouts (default 5m).
	MaxTimeout time.Duration
	// MaxBodyBytes bounds the request body (default 32 MiB).
	MaxBodyBytes int64
	// MaxVertices bounds the vertex count of any requested graph, keeping
	// a few header bytes from committing the server to a giant allocation
	// (default 1<<20).
	MaxVertices int
	// MaxJobs bounds the retained job table; finished jobs are evicted
	// oldest-first beyond it (default 1024).
	MaxJobs int

	// runHook, when set, runs on the worker goroutine just before a job's
	// pipeline starts. It is a test seam for making saturation and slow
	// jobs deterministic.
	runHook func(*job)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 256
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.MaxVertices <= 0 {
		c.MaxVertices = 1 << 20
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	return c
}

// job tracks one queued coloring run through its lifecycle.
type job struct {
	id     string
	req    *ColorRequest
	g      *graph.Graph
	key    string
	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	state  string // "queued" -> "running" -> "done" | "failed"
	resp   *ColorResponse
	status int // HTTP status a sync waiter should use
	done   chan struct{}
}

func (j *job) snapshot() (*ColorResponse, int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.resp != nil {
		return j.resp, j.status
	}
	return &ColorResponse{JobID: j.id, State: j.state}, http.StatusOK
}

func (j *job) setState(s string) {
	j.mu.Lock()
	j.state = s
	j.mu.Unlock()
}

// finish publishes the job's terminal response. resp must already carry
// the job ID and be fully built: it may simultaneously be visible through
// the result cache, so no mutation after this point.
func (j *job) finish(resp *ColorResponse, status int) {
	j.mu.Lock()
	j.state = resp.State
	j.resp = resp
	j.status = status
	j.mu.Unlock()
	// Close before cancel: waiters woken by the cancellation must already
	// see the job as finished.
	close(j.done)
	j.cancel()
}

// Server is the serving subsystem; create with New, expose via Handler, and
// stop with Shutdown.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	met   *metrics
	cache *lruCache

	queue   chan *job
	qmu     sync.RWMutex // guards queue sends against close
	closed  atomic.Bool
	workers sync.WaitGroup

	jmu      sync.Mutex
	jobs     map[string]*job
	jobOrder []string
	jobSeq   uint64
}

// New builds a server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		mux:   http.NewServeMux(),
		met:   newMetrics(),
		cache: newLRU(cfg.CacheSize),
		queue: make(chan *job, cfg.QueueDepth),
		jobs:  make(map[string]*job),
	}
	s.mux.HandleFunc("POST /v1/color", s.handleColor)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.workers.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Handler returns the HTTP handler serving the API.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown stops accepting work and drains the queue: every already
// accepted job still runs to completion (or cancellation by its own
// deadline). It returns ctx.Err if draining outlives ctx.
func (s *Server) Shutdown(ctx context.Context) error {
	s.qmu.Lock()
	if !s.closed.Swap(true) {
		close(s.queue)
	}
	s.qmu.Unlock()
	drained := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

var (
	errQueueFull    = errors.New("job queue is full")
	errShuttingDown = errors.New("server is shutting down")
)

func (s *Server) enqueue(j *job) error {
	s.qmu.RLock()
	defer s.qmu.RUnlock()
	if s.closed.Load() {
		return errShuttingDown
	}
	select {
	case s.queue <- j:
		return nil
	default:
		return errQueueFull
	}
}

// registerJob assigns an ID, retains the job for polling, and evicts the
// oldest finished jobs beyond the retention bound.
func (s *Server) registerJob(j *job) {
	s.jmu.Lock()
	defer s.jmu.Unlock()
	s.jobSeq++
	j.id = fmt.Sprintf("j%08d", s.jobSeq)
	s.jobs[j.id] = j
	s.jobOrder = append(s.jobOrder, j.id)
	if len(s.jobs) <= s.cfg.MaxJobs {
		return
	}
	keep := s.jobOrder[:0]
	for _, id := range s.jobOrder {
		old, live := s.jobs[id]
		if !live {
			continue
		}
		if len(s.jobs) > s.cfg.MaxJobs && old.terminal() {
			delete(s.jobs, id)
			continue
		}
		keep = append(keep, id)
	}
	s.jobOrder = keep
}

// unregisterJob drops a job that never made it into the queue.
func (s *Server) unregisterJob(j *job) {
	s.jmu.Lock()
	delete(s.jobs, j.id)
	s.jmu.Unlock()
}

func (j *job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state == "done" || j.state == "failed"
}

// worker pops jobs until the queue is closed and drained.
func (s *Server) worker() {
	defer s.workers.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one coloring with panic isolation: a panicking pipeline
// fails its own job and leaves the worker alive.
func (s *Server) runJob(j *job) {
	s.met.jobStarted()
	j.setState("running")
	start := time.Now()
	defer func() {
		if r := recover(); r != nil {
			s.met.jobFailed()
			j.finish(&ColorResponse{JobID: j.id, State: "failed", Error: fmt.Sprintf("internal panic: %v", r)},
				http.StatusInternalServerError)
		}
	}()
	if hook := s.cfg.runHook; hook != nil {
		hook(j)
	}
	if err := j.ctx.Err(); err != nil {
		s.failJob(j, err)
		return
	}
	opts := &deltacoloring.RunOptions{SpanHook: s.met.addSpan}
	var (
		res     *deltacoloring.Result
		shatter *deltacoloring.RandStats
		err     error
	)
	if j.req.Algo == "rand" {
		p := deltacoloring.ScaledRandomizedParams()
		if j.req.Paper {
			p = deltacoloring.DefaultRandomizedParams()
		}
		var rr *deltacoloring.RandomizedResult
		rr, err = deltacoloring.RandomizedContext(j.ctx, j.g, p, j.req.Seed, opts)
		if rr != nil {
			res, shatter = &rr.Result, &rr.Rand
		}
	} else {
		p := deltacoloring.ScaledParams()
		if j.req.Paper {
			p = deltacoloring.DefaultParams()
		}
		res, err = deltacoloring.DeterministicContext(j.ctx, j.g, p, opts)
	}
	if err == nil {
		err = deltacoloring.Verify(j.g, res.Colors)
	}
	if err != nil {
		s.failJob(j, err)
		return
	}
	elapsed := time.Since(start)
	resp := resultResponse(j.g, res, shatter, float64(elapsed.Microseconds())/1000)
	resp.JobID = j.id
	if !j.req.NoCache {
		s.cache.add(j.key, resp)
	}
	s.met.jobCompleted(elapsed)
	j.finish(resp, http.StatusOK)
}

// failJob maps a pipeline error onto an HTTP status and finishes the job.
func (s *Server) failJob(j *job, err error) {
	s.met.jobFailed()
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		status = 499 // client closed request (nginx convention)
	case errors.Is(err, deltacoloring.ErrNotDense), errors.Is(err, deltacoloring.ErrBrooks):
		status = http.StatusUnprocessableEntity
	}
	j.finish(&ColorResponse{JobID: j.id, State: "failed", Error: err.Error()}, status)
}

// jsonBufPool recycles response-encoding buffers across requests so steady
// serving does not allocate a fresh encoder buffer per response.
var jsonBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func writeJSON(w http.ResponseWriter, status int, v any) {
	buf := jsonBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	enc := json.NewEncoder(buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		// Encoding our own response types cannot fail on valid data; fall
		// back to a bare status so the connection is not left hanging.
		w.WriteHeader(http.StatusInternalServerError)
		jsonBufPool.Put(buf)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
	if buf.Cap() <= 1<<20 { // don't pin giant colorings in the pool
		jsonBufPool.Put(buf)
	}
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, &ColorResponse{State: "failed", Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleColor(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	req, err := parseRequest(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	g, err := buildGraph(req, s.cfg.MaxVertices)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad graph: %v", err)
		return
	}
	key := cacheKey(g, req)
	if !req.NoCache {
		if resp, ok := s.cache.get(key); ok {
			s.met.cacheHit()
			hit := *resp
			hit.JobID = ""
			hit.Cached = true
			writeJSON(w, http.StatusOK, &hit)
			return
		}
		s.met.cacheMiss()
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	parent := context.Background()
	if !req.Async {
		// Sync callers abandon the run when they go away or time out.
		parent = r.Context()
	}
	ctx, cancel := context.WithTimeout(parent, timeout)
	j := &job{req: req, g: g, key: key, ctx: ctx, cancel: cancel, state: "queued", done: make(chan struct{})}
	s.registerJob(j)

	if err := s.enqueue(j); err != nil {
		cancel()
		s.unregisterJob(j)
		if errors.Is(err, errQueueFull) {
			s.met.jobRejected()
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "%v", err)
			return
		}
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}

	if req.Async {
		writeJSON(w, http.StatusAccepted, &ColorResponse{JobID: j.id, State: "queued"})
		return
	}
	select {
	case <-j.done:
	case <-ctx.Done():
	}
	select {
	case <-j.done:
		// Finished (the job's own completion also cancels ctx, so a woken
		// waiter must prefer the result).
		resp, status := j.snapshot()
		writeJSON(w, status, resp)
	default:
		// The deadline fired while the job was still queued or running;
		// the cancelled context makes the worker abandon it promptly.
		status := http.StatusGatewayTimeout
		if errors.Is(ctx.Err(), context.Canceled) {
			status = 499
		}
		writeError(w, status, "%v", ctx.Err())
	}
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	s.jmu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.jmu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	resp, _ := j.snapshot()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := http.StatusOK
	state := "ok"
	if s.closed.Load() {
		status = http.StatusServiceUnavailable
		state = "shutting down"
	}
	writeJSON(w, status, map[string]any{
		"status":      state,
		"queue_depth": len(s.queue),
		"workers":     s.cfg.Workers,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.writeTo(w, len(s.queue), s.cfg.Workers)
}
