package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"deltacoloring"
)

// newTestServer spins up a service plus an httptest front end; the caller
// gets a client and a shutdown func (safe to call twice).
func newTestServer(t *testing.T, cfg Config) (*Server, *Client, func()) {
	t.Helper()
	svc := New(cfg)
	ts := httptest.NewServer(svc.Handler())
	var once sync.Once
	stop := func() {
		once.Do(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := svc.Shutdown(ctx); err != nil {
				t.Errorf("Shutdown: %v", err)
			}
			ts.Close()
		})
	}
	t.Cleanup(stop)
	return svc, NewClient(ts.URL), stop
}

func easyReq(k int) *ColorRequest {
	return &ColorRequest{Gen: &GenSpec{Family: "easy", M: k, Delta: 16}}
}

func mustVerify(t *testing.T, g *deltacoloring.Graph, resp *ColorResponse) {
	t.Helper()
	if resp.State != "done" {
		t.Fatalf("state %q, error %q", resp.State, resp.Error)
	}
	if err := deltacoloring.Verify(g, resp.Colors); err != nil {
		t.Fatalf("invalid coloring: %v", err)
	}
}

func TestSyncColor(t *testing.T) {
	_, cl, _ := newTestServer(t, Config{Workers: 2})
	resp, err := cl.Color(context.Background(), easyReq(4))
	if err != nil {
		t.Fatal(err)
	}
	mustVerify(t, deltacoloring.GenEasyCliqueRing(4, 16), resp)
	if resp.N != 64 || resp.Delta != 16 || resp.Rounds <= 0 || len(resp.Spans) == 0 {
		t.Fatalf("summary wrong: %+v", resp)
	}
}

func TestRandAlgo(t *testing.T) {
	_, cl, _ := newTestServer(t, Config{Workers: 2})
	req := easyReq(4)
	req.Algo = "rand"
	req.Seed = 3
	resp, err := cl.Color(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	mustVerify(t, deltacoloring.GenEasyCliqueRing(4, 16), resp)
	if resp.Shatter == nil {
		t.Fatal("randomized run missing shattering stats")
	}
}

// The canonical hash keys the cache by structure, so the same graph sent as
// an inline spec and as an edge-list text shares one entry.
func TestCacheHitAcrossSources(t *testing.T) {
	_, cl, _ := newTestServer(t, Config{Workers: 2})
	g := deltacoloring.GenEasyCliqueRing(4, 16)
	spec := &GraphSpec{N: g.N()}
	var el strings.Builder
	fmt.Fprintln(&el, g.N())
	for _, e := range g.Edges() {
		spec.Edges = append(spec.Edges, [2]int{e.U, e.V})
		fmt.Fprintln(&el, e.U, e.V)
	}

	first, err := cl.Color(context.Background(), &ColorRequest{Graph: spec})
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first request cannot be cached")
	}
	second, err := cl.Color(context.Background(), &ColorRequest{EdgeList: el.String()})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("identical graph via edge_list missed the cache")
	}
	mustVerify(t, g, second)

	// A different seed under algo=rand is a different key.
	r1 := &ColorRequest{Graph: spec, Algo: "rand", Seed: 1}
	if resp, err := cl.Color(context.Background(), r1); err != nil || resp.Cached {
		t.Fatalf("rand seed 1: cached=%v err=%v", resp != nil && resp.Cached, err)
	}
	r2 := &ColorRequest{EdgeList: el.String(), Algo: "rand", Seed: 2}
	if resp, err := cl.Color(context.Background(), r2); err != nil || resp.Cached {
		t.Fatalf("rand seed 2 must not hit seed 1's entry: cached=%v err=%v", resp != nil && resp.Cached, err)
	}
}

// check=1 attaches the conformance harness: the response must report phase
// checker firings plus the oracle cross-check, the coloring must stay
// bit-identical to the unchecked run, and checked/unchecked results must not
// share cache entries.
func TestCheckMode(t *testing.T) {
	_, cl, _ := newTestServer(t, Config{Workers: 2})
	plain, err := cl.Color(context.Background(), easyReq(4))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Checks != 0 || plain.CheckPhases != nil {
		t.Fatalf("unchecked run reported checks: %+v", plain)
	}

	req := easyReq(4)
	req.Check = true
	checked, err := cl.Color(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	mustVerify(t, deltacoloring.GenEasyCliqueRing(4, 16), checked)
	if checked.Cached {
		t.Fatal("checked run must not hit the unchecked cache entry")
	}
	if checked.Checks <= 0 {
		t.Fatalf("checked run reported %d checks", checked.Checks)
	}
	want := map[string]bool{"final": false, "oracle": false}
	for _, p := range checked.CheckPhases {
		if _, ok := want[p]; ok {
			want[p] = true
		}
	}
	for p, seen := range want {
		if !seen {
			t.Fatalf("check_phases %v missing %q", checked.CheckPhases, p)
		}
	}
	if !slicesEqual(plain.Colors, checked.Colors) {
		t.Fatal("checked run not bit-identical to unchecked run")
	}

	// The query-param spelling reaches the same path.
	body, _ := json.Marshal(easyReq(4))
	hr, err := http.Post(cl.BaseURL+"/v1/color?check=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var qresp ColorResponse
	if err := json.NewDecoder(hr.Body).Decode(&qresp); err != nil {
		t.Fatal(err)
	}
	if qresp.State != "done" || qresp.Checks <= 0 {
		t.Fatalf("?check=1 response: %+v", qresp)
	}
	if !qresp.Cached {
		t.Fatal("second checked run of the same graph should hit the checked cache entry")
	}

	// Checked randomized runs keep their shattering stats.
	rreq := easyReq(4)
	rreq.Algo, rreq.Seed, rreq.Check = "rand", 3, true
	rresp, err := cl.Color(context.Background(), rreq)
	if err != nil {
		t.Fatal(err)
	}
	if rresp.Shatter == nil || rresp.Checks <= 0 {
		t.Fatalf("checked rand run: shatter=%v checks=%d", rresp.Shatter, rresp.Checks)
	}
}

func slicesEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBadRequests(t *testing.T) {
	_, cl, _ := newTestServer(t, Config{Workers: 1})
	post := func(body string) int {
		t.Helper()
		resp, err := http.Post(cl.BaseURL+"/v1/color", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var cr ColorResponse
		if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
			t.Fatalf("error body not JSON: %v", err)
		}
		if resp.StatusCode >= 400 && cr.Error == "" {
			t.Fatalf("error response without message: %q", body)
		}
		return resp.StatusCode
	}
	cases := []string{
		`{not json`,
		`{}`,
		`{"gen": {"family": "easy", "m": 4, "delta": 16}, "edge_list": "2\n0 1\n"}`,
		`{"algo": "quantum", "gen": {"family": "easy", "m": 4, "delta": 16}}`,
		`{"gen": {"family": "cursed", "m": 4, "delta": 16}}`,
		`{"gen": {"family": "easy", "m": 1, "delta": 16}}`,
		`{"gen": {"family": "hard", "m": 2, "delta": 16}}`,
		`{"gen": {"family": "mixed", "m": 2, "delta": 2}}`,
		`{"edge_list": "2\n0 5\n"}`,
		`{"edge_list": "x\n"}`,
		`{"graph": {"n": 3, "edges": [[0, 9]]}}`,
		`{"timeout_ms": -5, "gen": {"family": "easy", "m": 4, "delta": 16}}`,
		`{"gen": {"family": "easy", "m": 4, "delta": 16}, "surprise": 1}`,
		`{"edge_list": "99999999\n"}`,
		`{"graph": {"n": 99999999, "edges": []}}`,
		`{"gen": {"family": "hard", "m": 99999999, "delta": 16}}`,
	}
	for _, body := range cases {
		if got := post(body); got != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, got)
		}
	}
}

func TestNotDenseMapsTo422(t *testing.T) {
	_, cl, _ := newTestServer(t, Config{Workers: 1})
	// A star is maximally sparse: the ACD rejects it with ErrNotDense.
	req := &ColorRequest{EdgeList: "9\n0 1\n0 2\n0 3\n0 4\n0 5\n0 6\n0 7\n0 8\n"}
	_, err := cl.Color(context.Background(), req)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("want 422 APIError, got %v", err)
	}
	if apiErr.Resp == nil || apiErr.Resp.State != "failed" || apiErr.Resp.Error == "" {
		t.Fatalf("error body: %+v", apiErr.Resp)
	}
}

func TestAsyncJobLifecycle(t *testing.T) {
	_, cl, _ := newTestServer(t, Config{Workers: 2})
	req := easyReq(6)
	req.Async = true
	acc, err := cl.Color(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if acc.JobID == "" || (acc.State != "queued" && acc.State != "running") {
		t.Fatalf("async accept: %+v", acc)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	final, err := cl.Wait(ctx, acc.JobID, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	mustVerify(t, deltacoloring.GenEasyCliqueRing(6, 16), final)
	if final.JobID != acc.JobID {
		t.Fatalf("job id changed: %q -> %q", acc.JobID, final.JobID)
	}

	if _, err := cl.Job(context.Background(), "j99999999"); err == nil {
		t.Fatal("unknown job must 404")
	} else if apiErr := new(APIError); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %v", err)
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	cfg := Config{Workers: 1, QueueDepth: 1}
	cfg.runHook = func(j *job) {
		started <- j.id
		<-release
	}
	_, cl, _ := newTestServer(t, cfg)

	submit := func() (*ColorResponse, error) {
		req := easyReq(4)
		req.Async = true
		req.NoCache = true
		return cl.Color(context.Background(), req)
	}
	first, err := submit()
	if err != nil {
		t.Fatal(err)
	}
	<-started // the only worker is now blocked inside first's run
	second, err := submit()
	if err != nil {
		t.Fatal(err)
	}
	_, err = submit() // worker busy + queue slot taken -> 429
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("want 429, got %v", err)
	}
	if apiErr.RetryAfter <= 0 {
		t.Fatal("429 must carry Retry-After")
	}
	close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, id := range []string{first.JobID, second.JobID} {
		resp, err := cl.Wait(ctx, id, 2*time.Millisecond)
		if err != nil || resp.State != "done" {
			t.Fatalf("job %s after release: %+v, %v", id, resp, err)
		}
	}
}

func TestDeadlineExceeded(t *testing.T) {
	cfg := Config{Workers: 1}
	cfg.runHook = func(*job) { time.Sleep(50 * time.Millisecond) }
	_, cl, _ := newTestServer(t, cfg)
	req := easyReq(4)
	req.TimeoutMS = 10
	req.NoCache = true
	_, err := cl.Color(context.Background(), req)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("want 504, got %v", err)
	}
}

func TestGracefulShutdownDrains(t *testing.T) {
	var ran atomic.Int32
	cfg := Config{Workers: 2, QueueDepth: 16}
	cfg.runHook = func(*job) { ran.Add(1); time.Sleep(3 * time.Millisecond) }
	svc, cl, stop := newTestServer(t, cfg)

	ids := make([]string, 0, 6)
	for i := 0; i < 6; i++ {
		req := easyReq(4 + i%3)
		req.Async = true
		req.NoCache = true
		resp, err := cl.Color(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, resp.JobID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// Every accepted job must have been drained to completion.
	if got := ran.Load(); got != 6 {
		t.Fatalf("ran %d of 6 accepted jobs", got)
	}
	for _, id := range ids {
		resp, err := cl.Job(context.Background(), id)
		if err != nil || resp.State != "done" {
			t.Fatalf("job %s after drain: %+v, %v", id, resp, err)
		}
	}
	// The closed server refuses new work but still answers polls.
	if err := cl.Healthz(context.Background()); err == nil {
		t.Fatal("healthz must fail after shutdown")
	}
	_, err := cl.Color(context.Background(), easyReq(4))
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown POST: want 503, got %v", err)
	}
	stop()
}

var metricLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_]+="(\\.|[^"\\])*"(,[a-zA-Z_]+="(\\.|[^"\\])*")*\})? (-?[0-9.e+-]+|\+Inf|NaN)$`)

// scrapeMetrics fetches /metrics, validates every line against the
// Prometheus text format, and returns the samples keyed by full name
// (including the label part).
func scrapeMetrics(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples := map[string]float64{}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !metricLine.MatchString(line) {
			t.Fatalf("malformed metrics line: %q", line)
		}
		sp := strings.LastIndex(line, " ")
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		samples[line[:sp]] = v
	}
	return samples
}

func TestMetricsExposition(t *testing.T) {
	_, cl, _ := newTestServer(t, Config{Workers: 2})
	if _, err := cl.Color(context.Background(), easyReq(4)); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Color(context.Background(), easyReq(4)); err != nil {
		t.Fatal(err)
	}
	m := scrapeMetrics(t, cl.BaseURL)

	for _, name := range []string{
		"deltaserved_jobs_started_total",
		"deltaserved_jobs_completed_total",
		"deltaserved_jobs_failed_total",
		"deltaserved_jobs_rejected_total",
		"deltaserved_cache_hits_total",
		"deltaserved_cache_misses_total",
		"deltaserved_queue_depth",
		"deltaserved_workers",
		"deltaserved_job_duration_seconds_sum",
	} {
		if _, ok := m[name]; !ok {
			t.Errorf("missing metric %s", name)
		}
	}
	if m["deltaserved_jobs_completed_total"] < 1 || m["deltaserved_cache_hits_total"] < 1 {
		t.Fatalf("counters wrong: %v", m)
	}
	// Per-phase round totals from local.Span tracing must be present.
	phases := 0
	for name, v := range m {
		if strings.HasPrefix(name, "deltaserved_phase_rounds_total{phase=") {
			phases++
			if v <= 0 {
				t.Errorf("phase counter %s = %v", name, v)
			}
		}
	}
	if phases == 0 {
		t.Fatal("no deltaserved_phase_rounds_total{phase=...} samples")
	}
	// Histogram sanity: cumulative buckets, +Inf equals count.
	count := m["deltaserved_job_duration_seconds_count"]
	if inf := m[`deltaserved_job_duration_seconds_bucket{le="+Inf"}`]; inf != count || count < 1 {
		t.Fatalf("histogram +Inf %v != count %v", m[`deltaserved_job_duration_seconds_bucket{le="+Inf"}`], count)
	}
	prev := -1.0
	for _, le := range []string{"0.001", "0.005", "0.025", "0.1", "0.5", "2.5", "10"} {
		v, ok := m[fmt.Sprintf("deltaserved_job_duration_seconds_bucket{le=%q}", le)]
		if !ok {
			t.Fatalf("missing bucket le=%s", le)
		}
		if v < prev {
			t.Fatalf("bucket le=%s not cumulative", le)
		}
		prev = v
	}
}

// TestConcurrentLoad is the acceptance scenario: >= 64 concurrent POSTs
// against a pool of 4 workers with a short queue. Every successful response
// must verify; saturation must produce at least one 429; repeats must hit
// the cache; and shutdown must drain cleanly. Run with -race.
func TestConcurrentLoad(t *testing.T) {
	cfg := Config{Workers: 4, QueueDepth: 8, CacheSize: 64}
	// Workers hold their first jobs at a gate until saturation has actually
	// been observed, so the >= 1 rejection below is deterministic rather
	// than a scheduling accident: with all 4 workers parked and 8 queue
	// slots, the remaining clients must collide with a full queue.
	gate := make(chan struct{})
	cfg.runHook = func(*job) { <-gate }
	svc, cl, _ := newTestServer(t, cfg)

	const clients = 64
	ks := []int{4, 5, 6, 7, 8, 9, 10, 11}
	graphs := make([]*deltacoloring.Graph, len(ks))
	for i, k := range ks {
		graphs[i] = deltacoloring.GenEasyCliqueRing(k, 16)
	}

	var rejected, cached atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	start := make(chan struct{})
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			req := easyReq(ks[i%len(ks)])
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			for attempt := 0; ; attempt++ {
				resp, err := cl.Color(ctx, req)
				var apiErr *APIError
				if errors.As(err, &apiErr) && apiErr.StatusCode == http.StatusTooManyRequests {
					rejected.Add(1)
					if attempt > 500 {
						errs <- fmt.Errorf("client %d: starved after %d retries", i, attempt)
						return
					}
					time.Sleep(time.Duration(1+i%4) * time.Millisecond)
					continue
				}
				if err != nil {
					errs <- fmt.Errorf("client %d: %w", i, err)
					return
				}
				if verr := deltacoloring.Verify(graphs[i%len(ks)], resp.Colors); verr != nil {
					errs <- fmt.Errorf("client %d: bad coloring: %w", i, verr)
					return
				}
				if resp.Cached {
					cached.Add(1)
				}
				return
			}
		}(i)
	}
	close(start)
	go func() {
		for rejected.Load() == 0 {
			time.Sleep(time.Millisecond)
		}
		close(gate)
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if rejected.Load() == 0 {
		t.Error("expected at least one 429 under saturation")
	}

	// A repeat of any request is a guaranteed cache hit by now.
	resp, err := cl.Color(context.Background(), easyReq(ks[0]))
	if err != nil || !resp.Cached {
		t.Fatalf("repeat request: cached=%v err=%v", resp != nil && resp.Cached, err)
	}
	cached.Add(1)
	if cached.Load() < 1 {
		t.Error("expected at least one cache hit")
	}

	m := scrapeMetrics(t, cl.BaseURL)
	if m["deltaserved_jobs_rejected_total"] < 1 || m["deltaserved_cache_hits_total"] < 1 {
		t.Errorf("metrics disagree with observations: %v", m)
	}
	if m["deltaserved_jobs_completed_total"] < float64(len(ks)) {
		t.Errorf("completed %v < %d distinct graphs", m["deltaserved_jobs_completed_total"], len(ks))
	}

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("drain after load: %v", err)
	}
	t.Logf("load: %d clients, %d rejections, %d cache hits, %.0f runs",
		clients, rejected.Load(), cached.Load(), m["deltaserved_jobs_completed_total"])
}

func TestLRUCacheEviction(t *testing.T) {
	c := newLRU(2)
	r := func(id string) *ColorResponse { return &ColorResponse{JobID: id} }
	c.add("a", r("a"))
	c.add("b", r("b"))
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted too early")
	}
	c.add("c", r("c")) // evicts b (a was just used)
	if _, ok := c.get("b"); ok {
		t.Fatal("b should be evicted")
	}
	for _, want := range []string{"a", "c"} {
		if got, ok := c.get(want); !ok || got.JobID != want {
			t.Fatalf("lost %s", want)
		}
	}
	if c.len() != 2 {
		t.Fatalf("len %d", c.len())
	}
}

func TestPanicIsolation(t *testing.T) {
	cfg := Config{Workers: 1}
	cfg.runHook = func(j *job) {
		if j.req.Seed == 666 {
			panic("boom")
		}
	}
	_, cl, _ := newTestServer(t, cfg)
	bad := easyReq(4)
	bad.Seed = 666
	bad.NoCache = true
	_, err := cl.Color(context.Background(), bad)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusInternalServerError {
		t.Fatalf("want 500 from panicking job, got %v", err)
	}
	if !strings.Contains(apiErr.Resp.Error, "internal panic") {
		t.Fatalf("panic not reported: %+v", apiErr.Resp)
	}
	// The worker survived and serves the next request.
	resp, err := cl.Color(context.Background(), easyReq(4))
	if err != nil {
		t.Fatal(err)
	}
	mustVerify(t, deltacoloring.GenEasyCliqueRing(4, 16), resp)
}
