package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"deltacoloring"
)

func hardReq() *ColorRequest {
	return &ColorRequest{Gen: &GenSpec{Family: "hard", M: 16, Delta: 16}}
}

// TestBackendSelection runs one graph through every explicitly named
// backend plus "auto": each response must carry a verified Δ-coloring and
// report the resolved backend name.
func TestBackendSelection(t *testing.T) {
	_, cl, _ := newTestServer(t, Config{Workers: 2})
	g := deltacoloring.GenHardCliqueBipartite(16, 16)
	var detColors []int
	for _, name := range []string{"det", "ruling", "simple", "rand", "auto"} {
		req := hardReq()
		req.Backend = name
		req.Seed = 5
		resp, err := cl.Color(context.Background(), req)
		if err != nil {
			t.Fatalf("backend %s: %v", name, err)
		}
		mustVerify(t, g, resp)
		if resp.Cached {
			t.Fatalf("backend %s: distinct backends must not share cache entries", name)
		}
		want := name
		if name == "auto" {
			// auto reports the selector's concrete pick.
			if resp.Backend == "" || resp.Backend == "auto" {
				t.Fatalf("auto run reported backend %q", resp.Backend)
			}
			want = resp.Backend
		}
		if resp.Backend != want {
			t.Fatalf("response backend %q, want %q", resp.Backend, want)
		}
		if name == "det" {
			detColors = resp.Colors
		}
		if name == "rand" && resp.Shatter == nil {
			t.Fatal("backend=rand run missing shattering stats")
		}
	}
	// The registry det backend is bit-identical to the legacy Algo path.
	legacy, err := cl.Color(context.Background(), hardReq())
	if err != nil {
		t.Fatal(err)
	}
	if !slicesEqual(legacy.Colors, detColors) {
		t.Fatal("backend=det diverged from the legacy det path")
	}
	if legacy.Backend != "det" {
		t.Fatalf("legacy run reported backend %q", legacy.Backend)
	}
}

// TestBackendQueryParamAndCheck exercises the ?backend= spelling combined
// with ?check=1: the conformance harness validates the ruling route's
// checkpoints end to end through the HTTP surface.
func TestBackendQueryParamAndCheck(t *testing.T) {
	_, cl, _ := newTestServer(t, Config{Workers: 2})
	body, _ := json.Marshal(hardReq())
	hr, err := http.Post(cl.BaseURL+"/v1/color?backend=ruling&check=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var resp ColorResponse
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if hr.StatusCode != http.StatusOK || resp.State != "done" {
		t.Fatalf("status %d, response %+v", hr.StatusCode, resp)
	}
	if resp.Backend != "ruling" || resp.Checks <= 0 {
		t.Fatalf("backend %q checks %d", resp.Backend, resp.Checks)
	}
	want := map[string]bool{"ruling/rulingset": false, "final": false, "oracle": false}
	for _, p := range resp.CheckPhases {
		if _, ok := want[p]; ok {
			want[p] = true
		}
	}
	for p, seen := range want {
		if !seen {
			t.Fatalf("check_phases %v missing %q", resp.CheckPhases, p)
		}
	}
}

// TestBackendUnknown400 pins the fail-fast contract: unknown backend names
// answer 400 with the registered names in the message, via both spellings.
func TestBackendUnknown400(t *testing.T) {
	_, cl, _ := newTestServer(t, Config{Workers: 1})
	assert400 := func(url, body string) {
		t.Helper()
		hr, err := http.Post(url, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer hr.Body.Close()
		var resp ColorResponse
		if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
			t.Fatal(err)
		}
		if hr.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, error %q", hr.StatusCode, resp.Error)
		}
		for _, frag := range []string{`unknown backend "nonesuch"`, "det", "ruling"} {
			if !strings.Contains(resp.Error, frag) {
				t.Fatalf("error %q does not mention %q", resp.Error, frag)
			}
		}
	}
	assert400(cl.BaseURL+"/v1/color",
		`{"backend": "nonesuch", "gen": {"family": "easy", "m": 4, "delta": 16}}`)
	assert400(cl.BaseURL+"/v1/color?backend=nonesuch",
		`{"gen": {"family": "easy", "m": 4, "delta": 16}}`)
}

// TestBackendMetricsLabel: completed runs surface per-backend counters on
// /metrics under the resolved name.
func TestBackendMetricsLabel(t *testing.T) {
	_, cl, _ := newTestServer(t, Config{Workers: 2})
	req := hardReq()
	req.Backend = "ruling"
	if _, err := cl.Color(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Color(context.Background(), easyReq(4)); err != nil {
		t.Fatal(err)
	}
	hr, err := http.Get(cl.BaseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	raw, _ := io.ReadAll(hr.Body)
	for _, line := range []string{
		`deltaserved_backend_jobs_total{backend="ruling"} 1`,
		`deltaserved_backend_jobs_total{backend="det"} 1`,
	} {
		if !strings.Contains(string(raw), line) {
			t.Fatalf("metrics missing %q:\n%s", line, raw)
		}
	}
}

// TestGraphCreateWithBackend: a dynamic store created with a backend serves
// a true Δ-coloring, and unknown names are rejected with 400 before the
// store exists.
func TestGraphCreateWithBackend(t *testing.T) {
	_, ts := newGraphServer(t, Config{})
	var bad GraphResponse
	if code := doJSON(t, ts, "POST", "/v1/graphs",
		&CreateGraphRequest{Gen: &GenSpec{Family: "hard", M: 16, Delta: 16}, Backend: "nonesuch"},
		&bad); code != http.StatusBadRequest {
		t.Fatalf("unknown backend answered %d", code)
	}
	if !strings.Contains(bad.Error, `unknown backend "nonesuch"`) {
		t.Fatalf("error %q", bad.Error)
	}
	var created GraphResponse
	if code := doJSON(t, ts, "POST", "/v1/graphs",
		&CreateGraphRequest{Gen: &GenSpec{Family: "hard", M: 16, Delta: 16}, Backend: "ruling"},
		&created); code != http.StatusCreated {
		t.Fatalf("create answered %d: %+v", code, created)
	}
	if created.Info.Backend != "ruling" || created.Info.NumColors != 16 {
		t.Fatalf("store info %+v, want backend=ruling num_colors=16 (Δ)", created.Info)
	}
	var col ColoringResponse
	if code := doJSON(t, ts, "GET", "/v1/graphs/"+created.ID+"/coloring?check=1", nil, &col); code != http.StatusOK {
		t.Fatalf("coloring answered %d: %+v", code, col)
	}
	if !col.Checked || col.NumColors != 16 {
		t.Fatalf("coloring response %+v", col)
	}
}
