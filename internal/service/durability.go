package service

import (
	"fmt"
	"net/http"
	"path/filepath"
	"sort"

	"deltacoloring/internal/durable"
	"deltacoloring/internal/dynamic"
)

// Durability wiring: when Config.DataDir is set, every dynamic graph store
// gets a WAL + checkpoint directory under DataDir/<graph-id>, and New starts
// a background recovery pass that replays whatever the last process left
// behind. Until that pass finishes, the /v1/graphs surface answers 503 with
// Retry-After and /readyz reports not-ready — the server is alive (liveness
// is separate) but must not accept mutations it could interleave with
// replay, nor serve colorings that have not been re-verified.

// GraphRecovery is one graph's recovery outcome, served by /readyz and
// returned by recoveryStatus.
type GraphRecovery struct {
	ID     string                  `json:"id"`
	Report *durable.RecoveryReport `json:"report,omitempty"`
	Error  string                  `json:"error,omitempty"`
}

// durableConfig assembles the store-level durability knobs. Process-level
// dynamic options ride along so recovered stores get the same chaos seam and
// worker budget as freshly created ones.
func (s *Server) durableConfig() durable.Config {
	return durable.Config{
		Fsync:           s.cfg.Fsync,
		FsyncInterval:   s.cfg.FsyncInterval,
		CheckpointEvery: s.cfg.CheckpointEvery,
		Dynamic:         dynamic.Options{NetHook: s.cfg.dynNetHook},
	}
}

// recoverAll replays every graph directory under DataDir and installs the
// recovered stores. It runs once, on its own goroutine, before the server
// reports ready; per-graph failures are recorded and skipped (one corrupt
// directory must not keep the rest of the fleet down).
func (s *Server) recoverAll() {
	defer s.recovering.Store(false)
	ids, err := durable.List(s.cfg.DataDir)
	if err != nil {
		s.recMu.Lock()
		s.recFleetErr = err.Error()
		s.recMu.Unlock()
		return
	}
	for _, id := range ids {
		st, rep, rerr := durable.Recover(filepath.Join(s.cfg.DataDir, id), s.durableConfig())
		gr := GraphRecovery{ID: id, Report: rep}
		if rerr != nil {
			gr.Error = rerr.Error()
		} else {
			s.installRecovered(id, st)
		}
		s.recMu.Lock()
		s.recReports = append(s.recReports, gr)
		s.recMu.Unlock()
	}
}

// installRecovered registers a recovered store under its durable ID and
// keeps the ID allocator above it, so new graphs never collide with
// recovered directories.
func (s *Server) installRecovered(id string, st *durable.Store) {
	gs := &graphStore{
		id:       id,
		live:     st.Live(),
		store:    st,
		jobs:     make(chan *mutJob, s.cfg.MutationQueueDepth),
		loopDone: make(chan struct{}),
	}
	s.gmu.Lock()
	var seq uint64
	if _, err := fmt.Sscanf(id, "g%d", &seq); err == nil && seq > s.graphSeq {
		s.graphSeq = seq
	}
	s.graphs[id] = gs
	s.gmu.Unlock()
	s.graphsWG.Add(1)
	go s.applyLoop(gs)
}

// recoveryStatus snapshots the recovery pass for /readyz, sorted by ID.
func (s *Server) recoveryStatus() (reports []GraphRecovery, fleetErr string) {
	s.recMu.Lock()
	reports = append([]GraphRecovery(nil), s.recReports...)
	fleetErr = s.recFleetErr
	s.recMu.Unlock()
	sort.Slice(reports, func(i, j int) bool { return reports[i].ID < reports[j].ID })
	return reports, fleetErr
}

// recoverySummary aggregates the recovery pass for /metrics.
type recoverySummary struct {
	graphs    int
	unhealthy int
	failed    int
	replayed  int
	skipped   int
	truncated int64
	nanos     int64
}

func (s *Server) recoveryTotals() recoverySummary {
	s.recMu.Lock()
	defer s.recMu.Unlock()
	var t recoverySummary
	for _, gr := range s.recReports {
		t.graphs++
		if gr.Error != "" {
			t.failed++
			continue
		}
		if !gr.Report.Healthy {
			t.unhealthy++
		}
		t.replayed += gr.Report.Replayed
		t.skipped += gr.Report.Skipped
		t.truncated += gr.Report.TruncatedBytes
		t.nanos += gr.Report.Nanos
	}
	return t
}

// walTotals sums durability counters across live stores plus the retained
// base from destroyed ones, so /metrics counters never go backwards.
func (s *Server) walTotals() durable.WALStats {
	s.gmu.Lock()
	defer s.gmu.Unlock()
	t := s.walBase
	for _, gs := range s.graphs {
		if gs.store != nil {
			addWALStats(&t, gs.store.WALStats())
		}
	}
	return t
}

func addWALStats(t *durable.WALStats, w durable.WALStats) {
	t.Appends += w.Appends
	t.AppendBytes += w.AppendBytes
	t.Fsyncs += w.Fsyncs
	t.AppendErrors += w.AppendErrors
	t.Checkpoints += w.Checkpoints
}

// foldWALStats retires a store's counters into the base (before Destroy).
func (s *Server) foldWALStats(st *durable.Store) {
	s.gmu.Lock()
	addWALStats(&s.walBase, st.WALStats())
	s.gmu.Unlock()
}

// gateRecovery answers 503 + Retry-After when WAL replay is still running:
// the graph surface must not accept work it could interleave with recovery.
// Returns true when the request was already answered.
func (s *Server) gateRecovery(w http.ResponseWriter) bool {
	if !s.recovering.Load() {
		return false
	}
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable, "recovering durable graphs from %s; retry shortly", s.cfg.DataDir)
	return true
}
