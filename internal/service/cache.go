package service

import (
	"container/list"
	"sync"
)

// lruCache is a fixed-capacity least-recently-used result cache. Values are
// completed *ColorResponse objects, treated as immutable after insertion:
// hits hand out shallow copies whose slices are shared read-only.
type lruCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	val *ColorResponse
}

func newLRU(max int) *lruCache {
	if max < 1 {
		max = 1
	}
	return &lruCache{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

func (c *lruCache) get(key string) (*ColorResponse, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

func (c *lruCache) add(key string, val *ColorResponse) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).val = val
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	if c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
