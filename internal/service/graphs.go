package service

import (
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"deltacoloring/internal/backend"
	"deltacoloring/internal/durable"
	"deltacoloring/internal/dynamic"
	"deltacoloring/internal/invariant"
)

// The /v1/graphs API is the serving surface of the deltalive subsystem
// (internal/dynamic): long-lived graphs whose coloring is maintained
// incrementally under mutation batches.
//
//	POST   /v1/graphs                create a store from a graph source
//	GET    /v1/graphs                list stores
//	GET    /v1/graphs/{id}           store info + lifetime stats
//	DELETE /v1/graphs/{id}           drop a store
//	POST   /v1/graphs/{id}/mutations apply one batch (429 when the apply
//	                                 queue is full)
//	GET    /v1/graphs/{id}/coloring  the maintained coloring; ?check=1
//	                                 cross-checks it against the sequential
//	                                 oracle before serving
//
// Each store runs one apply loop goroutine: batches from concurrent clients
// serialize through a bounded queue (backpressure, not blocking), and reads
// never wait behind maintenance. The serving contract is valid-or-stale:
// when maintenance fails (an unhealthy store), the coloring endpoint serves
// the last-known-good snapshot marked stale — or 503 — never an invalid
// coloring with a 200.

// CreateGraphRequest is the body of POST /v1/graphs. Exactly one of
// EdgeList, Graph, or Gen must be set (the same sources as /v1/color).
type CreateGraphRequest struct {
	EdgeList string     `json:"edge_list,omitempty"`
	Graph    *GraphSpec `json:"graph,omitempty"`
	Gen      *GenSpec   `json:"gen,omitempty"`
	// File names a staged graph under the server's -graph-dir, like the
	// color request's file source.
	File string `json:"file,omitempty"`
	// FallbackDirtyFraction overrides the store's incremental-maintenance
	// ceiling (0 keeps the default; negative forces every batch to a full
	// recompute).
	FallbackDirtyFraction float64 `json:"fallback_dirty_fraction,omitempty"`
	// Backend names a registered pipeline backend the store's full
	// recomputes try first (a true Δ-coloring on dense structures, greedy
	// deg+1 fallback otherwise). Empty keeps the greedy-only path; unknown
	// names answer 400. "auto" is not accepted here: a store outlives the
	// structure the selector would inspect.
	Backend string `json:"backend,omitempty"`
}

// GraphResponse describes one store.
type GraphResponse struct {
	ID    string         `json:"id"`
	Info  dynamic.Info   `json:"info"`
	Stats *dynamic.Stats `json:"stats,omitempty"`
	Error string         `json:"error,omitempty"`
}

// MutateRequest is the body of POST /v1/graphs/{id}/mutations.
type MutateRequest struct {
	Mutations []dynamic.Mutation `json:"mutations"`
}

// MutateResponse reports one applied (or rejected) batch.
type MutateResponse struct {
	ID     string               `json:"id"`
	Result *dynamic.ApplyResult `json:"result,omitempty"`
	// Healthy is the store's health after the batch; false means the batch
	// advanced the structure but its coloring could not be maintained.
	Healthy bool   `json:"healthy"`
	Error   string `json:"error,omitempty"`
}

// ColoringResponse is the body of GET /v1/graphs/{id}/coloring.
type ColoringResponse struct {
	ID        string `json:"id"`
	Version   int64  `json:"version"`
	N         int    `json:"n"`
	NumColors int    `json:"num_colors"`
	Colors    []int  `json:"colors"`
	// Stale marks a last-known-good snapshot served while the store is
	// unhealthy: valid, but older than the store's structure.
	Stale bool `json:"stale,omitempty"`
	// Checked reports that ?check=1 ran the sequential proper-coloring
	// oracle over exactly this snapshot before serving it.
	Checked bool   `json:"checked,omitempty"`
	Error   string `json:"error,omitempty"`
}

// mutJob is one queued mutation batch with its reply channel.
type mutJob struct {
	batch []dynamic.Mutation
	reply chan mutReply
}

type mutReply struct {
	res *dynamic.ApplyResult
	err error
}

// graphStore is one live graph behind the API: the dynamic store, the
// bounded queue its apply loop drains, and (in durable mode) the WAL +
// checkpoint store that logs every batch before it is acknowledged.
type graphStore struct {
	id    string
	live  *dynamic.Live
	store *durable.Store // nil in memory-only mode

	mu     sync.RWMutex // guards jobs sends against close
	closed bool
	jobs   chan *mutJob
	// loopDone closes when the apply loop exits: deletion drains the loop
	// through it before touching durable state, so an in-flight batch can
	// never race the store's removal.
	loopDone chan struct{}
}

// apply routes one batch through the WAL when the graph is durable.
func (gs *graphStore) apply(batch []dynamic.Mutation) (*dynamic.ApplyResult, error) {
	if gs.store != nil {
		return gs.store.Apply(batch)
	}
	return gs.live.Apply(batch)
}

var (
	errGraphClosed = errors.New("graph store is closed")
	errGraphLimit  = errors.New("graph limit reached")
)

// submit enqueues a batch without blocking; a full queue is backpressure.
func (gs *graphStore) submit(j *mutJob) error {
	gs.mu.RLock()
	defer gs.mu.RUnlock()
	if gs.closed {
		return errGraphClosed
	}
	select {
	case gs.jobs <- j:
		return nil
	default:
		return errQueueFull
	}
}

// close stops the apply loop after the already queued batches drain.
func (gs *graphStore) close() {
	gs.mu.Lock()
	defer gs.mu.Unlock()
	if !gs.closed {
		gs.closed = true
		close(gs.jobs)
	}
}

// applyLoop serializes one store's batches and feeds the dynamic metrics.
func (s *Server) applyLoop(gs *graphStore) {
	defer s.graphsWG.Done()
	defer close(gs.loopDone)
	for j := range gs.jobs {
		start := time.Now()
		res, err := gs.apply(j.batch)
		if err != nil {
			// Validation rejections (the client's fault, store untouched)
			// answer 400 and are not maintenance failures.
			if maintenanceFailure(err) {
				s.met.dynFailure()
			}
		} else {
			s.met.dynBatch(res, time.Since(start))
		}
		j.reply <- mutReply{res: res, err: err}
	}
}

// registerGraph installs a store under a fresh ID, enforcing MaxGraphs. In
// durable mode the WAL directory is initialized between ID allocation and
// installation — off the graphs lock, since it does disk I/O — with the
// reservation counter keeping concurrent creates under the limit.
func (s *Server) registerGraph(live *dynamic.Live) (*graphStore, error) {
	s.gmu.Lock()
	if len(s.graphs)+s.graphsResv >= s.cfg.MaxGraphs {
		s.gmu.Unlock()
		return nil, fmt.Errorf("%w (%d); delete one first", errGraphLimit, s.cfg.MaxGraphs)
	}
	s.graphSeq++
	s.graphsResv++
	id := fmt.Sprintf("g%06d", s.graphSeq)
	s.gmu.Unlock()

	gs := &graphStore{
		id:       id,
		live:     live,
		jobs:     make(chan *mutJob, s.cfg.MutationQueueDepth),
		loopDone: make(chan struct{}),
	}
	if s.cfg.DataDir != "" {
		st, err := durable.Create(filepath.Join(s.cfg.DataDir, id), live, s.durableConfig())
		if err != nil {
			s.gmu.Lock()
			s.graphsResv--
			s.gmu.Unlock()
			return nil, fmt.Errorf("durable init for %s: %w", id, err)
		}
		gs.store = st
	}
	s.gmu.Lock()
	s.graphsResv--
	s.graphs[id] = gs
	s.gmu.Unlock()
	s.graphsWG.Add(1)
	go s.applyLoop(gs)
	return gs, nil
}

func (s *Server) lookupGraph(id string) (*graphStore, bool) {
	s.gmu.Lock()
	defer s.gmu.Unlock()
	gs, ok := s.graphs[id]
	return gs, ok
}

// closeAllGraphs stops every apply loop (shutdown path).
func (s *Server) closeAllGraphs() {
	s.gmu.Lock()
	stores := make([]*graphStore, 0, len(s.graphs))
	for _, gs := range s.graphs {
		stores = append(stores, gs)
	}
	s.gmu.Unlock()
	for _, gs := range stores {
		gs.close()
	}
}

func (s *Server) graphCount() int {
	s.gmu.Lock()
	defer s.gmu.Unlock()
	return len(s.graphs)
}

func (s *Server) handleGraphCreate(w http.ResponseWriter, r *http.Request) {
	if s.closed.Load() {
		writeError(w, http.StatusServiceUnavailable, "%v", errShuttingDown)
		return
	}
	if s.gateRecovery(w) {
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	req, err := decodeStrict[CreateGraphRequest](r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	cr := &ColorRequest{EdgeList: req.EdgeList, Graph: req.Graph, Gen: req.Gen, File: req.File}
	sources := 0
	for _, set := range []bool{req.EdgeList != "", req.Graph != nil, req.Gen != nil, req.File != ""} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		writeError(w, http.StatusBadRequest, "exactly one of edge_list, graph, gen, or file is required")
		return
	}
	if req.Backend != "" {
		if _, berr := backend.Get(req.Backend); berr != nil {
			writeError(w, http.StatusBadRequest, "unknown backend %q (want one of: %s)",
				req.Backend, strings.Join(backend.Names(), ", "))
			return
		}
	}
	g, err := buildGraph(cr, s.cfg.MaxVertices, s.cfg.GraphDir)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad graph: %v", err)
		return
	}
	live, err := dynamic.New(g, dynamic.Options{
		FallbackDirtyFraction: req.FallbackDirtyFraction,
		NetHook:               s.cfg.dynNetHook,
		Backend:               req.Backend,
	})
	if err != nil {
		writeError(w, http.StatusInternalServerError, "initial coloring: %v", err)
		return
	}
	gs, err := s.registerGraph(live)
	if err != nil {
		status := http.StatusInternalServerError // durable init failed
		if errors.Is(err, errGraphLimit) {
			status = http.StatusConflict
		}
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, &GraphResponse{ID: gs.id, Info: live.Info()})
}

func (s *Server) handleGraphList(w http.ResponseWriter, r *http.Request) {
	s.gmu.Lock()
	out := make([]GraphResponse, 0, len(s.graphs))
	for _, gs := range s.graphs {
		out = append(out, GraphResponse{ID: gs.id, Info: gs.live.Info()})
	}
	s.gmu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	writeJSON(w, http.StatusOK, map[string]any{"graphs": out})
}

func (s *Server) handleGraphGet(w http.ResponseWriter, r *http.Request) {
	gs, ok := s.lookupGraph(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown graph %q", r.PathValue("id"))
		return
	}
	st := gs.live.Stats()
	writeJSON(w, http.StatusOK, &GraphResponse{ID: gs.id, Info: gs.live.Info(), Stats: &st})
}

func (s *Server) handleGraphDelete(w http.ResponseWriter, r *http.Request) {
	if s.gateRecovery(w) {
		return
	}
	id := r.PathValue("id")
	s.gmu.Lock()
	gs, ok := s.graphs[id]
	if ok {
		delete(s.graphs, id)
	}
	s.gmu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown graph %q", id)
		return
	}
	// Drain before destroy: close stops new submits, then the apply loop
	// finishes answering every batch already queued — only then is it safe
	// to tear down durable state (and only then has the ID truly quiesced).
	gs.close()
	<-gs.loopDone
	if gs.store != nil {
		s.foldWALStats(gs.store)
		if err := gs.store.Destroy(); err != nil {
			writeError(w, http.StatusInternalServerError, "destroy durable state: %v", err)
			return
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleGraphMutate(w http.ResponseWriter, r *http.Request) {
	if s.gateRecovery(w) {
		return
	}
	gs, ok := s.lookupGraph(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown graph %q", r.PathValue("id"))
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	req, err := decodeStrict[MutateRequest](r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(req.Mutations) == 0 {
		writeError(w, http.StatusBadRequest, "empty mutation batch")
		return
	}
	if len(req.Mutations) > s.cfg.MaxMutationsPerBatch {
		writeError(w, http.StatusBadRequest, "batch of %d exceeds the %d-mutation limit",
			len(req.Mutations), s.cfg.MaxMutationsPerBatch)
		return
	}
	j := &mutJob{batch: req.Mutations, reply: make(chan mutReply, 1)}
	if err := gs.submit(j); err != nil {
		if errors.Is(err, errQueueFull) {
			s.met.dynRejected()
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "mutation queue for %s is full", gs.id)
			return
		}
		writeError(w, http.StatusGone, "%v", err)
		return
	}
	select {
	case rep := <-j.reply:
		if rep.err != nil {
			// A rejected batch (validation) leaves the store untouched: 400.
			// A maintenance failure leaves it unhealthy serving last-good,
			// and a WAL failure voids the batch's durability guarantee: both
			// are the server's fault, 500.
			status := http.StatusBadRequest
			if maintenanceFailure(rep.err) || errors.Is(rep.err, durable.ErrWAL) {
				status = http.StatusInternalServerError
			}
			writeJSON(w, status, &MutateResponse{ID: gs.id, Healthy: gs.live.Healthy(), Error: rep.err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, &MutateResponse{ID: gs.id, Result: rep.res, Healthy: gs.live.Healthy()})
	case <-r.Context().Done():
		// The client went away; the apply loop still drains the batch (the
		// buffered reply channel keeps it from blocking).
		writeError(w, 499, "%v", r.Context().Err())
	}
}

// maintenanceFailure distinguishes a failed maintenance (server's fault,
// store unhealthy, 500) from a rejected batch (client's fault, store
// unchanged, 400).
func maintenanceFailure(err error) bool {
	return errors.Is(err, dynamic.ErrMaintenance)
}

func (s *Server) handleGraphColoring(w http.ResponseWriter, r *http.Request) {
	gs, ok := s.lookupGraph(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown graph %q", r.PathValue("id"))
		return
	}
	check := false
	switch r.URL.Query().Get("check") {
	case "", "0", "false":
	default:
		check = true
	}
	snap, healthy := gs.live.Snapshot()
	stale := false
	if !healthy {
		// Never serve the unmaintained current state: fall back to the
		// last-known-good snapshot, or 503 if none exists.
		snap = gs.live.LastGood()
		stale = true
		if snap == nil {
			writeError(w, http.StatusServiceUnavailable, "graph %s has no valid coloring", gs.id)
			return
		}
	}
	if check {
		if err := invariant.ReferenceComplete(snap.G, snap.Colors, snap.NumColors); err != nil {
			// The valid-or-unhealthy contract just failed; refuse to serve.
			s.met.dynCheckFailed()
			writeError(w, http.StatusInternalServerError, "coloring failed the oracle: %v", err)
			return
		}
	}
	writeJSON(w, http.StatusOK, &ColoringResponse{
		ID:        gs.id,
		Version:   snap.Version,
		N:         snap.G.N(),
		NumColors: snap.NumColors,
		Colors:    snap.Colors,
		Stale:     stale,
		Checked:   check,
	})
}
