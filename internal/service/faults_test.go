package service

import (
	"context"
	"errors"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// apiErr unwraps an error into an *APIError or fails the test.
func apiErr(t *testing.T, err error) *APIError {
	t.Helper()
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("want *APIError, got %T: %v", err, err)
	}
	return ae
}

// A panicking run must answer 500, mark the job quarantined, keep its record
// pollable, and count the quarantine in /healthz.
func TestPanicQuarantinesJob(t *testing.T) {
	cfg := Config{Workers: 1, MaxRetries: -1, BreakerThreshold: -1}
	cfg.runHook = func(*job) { panic("injected fault") }
	svc, cl, _ := newTestServer(t, cfg)

	req := easyReq(4)
	req.Async = true
	resp, err := cl.Color(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	final, err := cl.Wait(context.Background(), resp.JobID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != "failed" || !strings.Contains(final.Error, "injected fault") {
		t.Fatalf("job state %q error %q, want failed with injected fault", final.State, final.Error)
	}
	if !final.Quarantined {
		t.Fatal("panicked job not marked quarantined")
	}
	if got := svc.quarantinedCount(); got != 1 {
		t.Fatalf("quarantined count %d, want 1", got)
	}

	// The sync path must surface the same failure as a plain 500.
	ae := apiErr(t, func() error { _, err := cl.Color(context.Background(), easyReq(5)); return err }())
	if ae.StatusCode != http.StatusInternalServerError {
		t.Fatalf("sync panic answered %d, want 500", ae.StatusCode)
	}
	if ae.Resp == nil || !ae.Resp.Quarantined {
		t.Fatalf("sync panic response not quarantined: %+v", ae.Resp)
	}
}

// Quarantined records must survive job-table eviction until every other
// terminal record is gone.
func TestQuarantineSurvivesEviction(t *testing.T) {
	var failFirst atomic.Bool
	failFirst.Store(true)
	cfg := Config{Workers: 1, MaxJobs: 4, MaxRetries: -1, BreakerThreshold: -1}
	cfg.runHook = func(*job) {
		if failFirst.CompareAndSwap(true, false) {
			panic("quarantine me")
		}
	}
	svc, cl, _ := newTestServer(t, cfg)

	req := easyReq(4)
	req.Async = true
	first, err := cl.Color(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Wait(context.Background(), first.JobID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Push well past MaxJobs with healthy no-cache jobs.
	for i := 0; i < 8; i++ {
		r := easyReq(4)
		r.NoCache = true
		if _, err := cl.Color(context.Background(), r); err != nil {
			t.Fatalf("filler job %d: %v", i, err)
		}
	}
	svc.jmu.Lock()
	_, alive := svc.jobs[first.JobID]
	svc.jmu.Unlock()
	if !alive {
		t.Fatal("quarantined job evicted while non-quarantined candidates existed")
	}
	got, err := cl.Job(context.Background(), first.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Quarantined {
		t.Fatalf("polled quarantined record lost its flag: %+v", got)
	}
}

// A run that outlives its deadline without unwinding must be converted into
// a clean 504 by the watchdog, and the worker must survive to serve again.
func TestWatchdogConvertsHungRunTo504(t *testing.T) {
	release := make(chan struct{})
	var hang atomic.Bool
	hang.Store(true)
	cfg := Config{Workers: 1, MaxRetries: -1, BreakerThreshold: -1, WatchdogGrace: 30 * time.Millisecond}
	cfg.runHook = func(*job) {
		if hang.CompareAndSwap(true, false) {
			<-release // ignores ctx: simulates a hung run
		}
	}
	_, cl, _ := newTestServer(t, cfg)
	defer close(release)

	req := easyReq(4)
	req.Async = true
	req.TimeoutMS = 40
	resp, err := cl.Color(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	final, err := cl.Wait(context.Background(), resp.JobID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != "failed" || !strings.Contains(final.Error, "watchdog") {
		t.Fatalf("hung job state %q error %q, want watchdog 504", final.State, final.Error)
	}

	// The worker abandoned the hung attempt; it must still serve new jobs.
	ok, err := cl.Color(context.Background(), easyReq(4))
	if err != nil {
		t.Fatal(err)
	}
	if ok.State != "done" {
		t.Fatalf("worker dead after watchdog: %+v", ok)
	}
}

// After BreakerThreshold consecutive failures the breaker must shed new work
// with 503 + Retry-After, then recover through a successful half-open probe.
func TestBreakerShedsAndRecovers(t *testing.T) {
	var failing atomic.Bool
	failing.Store(true)
	cfg := Config{Workers: 1, MaxRetries: -1, BreakerThreshold: 2, BreakerCooldown: 50 * time.Millisecond}
	cfg.runHook = func(*job) {
		if failing.Load() {
			panic("unhealthy")
		}
	}
	_, cl, _ := newTestServer(t, cfg)

	for i := 0; i < 2; i++ {
		r := easyReq(4)
		r.NoCache = true
		ae := apiErr(t, func() error { _, err := cl.Color(context.Background(), r); return err }())
		if ae.StatusCode != http.StatusInternalServerError {
			t.Fatalf("failure %d answered %d, want 500", i, ae.StatusCode)
		}
	}

	// Circuit open: new work is shed before reaching the queue.
	r := easyReq(4)
	r.NoCache = true
	ae := apiErr(t, func() error { _, err := cl.Color(context.Background(), r); return err }())
	if ae.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open breaker answered %d, want 503", ae.StatusCode)
	}
	if ae.RetryAfter <= 0 {
		t.Fatal("503 without Retry-After hint")
	}

	// Heal the backend, wait out the cooldown: the probe closes the circuit.
	failing.Store(false)
	time.Sleep(60 * time.Millisecond)
	resp, err := cl.Color(context.Background(), r)
	if err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if resp.State != "done" {
		t.Fatalf("probe state %q, want done", resp.State)
	}
	resp, err = cl.Color(context.Background(), r)
	if err != nil || resp.State != "done" {
		t.Fatalf("closed breaker rejected work: %v %+v", err, resp)
	}
}

// Transient failures are retried server-side with backoff before the job is
// failed; a first-attempt panic must be invisible to the client.
func TestServerSideRetryMasksTransientPanic(t *testing.T) {
	var attempts atomic.Int64
	cfg := Config{Workers: 1, MaxRetries: 2, RetryBaseBackoff: time.Millisecond, BreakerThreshold: -1}
	cfg.runHook = func(*job) {
		if attempts.Add(1) == 1 {
			panic("transient")
		}
	}
	svc, cl, _ := newTestServer(t, cfg)

	resp, err := cl.Color(context.Background(), easyReq(4))
	if err != nil {
		t.Fatal(err)
	}
	if resp.State != "done" {
		t.Fatalf("retried job state %q, want done", resp.State)
	}
	if got := attempts.Load(); got != 2 {
		t.Fatalf("attempts %d, want 2", got)
	}
	svc.met.mu.Lock()
	retries := svc.met.jobsRetried
	svc.met.mu.Unlock()
	if retries != 1 {
		t.Fatalf("retries metric %d, want 1", retries)
	}
}

// Concurrent POSTs sharing an idempotency key must run the pipeline once;
// the duplicate joins the in-flight job and gets the same result.
func TestIdempotencyKeyDeduplicates(t *testing.T) {
	gate := make(chan struct{})
	var runs atomic.Int64
	cfg := Config{Workers: 2, BreakerThreshold: -1}
	cfg.runHook = func(*job) { runs.Add(1); <-gate }
	_, cl, _ := newTestServer(t, cfg)

	req := easyReq(4)
	req.NoCache = true
	req.IdempotencyKey = "same-key"
	type res struct {
		resp *ColorResponse
		err  error
	}
	results := make(chan res, 2)
	for i := 0; i < 2; i++ {
		go func() {
			r, err := cl.Color(context.Background(), req)
			results <- res{r, err}
		}()
	}
	// Both requests are in flight (one running, one joined) before release.
	for runs.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	close(gate)
	var ids []string
	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.resp.State != "done" {
			t.Fatalf("state %q, want done", r.resp.State)
		}
		ids = append(ids, r.resp.JobID)
	}
	if runs.Load() != 1 {
		t.Fatalf("pipeline ran %d times for one idempotency key, want 1", runs.Load())
	}
	if ids[0] != ids[1] {
		t.Fatalf("duplicate POSTs got different jobs: %v", ids)
	}
}

// ColorRetry must stamp an idempotency key, retry transient 5xxs, and hand
// back the eventual success; a failed attempt must not pin the key.
func TestClientColorRetry(t *testing.T) {
	var attempts atomic.Int64
	cfg := Config{Workers: 1, MaxRetries: -1, BreakerThreshold: -1}
	cfg.runHook = func(j *job) {
		if j.idemKey == "" {
			panic("request reached the server without an idempotency key")
		}
		if attempts.Add(1) == 1 {
			panic("transient")
		}
	}
	_, cl, _ := newTestServer(t, cfg)

	req := easyReq(4)
	req.NoCache = true
	resp, err := cl.ColorRetry(context.Background(), req,
		RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if resp.State != "done" {
		t.Fatalf("state %q, want done", resp.State)
	}
	if got := attempts.Load(); got != 2 {
		t.Fatalf("server ran %d attempts, want 2 (failed key must not replay)", got)
	}
	if req.IdempotencyKey != "" {
		t.Fatal("ColorRetry mutated the caller's request")
	}

	// Deterministic client errors must not be retried.
	attempts.Store(0)
	bad := &ColorRequest{Gen: &GenSpec{Family: "nope"}}
	if _, err := cl.ColorRetry(context.Background(), bad, RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond}); err == nil {
		t.Fatal("bad request accepted")
	} else if ae := apiErr(t, err); ae.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad request answered %d, want 400", ae.StatusCode)
	}
	if attempts.Load() != 0 {
		t.Fatal("400 reached the worker or was retried")
	}
}

// The hardened endpoints must expose their state: watchdog/breaker/retry
// counters in /metrics and breaker + quarantine info in /healthz.
func TestHardeningObservability(t *testing.T) {
	cfg := Config{Workers: 1, MaxRetries: -1, BreakerThreshold: 1, BreakerCooldown: time.Minute}
	cfg.runHook = func(*job) { panic("boom") }
	_, cl, _ := newTestServer(t, cfg)

	r := easyReq(4)
	r.NoCache = true
	if _, err := cl.Color(context.Background(), r); err == nil {
		t.Fatal("panicking job succeeded")
	}
	if _, err := cl.Color(context.Background(), r); err == nil {
		t.Fatal("open breaker admitted work")
	}

	get := func(path string) string {
		res, err := http.Get(cl.BaseURL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(res.Body)
		res.Body.Close()
		return string(body)
	}
	met := get("/metrics")
	for _, want := range []string{
		"deltaserved_jobs_quarantined_total 1",
		"deltaserved_jobs_shed_total 1",
		"deltaserved_breaker_state 1",
		"deltaserved_watchdog_timeouts_total 0",
		"deltaserved_job_retries_total 0",
	} {
		if !strings.Contains(met, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	health := get("/healthz")
	for _, want := range []string{`"breaker":"open"`, `"quarantined":1`} {
		if !strings.Contains(health, want) {
			t.Errorf("healthz missing %q in %s", want, health)
		}
	}
}
