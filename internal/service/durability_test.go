package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"deltacoloring/internal/dynamic"
)

// waitReady polls /readyz until the server reports ready or the deadline
// passes.
func waitReady(t *testing.T, ts *httptest.Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := ts.Client().Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("server never became ready")
}

// mutateBody builds a single-edge-add batch body.
func mutateBody(u, v int) *MutateRequest {
	return &MutateRequest{Mutations: []dynamic.Mutation{{Op: dynamic.OpAddEdge, U: u, V: v}}}
}

func TestDurableRestartRoundTrip(t *testing.T) {
	dataDir := t.TempDir()
	cfg := Config{Workers: 1, DataDir: dataDir, CheckpointEvery: -1}

	svc := New(cfg)
	ts := httptest.NewServer(svc.Handler())
	waitReady(t, ts)

	var created GraphResponse
	if code := doJSON(t, ts, "POST", "/v1/graphs", &CreateGraphRequest{Graph: cycleSpec(24)}, &created); code != http.StatusCreated {
		t.Fatalf("create: %d (%s)", code, created.Error)
	}
	var mr MutateResponse
	for i := 0; i < 4; i++ {
		if code := doJSON(t, ts, "POST", "/v1/graphs/"+created.ID+"/mutations",
			mutateBody(i, i+7), &mr); code != http.StatusOK {
			t.Fatalf("mutate %d: %d (%s)", i, code, mr.Error)
		}
	}
	before := fetchColoring(t, ts, created.ID, true)

	// Graceful shutdown: final checkpoint, so restart replays nothing —
	// but the durable state must round-trip either way.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	ts.Close()

	svc2 := New(cfg)
	ts2 := httptest.NewServer(svc2.Handler())
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := svc2.Shutdown(ctx); err != nil {
			t.Errorf("shutdown 2: %v", err)
		}
		ts2.Close()
	}()
	waitReady(t, ts2)

	// The graph survives under its old ID with its version intact.
	after := fetchColoring(t, ts2, created.ID, true)
	if after.Version != before.Version || after.N != before.N {
		t.Fatalf("recovered coloring diverged: %+v vs %+v", after, before)
	}
	// Readiness carries the per-graph recovery report.
	resp, err := ts2.Client().Get(ts2.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if !strings.Contains(body, created.ID) {
		t.Fatalf("/readyz missing recovery report for %s:\n%s", created.ID, body)
	}

	// Mutations keep working, and a new graph gets an ID above the
	// recovered one (the allocator was advanced past it).
	if code := doJSON(t, ts2, "POST", "/v1/graphs/"+created.ID+"/mutations",
		mutateBody(1, 9), &mr); code != http.StatusOK {
		t.Fatalf("post-recovery mutate: %d (%s)", code, mr.Error)
	}
	var fresh GraphResponse
	if code := doJSON(t, ts2, "POST", "/v1/graphs", &CreateGraphRequest{Graph: cycleSpec(6)}, &fresh); code != http.StatusCreated {
		t.Fatalf("post-recovery create: %d (%s)", code, fresh.Error)
	}
	if fresh.ID <= created.ID {
		t.Fatalf("fresh ID %s not above recovered %s", fresh.ID, created.ID)
	}

	// WAL and recovery metrics are exposed.
	resp, err = ts2.Client().Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := readAll(t, resp)
	for _, want := range []string{
		"deltaserved_wal_appends_total", "deltaserved_wal_checkpoints_total",
		"deltaserved_recovery_graphs_total 1", "deltaserved_recovery_failed_total 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			return sb.String()
		}
	}
}

func TestUncleanRestartReplaysWAL(t *testing.T) {
	dataDir := t.TempDir()
	cfg := Config{Workers: 1, DataDir: dataDir, CheckpointEvery: -1}

	svc := New(cfg)
	ts := httptest.NewServer(svc.Handler())
	waitReady(t, ts)
	var created GraphResponse
	if code := doJSON(t, ts, "POST", "/v1/graphs", &CreateGraphRequest{Graph: cycleSpec(16)}, &created); code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}
	var mr MutateResponse
	for i := 0; i < 3; i++ {
		if code := doJSON(t, ts, "POST", "/v1/graphs/"+created.ID+"/mutations",
			mutateBody(i, i+5), &mr); code != http.StatusOK {
			t.Fatalf("mutate %d: %d", i, code)
		}
	}
	before := fetchColoring(t, ts, created.ID, false)
	// Unclean stop: no Shutdown, just drop the server (its WAL records were
	// fsynced per batch under the default policy). The apply loops leak in
	// this test process, harmlessly idle; a real crash is exercised by the
	// restart chaos harness.
	ts.Close()

	svc2 := New(cfg)
	ts2 := httptest.NewServer(svc2.Handler())
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = svc2.Shutdown(ctx)
		ts2.Close()
	}()
	waitReady(t, ts2)
	after := fetchColoring(t, ts2, created.ID, true)
	if after.Version != before.Version {
		t.Fatalf("replayed version %d, want %d", after.Version, before.Version)
	}
	resp, err := ts2.Client().Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := readAll(t, resp)
	if !strings.Contains(metrics, "deltaserved_recovery_replayed_total 3") {
		t.Fatalf("expected 3 replayed records in /metrics:\n%s",
			grepLines(metrics, "deltaserved_recovery"))
	}
}

func grepLines(s, substr string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

func TestReadinessGating(t *testing.T) {
	svc, ts := newGraphServer(t, Config{Workers: 1})
	// Force the recovering state: every graph endpoint must shed with 503 +
	// Retry-After while /livez stays 200.
	svc.recovering.Store(true)
	for _, probe := range []struct {
		method, path string
		body         any
	}{
		{"POST", "/v1/graphs", &CreateGraphRequest{Graph: cycleSpec(6)}},
		{"POST", "/v1/graphs/g000001/mutations", mutateBody(0, 2)},
		{"DELETE", "/v1/graphs/g000001", nil},
	} {
		var resp ColorResponse
		if code := doJSON(t, ts, probe.method, probe.path, probe.body, &resp); code != http.StatusServiceUnavailable {
			t.Fatalf("%s %s during recovery: %d, want 503", probe.method, probe.path, code)
		}
	}
	hresp, err := ts.Client().Get(ts.URL + "/livez")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("/livez during recovery: %d, want 200", hresp.StatusCode)
	}
	rresp, err := ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during recovery: %d, want 503", rresp.StatusCode)
	}
	if rresp.Header.Get("Retry-After") == "" {
		t.Fatal("/readyz 503 without Retry-After")
	}

	svc.recovering.Store(false)
	waitReady(t, ts)
	var created GraphResponse
	if code := doJSON(t, ts, "POST", "/v1/graphs", &CreateGraphRequest{Graph: cycleSpec(6)}, &created); code != http.StatusCreated {
		t.Fatalf("create after recovery: %d", code)
	}
}

// TestDeleteDrainsInFlightMutations is the regression test for the delete
// race: deleting a graph while mutation batches are in flight must drain the
// apply loop before tearing down durable state, so every batch gets a
// definitive answer and the directory removal cannot race an append.
func TestDeleteDrainsInFlightMutations(t *testing.T) {
	dataDir := t.TempDir()
	svc, ts := newGraphServer(t, Config{Workers: 1, DataDir: dataDir, MutationQueueDepth: 64})
	waitReady(t, ts)
	var created GraphResponse
	if code := doJSON(t, ts, "POST", "/v1/graphs", &CreateGraphRequest{Graph: cycleSpec(32)}, &created); code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}

	const writers = 8
	var wg sync.WaitGroup
	start := make(chan struct{})
	codes := make([][]int, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < 10; i++ {
				var mr MutateResponse
				code := doJSON(t, ts, "POST", "/v1/graphs/"+created.ID+"/mutations",
					mutateBody((w*11+i)%32, (w*7+i*3+1)%32), &mr)
				codes[w] = append(codes[w], code)
			}
		}(w)
	}
	close(start)
	time.Sleep(2 * time.Millisecond) // let some batches reach the queue
	if code := doJSON(t, ts, "DELETE", "/v1/graphs/"+created.ID, nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete: %d", code)
	}
	wg.Wait()

	// Every batch got a definitive status: applied, rejected by validation,
	// or turned away because the graph was gone/closing — never a hang, and
	// never an internal error from racing the teardown.
	for w, cs := range codes {
		for i, code := range cs {
			switch code {
			case http.StatusOK, http.StatusBadRequest, http.StatusNotFound,
				http.StatusGone, http.StatusTooManyRequests:
			default:
				t.Fatalf("writer %d batch %d: unexpected status %d", w, i, code)
			}
		}
	}
	// The durable directory is gone (atomically, tombstone included).
	if _, err := os.Stat(filepath.Join(dataDir, created.ID)); !os.IsNotExist(err) {
		t.Fatalf("durable dir survived delete: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dataDir, created.ID+".deleting")); !os.IsNotExist(err) {
		t.Fatal("deletion tombstone left behind")
	}
	_ = svc
}
