package service

import (
	"sync"
	"time"
)

// Breaker states, exposed as the deltaserved_breaker_state gauge.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is a consecutive-failure circuit breaker guarding the job queue:
// after `threshold` consecutive server-side job failures it opens and sheds
// new work with 503 + Retry-After for `cooldown`, then lets exactly one
// probe job through (half-open); the probe's outcome closes or re-opens the
// circuit. Client-side failures (bad graphs, client cancellations) are
// deliberately not fed to it — they say nothing about service health.
type breaker struct {
	mu        sync.Mutex
	threshold int // <= 0 disables the breaker entirely
	cooldown  time.Duration
	now       func() time.Time // test seam

	state         int
	consecutive   int
	openedAt      time.Time
	probeInFlight bool
	opens         uint64 // total closed/half-open -> open transitions
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// allow reports whether a new job may be admitted; when it is not, it also
// returns how long the caller should tell the client to wait.
func (b *breaker) allow() (bool, time.Duration) {
	if b.threshold <= 0 {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, 0
	case breakerOpen:
		if remaining := b.openedAt.Add(b.cooldown).Sub(b.now()); remaining > 0 {
			return false, remaining
		}
		// Cooldown elapsed: transition to half-open and admit this request
		// as the probe.
		b.state = breakerHalfOpen
		b.probeInFlight = true
		return true, 0
	default: // half-open
		if b.probeInFlight {
			return false, b.cooldown
		}
		b.probeInFlight = true
		return true, 0
	}
}

// success records a server-side job success, closing the circuit.
func (b *breaker) success() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	b.consecutive = 0
	b.state = breakerClosed
	b.probeInFlight = false
	b.mu.Unlock()
}

// failure records a server-side job failure; reaching the threshold — or
// any failure of a half-open probe — opens the circuit.
func (b *breaker) failure() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	b.consecutive++
	if b.state == breakerHalfOpen || (b.state == breakerClosed && b.consecutive >= b.threshold) {
		b.state = breakerOpen
		b.openedAt = b.now()
		b.probeInFlight = false
		b.opens++
	}
	b.mu.Unlock()
}

// snapshot returns the current state and the total number of opens.
func (b *breaker) snapshot() (state int, opens uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.opens
}
