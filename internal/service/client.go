package service

import (
	"bytes"
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"
)

// Client is a thin Go client for a deltaserved instance.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8090".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

// NewClient returns a client for the given base URL.
func NewClient(baseURL string) *Client { return &Client{BaseURL: baseURL} }

// APIError is a non-2xx server answer, carrying the decoded body when the
// server sent one.
type APIError struct {
	StatusCode int
	// RetryAfter is the server's backpressure hint (zero if absent).
	RetryAfter time.Duration
	// Resp is the decoded error body, if any.
	Resp *ColorResponse
}

func (e *APIError) Error() string {
	if e.Resp != nil && e.Resp.Error != "" {
		return fmt.Sprintf("service: HTTP %d: %s", e.StatusCode, e.Resp.Error)
	}
	return fmt.Sprintf("service: HTTP %d", e.StatusCode)
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) do(ctx context.Context, method, path string, body any) (*ColorResponse, error) {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return nil, err
		}
		rd = bytes.NewReader(buf)
	}
	hreq, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		hreq.Header.Set("Content-Type", "application/json")
	}
	hres, err := c.httpClient().Do(hreq)
	if err != nil {
		return nil, err
	}
	defer hres.Body.Close()
	resp := &ColorResponse{}
	decErr := json.NewDecoder(hres.Body).Decode(resp)
	if hres.StatusCode >= 300 {
		apiErr := &APIError{StatusCode: hres.StatusCode}
		if decErr == nil {
			apiErr.Resp = resp
		}
		if secs, err := strconv.Atoi(hres.Header.Get("Retry-After")); err == nil {
			apiErr.RetryAfter = time.Duration(secs) * time.Second
		}
		return nil, apiErr
	}
	if decErr != nil {
		return nil, fmt.Errorf("service: decoding response: %w", decErr)
	}
	return resp, nil
}

// Color submits a coloring request. For sync requests the returned response
// carries the coloring; for async requests it carries the job ID to poll
// (see Wait).
func (c *Client) Color(ctx context.Context, req *ColorRequest) (*ColorResponse, error) {
	return c.do(ctx, http.MethodPost, "/v1/color", req)
}

// RetryPolicy shapes ColorRetry's client-side retries. The zero value gets
// the documented defaults.
type RetryPolicy struct {
	// MaxAttempts is the total number of POSTs, including the first
	// (default 3).
	MaxAttempts int
	// BaseBackoff is the first retry delay; attempt k waits
	// BaseBackoff * 2^(k-1) plus up to 50% jitter, or the server's
	// Retry-After hint when that is longer (default 100ms).
	BaseBackoff time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 100 * time.Millisecond
	}
	return p
}

// retryableStatus reports whether a server answer is worth retrying:
// backpressure (429), breaker shedding (503), and transient server-side
// failures (500, 504). Client errors (4xx) are deterministic and are not.
func retryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusInternalServerError,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// newIdempotencyKey draws a random 128-bit key.
func newIdempotencyKey() string {
	var b [16]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; fall back to
		// a weaker source rather than disabling deduplication.
		return fmt.Sprintf("idem-%016x", rand.Uint64())
	}
	return hex.EncodeToString(b[:])
}

// ColorRetry is Color with client-side resilience: it stamps the request
// with a generated idempotency key (unless the caller set one), so retried
// POSTs join the server-side job instead of recomputing, and retries
// transport errors and retryable statuses (429/500/503/504) with exponential
// backoff + jitter, honoring the server's Retry-After hint when it is longer.
func (c *Client) ColorRetry(ctx context.Context, req *ColorRequest, policy RetryPolicy) (*ColorResponse, error) {
	policy = policy.withDefaults()
	if req.IdempotencyKey == "" {
		clone := *req
		clone.IdempotencyKey = newIdempotencyKey()
		req = &clone
	}
	var lastErr error
	for attempt := 0; attempt < policy.MaxAttempts; attempt++ {
		if attempt > 0 {
			d := policy.BaseBackoff << (attempt - 1)
			d += time.Duration(rand.Int63n(int64(d)/2 + 1))
			if apiErr, ok := lastErr.(*APIError); ok && apiErr.RetryAfter > d {
				d = apiErr.RetryAfter
			}
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			}
		}
		resp, err := c.Color(ctx, req)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, err
		}
		if apiErr, ok := err.(*APIError); ok && !retryableStatus(apiErr.StatusCode) {
			return nil, err
		}
	}
	return nil, lastErr
}

// Job fetches the current state of an async job.
func (c *Client) Job(ctx context.Context, id string) (*ColorResponse, error) {
	return c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil)
}

// Wait polls an async job until it reaches a terminal state. A failed job
// is returned with a nil error; the caller inspects State and Error.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (*ColorResponse, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		resp, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if resp.State == "done" || resp.State == "failed" {
			return resp, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-t.C:
		}
	}
}

// Healthz checks server liveness.
func (c *Client) Healthz(ctx context.Context) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/healthz", nil)
	if err != nil {
		return err
	}
	hres, err := c.httpClient().Do(hreq)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, hres.Body)
	hres.Body.Close()
	if hres.StatusCode != http.StatusOK {
		return &APIError{StatusCode: hres.StatusCode}
	}
	return nil
}
