package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// Client is a thin Go client for a deltaserved instance.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8090".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

// NewClient returns a client for the given base URL.
func NewClient(baseURL string) *Client { return &Client{BaseURL: baseURL} }

// APIError is a non-2xx server answer, carrying the decoded body when the
// server sent one.
type APIError struct {
	StatusCode int
	// RetryAfter is the server's backpressure hint (zero if absent).
	RetryAfter time.Duration
	// Resp is the decoded error body, if any.
	Resp *ColorResponse
}

func (e *APIError) Error() string {
	if e.Resp != nil && e.Resp.Error != "" {
		return fmt.Sprintf("service: HTTP %d: %s", e.StatusCode, e.Resp.Error)
	}
	return fmt.Sprintf("service: HTTP %d", e.StatusCode)
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) do(ctx context.Context, method, path string, body any) (*ColorResponse, error) {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return nil, err
		}
		rd = bytes.NewReader(buf)
	}
	hreq, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		hreq.Header.Set("Content-Type", "application/json")
	}
	hres, err := c.httpClient().Do(hreq)
	if err != nil {
		return nil, err
	}
	defer hres.Body.Close()
	resp := &ColorResponse{}
	decErr := json.NewDecoder(hres.Body).Decode(resp)
	if hres.StatusCode >= 300 {
		apiErr := &APIError{StatusCode: hres.StatusCode}
		if decErr == nil {
			apiErr.Resp = resp
		}
		if secs, err := strconv.Atoi(hres.Header.Get("Retry-After")); err == nil {
			apiErr.RetryAfter = time.Duration(secs) * time.Second
		}
		return nil, apiErr
	}
	if decErr != nil {
		return nil, fmt.Errorf("service: decoding response: %w", decErr)
	}
	return resp, nil
}

// Color submits a coloring request. For sync requests the returned response
// carries the coloring; for async requests it carries the job ID to poll
// (see Wait).
func (c *Client) Color(ctx context.Context, req *ColorRequest) (*ColorResponse, error) {
	return c.do(ctx, http.MethodPost, "/v1/color", req)
}

// Job fetches the current state of an async job.
func (c *Client) Job(ctx context.Context, id string) (*ColorResponse, error) {
	return c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil)
}

// Wait polls an async job until it reaches a terminal state. A failed job
// is returned with a nil error; the caller inspects State and Error.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (*ColorResponse, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		resp, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if resp.State == "done" || resp.State == "failed" {
			return resp, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-t.C:
		}
	}
}

// Healthz checks server liveness.
func (c *Client) Healthz(ctx context.Context) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/healthz", nil)
	if err != nil {
		return err
	}
	hres, err := c.httpClient().Do(hreq)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, hres.Body)
	hres.Body.Close()
	if hres.StatusCode != http.StatusOK {
		return &APIError{StatusCode: hres.StatusCode}
	}
	return nil
}
