package service

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"deltacoloring"
	"deltacoloring/internal/graph"
	"deltacoloring/internal/graphio"
)

// stageGraphDir writes one binary and one text copy of the small ring
// family into a fresh directory, plus a file in a subdirectory.
func stageGraphDir(t *testing.T) (string, *deltacoloring.Graph) {
	t.Helper()
	dir := t.TempDir()
	g, err := graph.EasyCliqueRingStream(4, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := graphio.WriteBinaryFile(filepath.Join(dir, "ring.dcsr"), g); err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(filepath.Join(dir, "ring.edges"))
	if err != nil {
		t.Fatal(err)
	}
	if err := graphio.Write(f, g, "staged ring"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := os.Mkdir(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := graphio.WriteBinaryFile(filepath.Join(dir, "sub", "nested.dcsr"), g); err != nil {
		t.Fatal(err)
	}
	return dir, g
}

// TestFileSourceColorsStagedGraphs runs POST /v1/color against staged files
// in both formats, including a nested relative path.
func TestFileSourceColorsStagedGraphs(t *testing.T) {
	dir, g := stageGraphDir(t)
	_, cl, _ := newTestServer(t, Config{Workers: 2, GraphDir: dir})
	for _, name := range []string{"ring.dcsr", "ring.edges", "sub/nested.dcsr"} {
		resp, err := cl.Color(context.Background(), &ColorRequest{File: name})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		mustVerify(t, g, resp)
	}
}

// TestFileSourceContainment rejects escapes from the staged directory and
// use of the source on a server without one.
func TestFileSourceContainment(t *testing.T) {
	dir, _ := stageGraphDir(t)
	// A real sibling file that a traversal would reach if unchecked.
	sibling := filepath.Join(filepath.Dir(dir), "outside.edges")
	if err := os.WriteFile(sibling, []byte("2\n0 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	defer os.Remove(sibling)
	_, cl, _ := newTestServer(t, Config{Workers: 2, GraphDir: dir})
	for _, name := range []string{
		"../" + filepath.Base(sibling),
		"sub/../../" + filepath.Base(sibling),
		"/etc/hostname",
		"",
	} {
		_, err := cl.Color(context.Background(), &ColorRequest{File: name})
		if err == nil {
			t.Fatalf("file %q accepted", name)
		}
	}
	// Missing files inside the directory fail too, but as a load error.
	if _, err := cl.Color(context.Background(), &ColorRequest{File: "missing.dcsr"}); err == nil {
		t.Fatal("missing staged file accepted")
	}

	// No -graph-dir: the source is disabled outright.
	_, cl2, _ := newTestServer(t, Config{Workers: 2})
	_, err := cl2.Color(context.Background(), &ColorRequest{File: "ring.dcsr"})
	if err == nil || !strings.Contains(err.Error(), "disabled") {
		t.Fatalf("file source without graph-dir: %v", err)
	}
}

// TestFileSourceSeedsDynamicGraph creates a dynamic store from a staged
// binary file through POST /v1/graphs.
func TestFileSourceSeedsDynamicGraph(t *testing.T) {
	dir, g := stageGraphDir(t)
	_, ts := newGraphServer(t, Config{Workers: 2, GraphDir: dir})
	var created GraphResponse
	if code := doJSON(t, ts, "POST", "/v1/graphs", &CreateGraphRequest{File: "ring.dcsr"}, &created); code != 201 {
		t.Fatalf("create from file: status %d", code)
	}
	if created.Info.N != g.N() {
		t.Fatalf("dynamic store n=%d, want %d", created.Info.N, g.N())
	}
	// And containment holds on this surface too.
	if code := doJSON(t, ts, "POST", "/v1/graphs", &CreateGraphRequest{File: "../x.edges"}, nil); code != 400 {
		t.Fatalf("traversal create: status %d", code)
	}
}
