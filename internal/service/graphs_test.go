package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"deltacoloring/internal/dynamic"
	"deltacoloring/internal/faults"
	"deltacoloring/internal/local"
)

// doJSON sends a JSON request to the test server and decodes the response.
func doJSON(t *testing.T, ts *httptest.Server, method, path string, body, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, ts.URL+path, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode != http.StatusNoContent {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode: %v", method, path, err)
		}
	}
	return resp.StatusCode
}

func newGraphServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	svc := New(cfg)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := svc.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		ts.Close()
	})
	return svc, ts
}

// cycleSpec builds an inline GraphSpec cycle.
func cycleSpec(n int) *GraphSpec {
	spec := &GraphSpec{N: n}
	for v := 0; v < n; v++ {
		spec.Edges = append(spec.Edges, [2]int{v, (v + 1) % n})
	}
	return spec
}

// fetchColoring GETs a graph's coloring, optionally with ?check=1.
func fetchColoring(t *testing.T, ts *httptest.Server, id string, check bool) *ColoringResponse {
	t.Helper()
	path := "/v1/graphs/" + id + "/coloring"
	if check {
		path += "?check=1"
	}
	var cr ColoringResponse
	if code := doJSON(t, ts, "GET", path, nil, &cr); code != http.StatusOK {
		t.Fatalf("GET %s: %d (%s)", path, code, cr.Error)
	}
	return &cr
}

func TestGraphLifecycle(t *testing.T) {
	_, ts := newGraphServer(t, Config{})

	// Create from an inline spec.
	var created GraphResponse
	code := doJSON(t, ts, "POST", "/v1/graphs", &CreateGraphRequest{Graph: cycleSpec(24)}, &created)
	if code != http.StatusCreated || created.ID == "" {
		t.Fatalf("create: %d %+v", code, created)
	}
	if created.Info.N != 24 || !created.Info.Healthy || created.Info.NumColors > 3 {
		t.Fatalf("info: %+v", created.Info)
	}

	// The coloring endpoint serves a valid coloring, checked and unchecked.
	cr := fetchColoring(t, ts, created.ID, true)
	if !cr.Checked || cr.Stale || cr.Version != 1 || len(cr.Colors) != 24 {
		t.Fatalf("coloring: %+v", cr)
	}

	// Mutate: add a chord, expect an incremental batch.
	var mr MutateResponse
	code = doJSON(t, ts, "POST", "/v1/graphs/"+created.ID+"/mutations",
		&MutateRequest{Mutations: []dynamic.Mutation{{Op: dynamic.OpAddEdge, U: 0, V: 12}}}, &mr)
	if code != http.StatusOK || !mr.Healthy || mr.Result == nil {
		t.Fatalf("mutate: %d %+v", code, mr)
	}
	if mr.Result.Mode != dynamic.ModeIncremental || mr.Result.Version != 2 {
		t.Fatalf("result: %+v", mr.Result)
	}
	if cr := fetchColoring(t, ts, created.ID, true); cr.Version != 2 {
		t.Fatalf("coloring after mutate: %+v", cr)
	}

	// A rejected batch is a 400 and leaves the version alone.
	code = doJSON(t, ts, "POST", "/v1/graphs/"+created.ID+"/mutations",
		&MutateRequest{Mutations: []dynamic.Mutation{{Op: dynamic.OpAddEdge, U: 0, V: 12}}}, &mr)
	if code != http.StatusBadRequest || mr.Error == "" {
		t.Fatalf("duplicate add: %d %+v", code, mr)
	}
	if cr := fetchColoring(t, ts, created.ID, false); cr.Version != 2 {
		t.Fatalf("rejected batch advanced version: %+v", cr)
	}
	// The rejection is the client's fault; it must not count as a
	// maintenance failure.
	if resp, err := ts.Client().Get(ts.URL + "/metrics"); err != nil {
		t.Fatal(err)
	} else {
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !strings.Contains(string(raw), "deltaserved_dynamic_failures_total 0") {
			t.Error("validation rejection counted as a maintenance failure")
		}
	}

	// List and info.
	var list struct {
		Graphs []GraphResponse `json:"graphs"`
	}
	if code := doJSON(t, ts, "GET", "/v1/graphs", nil, &list); code != http.StatusOK || len(list.Graphs) != 1 {
		t.Fatalf("list: %d %+v", code, list)
	}
	var info GraphResponse
	if code := doJSON(t, ts, "GET", "/v1/graphs/"+created.ID, nil, &info); code != http.StatusOK {
		t.Fatalf("get: %d", code)
	}
	if info.Stats == nil || info.Stats.Batches != 1 || info.Stats.Incremental != 1 {
		t.Fatalf("stats: %+v", info.Stats)
	}

	// Delete; further use is a 404.
	if code := doJSON(t, ts, "DELETE", "/v1/graphs/"+created.ID, nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete: %d", code)
	}
	if code := doJSON(t, ts, "GET", "/v1/graphs/"+created.ID+"/coloring", nil, &cr); code != http.StatusNotFound {
		t.Fatalf("coloring after delete: %d", code)
	}
}

func TestGraphCreateValidation(t *testing.T) {
	_, ts := newGraphServer(t, Config{MaxGraphs: 1})
	var resp GraphResponse

	// No source, two sources, bad gen.
	if code := doJSON(t, ts, "POST", "/v1/graphs", &CreateGraphRequest{}, &resp); code != http.StatusBadRequest {
		t.Fatalf("no source: %d", code)
	}
	if code := doJSON(t, ts, "POST", "/v1/graphs", &CreateGraphRequest{
		Graph: cycleSpec(4), Gen: &GenSpec{Family: "easy", M: 4, Delta: 4},
	}, &resp); code != http.StatusBadRequest {
		t.Fatalf("two sources: %d", code)
	}
	if code := doJSON(t, ts, "POST", "/v1/graphs", &CreateGraphRequest{
		Gen: &GenSpec{Family: "nope", M: 4, Delta: 4},
	}, &resp); code != http.StatusBadRequest {
		t.Fatalf("bad gen: %d", code)
	}

	// MaxGraphs is enforced with a 409 until a slot frees up.
	if code := doJSON(t, ts, "POST", "/v1/graphs", &CreateGraphRequest{Graph: cycleSpec(6)}, &resp); code != http.StatusCreated {
		t.Fatalf("first create: %d", code)
	}
	if code := doJSON(t, ts, "POST", "/v1/graphs", &CreateGraphRequest{Graph: cycleSpec(6)}, nil); code != http.StatusConflict {
		t.Fatalf("over limit: %d", code)
	}
	if code := doJSON(t, ts, "DELETE", "/v1/graphs/"+resp.ID, nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete: %d", code)
	}
	if code := doJSON(t, ts, "POST", "/v1/graphs", &CreateGraphRequest{Graph: cycleSpec(6)}, &resp); code != http.StatusCreated {
		t.Fatalf("create after delete: %d", code)
	}

	// Oversized batches are rejected up front.
	big := make([]dynamic.Mutation, 5000)
	for i := range big {
		big[i] = dynamic.Mutation{Op: dynamic.OpAddEdge, U: 0, V: 1}
	}
	if code := doJSON(t, ts, "POST", "/v1/graphs/"+resp.ID+"/mutations",
		&MutateRequest{Mutations: big}, nil); code != http.StatusBadRequest {
		t.Fatalf("oversized batch: %d", code)
	}
	// Empty batch too.
	if code := doJSON(t, ts, "POST", "/v1/graphs/"+resp.ID+"/mutations",
		&MutateRequest{}, nil); code != http.StatusBadRequest {
		t.Fatalf("empty batch: %d", code)
	}
}

// A stalled apply loop must answer 429 once the bounded queue fills, reads
// must keep serving instantly meanwhile, and the queue must drain cleanly
// once released.
func TestMutationQueueBackpressure(t *testing.T) {
	var calls atomic.Int32
	block := make(chan struct{})
	var once sync.Once
	release := func() { once.Do(func() { close(block) }) }
	defer release()
	svc, ts := newGraphServer(t, Config{
		MutationQueueDepth: 2,
		dynNetHook: func(net *local.Network) {
			// The first maintenance is the initial coloring; stall the rest.
			if calls.Add(1) > 1 {
				<-block
			}
		},
	})
	var created GraphResponse
	if code := doJSON(t, ts, "POST", "/v1/graphs", &CreateGraphRequest{Graph: cycleSpec(16)}, &created); code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}

	// Three batches: one blocks inside Apply, two sit in the queue.
	var wg sync.WaitGroup
	codes := make([]int, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var mr MutateResponse
			codes[i] = doJSON(t, ts, "POST", "/v1/graphs/"+created.ID+"/mutations",
				&MutateRequest{Mutations: []dynamic.Mutation{{Op: dynamic.OpAddEdge, U: i, V: i + 8}}}, &mr)
		}(i)
	}

	// Wait until the loop is provably stalled inside the first Apply
	// (hook call #2; #1 was the initial coloring) with the other two batches
	// filling the depth-2 queue — then one probe must bounce with 429.
	gs, ok := svc.lookupGraph(created.ID)
	if !ok {
		t.Fatal("store vanished")
	}
	deadline := time.Now().Add(10 * time.Second)
	for calls.Load() < 2 || len(gs.jobs) < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled (hook calls %d, queued %d)", calls.Load(), len(gs.jobs))
		}
		time.Sleep(2 * time.Millisecond)
	}
	var mr MutateResponse
	if code := doJSON(t, ts, "POST", "/v1/graphs/"+created.ID+"/mutations",
		&MutateRequest{Mutations: []dynamic.Mutation{{Op: dynamic.OpAddEdge, U: 3, V: 11}}}, &mr); code != http.StatusTooManyRequests {
		t.Fatalf("probe on a full queue: %d (%s)", code, mr.Error)
	}

	// Reads do not wait behind the stalled apply loop.
	if cr := fetchColoring(t, ts, created.ID, false); cr.Version != 1 {
		t.Fatalf("read during stall: %+v", cr)
	}

	release()
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("queued batch %d: %d", i, code)
		}
	}
	cr := fetchColoring(t, ts, created.ID, true)
	if cr.Version != 4 || cr.Stale {
		t.Fatalf("after drain: %+v", cr)
	}
	if st := svc.met.snapshotDynRejects(); st == 0 {
		t.Fatal("429s were served but not counted")
	}
}

// Chaos at the service boundary: fault plans installed on every dynamic
// maintenance network. The API must never answer 200 with an invalid
// coloring — healthy snapshots verify, unhealthy stores serve last-known-good
// marked stale, and ?check=1 re-proves whatever is served before it goes out.
func TestGraphChaosNeverServesInvalid(t *testing.T) {
	var step atomic.Int32
	_, ts := newGraphServer(t, Config{
		dynNetHook: func(net *local.Network) {
			s := int(step.Add(1)) - 1
			if s == 0 || s%4 == 3 {
				return // clean windows (including the initial coloring)
			}
			p, err := faults.NewPlan(net.Graph(), faults.Config{
				Seed: int64(s), CrashRate: 0.03, DropRate: 0.06, CorruptRate: 0.03,
			})
			if err != nil {
				t.Errorf("fault plan: %v", err)
				return
			}
			net.SetFaults(p)
		},
	})
	var created GraphResponse
	if code := doJSON(t, ts, "POST", "/v1/graphs", &CreateGraphRequest{
		Gen: &GenSpec{Family: "easy", M: 6, Delta: 8},
	}, &created); code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}
	n := created.Info.N
	sawStale, sawFailure := false, false
	for i := 0; i < 40; i++ {
		var mr MutateResponse
		code := doJSON(t, ts, "POST", "/v1/graphs/"+created.ID+"/mutations",
			&MutateRequest{Mutations: []dynamic.Mutation{{Op: dynamic.OpAddEdge, U: (i * 7) % n, V: (i*13 + n/2) % n}}}, &mr)
		switch code {
		case http.StatusOK:
		case http.StatusBadRequest:
			// Edge already present or self-loop from the index arithmetic.
		case http.StatusInternalServerError:
			sawFailure = true
			if mr.Healthy {
				t.Fatalf("mutation %d: failed but store claims healthy", i)
			}
		default:
			t.Fatalf("mutation %d: unexpected status %d (%s)", i, code, mr.Error)
		}

		// Whatever the health, GET ?check=1 must be 200-valid or 503: the
		// server proves the coloring against the oracle before serving it.
		var cr ColoringResponse
		gcode := doJSON(t, ts, "GET", "/v1/graphs/"+created.ID+"/coloring?check=1", nil, &cr)
		switch gcode {
		case http.StatusOK:
			if !cr.Checked {
				t.Fatalf("mutation %d: served without the requested check", i)
			}
			if cr.Stale {
				sawStale = true
			}
		case http.StatusServiceUnavailable:
			// Acceptable: no valid coloring to serve at all.
		default:
			t.Fatalf("mutation %d: coloring status %d (%s)", i, gcode, cr.Error)
		}
	}
	if sawFailure && !sawStale {
		t.Error("maintenance failed but no stale last-known-good was ever served")
	}
}

// Concurrent clients on distinct graphs with interleaved reads: race-clean,
// every store healthy and valid at the end, dynamic metrics exposed.
func TestGraphConcurrentClients(t *testing.T) {
	_, ts := newGraphServer(t, Config{})
	const graphs, rounds = 3, 12
	ids := make([]string, graphs)
	for i := range ids {
		var created GraphResponse
		if code := doJSON(t, ts, "POST", "/v1/graphs", &CreateGraphRequest{Graph: cycleSpec(30 + i)}, &created); code != http.StatusCreated {
			t.Fatalf("create %d: %d", i, code)
		}
		ids[i] = created.ID
	}
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			n := 30 + i
			for r := 0; r < rounds; r++ {
				var mr MutateResponse
				m := dynamic.Mutation{Op: dynamic.OpAddEdge, U: (r * 3) % n, V: (r*3 + n/2) % n}
				code := doJSON(t, ts, "POST", "/v1/graphs/"+id+"/mutations", &MutateRequest{Mutations: []dynamic.Mutation{m}}, &mr)
				if code != http.StatusOK && code != http.StatusBadRequest {
					t.Errorf("graph %s round %d: %d (%s)", id, r, code, mr.Error)
					return
				}
				fetchColoring(t, ts, id, r%3 == 0)
			}
		}(i, id)
	}
	wg.Wait()
	for _, id := range ids {
		if cr := fetchColoring(t, ts, id, true); cr.Stale {
			t.Fatalf("graph %s ended stale", id)
		}
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"deltaserved_dynamic_mutations_total",
		"deltaserved_dynamic_graphs 3",
		`deltaserved_dynamic_batches_total{mode="incremental"}`,
		"deltaserved_dynamic_recolor_seconds_count",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// Shutdown drains queued mutation batches before stopping the apply loops,
// and the API refuses new graphs afterwards.
func TestGraphShutdownDrains(t *testing.T) {
	svc := New(Config{})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	var created GraphResponse
	if code := doJSON(t, ts, "POST", "/v1/graphs", &CreateGraphRequest{Graph: cycleSpec(12)}, &created); code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if code := doJSON(t, ts, "POST", "/v1/graphs", &CreateGraphRequest{Graph: cycleSpec(12)}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("create after shutdown: %d", code)
	}
	// The surviving store's queue is closed: mutations answer 410.
	if code := doJSON(t, ts, "POST", "/v1/graphs/"+created.ID+"/mutations",
		&MutateRequest{Mutations: []dynamic.Mutation{{Op: dynamic.OpAddEdge, U: 0, V: 6}}}, nil); code != http.StatusGone {
		t.Fatalf("mutate after shutdown: %d", code)
	}
	// Reads still serve the last maintained coloring.
	if cr := fetchColoring(t, ts, created.ID, true); cr.Version != 1 {
		t.Fatalf("read after shutdown: %+v", cr)
	}
}
