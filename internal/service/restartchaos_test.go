package service

import (
	"bytes"
	"encoding/json"
	"flag"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"deltacoloring/internal/durable"
	"deltacoloring/internal/dynamic"
)

// Restart chaos harness: the parent test launches this same test binary as
// a child process running a real deltaserved service on a durable data
// directory, streams mutation batches at it over HTTP, SIGKILLs it at seeded
// points mid-stream, recovers by relaunching, and asserts the crash-stop
// durability contract end to end:
//
//   - no acknowledged batch is lost (recovered version >= last acked, and
//     with a single in-flight request, at most one unacked batch appears)
//   - no invalid coloring is ever served (?check=1 must pass after every
//     recovery)
//
// SIGKILL — not SIGTERM — so nothing gets to flush: only the WAL's
// fsync-before-ack stands between an acked batch and oblivion.

var chaosRounds = flag.Int("chaos-rounds", 3, "restart chaos kill/recover rounds")

const (
	chaosChildEnv = "DELTASERVED_CHAOS_CHILD"
	chaosDirEnv   = "DELTASERVED_CHAOS_DIR"
	chaosAddrEnv  = "DELTASERVED_CHAOS_ADDRFILE"
)

// TestRestartChaosChild is the child-process body; it only runs when the
// harness launches it with the chaos env set.
func TestRestartChaosChild(t *testing.T) {
	if os.Getenv(chaosChildEnv) == "" {
		t.Skip("chaos child: run by TestRestartChaos")
	}
	svc := New(Config{
		Workers:         1,
		DataDir:         os.Getenv(chaosDirEnv),
		Fsync:           "always",
		CheckpointEvery: 8,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Publish the address atomically (write-then-rename) so the parent
	// never reads a half-written file.
	addrFile := os.Getenv(chaosAddrEnv)
	tmp := addrFile + ".tmp"
	if err := os.WriteFile(tmp, []byte("http://"+ln.Addr().String()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, addrFile); err != nil {
		t.Fatal(err)
	}
	// Serve until SIGKILLed; this call never returns cleanly.
	_ = http.Serve(ln, svc.Handler())
}

// chaosClient wraps the child's HTTP API for the parent.
type chaosClient struct {
	base string
	hc   *http.Client
}

func (c *chaosClient) do(method, path string, body, out any) (int, error) {
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			return 0, err
		}
	}
	req, err := http.NewRequest(method, c.base+path, &buf)
	if err != nil {
		return 0, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil {
		_ = json.NewDecoder(resp.Body).Decode(out)
	}
	return resp.StatusCode, nil
}

func TestRestartChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("restart chaos: skipped in -short mode")
	}
	if os.Getenv(chaosChildEnv) != "" {
		t.Skip("not recursing inside the chaos child")
	}
	dataDir := t.TempDir()
	addrFile := filepath.Join(t.TempDir(), "addr")
	rng := rand.New(rand.NewSource(0xC4A05))

	var lastAcked int64 = 1 // version 1 is the initial coloring
	created := false
	graphID := ""

	for round := 0; round < *chaosRounds; round++ {
		cmd, base := launchChaosChild(t, dataDir, addrFile)
		client := &chaosClient{base: base, hc: &http.Client{Timeout: 10 * time.Second}}
		waitChildReady(t, client)

		if !created {
			var cr GraphResponse
			code, err := client.do("POST", "/v1/graphs", &CreateGraphRequest{Graph: cycleSpec(48)}, &cr)
			if err != nil || code != http.StatusCreated {
				t.Fatalf("create: %d %v", code, err)
			}
			graphID, created = cr.ID, true
		} else {
			// The graph must have survived the previous kill, no worse than
			// one un-acked batch ahead.
			var col ColoringResponse
			code, err := client.do("GET", "/v1/graphs/"+graphID+"/coloring?check=1", nil, &col)
			if err != nil {
				t.Fatalf("round %d: coloring after recovery: %v", round, err)
			}
			if code != http.StatusOK {
				t.Fatalf("round %d: recovered coloring answered %d (%s) — the valid-or-unhealthy contract broke", round, code, col.Error)
			}
			if col.Version < lastAcked || col.Version > lastAcked+1 {
				t.Fatalf("round %d: recovered version %d outside [%d, %d] — acked batch lost or phantom applied",
					round, col.Version, lastAcked, lastAcked+1)
			}
			lastAcked = col.Version
		}

		// Stream mutations until the seeded kill point, then SIGKILL with a
		// request possibly still in flight.
		killAfter := 3 + rng.Intn(8)
		acks := 0
		for acks < killAfter {
			u, v := rng.Intn(48), rng.Intn(48)
			if u == v {
				continue
			}
			op := "add_edge"
			if rng.Intn(2) == 0 {
				op = "remove_edge"
			}
			var mr MutateResponse
			code, err := client.do("POST", "/v1/graphs/"+graphID+"/mutations", &MutateRequest{
				Mutations: []dynamic.Mutation{{Op: dynamic.Op(op), U: u, V: v}},
			}, &mr)
			if err != nil {
				t.Fatalf("round %d: mutate: %v", round, err)
			}
			switch code {
			case http.StatusOK:
				acks++
				lastAcked = mr.Result.Version
			case http.StatusBadRequest:
				// Validation rejection (edge already there / missing): the
				// store did not advance; keep streaming.
			default:
				t.Fatalf("round %d: mutate answered %d (%s)", round, code, mr.Error)
			}
		}
		if err := cmd.Process.Kill(); err != nil { // SIGKILL
			t.Fatal(err)
		}
		_ = cmd.Wait()
		_ = os.Remove(addrFile)
	}

	// Final in-process recovery: the directory left by the last SIGKILL must
	// recover to >= lastAcked with an oracle-clean coloring.
	st, rep, err := durable.Recover(filepath.Join(dataDir, graphID), durable.Config{})
	if err != nil {
		t.Fatalf("final recovery: %v", err)
	}
	defer st.Close()
	if rep.Version < lastAcked {
		t.Fatalf("final recovery at version %d, lost acked version %d", rep.Version, lastAcked)
	}
	if !rep.Healthy {
		t.Fatalf("final recovery unhealthy with no faults injected: %+v", rep)
	}
}

// launchChaosChild starts the child process and returns it with its base URL.
func launchChaosChild(t *testing.T, dataDir, addrFile string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestRestartChaosChild$", "-test.v")
	cmd.Env = append(os.Environ(),
		chaosChildEnv+"=1",
		chaosDirEnv+"="+dataDir,
		chaosAddrEnv+"="+addrFile,
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}
	})
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			return cmd, string(b)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("chaos child never published its address")
	return nil, ""
}

// waitChildReady polls the child's /readyz (recovery may be replaying).
func waitChildReady(t *testing.T, c *chaosClient) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		code, err := c.do("GET", "/readyz", nil, nil)
		if err == nil && code == http.StatusOK {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("chaos child never became ready")
}
