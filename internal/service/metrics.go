package service

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"deltacoloring/internal/durable"
	"deltacoloring/internal/dynamic"
	"deltacoloring/internal/local"
)

// metrics is a tiny hand-rolled Prometheus registry: counters, gauges, one
// wall-time histogram, and a per-phase round counter fed by the LOCAL
// simulator's span tracing. It keeps the repository dependency-free while
// emitting the standard text exposition format.
type metrics struct {
	mu sync.Mutex

	jobsStarted      uint64
	jobsCompleted    uint64
	jobsFailed       uint64
	jobsRejected     uint64
	jobsShed         uint64
	jobsRetried      uint64
	jobsQuarantined  uint64
	watchdogTimeouts uint64
	idemJoins        uint64
	cacheHits        uint64
	cacheMisses      uint64

	phaseRounds map[string]uint64
	backendJobs map[string]uint64 // backend name -> completed jobs

	dynMutations  uint64
	dynRecolored  uint64
	dynFallbacks  uint64
	dynFailures   uint64
	dynRejects    uint64
	dynCheckFails uint64
	dynBatches    map[string]uint64 // mode -> applied batches
	dynBuckets    []float64
	dynBucketCnts []uint64
	dynDurSum     float64
	dynDurCount   uint64

	engineRounds    uint64
	sparseRounds    uint64
	activeVertices  uint64
	skippedVertices uint64

	shardRuns            uint64
	shardCutEdges        uint64
	shardBoundaryUpdates uint64
	shardStepCalls       uint64

	buckets      []float64 // upper bounds in seconds, ascending; +Inf implied
	bucketCounts []uint64  // non-cumulative per-bucket counts, len = len(buckets)+1
	durSum       float64
	durCount     uint64
}

func newMetrics() *metrics {
	return &metrics{
		phaseRounds:   make(map[string]uint64),
		backendJobs:   make(map[string]uint64),
		buckets:       []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10},
		bucketCounts:  make([]uint64, 8),
		dynBatches:    make(map[string]uint64),
		dynBuckets:    []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10},
		dynBucketCnts: make([]uint64, 8),
	}
}

func (m *metrics) jobStarted()     { m.mu.Lock(); m.jobsStarted++; m.mu.Unlock() }
func (m *metrics) jobFailed()      { m.mu.Lock(); m.jobsFailed++; m.mu.Unlock() }
func (m *metrics) jobRejected()    { m.mu.Lock(); m.jobsRejected++; m.mu.Unlock() }
func (m *metrics) jobShed()        { m.mu.Lock(); m.jobsShed++; m.mu.Unlock() }
func (m *metrics) jobRetried()     { m.mu.Lock(); m.jobsRetried++; m.mu.Unlock() }
func (m *metrics) jobQuarantined() { m.mu.Lock(); m.jobsQuarantined++; m.mu.Unlock() }
func (m *metrics) watchdogFired()  { m.mu.Lock(); m.watchdogTimeouts++; m.mu.Unlock() }
func (m *metrics) idemJoin()       { m.mu.Lock(); m.idemJoins++; m.mu.Unlock() }
func (m *metrics) cacheHit()       { m.mu.Lock(); m.cacheHits++; m.mu.Unlock() }
func (m *metrics) cacheMiss()      { m.mu.Lock(); m.cacheMisses++; m.mu.Unlock() }

// jobCompleted records a successful run and its wall time.
func (m *metrics) jobCompleted(d time.Duration) {
	s := d.Seconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobsCompleted++
	m.durSum += s
	m.durCount++
	i := 0
	for i < len(m.buckets) && s > m.buckets[i] {
		i++
	}
	m.bucketCounts[i]++
}

// backendJob records one completed run under its resolved backend name.
func (m *metrics) backendJob(name string) {
	if name == "" {
		return
	}
	m.mu.Lock()
	m.backendJobs[name]++
	m.mu.Unlock()
}

// shardRun records one completed sharded coloring run and its cross-cut
// traffic counters.
func (m *metrics) shardRun(cutEdges, boundaryUpdates, stepCalls int) {
	m.mu.Lock()
	m.shardRuns++
	m.shardCutEdges += uint64(cutEdges)
	m.shardBoundaryUpdates += uint64(boundaryUpdates)
	m.shardStepCalls += uint64(stepCalls)
	m.mu.Unlock()
}

// dynBatch records one applied mutation batch and its recolor latency.
func (m *metrics) dynBatch(res *dynamic.ApplyResult, d time.Duration) {
	s := d.Seconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dynMutations += uint64(res.Mutations)
	m.dynRecolored += uint64(res.Recolored)
	if res.Fallback {
		m.dynFallbacks++
	}
	m.dynBatches[res.Mode]++
	m.dynDurSum += s
	m.dynDurCount++
	i := 0
	for i < len(m.dynBuckets) && s > m.dynBuckets[i] {
		i++
	}
	m.dynBucketCnts[i]++
}

// dynFailure records one batch whose maintenance (or validation) failed.
func (m *metrics) dynFailure() { m.mu.Lock(); m.dynFailures++; m.mu.Unlock() }

func (m *metrics) dynRejected() { m.mu.Lock(); m.dynRejects++; m.mu.Unlock() }

// snapshotDynRejects reads the mutation-429 counter (test accessor).
func (m *metrics) snapshotDynRejects() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dynRejects
}
func (m *metrics) dynCheckFailed() { m.mu.Lock(); m.dynCheckFails++; m.mu.Unlock() }

// addSpan accumulates one closed phase span; it is the local.Network span
// hook installed for every run.
func (m *metrics) addSpan(sp local.Span) {
	if sp.Rounds <= 0 && sp.EngineRounds <= 0 {
		return
	}
	m.mu.Lock()
	if sp.Rounds > 0 {
		m.phaseRounds[sp.Name] += uint64(sp.Rounds)
	}
	if sp.EngineRounds > 0 {
		m.engineRounds += uint64(sp.EngineRounds)
		m.sparseRounds += uint64(sp.SparseRounds)
		m.activeVertices += uint64(sp.ActiveVertices)
		m.skippedVertices += uint64(sp.SkippedVertices)
	}
	m.mu.Unlock()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// writeTo renders the registry in Prometheus text exposition format.
// Gauges that live outside the registry (queue depth, worker count) and the
// durability counters (aggregated across stores) are passed in by the
// server at scrape time.
func (m *metrics) writeTo(w io.Writer, queueDepth, workers, breakerState, dynGraphs int, wal durable.WALStats, rec recoverySummary) {
	m.mu.Lock()
	defer m.mu.Unlock()

	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("deltaserved_jobs_started_total", "Jobs picked up by a worker.", m.jobsStarted)
	counter("deltaserved_jobs_completed_total", "Jobs that produced a verified coloring.", m.jobsCompleted)
	counter("deltaserved_jobs_failed_total", "Jobs that ended in an error (including cancellations and panics).", m.jobsFailed)
	counter("deltaserved_jobs_rejected_total", "Color requests rejected with 429 because the queue was full.", m.jobsRejected)
	counter("deltaserved_jobs_shed_total", "Color requests shed with 503 by the open circuit breaker.", m.jobsShed)
	counter("deltaserved_job_retries_total", "Attempt re-runs after transient server-side failures.", m.jobsRetried)
	counter("deltaserved_jobs_quarantined_total", "Jobs quarantined because their final attempt panicked.", m.jobsQuarantined)
	counter("deltaserved_watchdog_timeouts_total", "Hung runs the watchdog converted into 504s.", m.watchdogTimeouts)
	counter("deltaserved_idempotent_joins_total", "Retried POSTs joined to an existing job via idempotency key.", m.idemJoins)
	counter("deltaserved_cache_hits_total", "Color requests answered from the result cache.", m.cacheHits)
	counter("deltaserved_cache_misses_total", "Color requests that missed the result cache.", m.cacheMisses)
	counter("deltaserved_engine_rounds_total", "State-engine rounds executed across all jobs (dense + sparse).", m.engineRounds)
	counter("deltaserved_engine_sparse_rounds_total", "State-engine rounds that ran on the frontier-scheduled sparse path.", m.sparseRounds)
	counter("deltaserved_engine_active_vertices_total", "Vertex evaluations performed by the state engine.", m.activeVertices)
	counter("deltaserved_engine_skipped_vertices_total", "Vertex evaluations skipped by frontier scheduling.", m.skippedVertices)
	counter("deltaserved_shard_runs_total", "Completed sharded (?shards=) coloring runs.", m.shardRuns)
	counter("deltaserved_shard_cut_edges_total", "Parent edges cut by shard partitions across completed sharded runs.", m.shardCutEdges)
	counter("deltaserved_shard_boundary_updates_total", "Boundary-state messages routed across the cut by sharded runs.", m.shardBoundaryUpdates)
	counter("deltaserved_shard_step_calls_total", "Worker Step calls issued by sharded runs (quiet shards are skipped).", m.shardStepCalls)

	fmt.Fprintf(w, "# HELP deltaserved_queue_depth Jobs currently waiting in the FIFO queue.\n# TYPE deltaserved_queue_depth gauge\ndeltaserved_queue_depth %d\n", queueDepth)
	fmt.Fprintf(w, "# HELP deltaserved_workers Size of the worker pool.\n# TYPE deltaserved_workers gauge\ndeltaserved_workers %d\n", workers)
	fmt.Fprintf(w, "# HELP deltaserved_breaker_state Circuit breaker state (0 closed, 1 open, 2 half-open).\n# TYPE deltaserved_breaker_state gauge\ndeltaserved_breaker_state %d\n", breakerState)

	counter("deltaserved_dynamic_mutations_total", "Mutations applied to live dynamic graphs.", m.dynMutations)
	counter("deltaserved_dynamic_recolored_total", "Vertices recolored by dynamic maintenance.", m.dynRecolored)
	counter("deltaserved_dynamic_fallbacks_total", "Dynamic batches salvaged by a full recompute after a failed incremental attempt.", m.dynFallbacks)
	counter("deltaserved_dynamic_failures_total", "Dynamic batches whose maintenance or validation failed.", m.dynFailures)
	counter("deltaserved_dynamic_rejected_total", "Mutation batches rejected with 429 because an apply queue was full.", m.dynRejects)
	counter("deltaserved_dynamic_check_failures_total", "Colorings that failed the ?check=1 oracle and were refused.", m.dynCheckFails)
	fmt.Fprintf(w, "# HELP deltaserved_dynamic_graphs Live dynamic graph stores.\n# TYPE deltaserved_dynamic_graphs gauge\ndeltaserved_dynamic_graphs %d\n", dynGraphs)
	fmt.Fprint(w, "# HELP deltaserved_dynamic_batches_total Applied dynamic batches by maintenance mode.\n# TYPE deltaserved_dynamic_batches_total counter\n")
	modes := make([]string, 0, len(m.dynBatches))
	for mode := range m.dynBatches {
		modes = append(modes, mode)
	}
	sort.Strings(modes)
	for _, mode := range modes {
		fmt.Fprintf(w, "deltaserved_dynamic_batches_total{mode=%q} %d\n", escapeLabel(mode), m.dynBatches[mode])
	}
	fmt.Fprint(w, "# HELP deltaserved_dynamic_recolor_seconds Wall time of dynamic maintenance per applied batch.\n# TYPE deltaserved_dynamic_recolor_seconds histogram\n")
	dcum := uint64(0)
	for i, ub := range m.dynBuckets {
		dcum += m.dynBucketCnts[i]
		fmt.Fprintf(w, "deltaserved_dynamic_recolor_seconds_bucket{le=%q} %d\n", trimFloat(ub), dcum)
	}
	fmt.Fprintf(w, "deltaserved_dynamic_recolor_seconds_bucket{le=\"+Inf\"} %d\n", m.dynDurCount)
	fmt.Fprintf(w, "deltaserved_dynamic_recolor_seconds_sum %g\n", m.dynDurSum)
	fmt.Fprintf(w, "deltaserved_dynamic_recolor_seconds_count %d\n", m.dynDurCount)

	counter("deltaserved_wal_appends_total", "Mutation batches appended to graph write-ahead logs.", wal.Appends)
	counter("deltaserved_wal_append_bytes_total", "Bytes appended to graph write-ahead logs.", wal.AppendBytes)
	counter("deltaserved_wal_fsyncs_total", "fsync calls issued by graph write-ahead logs.", wal.Fsyncs)
	counter("deltaserved_wal_append_errors_total", "Batches whose WAL append or flush failed (durability voided, answered 500).", wal.AppendErrors)
	counter("deltaserved_wal_checkpoints_total", "Checkpoint snapshots written (creation, cadence, shutdown, recovery).", wal.Checkpoints)
	counter("deltaserved_recovery_graphs_total", "Durable graph directories found at startup.", uint64(rec.graphs))
	counter("deltaserved_recovery_unhealthy_total", "Graphs recovered unhealthy (serving last-known-good or 503).", uint64(rec.unhealthy))
	counter("deltaserved_recovery_failed_total", "Graph directories whose recovery failed outright (skipped).", uint64(rec.failed))
	counter("deltaserved_recovery_replayed_total", "WAL tail records replayed across all recovered graphs.", uint64(rec.replayed))
	counter("deltaserved_recovery_skipped_total", "Duplicate WAL records skipped during replay (already in a checkpoint).", uint64(rec.skipped))
	counter("deltaserved_recovery_truncated_bytes_total", "Torn or corrupt WAL tail bytes truncated during recovery.", uint64(rec.truncated))
	fmt.Fprintf(w, "# HELP deltaserved_recovery_seconds Total wall time spent recovering durable graphs at startup.\n# TYPE deltaserved_recovery_seconds gauge\ndeltaserved_recovery_seconds %g\n", float64(rec.nanos)/1e9)

	fmt.Fprint(w, "# HELP deltaserved_backend_jobs_total Completed coloring runs by resolved pipeline backend.\n# TYPE deltaserved_backend_jobs_total counter\n")
	backends := make([]string, 0, len(m.backendJobs))
	for name := range m.backendJobs {
		backends = append(backends, name)
	}
	sort.Strings(backends)
	for _, name := range backends {
		fmt.Fprintf(w, "deltaserved_backend_jobs_total{backend=%q} %d\n", escapeLabel(name), m.backendJobs[name])
	}

	fmt.Fprint(w, "# HELP deltaserved_phase_rounds_total LOCAL rounds charged per pipeline phase, harvested from local.Span tracing.\n# TYPE deltaserved_phase_rounds_total counter\n")
	names := make([]string, 0, len(m.phaseRounds))
	for name := range m.phaseRounds {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "deltaserved_phase_rounds_total{phase=%q} %d\n", escapeLabel(name), m.phaseRounds[name])
	}

	fmt.Fprint(w, "# HELP deltaserved_job_duration_seconds Wall time of completed coloring runs.\n# TYPE deltaserved_job_duration_seconds histogram\n")
	cum := uint64(0)
	for i, ub := range m.buckets {
		cum += m.bucketCounts[i]
		fmt.Fprintf(w, "deltaserved_job_duration_seconds_bucket{le=%q} %d\n", trimFloat(ub), cum)
	}
	fmt.Fprintf(w, "deltaserved_job_duration_seconds_bucket{le=\"+Inf\"} %d\n", m.durCount)
	fmt.Fprintf(w, "deltaserved_job_duration_seconds_sum %g\n", m.durSum)
	fmt.Fprintf(w, "deltaserved_job_duration_seconds_count %d\n", m.durCount)
}

func trimFloat(f float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.3f", f), "0"), ".")
}
