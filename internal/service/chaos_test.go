package service

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"deltacoloring"
)

// TestServiceChaosNeverServesInvalid is the service-level acceptance
// property: under randomly injected worker failures (panics, hangs past the
// deadline, slow runs) every answer is either a verified coloring with 200
// or an honest failure status (429/499/5xx) — never a 200 carrying an
// invalid or missing coloring. The fault mix is seeded, the request load is
// concurrent, and the whole test is run under -race by `make chaos`.
func TestServiceChaosNeverServesInvalid(t *testing.T) {
	requests := 40
	if v := os.Getenv("DELTA_CHAOS_ITERS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("bad DELTA_CHAOS_ITERS=%q", v)
		}
		requests = 20 * n
	}

	var mu sync.Mutex
	rng := rand.New(rand.NewSource(2025))
	cfg := Config{
		Workers:          4,
		MaxRetries:       1,
		RetryBaseBackoff: time.Millisecond,
		BreakerThreshold: 8,
		BreakerCooldown:  20 * time.Millisecond,
		WatchdogGrace:    20 * time.Millisecond,
	}
	cfg.runHook = func(j *job) {
		mu.Lock()
		roll := rng.Float64()
		mu.Unlock()
		switch {
		case roll < 0.25:
			panic("chaos: injected panic")
		case roll < 0.35:
			time.Sleep(150 * time.Millisecond) // hung past deadline + grace
		case roll < 0.5:
			time.Sleep(5 * time.Millisecond) // merely slow
		}
	}
	_, cl, _ := newTestServer(t, cfg)

	g := deltacoloring.GenEasyCliqueRing(4, 16)
	var wg sync.WaitGroup
	errs := make(chan error, requests)
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := easyReq(4)
			req.NoCache = true
			req.TimeoutMS = 60
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			resp, err := cl.Color(ctx, req)
			if err != nil {
				var ae *APIError
				if !errors.As(err, &ae) {
					errs <- err
					return
				}
				switch ae.StatusCode {
				case http.StatusTooManyRequests, 499,
					http.StatusInternalServerError, http.StatusServiceUnavailable,
					http.StatusGatewayTimeout:
					return // honest failure
				}
				errs <- err
				return
			}
			// A 200 must carry a complete verified Δ-coloring, no exceptions.
			if resp.State != "done" {
				errs <- errors.New("200 with state " + resp.State)
				return
			}
			if verr := deltacoloring.Verify(g, resp.Colors); verr != nil {
				errs <- verr
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("chaos violation: %v", err)
	}
}
