package service

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"strings"
	"sync"

	"deltacoloring"
	"deltacoloring/internal/backend"
	"deltacoloring/internal/graph"
	"deltacoloring/internal/graphio"
)

// ColorRequest is the body of POST /v1/color. Exactly one of EdgeList,
// Graph, or Gen must be set.
type ColorRequest struct {
	// Algo selects the algorithm: "det" (Theorem 1, default) or "rand"
	// (Theorem 2).
	Algo string `json:"algo,omitempty"`
	// Backend names a registered pipeline backend to run instead of the
	// Algo default — any name from the internal/backend registry ("det",
	// "rand", "simple", "ruling") or "auto" for the portfolio selector,
	// which picks by Δ, density, and ACD shape. ?backend= on the URL is an
	// equivalent spelling. Unknown names answer 400 listing the registry.
	Backend string `json:"backend,omitempty"`
	// Seed seeds the randomized algorithm (ignored for det).
	Seed int64 `json:"seed,omitempty"`
	// Paper selects the paper-exact parameters (ε = 1/63, needs Δ ⪆ 85)
	// instead of the scaled preset.
	Paper bool `json:"paper,omitempty"`
	// EdgeList is a graph in the graphio edge-list format.
	EdgeList string `json:"edge_list,omitempty"`
	// Graph is an inline vertex-count + edge-pair spec.
	Graph *GraphSpec `json:"graph,omitempty"`
	// Gen names one of the built-in dense generator families.
	Gen *GenSpec `json:"gen,omitempty"`
	// File names a graph file staged under the server's -graph-dir (text
	// or binary format, sniffed), as a relative path confined to that
	// directory. Requests using it answer 400 when the server has no graph
	// directory configured.
	File string `json:"file,omitempty"`
	// Async makes the request return 202 with a job ID immediately;
	// poll GET /v1/jobs/{id} for the result.
	Async bool `json:"async,omitempty"`
	// TimeoutMS caps the run's wall time (0 = server default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// NoCache bypasses the result cache for this request.
	NoCache bool `json:"no_cache,omitempty"`
	// Shards > 0 runs the greedy wire algorithm sharded across this many
	// workers with cross-cut LOCAL rounds (in-process by default, over the
	// cluster's /v1/shard/rounds workers when the server was started with
	// -workers-addrs). The merged coloring is bit-identical to the
	// single-process greedy run at any shard count. ?shards= on the URL is
	// an equivalent spelling. Incompatible with algo=rand and with any
	// backend other than "greedy".
	Shards int `json:"shards,omitempty"`
	// Check runs the job under the conformance harness: every pipeline phase
	// checkpoints its intermediate state for the invariant checkers, and the
	// final coloring is cross-checked against the sequential oracle. The
	// response reports the firing count and phases. ?check=1 on the URL is an
	// equivalent spelling. Checked runs are bit-identical to unchecked ones.
	Check bool `json:"check,omitempty"`
	// IdempotencyKey deduplicates retried POSTs: while a job with the same
	// key is retained, a new request joins it instead of recomputing. The
	// Idempotency-Key header is an equivalent spelling.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
}

// GraphSpec is an inline edge-pair graph.
type GraphSpec struct {
	N     int      `json:"n"`
	Edges [][2]int `json:"edges"`
}

// GenSpec names a built-in dense family: hard (clique-bipartite), easy
// (clique ring), or mixed (hard with easy patch). M is the family's size
// parameter (cliques per side / ring length), Delta the clique size.
type GenSpec struct {
	Family string `json:"family"`
	M      int    `json:"m"`
	Delta  int    `json:"delta"`
}

// PhaseSpan mirrors local.Span with stable JSON field names.
type PhaseSpan struct {
	Name   string `json:"name"`
	Rounds int    `json:"rounds"`
}

// ShatterStats mirrors the randomized algorithm's RandStats.
type ShatterStats struct {
	TNodesProposed int `json:"t_nodes_proposed"`
	TNodesKept     int `json:"t_nodes_kept"`
	Components     int `json:"components"`
	MaxComponent   int `json:"max_component"`
}

// ColorResponse is the body of color and job responses. State is one of
// "queued", "running", "done", or "failed".
type ColorResponse struct {
	JobID  string `json:"job_id,omitempty"`
	State  string `json:"state"`
	Cached bool   `json:"cached,omitempty"`
	// Backend is the pipeline backend that produced the coloring (the
	// resolved choice when the request said "auto").
	Backend   string        `json:"backend,omitempty"`
	N         int           `json:"n,omitempty"`
	M         int           `json:"m,omitempty"`
	Delta     int           `json:"delta,omitempty"`
	Colors    []int         `json:"colors,omitempty"`
	Rounds    int           `json:"rounds,omitempty"`
	Spans     []PhaseSpan   `json:"spans,omitempty"`
	Shatter   *ShatterStats `json:"shatter,omitempty"`
	ElapsedMS float64       `json:"elapsed_ms,omitempty"`
	// Shards / CutEdges / BoundaryUpdates describe a sharded run: the shard
	// count actually used (requests above the vertex count are clamped), the
	// parent edges cut by the partition, and the boundary-state messages
	// routed across the cut over the whole run.
	Shards          int `json:"shards,omitempty"`
	CutEdges        int `json:"cut_edges,omitempty"`
	BoundaryUpdates int `json:"boundary_updates,omitempty"`
	// Checks / CheckPhases report the conformance harness of a check=1 run:
	// total checker firings and the distinct validated phase tags.
	Checks      int      `json:"checks,omitempty"`
	CheckPhases []string `json:"check_phases,omitempty"`
	Error       string   `json:"error,omitempty"`
	// Quarantined marks a failed job whose final attempt panicked; the job
	// record is retained for inspection past normal eviction.
	Quarantined bool `json:"quarantined,omitempty"`
}

// decodeStrict decodes a JSON body into T, rejecting unknown fields.
func decodeStrict[T any](r io.Reader) (*T, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	v := new(T)
	if err := dec.Decode(v); err != nil {
		return nil, fmt.Errorf("invalid JSON body: %w", err)
	}
	return v, nil
}

// parseRequest decodes and validates a ColorRequest body.
func parseRequest(r io.Reader) (*ColorRequest, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	req := &ColorRequest{}
	if err := dec.Decode(req); err != nil {
		return nil, fmt.Errorf("invalid JSON body: %w", err)
	}
	switch req.Algo {
	case "":
		req.Algo = "det"
	case "det", "rand":
	default:
		return nil, fmt.Errorf("unknown algo %q (want det or rand)", req.Algo)
	}
	if err := validateBackendName(req.Backend); err != nil {
		return nil, err
	}
	if req.TimeoutMS < 0 {
		return nil, fmt.Errorf("timeout_ms must be non-negative")
	}
	if req.Shards < 0 {
		return nil, fmt.Errorf("shards must be non-negative")
	}
	if err := validateShardCombo(req); err != nil {
		return nil, err
	}
	sources := 0
	for _, set := range []bool{req.EdgeList != "", req.Graph != nil, req.Gen != nil, req.File != ""} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		return nil, fmt.Errorf("exactly one of edge_list, graph, gen, or file is required")
	}
	return req, nil
}

// validateBackendName accepts the empty string (defer to Algo), "auto"
// (the portfolio selector), and any registered backend name; anything else
// is a 400 listing the registry so clients can self-correct.
func validateBackendName(name string) error {
	switch name {
	case "", "auto":
		return nil
	}
	if _, err := backend.Get(name); err != nil {
		return fmt.Errorf("unknown backend %q (want auto or one of: %s)",
			name, strings.Join(backend.Names(), ", "))
	}
	return nil
}

// validateShardCombo rejects shard counts combined with knobs the sharded
// path cannot honor: sharding always runs the greedy wire algorithm, so a
// randomized algo or a different explicit backend would be silently ignored.
// Called again after query-param overrides, which can add a backend.
func validateShardCombo(req *ColorRequest) error {
	if req.Shards == 0 {
		return nil
	}
	if req.Algo == "rand" {
		return fmt.Errorf("shards=%d runs the greedy wire algorithm; algo=rand is incompatible", req.Shards)
	}
	if req.Backend != "" && req.Backend != "greedy" {
		return fmt.Errorf("shards=%d runs the greedy wire algorithm; backend %q is incompatible (drop it or use greedy)", req.Shards, req.Backend)
	}
	return nil
}

// buildGraph materializes the request's graph source. maxN caps the vertex
// count of every source before the big allocations happen; graphDir is the
// staged-file root for the file source (empty = disabled).
func buildGraph(req *ColorRequest, maxN int, graphDir string) (*graph.Graph, error) {
	switch {
	case req.File != "":
		return loadStagedGraph(req.File, graphDir, maxN)
	case req.EdgeList != "":
		g, err := graphio.ReadMax(strings.NewReader(req.EdgeList), maxN)
		if err != nil {
			return nil, err
		}
		return g, nil
	case req.Graph != nil:
		if req.Graph.N < 0 || req.Graph.N > maxN {
			return nil, fmt.Errorf("graph n=%d outside [0, %d]", req.Graph.N, maxN)
		}
		b := graph.NewBuilder(req.Graph.N)
		for _, e := range req.Graph.Edges {
			b.AddEdge(e[0], e[1])
		}
		return b.Build()
	case req.Gen != nil:
		return buildGen(req.Gen, maxN)
	}
	return nil, fmt.Errorf("no graph source")
}

// loadStagedGraph serves the file request source: name is resolved
// relative to the operator-staged graph directory and must stay inside it —
// absolute paths and any path whose lexical resolution escapes the root
// (filepath.IsLocal) are rejected before touching the filesystem. The file
// loads into heap-owned arrays (never a mapping, whose lifetime a queued
// async job could not scope), and the vertex cap applies like every other
// source.
func loadStagedGraph(name, dir string, maxN int) (*graph.Graph, error) {
	if dir == "" {
		return nil, fmt.Errorf("file source is disabled (server started without -graph-dir)")
	}
	if !filepath.IsLocal(name) {
		return nil, fmt.Errorf("file %q escapes the graph directory", name)
	}
	g, err := graphio.ReadFile(filepath.Join(dir, name))
	if err != nil {
		return nil, fmt.Errorf("file %q: %w", name, err)
	}
	if g.N() > maxN {
		return nil, fmt.Errorf("file %q has n=%d, above the %d-vertex limit", name, g.N(), maxN)
	}
	return g, nil
}

// buildGen validates a generator spec upfront: the graph constructors panic
// on out-of-range arguments, and the service promises 400s instead.
func buildGen(spec *GenSpec, maxN int) (*graph.Graph, error) {
	switch spec.Family {
	case "hard", "easy", "mixed":
	default:
		return nil, fmt.Errorf("unknown gen family %q (want hard, easy, or mixed)", spec.Family)
	}
	// Cap m and delta individually first so n = 2*m*delta cannot overflow
	// (maxN is far below sqrt(MaxInt)).
	if spec.M > maxN || spec.Delta > maxN || (spec.M > 0 && spec.Delta > 0 && 2*spec.M*spec.Delta > maxN) {
		return nil, fmt.Errorf("gen %s m=%d delta=%d exceeds the %d-vertex limit", spec.Family, spec.M, spec.Delta, maxN)
	}
	switch spec.Family {
	case "hard":
		if spec.Delta < 2 || spec.M < spec.Delta {
			return nil, fmt.Errorf("gen hard needs 2 <= delta <= m, got m=%d delta=%d", spec.M, spec.Delta)
		}
		g, _ := graph.HardCliqueBipartite(spec.M, spec.Delta)
		return g, nil
	case "easy":
		if spec.M < 4 || spec.Delta < 4 || spec.Delta%2 != 0 {
			return nil, fmt.Errorf("gen easy needs m >= 4 and even delta >= 4, got m=%d delta=%d", spec.M, spec.Delta)
		}
		g, _ := graph.EasyCliqueRing(spec.M, spec.Delta)
		return g, nil
	default: // mixed
		if spec.M < 4 || spec.Delta < 3 || spec.M < spec.Delta {
			return nil, fmt.Errorf("gen mixed needs m >= max(4, delta) and delta >= 3, got m=%d delta=%d", spec.M, spec.Delta)
		}
		g, _ := graph.HardWithEasyPatch(spec.M, spec.Delta)
		return g, nil
	}
}

// cacheKey derives the canonical result-cache key: the graph's structural
// hash plus every knob that changes the output. Randomized runs include the
// seed, so identical (graph, seed) pairs share an entry.
func cacheKey(g *graph.Graph, req *ColorRequest) string {
	key := fmt.Sprintf("%016x|%s|paper=%t", graphio.CanonicalHash(g), req.Algo, req.Paper)
	if req.Algo == "rand" || req.Backend == "rand" {
		key += fmt.Sprintf("|seed=%d", req.Seed)
	}
	if req.Backend != "" {
		// Explicit backend choices get their own entries; requests without
		// one keep the historical key shape. "auto" is cacheable because the
		// portfolio selector is deterministic per graph.
		key += "|backend=" + req.Backend
	}
	if req.Check {
		// Checked runs produce bit-identical colorings but a richer response
		// (checks summary); keep the cache entries separate so an unchecked
		// hit never masquerades as a validated one.
		key += "|check=true"
	}
	if req.Shards > 0 {
		// Sharded runs are bit-identical to the single-process greedy run,
		// but the response carries per-shard traffic counters; isolate the
		// entries per shard count so those never cross-contaminate.
		key += fmt.Sprintf("|shards=%d", req.Shards)
	}
	return key
}

// spanScratch recycles the span staging slice across jobs: responses may be
// retained indefinitely by the result cache, so they get one exact-size copy
// while the append-grown staging buffer returns to the pool.
var spanScratch = sync.Pool{New: func() any { return new([]PhaseSpan) }}

// resultResponse converts a run result into the wire shape. report is the
// conformance summary of a checked run (nil otherwise).
func resultResponse(g *graph.Graph, res *deltacoloring.Result, shatter *deltacoloring.RandStats, report *deltacoloring.CheckReport, elapsedMS float64) *ColorResponse {
	resp := &ColorResponse{
		State:     "done",
		N:         g.N(),
		M:         g.M(),
		Delta:     g.MaxDegree(),
		Colors:    res.Colors,
		Rounds:    res.Rounds,
		ElapsedMS: elapsedMS,
	}
	stage := spanScratch.Get().(*[]PhaseSpan)
	spans := (*stage)[:0]
	for _, sp := range res.Spans {
		if sp.Rounds > 0 {
			spans = append(spans, PhaseSpan{Name: sp.Name, Rounds: sp.Rounds})
		}
	}
	if len(spans) > 0 {
		resp.Spans = make([]PhaseSpan, len(spans))
		copy(resp.Spans, spans)
	}
	*stage = spans[:0]
	spanScratch.Put(stage)
	if shatter != nil {
		resp.Shatter = &ShatterStats{
			TNodesProposed: shatter.TNodesProposed,
			TNodesKept:     shatter.TNodesKept,
			Components:     shatter.Components,
			MaxComponent:   shatter.MaxComponent,
		}
	}
	if report != nil {
		resp.Checks = report.Checks
		resp.CheckPhases = report.Phases
	}
	return resp
}
