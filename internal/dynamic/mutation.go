package dynamic

import (
	"fmt"
	"sort"

	"deltacoloring/internal/graph"
)

// Op names one kind of graph mutation.
type Op string

// The mutation vocabulary of the dynamic layer. Vertices are append-only at
// the CSR level: removing a vertex removes its incident edges and tombstones
// the slot (see internal/graph.ApplyEdits), so colorings keep one entry per
// slot and untouched regions stay bit-identical across batches.
const (
	OpAddEdge      Op = "add_edge"
	OpRemoveEdge   Op = "remove_edge"
	OpAddVertex    Op = "add_vertex"
	OpRemoveVertex Op = "remove_vertex"
)

// Mutation is one entry of a mutation batch. U and V are vertex indices;
// add_vertex ignores both (the new vertex gets the next free index),
// remove_vertex uses only U.
type Mutation struct {
	Op Op  `json:"op"`
	U  int `json:"u,omitempty"`
	V  int `json:"v,omitempty"`
}

// batchPlan is a validated mutation batch lowered to the strict edit lists
// graph.ApplyEdits consumes, plus the bookkeeping the maintenance path needs.
type batchPlan struct {
	newN    int
	add     []graph.Edge
	remove  []graph.Edge
	added   []int // appended vertex slots, ascending
	removed []int // tombstoned vertex slots, ascending
	// touched lists every vertex whose closed neighborhood the batch can
	// have damaged: endpoints of edited edges, appended slots, tombstoned
	// slots. Ascending; these are the frontier seeds for DetectSeeded.
	touched []int
}

// planBatch validates batch against the current graph (with its tombstone
// set) and lowers it to a batchPlan. Batches are strict and unambiguous —
// the same rules graph.ApplyEdits enforces, applied sequentially so later
// mutations see the effect of earlier ones in the same batch:
//
//   - added edges must be absent (in the batch-local view), removed edges
//     present; an edge cannot be both added and removed in one batch;
//   - endpoints must exist: in range, not tombstoned, not removed earlier
//     in the batch;
//   - remove_vertex tombstones an original vertex and removes its incident
//     edges; it rejects vertices appended or connected by the same batch.
//
// Strictness is what makes batch split/reorder metamorphic checks meaningful:
// an accepted batch has exactly one possible effect.
func planBatch(g *graph.Graph, tombstoned []bool, batch []Mutation) (*batchPlan, error) {
	n := g.N()
	p := &batchPlan{newN: n}
	edgeDelta := make(map[graph.Edge]int) // +1 batch-added, -1 batch-removed
	removedNow := make(map[int]bool)
	touched := make(map[int]bool)
	norm := func(u, v int) graph.Edge {
		if u > v {
			u, v = v, u
		}
		return graph.Edge{U: u, V: v}
	}
	exists := func(v int) bool {
		if v < 0 || v >= p.newN {
			return false
		}
		return v >= n || (!tombstoned[v] && !removedNow[v])
	}
	present := func(e graph.Edge) bool {
		if d, ok := edgeDelta[e]; ok {
			return d > 0
		}
		return e.V < n && g.HasEdge(e.U, e.V)
	}
	for i, m := range batch {
		switch m.Op {
		case OpAddVertex:
			v := p.newN
			p.newN++
			p.added = append(p.added, v)
			touched[v] = true
		case OpAddEdge, OpRemoveEdge:
			if m.U == m.V {
				return nil, fmt.Errorf("dynamic: mutation %d: self-loop at vertex %d", i, m.U)
			}
			if !exists(m.U) {
				return nil, fmt.Errorf("dynamic: mutation %d: vertex %d does not exist", i, m.U)
			}
			if !exists(m.V) {
				return nil, fmt.Errorf("dynamic: mutation %d: vertex %d does not exist", i, m.V)
			}
			e := norm(m.U, m.V)
			d, edited := edgeDelta[e]
			if m.Op == OpAddEdge {
				if present(e) {
					return nil, fmt.Errorf("dynamic: mutation %d: edge {%d,%d} already present", i, e.U, e.V)
				}
				if edited && d < 0 {
					return nil, fmt.Errorf("dynamic: mutation %d: edge {%d,%d} both removed and added in one batch", i, e.U, e.V)
				}
				edgeDelta[e] = 1
			} else {
				if !present(e) {
					return nil, fmt.Errorf("dynamic: mutation %d: edge {%d,%d} not present", i, e.U, e.V)
				}
				if edited && d > 0 {
					return nil, fmt.Errorf("dynamic: mutation %d: edge {%d,%d} both added and removed in one batch", i, e.U, e.V)
				}
				edgeDelta[e] = -1
			}
			touched[e.U], touched[e.V] = true, true
		case OpRemoveVertex:
			u := m.U
			if !exists(u) {
				return nil, fmt.Errorf("dynamic: mutation %d: vertex %d does not exist", i, u)
			}
			if u >= n {
				return nil, fmt.Errorf("dynamic: mutation %d: vertex %d was appended by this batch", i, u)
			}
			for e, d := range edgeDelta {
				if d > 0 && (e.U == u || e.V == u) {
					return nil, fmt.Errorf("dynamic: mutation %d: vertex %d has edges added in the same batch", i, u)
				}
			}
			for _, w := range g.Neighbors(u) {
				e := norm(u, int(w))
				edgeDelta[e] = -1
				touched[int(w)] = true
			}
			removedNow[u] = true
			p.removed = append(p.removed, u)
			touched[u] = true
		default:
			return nil, fmt.Errorf("dynamic: mutation %d: unknown op %q", i, m.Op)
		}
	}
	for e, d := range edgeDelta {
		if d > 0 {
			p.add = append(p.add, e)
		} else {
			p.remove = append(p.remove, e)
		}
	}
	sortEdges(p.add)
	sortEdges(p.remove)
	for v := range touched {
		p.touched = append(p.touched, v)
	}
	sort.Ints(p.touched)
	return p, nil
}

func sortEdges(es []graph.Edge) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		return es[i].V < es[j].V
	})
}
