// Package dynamic is the deltalive subsystem: a long-lived graph store whose
// coloring is maintained incrementally under a stream of mutation batches.
//
// The paper's LOCAL model is fundamentally about locality — a change at one
// vertex should only cost work in a small neighborhood — and this package
// cashes that promise in. Each applied batch becomes a frontier seed: the
// scoped damage detector (internal/repair.DetectSeeded) scans the touched
// closed neighborhoods, the tight/grow planner builds a deg+1 list-coloring
// instance over exactly the damaged region, and a frontier-scheduled greedy
// solve recolors it in sparse rounds on the root network. Only when the
// dirty region grows too large, the tracked palette drifts past the current
// Δ+1, or maintenance itself fails does the store fall back to a full
// recompute (see DESIGN.md §11 for the exact validity conditions).
//
// The store is versioned: every applied batch produces a new immutable CSR
// snapshot (graph.ApplyEdits) and bumps the version. The last snapshot whose
// coloring verified is retained as last-known-good, so a maintenance failure
// (e.g. injected faults crashing the recolor rounds) never leaves readers
// with a silently invalid coloring: the store turns unhealthy and serves the
// stale-but-valid snapshot until a later batch or explicit Recompute heals it.
package dynamic

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"deltacoloring/internal/backend"
	"deltacoloring/internal/coloring"
	"deltacoloring/internal/graph"
	"deltacoloring/internal/local"
)

// Mode names how a batch's coloring was maintained.
const (
	ModeIncremental = "incremental"
	ModeRecompute   = "recompute"
)

// ErrMaintenance marks an Apply or Recompute failure that is the store's
// fault, not the batch's: the structure advanced (for Apply) but its coloring
// could not be maintained, and the store turned unhealthy. Callers separate
// it from validation rejections with errors.Is; the durable layer logs the
// batch anyway because the structural change was acknowledged.
var ErrMaintenance = errors.New("maintenance failed")

// Options tunes a Live store. The zero value is usable.
type Options struct {
	// FallbackDirtyFraction is the incremental-maintenance ceiling: when a
	// batch touches more than this fraction of the vertices, maintenance
	// skips straight to a full recompute. 0 means the default of 0.25;
	// negative disables incremental maintenance entirely.
	FallbackDirtyFraction float64
	// Workers sets the maintenance networks' Exchange worker count
	// (0 keeps the engine default of 1).
	Workers int
	// NetHook, when non-nil, runs on every maintenance network before any
	// rounds execute. It is the chaos and conformance seam: tests install
	// fault plans (local.SetFaults) or the invariant harness through it.
	NetHook func(*local.Network)
	// Backend, when non-empty, names a registered pipeline backend
	// (internal/backend) that full recomputes try first: on dense structures
	// it maintains a true Δ-coloring instead of the greedy Δ+1 palette. Any
	// backend failure (e.g. the structure drifted sparse under mutations)
	// falls back to the greedy deg+1 path, preserving valid-or-unhealthy.
	// New rejects unknown names.
	Backend string
}

func (o Options) withDefaults() Options {
	if o.FallbackDirtyFraction == 0 {
		o.FallbackDirtyFraction = 0.25
	}
	return o
}

// Snapshot is one immutable version of the store: the CSR graph, a complete
// proper coloring of it with colors in [0, NumColors), and the version that
// produced it. Colors is owned by the snapshot; callers must not mutate it.
type Snapshot struct {
	G         *graph.Graph
	Colors    []int
	NumColors int
	Version   int64
}

// ApplyResult reports what maintaining one batch did.
type ApplyResult struct {
	// Version is the store version after the batch.
	Version int64 `json:"version"`
	// Mutations is the batch size.
	Mutations int `json:"mutations"`
	// Mode is ModeIncremental or ModeRecompute.
	Mode string `json:"mode"`
	// Fallback reports that an incremental attempt failed and the batch was
	// salvaged by a recompute.
	Fallback bool `json:"fallback,omitempty"`
	// Touched counts the vertices the batch edited (frontier seeds).
	Touched int `json:"touched"`
	// Damaged counts the vertices the scoped detector flagged.
	Damaged int `json:"damaged"`
	// Recolored counts the vertices whose color actually changed hands.
	Recolored int `json:"recolored"`
	// NumColors is the maintained palette bound after the batch.
	NumColors int `json:"num_colors"`
	// Rounds is the LOCAL round cost of the maintenance.
	Rounds int `json:"rounds"`
	// RecolorNanos is the wall time spent in coloring maintenance alone
	// (detection, planning, recoloring, verification), excluding the
	// structural CSR rebuild the batch pays in either mode.
	RecolorNanos int64 `json:"recolor_ns,omitempty"`
}

// Stats aggregates a store's lifetime maintenance accounting.
type Stats struct {
	Batches     int64 `json:"batches"`
	Mutations   int64 `json:"mutations"`
	Incremental int64 `json:"incremental"`
	Recomputes  int64 `json:"recomputes"`
	Fallbacks   int64 `json:"fallbacks"`
	Failures    int64 `json:"failures"`
	Recolored   int64 `json:"recolored"`
	Rounds      int64 `json:"rounds"`
}

// Live is a dynamic graph with a maintained coloring. All methods are safe
// for concurrent use. Writers (Apply, Recompute) serialize on applyMu and
// hold the state lock only to read a consistent view and to install the
// result, so readers (Snapshot, Stats, Info) never wait behind an in-flight
// maintenance — a long recolor cannot stall the serving path.
type Live struct {
	applyMu sync.Mutex // serializes Apply/Recompute end to end

	mu        sync.Mutex // guards everything below
	opts      Options
	g         *graph.Graph
	colors    []int
	numColors int
	removed   []bool // tombstoned slots (isolated, color retained)
	version   int64
	healthy   bool
	lastGood  *Snapshot
	stats     Stats
}

// New creates a store over g and colors it from scratch (a ModeRecompute
// maintenance, version 1). The initial coloring uses at most Δ+1 colors
// (exactly Δ when a pipeline backend is configured and applies).
func New(g *graph.Graph, opts Options) (*Live, error) {
	if opts.Backend != "" {
		if _, err := backend.Get(opts.Backend); err != nil {
			return nil, fmt.Errorf("dynamic: %w", err)
		}
	}
	l := &Live{
		opts:    opts.withDefaults(),
		g:       g,
		colors:  make([]int, g.N()),
		removed: make([]bool, g.N()),
		version: 1,
	}
	res := &ApplyResult{Version: 1, Mode: ModeRecompute}
	if err := l.recompute(g, l.colors, res); err != nil {
		return nil, fmt.Errorf("dynamic: initial coloring: %w", err)
	}
	l.numColors = res.NumColors
	l.healthy = true
	l.lastGood = l.snapshotLocked()
	l.stats.Recomputes++
	l.stats.Rounds += int64(res.Rounds)
	return l, nil
}

// Apply validates and applies one mutation batch, then maintains the
// coloring: incrementally when the incremental-validity conditions hold,
// by full recompute otherwise (Fallback marks a failed incremental attempt
// that was salvaged). On a maintenance error the structure still advances —
// the mutations are not lost — but the store turns unhealthy: Snapshot
// reports !ok, LastGood keeps serving the pre-batch coloring, and the next
// Apply or Recompute heals via the recompute path.
func (l *Live) Apply(batch []Mutation) (*ApplyResult, error) {
	l.applyMu.Lock()
	defer l.applyMu.Unlock()
	if len(batch) == 0 {
		return nil, errors.New("dynamic: empty mutation batch")
	}
	// A consistent view of the state. The slices are safe to read after the
	// lock drops: installs replace them wholesale (never mutate in place),
	// and applyMu keeps any other writer out until we are done.
	l.mu.Lock()
	g, curColors, curRemoved := l.g, l.colors, l.removed
	prevK, healthy, version := l.numColors, l.healthy, l.version
	l.mu.Unlock()

	p, err := planBatch(g, curRemoved, batch)
	if err != nil {
		return nil, err // rejected batch: state unchanged
	}
	g2, err := graph.ApplyEdits(g, p.newN, p.add, p.remove)
	if err != nil {
		return nil, fmt.Errorf("dynamic: %w", err)
	}
	colors := make([]int, g2.N())
	copy(colors, curColors)
	for _, v := range p.added {
		colors[v] = coloring.None
	}
	removed := make([]bool, g2.N())
	copy(removed, curRemoved)
	for _, v := range p.removed {
		removed[v] = true
	}

	res := &ApplyResult{
		Version:   version + 1,
		Mutations: len(batch),
		Touched:   len(p.touched),
	}

	incremental := healthy &&
		l.opts.FallbackDirtyFraction > 0 &&
		float64(len(p.touched)) <= l.opts.FallbackDirtyFraction*float64(g2.N()) &&
		prevK <= g2.MaxDegree()+1
	mstart := time.Now()
	defer func() { res.RecolorNanos = time.Since(mstart).Nanoseconds() }()
	var merr error
	if incremental {
		merr = l.maintainIncremental(g2, colors, p, prevK, res)
		if merr == nil {
			res.Mode = ModeIncremental
		} else {
			res.Fallback = true
		}
	}
	if !incremental || merr != nil {
		if rerr := l.recompute(g2, colors, res); rerr != nil {
			// The batch is structurally applied but its coloring is not
			// maintained: advance the version, keep lastGood, go unhealthy.
			l.mu.Lock()
			l.g, l.colors, l.removed = g2, colors, removed
			l.version = res.Version
			l.healthy = false
			l.stats.Batches++
			l.stats.Mutations += int64(len(batch))
			if res.Fallback {
				l.stats.Fallbacks++
			}
			l.stats.Failures++
			l.mu.Unlock()
			return nil, fmt.Errorf("dynamic: %w at version %d: %w", ErrMaintenance, res.Version, rerr)
		}
		res.Mode = ModeRecompute
	}

	l.mu.Lock()
	l.g, l.colors, l.removed = g2, colors, removed
	l.version = res.Version
	l.numColors = res.NumColors
	l.healthy = true
	l.lastGood = l.snapshotLocked()
	l.stats.Batches++
	l.stats.Mutations += int64(len(batch))
	switch res.Mode {
	case ModeIncremental:
		l.stats.Incremental++
	case ModeRecompute:
		l.stats.Recomputes++
	}
	if res.Fallback {
		l.stats.Fallbacks++
	}
	l.stats.Recolored += int64(res.Recolored)
	l.stats.Rounds += int64(res.Rounds)
	l.mu.Unlock()
	return res, nil
}

// Recompute forces a full recoloring of the current structure, compacting
// the palette back to at most Δ+1 colors and healing an unhealthy store.
func (l *Live) Recompute() (*ApplyResult, error) {
	l.applyMu.Lock()
	defer l.applyMu.Unlock()
	l.mu.Lock()
	g, version := l.g, l.version
	l.mu.Unlock()
	colors := make([]int, g.N())
	res := &ApplyResult{Version: version + 1, Mode: ModeRecompute}
	mstart := time.Now()
	defer func() { res.RecolorNanos = time.Since(mstart).Nanoseconds() }()
	if err := l.recompute(g, colors, res); err != nil {
		l.mu.Lock()
		l.healthy = false
		l.stats.Failures++
		l.mu.Unlock()
		return nil, fmt.Errorf("dynamic: recompute %w: %w", ErrMaintenance, err)
	}
	l.mu.Lock()
	l.colors = colors
	l.version = res.Version
	l.numColors = res.NumColors
	l.healthy = true
	l.lastGood = l.snapshotLocked()
	l.stats.Batches++
	l.stats.Recomputes++
	l.stats.Recolored += int64(res.Recolored)
	l.stats.Rounds += int64(res.Rounds)
	l.mu.Unlock()
	return res, nil
}

// Snapshot returns the current version and whether it is healthy (its
// coloring maintained and verified). When ok is false the returned snapshot
// is the current — possibly invalid — state; serve LastGood instead.
func (l *Live) Snapshot() (snap *Snapshot, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.snapshotLocked(), l.healthy
}

// LastGood returns the newest snapshot whose coloring verified, or nil if
// none exists (New failed mid-construction — callers never see that).
func (l *Live) LastGood() *Snapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastGood
}

// Healthy reports whether the current version's coloring is maintained.
func (l *Live) Healthy() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.healthy
}

// Stats returns a copy of the lifetime maintenance counters.
func (l *Live) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Info is a compact description of the store for listings and metrics.
type Info struct {
	N         int   `json:"n"`
	M         int   `json:"m"`
	MaxDegree int   `json:"max_degree"`
	Removed   int   `json:"removed_vertices"`
	Version   int64 `json:"version"`
	NumColors int   `json:"num_colors"`
	Healthy   bool  `json:"healthy"`
	// Backend is the configured recompute backend, empty for greedy-only.
	Backend string `json:"backend,omitempty"`
}

// Info returns the store's current shape.
func (l *Live) Info() Info {
	l.mu.Lock()
	defer l.mu.Unlock()
	removed := 0
	for _, r := range l.removed {
		if r {
			removed++
		}
	}
	return Info{
		N:         l.g.N(),
		M:         l.g.M(),
		MaxDegree: l.g.MaxDegree(),
		Removed:   removed,
		Version:   l.version,
		NumColors: l.numColors,
		Healthy:   l.healthy,
		Backend:   l.opts.Backend,
	}
}

// snapshotLocked clones the current state into an immutable Snapshot.
func (l *Live) snapshotLocked() *Snapshot {
	colors := make([]int, len(l.colors))
	copy(colors, l.colors)
	return &Snapshot{G: l.g, Colors: colors, NumColors: l.numColors, Version: l.version}
}

// Version returns the store's current version (it advances on every applied
// batch, including batches whose maintenance failed).
func (l *Live) Version() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.version
}

// State is the complete durable image of a Live store: everything a process
// needs to reconstruct it after a crash. It is what internal/durable
// serializes into checkpoint snapshots. All slices are owned by the State.
type State struct {
	G         *graph.Graph
	Colors    []int
	NumColors int
	Removed   []bool
	Version   int64
	Healthy   bool
	// LastGood is the newest verified snapshot; when Healthy it equals the
	// current state and checkpoint writers may elide it.
	LastGood *Snapshot
	Stats    Stats
	// FallbackDirtyFraction and Backend are the store-identity options; the
	// process-level ones (Workers, NetHook) are supplied fresh at recovery.
	FallbackDirtyFraction float64
	Backend               string
}

// State deep-copies the store's durable image under the state lock.
func (l *Live) State() State {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := State{
		G:                     l.g,
		Colors:                append([]int(nil), l.colors...),
		NumColors:             l.numColors,
		Removed:               append([]bool(nil), l.removed...),
		Version:               l.version,
		Healthy:               l.healthy,
		Stats:                 l.stats,
		FallbackDirtyFraction: l.opts.FallbackDirtyFraction,
		Backend:               l.opts.Backend,
	}
	if l.lastGood != nil {
		lg := *l.lastGood
		lg.Colors = append([]int(nil), l.lastGood.Colors...)
		st.LastGood = &lg
	}
	return st
}

// NewFromState reconstructs a store from a durable image without recoloring:
// the recovery constructor behind internal/durable. It validates shape (slice
// lengths against the graph) and the options, and trusts the caller for
// coloring validity — the durable layer re-verifies every recovered coloring
// against the sequential oracle and downgrades Healthy before calling this,
// so an invalid checkpoint is never served as healthy. Process-level options
// (Workers, NetHook) come from opts; store-identity options (Backend,
// FallbackDirtyFraction) come from the state itself.
func NewFromState(st State, opts Options) (*Live, error) {
	if st.G == nil {
		return nil, errors.New("dynamic: state has no graph")
	}
	n := st.G.N()
	if len(st.Colors) != n || len(st.Removed) != n {
		return nil, fmt.Errorf("dynamic: state shape mismatch: n=%d, %d colors, %d removed flags",
			n, len(st.Colors), len(st.Removed))
	}
	if st.Version < 1 {
		return nil, fmt.Errorf("dynamic: state version %d < 1", st.Version)
	}
	if st.LastGood != nil && len(st.LastGood.Colors) != st.LastGood.G.N() {
		return nil, fmt.Errorf("dynamic: last-good shape mismatch: n=%d, %d colors",
			st.LastGood.G.N(), len(st.LastGood.Colors))
	}
	opts.FallbackDirtyFraction = st.FallbackDirtyFraction
	opts.Backend = st.Backend
	if opts.Backend != "" {
		if _, err := backend.Get(opts.Backend); err != nil {
			return nil, fmt.Errorf("dynamic: %w", err)
		}
	}
	l := &Live{
		opts:      opts.withDefaults(),
		g:         st.G,
		colors:    append([]int(nil), st.Colors...),
		numColors: st.NumColors,
		removed:   append([]bool(nil), st.Removed...),
		version:   st.Version,
		healthy:   st.Healthy,
		stats:     st.Stats,
	}
	if st.LastGood != nil {
		lg := *st.LastGood
		lg.Colors = append([]int(nil), st.LastGood.Colors...)
		l.lastGood = &lg
	} else if st.Healthy {
		l.lastGood = l.snapshotLocked()
	}
	return l, nil
}

// Invalidate marks the current coloring as failed post-hoc verification (the
// recovery path's oracle found a violation the in-band checks missed). The
// store turns unhealthy; if last-good is the same version it is dropped too,
// so readers get 503 rather than the refuted snapshot.
func (l *Live) Invalidate() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.healthy = false
	if l.lastGood != nil && l.lastGood.Version == l.version {
		l.lastGood = nil
	}
}
