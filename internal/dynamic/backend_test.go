package dynamic

import (
	"strings"
	"testing"

	"deltacoloring/internal/graph"
)

func TestNewRejectsUnknownBackend(t *testing.T) {
	g := graph.Cycle(10)
	_, err := New(g, Options{Backend: "nonesuch"})
	if err == nil {
		t.Fatal("New accepted an unknown backend")
	}
	if !strings.Contains(err.Error(), `unknown backend "nonesuch"`) {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestBackendRecomputeDeltaColoring pins the backend-assisted recompute: on
// a dense structure the configured pipeline maintains a true Δ-coloring
// (NumColors == Δ), one color tighter than the greedy deg+1 path.
func TestBackendRecomputeDeltaColoring(t *testing.T) {
	g, _ := graph.HardCliqueBipartite(16, 16)
	for _, name := range []string{"det", "ruling"} {
		l, err := New(g, Options{Backend: name, FallbackDirtyFraction: -1})
		if err != nil {
			t.Fatalf("backend %s: %v", name, err)
		}
		snap := checkSnapshot(t, l)
		if snap.NumColors != g.MaxDegree() {
			t.Fatalf("backend %s: NumColors = %d, want Δ = %d", name, snap.NumColors, g.MaxDegree())
		}
		if info := l.Info(); info.Backend != name {
			t.Fatalf("Info.Backend = %q, want %q", info.Backend, name)
		}
	}
	// The greedy-only store promises only the deg+1 bound; the backends
	// above guarantee exactly Δ.
	plain, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if snap := checkSnapshot(t, plain); snap.NumColors > g.MaxDegree()+1 {
		t.Fatalf("greedy NumColors = %d exceeds Δ+1 = %d", snap.NumColors, g.MaxDegree()+1)
	}
}

// TestBackendRecomputeFallsBackOffDomain: a backend-configured store over a
// sparse graph (outside every dense pipeline's domain) silently falls back
// to the greedy path and stays healthy.
func TestBackendRecomputeFallsBackOffDomain(t *testing.T) {
	g := graph.Torus(8, 8)
	l, err := New(g, Options{Backend: "det", FallbackDirtyFraction: -1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	snap := checkSnapshot(t, l)
	if snap.NumColors > g.MaxDegree()+1 {
		t.Fatalf("fallback palette %d exceeds Δ+1", snap.NumColors)
	}
	// Mutations keep flowing through the fallback recompute path.
	if _, err := l.Apply([]Mutation{{Op: OpAddEdge, U: 0, V: 9}}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	checkSnapshot(t, l)
}

// TestBackendRecomputeSurvivesMutationDrift: a store born dense under a
// backend keeps serving valid colorings as mutations push the structure out
// of the backend's domain (valid-or-unhealthy does not depend on which
// recompute path runs).
func TestBackendRecomputeSurvivesMutationDrift(t *testing.T) {
	g, _ := graph.HardCliqueBipartite(8, 8)
	l, err := New(g, Options{Backend: "ruling", FallbackDirtyFraction: -1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if snap := checkSnapshot(t, l); snap.NumColors != g.MaxDegree() {
		t.Fatalf("initial NumColors = %d, want Δ", snap.NumColors)
	}
	// Deleting edges strips the dense structure; every batch must still end
	// healthy with a verified coloring.
	edges := g.Edges()
	for i := 0; i < 6; i++ {
		e := edges[i*7]
		if _, err := l.Apply([]Mutation{{Op: OpRemoveEdge, U: e.U, V: e.V}}); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		checkSnapshot(t, l)
	}
}
