package dynamic

import (
	"math/rand"
	"strings"
	"testing"

	"deltacoloring/internal/coloring"
	"deltacoloring/internal/graph"
)

// checkSnapshot asserts the store is healthy and its coloring passes the
// whole-graph oracle under the snapshot's own palette bound.
func checkSnapshot(t *testing.T, l *Live) *Snapshot {
	t.Helper()
	snap, ok := l.Snapshot()
	if !ok {
		t.Fatalf("store unhealthy at version %d", snap.Version)
	}
	c := coloring.Partial{Colors: append([]int(nil), snap.Colors...)}
	if err := coloring.VerifyComplete(snap.G, &c, snap.NumColors); err != nil {
		t.Fatalf("version %d: maintained coloring invalid: %v", snap.Version, err)
	}
	return snap
}

func TestNewColorsTheGraph(t *testing.T) {
	g := graph.Torus(8, 8)
	l, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	snap := checkSnapshot(t, l)
	if snap.Version != 1 || snap.NumColors > g.MaxDegree()+1 {
		t.Fatalf("initial snapshot: %+v", snap)
	}
}

func TestApplyIncrementalKeepsUntouchedRegion(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := graph.ErdosRenyi(400, 0.02, rng)
	l, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 40; step++ {
		before := checkSnapshot(t, l)
		// Flip one random edge: remove an existing one or add a missing one.
		var batch []Mutation
		if step%2 == 0 && before.G.M() > 0 {
			e := before.G.Edges()[rng.Intn(before.G.M())]
			batch = []Mutation{{Op: OpRemoveEdge, U: e.U, V: e.V}}
		} else {
			for {
				u, v := rng.Intn(before.G.N()), rng.Intn(before.G.N())
				if u != v && !before.G.HasEdge(u, v) {
					batch = []Mutation{{Op: OpAddEdge, U: u, V: v}}
					break
				}
			}
		}
		res, err := l.Apply(batch)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		after := checkSnapshot(t, l)
		if res.Mode != ModeIncremental {
			t.Fatalf("step %d: single-edge batch fell back to %s", step, res.Mode)
		}
		// Untouched region bit-identity: only recolored vertices may change.
		changed := 0
		for v := 0; v < before.G.N(); v++ {
			if after.Colors[v] != before.Colors[v] {
				changed++
			}
		}
		if changed > res.Recolored {
			t.Fatalf("step %d: %d colors changed but only %d recolored", step, changed, res.Recolored)
		}
	}
	st := l.Stats()
	if st.Batches != 40 || st.Incremental != 40 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestApplyVertexLifecycle(t *testing.T) {
	g := graph.Cycle(10)
	l, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Append a vertex and wire it into the cycle.
	res, err := l.Apply([]Mutation{
		{Op: OpAddVertex},
		{Op: OpAddEdge, U: 0, V: 10},
		{Op: OpAddEdge, U: 5, V: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := checkSnapshot(t, l)
	if snap.G.N() != 11 || !snap.G.HasEdge(0, 10) {
		t.Fatalf("vertex append not applied: %v", snap.G)
	}
	if res.Touched < 3 {
		t.Fatalf("touched %d, want >= 3", res.Touched)
	}
	// Tombstone it again: slot stays, edges go.
	if _, err := l.Apply([]Mutation{{Op: OpRemoveVertex, U: 10}}); err != nil {
		t.Fatal(err)
	}
	snap = checkSnapshot(t, l)
	if snap.G.N() != 11 || snap.G.Degree(10) != 0 {
		t.Fatalf("tombstone kept edges: %v", snap.G)
	}
	if l.Info().Removed != 1 {
		t.Fatalf("info: %+v", l.Info())
	}
	// The tombstoned slot rejects further mutations.
	if _, err := l.Apply([]Mutation{{Op: OpAddEdge, U: 10, V: 3}}); err == nil ||
		!strings.Contains(err.Error(), "does not exist") {
		t.Fatalf("tombstoned vertex accepted an edge: %v", err)
	}
}

func TestApplyRejectionLeavesStateUnchanged(t *testing.T) {
	g := graph.Cycle(8)
	l, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := checkSnapshot(t, l)
	cases := [][]Mutation{
		nil,
		{{Op: OpAddEdge, U: 0, V: 1}},    // already present
		{{Op: OpRemoveEdge, U: 0, V: 4}}, // not present
		{{Op: OpAddEdge, U: 2, V: 2}},    // self-loop
		{{Op: OpAddEdge, U: 0, V: 99}},   // out of range
		{{Op: Op("recolor"), U: 0}},      // unknown op
		{{Op: OpAddEdge, U: 0, V: 2}, {Op: OpRemoveEdge, U: 0, V: 2}}, // add+remove
		{{Op: OpAddVertex}, {Op: OpRemoveVertex, U: 8}},               // remove appended
		{{Op: OpAddEdge, U: 0, V: 2}, {Op: OpRemoveVertex, U: 0}},     // remove wired
	}
	for i, batch := range cases {
		if _, err := l.Apply(batch); err == nil {
			t.Fatalf("case %d: invalid batch accepted", i)
		}
	}
	after := checkSnapshot(t, l)
	if after.Version != before.Version {
		t.Fatalf("rejected batches advanced the version: %d -> %d", before.Version, after.Version)
	}
}

// The incremental→recompute boundary: a batch touching at most the dirty
// fraction stays incremental; one more touched vertex falls back.
func TestFallbackDirtyFractionBoundary(t *testing.T) {
	g := graph.Cycle(40)
	l, err := New(g, Options{FallbackDirtyFraction: 0.2}) // 8 of 40 vertices
	if err != nil {
		t.Fatal(err)
	}
	// 4 disjoint chords touch exactly 8 vertices: incremental.
	res, err := l.Apply([]Mutation{
		{Op: OpAddEdge, U: 0, V: 10}, {Op: OpAddEdge, U: 2, V: 12},
		{Op: OpAddEdge, U: 4, V: 14}, {Op: OpAddEdge, U: 6, V: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeIncremental || res.Touched != 8 {
		t.Fatalf("at-threshold batch: %+v", res)
	}
	checkSnapshot(t, l)
	// 5 disjoint chords touch 10 > 8 vertices: recompute.
	res, err = l.Apply([]Mutation{
		{Op: OpAddEdge, U: 20, V: 30}, {Op: OpAddEdge, U: 22, V: 32},
		{Op: OpAddEdge, U: 24, V: 34}, {Op: OpAddEdge, U: 26, V: 36},
		{Op: OpAddEdge, U: 28, V: 38},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeRecompute || res.Fallback {
		t.Fatalf("over-threshold batch: %+v", res)
	}
	checkSnapshot(t, l)
}

// Degree growth past the tracked palette mid-stream: splicing a hub into a
// low-Δ graph must raise the bound from the current snapshot's Δ (the
// repair palette fix) instead of failing, and a later Δ drop must trigger
// the palette-compaction recompute.
func TestDegreeGrowthAndPaletteCompaction(t *testing.T) {
	g := graph.Cycle(30)
	l, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	batch := []Mutation{{Op: OpAddVertex}}
	for v := 0; v < 6; v++ {
		batch = append(batch, Mutation{Op: OpAddEdge, U: 5 * v, V: 30})
	}
	res, err := l.Apply(batch)
	if err != nil {
		t.Fatal(err)
	}
	snap := checkSnapshot(t, l)
	if snap.G.MaxDegree() != 6 {
		t.Fatalf("hub degree %d, want 6", snap.G.MaxDegree())
	}
	if res.NumColors > snap.G.MaxDegree()+1 {
		t.Fatalf("palette %d exceeds Δ+1=%d", res.NumColors, snap.G.MaxDegree()+1)
	}
	// Force the tracked palette above Δ'+1 by tombstoning the hub: Δ drops
	// back to 2 while numColors may exceed 3 — the next batch must compact
	// via recompute when it does.
	if _, err := l.Apply([]Mutation{{Op: OpRemoveVertex, U: 30}}); err != nil {
		t.Fatal(err)
	}
	snap = checkSnapshot(t, l)
	res, err = l.Apply([]Mutation{{Op: OpRemoveEdge, U: 10, V: 11}})
	if err != nil {
		t.Fatal(err)
	}
	after := checkSnapshot(t, l)
	if snap.NumColors > snap.G.MaxDegree()+1 && res.Mode != ModeRecompute {
		t.Fatalf("palette %d > Δ+1=%d not compacted: %+v", snap.NumColors, snap.G.MaxDegree()+1, res)
	}
	if after.NumColors > after.G.MaxDegree()+1 {
		t.Fatalf("compaction left %d colors for Δ=%d", after.NumColors, after.G.MaxDegree())
	}
}

// Metamorphic: a batch of independent (pairwise far-apart) mutations yields
// the same coloring whether applied in one batch, reordered, or split.
func TestMetamorphicSplitReorder(t *testing.T) {
	build := func() *Live {
		l, err := New(graph.Torus(12, 12), Options{})
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	// Three edge removals in distant rows of the torus: independent, no Δ
	// change, all incremental.
	muts := []Mutation{
		{Op: OpRemoveEdge, U: 0, V: 1},
		{Op: OpRemoveEdge, U: 60, V: 61},
		{Op: OpRemoveEdge, U: 100, V: 101},
	}
	apply := func(l *Live, batches [][]Mutation) []int {
		for _, b := range batches {
			res, err := l.Apply(b)
			if err != nil {
				t.Fatal(err)
			}
			if res.Mode != ModeIncremental {
				t.Fatalf("metamorphic batch fell back: %+v", res)
			}
		}
		return checkSnapshot(t, l).Colors
	}
	oneBatch := apply(build(), [][]Mutation{muts})
	reordered := apply(build(), [][]Mutation{{muts[2], muts[0], muts[1]}})
	split := apply(build(), [][]Mutation{{muts[0]}, {muts[1]}, {muts[2]}})
	for v := range oneBatch {
		if oneBatch[v] != reordered[v] || oneBatch[v] != split[v] {
			t.Fatalf("vertex %d: one=%d reordered=%d split=%d",
				v, oneBatch[v], reordered[v], split[v])
		}
	}
}

func TestRecomputeCompactsAndHeals(t *testing.T) {
	g := graph.ErdosRenyi(200, 0.03, rand.New(rand.NewSource(3)))
	l, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := l.Recompute()
	if err != nil {
		t.Fatal(err)
	}
	snap := checkSnapshot(t, l)
	if res.Mode != ModeRecompute || snap.NumColors > g.MaxDegree()+1 {
		t.Fatalf("recompute: %+v, palette %d", res, snap.NumColors)
	}
}
