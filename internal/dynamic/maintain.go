package dynamic

import (
	"fmt"
	"sync"

	"deltacoloring/internal/backend"
	"deltacoloring/internal/coloring"
	"deltacoloring/internal/core"
	"deltacoloring/internal/graph"
	"deltacoloring/internal/local"
	"deltacoloring/internal/repair"
)

const none32 = int32(coloring.None)

// dynPalPool recycles the per-recolor working palette of solveGreedy's round
// callback, which may run concurrently across the runner's workers.
var dynPalPool = sync.Pool{New: func() any { return new(coloring.Palette) }}

// hookNet applies the store options to a fresh maintenance network.
func (l *Live) hookNet(net *local.Network) {
	if l.opts.Workers != 0 {
		net.SetWorkers(l.opts.Workers)
	}
	if l.opts.NetHook != nil {
		l.opts.NetHook(net)
	}
}

// maintainIncremental runs the frontier-seeded maintenance path on the
// post-batch graph g2: scoped damage detection over the batch's touched
// closed neighborhoods, tight/grow recolor planning (internal/repair), and
// a frontier-scheduled greedy deg+1 solve in sparse rounds on the root
// network — so installed fault hooks perturb exactly these rounds. colors is
// updated in place on success; any error (including a panic from a corrupted
// engine state) leaves the caller to fall back to a recompute.
func (l *Live) maintainIncremental(g2 *graph.Graph, colors []int, p *batchPlan, prevK int, res *ApplyResult) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("maintenance panic: %v", r)
		}
	}()
	net := local.New(g2)
	defer net.Close()
	l.hookNet(net)
	defer net.Phase("dynamic/maintain")()
	start := net.Rounds()

	// The working palette bound follows the *current* snapshot's Δ (the
	// repair palette fix): edge insertions may have grown a degree past the
	// tracked numColors mid-stream.
	bound := prevK
	if d := g2.MaxDegree(); bound < d {
		bound = d
	}
	damaged, err := repair.DetectSeeded(net, colors, bound, p.touched)
	if err != nil {
		return err
	}
	res.Damaged = len(damaged)

	kNew := prevK
	scoped := p.touched
	if len(damaged) > 0 {
		part := coloring.NewPartial(g2.N())
		copy(part.Colors, colors)
		plan := repair.PlanRecolor(net, part, damaged, bound)
		lists := plan.Lists
		activeCount := 0
		for _, a := range plan.Active {
			if a {
				activeCount++
			}
		}
		rounds, err := solveGreedy(net, plan.Active, lists, part.Colors, activeCount+2)
		if err != nil {
			return err
		}
		_ = rounds
		res.Recolored = activeCount
		scoped = make([]int, 0, len(p.touched)+activeCount)
		scoped = append(scoped, p.touched...)
		for v, a := range plan.Active {
			if a {
				scoped = append(scoped, v)
				if part.Colors[v]+1 > kNew {
					kNew = part.Colors[v] + 1
				}
			}
		}
		copy(colors, part.Colors)
	}

	if err := verifyScoped(g2, colors, kNew, scoped); err != nil {
		return err
	}
	res.NumColors = kNew
	res.Rounds = net.Rounds() - start
	return net.Checkpoint("dynamic/maintain", &Snapshot{
		G:         g2,
		Colors:    append([]int(nil), colors...),
		NumColors: kNew,
		Version:   res.Version,
	})
}

// recompute colors g2 from scratch. When a pipeline backend is configured
// it runs first — on dense structures it maintains a true Δ-coloring — and
// any backend failure falls through to the greedy path below: every vertex
// (tombstones included — they are isolated and cost nothing) runs the
// greedy deg+1 solve over the full palette [0, Δ+1) on a fresh root
// network, so chaos hooks apply to the fallback path exactly as to the
// incremental one. colors is overwritten on success.
func (l *Live) recompute(g2 *graph.Graph, colors []int, res *ApplyResult) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("recompute panic: %v", r)
		}
	}()
	if l.opts.Backend != "" && l.recomputeBackend(g2, colors, res) {
		return nil
	}
	net := local.New(g2)
	defer net.Close()
	l.hookNet(net)
	defer net.Phase("dynamic/recompute")()
	start := net.Rounds()

	n := g2.N()
	k := g2.MaxDegree() + 1
	active := make([]bool, n)
	var slab coloring.ListSlab
	lists := slab.Take(n, k)
	for v := 0; v < n; v++ {
		active[v] = true
	}
	work := make([]int, n)
	for v := range work {
		work[v] = coloring.None
	}
	if _, err := solveGreedy(net, active, lists, work, n+2); err != nil {
		return err
	}
	kNew := 1
	for _, c := range work {
		if c+1 > kNew {
			kNew = c + 1
		}
	}
	part := coloring.Partial{Colors: work}
	if verr := coloring.VerifyComplete(g2, &part, kNew); verr != nil {
		return fmt.Errorf("recomputed coloring invalid: %w", verr)
	}
	copy(colors, work)
	res.Recolored += n
	res.NumColors = kNew
	res.Rounds += net.Rounds() - start
	return net.Checkpoint("dynamic/maintain", &Snapshot{
		G:         g2,
		Colors:    append([]int(nil), colors...),
		NumColors: kNew,
		Version:   res.Version,
	})
}

// recomputeBackend attempts the full recoloring through the configured
// pipeline backend and reports whether it fully succeeded (coloring
// produced, verified, and checkpointed). Workers and the chaos/conformance
// NetHook apply to the backend's network exactly as to the greedy paths.
// Any failure — the structure drifted out of the backend's domain (sparse
// vertices, a (Δ+1)-clique), an injected fault, a rejected checkpoint —
// returns false and the caller falls back to the greedy deg+1 solve.
func (l *Live) recomputeBackend(g2 *graph.Graph, colors []int, res *ApplyResult) bool {
	b, err := backend.Get(l.opts.Backend)
	if err != nil {
		return false
	}
	p := backend.Params{Det: core.TestParams(), Rand: core.TestRandomizedParams(), Seed: res.Version}
	p.Rand.Params = p.Det
	bres, err := b.Color(nil, g2, p, &backend.RunOptions{
		Workers: l.opts.Workers,
		NetHook: l.opts.NetHook,
	})
	if err != nil {
		return false
	}
	kNew := 1
	for _, c := range bres.Colors {
		if c+1 > kNew {
			kNew = c + 1
		}
	}
	part := coloring.Partial{Colors: bres.Colors}
	if coloring.VerifyComplete(g2, &part, kNew) != nil {
		return false
	}
	copy(colors, bres.Colors)
	res.Recolored += g2.N()
	res.NumColors = kNew
	res.Rounds += bres.Rounds
	// Publish the maintenance checkpoint on a hooked network so an attached
	// harness validates the installed snapshot like any other batch.
	net := local.New(g2)
	defer net.Close()
	l.hookNet(net)
	return net.Checkpoint("dynamic/maintain", &Snapshot{
		G:         g2,
		Colors:    append([]int(nil), colors...),
		NumColors: kNew,
		Version:   res.Version,
	}) == nil
}

// solveGreedy colors the active vertices from their lists with the
// ID-local-max greedy rule: an uncolored active vertex adopts the smallest
// list color unused by its visible neighbors, but only once no visible
// active uncolored neighbor has a higher index. Each round commits at least
// the highest-index uncolored vertex of every component, so a fault-free
// solve quiesces within maxRounds = |active|+2; the frontier engine keeps
// per-round work proportional to the shrinking uncolored region. Under
// injected faults the rule degrades safely — crashed vertices stay
// uncolored and dropped messages can yield conflicts — and both are caught
// by the caller's verification, never served. colors is updated in place.
func solveGreedy(net *local.Network, active []bool, lists []coloring.Palette, colors []int, maxRounds int) (int, error) {
	g := net.Graph()
	st := make([]int32, g.N())
	for v := range st {
		st[v] = int32(colors[v])
	}
	final, rounds, err := local.NewRunner(net, st).Run(maxRounds,
		func(v int, self int32, nbrs local.Nbrs[int32]) int32 {
			if !active[v] || self != none32 {
				return self
			}
			p := dynPalPool.Get().(*coloring.Palette)
			p.CopyFrom(lists[v])
			for i := 0; i < nbrs.Len(); i++ {
				if c := nbrs.State(i); c != none32 {
					p.Remove(int(c))
				} else if w := nbrs.At(i); active[w] && w > v {
					dynPalPool.Put(p)
					return self // defer to the higher-index uncolored vertex
				}
			}
			c := p.Min()
			dynPalPool.Put(p)
			if c >= 0 {
				return int32(c)
			}
			return self // empty list (only reachable under faults)
		},
		func(v int, s int32) bool { return !active[v] || s != none32 })
	if err != nil {
		return rounds, err
	}
	for v, a := range active {
		if a && final[v] == none32 {
			return rounds, fmt.Errorf("vertex %d left uncolored after %d rounds", v, rounds)
		}
	}
	// Copy back only the active vertices: a corrupt fault may have scribbled
	// over an inactive bystander's engine state, but the store's color for
	// it stays authoritative.
	for v, a := range active {
		if a {
			colors[v] = int(final[v])
		}
	}
	return rounds, nil
}

// verifyScoped checks the maintained coloring on the scoped vertex set:
// every vertex must carry a color in [0, k) that no neighbor shares. Given
// a coloring that was valid before the batch, all possible damage lies in
// the batch's touched neighborhoods plus the recolored region, so passing
// the scoped check implies the full coloring verifies (the conformance
// suite cross-checks that implication with the whole-graph oracle).
func verifyScoped(g *graph.Graph, colors []int, k int, scoped []int) error {
	for _, v := range scoped {
		c := colors[v]
		if c == coloring.None || c < 0 || c >= k {
			return fmt.Errorf("maintained color %d at vertex %d outside [0,%d)", c, v, k)
		}
		for _, w := range g.Neighbors(v) {
			if colors[w] == c {
				return fmt.Errorf("maintained coloring has monochromatic edge {%d,%d}", v, int(w))
			}
		}
	}
	return nil
}
