package dynamic

import (
	"math/rand"
	"sync"
	"testing"

	"deltacoloring/internal/coloring"
	"deltacoloring/internal/faults"
	"deltacoloring/internal/graph"
	"deltacoloring/internal/local"
)

// verifySnap checks a snapshot's coloring against the whole-graph oracle.
func verifySnap(t *testing.T, snap *Snapshot) {
	t.Helper()
	c := coloring.Partial{Colors: append([]int(nil), snap.Colors...)}
	if err := coloring.VerifyComplete(snap.G, &c, snap.NumColors); err != nil {
		t.Fatalf("version %d: %v", snap.Version, err)
	}
}

// A mutation stream under faultline plans: crash/drop/corrupt faults hit the
// maintenance rounds themselves (the NetHook seam installs a plan on every
// maintenance network). The valid-or-unhealthy contract: after every Apply,
// either the store is healthy with a verified coloring, or it is unhealthy
// and LastGood still serves the pre-batch verified snapshot — a reader can
// never observe a maintained-but-invalid coloring.
func TestChaosMaintenanceNeverServesInvalid(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	base := graph.ErdosRenyi(250, 0.025, rng)

	var mu sync.Mutex
	var cfg *faults.Config // nil = fault-free maintenance
	hook := func(net *local.Network) {
		mu.Lock()
		c := cfg
		mu.Unlock()
		if c == nil {
			return
		}
		p, err := faults.NewPlan(net.Graph(), *c)
		if err != nil {
			t.Errorf("fault plan: %v", err)
			return
		}
		net.SetFaults(p)
	}
	setFaults := func(c *faults.Config) { mu.Lock(); cfg = c; mu.Unlock() }

	l, err := New(base, Options{NetHook: hook})
	if err != nil {
		t.Fatal(err)
	}
	failures, healed := 0, 0
	for step := 0; step < 60; step++ {
		// Alternate fault pressure: heavy crash/drop/corrupt plans on most
		// steps, clean windows so the store can heal.
		if step%5 == 4 {
			setFaults(nil)
		} else {
			setFaults(&faults.Config{
				Seed: int64(step), CrashRate: 0.02, DropRate: 0.05, CorruptRate: 0.02,
			})
		}
		g, _ := l.Snapshot()
		var batch []Mutation
		for len(batch) == 0 {
			u, v := rng.Intn(g.G.N()), rng.Intn(g.G.N())
			if u == v {
				continue
			}
			if g.G.HasEdge(u, v) {
				batch = []Mutation{{Op: OpRemoveEdge, U: u, V: v}}
			} else {
				batch = []Mutation{{Op: OpAddEdge, U: u, V: v}}
			}
		}
		prevGood := l.LastGood()
		_, err := l.Apply(batch)
		snap, ok := l.Snapshot()
		if err != nil {
			failures++
			if ok {
				t.Fatalf("step %d: Apply failed but store reports healthy", step)
			}
			lg := l.LastGood()
			if lg == nil || lg.Version != prevGood.Version {
				t.Fatalf("step %d: failure advanced last-known-good", step)
			}
			verifySnap(t, lg)
			continue
		}
		if !ok {
			t.Fatalf("step %d: Apply succeeded but store unhealthy", step)
		}
		if failures > healed {
			healed = failures
		}
		verifySnap(t, snap)
		verifySnap(t, l.LastGood())
	}
	// The plans above are aggressive enough that at least one maintenance
	// must have failed, and the clean windows must have healed it again.
	if failures == 0 {
		t.Fatal("chaos plans never failed a maintenance — coverage lost")
	}
	setFaults(nil)
	if _, err := l.Recompute(); err != nil {
		t.Fatal(err)
	}
	if snap, ok := l.Snapshot(); !ok {
		t.Fatal("fault-free recompute did not heal the store")
	} else {
		verifySnap(t, snap)
	}
	if st := l.Stats(); st.Failures == 0 || st.Fallbacks == 0 {
		t.Fatalf("stats did not record the chaos: %+v", st)
	}
}

// Concurrent mutation batches on distinct stores plus interleaved reads:
// must be race-detector clean and every store must end healthy and valid.
func TestConcurrentStoresAndReaders(t *testing.T) {
	const stores, batches = 4, 25
	lives := make([]*Live, stores)
	for i := range lives {
		g := graph.ErdosRenyi(150, 0.03, rand.New(rand.NewSource(int64(i))))
		l, err := New(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		lives[i] = l
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for _, l := range lives {
		wg.Add(1)
		go func(l *Live) { // reader: snapshots and stats interleaved with applies
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if snap, ok := l.Snapshot(); ok && len(snap.Colors) != snap.G.N() {
					t.Error("torn snapshot")
					return
				}
				l.Stats()
				l.Info()
			}
		}(l)
	}
	var mwg sync.WaitGroup
	for i, l := range lives {
		mwg.Add(1)
		go func(i int, l *Live) { // writer: one serialized mutation stream per store
			defer mwg.Done()
			rng := rand.New(rand.NewSource(int64(100 + i)))
			for b := 0; b < batches; b++ {
				snap, _ := l.Snapshot()
				u, v := rng.Intn(snap.G.N()), rng.Intn(snap.G.N())
				if u == v {
					continue
				}
				var m Mutation
				if snap.G.HasEdge(u, v) {
					m = Mutation{Op: OpRemoveEdge, U: u, V: v}
				} else {
					m = Mutation{Op: OpAddEdge, U: u, V: v}
				}
				if _, err := l.Apply([]Mutation{m}); err != nil {
					t.Errorf("store %d: %v", i, err)
					return
				}
			}
		}(i, l)
	}
	mwg.Wait()
	close(stop)
	wg.Wait()
	for i, l := range lives {
		snap, ok := l.Snapshot()
		if !ok {
			t.Fatalf("store %d unhealthy", i)
		}
		verifySnap(t, snap)
	}
}
