// Package arena provides a reset-and-reuse scratch allocator for the
// per-phase working arrays of the coloring pipelines. The dense phases (ACD,
// classification, list building, repair planning) each need a handful of
// n-sized slices per call; allocating them with make on every call dominated
// allocation profiles and kept the GC busy during benchmark runs. An Arena
// hands out zeroed slices carved from growing slabs; Reset rewinds all slabs
// at once so the next phase reuses the same memory.
//
// Ownership rules (see DESIGN.md §14):
//
//   - A slice obtained from an Arena is valid until the next Reset of that
//     arena; callers must not retain it beyond the phase that took it.
//   - Slices are zeroed on Take, matching make semantics, so adopting the
//     arena never changes behavior — only allocation counts.
//   - Arenas are not safe for concurrent use; one arena belongs to one
//     running pipeline (the round engine's worker goroutines never allocate
//     from it directly).
//   - Results that outlive the run (colorings, ACD structures, witnesses)
//     are allocated with make as before; the arena is for scratch only.
//
// Get/Put recycle warmed arenas through a global pool so steady-state
// service traffic stops growing slabs entirely.
package arena

import "sync"

// slab is one typed bump allocator.
type slab[T any] struct {
	buf []T
	off int
}

// take returns a zeroed slice of length n from the slab, growing it as
// needed. Growth abandons the current buffer to the GC and starts a larger
// one; steady-state callers hit the fast path with no allocation.
func (s *slab[T]) take(n int) []T {
	if s.off+n > len(s.buf) {
		size := 2 * len(s.buf)
		if size < s.off+n {
			size = s.off + n
		}
		if size < 1024 {
			size = 1024
		}
		fresh := make([]T, size)
		// Retain already-handed-out prefixes by keeping the old buffer
		// referenced from the returned slices only; the slab moves on.
		s.buf = fresh
		s.off = 0
	}
	out := s.buf[s.off : s.off+n : s.off+n]
	s.off += n
	clear(out)
	return out
}

func (s *slab[T]) reset() { s.off = 0 }

// Arena is a bundle of typed slabs covering the element types the hot paths
// need. The zero value is ready to use.
type Arena struct {
	ints  slab[int]
	i32s  slab[int32]
	bools slab[bool]
	words slab[uint64]
}

// Reset rewinds every slab; all previously taken slices become invalid.
func (a *Arena) Reset() {
	a.ints.reset()
	a.i32s.reset()
	a.bools.reset()
	a.words.reset()
}

// Ints returns a zeroed []int of length n.
func (a *Arena) Ints(n int) []int { return a.ints.take(n) }

// IntsFill returns an []int of length n with every entry set to v (the
// common "-1 means unset" initialization).
func (a *Arena) IntsFill(n, v int) []int {
	s := a.ints.take(n)
	if v != 0 {
		for i := range s {
			s[i] = v
		}
	}
	return s
}

// Int32s returns a zeroed []int32 of length n.
func (a *Arena) Int32s(n int) []int32 { return a.i32s.take(n) }

// Int32sFill returns an []int32 of length n with every entry set to v.
func (a *Arena) Int32sFill(n int, v int32) []int32 {
	s := a.i32s.take(n)
	if v != 0 {
		for i := range s {
			s[i] = v
		}
	}
	return s
}

// Bools returns a zeroed []bool of length n.
func (a *Arena) Bools(n int) []bool { return a.bools.take(n) }

// Words returns a zeroed []uint64 of length n.
func (a *Arena) Words(n int) []uint64 { return a.words.take(n) }

var pool = sync.Pool{New: func() any { return new(Arena) }}

// Get returns a warmed arena from the global pool.
func Get() *Arena { return pool.Get().(*Arena) }

// Put resets a and returns it to the pool.
func Put(a *Arena) {
	a.Reset()
	pool.Put(a)
}
