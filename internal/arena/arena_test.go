package arena

import "testing"

func TestTakeZeroedAndDisjoint(t *testing.T) {
	var a Arena
	x := a.Ints(8)
	y := a.Ints(8)
	for i := range x {
		x[i] = i + 1
	}
	for i, v := range y {
		if v != 0 {
			t.Fatalf("y[%d] = %d, want 0", i, v)
		}
	}
	y[0] = 99
	if x[0] != 1 {
		t.Fatalf("slices overlap: x[0] = %d", x[0])
	}
}

func TestResetReusesAndRezeroes(t *testing.T) {
	var a Arena
	x := a.Int32s(16)
	for i := range x {
		x[i] = -1
	}
	a.Reset()
	y := a.Int32s(16)
	if &x[0] != &y[0] {
		t.Fatalf("reset did not reuse the slab")
	}
	for i, v := range y {
		if v != 0 {
			t.Fatalf("y[%d] = %d after reset, want 0", i, v)
		}
	}
}

func TestFillHelpers(t *testing.T) {
	var a Arena
	s := a.IntsFill(5, -1)
	for i, v := range s {
		if v != -1 {
			t.Fatalf("IntsFill[%d] = %d", i, v)
		}
	}
	q := a.Int32sFill(5, 7)
	for i, v := range q {
		if v != 7 {
			t.Fatalf("Int32sFill[%d] = %d", i, v)
		}
	}
}

func TestGrowthKeepsHandedOutSlices(t *testing.T) {
	var a Arena
	x := a.Bools(4)
	x[3] = true
	// Force growth well past the initial slab.
	_ = a.Bools(1 << 20)
	if !x[3] {
		t.Fatal("growth corrupted a handed-out slice")
	}
}

func TestPoolRoundTrip(t *testing.T) {
	a := Get()
	s := a.Words(32)
	s[0] = 1
	Put(a)
	b := Get()
	w := b.Words(32)
	if w[0] != 0 {
		t.Fatalf("pooled arena returned dirty memory: %d", w[0])
	}
	Put(b)
}
