// Package sinkless implements the sinkless orientation problem discussed in
// the paper's technical overview (Section 1.1): orient all edges so that
// every vertex of degree at least 3 has an outgoing edge. The problem has
// deterministic complexity Θ(log n) and is the conceptual ancestor of
// hyperedge grabbing, so the implementation simply reduces to internal/heg:
// each degree-≥3 vertex must grab a private incident edge, which it orients
// outward (rank 2, minimum degree ≥ 3 > 1.1·2).
//
// OrientTwoOut implements the paper's vertex-splitting trick: splitting
// every vertex of degree ≥ 6 into two virtual halves guarantees two
// outgoing edges per such vertex — exactly the device Algorithm 2 uses at
// clique granularity to reserve two slack-triad edges per clique.
package sinkless

import (
	"fmt"

	"deltacoloring/internal/graph"
	"deltacoloring/internal/heg"
	"deltacoloring/internal/local"
)

// Orientation assigns each edge (by index into the edge list) an oriented
// direction: Away[e] is the tail vertex (edge points from Away[e] to the
// other endpoint).
type Orientation struct {
	Edges []graph.Edge
	Tail  []int
}

// Orient computes a sinkless orientation of net's graph. Vertices of degree
// less than 3 may be sinks, per the problem definition.
func Orient(net *local.Network) (*Orientation, error) {
	g := net.Graph()
	edges := g.Edges()
	hyper := make([][]int, len(edges))
	for i, e := range edges {
		var verts []int
		if g.Degree(e.U) >= 3 {
			verts = append(verts, e.U)
		}
		if g.Degree(e.V) >= 3 {
			verts = append(verts, e.V)
		}
		if len(verts) == 0 {
			verts = []int{e.U} // placeholder member; rank stays <= 2
		}
		hyper[i] = verts
	}
	// Restrict the HEG instance to the participating vertices.
	participating := make([]bool, g.N())
	for v := 0; v < g.N(); v++ {
		participating[v] = g.Degree(v) >= 3
	}
	grab, err := solveRestricted(net, g.N(), participating, hyper)
	if err != nil {
		return nil, fmt.Errorf("sinkless: %w", err)
	}
	o := &Orientation{Edges: edges, Tail: make([]int, len(edges))}
	for i, e := range edges {
		// Default: orient toward the smaller endpoint.
		o.Tail[i] = e.V
		if g.ID(e.U) > g.ID(e.V) {
			o.Tail[i] = e.U
		}
	}
	for v, e := range grab {
		if e >= 0 {
			o.Tail[e] = v
		}
	}
	return o, nil
}

// solveRestricted runs HEG over only the participating vertices by
// compacting indices.
func solveRestricted(net *local.Network, n int, participating []bool, edges [][]int) ([]int, error) {
	compact := make([]int, n)
	var back []int
	for v := 0; v < n; v++ {
		if participating[v] {
			compact[v] = len(back)
			back = append(back, v)
		} else {
			compact[v] = -1
		}
	}
	sub := make([][]int, 0, len(edges))
	edgeBack := make([]int, 0, len(edges))
	for i, verts := range edges {
		var keep []int
		for _, v := range verts {
			if participating[v] {
				keep = append(keep, compact[v])
			}
		}
		if len(keep) > 0 {
			sub = append(sub, keep)
			edgeBack = append(edgeBack, i)
		}
	}
	grab := make([]int, n)
	for v := range grab {
		grab[v] = -1
	}
	if len(back) == 0 {
		return grab, nil
	}
	h, err := heg.NewHypergraph(len(back), sub)
	if err != nil {
		return nil, err
	}
	sol, _, err := heg.Solve(net, h)
	if err != nil {
		return nil, err
	}
	for cv, e := range sol {
		grab[back[cv]] = edgeBack[e]
	}
	return grab, nil
}

// Verify checks the sinkless property: every vertex of degree >= 3 has an
// outgoing edge and every tail is an endpoint.
func Verify(g *graph.Graph, o *Orientation) error {
	if len(o.Tail) != len(o.Edges) {
		return fmt.Errorf("sinkless: %d tails for %d edges", len(o.Tail), len(o.Edges))
	}
	hasOut := make([]bool, g.N())
	for i, e := range o.Edges {
		t := o.Tail[i]
		if t != e.U && t != e.V {
			return fmt.Errorf("sinkless: edge (%d,%d): tail %d is not an endpoint", e.U, e.V, t)
		}
		hasOut[t] = true
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) >= 3 && !hasOut[v] {
			return fmt.Errorf("sinkless: vertex %d: sink at degree %d >= 3", v, g.Degree(v))
		}
	}
	return nil
}

// OrientTwoOut orients the edges so that every vertex of degree >= 6 has at
// least two outgoing edges, via the splitting trick: each such vertex is
// represented by two virtual halves, each owning half its incident edges
// and each grabbing one edge to orient outward.
func OrientTwoOut(net *local.Network) (*Orientation, error) {
	return OrientKOut(net, 2)
}

// OrientKOut generalizes the splitting trick: every vertex of degree at
// least 3k is split into k virtual parts, each owning a 1/k share of its
// incident edges (so each part has degree >= 3) and each grabbing one edge
// to orient outward — k guaranteed out-edges per such vertex. Vertices of
// smaller degree do not participate.
func OrientKOut(net *local.Network, k int) (*Orientation, error) {
	if k < 1 {
		return nil, fmt.Errorf("sinkless: k must be >= 1, got %d", k)
	}
	g := net.Graph()
	edges := g.Edges()
	minDeg := 3 * k
	participate := make([]bool, k*g.N())
	seenAt := make([]int, g.N()) // incidence counter per vertex
	hyper := make([][]int, len(edges))
	edgeIdx := make(map[graph.Edge]int, len(edges))
	for i, e := range edges {
		edgeIdx[e] = i
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) < minDeg {
			continue
		}
		for j := 0; j < k; j++ {
			participate[k*v+j] = true
		}
	}
	for v := 0; v < g.N(); v++ {
		for _, nw := range g.Neighbors(v) {
			w := int(nw)
			if v > w {
				continue
			}
			i := edgeIdx[graph.Edge{U: v, V: w}]
			for _, end := range [2]int{v, w} {
				if g.Degree(end) >= minDeg {
					part := k*end + seenAt[end]%k
					hyper[i] = append(hyper[i], part)
				}
				seenAt[end]++
			}
		}
	}
	grab, err := solveRestricted(net, k*g.N(), participate, hyper)
	if err != nil {
		return nil, fmt.Errorf("sinkless: %d-out: %w", k, err)
	}
	o := &Orientation{Edges: edges, Tail: make([]int, len(edges))}
	for i, e := range edges {
		o.Tail[i] = e.V
		if g.ID(e.U) > g.ID(e.V) {
			o.Tail[i] = e.U
		}
	}
	for part, e := range grab {
		if e >= 0 {
			o.Tail[e] = part / k
		}
	}
	return o, nil
}

// VerifyKOut checks that every vertex of degree >= 3k has at least k
// outgoing edges.
func VerifyKOut(g *graph.Graph, o *Orientation, k int) error {
	if len(o.Tail) != len(o.Edges) {
		return fmt.Errorf("sinkless: %d tails for %d edges", len(o.Tail), len(o.Edges))
	}
	outs := make([]int, g.N())
	for i, e := range o.Edges {
		t := o.Tail[i]
		if t != e.U && t != e.V {
			return fmt.Errorf("sinkless: edge (%d,%d): tail %d is not an endpoint", e.U, e.V, t)
		}
		outs[t]++
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) >= 3*k && outs[v] < k {
			return fmt.Errorf("sinkless: vertex %d: %d outgoing edges at degree %d, want >= %d",
				v, outs[v], g.Degree(v), k)
		}
	}
	return nil
}

// VerifyTwoOut checks that every vertex of degree >= 6 has at least two
// outgoing edges.
func VerifyTwoOut(g *graph.Graph, o *Orientation) error {
	return VerifyKOut(g, o, 2)
}
