package sinkless

import (
	"math/rand"
	"testing"
	"testing/quick"

	"deltacoloring/internal/graph"
	"deltacoloring/internal/local"
)

func TestOrientRegularGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"K4", graph.Complete(4)},
		{"3regular", graph.RandomRegular(40, 3, rng)},
		{"5regular", graph.RandomRegular(30, 5, rng)},
		{"Torus", graph.Torus(5, 5)}, // degree 4
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			net := local.New(c.g)
			o, err := Orient(net)
			if err != nil {
				t.Fatalf("Orient: %v", err)
			}
			if err := Verify(c.g, o); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestOrientLowDegreeVerticesMayBeSinks(t *testing.T) {
	// A cycle has max degree 2; any orientation is sinkless by definition.
	g := graph.Cycle(7)
	o, err := Orient(local.New(g))
	if err != nil {
		t.Fatalf("Orient: %v", err)
	}
	if err := Verify(g, o); err != nil {
		t.Fatal(err)
	}
}

func TestOrientMixedDegrees(t *testing.T) {
	// K4 with a pendant path: the path vertices have degree <= 2.
	b := graph.NewBuilder(7)
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			b.AddEdge(u, v)
		}
	}
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	b.AddEdge(5, 6)
	g := b.MustBuild()
	o, err := Orient(local.New(g))
	if err != nil {
		t.Fatalf("Orient: %v", err)
	}
	if err := Verify(g, o); err != nil {
		t.Fatal(err)
	}
}

func TestOrientTwoOut(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for _, d := range []int{6, 8, 10} {
		g := graph.RandomRegular(40, d, rng)
		o, err := OrientTwoOut(local.New(g))
		if err != nil {
			t.Fatalf("d=%d: OrientTwoOut: %v", d, err)
		}
		if err := VerifyTwoOut(g, o); err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if err := Verify(g, o); err != nil {
			t.Fatalf("d=%d: two-out orientation not sinkless: %v", d, err)
		}
	}
}

func TestVerifyCatchesSink(t *testing.T) {
	g := graph.Complete(4)
	o := &Orientation{Edges: g.Edges(), Tail: make([]int, g.M())}
	// Orient everything away from vertex 0's perspective: tails all set to
	// the other endpoint, making 3 a potential sink.
	for i, e := range o.Edges {
		o.Tail[i] = e.U // tails: 0,0,0,1,1,2 -> vertex 3 is a sink
	}
	if err := Verify(g, o); err == nil {
		t.Fatal("sink not detected")
	}
}

func TestVerifyCatchesBadTail(t *testing.T) {
	g := graph.Path(3)
	o := &Orientation{Edges: g.Edges(), Tail: []int{2, 1}}
	if err := Verify(g, o); err == nil {
		t.Fatal("non-endpoint tail accepted")
	}
}

func TestOrientRoundsLogarithmic(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{100, 1000} {
		g := graph.RandomRegular(n, 3, rng)
		net := local.New(g)
		if _, err := Orient(net); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if net.Rounds() > 300 {
			t.Fatalf("n=%d took %d rounds", n, net.Rounds())
		}
	}
}

func TestOrientProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + 2*rng.Intn(30)
		d := 3 + rng.Intn(3)
		if n*d%2 == 1 {
			n++
		}
		g := graph.RandomRegular(n, d, rng)
		o, err := Orient(local.New(g))
		if err != nil {
			return false
		}
		return Verify(g, o) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestOrientKOut(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for _, k := range []int{2, 3, 4} {
		g := graph.RandomRegular(60, 3*k+1, rng)
		o, err := OrientKOut(local.New(g), k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if err := VerifyKOut(g, o, k); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
}

// TestVerifyKOutBranches exercises every rejection branch of VerifyKOut:
// tail/edge length mismatch, a tail that is not an endpoint, and a vertex of
// degree >= 3k with fewer than k outgoing edges.
func TestVerifyKOutBranches(t *testing.T) {
	g := graph.Complete(7) // degree 6 = 3k for k=2: everyone participates
	o, err := OrientKOut(local.New(g), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyKOut(g, o, 2); err != nil {
		t.Fatalf("valid orientation rejected: %v", err)
	}

	short := &Orientation{Edges: o.Edges, Tail: o.Tail[:len(o.Tail)-1]}
	if err := VerifyKOut(g, short, 2); err == nil {
		t.Fatal("tail/edge length mismatch accepted")
	}

	bad := &Orientation{Edges: o.Edges, Tail: append([]int(nil), o.Tail...)}
	bad.Tail[0] = 6
	if bad.Edges[0].U == 6 || bad.Edges[0].V == 6 {
		bad.Tail[0] = 5
	}
	if err := VerifyKOut(g, bad, 2); err == nil {
		t.Fatal("non-endpoint tail accepted")
	}

	// Concentrate every tail on vertex 0: every other vertex has out-degree
	// <= 1 < k while keeping degree 6 >= 3k.
	starved := &Orientation{Edges: o.Edges, Tail: make([]int, len(o.Edges))}
	for i, e := range o.Edges {
		if e.U == 0 || e.V == 0 {
			starved.Tail[i] = 0
		} else {
			starved.Tail[i] = e.U
		}
	}
	if err := VerifyKOut(g, starved, 2); err == nil {
		t.Fatal("under-k vertex accepted")
	}

	// VerifyTwoOut is the k=2 specialization and must agree.
	if err := VerifyTwoOut(g, o); err != nil {
		t.Fatalf("VerifyTwoOut rejected a valid 2-out orientation: %v", err)
	}
	if err := VerifyTwoOut(g, starved); err == nil {
		t.Fatal("VerifyTwoOut accepted an under-2 orientation")
	}
}

func TestOrientKOutRejectsBadK(t *testing.T) {
	if _, err := OrientKOut(local.New(graph.Complete(4)), 0); err == nil {
		t.Fatal("accepted k=0")
	}
}

func TestOrientKOutLowDegreeSkipped(t *testing.T) {
	// Degree 5 < 3k for k=2: nobody participates, default orientation.
	g := graph.Complete(6)
	o, err := OrientKOut(local.New(g), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyKOut(g, o, 2); err != nil {
		t.Fatal(err) // vacuous: no vertex reaches degree 6
	}
}
