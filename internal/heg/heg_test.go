package heg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"deltacoloring/internal/graph"
	"deltacoloring/internal/local"
)

func dummyNet() *local.Network { return local.New(graph.Path(2)) }

func TestNewHypergraphValidation(t *testing.T) {
	if _, err := NewHypergraph(3, [][]int{{}}); err == nil {
		t.Fatal("accepted empty hyperedge")
	}
	if _, err := NewHypergraph(3, [][]int{{0, 3}}); err == nil {
		t.Fatal("accepted out-of-range vertex")
	}
	h, err := NewHypergraph(3, [][]int{{2, 0, 2, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Edges[0]) != 3 || h.Edges[0][0] != 0 {
		t.Fatalf("normalization wrong: %v", h.Edges[0])
	}
}

func TestRankAndDegrees(t *testing.T) {
	h, err := NewHypergraph(4, [][]int{{0, 1}, {0, 1, 2}, {3}})
	if err != nil {
		t.Fatal(err)
	}
	if h.Rank() != 3 {
		t.Fatalf("rank = %d, want 3", h.Rank())
	}
	if h.MinDegree() != 1 {
		t.Fatalf("min degree = %d, want 1", h.MinDegree())
	}
	deg := h.Degrees()
	want := []int{2, 2, 1, 1}
	for v := range want {
		if deg[v] != want[v] {
			t.Fatalf("degrees = %v, want %v", deg, want)
		}
	}
}

func TestSolveSimpleInstance(t *testing.T) {
	// 3 vertices, 4 edges, plenty of slack.
	h, err := NewHypergraph(3, [][]int{{0, 1}, {1, 2}, {0, 2}, {0, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	grab, _, err := Solve(dummyNet(), h)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if err := Verify(h, grab); err != nil {
		t.Fatal(err)
	}
}

func TestSolveNeedsAugmentation(t *testing.T) {
	// Vertex 0 is incident only to edges that greedy auctions tend to hand
	// to lower-ID... build a chain where augmentation is forced:
	// e0={0,1}, e1={1,2}, e2={2}, and vertex 0 only sees e0.
	// If 0 doesn't win e0 initially, it must steal it and push 1 to e1, etc.
	h, err := NewHypergraph(3, [][]int{{0, 1}, {1, 2}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	grab, _, err := Solve(dummyNet(), h)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if err := Verify(h, grab); err != nil {
		t.Fatal(err)
	}
}

func TestSolveInfeasible(t *testing.T) {
	// Two vertices, one shared edge: no SDR.
	h, err := NewHypergraph(2, [][]int{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Solve(dummyNet(), h); err == nil {
		t.Fatal("accepted infeasible instance")
	}
}

func TestSolveIsolatedVertex(t *testing.T) {
	h, err := NewHypergraph(2, [][]int{{0}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Solve(dummyNet(), h); err == nil {
		t.Fatal("accepted vertex with no incident edge")
	}
}

func TestSolveEmpty(t *testing.T) {
	h, err := NewHypergraph(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	grab, _, err := Solve(dummyNet(), h)
	if err != nil || len(grab) != 0 {
		t.Fatalf("empty instance: %v %v", grab, err)
	}
}

// randomInstance builds a hypergraph with n vertices, minimum degree >= del
// and rank <= r by giving each vertex `del` memberships in random edges.
func randomInstance(n, numEdges, del, r int, rng *rand.Rand) *Hypergraph {
	edges := make([][]int, numEdges)
	for v := 0; v < n; v++ {
		placed := 0
		for tries := 0; placed < del && tries < 10000; tries++ {
			e := rng.Intn(numEdges)
			if len(edges[e]) < r && !contains(edges[e], v) {
				edges[e] = append(edges[e], v)
				placed++
			}
		}
	}
	var nonEmpty [][]int
	for _, e := range edges {
		if len(e) > 0 {
			nonEmpty = append(nonEmpty, e)
		}
	}
	h, err := NewHypergraph(n, nonEmpty)
	if err != nil {
		panic(err)
	}
	return h
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func TestSolveRandomSlackInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		n := 50 + rng.Intn(100)
		r := 3 + rng.Intn(4)
		del := int(1.3*float64(r)) + 1
		h := randomInstance(n, 2*n, del, r, rng)
		if h.MinDegree() < del {
			continue // placement failed to reach the degree; skip
		}
		grab, st, err := Solve(dummyNet(), h)
		if err != nil {
			t.Fatalf("trial %d: Solve: %v (stats %+v)", trial, err, st)
		}
		if err := Verify(h, grab); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestSolveRoundsLogarithmic(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	for _, n := range []int{200, 2000} {
		h := randomInstance(n, 2*n, 5, 4, rng)
		net := dummyNet()
		grab, _, err := Solve(net, h)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := Verify(h, grab); err != nil {
			t.Fatal(err)
		}
		if net.Rounds() > 200 {
			t.Fatalf("n=%d: %d rounds, expected logarithmic scale", n, net.Rounds())
		}
	}
}

func TestVerifyCatchesViolations(t *testing.T) {
	h, _ := NewHypergraph(3, [][]int{{0, 1}, {1, 2}, {0, 2}})
	if err := Verify(h, []int{0, 1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := Verify(h, []int{0, 0, 1}); err == nil {
		t.Fatal("double grab accepted")
	}
	if err := Verify(h, []int{1, 0, 2}); err == nil {
		t.Fatal("non-incident grab accepted (vertex 0 not in edge 1)")
	}
	if err := Verify(h, []int{0, 1, 2}); err != nil {
		t.Fatalf("valid solution rejected: %v", err)
	}
	if err := Verify(h, []int{-1, 1, 2}); err == nil {
		t.Fatal("negative grab accepted")
	}
}

// Property: on instances with min degree > 1.1*rank (Lemma 5's regime),
// Solve always succeeds and verifies.
func TestSolveLemma5RegimeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(60)
		r := 2 + rng.Intn(4)
		del := int(1.1*float64(r)) + 2
		h := randomInstance(n, 3*n, del, r, rng)
		if h.MinDegree() <= int(1.1*float64(h.Rank())) {
			return true // generator fell short of the regime; vacuous
		}
		grab, _, err := Solve(dummyNet(), h)
		if err != nil {
			return false
		}
		return Verify(h, grab) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
