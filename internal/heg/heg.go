// Package heg implements the hyperedge grabbing problem (HEG) of [BMN+25],
// the paper's Lemma 5 substrate: in a multihypergraph with maximum rank r
// and minimum degree δ > r, every vertex must grab one of its incident
// hyperedges such that no hyperedge is grabbed twice (a system of distinct
// representatives, whose existence follows from Hall's theorem).
//
// The solver runs two stages.
//
// Stage A — proposal auction (synchronous rounds): every free vertex
// proposes to its least-contended unclaimed incident hyperedge (ties by
// edge index); every unclaimed hyperedge grants itself to its smallest-ID
// proposer. Since a hyperedge absorbs at most r proposals, at least a 1/r
// fraction of free vertices succeeds per round while unclaimed incident
// edges remain.
//
// Stage B — augmentation waves: a vertex whose incident edges are all
// claimed steals along an alternating path (vertex → claimed edge → owner →
// another edge → ...) ending at an unclaimed edge. When δ ≥ (1+γ)r the
// standard expansion argument bounds such paths by O(log_{δ/r} n) — the same
// locality that powers [BMN+25]'s O(log_{δ/r} n) algorithm — and each wave
// applies a maximal set of disjoint augmenting paths in parallel, charging
// the maximum path length. DESIGN.md records this substitution.
package heg

import (
	"fmt"
	"sort"

	"deltacoloring/internal/local"
)

// Hypergraph is a multihypergraph on vertices [0, n). Parallel hyperedges
// and hyperedges of rank 1 are allowed; empty hyperedges are not.
type Hypergraph struct {
	// NumVertices is n.
	NumVertices int
	// Edges lists each hyperedge's vertices (sorted, duplicate-free).
	Edges [][]int
}

// NewHypergraph validates and normalizes the edge lists.
func NewHypergraph(n int, edges [][]int) (*Hypergraph, error) {
	h := &Hypergraph{NumVertices: n, Edges: make([][]int, len(edges))}
	for i, e := range edges {
		if len(e) == 0 {
			return nil, fmt.Errorf("heg: hyperedge %d is empty", i)
		}
		c := append([]int(nil), e...)
		sort.Ints(c)
		out := c[:0]
		prev := -1
		for _, v := range c {
			if v < 0 || v >= n {
				return nil, fmt.Errorf("heg: hyperedge %d contains out-of-range vertex %d", i, v)
			}
			if v != prev {
				out = append(out, v)
				prev = v
			}
		}
		h.Edges[i] = out
	}
	return h, nil
}

// Rank returns the maximum hyperedge size (0 for no edges).
func (h *Hypergraph) Rank() int {
	r := 0
	for _, e := range h.Edges {
		if len(e) > r {
			r = len(e)
		}
	}
	return r
}

// Degrees returns the per-vertex incidence counts.
func (h *Hypergraph) Degrees() []int {
	deg := make([]int, h.NumVertices)
	for _, e := range h.Edges {
		for _, v := range e {
			deg[v]++
		}
	}
	return deg
}

// MinDegree returns the minimum vertex degree (0 for no vertices).
func (h *Hypergraph) MinDegree() int {
	deg := h.Degrees()
	if len(deg) == 0 {
		return 0
	}
	m := deg[0]
	for _, d := range deg {
		if d < m {
			m = d
		}
	}
	return m
}

// Stats reports how the solver converged; consumed by the E5 bench.
type Stats struct {
	// ProposalRounds is the number of Stage-A auction rounds.
	ProposalRounds int
	// GrabbedByProposal counts vertices resolved in Stage A.
	GrabbedByProposal int
	// AugmentWaves is the number of Stage-B waves.
	AugmentWaves int
	// Augmented counts vertices resolved by augmentation.
	Augmented int
	// MaxPathLen is the longest augmenting path (in vertex-edge hops).
	MaxPathLen int
}

// Solve computes a grab assignment: grab[v] is the hyperedge index grabbed
// by v, with no hyperedge grabbed twice. Rounds are charged on net (wrap a
// virtual network when the hypergraph is simulated on a real graph). It
// fails if no system of distinct representatives exists.
func Solve(net *local.Network, h *Hypergraph) ([]int, Stats, error) {
	var st Stats
	n := h.NumVertices
	grab := make([]int, n)
	for v := range grab {
		grab[v] = -1
	}
	if n == 0 {
		return grab, st, nil
	}
	incident := make([][]int, n)
	for e, verts := range h.Edges {
		for _, v := range verts {
			incident[v] = append(incident[v], e)
		}
	}
	for v := 0; v < n; v++ {
		if len(incident[v]) == 0 {
			return nil, st, fmt.Errorf("heg: vertex %d has no incident hyperedge", v)
		}
	}
	owner := make([]int, len(h.Edges))
	for e := range owner {
		owner[e] = -1
	}

	// Stage A: proposal auction. Cap rounds at ~4·log2 n; leftover vertices
	// go to Stage B.
	maxRounds := 4 * ceilLog2(n+1)
	contention := make([]int, len(h.Edges))
	for round := 0; round < maxRounds; round++ {
		free := 0
		proposals := make(map[int][]int) // edge -> proposing vertices
		for v := 0; v < n; v++ {
			if grab[v] >= 0 {
				continue
			}
			free++
			best := -1
			bestContention := 1 << 30
			for _, e := range incident[v] {
				if owner[e] >= 0 {
					continue
				}
				if contention[e] < bestContention || (contention[e] == bestContention && e < best) {
					best = e
					bestContention = contention[e]
				}
			}
			if best >= 0 {
				proposals[best] = append(proposals[best], v)
			}
		}
		if free == 0 {
			break
		}
		if len(proposals) == 0 {
			break // all free vertices are stuck: augmentation takes over
		}
		net.Charge(2) // propose + grant
		st.ProposalRounds++
		for e := range contention {
			contention[e] = len(proposals[e])
		}
		granted := 0
		for e, vs := range proposals {
			winner := vs[0]
			for _, v := range vs[1:] {
				if v < winner {
					winner = v
				}
			}
			owner[e] = winner
			grab[winner] = e
			granted++
		}
		st.GrabbedByProposal += granted
		if granted == 0 {
			break
		}
	}

	// Stage B: augmentation waves for stuck vertices.
	for wave := 0; ; wave++ {
		var stuck []int
		for v := 0; v < n; v++ {
			if grab[v] < 0 {
				stuck = append(stuck, v)
			}
		}
		if len(stuck) == 0 {
			break
		}
		if wave > n {
			return nil, st, fmt.Errorf("heg: augmentation failed to converge")
		}
		st.AugmentWaves++
		waveMax := 0
		touched := make([]bool, len(h.Edges))
		touchedVert := make([]bool, n)
		progressed := false
		for _, v := range stuck {
			path, ok := augmentingPath(h, incident, owner, v, touched, touchedVert)
			if !ok {
				continue // path overlaps this wave's edits; retry next wave
			}
			applyAugmentation(grab, owner, v, path)
			touchedVert[v] = true
			for _, e := range path {
				touched[e] = true
				if o := owner[e]; o >= 0 {
					touchedVert[o] = true
				}
			}
			if len(path) > waveMax {
				waveMax = len(path)
			}
			st.Augmented++
			progressed = true
		}
		if !progressed {
			return nil, st, fmt.Errorf("heg: no augmenting path for %d stuck vertices (no SDR; need min degree > rank)", len(stuck))
		}
		if waveMax > st.MaxPathLen {
			st.MaxPathLen = waveMax
		}
		net.Charge(2*waveMax + 2)
	}
	return grab, st, nil
}

// augmentingPath finds an alternating path from free vertex v0 to an
// unclaimed hyperedge, avoiding hyperedges already touched this wave so
// that parallel augmentations stay disjoint. It returns the edge sequence
// e1, e2, ..., ek where v0 takes e1, e1's old owner takes e2, and so on,
// ek being unclaimed.
func augmentingPath(h *Hypergraph, incident [][]int, owner []int, v0 int, touched, touchedVert []bool) ([]int, bool) {
	type crumb struct {
		edge int
		prev int // index into crumbs, -1 for roots
	}
	var crumbs []crumb
	seenEdge := make(map[int]bool)
	seenVert := map[int]bool{v0: true}
	frontier := []int{-1} // crumb indices; -1 stands for the root vertex v0
	vertexOf := func(ci int) int {
		if ci == -1 {
			return v0
		}
		return owner[crumbs[ci].edge]
	}
	for len(frontier) > 0 {
		var next []int
		for _, ci := range frontier {
			v := vertexOf(ci)
			for _, e := range incident[v] {
				if seenEdge[e] || touched[e] {
					continue
				}
				seenEdge[e] = true
				crumbs = append(crumbs, crumb{edge: e, prev: ci})
				idx := len(crumbs) - 1
				if owner[e] < 0 {
					// Unclaimed: unwind the path.
					var path []int
					for i := idx; i != -1; i = crumbs[i].prev {
						path = append(path, crumbs[i].edge)
					}
					// Reverse to v0-first order.
					for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
						path[l], path[r] = path[r], path[l]
					}
					return path, true
				}
				if w := owner[e]; !seenVert[w] && !touchedVert[w] {
					seenVert[w] = true
					next = append(next, idx)
				}
			}
		}
		frontier = next
	}
	return nil, false
}

// applyAugmentation flips ownership along the path: v0 takes path[0], the
// displaced owner of path[0] takes path[1], and so on; the final edge was
// unclaimed, so the chain terminates with no vertex displaced.
func applyAugmentation(grab, owner []int, v0 int, path []int) {
	v := v0
	for _, e := range path {
		displaced := owner[e]
		owner[e] = v
		grab[v] = e
		v = displaced
	}
}

func ceilLog2(n int) int {
	l := 0
	for m := 1; m < n; m <<= 1 {
		l++
	}
	return l
}

// Verify checks that grab is a valid HEG solution: every vertex grabbed an
// incident hyperedge and no hyperedge is grabbed twice.
func Verify(h *Hypergraph, grab []int) error {
	if len(grab) != h.NumVertices {
		return fmt.Errorf("heg: %d grabs for %d vertices", len(grab), h.NumVertices)
	}
	used := make(map[int]int)
	for v, e := range grab {
		if e < 0 || e >= len(h.Edges) {
			return fmt.Errorf("heg: vertex %d: grabbed invalid hyperedge %d", v, e)
		}
		found := false
		for _, u := range h.Edges[e] {
			if u == v {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("heg: vertex %d: grabbed non-incident hyperedge %d", v, e)
		}
		if w, dup := used[e]; dup {
			return fmt.Errorf("heg: vertex %d: hyperedge %d already grabbed by vertex %d", v, e, w)
		}
		used[e] = v
	}
	return nil
}
