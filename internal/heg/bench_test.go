package heg

import (
	"math/rand"
	"testing"

	"deltacoloring/internal/graph"
	"deltacoloring/internal/local"
)

func BenchmarkSolve(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	h := randomInstance(2000, 4000, 5, 4, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net := local.New(graph.Path(2))
		grab, _, err := Solve(net, h)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			if err := Verify(h, grab); err != nil {
				b.Fatal(err)
			}
		}
	}
}
