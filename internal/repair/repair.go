// Package repair turns a fault-damaged coloring back into a verified one,
// distributedly. It is the Brooks-theorem-style recovery story for the
// Δ-coloring pipeline: any fault-damaged region can be locally recolored
// with deg+1 list coloring at the cost of at most one extra color (cf.
// "Fast Distributed Brooks' Theorem" and "Improved Distributed Δ-Coloring",
// PAPERS.md), so a crashed or corrupted run never has to restart globally.
//
// The contract, given a graph and a coloring that is valid outside an
// unknown damaged region:
//
//  1. Detect (1 round): every vertex inspects itself and its neighborhood;
//     it is damaged if it is uncolored, carries an out-of-range color, or
//     shares its color with a neighbor (both endpoints of a monochromatic
//     edge flag themselves — the detector is symmetric, so it needs no
//     coordination).
//  2. Tight attempt (1 round): the damaged set is uncolored and checked
//     against the deg+1 list-coloring precondition with the *original*
//     palette [0, numColors). If every damaged vertex has more available
//     colors than damaged neighbors, the region is recolored without any
//     extra color.
//  3. Grow + recolor (1 round + list coloring): otherwise the repair set
//     grows by the 1-hop neighborhood of the damaged region and the palette
//     gains one extra color. Every vertex of the grown set now satisfies
//     deg+1 unconditionally (list size >= numColors+1 - colored neighbors
//     >= repair-set degree + 1), so the list coloring cannot fail. Because
//     the solver always adopts the smallest available color, the extra
//     color is used only where the damage forces it.
//
// All rounds — detection, the slack check, growth, and the deg+1 solve —
// are charged through the normal Network counter, so repair cost shows up
// in the same round accounting as everything else. Vertices outside the
// repair set never change color.
package repair

import (
	"fmt"

	"deltacoloring/internal/coloring"
	"deltacoloring/internal/graph"
	"deltacoloring/internal/listcolor"
	"deltacoloring/internal/local"
)

// Result reports what one Repair call did.
type Result struct {
	// Damaged lists the vertices the detector flagged, ascending.
	Damaged []int
	// RepairSet lists the vertices actually recolored, ascending. It equals
	// Damaged unless growth was needed, in which case it is the closed
	// 1-hop neighborhood of Damaged.
	RepairSet []int
	// Grown reports whether the 1-hop growth (and with it the extra color)
	// was needed.
	Grown bool
	// ExtraColorUsed counts repaired vertices that ended up on the extra
	// color (always 0 when Grown is false).
	ExtraColorUsed int
	// NumColors is the palette bound the repaired coloring is guaranteed to
	// satisfy. It equals the caller's numColors when that covered the
	// current snapshot's Δ and no extra color was spent; it is larger when
	// the degree grew past the tracked palette mid-stream (dynamic graphs)
	// or when growth had to spend the extra color.
	NumColors int
	// Rounds is the number of LOCAL rounds the repair charged.
	Rounds int
}

// detectState is the per-vertex state of the detection round.
type detectState struct {
	color int
	bad   bool
}

// Detect runs the 1-round distributed damage detector and returns the
// damaged vertices in ascending order: every vertex that is uncolored,
// out of range for [0, numColors), or in conflict with a neighbor.
func Detect(net *local.Network, colors []int, numColors int) ([]int, error) {
	g := net.Graph()
	if len(colors) != g.N() {
		return nil, fmt.Errorf("repair: %d colors for %d vertices", len(colors), g.N())
	}
	init := make([]detectState, g.N())
	for v, c := range colors {
		init[v] = detectState{color: c}
	}
	st := local.Exchange(net, init, func(v int, self detectState, nbrs local.Nbrs[detectState]) detectState {
		if self.color == coloring.None || self.color < 0 || self.color >= numColors {
			self.bad = true
			return self
		}
		for i := 0; i < nbrs.Len(); i++ {
			if nbrs.State(i).color == self.color {
				self.bad = true
				return self
			}
		}
		return self
	})
	var damaged []int
	for v, s := range st {
		if s.bad {
			damaged = append(damaged, v)
		}
	}
	return damaged, nil
}

// DetectSeeded is the scoped damage detector for the dynamic layer: instead
// of scanning the whole graph it inspects only the closed neighborhood of
// seeds (the vertices a mutation batch touched). Given a coloring that was
// valid before the batch, any new damage — a conflict across an added edge,
// an uncolored appended vertex, a palette violation — lies inside that
// neighborhood, so the scoped scan is sound while charging the same single
// round as Detect. Returns the damaged vertices in ascending order.
func DetectSeeded(net *local.Network, colors []int, numColors int, seeds []int) ([]int, error) {
	g := net.Graph()
	if len(colors) != g.N() {
		return nil, fmt.Errorf("repair: %d colors for %d vertices", len(colors), g.N())
	}
	net.Charge(1)
	scope := make([]bool, g.N())
	for _, s := range seeds {
		if s < 0 || s >= g.N() {
			return nil, fmt.Errorf("repair: seed %d out of range [0,%d)", s, g.N())
		}
		scope[s] = true
		for _, w := range g.Neighbors(s) {
			scope[int(w)] = true
		}
	}
	var damaged []int
	for v := 0; v < g.N(); v++ {
		if !scope[v] {
			continue
		}
		c := colors[v]
		if c == coloring.None || c < 0 || c >= numColors {
			damaged = append(damaged, v)
			continue
		}
		for _, w := range g.Neighbors(v) {
			if colors[w] == c {
				damaged = append(damaged, v)
				break
			}
		}
	}
	return damaged, nil
}

// Snapshot is the checkpoint artifact Repair publishes (phase "repair") to
// an installed local.Network check hook: the repaired coloring and the
// palette size it actually used (numColors, or numColors+1 after growing).
type Snapshot struct {
	Colors    []int
	NumColors int
}

// paletteBound recomputes the working palette bound from the *current*
// snapshot's Δ. Callers of the dynamic layer track numColors across mutation
// batches; when edge insertions grow a vertex's degree past that tracked
// bound mid-stream, the grown-set guarantee (list size >= repair-set degree
// + 1) needs the bound raised to the live Δ rather than the construction-time
// value the caller remembered.
func paletteBound(g *graph.Graph, numColors int) int {
	if d := g.MaxDegree(); numColors < d {
		return d
	}
	return numColors
}

// Repair detects the damaged region of colors and recolors it in place,
// following the package contract. numColors is the palette of the valid
// region (Δ for pipeline colorings); the result uses at most bound+1 colors
// where bound = max(numColors, Δ of the current snapshot), and exactly bound
// whenever the tight attempt succeeds. The input slice is repaired in place
// and also returned; Result.NumColors reports the bound actually needed.
func Repair(net *local.Network, colors []int, numColors int) (*Result, error) {
	g := net.Graph()
	if numColors < 1 {
		return nil, fmt.Errorf("repair: numColors must be positive, got %d", numColors)
	}
	bound := paletteBound(g, numColors)
	startRounds := net.Rounds()
	defer net.Phase("repair")()

	damaged, err := Detect(net, colors, bound)
	if err != nil {
		return nil, err
	}
	if len(damaged) == 0 {
		// Nothing flagged: the coloring must already verify; anything else
		// is a detector bug, not a caller error.
		c := coloring.Partial{Colors: colors}
		if verr := coloring.VerifyComplete(g, &c, bound); verr != nil {
			return nil, fmt.Errorf("repair: detector found no damage but coloring is invalid: %w", verr)
		}
		return &Result{NumColors: bound, Rounds: net.Rounds() - startRounds}, nil
	}
	res, err := recolor(net, colors, bound, damaged)
	if err != nil {
		return nil, err
	}

	k := bound
	if res.Grown {
		k = bound + 1
	}
	c := coloring.Partial{Colors: colors}
	if verr := coloring.VerifyComplete(g, &c, k); verr != nil {
		return nil, fmt.Errorf("repair: repaired coloring failed verification: %w", verr)
	}
	if err := net.Checkpoint("repair", &Snapshot{Colors: colors, NumColors: k}); err != nil {
		return nil, err
	}
	res.Rounds = net.Rounds() - startRounds
	return res, nil
}

// recolor uncolors the damaged set and runs the tight-attempt / grow /
// deg+1-solve core of the package contract against the palette [0, bound).
// It mutates colors in place and fills every Result field except Rounds.
func recolor(net *local.Network, colors []int, bound int, damaged []int) (*Result, error) {
	res := &Result{Damaged: damaged, NumColors: bound}
	part := coloring.NewPartial(net.Graph().N())
	copy(part.Colors, colors)

	plan := PlanRecolor(net, part, damaged, bound)
	res.Grown = plan.Grown
	inst := listcolor.Instance{Active: plan.Active, Lists: plan.Lists}
	if err := listcolor.Solve(net, inst, part); err != nil {
		return nil, fmt.Errorf("repair: %w", err)
	}
	for v, a := range plan.Active {
		if a {
			res.RepairSet = append(res.RepairSet, v)
			if part.Colors[v] == bound {
				res.ExtraColorUsed++
			}
		}
	}
	if res.ExtraColorUsed > 0 {
		res.NumColors = bound + 1
	}
	copy(colors, part.Colors)
	return res, nil
}

// Plan is the recoloring work PlanRecolor produces for a damaged set: the
// active vertices to recolor and the color list each one may draw from.
// When Grown is true the lists come from the widened palette [0, bound+1)
// and Active is the closed 1-hop neighborhood of the damage.
type Plan struct {
	Active []bool
	Lists  []coloring.Palette
	Grown  bool
}

// PlanRecolor runs the tight-attempt / grow planning of the package contract
// for a known damaged set: it uncolors the damage in part, charges the
// tight-check round (and the growth round when the deg+1 precondition fails
// against the palette [0, bound)), and returns the active set plus per-vertex
// lists ready for a deg+1 list-coloring solve. internal/dynamic reuses this
// planning but runs its own frontier-scheduled solve on the root network, so
// fault hooks apply to the maintenance rounds.
func PlanRecolor(net *local.Network, part *coloring.Partial, damaged []int, bound int) *Plan {
	g := net.Graph()
	inDamaged := make([]bool, g.N())
	for _, v := range damaged {
		inDamaged[v] = true
		part.Colors[v] = coloring.None
	}

	// Tight attempt: each damaged vertex compares its residual palette
	// [0, bound) against its damaged degree — a purely local check, one
	// round to exchange the verdicts.
	net.Charge(1)
	tight := true
	lists := make([]coloring.Palette, g.N())
	for _, v := range damaged {
		coloring.AvailableInto(&lists[v], g, part, v, bound)
		activeDeg := 0
		for _, w := range g.Neighbors(v) {
			if inDamaged[w] {
				activeDeg++
			}
		}
		if lists[v].Size() < activeDeg+1 {
			tight = false
			break
		}
	}
	if tight {
		return &Plan{Active: inDamaged, Lists: lists}
	}

	// Grow to the closed 1-hop neighborhood and add the extra color.
	// One round: damaged vertices announce, neighbors join.
	net.Charge(1)
	active := make([]bool, g.N())
	for _, v := range damaged {
		active[v] = true
		for _, w := range g.Neighbors(v) {
			active[int(w)] = true
		}
	}
	for v, a := range active {
		if a {
			part.Colors[v] = coloring.None
		}
	}
	for v, a := range active {
		if !a {
			continue
		}
		// Re-fill in place: the widened palette reuses the word storage the
		// tight attempt allocated for damaged vertices.
		coloring.AvailableInto(&lists[v], g, part, v, bound+1)
	}
	return &Plan{Active: active, Lists: lists, Grown: true}
}

// Oracle is the sequential reference: it uncolors the damaged set and
// greedily completes with numColors+1 colors. It exists to cross-check the
// distributed repair in tests and fuzzing; a graph where the oracle fails
// has no (numColors+1)-repair at all.
func Oracle(g *graph.Graph, colors []int, numColors int) ([]int, error) {
	c := coloring.NewPartial(g.N())
	copy(c.Colors, colors)
	// Sequential damage scan mirroring Detect.
	for v := 0; v < g.N(); v++ {
		col := c.Colors[v]
		if col == coloring.None || col < 0 || col >= numColors {
			c.Colors[v] = coloring.None
			continue
		}
		for _, w := range g.Neighbors(v) {
			if colors[w] == col {
				c.Colors[v] = coloring.None
				break
			}
		}
	}
	if err := coloring.GreedyComplete(g, c, numColors+1); err != nil {
		return nil, err
	}
	if err := coloring.VerifyComplete(g, c, numColors+1); err != nil {
		return nil, err
	}
	return c.Colors, nil
}
