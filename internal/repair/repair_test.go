package repair

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"deltacoloring/internal/coloring"
	"deltacoloring/internal/faults"
	"deltacoloring/internal/graph"
	"deltacoloring/internal/local"
)

// mustRing builds the easy clique-ring family (see internal/graph).
func mustRing(k, delta int) *graph.Graph {
	g, _ := graph.EasyCliqueRing(k, delta)
	return g
}

// greedyColoring returns a valid (Δ+1)-greedy coloring of g.
func greedyColoring(t *testing.T, g *graph.Graph) []int {
	t.Helper()
	c := coloring.NewPartial(g.N())
	if err := coloring.GreedyComplete(g, c, g.MaxDegree()+1); err != nil {
		t.Fatal(err)
	}
	return c.Colors
}

func TestDetectFlagsExactlyTheDamage(t *testing.T) {
	g := graph.ErdosRenyi(300, 0.03, rand.New(rand.NewSource(1)))
	k := g.MaxDegree() + 1
	colors := greedyColoring(t, g)

	// Manufacture damage by hand: one uncolored vertex, one out-of-range
	// color, one monochromatic edge.
	colors[10] = coloring.None
	colors[20] = k + 5
	var u, v int = -1, -1
	for x := 0; x < g.N() && u < 0; x++ {
		if x == 10 || x == 20 {
			continue
		}
		for _, w := range g.Neighbors(x) {
			if int(w) != 10 && int(w) != 20 && int(w) > x {
				u, v = x, int(w)
				break
			}
		}
	}
	if u < 0 {
		t.Fatal("no usable edge found")
	}
	colors[v] = colors[u]

	net := local.New(g)
	defer net.Close()
	damaged, err := Detect(net, colors, k)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]bool{10: true, 20: true, u: true, v: true}
	for _, d := range damaged {
		if !want[d] {
			// Collateral flags are possible only if the hand damage created
			// secondary conflicts; check it really conflicts.
			ok := colors[d] == coloring.None || colors[d] >= k
			for _, w := range g.Neighbors(d) {
				if colors[w] == colors[d] {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("vertex %d flagged without damage", d)
			}
		}
		delete(want, d)
	}
	if len(want) != 0 {
		t.Fatalf("damaged vertices not flagged: %v", want)
	}
	if net.Rounds() != 1 {
		t.Fatalf("detection charged %d rounds, want 1", net.Rounds())
	}
}

func TestRepairNoDamageIsNoop(t *testing.T) {
	g := mustRing(4, 8)
	colors := greedyColoring(t, g)
	orig := append([]int(nil), colors...)
	net := local.New(g)
	defer net.Close()
	res, err := Repair(net, colors, g.MaxDegree()+1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Damaged) != 0 || len(res.RepairSet) != 0 || res.Grown {
		t.Fatalf("clean coloring triggered repair: %+v", res)
	}
	if !reflect.DeepEqual(orig, colors) {
		t.Fatal("no-op repair changed colors")
	}
	if res.Rounds < 1 {
		t.Fatal("detection rounds not charged")
	}
}

func TestRepairInvalidCleanColoring(t *testing.T) {
	// A coloring whose flaw the detector cannot see does not exist — but a
	// caller lying about numColors can produce an incomplete check; the
	// final verification must still catch detector/solver disagreements.
	g := graph.Cycle(8)
	net := local.New(g)
	defer net.Close()
	if _, err := Repair(net, make([]int, 4), 2); err == nil ||
		!strings.Contains(err.Error(), "colors for") {
		t.Fatalf("length mismatch not rejected: %v", err)
	}
	if _, err := Repair(net, make([]int, 8), 0); err == nil {
		t.Fatal("numColors=0 accepted")
	}
	// numColors below the snapshot's Δ is no longer an error: the bound is
	// recomputed from the current graph (see TestRepairPaletteFollowsDegreeGrowth).
	colors := make([]int, 8)
	res, err := Repair(net, colors, 1)
	if err != nil {
		t.Fatalf("numColors below max degree must raise the bound, got %v", err)
	}
	if res.NumColors < 2 {
		t.Fatalf("bound not raised to the snapshot's Δ: %+v", res)
	}
	c := coloring.Partial{Colors: colors}
	if err := coloring.VerifyComplete(g, &c, res.NumColors); err != nil {
		t.Fatal(err)
	}
}

// Regression for dynamic-graph palette handling: when edge insertions grow a
// vertex's degree past the palette bound the caller tracked at construction
// time, Repair must recompute the bound from the *current* snapshot's Δ —
// with the stale bound, the grown-set deg+1 guarantee breaks and the solve
// can fail outright on a fresh hub vertex.
func TestRepairPaletteFollowsDegreeGrowth(t *testing.T) {
	// Start from a 2-regular cycle colored with Δ+1 = 3 colors, then splice
	// in a hub adjacent to everything: Δ jumps from 2 to n-1 mid-stream.
	base := graph.Cycle(12)
	k := base.MaxDegree() + 1 // the construction-time bound the caller tracks
	colors := greedyColoring(t, base)

	var spokes []graph.Edge
	for v := 0; v < base.N(); v++ {
		spokes = append(spokes, graph.Edge{U: v, V: base.N()})
	}
	grown, err := graph.ApplyEdits(base, base.N()+1, spokes, nil)
	if err != nil {
		t.Fatal(err)
	}
	colors = append(colors, coloring.None)

	net := local.New(grown)
	defer net.Close()
	res, err := Repair(net, colors, k)
	if err != nil {
		t.Fatalf("repair with stale palette bound: %v", err)
	}
	if res.NumColors < grown.MaxDegree() {
		t.Fatalf("bound %d not recomputed from current Δ=%d", res.NumColors, grown.MaxDegree())
	}
	c := coloring.Partial{Colors: colors}
	if err := coloring.VerifyComplete(grown, &c, res.NumColors); err != nil {
		t.Fatalf("repaired coloring invalid under reported bound: %v", err)
	}
}

func TestDetectSeededMatchesScopedDamage(t *testing.T) {
	g := graph.ErdosRenyi(300, 0.03, rand.New(rand.NewSource(6)))
	k := g.MaxDegree() + 1
	colors := greedyColoring(t, g)

	// Damage two spots; seed only the first one's location. The scoped
	// detector must flag all damage inside the seeds' closed neighborhood
	// and stay silent about the rest.
	colors[15] = coloring.None
	colors[200] = coloring.None
	net := local.New(g)
	defer net.Close()
	damaged, err := DetectSeeded(net, colors, k, []int{15})
	if err != nil {
		t.Fatal(err)
	}
	if len(damaged) != 1 || damaged[0] != 15 {
		t.Fatalf("scoped detect flagged %v, want [15]", damaged)
	}
	if net.Rounds() != 1 {
		t.Fatalf("scoped detection charged %d rounds, want 1", net.Rounds())
	}
	// Full detect over all seeds agrees with the global detector.
	allSeeds := make([]int, g.N())
	for v := range allSeeds {
		allSeeds[v] = v
	}
	scoped, err := DetectSeeded(net, colors, k, allSeeds)
	if err != nil {
		t.Fatal(err)
	}
	global, err := Detect(net, colors, k)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(scoped, global) {
		t.Fatalf("all-seeds scoped detect %v differs from global %v", scoped, global)
	}
	if _, err := DetectSeeded(net, colors, k, []int{-1}); err == nil {
		t.Fatal("out-of-range seed accepted")
	}
}

// Repairing plan-damaged colorings across several families and seeds: the
// result must verify with at most one extra color, leave the outside
// untouched, and stay within the contract's round budget shape.
func TestRepairDamagedColorings(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	gens := []struct {
		name string
		g    *graph.Graph
	}{
		{"erdos-sparse", graph.ErdosRenyi(500, 0.01, rng)},
		{"erdos-dense", graph.ErdosRenyi(200, 0.1, rng)},
		{"ring", mustRing(6, 8)},
		{"torus", graph.Torus(12, 12)},
	}
	for _, tc := range gens {
		for seed := int64(0); seed < 5; seed++ {
			cfg := faults.Config{Seed: seed, CrashRate: 0.08, CorruptRate: 0.08}
			p, err := faults.NewPlan(tc.g, cfg)
			if err != nil {
				t.Fatal(err)
			}
			k := tc.g.MaxDegree() + 1
			clean := greedyColoring(t, tc.g)
			dmg, rep := p.Damage(clean)
			if rep.Total() == 0 {
				continue
			}
			net := local.New(tc.g)
			res, err := Repair(net, dmg, k)
			net.Close()
			if err != nil {
				t.Fatalf("%s seed %d: %v", tc.name, seed, err)
			}
			kMax := k
			if res.Grown {
				kMax = k + 1
			}
			c := coloring.Partial{Colors: dmg}
			if err := coloring.VerifyComplete(tc.g, &c, kMax); err != nil {
				t.Fatalf("%s seed %d: repaired coloring invalid: %v", tc.name, seed, err)
			}
			inRepair := make(map[int]bool, len(res.RepairSet))
			for _, v := range res.RepairSet {
				inRepair[v] = true
			}
			for v := range dmg {
				if !inRepair[v] && dmg[v] != cleanOrDamaged(clean, p, v) {
					t.Fatalf("%s seed %d: vertex %d outside repair set changed", tc.name, seed, v)
				}
			}
			if res.Rounds < 1 {
				t.Fatalf("%s seed %d: no rounds charged", tc.name, seed)
			}
		}
	}
}

// cleanOrDamaged reconstructs the post-damage pre-repair color of v.
func cleanOrDamaged(clean []int, p *faults.Plan, v int) int {
	dmg, _ := p.Damage(clean)
	return dmg[v]
}

// The tight attempt must succeed — using no extra color — when damage is a
// single uncolored vertex with spare palette room.
func TestRepairTightPathAvoidsExtraColor(t *testing.T) {
	g := graph.Torus(10, 10) // 4-regular, 5 colors greedy
	k := g.MaxDegree() + 1
	colors := greedyColoring(t, g)
	colors[37] = coloring.None
	net := local.New(g)
	defer net.Close()
	res, err := Repair(net, colors, k)
	if err != nil {
		t.Fatal(err)
	}
	if res.Grown || res.ExtraColorUsed != 0 {
		t.Fatalf("single-vertex damage forced growth: %+v", res)
	}
	if len(res.RepairSet) != 1 || res.RepairSet[0] != 37 {
		t.Fatalf("repair set %v, want [37]", res.RepairSet)
	}
	c := coloring.Partial{Colors: colors}
	if err := coloring.VerifyComplete(g, &c, k); err != nil {
		t.Fatal(err)
	}
}

// Repair is a LOCAL computation: bit-identical results at any worker count.
func TestRepairWorkerIndependent(t *testing.T) {
	g := graph.ErdosRenyi(2000, 0.005, rand.New(rand.NewSource(9)))
	k := g.MaxDegree() + 1
	clean := greedyColoring(t, g)
	p, err := faults.NewPlan(g, faults.Config{Seed: 17, CrashRate: 0.05, CorruptRate: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) ([]int, *Result) {
		dmg, _ := p.Damage(clean)
		net := local.New(g)
		defer net.Close()
		net.SetWorkers(workers)
		res, err := Repair(net, dmg, k)
		if err != nil {
			t.Fatal(err)
		}
		return dmg, res
	}
	seqColors, seqRes := run(1)
	for _, w := range []int{2, 8} {
		gotColors, gotRes := run(w)
		if !reflect.DeepEqual(seqColors, gotColors) {
			t.Fatalf("repaired colors differ between workers=1 and workers=%d", w)
		}
		if seqRes.Rounds != gotRes.Rounds || !reflect.DeepEqual(seqRes.RepairSet, gotRes.RepairSet) {
			t.Fatalf("repair accounting differs between workers=1 and workers=%d", w)
		}
	}
}

func TestOracleAgreesOnRepairability(t *testing.T) {
	g := graph.ErdosRenyi(300, 0.02, rand.New(rand.NewSource(2)))
	k := g.MaxDegree() + 1
	clean := greedyColoring(t, g)
	p, err := faults.NewPlan(g, faults.Config{Seed: 3, CrashRate: 0.1, CorruptRate: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	dmg, _ := p.Damage(clean)
	oracleColors, err := Oracle(g, dmg, k)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	c := coloring.Partial{Colors: oracleColors}
	if err := coloring.VerifyComplete(g, &c, k+1); err != nil {
		t.Fatal(err)
	}
	net := local.New(g)
	defer net.Close()
	if _, err := Repair(net, dmg, k); err != nil {
		t.Fatalf("distributed repair failed where oracle succeeded: %v", err)
	}
}
