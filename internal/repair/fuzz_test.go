package repair

import (
	"math/rand"
	"testing"

	"deltacoloring/internal/coloring"
	"deltacoloring/internal/faults"
	"deltacoloring/internal/graph"
	"deltacoloring/internal/local"
)

// FuzzRepair drives the full damage-and-repair pipeline over random graphs
// and random fault plans: a greedy (Δ+1)-coloring is damaged by a seeded
// plan and repaired distributedly. The repaired coloring must verify, stay
// within Δ+1 colors (with numColors = Δ+1 the tight attempt always holds,
// so no extra color may appear), leave the outside of the repair set
// untouched, and agree with the sequential oracle on repairability.
func FuzzRepair(f *testing.F) {
	f.Add(int64(1), int64(2), uint8(30), uint8(10), uint8(10))
	f.Add(int64(7), int64(5), uint8(200), uint8(40), uint8(0))
	f.Add(int64(42), int64(0), uint8(3), uint8(0), uint8(255))
	f.Add(int64(-9), int64(99), uint8(120), uint8(255), uint8(255))
	f.Fuzz(func(t *testing.T, graphSeed, faultSeed int64, nRaw, crashRaw, corruptRaw uint8) {
		n := 2 + int(nRaw)
		rng := rand.New(rand.NewSource(graphSeed))
		var g *graph.Graph
		switch graphSeed % 3 {
		case 0:
			g = graph.ErdosRenyi(n, 3/float64(n), rng)
		case 1, -1:
			g = graph.RandomTree(n, rng)
		default:
			g = graph.ErdosRenyi(n, 0.1, rng)
		}
		k := g.MaxDegree() + 1

		clean := coloring.NewPartial(g.N())
		if err := coloring.GreedyComplete(g, clean, k); err != nil {
			t.Fatalf("greedy base coloring failed: %v", err)
		}
		cfg := faults.Config{
			Seed:        faultSeed,
			CrashRate:   float64(crashRaw) / 512,
			CorruptRate: float64(corruptRaw) / 512,
		}
		plan, err := faults.NewPlan(g, cfg)
		if err != nil {
			t.Fatalf("plan: %v", err)
		}
		dmg, rep := plan.Damage(clean.Colors)

		// The sequential oracle must always succeed with one extra color;
		// it is the ground truth that the damage is repairable at all.
		if _, err := Oracle(g, dmg, k); err != nil {
			t.Fatalf("oracle failed on repairable damage: %v", err)
		}

		net := local.New(g)
		defer net.Close()
		res, err := Repair(net, dmg, k)
		if err != nil {
			t.Fatalf("repair failed (damage: %d crashed, %d corrupted): %v",
				len(rep.Crashed), len(rep.Corrupted), err)
		}
		// numColors = Δ+1 gives every damaged vertex deg+1 slack, so the
		// tight attempt must hold: never grow, never use an extra color.
		if res.Grown || res.ExtraColorUsed != 0 {
			t.Fatalf("repair with Δ+1 palette used growth/extra color: %+v", res)
		}
		c := coloring.Partial{Colors: dmg}
		if err := coloring.VerifyComplete(g, &c, k); err != nil {
			t.Fatalf("repaired coloring invalid: %v", err)
		}
		inRepair := make(map[int]bool, len(res.RepairSet))
		for _, v := range res.RepairSet {
			inRepair[v] = true
		}
		fresh, _ := plan.Damage(clean.Colors)
		for v := range dmg {
			if !inRepair[v] && dmg[v] != fresh[v] {
				t.Fatalf("vertex %d outside the repair set changed color", v)
			}
		}
	})
}
