//go:build !(linux && (amd64 || arm64))

package graphio

import (
	"io"

	"deltacoloring/internal/graph"
)

func openBinaryMmap(path string) (*graph.Graph, io.Closer, error) {
	return nil, nil, errMmapUnsupported
}
