package graphio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"deltacoloring/internal/graph"
)

func testGraph(t *testing.T, n, d int) *graph.Graph {
	t.Helper()
	// Circulant: v ~ v±1..v±d/2 mod n — connected, d-regular for even d.
	g, err := graph.FromStream(n, 1, func(emit func(u, v int)) error {
		for v := 0; v < n; v++ {
			for s := 1; s <= d/2; s++ {
				emit(v, (v+s)%n)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBinaryRoundTrip(t *testing.T) {
	for _, tc := range []struct{ n, d int }{{0, 0}, {1, 0}, {5, 2}, {100, 6}, {257, 8}} {
		g := testGraph(t, tc.n, tc.d)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatalf("n=%d: WriteBinary: %v", tc.n, err)
		}
		got, err := ReadBinary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("n=%d: ReadBinary: %v", tc.n, err)
		}
		if got.N() != g.N() || got.M() != g.M() || got.MaxDegree() != g.MaxDegree() {
			t.Fatalf("n=%d: round-trip shape mismatch", tc.n)
		}
		if CanonicalHash(got) != CanonicalHash(g) {
			t.Fatalf("n=%d: round-trip edge set mismatch", tc.n)
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("n=%d: round-tripped graph invalid: %v", tc.n, err)
		}
	}
}

func TestBinaryFileAndLoadSniffing(t *testing.T) {
	dir := t.TempDir()
	g := testGraph(t, 200, 6)

	bin := filepath.Join(dir, "g.dcsr")
	if err := WriteBinaryFile(bin, g); err != nil {
		t.Fatal(err)
	}
	bg, closer, err := Load(bin)
	if err != nil {
		t.Fatalf("Load(binary): %v", err)
	}
	if CanonicalHash(bg) != CanonicalHash(g) {
		t.Fatal("Load(binary) edge set mismatch")
	}
	if err := closer.Close(); err != nil {
		t.Fatal(err)
	}

	txt := filepath.Join(dir, "g.txt")
	f, err := os.Create(txt)
	if err != nil {
		t.Fatal(err)
	}
	if err := Write(f, g, "test graph"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	tg, closer, err := Load(txt)
	if err != nil {
		t.Fatalf("Load(text): %v", err)
	}
	defer closer.Close()
	if CanonicalHash(tg) != CanonicalHash(g) {
		t.Fatal("Load(text) edge set mismatch")
	}
}

// TestOpenBinaryMmap forces a file past the mmap size gate and checks the
// mapped view agrees with the portable reader (on platforms without mmap the
// fallback path serves both, which still exercises OpenBinary end to end).
func TestOpenBinaryMmap(t *testing.T) {
	g := testGraph(t, 20000, 8) // ~1 MB, beyond mmapMinBytes
	path := filepath.Join(t.TempDir(), "big.dcsr")
	if err := WriteBinaryFile(path, g); err != nil {
		t.Fatal(err)
	}
	mg, closer, err := OpenBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	if mg.N() != g.N() || mg.M() != g.M() || mg.MaxDegree() != g.MaxDegree() {
		t.Fatal("mmap view shape mismatch")
	}
	// Full structural + symmetry validation of the aliased arrays.
	if err := mg.Validate(); err != nil {
		t.Fatalf("mmap view invalid: %v", err)
	}
	if CanonicalHash(mg) != CanonicalHash(g) {
		t.Fatal("mmap view edge set mismatch")
	}
}

func TestBinaryRejectsCorruption(t *testing.T) {
	g := testGraph(t, 50, 4)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	base := buf.Bytes()

	corrupt := func(mutate func(b []byte)) error {
		b := append([]byte(nil), base...)
		mutate(b)
		_, err := ReadBinary(bytes.NewReader(b))
		return err
	}

	if err := corrupt(func(b []byte) { b[0] = 'X' }); err == nil {
		t.Fatal("bad magic accepted")
	}
	if err := corrupt(func(b []byte) {
		// First adjacency entry out of range.
		binary.LittleEndian.PutUint32(b[binaryHeaderLen+4*51:], 1<<30)
	}); err == nil {
		t.Fatal("out-of-range neighbor accepted")
	}
	if err := corrupt(func(b []byte) {
		// Break offset monotonicity.
		binary.LittleEndian.PutUint32(b[binaryHeaderLen+4:], math.MaxUint32)
	}); err == nil {
		t.Fatal("non-monotone offsets accepted")
	}
	if _, err := ReadBinary(bytes.NewReader(base[:len(base)-8])); err == nil {
		t.Fatal("truncated file accepted")
	}
}

// TestBinaryRejectsOverflowingEdgeCount crafts a header whose half-edge
// count exceeds the int32 offset space and checks for the typed error —
// the satellite guard against silent mis-building at huge m.
func TestBinaryRejectsOverflowingEdgeCount(t *testing.T) {
	var head [binaryHeaderLen]byte
	copy(head[:], binaryMagic[:])
	binary.LittleEndian.PutUint32(head[8:12], 100)
	binary.LittleEndian.PutUint32(head[12:16], math.MaxInt32+1) // even, > MaxInt32
	_, err := ReadBinary(bytes.NewReader(head[:]))
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("want ErrTooLarge, got %v", err)
	}
	if !errors.Is(err, graph.ErrTooManyEdges) {
		t.Fatalf("ErrTooLarge should wrap graph.ErrTooManyEdges, got %v", err)
	}
}
