// Binary graph files. The text edge-list format re-parses and re-sorts every
// edge on load; at n=10⁷ that is minutes of CPU for a graph whose CSR image
// is a few hundred megabytes of flat arrays. The binary format stores the
// CSR arrays directly in a magic-framed, 8-byte-aligned layout so a loader
// can memory-map the file and adopt the arrays in place — open time becomes
// page-fault time, and two processes sharing one graph share its pages.
//
// Layout (all little-endian):
//
//	[8]byte  magic "DCSRv1\x00\x00"
//	uint32   n
//	uint32   ne                    (half-edge count, 2m)
//	int32    offsets[n+1]          (starts at byte 16, 4-aligned)
//	int32    edges[ne]
//	[pad]                          (zero bytes to the next 8-byte boundary)
//	uint64   ids[n]
//
// The pad keeps the ids section 8-aligned for the mmap view on any n. See
// DESIGN.md §14 for the full contract.
package graphio

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"deltacoloring/internal/graph"
)

// binaryMagic frames binary graph files; the trailing NULs version the
// layout (a layout change bumps the digit).
var binaryMagic = [8]byte{'D', 'C', 'S', 'R', 'v', '1', 0, 0}

// ErrTooLarge reports a graph or header whose half-edge count does not fit
// the int32 CSR offset space — the typed rejection for inputs that would
// otherwise silently mis-build at huge m.
var ErrTooLarge = fmt.Errorf("graphio: %w", graph.ErrTooManyEdges)

// binaryHeaderLen is magic + n + ne.
const binaryHeaderLen = 16

// errMmapUnsupported routes OpenBinary to the portable buffered reader on
// platforms without the mapped loader, and for files below its size gate.
var errMmapUnsupported = errors.New("graphio: mmap unsupported")

// binaryLayout computes the section byte offsets for a graph of n vertices
// and ne half-edges. Sizes are int64 throughout: a crafted uint32 header must
// not overflow the arithmetic before the ErrTooLarge check fires.
func binaryLayout(n, ne int64) (idsOff, total int64) {
	edgesEnd := int64(binaryHeaderLen) + 4*(n+1) + 4*ne
	idsOff = (edgesEnd + 7) &^ 7
	return idsOff, idsOff + 8*n
}

// WriteBinary writes g as one binary graph image. The arrays stream through
// a buffered writer chunk by chunk, so the peak extra memory is the buffer,
// not a second copy of the graph.
func WriteBinary(w io.Writer, g *graph.Graph) error {
	n := g.N()
	ne := 2 * g.M()
	if int64(ne) > math.MaxInt32 {
		return ErrTooLarge
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	var u32 [4]byte
	put32 := func(x uint32) error {
		binary.LittleEndian.PutUint32(u32[:], x)
		_, err := bw.Write(u32[:])
		return err
	}
	if err := put32(uint32(n)); err != nil {
		return err
	}
	if err := put32(uint32(ne)); err != nil {
		return err
	}
	off := uint32(0)
	if err := put32(off); err != nil {
		return err
	}
	for v := 0; v < n; v++ {
		off += uint32(g.Degree(v))
		if err := put32(off); err != nil {
			return err
		}
	}
	for v := 0; v < n; v++ {
		for _, w := range g.Neighbors(v) {
			if err := put32(uint32(w)); err != nil {
				return err
			}
		}
	}
	idsOff, _ := binaryLayout(int64(n), int64(ne))
	for pad := idsOff - (binaryHeaderLen + 4*(int64(n)+1) + 4*int64(ne)); pad > 0; pad-- {
		if err := bw.WriteByte(0); err != nil {
			return err
		}
	}
	var u64 [8]byte
	for v := 0; v < n; v++ {
		binary.LittleEndian.PutUint64(u64[:], g.ID(v))
		if _, err := bw.Write(u64[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteBinaryFile writes g to path atomically (temp file + rename).
func WriteBinaryFile(path string, g *graph.Graph) error {
	tmp, err := os.CreateTemp(dirOf(path), ".dcsr-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := WriteBinary(tmp, g); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "."
}

// parseBinaryHeader validates the magic and shape fields against the
// available byte count (< 0 = unknown, for stream readers).
func parseBinaryHeader(head []byte, avail int64) (n, ne int64, err error) {
	if !bytes.Equal(head[:8], binaryMagic[:]) {
		return 0, 0, fmt.Errorf("graphio: not a binary graph file (bad magic)")
	}
	n = int64(binary.LittleEndian.Uint32(head[8:12]))
	ne = int64(binary.LittleEndian.Uint32(head[12:16]))
	if n > graph.MaxN {
		return 0, 0, fmt.Errorf("graphio: implausible vertex count %d", n)
	}
	if ne > math.MaxInt32 || ne%2 != 0 {
		if ne%2 == 0 {
			return 0, 0, ErrTooLarge
		}
		return 0, 0, fmt.Errorf("graphio: implausible half-edge count %d", ne)
	}
	if _, total := binaryLayout(n, ne); avail >= 0 && total != avail {
		return 0, 0, fmt.Errorf("graphio: file size %d does not match header (want %d)", avail, total)
	}
	return n, ne, nil
}

// ReadBinary decodes one binary graph image from r — the portable loader
// used when memory mapping is unavailable (non-Linux platforms, pipes). The
// arrays are heap copies; the structural validation matches OpenBinary's.
func ReadBinary(r io.Reader) (*graph.Graph, error) {
	var head [binaryHeaderLen]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return nil, fmt.Errorf("graphio: binary header: %w", err)
	}
	n, ne, err := parseBinaryHeader(head[:], -1)
	if err != nil {
		return nil, err
	}
	idsOff, total := binaryLayout(n, ne)
	body := make([]byte, total-binaryHeaderLen)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("graphio: binary body: %w", err)
	}
	offsets := make([]int32, n+1)
	for i := range offsets {
		offsets[i] = int32(binary.LittleEndian.Uint32(body[4*i:]))
	}
	edgeBytes := body[4*(n+1):]
	edges := make([]int32, ne)
	for i := range edges {
		edges[i] = int32(binary.LittleEndian.Uint32(edgeBytes[4*i:]))
	}
	idBytes := body[idsOff-binaryHeaderLen:]
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = binary.LittleEndian.Uint64(idBytes[8*i:])
	}
	return graph.NewCSRView(offsets, edges, ids)
}

// OpenBinary opens a binary graph file, memory-mapping it where the platform
// supports it (Linux amd64/arm64) and falling back to a heap read elsewhere.
// The returned closer releases the mapping; the graph must not be used after
// Close. A nil closer never happens — the fallback returns a no-op.
func OpenBinary(path string) (*graph.Graph, io.Closer, error) {
	g, closer, err := openBinaryMmap(path)
	if err == nil {
		return g, closer, nil
	}
	if err != errMmapUnsupported {
		return nil, nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	g, err = ReadBinary(bufio.NewReaderSize(f, 1<<20))
	if err != nil {
		return nil, nil, err
	}
	return g, nopCloser{}, nil
}

type nopCloser struct{}

func (nopCloser) Close() error { return nil }

// ReadFile loads path as either format — sniffing the magic like Load —
// into heap-owned arrays, never a mapping. It is the loader for callers
// that cannot scope a mapping's lifetime, such as a server handing graphs
// to asynchronous jobs.
func ReadFile(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	head, err := br.Peek(8)
	if err == nil && bytes.Equal(head, binaryMagic[:]) {
		return ReadBinary(br)
	}
	return Read(br)
}

// Load opens path as either format, sniffing the magic: binary graphs take
// the mmap path, anything else parses as a text edge list. The closer owns
// the mapping in the binary case and is a no-op for text.
func Load(path string) (*graph.Graph, io.Closer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	var head [8]byte
	nRead, err := io.ReadFull(f, head[:])
	if err != nil && err != io.ErrUnexpectedEOF && err != io.EOF {
		f.Close()
		return nil, nil, err
	}
	if nRead == 8 && bytes.Equal(head[:], binaryMagic[:]) {
		f.Close()
		g, closer, err := OpenBinary(path)
		return g, closer, err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	g, err := Read(bufio.NewReaderSize(f, 1<<20))
	f.Close()
	if err != nil {
		return nil, nil, err
	}
	return g, nopCloser{}, nil
}
