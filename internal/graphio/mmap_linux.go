//go:build linux && (amd64 || arm64)

package graphio

import (
	"fmt"
	"io"
	"os"
	"syscall"
	"unsafe"

	"deltacoloring/internal/graph"
)

// mmapMinBytes gates the mapping path: tiny files cost more in mmap/munmap
// syscalls and page granularity than a buffered read, and tests exercise the
// portable loader through it.
const mmapMinBytes = 1 << 16

// openBinaryMmap maps path read-only and adopts the CSR arrays in place via
// unsafe.Slice casts. This is only correct because the layout guarantees the
// int32 sections start 4-aligned and the ids section 8-aligned within the
// (page-aligned) mapping, and the gated platforms are little-endian like the
// file. The returned closer unmaps; the graph aliases the mapping and must
// not outlive it.
func openBinaryMmap(path string) (*graph.Graph, io.Closer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size < mmapMinBytes {
		return nil, nil, errMmapUnsupported // small file: buffered read is cheaper
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("graphio: mmap: %w", err)
	}
	g, err := adoptMapped(data, size)
	if err != nil {
		syscall.Munmap(data)
		return nil, nil, err
	}
	return g, &mmapCloser{data: data}, nil
}

// adoptMapped builds a graph view over the mapped bytes.
func adoptMapped(data []byte, size int64) (*graph.Graph, error) {
	n, ne, err := parseBinaryHeader(data[:binaryHeaderLen], size)
	if err != nil {
		return nil, err
	}
	idsOff, _ := binaryLayout(n, ne)
	offsets := unsafe.Slice((*int32)(unsafe.Pointer(&data[binaryHeaderLen])), n+1)
	var edges []int32
	if ne > 0 {
		edges = unsafe.Slice((*int32)(unsafe.Pointer(&data[binaryHeaderLen+4*(n+1)])), ne)
	}
	var ids []uint64
	if n > 0 {
		ids = unsafe.Slice((*uint64)(unsafe.Pointer(&data[idsOff])), n)
	}
	return graph.NewCSRView(offsets, edges, ids)
}

type mmapCloser struct{ data []byte }

func (c *mmapCloser) Close() error {
	if c.data == nil {
		return nil
	}
	err := syscall.Munmap(c.data)
	c.data = nil
	return err
}
