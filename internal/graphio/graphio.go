// Package graphio reads and writes graphs in the repository's plain
// edge-list format, shared by the CLI tools:
//
//	# optional comments
//	<n>
//	<u> <v>
//	...
//
// Vertices are 0-based indices below n; blank lines and '#' comments are
// ignored.
package graphio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"deltacoloring/internal/graph"
)

// Read parses an edge-list graph.
func Read(r io.Reader) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := -1
	var b *graph.Builder
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if n < 0 {
			if len(fields) != 1 {
				return nil, fmt.Errorf("graphio: first line must be the vertex count, got %q", line)
			}
			v, err := strconv.Atoi(fields[0])
			if err != nil || v < 0 {
				return nil, fmt.Errorf("graphio: invalid vertex count %q", fields[0])
			}
			n = v
			b = graph.NewBuilder(n)
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("graphio: edge lines need two vertices, got %q", line)
		}
		u, err1 := strconv.Atoi(fields[0])
		v, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("graphio: bad edge %q", line)
		}
		b.AddEdge(u, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("graphio: empty input")
	}
	return b.Build()
}

// Write renders g in the edge-list format with an optional leading comment.
func Write(w io.Writer, g *graph.Graph, comment string) error {
	bw := bufio.NewWriter(w)
	if comment != "" {
		for _, line := range strings.Split(comment, "\n") {
			if _, err := fmt.Fprintf(bw, "# %s\n", line); err != nil {
				return err
			}
		}
	}
	if _, err := fmt.Fprintln(bw, g.N()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintln(bw, e.U, e.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}
