// Package graphio reads and writes graphs in the repository's plain
// edge-list format, shared by the CLI tools:
//
//	# optional comments
//	<n>
//	<u> <v>
//	...
//
// Vertices are 0-based indices below n; blank lines and '#' comments are
// ignored.
package graphio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"strconv"
	"strings"

	"deltacoloring/internal/graph"
)

// MaxLineLen caps a single input line. The scanner buffer starts small and
// grows on demand up to this limit, so ordinary inputs stay cheap while
// large generated edge lists (long comment banners, wide whitespace) still
// parse; a line beyond the cap is a clear ErrLineTooLong, not a silent
// bufio failure.
const MaxLineLen = 64 << 20 // 64 MiB

// ErrLineTooLong marks an input line exceeding MaxLineLen.
var ErrLineTooLong = errors.New("graphio: line too long")

// Read parses an edge-list graph.
func Read(r io.Reader) (*graph.Graph, error) { return ReadMax(r, 0) }

// ReadMax is Read with a cap on the declared vertex count (0 = unlimited).
// Serving paths use it to reject a tiny header that would commit the
// process to an enormous allocation before any edge is read.
func ReadMax(r io.Reader, maxN int) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), MaxLineLen)
	n := -1
	lineno := 0
	var b *graph.Builder
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if n < 0 {
			if len(fields) != 1 {
				return nil, fmt.Errorf("graphio: first line must be the vertex count, got %q", line)
			}
			v, err := strconv.Atoi(fields[0])
			if err != nil || v < 0 {
				return nil, fmt.Errorf("graphio: invalid vertex count %q", fields[0])
			}
			if maxN > 0 && v > maxN {
				return nil, fmt.Errorf("graphio: vertex count %d exceeds limit %d", v, maxN)
			}
			n = v
			b = graph.NewBuilder(n)
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("graphio: edge lines need two vertices, got %q", line)
		}
		u, err1 := strconv.Atoi(fields[0])
		v, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("graphio: bad edge %q", line)
		}
		b.AddEdge(u, v)
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return nil, fmt.Errorf("%w: line %d exceeds %d bytes", ErrLineTooLong, lineno+1, MaxLineLen)
		}
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("graphio: empty input")
	}
	return b.Build()
}

// CanonicalHash returns a 64-bit FNV-1a digest of g's labeled structure:
// the vertex count followed by every edge in the canonical (sorted) order
// Graph.Edges guarantees. Two graphs hash equally iff they have the same
// vertex count and edge set, which makes the digest a stable cache key for
// coloring requests regardless of the order edges arrived in.
func CanonicalHash(g *graph.Graph) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(x int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(x))
		h.Write(buf[:])
	}
	put(g.N())
	for _, e := range g.Edges() {
		put(e.U)
		put(e.V)
	}
	return h.Sum64()
}

// Write renders g in the edge-list format with an optional leading comment.
func Write(w io.Writer, g *graph.Graph, comment string) error {
	bw := bufio.NewWriter(w)
	if comment != "" {
		for _, line := range strings.Split(comment, "\n") {
			if _, err := fmt.Fprintf(bw, "# %s\n", line); err != nil {
				return err
			}
		}
	}
	if _, err := fmt.Fprintln(bw, g.N()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintln(bw, e.U, e.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}
