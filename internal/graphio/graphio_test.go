package graphio

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"deltacoloring/internal/graph"
)

func TestReadBasic(t *testing.T) {
	in := "# a comment\n4\n0 1\n\n1 2\n2 3\n"
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if g.N() != 4 || g.M() != 3 {
		t.Fatalf("shape n=%d m=%d", g.N(), g.M())
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"",
		"x\n",
		"-3\n",
		"2\n0 1 2\n",
		"2\n0 z\n",
		"2\n0 5\n",
		"1 2\n",
	}
	for _, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Fatalf("accepted %q", in)
		}
	}
}

func TestWriteRead(t *testing.T) {
	g := graph.Torus(4, 5)
	var sb strings.Builder
	if err := Write(&sb, g, "torus 4x5\nsecond line"); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "# torus 4x5\n# second line\n20\n") {
		t.Fatalf("header wrong:\n%s", sb.String()[:40])
	}
	back, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != g.N() || back.M() != g.M() {
		t.Fatal("round trip changed shape")
	}
}

// Property: Write then Read is the identity on adjacency structure.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g := graph.ErdosRenyi(n, 0.3, rng)
		var sb strings.Builder
		if err := Write(&sb, g, ""); err != nil {
			return false
		}
		back, err := Read(strings.NewReader(sb.String()))
		if err != nil || back.N() != g.N() || back.M() != g.M() {
			return false
		}
		for v := 0; v < n; v++ {
			for w := v + 1; w < n; w++ {
				if g.HasEdge(v, w) != back.HasEdge(v, w) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
