package graphio

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"deltacoloring/internal/graph"
)

func TestReadBasic(t *testing.T) {
	in := "# a comment\n4\n0 1\n\n1 2\n2 3\n"
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if g.N() != 4 || g.M() != 3 {
		t.Fatalf("shape n=%d m=%d", g.N(), g.M())
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"",
		"x\n",
		"-3\n",
		"2\n0 1 2\n",
		"2\n0 z\n",
		"2\n0 5\n",
		"1 2\n",
	}
	for _, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Fatalf("accepted %q", in)
		}
	}
}

func TestWriteRead(t *testing.T) {
	g := graph.Torus(4, 5)
	var sb strings.Builder
	if err := Write(&sb, g, "torus 4x5\nsecond line"); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "# torus 4x5\n# second line\n20\n") {
		t.Fatalf("header wrong:\n%s", sb.String()[:40])
	}
	back, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != g.N() || back.M() != g.M() {
		t.Fatal("round trip changed shape")
	}
}

// Read -> Write -> Read must be the identity on adjacency structure even
// for messy inputs (comments, blank lines, duplicate and reversed edges).
func TestReadWriteReadRoundTrip(t *testing.T) {
	in := "# messy input\n6\n\n0 1\n1 0\n2 3\n# mid comment\n3 4\n4 5\n5 0\n0 1\n"
	first, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Write(&sb, first, "round trip"); err != nil {
		t.Fatal(err)
	}
	second, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if second.N() != first.N() || second.M() != first.M() {
		t.Fatalf("shape changed: n %d->%d, m %d->%d", first.N(), second.N(), first.M(), second.M())
	}
	for v := 0; v < first.N(); v++ {
		for w := v + 1; w < first.N(); w++ {
			if first.HasEdge(v, w) != second.HasEdge(v, w) {
				t.Fatalf("edge {%d,%d} changed across round trip", v, w)
			}
		}
	}
}

// A multi-MiB line must parse: the scanner buffer grows past the old hard
// 1 MiB cap instead of failing with a bare bufio error.
func TestReadLongLine(t *testing.T) {
	in := "# " + strings.Repeat("x", 2<<20) + "\n3\n0 1\n1 2\n"
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatalf("2 MiB comment line rejected: %v", err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("shape n=%d m=%d", g.N(), g.M())
	}
}

// endlessLine feeds 'a' bytes forever without a newline.
type endlessLine struct{}

func (endlessLine) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 'a'
	}
	return len(p), nil
}

func TestReadLineTooLong(t *testing.T) {
	_, err := Read(endlessLine{})
	if !errors.Is(err, ErrLineTooLong) {
		t.Fatalf("want ErrLineTooLong, got %v", err)
	}
	if !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("error does not name the line: %v", err)
	}
}

func TestCanonicalHash(t *testing.T) {
	a, err := Read(strings.NewReader("4\n0 1\n1 2\n2 3\n"))
	if err != nil {
		t.Fatal(err)
	}
	// Same edge set in a different order and orientation.
	b, err := Read(strings.NewReader("# same graph\n4\n2 3\n2 1\n1 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if CanonicalHash(a) != CanonicalHash(b) {
		t.Fatal("hash must be order-independent")
	}
	c, err := Read(strings.NewReader("4\n0 1\n1 2\n2 3\n3 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if CanonicalHash(a) == CanonicalHash(c) {
		t.Fatal("different edge sets must hash differently")
	}
	d, err := Read(strings.NewReader("5\n0 1\n1 2\n2 3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if CanonicalHash(a) == CanonicalHash(d) {
		t.Fatal("different vertex counts must hash differently")
	}
}

// Property: Write then Read is the identity on adjacency structure.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g := graph.ErdosRenyi(n, 0.3, rng)
		var sb strings.Builder
		if err := Write(&sb, g, ""); err != nil {
			return false
		}
		back, err := Read(strings.NewReader(sb.String()))
		if err != nil || back.N() != g.N() || back.M() != g.M() {
			return false
		}
		for v := 0; v < n; v++ {
			for w := v + 1; w < n; w++ {
				if g.HasEdge(v, w) != back.HasEdge(v, w) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
