package bench

import (
	"errors"
	"fmt"
	"math/rand"

	"deltacoloring/internal/acd"
	"deltacoloring/internal/baseline"
	"deltacoloring/internal/coloring"
	"deltacoloring/internal/core"
	"deltacoloring/internal/graph"
	"deltacoloring/internal/linial"
	"deltacoloring/internal/local"
	"deltacoloring/internal/matching"
)

// E7 — Lemmas 15/16: slack triads are vertex-disjoint, one per Type I⁺
// clique, and the slack-pair conflict graph G_V has degree at most Δ-2.
func E7(s Scale) (*Table, error) {
	t := &Table{
		ID:     "E7",
		Title:  "slack triads and the pair conflict graph (Lemma 15: disjoint triads; Lemma 16: deg(G_V) <= Δ-2)",
		Header: []string{"instance", "Δ", "hard cliques", "triads", "G_V maxdeg", "Δ-2", "ok"},
	}
	insts := []struct {
		name     string
		m, delta int
	}{
		{"hard m=16", 16, 16},
		{"hard m=32", 32, 16},
		{"hard m=24 Δ=24", 24, 24},
	}
	if s == Full {
		insts = append(insts, struct {
			name     string
			m, delta int
		}{"paper Δ=126", 126, 126})
	}
	for _, in := range insts {
		g, _ := graph.HardCliqueBipartite(in.m, in.delta)
		p := core.TestParams()
		if in.delta >= 126 {
			p = core.DefaultParams()
		}
		res, err := core.ColorDeterministic(local.New(g), p)
		if err != nil {
			return nil, fmt.Errorf("E7 %s: %w", in.name, err)
		}
		ok := res.Stats.PairGraphMaxDeg <= in.delta-2 && res.Stats.Triads == res.Stats.TypeI
		t.AddRow(in.name, in.delta, res.Stats.HardCliques, res.Stats.Triads,
			res.Stats.PairGraphMaxDeg, in.delta-2, ok)
	}
	t.Notes = append(t.Notes,
		"triad disjointness and pair non-adjacency are hard runtime checks inside the pipeline; a run only succeeds if they hold")
	return t, nil
}

// E8 — Lemmas 12/13: the matching rebalancing gives every C_HEG clique
// exactly P outgoing F2 edges; after sparsification exactly 2 outgoing and
// bounded incoming edges remain.
func E8(s Scale) (*Table, error) {
	t := &Table{
		ID:     "E8",
		Title:  "balanced matching pipeline (Lemma 12: P outgoing per clique; Lemma 13: 2 outgoing, bounded incoming)",
		Header: []string{"n", "Δ", "|F1|", "|F2|", "|F3|", "F2/clique", "F3/clique", "incoming bound"},
	}
	ms := []int{16, 32}
	if s != Quick {
		ms = append(ms, 64)
	}
	for _, m := range ms {
		g, _ := graph.HardCliqueBipartite(m, 16)
		res, err := core.ColorDeterministic(local.New(g), core.TestParams())
		if err != nil {
			return nil, fmt.Errorf("E8 m=%d: %w", m, err)
		}
		cliques := res.Stats.HardCliques
		bound := (16.0 - 2*core.TestParams().Eps*16 - 1) / 2
		t.AddRow(g.N(), 16, res.Stats.F1Size, res.Stats.F2Size, res.Stats.F3Size,
			float64(res.Stats.F2Size)/float64(cliques),
			float64(res.Stats.F3Size)/float64(cliques),
			fmt.Sprintf("< %.1f (checked)", bound))
	}
	return t, nil
}

// E9 — ablation: without the HEG rebalancing, the raw maximal matching
// leaves cliques without enough outgoing edges to form slack triads —
// the failure mode motivating Phase 1's proposal algorithm.
func E9(s Scale) (*Table, error) {
	t := &Table{
		ID:     "E9",
		Title:  "ablation — naive edge claiming vs HEG rebalancing (cliques left without 2 private matched edges)",
		Header: []string{"n", "cliques", "starved (naive, adversarial IDs)", "starved (after HEG)", "naive worst grabs/clique"},
	}
	ms := []int{16, 32}
	if s != Quick {
		ms = append(ms, 64, 128)
	}
	for _, m := range ms {
		g, _ := graph.HardCliqueBipartite(m, 16)
		// Adversarial IDs: every left-side vertex outranks every right-side
		// vertex, so under "higher ID claims the edge" the entire right
		// side is starved. (IDs only permute; the graph is unchanged.)
		adv := adversarialIDs(g)
		net := local.New(adv)
		a, err := acd.Compute(net, core.TestParams().Eps)
		if err != nil {
			return nil, err
		}
		var ext []graph.Edge
		for _, e := range adv.Edges() {
			if a.CliqueOf[e.U] != a.CliqueOf[e.V] {
				ext = append(ext, e)
			}
		}
		f1, err := matching.MaximalOn(net, ext)
		if err != nil {
			return nil, err
		}
		grabs := make([]int, len(a.Cliques))
		for _, e := range f1 {
			winner := e.U
			if adv.ID(e.V) > adv.ID(e.U) {
				winner = e.V
			}
			grabs[a.CliqueOf[winner]]++
		}
		starved, worst := 0, 1<<30
		for _, c := range grabs {
			if c < 2 {
				starved++
			}
			if c < worst {
				worst = c
			}
		}
		// The full pipeline on the same adversarial instance: Lemma 12/13
		// guarantee 2 private edges per clique or the run errors out.
		res, err := core.ColorDeterministic(local.New(adv), core.TestParams())
		if err != nil {
			return nil, err
		}
		starvedAfter := res.Stats.HardCliques - res.Stats.TypeI
		t.AddRow(adv.N(), len(a.Cliques), starved, starvedAfter, worst)
	}
	t.Notes = append(t.Notes,
		"half of all cliques are starved by the naive rule on this instance; the HEG-based proposal algorithm leaves none (column 4 counts only Type II cliques, which lean on easy neighbors instead)")
	return t, nil
}

// adversarialIDs gives the left half of the vertex range strictly larger
// IDs than the right half.
func adversarialIDs(g *graph.Graph) *graph.Graph {
	b := graph.NewBuilder(g.N())
	half := g.N() / 2
	for v := 0; v < g.N(); v++ {
		if v < half {
			b.SetID(v, uint64(g.N()+v))
		} else {
			b.SetID(v, uint64(v-half))
		}
		for _, w := range g.Neighbors(v) {
			if v < int(w) {
				b.AddEdge(v, int(w))
			}
		}
	}
	return b.MustBuild()
}

// E10 — the introduction's motivation: one-round random color trials give
// permanent slack to sparse vertices but almost none to dense ones.
func E10(s Scale) (*Table, error) {
	t := &Table{
		ID:     "E10",
		Title:  "permanent slack after one random color trial (sparse vs dense neighborhoods)",
		Header: []string{"family", "n", "Δ", "slack fraction", "colored fraction"},
	}
	rng := rand.New(rand.NewSource(57))
	type fam struct {
		name string
		g    *graph.Graph
	}
	var fams []fam
	hard, _ := graph.HardCliqueBipartite(16, 16)
	fams = append(fams,
		fam{"dense (hard cliques)", hard},
		fam{"sparse (random 16-regular)", graph.RandomRegular(512, 16, rng)},
		fam{"sparse (G(n,p), avg deg 12)", graph.ErdosRenyi(512, 12.0/511, rng)},
	)
	trials := 3
	if s == Quick {
		trials = 1
	}
	for _, f := range fams {
		slackSum, coloredSum := 0.0, 0.0
		for i := 0; i < trials; i++ {
			net := local.New(f.g)
			c := coloring.NewPartial(f.g.N())
			baseline.TrialColoring(net, c, f.g.MaxDegree(), 1, rng)
			slackSum += float64(baseline.PermanentSlack(f.g, c)) / float64(f.g.N())
			coloredSum += float64(c.CountColored()) / float64(f.g.N())
		}
		t.AddRow(f.name, f.g.N(), f.g.MaxDegree(), slackSum/float64(trials), coloredSum/float64(trials))
	}
	t.Notes = append(t.Notes,
		"slack fraction = vertices with two same-colored neighbors after ONE trial round; sparse vertices get slack for free, dense ones require the paper's coordinated slack triads")
	return t, nil
}

// E11 — the Figure 1 landscape: Δ+1-coloring is a greedy problem
// (log*-scale rounds, flat in n), Δ-coloring is not (logarithmic growth),
// and the loophole-layering baseline fails outright on hard instances.
func E11(s Scale) (*Table, error) {
	t := &Table{
		ID:     "E11",
		Title:  "problem landscape: Δ+1 (greedy regime) vs Δ-coloring (this paper) vs loophole baseline",
		Header: []string{"n", "Δ+1 rounds", "Δ rounds (ours)", "baseline outcome"},
	}
	for _, m := range s.sizesE1() {
		g, _ := graph.HardCliqueBipartite(m, 16)
		netPlus := local.New(g)
		if _, err := baseline.DeltaPlusOne(netPlus); err != nil {
			return nil, err
		}
		res, err := core.ColorDeterministic(local.New(g), core.TestParams())
		if err != nil {
			return nil, err
		}
		_, _, berr := baseline.LoopholeLayered(local.New(g), 60)
		outcome := "colored"
		if berr != nil {
			if errors.Is(berr, baseline.ErrStuck) {
				outcome = "stuck (no loopholes)"
			} else {
				outcome = "error"
			}
		}
		t.AddRow(g.N(), netPlus.Rounds(), res.Rounds, outcome)
	}
	t.Notes = append(t.Notes,
		"Δ+1 rounds are n-independent up to log* n; Δ-coloring pays the additional Θ(log n) global phases; the loophole-only baseline (prior deterministic approach, cf. [GHKM21]) cannot start on hard graphs")
	return t, nil
}

// E12 — Algorithm 3 / Lemma 20: easy cliques and loopholes are colored
// within the layer budget; the loophole baseline agrees on easy inputs.
func E12(s Scale) (*Table, error) {
	t := &Table{
		ID:     "E12",
		Title:  "easy cliques and loopholes (Lemma 20: layered coloring completes within the layer budget)",
		Header: []string{"family", "n", "layers used", "budget", "rounds", "baseline rounds"},
	}
	ks := []int{8, 16}
	if s != Quick {
		ks = append(ks, 32, 64)
	}
	for _, k := range ks {
		g, _ := graph.EasyCliqueRing(k, 16)
		res, err := core.ColorDeterministic(local.New(g), core.TestParams())
		if err != nil {
			return nil, fmt.Errorf("E12 k=%d: %w", k, err)
		}
		bnet := local.New(g)
		_, _, berr := baseline.LoopholeLayered(bnet, 80)
		baseRounds := "-"
		if berr == nil {
			baseRounds = fmt.Sprintf("%d", bnet.Rounds())
		}
		t.AddRow(fmt.Sprintf("easy ring k=%d", k), g.N(), res.Stats.Layers,
			core.TestParams().Layers, res.Rounds, baseRounds)
	}
	// Mixed instance: hard cliques force Algorithm 2, easy patch exercises
	// Algorithm 3 in the same run.
	g, _ := graph.HardWithEasyPatch(16, 16)
	res, err := core.ColorDeterministic(local.New(g), core.TestParams())
	if err != nil {
		return nil, err
	}
	t.AddRow("hard+easy patch", g.N(), res.Stats.Layers, core.TestParams().Layers, res.Rounds, "-")
	t.Notes = append(t.Notes,
		"the baseline greedily anchors at every non-overlapping loophole, which is cheap on benign instances; Algorithm 3's 6-ruling set costs more rounds but bounds the layer depth on adversarially overlapping loophole sets (and composes with Algorithm 2 on mixed instances, where the baseline cannot run at all)")
	return t, nil
}

// EDelta63 — reproduction finding: the brief announcement's Lemma 11
// arithmetic needs floor(|C|/28) > 1.05·r_H, which integer rounding breaks
// at exactly Δ=63; Δ >= 85 restores it. This runner demonstrates both.
func EDelta63(s Scale) (*Table, error) {
	t := &Table{
		ID:     "E13",
		Title:  "reproduction finding — Lemma 11 integer rounding at the paper's ε = 1/63",
		Header: []string{"Δ", "floor(|C|/28)", "r_H", "Lemma 11 check", "run outcome"},
	}
	if s == Quick {
		t.Notes = append(t.Notes, "skipped at quick scale (instances need n = 2Δ²)")
		return t, nil
	}
	for _, d := range []int{63, 85, 126} {
		if s != Full && d > 90 {
			continue
		}
		g, _ := graph.HardCliqueBipartite(d, d)
		res, err := core.ColorDeterministic(local.New(g), core.DefaultParams())
		subSize := d / core.DefaultSubcliques
		check := float64(subSize) > core.HEGSlack*2.0 // r_H = 2 on this family
		outcome := "colored"
		if err != nil {
			outcome = "rejected: " + errString(err)
		} else if res == nil {
			outcome = "?"
		}
		t.AddRow(d, subSize, 2, check, outcome)
	}
	t.Notes = append(t.Notes,
		"at Δ=63 each sub-clique has only floor(63/28)=2 members versus rank 2: the claimed δ_H > 1.1·r_H fails by integer rounding; the implementation detects this and refuses, while Δ >= 85 satisfies the lemma as stated")
	return t, nil
}

func errString(err error) string {
	s := err.Error()
	if len(s) > 60 {
		return s[:57] + "..."
	}
	return s
}

// E15 — ablation: the Section 1.1 "extremely dense" sketch (slack triads
// from a k-out sinkless orientation of the clique graph) versus the general
// Algorithm 2 pipeline (matching + HEG + splitting) on the family where
// both apply.
func E15(s Scale) (*Table, error) {
	t := &Table{
		ID:     "E15",
		Title:  "ablation — Section 1.1 sketch (sinkless orientation) vs full Algorithm 2 on |C| = Δ instances",
		Header: []string{"n", "sketch rounds", "alg2 rounds", "sketch triads", "alg2 triads"},
	}
	ms := []int{16, 32}
	if s != Quick {
		ms = append(ms, 64, 128)
	}
	for _, m := range ms {
		g, _ := graph.HardCliqueBipartite(m, 16)
		simple, err := core.ColorSimpleDense(local.New(g), core.TestParams())
		if err != nil {
			return nil, fmt.Errorf("E15 m=%d simple: %w", m, err)
		}
		general, err := core.ColorDeterministic(local.New(g), core.TestParams())
		if err != nil {
			return nil, fmt.Errorf("E15 m=%d general: %w", m, err)
		}
		t.AddRow(g.N(), simple.Rounds, general.Rounds, simple.Stats.Triads, general.Stats.Triads)
	}
	t.Notes = append(t.Notes,
		"the sketch replaces matching + hyperedge grabbing + degree splitting by one k-out sinkless orientation; it only works when every almost clique is a hard clique of size exactly Δ, which is why the paper generalizes it")
	return t, nil
}

// Reduction sanity used by E11's note: log* growth demonstration for the
// Δ+1 substrate on cycles.
func LogStarDemo(s Scale) (*Table, error) {
	t := &Table{
		ID:     "E14",
		Title:  "Θ(log* n) substrate check — Linial coloring rounds on cycles",
		Header: []string{"n", "rounds", "colors"},
	}
	ns := []int{1 << 8, 1 << 12}
	if s != Quick {
		ns = append(ns, 1<<16, 1<<20)
	}
	for _, n := range ns {
		g := graph.Cycle(n)
		colors, rounds, err := linial.ColorGraph(g, 3)
		if err != nil {
			return nil, err
		}
		max := 0
		for _, c := range colors {
			if c > max {
				max = c
			}
		}
		t.AddRow(n, rounds, max+1)
	}
	t.Notes = append(t.Notes, "rounds are essentially flat across four orders of magnitude — the log* regime of Figure 1's greedy problems")
	return t, nil
}

// All runs every experiment at the given scale.
func All(s Scale) ([]*Table, error) {
	runners := []func(Scale) (*Table, error){E1, E2, E3, E4, E5, E6, E7, E8, E9, E10, E11, E12, EDelta63, LogStarDemo, E15, E16}
	var out []*Table
	for _, r := range runners {
		tab, err := r(s)
		if err != nil {
			return out, err
		}
		out = append(out, tab)
	}
	return out, nil
}

// E16 — sensitivity: the pre-shattering T-node density (TProb) against
// shattering quality and total rounds. The paper leaves the placement
// probability as a tunable; this sweep shows the tradeoff between the
// pre-shattering work (more T-nodes) and the post-shattering component
// sizes (fewer T-nodes).
func E16(s Scale) (*Table, error) {
	t := &Table{
		ID:     "E16",
		Title:  "sensitivity — T-node density vs shattering (Δ=16 hard family)",
		Header: []string{"TProb", "seed", "T-kept", "components", "max comp", "comp rounds", "total rounds"},
	}
	m := 32
	if s == Full {
		m = 64
	}
	g, _ := graph.HardCliqueBipartite(m, 16)
	probs := []float64{0.05, 0.25, 0.5, 1.0}
	for _, prob := range probs {
		for _, seed := range s.seeds() {
			rng := rand.New(rand.NewSource(seed))
			p := core.TestRandomizedParams()
			p.TProb = prob
			res, err := core.ColorRandomized(local.New(g), p, rng)
			if err != nil {
				return nil, fmt.Errorf("E16 p=%.2f seed=%d: %w", prob, seed, err)
			}
			t.AddRow(prob, seed, res.Rand.TNodesKept, res.Rand.Components,
				res.Rand.MaxComponent, res.Rand.ComponentRounds, res.Rounds)
		}
	}
	t.Notes = append(t.Notes,
		"sparser T-nodes leave larger components whose deterministic post-shattering dominates the rounds; dense T-nodes shrink components at a small pre-shattering cost — any constant probability works asymptotically, which is the paper's point")
	return t, nil
}
