// Package bench implements the evaluation harness: one runner per
// experiment (E1–E16 in EXPERIMENTS.md), each producing a printable table.
// The paper is theory-only, so the experiments validate its theorem- and
// lemma-level claims empirically; DESIGN.md section 4 maps each experiment
// to the claims and modules it covers.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's result.
type Table struct {
	// ID is the experiment identifier, e.g. "E1".
	ID string
	// Title states the claim under test.
	Title string
	// Header names the columns.
	Header []string
	// Rows holds the measurements, formatted.
	Rows [][]string
	// Notes carries caveats and interpretations printed under the table.
	Notes []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch x := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", x)
		default:
			row[i] = fmt.Sprintf("%v", x)
		}
	}
	t.Rows = append(t.Rows, row)
}

// WriteTo renders the table as aligned plain text.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	sb.WriteByte('\n')
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// String renders the table (for tests and logs).
func (t *Table) String() string {
	var sb strings.Builder
	if _, err := t.WriteTo(&sb); err != nil {
		return fmt.Sprintf("table render error: %v", err)
	}
	return sb.String()
}

// Scale selects experiment sizes.
type Scale int

// Scales: Quick for unit tests and -short benches, Standard for the bench
// suite, Full for the cmd/deltabench report (includes the paper-exact
// Δ=126 points).
const (
	Quick Scale = iota
	Standard
	Full
)

// sizesE1 returns the m-sweep (cliques per side) for the hard family at
// Δ=16 per scale.
func (s Scale) sizesE1() []int {
	switch s {
	case Quick:
		return []int{16, 32}
	case Standard:
		return []int{16, 32, 64, 128}
	default:
		return []int{16, 32, 64, 128, 256, 512}
	}
}

func (s Scale) seeds() []int64 {
	switch s {
	case Quick:
		return []int64{1}
	case Standard:
		return []int64{1, 2, 3}
	default:
		return []int64{1, 2, 3, 4, 5}
	}
}
