package bench

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"deltacoloring/internal/core"
	"deltacoloring/internal/graph"
	"deltacoloring/internal/heg"
	"deltacoloring/internal/local"
	"deltacoloring/internal/split"
)

// spanRounds extracts the rounds of the first span whose name has the given
// prefix (0 if absent).
func spanRounds(spans []local.Span, prefix string) int {
	total := 0
	for _, s := range spans {
		if len(s.Name) >= len(prefix) && s.Name[:len(prefix)] == prefix {
			total += s.Rounds
		}
	}
	return total
}

// E1 — Theorem 1: deterministic round complexity scales as O(log n) at
// constant Δ on the hard dense family.
func E1(s Scale) (*Table, error) {
	t := &Table{
		ID:     "E1",
		Title:  "deterministic rounds vs n at Δ=16 (claim: O(log n); hard clique family)",
		Header: []string{"n", "log2(n)", "rounds", "alg2:match", "alg2:heg", "alg2:sparsify", "alg2:color", "rounds/log2(n)"},
	}
	const delta = 16
	for _, m := range s.sizesE1() {
		g, _ := graph.HardCliqueBipartite(m, delta)
		net := local.New(g)
		res, err := core.ColorDeterministic(net, core.TestParams())
		if err != nil {
			return nil, fmt.Errorf("E1 m=%d: %w", m, err)
		}
		lg := math.Log2(float64(g.N()))
		colorRounds := spanRounds(res.Spans, "alg2/pairs") + spanRounds(res.Spans, "alg2/rest")
		t.AddRow(g.N(), lg, res.Rounds,
			spanRounds(res.Spans, "alg2/matching"),
			spanRounds(res.Spans, "alg2/heg"),
			spanRounds(res.Spans, "alg2/sparsify"),
			colorRounds,
			float64(res.Rounds)/lg)
	}
	t.Notes = append(t.Notes,
		"the symmetry-breaking subroutines contribute a large n-independent constant (our deg+1 substrate is O(Δ² + log* n)); the n-dependence lives in the HEG and sparsify columns",
		"shape check: total rounds grow by a bounded additive amount per doubling of n (logarithmic), never multiplicatively")
	return t, nil
}

// E2 — Theorem 1: the O(Δ + log n) branch; rounds vs Δ at (near-)fixed n.
func E2(s Scale) (*Table, error) {
	t := &Table{
		ID:     "E2",
		Title:  "deterministic rounds vs Δ (claim: polynomial in Δ, no n blow-up; paper branch is O(Δ + log n))",
		Header: []string{"Δ", "n", "rounds", "G_V maxdeg", "bound Δ-2"},
	}
	deltas := []int{16, 24, 32}
	if s == Full {
		deltas = append(deltas, 48, 64)
	}
	for _, d := range deltas {
		m := d
		if m < 24 {
			m = 24
		}
		g, _ := graph.HardCliqueBipartite(m, d)
		p := core.TestParams()
		res, err := core.ColorDeterministic(local.New(g), p)
		if err != nil {
			return nil, fmt.Errorf("E2 Δ=%d: %w", d, err)
		}
		t.AddRow(d, g.N(), res.Rounds, res.Stats.PairGraphMaxDeg, d-2)
	}
	t.Notes = append(t.Notes,
		"our deg+1-list substrate costs O(Δ² ) instead of the paper's O(√(Δ log Δ)) [MT20], so the Δ-dependence here is quadratic; the claim preserved is that rounds depend on Δ and log n only")
	return t, nil
}

// E3 — Theorem 2: randomized rounds and shattering behaviour vs n.
func E3(s Scale) (*Table, error) {
	t := &Table{
		ID:     "E3",
		Title:  "randomized algorithm vs n at Δ=16 (claim: shattered components stay small; rounds ~ O(Δ + log log n))",
		Header: []string{"n", "seed", "rounds", "T-kept", "components", "max comp", "comp rounds"},
	}
	const delta = 16
	for _, m := range s.sizesE1() {
		g, _ := graph.HardCliqueBipartite(m, delta)
		for _, seed := range s.seeds() {
			rng := rand.New(rand.NewSource(seed))
			res, err := core.ColorRandomized(local.New(g), core.TestRandomizedParams(), rng)
			if err != nil {
				return nil, fmt.Errorf("E3 m=%d seed=%d: %w", m, seed, err)
			}
			t.AddRow(g.N(), seed, res.Rounds, res.Rand.TNodesKept,
				res.Rand.Components, res.Rand.MaxComponent, res.Rand.ComponentRounds)
		}
	}
	t.Notes = append(t.Notes,
		"max component size should grow far slower than n (poly Δ · log n in the paper's analysis)")
	return t, nil
}

// E4 — validity: every run on every supported family yields a verified
// Δ-coloring; unsupported inputs fail loudly.
func E4(s Scale) (*Table, error) {
	t := &Table{
		ID:     "E4",
		Title:  "validity across graph families (claim: proper complete Δ-colorings, machine-verified)",
		Header: []string{"family", "n", "Δ", "algorithm", "outcome", "rounds"},
	}
	type inst struct {
		name string
		g    *graph.Graph
	}
	hard, _ := graph.HardCliqueBipartite(16, 16)
	easy, _ := graph.EasyCliqueRing(8, 16)
	mixed, _ := graph.HardWithEasyPatch(16, 16)
	k17 := graph.RemoveEdges(graph.Complete(17), []graph.Edge{{U: 0, V: 1}})
	families := []inst{
		{"hard-bipartite", hard},
		{"easy-ring", easy},
		{"hard+easy-patch", mixed},
		{"K17-minus-edge", k17},
	}
	for _, f := range families {
		res, err := core.ColorDeterministic(local.New(f.g), core.TestParams())
		if err != nil {
			return nil, fmt.Errorf("E4 %s: %w", f.name, err)
		}
		t.AddRow(f.name, f.g.N(), f.g.MaxDegree(), "deterministic", "valid", res.Rounds)
		for _, seed := range s.seeds() {
			rng := rand.New(rand.NewSource(seed))
			rres, err := core.ColorRandomized(local.New(f.g), core.TestRandomizedParams(), rng)
			if err != nil {
				return nil, fmt.Errorf("E4 %s rand: %w", f.name, err)
			}
			t.AddRow(f.name, f.g.N(), f.g.MaxDegree(), fmt.Sprintf("randomized(%d)", seed), "valid", rres.Rounds)
		}
	}
	// Negative controls.
	brooks := graph.Union(graph.Complete(17), graph.Complete(17))
	if _, err := core.ColorDeterministic(local.New(brooks), core.TestParams()); !errors.Is(err, core.ErrBrooks) {
		return nil, fmt.Errorf("E4: Brooks control not rejected: %v", err)
	}
	t.AddRow("2xK17 (Brooks)", brooks.N(), brooks.MaxDegree(), "deterministic", "rejected (ErrBrooks)", "-")
	sparse := graph.Torus(10, 10)
	if _, err := core.ColorDeterministic(local.New(sparse), core.TestParams()); !errors.Is(err, core.ErrNotDense) {
		return nil, fmt.Errorf("E4: sparse control not rejected: %v", err)
	}
	t.AddRow("torus (sparse)", sparse.N(), sparse.MaxDegree(), "deterministic", "rejected (ErrNotDense)", "-")
	return t, nil
}

// E5 — Lemma 5/11: hyperedge grabbing solves in logarithmic rounds when
// δ > 1.05·r, and the pipeline's instances satisfy the slack.
func E5(s Scale) (*Table, error) {
	t := &Table{
		ID:     "E5",
		Title:  "hyperedge grabbing vs n and slack δ/r (Lemma 5: O(log_{δ/r} n) rounds; Lemma 11: pipeline instances have slack)",
		Header: []string{"instance", "n(H)", "rank", "minDeg", "δ/r", "proposal rds", "aug waves", "max path"},
	}
	rng := rand.New(rand.NewSource(55))
	sizes := []int{200, 1000}
	if s == Full {
		sizes = append(sizes, 5000, 20000)
	}
	for _, n := range sizes {
		for _, cfg := range []struct{ r, del int }{{3, 4}, {4, 6}, {4, 9}} {
			h := randomHypergraph(n, 3*n, cfg.del, cfg.r, rng)
			net := local.New(graph.Path(2))
			grab, st, err := heg.Solve(net, h)
			if err != nil {
				return nil, fmt.Errorf("E5 n=%d: %w", n, err)
			}
			if err := heg.Verify(h, grab); err != nil {
				return nil, err
			}
			ratio := float64(h.MinDegree()) / float64(h.Rank())
			t.AddRow(fmt.Sprintf("synthetic r=%d δ=%d", cfg.r, cfg.del), n, h.Rank(), h.MinDegree(),
				ratio, st.ProposalRounds, st.AugmentWaves, st.MaxPathLen)
		}
	}
	// Pipeline-extracted instance.
	g, _ := graph.HardCliqueBipartite(32, 16)
	res, err := core.ColorDeterministic(local.New(g), core.TestParams())
	if err != nil {
		return nil, err
	}
	t.AddRow("pipeline Δ=16 m=32", "-", res.Stats.HypergraphRank, res.Stats.HypergraphMinDeg,
		float64(res.Stats.HypergraphMinDeg)/float64(res.Stats.HypergraphRank),
		res.Stats.HEG.ProposalRounds, res.Stats.HEG.AugmentWaves, res.Stats.HEG.MaxPathLen)
	t.Notes = append(t.Notes,
		"higher δ/r slack shrinks both the proposal rounds and the augmenting-path lengths, matching the O(log_{δ/r} n) bound")
	return t, nil
}

func randomHypergraph(n, numEdges, del, r int, rng *rand.Rand) *heg.Hypergraph {
	edges := make([][]int, numEdges)
	for v := 0; v < n; v++ {
		placed := 0
		for tries := 0; placed < del && tries < 100000; tries++ {
			e := rng.Intn(numEdges)
			if len(edges[e]) < r && !containsInt(edges[e], v) {
				edges[e] = append(edges[e], v)
				placed++
			}
		}
	}
	var nonEmpty [][]int
	for _, e := range edges {
		if len(e) > 0 {
			nonEmpty = append(nonEmpty, e)
		}
	}
	h, err := heg.NewHypergraph(n, nonEmpty)
	if err != nil {
		panic(err)
	}
	return h
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// E6 — Lemma 21/Corollary 22: degree-splitting discrepancy stays within the
// ε·d + a band.
func E6(s Scale) (*Table, error) {
	t := &Table{
		ID:     "E6",
		Title:  "degree splitting discrepancy (Cor. 22 band: deg/2^i ± (ε·deg + a))",
		Header: []string{"d", "n", "levels", "ε", "worst |dev|", "band", "ok"},
	}
	rng := rand.New(rand.NewSource(56))
	ns := []int{100}
	if s != Quick {
		ns = append(ns, 400)
	}
	for _, n := range ns {
		for _, d := range []int{8, 16, 28} {
			for _, cfg := range []struct {
				levels int
				eps    float64
			}{{1, 0.25}, {2, 0.1}, {2, 1.0 / 100}} {
				g := graph.RandomRegular(n, d, rng)
				edges := g.Edges()
				part, err := split.Split(local.New(g), g.N(), edges, cfg.levels, cfg.eps)
				if err != nil {
					return nil, fmt.Errorf("E6 n=%d d=%d: %w", n, d, err)
				}
				if err := split.VerifyParts(g.N(), edges, part, cfg.levels, cfg.eps); err != nil {
					return nil, err
				}
				worst := worstDeviation(g.N(), edges, part, cfg.levels)
				a := 0.0
				for j := 0; j < cfg.levels; j++ {
					a += 2 * math.Pow(0.5+cfg.eps/4, float64(j))
				}
				band := cfg.eps*float64(d) + a
				t.AddRow(d, n, cfg.levels, fmt.Sprintf("%.3f", cfg.eps), worst, band, worst <= band)
			}
		}
	}
	return t, nil
}

func worstDeviation(n int, edges []graph.Edge, part []int, levels int) float64 {
	k := 1 << levels
	deg := make([]int, n)
	cnt := make([][]int, k)
	for p := range cnt {
		cnt[p] = make([]int, n)
	}
	for e, lbl := range part {
		deg[edges[e].U]++
		deg[edges[e].V]++
		cnt[lbl][edges[e].U]++
		cnt[lbl][edges[e].V]++
	}
	worst := 0.0
	for v := 0; v < n; v++ {
		want := float64(deg[v]) / float64(k)
		for p := 0; p < k; p++ {
			if dev := math.Abs(float64(cnt[p][v]) - want); dev > worst {
				worst = dev
			}
		}
	}
	return worst
}
