package bench

import (
	"fmt"

	"deltacoloring/internal/core"
	"deltacoloring/internal/faults"
	"deltacoloring/internal/graph"
	"deltacoloring/internal/local"
	"deltacoloring/internal/repair"
)

// E18 — fault tolerance: damage a finished pipeline coloring with seeded
// crash-stop + corruption faults at increasing rates, repair distributedly,
// and measure the blast radius (damaged vertices, repair-set growth), the
// color cost (extra colors beyond Δ), and the round cost of detection plus
// recoloring. E18 backs DESIGN.md's "fault model and repair contract"
// section; it is run by `deltabench -faults` and deliberately kept out of
// All(), which mirrors the paper's own E1–E16 evaluation.
func E18(s Scale) (*Table, error) {
	t := &Table{
		ID:     "E18",
		Title:  "repair cost vs fault rate (Δ=16 hard family; crash+corrupt, seeded)",
		Header: []string{"rate", "seed", "palette", "damaged", "repair set", "grown", "extra colors", "repair rounds"},
	}
	m := 32
	if s == Full {
		m = 128
	}
	g, _ := graph.HardCliqueBipartite(m, 16)
	net := local.New(g)
	res, err := core.ColorDeterministic(net, core.TestParams())
	net.Close()
	if err != nil {
		return nil, fmt.Errorf("E18 base coloring: %w", err)
	}
	clean := res.Coloring.Colors
	delta := g.MaxDegree()

	rates := []float64{0.01, 0.02, 0.05, 0.1, 0.2}
	if s == Quick {
		rates = []float64{0.02, 0.1}
	}
	for _, rate := range rates {
		for _, seed := range s.seeds() {
			plan, err := faults.NewPlan(g, faults.Config{
				Seed: seed, CrashRate: rate / 2, CorruptRate: rate / 2,
			})
			if err != nil {
				return nil, fmt.Errorf("E18 rate=%.2f: %w", rate, err)
			}
			for _, pal := range []struct {
				name string
				k    int
			}{{"Δ", delta}, {"Δ+1", delta + 1}} {
				dmg, _ := plan.Damage(clean)
				rnet := local.New(g)
				rres, err := repair.Repair(rnet, dmg, pal.k)
				rnet.Close()
				if err != nil {
					return nil, fmt.Errorf("E18 rate=%.2f seed=%d palette=%s: %w", rate, seed, pal.name, err)
				}
				extra := 0
				if rres.Grown {
					extra = 1
				}
				t.AddRow(rate, seed, pal.name, len(rres.Damaged), len(rres.RepairSet),
					rres.Grown, extra, rres.Rounds)
			}
		}
	}
	t.Notes = append(t.Notes,
		"the hard family is Δ-regular, so the Δ palette never has deg+1 slack and repair always grows + spends the extra color; the Δ+1 palette always repairs tight — the two rows bracket the contract",
		"repair is charged through the normal LOCAL round counter: 1 detection round, plus the deg+1 list-coloring rounds of the damaged region",
		"the Δ-palette tight attempt succeeds when every damaged vertex keeps deg+1 slack; otherwise the region grows to its closed 1-hop neighborhood and spends the single extra color Δ — so 'extra colors' is 0 or 1 by construction",
		"blast radius scales linearly with the fault rate while the round cost stays flat: repair work is local to the damaged region, the paper's locality thesis applied to recovery")
	return t, nil
}
