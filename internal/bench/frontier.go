package bench

import (
	"fmt"
	"math/rand"

	"deltacoloring/internal/core"
	"deltacoloring/internal/faults"
	"deltacoloring/internal/graph"
	"deltacoloring/internal/local"
	"deltacoloring/internal/repair"
	"deltacoloring/internal/rulingset"
)

// frontierWorkload is one E19 measurement subject: a graph plus a runner
// executed once per engine (frontier-scheduled and dense).
type frontierWorkload struct {
	name string
	g    *graph.Graph
	run  func(net *local.Network) error
}

// E19 — frontier occupancy: for each flagship workload, how many state-engine
// rounds ran on the sparse (frontier-scheduled) path and how many vertex
// evaluations the frontier skipped. Every workload is executed twice, once
// per engine, and E19 fails if the round counts diverge — the same
// result-preservation cross-check `make bench-smoke` and CI run. E19 backs
// DESIGN.md's "Frontier scheduling contract" section; it is run by
// `deltabench -frontier` and, like E18, kept out of the default E1–E16 sweep.
func E19(s Scale) (*Table, error) {
	t := &Table{
		ID:     "E19",
		Title:  "frontier occupancy: sparse rounds and skipped evaluations per workload",
		Header: []string{"workload", "n", "Δ", "rounds", "engine rounds", "sparse", "sparse%", "evaluated", "skipped", "skipped%"},
	}
	m := 32
	if s == Quick {
		m = 16
	} else if s == Full {
		m = 64
	}
	hard, _ := graph.HardCliqueBipartite(m, 16)
	ring, _ := graph.EasyCliqueRing(2*m, 16)

	workloads := []frontierWorkload{
		{"deterministic/hard", hard, func(net *local.Network) error {
			_, err := core.ColorDeterministic(net, core.TestParams())
			return err
		}},
		{"deterministic/easy-ring", ring, func(net *local.Network) error {
			_, err := core.ColorDeterministic(net, core.TestParams())
			return err
		}},
		{"randomized/hard", hard, func(net *local.Network) error {
			_, err := core.ColorRandomized(net, core.TestRandomizedParams(), rand.New(rand.NewSource(1)))
			return err
		}},
		{"mis/hard", hard, func(net *local.Network) error {
			_, err := rulingset.MIS(net)
			return err
		}},
	}

	// Repair workload: a fixed damaged coloring, recolored with the Δ+1
	// palette (the tight-contract row of E18).
	{
		net := local.New(hard)
		res, err := core.ColorDeterministic(net, core.TestParams())
		net.Close()
		if err != nil {
			return nil, fmt.Errorf("E19 base coloring: %w", err)
		}
		plan, err := faults.NewPlan(hard, faults.Config{Seed: 1, CrashRate: 0.025, CorruptRate: 0.025})
		if err != nil {
			return nil, fmt.Errorf("E19 fault plan: %w", err)
		}
		clean := res.Coloring.Colors
		workloads = append(workloads, frontierWorkload{"repair/hard-5pct", hard, func(net *local.Network) error {
			dmg, _ := plan.Damage(clean)
			_, err := repair.Repair(net, dmg, hard.MaxDegree()+1)
			return err
		}})
	}

	for _, wl := range workloads {
		rounds := [2]int{}
		var fs local.FrontierStats
		for pass, frontier := range []bool{true, false} {
			net := local.New(wl.g)
			net.SetFrontier(frontier)
			err := wl.run(net)
			rounds[pass] = net.Rounds()
			if frontier {
				fs = net.FrontierStats()
			}
			net.Close()
			if err != nil {
				return nil, fmt.Errorf("E19 %s (frontier=%v): %w", wl.name, frontier, err)
			}
		}
		if rounds[0] != rounds[1] {
			return nil, fmt.Errorf("E19 %s: engine divergence: frontier charged %d rounds, dense %d",
				wl.name, rounds[0], rounds[1])
		}
		total := fs.ActiveVertices + fs.SkippedVertices
		t.AddRow(wl.name, wl.g.N(), wl.g.MaxDegree(), rounds[0],
			fs.EngineRounds, fs.SparseRounds, pct(fs.SparseRounds, fs.EngineRounds),
			fs.ActiveVertices, fs.SkippedVertices, pct64(fs.SkippedVertices, total))
	}
	t.Notes = append(t.Notes,
		"each workload ran once per engine; round counts matched exactly (the run fails otherwise), so the occupancy figures come with a result-preservation certificate",
		"'engine rounds' counts state-engine evaluation rounds (Step/Iterate/Sweep), a subset of the LOCAL rounds charged; 'sparse' is the fraction executed on the frontier path",
		"'skipped' counts vertex evaluations the activation set proved redundant (closed neighborhood unchanged); class sweeps (Linial reduction, MIS, slot coloring) dominate the skips",
		"rounds carrying fault views, and the round after, always run dense by design — see DESIGN.md, 'Frontier scheduling contract'")
	return t, nil
}

func pct(a, b int) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", 100*float64(a)/float64(b))
}

func pct64(a, b int64) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", 100*float64(a)/float64(b))
}
