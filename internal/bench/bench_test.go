package bench

import (
	"fmt"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID:     "EX",
		Title:  "demo",
		Header: []string{"a", "bb"},
		Notes:  []string{"a note"},
	}
	tab.AddRow(1, 2.5)
	tab.AddRow("long-cell", true)
	out := tab.String()
	for _, want := range []string{"EX: demo", "a", "bb", "2.50", "long-cell", "true", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

// Every experiment must run cleanly at Quick scale and produce rows.
func TestAllExperimentsQuick(t *testing.T) {
	tables, err := All(Quick)
	if err != nil {
		t.Fatalf("All: %v", err)
	}
	if len(tables) != 16 {
		t.Fatalf("got %d tables, want 16", len(tables))
	}
	for _, tab := range tables {
		if tab.ID == "E13" {
			continue // skipped at quick scale by design
		}
		if len(tab.Rows) == 0 {
			t.Fatalf("%s produced no rows", tab.ID)
		}
		if len(tab.Header) == 0 || tab.Title == "" {
			t.Fatalf("%s missing metadata", tab.ID)
		}
		for _, row := range tab.Rows {
			if len(row) != len(tab.Header) {
				t.Fatalf("%s row width %d != header width %d", tab.ID, len(row), len(tab.Header))
			}
		}
	}
}

// Spot-check experiment semantics at Quick scale.
func TestE10SlackSeparation(t *testing.T) {
	tab, err := E10(Quick)
	if err != nil {
		t.Fatal(err)
	}
	// Row 0 is the dense family, rows 1-2 sparse; slack fraction column 3.
	parse := func(s string) float64 {
		var f float64
		if _, err := fmt.Sscanf(s, "%f", &f); err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		return f
	}
	dense := parse(tab.Rows[0][3])
	sparse := parse(tab.Rows[1][3])
	if dense >= sparse {
		t.Fatalf("dense slack %.3f should be below sparse slack %.3f", dense, sparse)
	}
}

func TestE11BaselineStuck(t *testing.T) {
	tab, err := E11(Quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if !strings.Contains(row[3], "stuck") {
			t.Fatalf("baseline should be stuck on hard graphs, got %q", row[3])
		}
	}
}

// E18 stays out of All() (the paper-mirroring E1–E16 suite) and is driven by
// `deltabench -faults`; it must still produce a well-formed table at every
// scale the tests exercise.
func TestE18Quick(t *testing.T) {
	tab, err := E18(Quick)
	if err != nil {
		t.Fatalf("E18: %v", err)
	}
	if tab.ID != "E18" || len(tab.Rows) == 0 {
		t.Fatalf("E18 malformed: %+v", tab)
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Header) {
			t.Fatalf("row width %d != header width %d", len(row), len(tab.Header))
		}
	}
	// The Δ+1 palette must never grow or spend an extra color; the Δ palette
	// on the Δ-regular hard family must always do both when damage exists.
	for _, row := range tab.Rows {
		palette, damaged, grown, extra := row[2], row[3], row[5], row[6]
		if damaged == "0" {
			continue
		}
		switch palette {
		case "Δ+1":
			if grown != "false" || extra != "0" {
				t.Fatalf("Δ+1 palette grew or spent extra color: %v", row)
			}
		case "Δ":
			if grown != "true" || extra != "1" {
				t.Fatalf("Δ palette on Δ-regular family repaired tight: %v", row)
			}
		}
	}
}

// E19, like E18, stays out of All() and is driven by `deltabench -frontier`.
// Running it IS the frontier/dense cross-check — E19 returns an error on any
// round-count divergence — so this test doubles as a result-preservation
// gate. The occupancy assertion is deliberately loose: class sweeps dominate
// the workloads, so a healthy frontier must skip a nontrivial share of
// evaluations and run a nontrivial share of rounds sparse.
func TestE19Quick(t *testing.T) {
	tab, err := E19(Quick)
	if err != nil {
		t.Fatalf("E19: %v", err)
	}
	if tab.ID != "E19" || len(tab.Rows) == 0 {
		t.Fatalf("E19 malformed: %+v", tab)
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Header) {
			t.Fatalf("row width %d != header width %d", len(row), len(tab.Header))
		}
		if row[5] == "0" {
			t.Errorf("workload %s ran zero sparse rounds", row[0])
		}
		if row[8] == "0" {
			t.Errorf("workload %s skipped zero evaluations", row[0])
		}
	}
}
