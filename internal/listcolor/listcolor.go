// Package listcolor implements deterministic (deg+1)-list coloring in the
// LOCAL model (the paper's Lemma 24 substrate, [MT20]).
//
// Contract: a set of active vertices, each with a color list strictly larger
// than its number of active neighbors (its degree in the instance). Inactive
// neighbors' colors must already be excluded from the lists by the caller.
// The algorithm Linial-colors the induced active subgraph with Δ'+1 "slots"
// and sweeps the slot classes; when a vertex's class comes up it adopts the
// smallest list color unused by its already-colored active neighbors, which
// exists by the deg+1 invariant. Cost O(log* n + Δ' log Δ') rounds.
// [MT20] achieves O(√(Δ log Δ) + log* n); the substitution is recorded in
// DESIGN.md and only affects the Δ-dependence of the round counts.
package listcolor

import (
	"fmt"
	"sync"

	"deltacoloring/internal/coloring"
	"deltacoloring/internal/graph"
	"deltacoloring/internal/linial"
	"deltacoloring/internal/local"
)

// palPool recycles the per-recolor working palette of Solve's sweep callback.
// The callback may run concurrently across the runner's workers, so the
// scratch cannot live on the solver; a pooled palette with CopyFrom reuses
// its word storage and makes the steady-state recolor allocation-free.
var palPool = sync.Pool{New: func() any { return new(coloring.Palette) }}

// Instance is one deg+1-list-coloring instance on a subset of vertices.
type Instance struct {
	// Active flags the vertices to color.
	Active []bool
	// Lists holds each active vertex's available colors. Lists of inactive
	// vertices are ignored.
	Lists []coloring.Palette
}

// Solve colors every active vertex with a color from its list, writing into
// out, and returns an error if the deg+1 precondition fails or internal
// invariants break. Already-colored active vertices are an error.
func Solve(net *local.Network, inst Instance, out *coloring.Partial) error {
	g := net.Graph()
	if len(inst.Active) != g.N() || len(inst.Lists) != g.N() {
		return fmt.Errorf("listcolor: instance size mismatch (n=%d)", g.N())
	}
	var activeVerts []int
	for v, a := range inst.Active {
		if !a {
			continue
		}
		if out.Colored(v) {
			return fmt.Errorf("listcolor: active vertex %d already colored", v)
		}
		activeVerts = append(activeVerts, v)
	}
	if len(activeVerts) == 0 {
		return nil
	}
	sub := graph.Induced(g, activeVerts)
	for i, p := range sub.ToParent {
		if inst.Lists[p].Size() < sub.G.Degree(i)+1 {
			return fmt.Errorf("listcolor: vertex %d has %d colors for active degree %d",
				p, inst.Lists[p].Size(), sub.G.Degree(i))
		}
	}
	snet := net.Virtual(sub.G, 1)
	k := sub.G.MaxDegree() + 1
	slots, err := linial.Color(snet, k)
	if err != nil {
		return fmt.Errorf("listcolor: %w", err)
	}

	type state struct {
		slot  int
		color int
	}
	st := make([]state, sub.G.N())
	for i := range st {
		st[i] = state{slot: slots[i], color: coloring.None}
	}
	// Frontier-scheduled slot sweep: a vertex acts only in its own slot's
	// round (the seed); all other rounds return self unchanged.
	buckets := make([][]int32, k)
	for i, s := range slots {
		buckets[s] = append(buckets[s], int32(i))
	}
	run := local.NewRunner(snet, st)
	st = run.Sweep(k, func(c int, mark func(int)) {
		for _, i := range buckets[c] {
			mark(int(i))
		}
	}, func(c, i int, self state, nbrs local.Nbrs[state]) state {
		if self.color != coloring.None || self.slot != c {
			return self
		}
		p := palPool.Get().(*coloring.Palette)
		p.CopyFrom(inst.Lists[sub.ToParent[i]])
		for j := 0; j < nbrs.Len(); j++ {
			if nc := nbrs.State(j).color; nc != coloring.None {
				p.Remove(nc)
			}
		}
		col := p.Min()
		palPool.Put(p)
		if col < 0 {
			panic(fmt.Sprintf("listcolor: empty palette at vertex %d despite deg+1 precondition", sub.ToParent[i]))
		}
		self.color = col
		return self
	})
	for i, s := range st {
		if s.color == coloring.None {
			return fmt.Errorf("listcolor: vertex %d left uncolored", sub.ToParent[i])
		}
		out.Colors[sub.ToParent[i]] = s.color
	}
	return nil
}

// GreedyLists builds per-vertex lists from a base palette [0, k) minus the
// colors of already-colored neighbors — the standard way the paper
// constructs deg+1 instances from a partial coloring.
func GreedyLists(g *graph.Graph, out *coloring.Partial, k int) []coloring.Palette {
	var slab coloring.ListSlab
	lists := slab.Take(g.N(), k)
	for v := range lists {
		coloring.AvailableInto(&lists[v], g, out, v, k)
	}
	return lists
}
