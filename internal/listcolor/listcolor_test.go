package listcolor

import (
	"math/rand"
	"testing"
	"testing/quick"

	"deltacoloring/internal/coloring"
	"deltacoloring/internal/graph"
	"deltacoloring/internal/local"
)

func allActive(n int) []bool {
	a := make([]bool, n)
	for i := range a {
		a[i] = true
	}
	return a
}

func fullLists(n, k int) []coloring.Palette {
	ls := make([]coloring.Palette, n)
	for i := range ls {
		ls[i] = coloring.FullPalette(k)
	}
	return ls
}

func TestSolveDeltaPlusOne(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"Cycle", graph.Cycle(21)},
		{"Complete", graph.Complete(8)},
		{"Torus", graph.Torus(5, 5)},
		{"ER", graph.ErdosRenyi(60, 0.12, rng)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			k := c.g.MaxDegree() + 1
			out := coloring.NewPartial(c.g.N())
			inst := Instance{Active: allActive(c.g.N()), Lists: fullLists(c.g.N(), k)}
			if err := Solve(local.New(c.g), inst, out); err != nil {
				t.Fatalf("Solve: %v", err)
			}
			if err := coloring.VerifyComplete(c.g, out, k); err != nil {
				t.Fatal(err)
			}
			if err := coloring.VerifyLists(c.g, out, inst.Lists); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSolvePartialActiveSet(t *testing.T) {
	g := graph.Complete(10)
	out := coloring.NewPartial(10)
	// Pre-color vertices 0..4 with colors 0..4.
	for v := 0; v < 5; v++ {
		out.Colors[v] = v
	}
	active := make([]bool, 10)
	for v := 5; v < 10; v++ {
		active[v] = true
	}
	// Lists: palette [0,10) minus colored neighbors = {5..9} for each.
	lists := GreedyLists(g, out, 10)
	inst := Instance{Active: active, Lists: lists}
	if err := Solve(local.New(g), inst, out); err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if err := coloring.VerifyComplete(g, out, 10); err != nil {
		t.Fatal(err)
	}
}

func TestSolveRejectsShortLists(t *testing.T) {
	g := graph.Complete(4)
	out := coloring.NewPartial(4)
	inst := Instance{Active: allActive(4), Lists: fullLists(4, 3)} // deg 3, lists of 3
	if err := Solve(local.New(g), inst, out); err == nil {
		t.Fatal("accepted lists of size deg")
	}
}

func TestSolveRejectsColoredActive(t *testing.T) {
	g := graph.Path(3)
	out := coloring.NewPartial(3)
	out.Colors[1] = 0
	inst := Instance{Active: allActive(3), Lists: fullLists(3, 3)}
	if err := Solve(local.New(g), inst, out); err == nil {
		t.Fatal("accepted already-colored active vertex")
	}
}

func TestSolveRejectsSizeMismatch(t *testing.T) {
	g := graph.Path(3)
	out := coloring.NewPartial(3)
	inst := Instance{Active: allActive(2), Lists: fullLists(3, 3)}
	if err := Solve(local.New(g), inst, out); err == nil {
		t.Fatal("accepted mismatched instance")
	}
}

func TestSolveNoActive(t *testing.T) {
	g := graph.Path(3)
	out := coloring.NewPartial(3)
	inst := Instance{Active: make([]bool, 3), Lists: fullLists(3, 3)}
	if err := Solve(local.New(g), inst, out); err != nil {
		t.Fatalf("Solve with no active vertices: %v", err)
	}
	if out.CountColored() != 0 {
		t.Fatal("colored something with no active vertices")
	}
}

func TestSolveArbitraryLists(t *testing.T) {
	// Cycle with lists {v mod 3, (v+1) mod 3, 5}: size 3 > degree 2.
	g := graph.Cycle(9)
	lists := make([]coloring.Palette, 9)
	for v := range lists {
		var p coloring.Palette
		p.Add(v % 3)
		p.Add((v + 1) % 3)
		p.Add(5)
		lists[v] = p
	}
	out := coloring.NewPartial(9)
	if err := Solve(local.New(g), Instance{Active: allActive(9), Lists: lists}, out); err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if err := coloring.VerifyLists(g, out, lists); err != nil {
		t.Fatal(err)
	}
	for v := range lists {
		if out.Colors[v] == coloring.None {
			t.Fatalf("vertex %d uncolored", v)
		}
	}
}

// Property: random graphs, random lists of size deg+1+extra are always
// completed to a valid list coloring.
func TestSolveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(40)
		g := graph.PermuteIDs(graph.ErdosRenyi(n, 0.2, rng), rng)
		colorSpace := g.MaxDegree() + 5
		lists := make([]coloring.Palette, n)
		for v := 0; v < n; v++ {
			need := g.Degree(v) + 1
			var p coloring.Palette
			perm := rng.Perm(colorSpace)
			for i := 0; i < need+rng.Intn(3); i++ {
				p.Add(perm[i%len(perm)])
			}
			lists[v] = p
		}
		out := coloring.NewPartial(n)
		if err := Solve(local.New(g), Instance{Active: allActive(n), Lists: lists}, out); err != nil {
			return false
		}
		if err := coloring.VerifyLists(g, out, lists); err != nil {
			return false
		}
		return out.CountColored() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
