// Package linial implements Linial's classic O(log* n)-round coloring
// algorithm [Lin92] together with the standard color-class reduction, the
// symmetry-breaking substrate used by the maximal-matching, MIS, ruling-set,
// and list-coloring packages.
//
// One Linial step reduces a proper m-coloring to a proper q²-coloring
// (q ≈ dΔ) in a single round using the algebraic cover-free family: color c
// is interpreted as a polynomial p_c of degree ≤ d over F_q (its base-q
// digits); two distinct polynomials agree on at most d points, so among the
// q > dΔ evaluation points each vertex finds an x where its polynomial
// differs from those of all ≤ Δ neighbors and adopts (x, p_c(x)) as its new
// color. Iterating reaches O(Δ² log² Δ) colors in O(log* m) rounds, after
// which class-by-class reduction yields the target palette in O(Δ²)
// additional rounds.
package linial

import (
	"fmt"
	"math"
	"math/bits"

	"deltacoloring/internal/graph"
	"deltacoloring/internal/local"
)

// step describes one Linial reduction round: colors in [0, m) shrink to
// [0, q*q) via degree-d polynomials over F_q.
type step struct {
	d, q uint64
}

// planSteps precomputes the deterministic (d, q) schedule for reducing
// colors from an initial space of mBits bits down to the fixed point. The
// schedule is a pure function of (mBits, Δ), so every node knows it.
func planSteps(mBits float64, delta int) []step {
	if delta < 1 {
		return nil
	}
	var steps []step
	for iter := 0; iter < 64; iter++ {
		s, ok := chooseStep(mBits, delta)
		if !ok {
			break
		}
		newBits := 2 * math.Log2(float64(s.q))
		if newBits >= mBits {
			break // fixed point reached; further steps make it worse
		}
		steps = append(steps, s)
		mBits = newBits
	}
	return steps
}

// chooseStep picks the smallest degree d (hence smallest q and output space)
// such that q^(d+1) can encode all current colors.
func chooseStep(mBits float64, delta int) (step, bool) {
	for d := uint64(1); d <= 80; d++ {
		q := nextPrime(d*uint64(delta) + 1)
		if float64(d+1)*math.Log2(float64(q)) >= mBits {
			return step{d: d, q: q}, true
		}
	}
	return step{}, false
}

func nextPrime(n uint64) uint64 {
	if n < 2 {
		return 2
	}
	for {
		if isPrime(n) {
			return n
		}
		n++
	}
}

func isPrime(n uint64) bool {
	if n < 2 {
		return false
	}
	for d := uint64(2); d*d <= n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}

// digitsBaseQ returns the d+1 base-q digits of c (little-endian) — the
// coefficients of the polynomial representing color c.
func digitsBaseQ(c, q uint64, d uint64) []uint64 {
	coeffs := make([]uint64, d+1)
	for i := range coeffs {
		coeffs[i] = c % q
		c /= q
	}
	return coeffs
}

// evalPoly evaluates the polynomial with the given coefficients at x mod q.
func evalPoly(coeffs []uint64, x, q uint64) uint64 {
	var acc uint64
	for i := len(coeffs) - 1; i >= 0; i-- {
		acc = (acc*x + coeffs[i]) % q
	}
	return acc
}

// Color computes a proper coloring of net's graph with at most
// max(target, Δ+1) colors, starting from the graph's unique IDs, in
// O(log* n + Δ² ) rounds. target must be at least Δ+1.
func Color(net *local.Network, target int) ([]int, error) {
	g := net.Graph()
	delta := g.MaxDegree()
	if target < delta+1 {
		return nil, fmt.Errorf("linial: target %d below Δ+1 = %d", target, delta+1)
	}
	if g.N() == 0 {
		return nil, nil
	}
	if delta == 0 {
		return make([]int, g.N()), nil
	}

	// Initial colors: the 64-bit unique IDs.
	cur := make([]uint64, g.N())
	var maxID uint64
	for v := range cur {
		cur[v] = g.ID(v)
		if cur[v] > maxID {
			maxID = cur[v]
		}
	}
	mBits := math.Log2(float64(maxID) + 2)

	// Phase 1: Linial reduction rounds (the schedule is globally known).
	m := maxID + 1
	run := local.NewRunner(net, cur)
	for _, s := range planSteps(mBits, delta) {
		cur = linialRound(run, s)
		m = s.q * s.q
	}

	// Phase 2: batched Kuhn–Wattenhofer reduction from m colors to target.
	colors, err := Reduce(net, toInts(cur), int(m), target)
	if err != nil {
		return nil, err
	}
	return colors, nil
}

func toInts(cur []uint64) []int {
	out := make([]int, len(cur))
	for i, c := range cur {
		out[i] = int(c)
	}
	return out
}

// linialRound performs one algebraic reduction round on the state engine.
func linialRound(run *local.Runner[uint64], s step) []uint64 {
	return run.Step(func(v int, self uint64, nbrs local.Nbrs[uint64]) uint64 {
		mine := digitsBaseQ(self, s.q, s.d)
		// Find x in F_q where our polynomial differs from every neighbor's.
		for x := uint64(0); x < s.q; x++ {
			y := evalPoly(mine, x, s.q)
			ok := true
			for i := 0; i < nbrs.Len(); i++ {
				other := nbrs.State(i)
				if other == self {
					// Proper-coloring invariant violated by caller.
					ok = false
					break
				}
				theirs := digitsBaseQ(other, s.q, s.d)
				if evalPoly(theirs, x, s.q) == y {
					ok = false
					break
				}
			}
			if ok {
				return x*s.q + y
			}
		}
		// Unreachable when the invariant holds: ≤ dΔ < q bad points.
		panic(fmt.Sprintf("linial: no free evaluation point at vertex %d (improper input coloring?)", v))
	})
}

// Reduce lowers a proper coloring with colors in [0, m) to a proper
// coloring with colors in [0, target), target >= Δ+1, using the batched
// Kuhn–Wattenhofer scheme: the color space is cut into blocks of 2·target
// colors; in parallel over blocks, the top `target` colors of each block are
// retired one per round (vertices recolor greedily inside their block, which
// is safe because same-round recolorers in different blocks land in disjoint
// ranges and same-block classes are independent sets). Each halving costs
// `target` rounds, so the total is O(target · log(m/target)) rounds.
func Reduce(net *local.Network, cur []int, m, target int) ([]int, error) {
	g := net.Graph()
	if target < g.MaxDegree()+1 {
		return nil, fmt.Errorf("linial: reduction target %d below Δ+1 = %d", target, g.MaxDegree()+1)
	}
	for v, c := range cur {
		if c < 0 || c >= m {
			return nil, fmt.Errorf("linial: vertex %d has color %d outside [0,%d)", v, c, m)
		}
	}
	out := make([]int, len(cur))
	copy(out, cur)
	run := local.NewRunner(net, out)
	for m > target {
		blockSize := 2 * target
		// Colors >= m exist nowhere; since m is global knowledge the
		// schedule can skip classes that are empty in every block.
		firstTop := blockSize - 1
		if m-1 < firstTop {
			firstTop = m - 1
		}
		// One halving retires tops firstTop..target as a frontier-scheduled
		// sweep. Seeding by the in-block slot at the halving's start is
		// exact: a vertex recolors only in its own slot's round and lands
		// strictly below target, so it can never match a later top; every
		// other state change is a reaction to a neighbor recoloring, which
		// the frontier tracks.
		states := run.States()
		buckets := make([][]int32, blockSize)
		for v, c := range states {
			if slot := c % blockSize; slot >= target {
				buckets[slot] = append(buckets[slot], int32(v))
			}
		}
		out = run.Sweep(firstTop-target+1, func(r int, mark func(int)) {
			for _, v := range buckets[firstTop-r] {
				mark(int(v))
			}
		}, func(r, v int, self int, nbrs local.Nbrs[int]) int {
			top := firstTop - r
			if self%blockSize != top {
				return self
			}
			block := self / blockSize
			if target <= 64 {
				// Constant-Δ fast path: slot occupancy fits one word, so the
				// free-slot search is a mask and a trailing-zeros count with
				// no per-recolor allocation.
				var used uint64
				for i := 0; i < nbrs.Len(); i++ {
					nc := nbrs.State(i)
					if nc/blockSize == block && nc%blockSize < target {
						used |= 1 << (nc % blockSize)
					}
				}
				if free := ^used & (1<<target - 1); free != 0 {
					return block*blockSize + bits.TrailingZeros64(free)
				}
				panic("linial: no free slot during reduction (degree invariant violated)")
			}
			used := make([]bool, target)
			for i := 0; i < nbrs.Len(); i++ {
				nc := nbrs.State(i)
				if nc/blockSize == block && nc%blockSize < target {
					used[nc%blockSize] = true
				}
			}
			for slot, u := range used {
				if !u {
					return block*blockSize + slot
				}
			}
			panic("linial: no free slot during reduction (degree invariant violated)")
		})
		// Compact: every color now has slot < target within its block.
		numBlocks := (m + blockSize - 1) / blockSize
		for v, c := range out {
			out[v] = (c/blockSize)*target + c%blockSize
		}
		m = numBlocks * target
	}
	return out, nil
}

// ColorGraph is a convenience wrapper building a throwaway network; it
// returns the coloring and the number of rounds consumed.
func ColorGraph(g *graph.Graph, target int) ([]int, int, error) {
	net := local.New(g)
	colors, err := Color(net, target)
	return colors, net.Rounds(), err
}
